// Banking scenario: two branch sites hold account records; transfer
// transactions move money between branches while an audit transaction
// sweeps all accounts. A naive lock discipline is refuted by the paper's
// Theorem 4 test (with a concrete bad partial schedule); a latch-ordered
// redesign is certified, and the simulator confirms zero deadlocks under
// pure blocking.
//
// Run: ./build/examples/banking_audit
#include <cstdio>

#include "analysis/multi_analyzer.h"
#include "core/schedule.h"
#include "core/transaction_builder.h"
#include "runtime/simulation.h"

using namespace wydb;

namespace {

Transaction Seq(const Database& db, const std::string& name,
                const std::vector<std::pair<StepKind, std::string>>& seq) {
  auto t = TransactionBuilder::FromSequence(&db, name, seq);
  if (!t.ok()) {
    std::printf("bad transaction %s: %s\n", name.c_str(),
                t.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*t);
}

void Analyze(const char* title, const TransactionSystem& sys) {
  std::printf("== %s ==\n", title);
  auto report = CheckSystemSafeAndDeadlockFree(sys);
  if (!report.ok()) {
    std::printf("  analysis failed: %s\n",
                report.status().ToString().c_str());
    return;
  }
  std::printf("  Theorem 4 verdict: %s (checked %llu interaction cycles)\n",
              report->safe_and_deadlock_free ? "SAFE + DEADLOCK-FREE"
                                             : "REFUTED",
              static_cast<unsigned long long>(report->cycles_checked));
  if (!report->safe_and_deadlock_free) {
    const MultiViolation& v = *report->violation;
    if (v.failed_pair) {
      std::printf("  failing pair: %s vs %s — %s\n",
                  sys.txn(v.failed_pair->first).name().c_str(),
                  sys.txn(v.failed_pair->second).name().c_str(),
                  v.pair_verdict.explanation.c_str());
    } else {
      std::printf("  circular wait across:");
      for (int i : v.cycle) std::printf(" %s", sys.txn(i).name().c_str());
      std::printf("\n  bad partial schedule: %s\n",
                  ScheduleToString(sys, v.witness).c_str());
    }
  }

  SimOptions opts;
  opts.policy = ConflictPolicy::kBlock;
  auto agg = RunMany(sys, opts, 50);
  std::printf("  simulated 50 runs (blocking): %d deadlocked, %d committed, "
              "serializable=%s\n\n",
              agg->deadlocked_runs, agg->committed_runs,
              agg->all_histories_serializable ? "yes" : "n/a");
}

}  // namespace

int main() {
  Database db;
  for (const char* acc : {"alice", "bob"}) {
    db.AddEntityAtSite(acc, "branch1").ValueOrDie();
  }
  for (const char* acc : {"carol", "dave"}) {
    db.AddEntityAtSite(acc, "branch2").ValueOrDie();
  }

  using K = StepKind;
  // Naive design: each transfer locks its source first, the audit sweeps
  // branch2 before branch1 — opposite orders => circular waits.
  {
    std::vector<Transaction> txns;
    txns.push_back(Seq(db, "transfer_a_to_c",
                       {{K::kLock, "alice"}, {K::kLock, "carol"},
                        {K::kUnlock, "alice"}, {K::kUnlock, "carol"}}));
    txns.push_back(Seq(db, "transfer_d_to_b",
                       {{K::kLock, "dave"}, {K::kLock, "bob"},
                        {K::kUnlock, "dave"}, {K::kUnlock, "bob"}}));
    txns.push_back(Seq(db, "audit",
                       {{K::kLock, "carol"}, {K::kLock, "dave"},
                        {K::kLock, "alice"}, {K::kLock, "bob"},
                        {K::kUnlock, "carol"}, {K::kUnlock, "dave"},
                        {K::kUnlock, "alice"}, {K::kUnlock, "bob"}}));
    auto sys = TransactionSystem::Create(&db, std::move(txns));
    Analyze("naive lock order", *sys);
  }

  // Redesign: a global account order (alice < bob < carol < dave); every
  // transaction locks in that order and the audit keeps its first lock to
  // the end. All pairs get a dominating first entity and covered
  // followers.
  {
    std::vector<Transaction> txns;
    txns.push_back(Seq(db, "transfer_a_to_c",
                       {{K::kLock, "alice"}, {K::kLock, "carol"},
                        {K::kUnlock, "carol"}, {K::kUnlock, "alice"}}));
    txns.push_back(Seq(db, "transfer_d_to_b",
                       {{K::kLock, "bob"}, {K::kLock, "dave"},
                        {K::kUnlock, "dave"}, {K::kUnlock, "bob"}}));
    txns.push_back(Seq(db, "audit",
                       {{K::kLock, "alice"}, {K::kLock, "bob"},
                        {K::kLock, "carol"}, {K::kLock, "dave"},
                        {K::kUnlock, "dave"}, {K::kUnlock, "carol"},
                        {K::kUnlock, "bob"}, {K::kUnlock, "alice"}}));
    auto sys = TransactionSystem::Create(&db, std::move(txns));
    Analyze("ordered two-phase redesign", *sys);
  }
  return 0;
}
