// Quickstart: model two distributed transactions, decide safety +
// deadlock-freedom with the paper's O(n^2) test, inspect the witnesses the
// exact checker produces, and run the pair on the simulated distributed
// runtime.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "analysis/deadlock_checker.h"
#include "analysis/pair_analyzer.h"
#include "core/database.h"
#include "core/schedule.h"
#include "core/transaction_builder.h"
#include "runtime/simulation.h"

using namespace wydb;

int main() {
  // A two-site database: entity x at site A, entity y at site B.
  Database db;
  EntityId x = db.AddEntityAtSite("x", "siteA").ValueOrDie();
  EntityId y = db.AddEntityAtSite("y", "siteB").ValueOrDie();
  (void)x;
  (void)y;

  // T1 locks x then y; T2 locks y then x. The classic cross-order pair.
  auto t1 = TransactionBuilder::FromSequence(
      &db, "T1",
      {{StepKind::kLock, "x"}, {StepKind::kLock, "y"},
       {StepKind::kUnlock, "x"}, {StepKind::kUnlock, "y"}});
  auto t2 = TransactionBuilder::FromSequence(
      &db, "T2",
      {{StepKind::kLock, "y"}, {StepKind::kLock, "x"},
       {StepKind::kUnlock, "x"}, {StepKind::kUnlock, "y"}});
  if (!t1.ok() || !t2.ok()) {
    std::printf("model error: %s %s\n", t1.status().ToString().c_str(),
                t2.status().ToString().c_str());
    return 1;
  }

  std::printf("== transactions ==\n%s%s\n", t1->DebugString().c_str(),
              t2->DebugString().c_str());

  // The paper's Theorem 3 test (polynomial, exact for pairs).
  auto verdict = CheckPairTheorem3(*t1, *t2);
  std::printf("Theorem 3: safe+deadlock-free = %s\n",
              verdict->safe_and_deadlock_free ? "YES" : "NO");
  if (!verdict->safe_and_deadlock_free) {
    std::printf("  reason: %s\n", verdict->explanation.c_str());
  }

  // The exact (exponential) checker agrees and produces a witness.
  std::vector<Transaction> txns;
  txns.push_back(std::move(*t1));
  txns.push_back(std::move(*t2));
  auto sys = TransactionSystem::Create(&db, std::move(txns));
  auto report = CheckDeadlockFreedom(*sys);
  std::printf("Theorem 1 exact check: deadlock-free = %s (%llu states)\n",
              report->deadlock_free ? "YES" : "NO",
              static_cast<unsigned long long>(report->states_visited));
  if (!report->deadlock_free) {
    std::printf("  deadlock after partial schedule: %s\n",
                ScheduleToString(*sys, report->witness->schedule).c_str());
  }

  // Run it on the simulated distributed database, 20 seeds, blocking
  // policy: some seeds deadlock, matching the static refutation.
  SimOptions opts;
  opts.policy = ConflictPolicy::kBlock;
  auto agg = RunMany(*sys, opts, 20);
  std::printf(
      "runtime (block policy): %d/%d runs deadlocked, %d committed\n",
      agg->deadlocked_runs, agg->runs, agg->committed_runs);

  // Wound-wait turns the deadlocks into restarts.
  opts.policy = ConflictPolicy::kWoundWait;
  auto ww = RunMany(*sys, opts, 20);
  std::printf(
      "runtime (wound-wait):   %d/%d runs deadlocked, %d committed, "
      "%llu aborts total\n",
      ww->deadlocked_runs, ww->runs, ww->committed_runs,
      static_cast<unsigned long long>(ww->total_aborts));
  return 0;
}
