// The coNP-hardness construction, end to end (Theorem 2): encode a 3SAT'
// formula as a pair of distributed transactions, exhibit the deadlock
// prefix corresponding to a satisfying assignment, and decode the
// reduction-graph cycle back into the assignment.
//
// Run: ./build/examples/sat_attack [num_vars]
#include <cstdio>
#include <cstdlib>

#include "analysis/sat/dpll.h"
#include "analysis/sat/reduction.h"
#include "core/reduction_graph.h"
#include "core/schedule.h"
#include "core/state_space.h"

using namespace wydb;

int main(int argc, char** argv) {
  CnfFormula formula;
  if (argc > 1) {
    ThreeSatPrimeGenOptions gopts;
    gopts.num_vars = std::atoi(argv[1]);
    gopts.seed = 12345;
    auto f = GenerateThreeSatPrime(gopts);
    if (!f.ok()) {
      std::printf("generator: %s\n", f.status().ToString().c_str());
      return 1;
    }
    formula = *f;
  } else {
    // The paper's Figure 5 example: (x0+x1)(x0+!x1)(!x0+x1).
    formula = CnfFormula(2, {{{0, true}, {1, true}},
                             {{0, true}, {1, false}},
                             {{0, false}, {1, true}}});
  }
  std::printf("formula: %s\n", formula.ToString().c_str());

  auto red = SatReduction::FromFormula(formula);
  if (!red.ok()) {
    std::printf("reduction: %s\n", red.status().ToString().c_str());
    return 1;
  }
  const TransactionSystem& sys = red->system();
  std::printf("reduced to 2 transactions, %d steps each, over %d entities "
              "at %d sites\n",
              sys.txn(0).num_steps(), red->db().num_entities(),
              red->db().num_sites());

  auto sat = SolveDpll(formula);
  if (!sat->satisfiable) {
    std::printf("formula is UNSATISFIABLE => the pair is deadlock-free "
                "(Theorem 2); nothing to exhibit.\n");
    return 0;
  }
  std::printf("satisfying assignment:");
  for (size_t j = 0; j < sat->assignment.size(); ++j) {
    std::printf(" x%zu=%d", j, sat->assignment[j] ? 1 : 0);
  }
  std::printf("\n");

  auto prefix = red->WitnessPrefix(sat->assignment);
  std::printf("\ndeadlock prefix (locks held):\n%s",
              prefix->DebugString().c_str());

  ReductionGraph rg(*prefix);
  auto cycle = rg.FindGlobalCycle();
  std::printf("\nreduction graph cycle (%zu nodes):\n  %s\n", cycle.size(),
              rg.CycleToString(sys, cycle).c_str());

  // Confirm the prefix is reachable by an actual lock-respecting schedule.
  StateSpace space(&sys);
  auto sched = space.FindScheduleBetween(space.EmptyState(),
                                         space.StateOf(*prefix), 1'000'000);
  if (sched.ok() && sched->has_value()) {
    std::printf("\nschedule reaching it: %s\n",
                ScheduleToString(sys, **sched).c_str());
  }

  std::vector<bool> decoded = red->DecodeAssignment(cycle);
  std::printf("\ndecoded assignment from cycle:");
  for (size_t j = 0; j < decoded.size(); ++j) {
    std::printf(" x%zu=%d", j, decoded[j] ? 1 : 0);
  }
  std::printf("  => satisfies formula: %s\n",
              formula.IsSatisfiedBy(decoded) ? "YES" : "NO");
  return 0;
}
