// Identical-copies scenario (Corollary 3 / Theorem 5) on the replicated
// traffic engine: a service template executed by many concurrent
// workers over data that is itself replicated across sites (write-all
// with primary-copy serialization, DESIGN.md §6).
//
// The syntactic test on ONE transaction certifies any number of workers,
// and the certification survives any replication degree; the Fig. 6
// phenomenon shows why "deadlock-freedom of two copies" alone is not
// enough.
//
// Run: ./build/example_replicated_service
#include <cstdio>

#include "analysis/copies_analyzer.h"
#include "analysis/deadlock_checker.h"
#include "core/transaction_builder.h"
#include "runtime/simulation.h"
#include "runtime/workload.h"

using namespace wydb;

namespace {

// One closed-loop traffic session sweep of `workers` copies of `t` with
// every entity replicated `degree` ways.
void ReportTraffic(const Transaction& t, int workers, int degree) {
  auto bundle = MakeReplicatedCopies(t, workers, degree);
  if (!bundle.ok()) {
    std::printf("  setup failed: %s\n", bundle.status().ToString().c_str());
    return;
  }
  WorkloadOptions opts;
  opts.sim.policy = ConflictPolicy::kBlock;
  opts.sim.placement = &bundle->placement;
  opts.duration = 30'000;
  opts.think_time = 50;
  auto agg = RunWorkloadMany(bundle->system, opts, /*runs=*/20);
  if (!agg.ok()) {
    std::printf("  traffic failed: %s\n", agg.status().ToString().c_str());
    return;
  }
  std::printf(
      "  %d workers x degree %d: throughput %.1f commits/Msim-us, "
      "p99 %.0f, deadlocked %d/%d runs\n",
      workers, degree, agg->avg_throughput, agg->avg_p99,
      agg->deadlocked_runs, agg->runs);
}

void Report(const char* title, const Transaction& t, int workers) {
  std::printf("== %s, %d workers ==\n", title, workers);
  CopiesVerdict v = CheckCopies(t, workers);
  std::printf("  Corollary 3 / Theorem 5: %s\n",
              v.safe_and_deadlock_free ? "SAFE + DEADLOCK-FREE"
                                       : "REFUTED");
  if (!v.safe_and_deadlock_free) {
    std::printf("  reason: %s\n", v.explanation.c_str());
  }
  // Closed-loop blocking traffic across replication degrees: a certified
  // template never deadlocks at ANY degree; replication only costs
  // throughput (the write-all fan-out).
  for (int degree = 1; degree <= 3; ++degree) {
    ReportTraffic(t, workers, degree);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  Database db;
  db.AddEntityAtSite("session", "gateway").ValueOrDie();
  db.AddEntityAtSite("inventory", "warehouse").ValueOrDie();
  db.AddEntityAtSite("ledger", "finance").ValueOrDie();

  using K = StepKind;
  // Good template: grab the session latch first, keep it to the end;
  // inventory covers the ledger access.
  auto good = TransactionBuilder::FromSequence(
      &db, "order",
      {{K::kLock, "session"}, {K::kLock, "inventory"},
       {K::kLock, "ledger"}, {K::kUnlock, "inventory"},
       {K::kUnlock, "ledger"}, {K::kUnlock, "session"}});
  Report("latch-ordered template", *good, 2);
  Report("latch-ordered template", *good, 6);

  // Bad template: releases the session latch before touching the ledger —
  // the ledger access is uncovered.
  auto bad = TransactionBuilder::FromSequence(
      &db, "order",
      {{K::kLock, "session"}, {K::kLock, "inventory"},
       {K::kUnlock, "inventory"}, {K::kUnlock, "session"},
       {K::kLock, "ledger"}, {K::kUnlock, "ledger"}});
  Report("early-release template", *bad, 3);

  // The Fig. 6 phenomenon: a template whose 2-copy system is deadlock-free
  // while 3 copies deadlock — the copies shortcut is sound for safe+DF
  // (Theorem 5) but NOT for deadlock-freedom alone. Data replication does
  // not rescue it: the replicated engine deadlocks at the primaries just
  // like the single-copy engine.
  Database spread;
  spread.AddEntityAtSite("x", "sx").ValueOrDie();
  spread.AddEntityAtSite("y", "sy").ValueOrDie();
  spread.AddEntityAtSite("z", "sz").ValueOrDie();
  TransactionBuilder b(&spread, "cyclic");
  b.set_auto_site_chain(false);
  int lx = b.Lock("x"), ly = b.Lock("y"), lz = b.Lock("z");
  int ux = b.Unlock("x"), uy = b.Unlock("y"), uz = b.Unlock("z");
  b.Arc(lx, uy).Arc(ly, uz).Arc(lz, ux);
  auto cyclic = b.Build();
  std::printf("== Fig. 6 phenomenon (cyclic-cover template) ==\n");
  for (int d = 2; d <= 3; ++d) {
    auto sys = MakeCopies(*cyclic, d);
    auto report = CheckDeadlockFreedom(*sys);
    std::printf("  %d copies: deadlock-free = %s\n", d,
                report->deadlock_free ? "YES" : "NO");
  }
  std::printf("  safe+DF of 2 copies (what Theorem 5 needs): %s\n",
              CheckTwoCopies(*cyclic).safe_and_deadlock_free ? "YES" : "NO");

  // Drive the 3-worker system over 2-way-replicated data until a seed
  // deadlocks: static refutation predicts runtime behaviour here too.
  auto bundle = MakeReplicatedCopies(*cyclic, 3, 2);
  if (!bundle.ok()) {
    std::printf("  setup failed: %s\n", bundle.status().ToString().c_str());
    return 1;
  }
  int deadlocked = 0, runs = 40;
  for (int seed = 1; seed <= runs; ++seed) {
    SimOptions opts;
    opts.seed = static_cast<uint64_t>(seed);
    opts.placement = &bundle->placement;
    auto res = RunSimulation(bundle->system, opts);
    if (res.ok() && res->deadlocked) ++deadlocked;
  }
  std::printf("  replicated (degree 2), 3 workers, blocking: %d/%d seeded "
              "runs deadlock\n",
              deadlocked, runs);
  return 0;
}
