// Identical-copies scenario (Corollary 3 / Theorem 5): a service template
// transaction executed by many concurrent workers. The syntactic test on
// ONE transaction certifies any number of copies; the Fig. 6 phenomenon
// shows why "deadlock-freedom of two copies" alone is not enough.
//
// Run: ./build/examples/replicated_service
#include <cstdio>

#include "analysis/copies_analyzer.h"
#include "analysis/deadlock_checker.h"
#include "core/transaction_builder.h"
#include "runtime/simulation.h"

using namespace wydb;

namespace {

void Report(const char* title, const Transaction& t, int workers) {
  std::printf("== %s, %d workers ==\n", title, workers);
  CopiesVerdict v = CheckCopies(t, workers);
  std::printf("  Corollary 3 / Theorem 5: %s\n",
              v.safe_and_deadlock_free ? "SAFE + DEADLOCK-FREE"
                                       : "REFUTED");
  if (!v.safe_and_deadlock_free) {
    std::printf("  reason: %s\n", v.explanation.c_str());
  }
  auto sys = MakeCopies(t, workers);
  SimOptions opts;
  opts.policy = ConflictPolicy::kBlock;
  auto agg = RunMany(*sys, opts, 40);
  std::printf("  simulated 40 runs: %d deadlocked, %d committed, all "
              "histories serializable: %s\n\n",
              agg->deadlocked_runs, agg->committed_runs,
              agg->all_histories_serializable ? "yes" : "NO");
}

}  // namespace

int main() {
  Database db;
  db.AddEntityAtSite("session", "gateway").ValueOrDie();
  db.AddEntityAtSite("inventory", "warehouse").ValueOrDie();
  db.AddEntityAtSite("ledger", "finance").ValueOrDie();

  using K = StepKind;
  // Good template: grab the session latch first, keep it to the end;
  // inventory covers the ledger access.
  auto good = TransactionBuilder::FromSequence(
      &db, "order",
      {{K::kLock, "session"}, {K::kLock, "inventory"},
       {K::kLock, "ledger"}, {K::kUnlock, "inventory"},
       {K::kUnlock, "ledger"}, {K::kUnlock, "session"}});
  Report("latch-ordered template", *good, 2);
  Report("latch-ordered template", *good, 6);

  // Bad template: releases the session latch before touching the ledger —
  // the ledger access is uncovered.
  auto bad = TransactionBuilder::FromSequence(
      &db, "order",
      {{K::kLock, "session"}, {K::kLock, "inventory"},
       {K::kUnlock, "inventory"}, {K::kUnlock, "session"},
       {K::kLock, "ledger"}, {K::kUnlock, "ledger"}});
  Report("early-release template", *bad, 3);

  // The Fig. 6 phenomenon: a template whose 2-copy system is deadlock-free
  // while 3 copies deadlock — the copies shortcut is sound for safe+DF
  // (Theorem 5) but NOT for deadlock-freedom alone.
  Database spread;
  spread.AddEntityAtSite("x", "sx").ValueOrDie();
  spread.AddEntityAtSite("y", "sy").ValueOrDie();
  spread.AddEntityAtSite("z", "sz").ValueOrDie();
  TransactionBuilder b(&spread, "cyclic");
  b.set_auto_site_chain(false);
  int lx = b.Lock("x"), ly = b.Lock("y"), lz = b.Lock("z");
  int ux = b.Unlock("x"), uy = b.Unlock("y"), uz = b.Unlock("z");
  b.Arc(lx, uy).Arc(ly, uz).Arc(lz, ux);
  auto cyclic = b.Build();
  std::printf("== Fig. 6 phenomenon (cyclic-cover template) ==\n");
  for (int d = 2; d <= 3; ++d) {
    auto sys = MakeCopies(*cyclic, d);
    auto report = CheckDeadlockFreedom(*sys);
    std::printf("  %d copies: deadlock-free = %s\n", d,
                report->deadlock_free ? "YES" : "NO");
  }
  std::printf("  safe+DF of 2 copies (what Theorem 5 needs): %s\n",
              CheckTwoCopies(*cyclic).safe_and_deadlock_free ? "YES" : "NO");
  return 0;
}
