#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace wydb {

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  int needed = vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed) + 1);
    vsnprintf(out.data(), out.size(), fmt, args);
    out.resize(static_cast<size_t>(needed));
  }
  va_end(args);
  return out;
}

}  // namespace wydb
