#include "common/thread_pool.h"

#include <chrono>
#include <cstdlib>

namespace wydb {

int ResolveThreadCount(int spec) {
  if (spec > 0) return spec;
  if (const char* env = std::getenv("WYDB_SEARCH_THREADS")) {
    int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  int hw = static_cast<int>(std::thread::hardware_concurrency());
  return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(int threads) : threads_(ResolveThreadCount(threads)) {
  if (threads_ <= 1) return;
  deques_ = std::vector<Deque>(threads_);
  workers_.reserve(threads_ - 1);
  for (int w = 1; w < threads_; ++w) {
    workers_.emplace_back(&ThreadPool::WorkerLoop, this, w);
  }
}

ThreadPool::~ThreadPool() {
  if (workers_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(m_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::ParallelFor(
    size_t count, size_t chunk,
    const std::function<void(size_t, size_t, int)>& fn) {
  if (count == 0) return;
  if (chunk == 0) chunk = 1;
  const size_t num_chunks = (count + chunk - 1) / chunk;
  if (threads_ <= 1 || num_chunks == 1) {
    for (size_t c = 0; c < num_chunks; ++c) {
      size_t begin = c * chunk;
      size_t end = begin + chunk < count ? begin + chunk : count;
      fn(begin, end, 0);
    }
    return;
  }

  // Deal the chunk indices out in contiguous runs, one per worker.
  const size_t per = num_chunks / threads_;
  const size_t extra = num_chunks % threads_;
  size_t next = 0;
  for (int w = 0; w < threads_; ++w) {
    size_t take = per + (static_cast<size_t>(w) < extra ? 1 : 0);
    deques_[w].head = next;
    deques_[w].tail = next + take;
    next += take;
  }

  {
    std::lock_guard<std::mutex> lock(m_);
    count_ = count;
    chunk_ = chunk;
    fn_ = &fn;
    working_ = threads_ - 1;
    unclaimed_.store(num_chunks, std::memory_order_relaxed);
    ++generation_;
  }
  start_cv_.notify_all();

  RunChunks(0);

  std::unique_lock<std::mutex> lock(m_);
  done_cv_.wait(lock, [&] { return working_ == 0; });
  fn_ = nullptr;
}

void ThreadPool::WorkerLoop(int worker) {
  uint64_t seen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(m_);
      start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    RunChunks(worker);
    {
      std::lock_guard<std::mutex> lock(m_);
      if (--working_ == 0) done_cv_.notify_one();
    }
  }
}

TaskPool::TaskPool(int workers, size_t queue_capacity)
    : capacity_(queue_capacity) {
  if (workers < 1) workers = 1;
  workers_.reserve(workers);
  for (int w = 0; w < workers; ++w) {
    workers_.emplace_back(&TaskPool::WorkerLoop, this);
  }
}

TaskPool::~TaskPool() {
  Drain();
  for (std::thread& t : workers_) t.join();
}

bool TaskPool::TrySubmit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(m_);
    if (draining_ || queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
  return true;
}

void TaskPool::Drain() {
  {
    std::lock_guard<std::mutex> lock(m_);
    draining_ = true;
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lock(m_);
  drain_cv_.wait(lock, [&] {
    return queue_.empty() && active_.load(std::memory_order_relaxed) == 0;
  });
}

void TaskPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(m_);
      work_cv_.wait(lock, [&] { return draining_ || !queue_.empty(); });
      if (queue_.empty()) return;  // Draining and nothing left to run.
      task = std::move(queue_.front());
      queue_.pop_front();
      active_.fetch_add(1, std::memory_order_relaxed);
    }
    task();
    {
      std::lock_guard<std::mutex> lock(m_);
      // Decrement under the lock so Drain's predicate can't observe an
      // empty queue while this task still counts as active.
      active_.fetch_sub(1, std::memory_order_relaxed);
      if (queue_.empty() && active_.load(std::memory_order_relaxed) == 0) {
        drain_cv_.notify_all();
      }
    }
  }
}

void ThreadPool::RunChunks(int worker) {
  const std::function<void(size_t, size_t, int)>& fn = *fn_;
  const size_t count = count_;
  const size_t chunk = chunk_;
  int idle_spins = 0;
  while (true) {
    size_t c = static_cast<size_t>(-1);
    {
      Deque& own = deques_[worker];
      std::lock_guard<std::mutex> lock(own.m);
      if (own.head < own.tail) c = own.head++;
    }
    if (c == static_cast<size_t>(-1)) {
      // Steal the back half of the first victim with work. The victim's
      // and our own deque locks are never held together (two thieves
      // stealing from each other would otherwise deadlock ABBA): the
      // range is detached under the victim's lock and installed into our
      // empty deque afterwards — only the owner installs, so nothing
      // races the window in between.
      for (int off = 1; off < threads_ && c == static_cast<size_t>(-1);
           ++off) {
        int v = (worker + off) % threads_;
        size_t steal_begin = 0;
        size_t steal_end = 0;
        {
          Deque& victim = deques_[v];
          std::lock_guard<std::mutex> vlock(victim.m);
          size_t avail = victim.tail - victim.head;
          if (avail == 0) continue;
          steal_begin = victim.head + avail / 2;
          steal_end = victim.tail;
          victim.tail = steal_begin;
        }
        c = steal_begin;  // Run the first stolen chunk now...
        if (steal_begin + 1 < steal_end) {  // ...queue the rest as ours.
          Deque& own = deques_[worker];
          std::lock_guard<std::mutex> olock(own.m);
          own.head = steal_begin + 1;
          own.tail = steal_end;
        }
      }
      if (c == static_cast<size_t>(-1)) {
        // Nothing visible to steal — but chunks detached by a thief that
        // has not installed its remainder yet may still appear. Rescan
        // (with backoff) until every chunk has at least been claimed;
        // once the last chunk is executing no new work can surface.
        if (unclaimed_.load(std::memory_order_acquire) == 0) return;
        if (++idle_spins > 64) {
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        } else {
          std::this_thread::yield();
        }
        continue;
      }
    }
    idle_spins = 0;
    unclaimed_.fetch_sub(1, std::memory_order_acq_rel);
    size_t begin = c * chunk;
    size_t end = begin + chunk < count ? begin + chunk : count;
    fn(begin, end, worker);
  }
}

}  // namespace wydb
