// Status: lightweight error propagation without exceptions, in the style of
// Arrow / RocksDB. A Status is either OK (cheap, no allocation) or carries a
// code and a message.
#ifndef WYDB_COMMON_STATUS_H_
#define WYDB_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace wydb {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Caller passed something malformed.
  kInvalidModel,      ///< A transaction/system violates the paper's model.
  kNotFound,          ///< Lookup of an entity/node/transaction failed.
  kAlreadyExists,     ///< Duplicate insertion into a catalog.
  kFailedPrecondition,///< Operation not valid in the current state.
  kResourceExhausted, ///< A configured search/step budget was exceeded.
  kInternal,          ///< Invariant violation inside the library (a bug).
  kUnimplemented,     ///< Feature intentionally not provided.
};

/// Returns a stable human-readable name for a StatusCode.
const char* StatusCodeToString(StatusCode code);

/// \brief Result of an operation: OK or an error code plus message.
///
/// The OK state stores no heap data; error states allocate one small
/// struct. Statuses are cheap to move and to test for OK-ness.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_unique<Rep>(Rep{code, std::move(msg)});
    }
  }

  Status(const Status& other) { CopyFrom(other); }
  Status& operator=(const Status& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status InvalidModel(std::string msg) {
    return Status(StatusCode::kInvalidModel, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->msg : kEmpty;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsInvalidModel() const { return code() == StatusCode::kInvalidModel; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string msg;
  };

  void CopyFrom(const Status& other) {
    rep_ = other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr;
  }

  std::unique_ptr<Rep> rep_;
};

}  // namespace wydb

#endif  // WYDB_COMMON_STATUS_H_
