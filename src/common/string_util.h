// Small string helpers shared by diagnostic dumps.
#ifndef WYDB_COMMON_STRING_UTIL_H_
#define WYDB_COMMON_STRING_UTIL_H_

#include <string>
#include <vector>

namespace wydb {

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace wydb

#endif  // WYDB_COMMON_STRING_UTIL_H_
