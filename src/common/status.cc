#include "common/status.h"

namespace wydb {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kInvalidModel:
      return "InvalidModel";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace wydb
