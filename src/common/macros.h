#ifndef WYDB_COMMON_MACROS_H_
#define WYDB_COMMON_MACROS_H_

// Propagates a non-OK Status out of the current function.
#define WYDB_RETURN_IF_ERROR(expr)                   \
  do {                                               \
    ::wydb::Status _st = (expr);                     \
    if (!_st.ok()) return _st;                       \
  } while (false)

// Evaluates `rexpr` (a Result<T>), propagating the error or binding the
// value to `lhs`.
#define WYDB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).ValueOrDie()

#define WYDB_CONCAT_INNER(a, b) a##b
#define WYDB_CONCAT(a, b) WYDB_CONCAT_INNER(a, b)

#define WYDB_ASSIGN_OR_RETURN(lhs, rexpr) \
  WYDB_ASSIGN_OR_RETURN_IMPL(WYDB_CONCAT(_res_, __LINE__), lhs, rexpr)

// Debug-build invariant check. Compiles to nothing under NDEBUG (the
// condition is not evaluated, but stays syntax-checked via sizeof). Used
// for invariants too hot or too internal for Status plumbing — e.g. the
// arena-epoch stale-pointer checks in core/state_store.h.
#ifndef NDEBUG
#include <cstdio>
#include <cstdlib>
#define WYDB_DCHECK(cond)                                             \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::fprintf(stderr, "WYDB_DCHECK failed at %s:%d: %s\n",       \
                   __FILE__, __LINE__, #cond);                        \
      std::abort();                                                   \
    }                                                                 \
  } while (false)
#else
#define WYDB_DCHECK(cond) \
  do {                    \
    (void)sizeof(cond);   \
  } while (false)
#endif

#endif  // WYDB_COMMON_MACROS_H_
