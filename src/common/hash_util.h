// Shared hashing helpers for the interned-state stores.
//
// StateStore and ShardedStateStore must agree on the key hash: the
// sharded store routes a key to a shard by the high bits and probes the
// shard's open-addressing table with the low bits, so the two bit ranges
// have to be independently well-mixed. Keeping the function here (rather
// than private to each store) also lets staging code hash a key once and
// hand the value through to the commit phase.
#ifndef WYDB_COMMON_HASH_UTIL_H_
#define WYDB_COMMON_HASH_UTIL_H_

#include <cstdint>

namespace wydb {

/// 64-bit avalanche finisher (the MurmurHash3 fmix64 tail): every input
/// bit affects every output bit, so both the high (shard-selection) and
/// low (slot-probing) bits are usable after one call.
inline uint64_t MixHash64(uint64_t h) {
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  h *= 0xC4CEB9FE1A85EC53ULL;
  h ^= h >> 33;
  return h;
}

/// FNV-1a over `words` 64-bit words, finished with MixHash64.
inline uint64_t HashWords(const uint64_t* key, int words) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (int w = 0; w < words; ++w) {
    h ^= key[w];
    h *= 0x100000001B3ULL;
  }
  return MixHash64(h);
}

}  // namespace wydb

#endif  // WYDB_COMMON_HASH_UTIL_H_
