// Shared hashing helpers for the interned-state stores.
//
// StateStore and ShardedStateStore must agree on the key hash: the
// sharded store routes a key to a shard by the high bits and probes the
// shard's open-addressing table with the low bits, so the two bit ranges
// have to be independently well-mixed. Keeping the function here (rather
// than private to each store) also lets staging code hash a key once and
// hand the value through to the commit phase.
#ifndef WYDB_COMMON_HASH_UTIL_H_
#define WYDB_COMMON_HASH_UTIL_H_

#include <cstddef>
#include <cstdint>

namespace wydb {

/// 64-bit avalanche finisher (the MurmurHash3 fmix64 tail): every input
/// bit affects every output bit, so both the high (shard-selection) and
/// low (slot-probing) bits are usable after one call.
inline uint64_t MixHash64(uint64_t h) {
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  h *= 0xC4CEB9FE1A85EC53ULL;
  h ^= h >> 33;
  return h;
}

/// FNV-1a over `words` 64-bit words, finished with MixHash64.
inline uint64_t HashWords(const uint64_t* key, int words) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (int w = 0; w < words; ++w) {
    h ^= key[w];
    h *= 0x100000001B3ULL;
  }
  return MixHash64(h);
}

/// CRC-32 (the IEEE 802.3 polynomial, reflected form) over `len` bytes,
/// continuing from `seed` (pass 0 for a fresh checksum). Used to frame
/// verdict-journal records (src/serve/journal.h): unlike the avalanche
/// hashes above, a CRC detects all burst errors shorter than 32 bits, the
/// failure mode of a torn or bit-flipped append tail.
inline uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0) {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = ~seed;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace wydb

#endif  // WYDB_COMMON_HASH_UTIL_H_
