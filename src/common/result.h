// Result<T>: value-or-Status, in the style of arrow::Result.
#ifndef WYDB_COMMON_RESULT_H_
#define WYDB_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace wydb {

/// \brief Holds either a value of type T or an error Status.
///
/// Construction from a non-OK Status yields the error state; construction
/// from a T (or anything convertible) yields the value state. Constructing
/// from an OK Status is a programming error.
template <typename T>
class Result {
 public:
  Result(Status status) : rep_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(rep_).ok() &&
           "Result constructed from OK Status");
  }
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(rep_);
  }

  /// Requires ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Moves the value out, or returns `fallback` when in the error state.
  T ValueOr(T fallback) && {
    return ok() ? std::get<T>(std::move(rep_)) : std::move(fallback);
  }

 private:
  std::variant<Status, T> rep_;
};

}  // namespace wydb

#endif  // WYDB_COMMON_RESULT_H_
