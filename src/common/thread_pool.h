// A small persistent thread pool with work-stealing chunk scheduling,
// built for the level-synchronous parallel searches (DESIGN.md §7).
//
// ParallelFor partitions [0, count) into fixed-size chunks. Chunk ranges
// are deterministic — chunk c always covers [c*chunk, min((c+1)*chunk,
// count)) — so callers can index side buffers by chunk and get results
// that are independent of which worker ran which chunk. Only the
// *assignment* of chunks to workers is dynamic: each worker owns a deque
// of chunk indices, pops from the front, and when empty steals the back
// half of a victim's deque. That keeps workers busy under skewed
// per-chunk cost without introducing any ordering the caller could
// observe.
//
// The calling thread participates as worker 0, so a pool constructed
// with `threads == 1` spawns nothing and runs chunks inline — the
// parallel engines degrade to plain serial loops with zero
// synchronization, which is what the bit-identical cross-validation
// tests run first.
#ifndef WYDB_COMMON_THREAD_POOL_H_
#define WYDB_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wydb {

/// Worker threads for ParallelFor: `spec` > 0 uses exactly that many
/// workers; 0 resolves to the WYDB_SEARCH_THREADS environment variable
/// when set and positive, else std::thread::hardware_concurrency().
int ResolveThreadCount(int spec);

class ThreadPool {
 public:
  /// Spawns threads-1 workers (the caller is worker 0); `threads` is
  /// resolved via ResolveThreadCount.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return threads_; }

  /// Runs fn(begin, end, worker) for every chunk range of [0, count),
  /// where chunk c is exactly [c*chunk, min((c+1)*chunk, count)).
  /// Blocks until all chunks completed. `fn` runs concurrently on
  /// disjoint ranges; `worker` is in [0, threads()).
  ///
  /// Not reentrant: one ParallelFor at a time per pool.
  void ParallelFor(size_t count, size_t chunk,
                   const std::function<void(size_t, size_t, int)>& fn);

 private:
  // Per-worker deque of chunk indices [head, tail). The owner pops from
  // head; thieves take the back half by lowering tail. A plain mutex per
  // deque is enough: claims happen once per chunk, and chunks are sized
  // to amortize the lock.
  struct Deque {
    std::mutex m;
    size_t head = 0;
    size_t tail = 0;
  };

  void WorkerLoop(int worker);
  void RunChunks(int worker);

  const int threads_;
  std::vector<std::thread> workers_;
  std::vector<Deque> deques_;

  std::mutex m_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  uint64_t generation_ = 0;
  int working_ = 0;
  bool stop_ = false;
  size_t count_ = 0;
  size_t chunk_ = 0;
  const std::function<void(size_t, size_t, int)>* fn_ = nullptr;
  /// Chunks not yet *claimed for execution* this generation. Keeps a
  /// worker whose steal scan raced another thief's detach-to-install
  /// window from retiring while unclaimed chunks exist — and lets idle
  /// workers exit as soon as the last chunk starts executing, instead of
  /// spinning through its execution.
  std::atomic<size_t> unclaimed_{0};
};

/// Fixed workers draining a bounded queue of independent, long-running
/// tasks — the session executor of the analysis server (one task per
/// client connection), as opposed to ThreadPool's fork-join chunks.
///
/// The bounded queue is the backpressure mechanism: TrySubmit never
/// blocks, and a false return tells the caller to shed load (the server
/// answers "at capacity" and closes the connection) instead of queueing
/// unboundedly behind a slow session. Worker threads are spawned up
/// front, so a stalled task can never prevent others from being picked
/// up as long as a worker is free.
class TaskPool {
 public:
  /// `workers` >= 1 threads; up to `queue_capacity` tasks may wait
  /// beyond the ones currently executing.
  TaskPool(int workers, size_t queue_capacity);
  /// Drains: refuses new tasks, waits for queued and running ones.
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// False when the queue is full or the pool is draining; the task is
  /// then NOT queued and the caller must handle the rejection.
  bool TrySubmit(std::function<void()> task);

  /// Stops accepting tasks and blocks until every queued and running
  /// task has finished. Idempotent.
  void Drain();

  /// Tasks currently executing (racy snapshot, for stats lines).
  int active() const { return active_.load(std::memory_order_relaxed); }

 private:
  void WorkerLoop();

  const size_t capacity_;
  std::vector<std::thread> workers_;
  mutable std::mutex m_;
  std::condition_variable work_cv_;   ///< Queue non-empty or draining.
  std::condition_variable drain_cv_;  ///< Queue empty and nothing active.
  std::deque<std::function<void()>> queue_;
  std::atomic<int> active_{0};
  bool draining_ = false;
};

}  // namespace wydb

#endif  // WYDB_COMMON_THREAD_POOL_H_
