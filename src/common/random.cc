#include "common/random.h"

namespace wydb {

uint64_t Rng::Next() {
  // splitmix64 (public-domain constants): excellent statistical quality for
  // the simulation workloads here, trivially seedable, platform-stable.
  state_ += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rng::NextBelow(uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  NextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

}  // namespace wydb
