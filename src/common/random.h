// Seeded random number generation for reproducible workloads and searches.
#ifndef WYDB_COMMON_RANDOM_H_
#define WYDB_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace wydb {

/// \brief Deterministic 64-bit RNG (splitmix64 state advance + xorshift
/// output). Same seed => same stream on every platform; unlike
/// std::mt19937 the stream is also stable across standard library
/// implementations.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform in [0, bound). bound == 0 returns 0.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (std::size_t i = v->size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(NextBelow(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// A fresh generator whose seed is derived from this one's stream.
  Rng Fork() { return Rng(Next() ^ 0xD1B54A32D192ED03ULL); }

 private:
  uint64_t state_;
};

}  // namespace wydb

#endif  // WYDB_COMMON_RANDOM_H_
