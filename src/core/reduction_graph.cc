#include "core/reduction_graph.h"

#include "common/string_util.h"
#include "graph/algorithms.h"

namespace wydb {

ReductionGraph::ReductionGraph(const PrefixSet& prefix) {
  const TransactionSystem& sys = prefix.system();
  const int n = sys.num_transactions();
  local_.resize(n);

  // Collect remaining nodes.
  for (int i = 0; i < n; ++i) {
    const Transaction& t = sys.txn(i);
    local_[i].assign(t.num_steps(), kInvalidNode);
    for (NodeId v = 0; v < t.num_steps(); ++v) {
      if (!prefix.Contains(i, v)) {
        local_[i][v] = static_cast<NodeId>(nodes_.size());
        nodes_.push_back(GlobalNode{i, v});
      }
    }
  }
  graph_.Resize(static_cast<int>(nodes_.size()));

  // Remaining precedence arcs.
  for (int i = 0; i < n; ++i) {
    const Transaction& t = sys.txn(i);
    for (NodeId v = 0; v < t.num_steps(); ++v) {
      if (local_[i][v] == kInvalidNode) continue;
      for (NodeId w : t.graph().OutNeighbors(v)) {
        if (local_[i][w] != kInvalidNode) {
          graph_.AddArc(local_[i][v], local_[i][w]);
        }
      }
    }
  }

  // Lock-release ordering arcs: Ti holds x => U_i x -> remaining L_j x
  // for every Tj whose lock mode on x conflicts with Ti's hold (a shared
  // hold does not make another shared lock wait).
  for (int i = 0; i < n; ++i) {
    const Transaction& ti = sys.txn(i);
    for (EntityId x : prefix.LockedNotUnlocked(i)) {
      NodeId ui = local_[i][ti.UnlockNode(x)];
      // U_i x is remaining by definition (locked-but-not-unlocked).
      for (int j = 0; j < n; ++j) {
        if (j == i) continue;
        const Transaction& tj = sys.txn(j);
        NodeId lj_step = tj.LockNode(x);
        if (lj_step == kInvalidNode) continue;
        if (!LockModesConflict(ti.LockModeOf(x), tj.LockModeOf(x))) continue;
        NodeId lj = local_[j][lj_step];
        if (lj != kInvalidNode) graph_.AddArc(ui, lj);
      }
    }
  }
  graph_.DeduplicateArcs();
}

NodeId ReductionGraph::ToLocal(GlobalNode g) const {
  return local_[g.txn][g.node];
}

bool ReductionGraph::HasCycle() const { return wydb::HasCycle(graph_); }

std::vector<GlobalNode> ReductionGraph::FindGlobalCycle() const {
  std::vector<GlobalNode> out;
  for (NodeId v : FindCycle(graph_)) out.push_back(nodes_[v]);
  return out;
}

std::string ReductionGraph::CycleToString(
    const TransactionSystem& sys,
    const std::vector<GlobalNode>& cycle) const {
  std::vector<std::string> parts;
  parts.reserve(cycle.size());
  for (GlobalNode g : cycle) parts.push_back(sys.NodeLabel(g));
  return Join(parts, " -> ");
}

}  // namespace wydb
