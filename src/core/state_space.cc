#include "core/state_space.h"

#include <bit>
#include <cstring>

#include "common/string_util.h"
#include "core/state_store.h"

namespace wydb {

StateSpace::StateSpace(const TransactionSystem* sys) : sys_(sys) {
  const int n = sys->num_transactions();
  const int num_entities = sys->db().num_entities();
  offset_.resize(n);
  words_.resize(n);
  pred_mask_.resize(n);
  hasse_succ_.resize(n);
  lock_node_.assign(n, std::vector<NodeId>(num_entities, kInvalidNode));
  unlock_node_.assign(n, std::vector<NodeId>(num_entities, kInvalidNode));
  accessors_.resize(num_entities);
  // Four uint16 holder entries per aux word; 0xFFFF = kNoHolder.
  holder_words_ = (num_entities + 3) / 4;
  for (int i = 0; i < n; ++i) {
    offset_[i] = total_words_;
    const Transaction& t = sys->txn(i);
    int words = std::max(1, (t.num_steps() + 63) / 64);
    words_[i] = words;
    total_words_ += words;
    pred_mask_[i].assign(t.num_steps(), std::vector<uint64_t>(words, 0));
    for (NodeId v = 0; v < t.num_steps(); ++v) {
      for (NodeId u = 0; u < t.num_steps(); ++u) {
        if (t.Precedes(u, v)) bitmask::Set(&pred_mask_[i][v], u);
      }
    }
    Digraph hasse = t.HasseDiagram();
    hasse_succ_[i].resize(t.num_steps());
    for (NodeId v = 0; v < t.num_steps(); ++v) {
      hasse_succ_[i][v] = hasse.OutNeighbors(v);
    }
    for (EntityId e : t.entities()) {
      lock_node_[i][e] = t.LockNode(e);
      unlock_node_[i][e] = t.UnlockNode(e);
      accessors_[e].push_back(i);
    }
  }
  entity_unlock_bits_.resize(num_entities);
  for (int e = 0; e < num_entities; ++e) {
    entity_unlock_bits_[e].reserve(accessors_[e].size());
    for (int j : accessors_[e]) {
      const int bit = offset_[j] * 64 + unlock_node_[j][e];
      entity_unlock_bits_[e].push_back(UnlockBit{
          j, bit / 64, 1ULL << (bit % 64), sys->txn(j).LockModeOf(e)});
    }
  }
  full_words_.assign(total_words_, 0);
  for (int i = 0; i < n; ++i) {
    for (NodeId v = 0; v < sys_->txn(i).num_steps(); ++v) {
      bitmask::Set(&full_words_, offset_[i] * 64 + v);
    }
  }
}

ExecState StateSpace::EmptyState() const {
  ExecState s;
  s.words.assign(total_words_, 0);
  return s;
}

ExecState StateSpace::FullState() const {
  ExecState s;
  s.words = full_words_;
  return s;
}

ExecState StateSpace::StateOf(const PrefixSet& prefix) const {
  ExecState s = EmptyState();
  for (int i = 0; i < sys_->num_transactions(); ++i) {
    const auto& m = prefix.masks()[i];
    for (size_t w = 0; w < m.size(); ++w) {
      s.words[offset_[i] + static_cast<int>(w)] = m[w];
    }
  }
  return s;
}

PrefixSet StateSpace::ToPrefixSet(const ExecState& s) const {
  return ToPrefixSet(s.words.data());
}

PrefixSet StateSpace::ToPrefixSet(const uint64_t* words) const {
  PrefixSet p(sys_);
  auto* masks = p.mutable_masks();
  for (int i = 0; i < sys_->num_transactions(); ++i) {
    auto& m = (*masks)[i];
    for (size_t w = 0; w < m.size(); ++w) {
      m[w] = words[offset_[i] + static_cast<int>(w)];
    }
  }
  return p;
}

bool StateSpace::IsComplete(const ExecState& s) const {
  return IsComplete(s.words.data());
}

bool StateSpace::IsComplete(const uint64_t* words) const {
  return std::memcmp(words, full_words_.data(),
                     total_words_ * sizeof(uint64_t)) == 0;
}

bool StateSpace::IsLegal(const ExecState& s, GlobalNode g) const {
  const Transaction& t = sys_->txn(g.txn);
  if (IsExecuted(s, g.txn, g.node)) return false;
  // Predecessors within the transaction must all be executed.
  const auto& pred = pred_mask_[g.txn][g.node];
  for (size_t w = 0; w < pred.size(); ++w) {
    if (pred[w] & ~s.words[offset_[g.txn] + static_cast<int>(w)]) {
      return false;
    }
  }
  if (t.step(g.node).kind == StepKind::kLock) {
    EntityId e = t.step(g.node).entity;
    LockMode m = t.step(g.node).mode;
    // Some other transaction holding e (locked, not yet unlocked) in a
    // conflicting mode blocks; two shared holders coexist.
    for (int j = 0; j < sys_->num_transactions(); ++j) {
      if (j == g.txn) continue;
      const Transaction& tj = sys_->txn(j);
      NodeId lj = tj.LockNode(e);
      if (lj == kInvalidNode) continue;
      if (!LockModesConflict(m, tj.LockModeOf(e))) continue;
      if (IsExecuted(s, j, lj) && !IsExecuted(s, j, tj.UnlockNode(e))) {
        return false;
      }
    }
  }
  return true;
}

std::vector<GlobalNode> StateSpace::LegalMoves(const ExecState& s) const {
  std::vector<GlobalNode> moves;
  for (int i = 0; i < sys_->num_transactions(); ++i) {
    const Transaction& t = sys_->txn(i);
    for (NodeId v = 0; v < t.num_steps(); ++v) {
      GlobalNode g{i, v};
      if (IsLegal(s, g)) moves.push_back(g);
    }
  }
  return moves;
}

ExecState StateSpace::Apply(const ExecState& s, GlobalNode move) const {
  ExecState next = s;
  bitmask::Set(&next.words, offset_[move.txn] * 64 + move.node);
  return next;
}

std::vector<EntityId> StateSpace::Held(const ExecState& s, int i) const {
  const Transaction& t = sys_->txn(i);
  std::vector<EntityId> out;
  for (EntityId e : t.entities()) {
    if (IsExecuted(s, i, t.LockNode(e)) &&
        !IsExecuted(s, i, t.UnlockNode(e))) {
      out.push_back(e);
    }
  }
  return out;
}

// --- Incremental expansion ------------------------------------------------

void StateSpace::InitRoot(uint64_t* state, uint64_t* aux) const {
  std::memset(state, 0, total_words_ * sizeof(uint64_t));
  InitAux(state, aux);
}

void StateSpace::InitAux(const uint64_t* state, uint64_t* aux) const {
  std::memset(aux, 0, aux_words() * sizeof(uint64_t));
  for (int i = 0; i < sys_->num_transactions(); ++i) {
    const Transaction& t = sys_->txn(i);
    for (NodeId v = 0; v < t.num_steps(); ++v) {
      if (IsExecuted(state, i, v)) continue;
      const auto& pred = pred_mask_[i][v];
      bool ready = true;
      for (int w = 0; w < words_[i]; ++w) {
        if (pred[w] & ~state[offset_[i] + w]) {
          ready = false;
          break;
        }
      }
      if (ready) {
        int bit = offset_[i] * 64 + v;
        aux[bit / 64] |= 1ULL << (bit % 64);
      }
    }
  }
  uint16_t* holders = Holders(aux);
  std::memset(holders, 0xFF, holder_words_ * sizeof(uint64_t));
  for (int i = 0; i < sys_->num_transactions(); ++i) {
    const Transaction& t = sys_->txn(i);
    for (EntityId e : t.entities()) {
      if (IsExecuted(state, i, t.LockNode(e)) &&
          !IsExecuted(state, i, t.UnlockNode(e))) {
        if (t.LockModeOf(e) == LockMode::kExclusive) {
          holders[e] = static_cast<uint16_t>(i);
        } else {
          holders[e] = IsSharedEntry(holders[e])
                           ? static_cast<uint16_t>(holders[e] + 1)
                           : static_cast<uint16_t>(kSharedFlag | 1);
        }
      }
    }
  }
}

namespace {

// A frontier Lock of mode `m` is blocked by the holder-table entry `h`
// exactly when a conflicting hold exists: any entry blocks an exclusive
// request, only an exclusive entry blocks a shared one. The holder can
// never be the requester itself (its Lock is still unexecuted), so no
// owner comparison is needed.
inline bool LockBlocked(uint16_t h, LockMode m) {
  if (h == StateSpace::kNoHolder) return false;
  return m == LockMode::kExclusive || StateSpace::IsExclusiveEntry(h);
}

}  // namespace

void StateSpace::ExpandInto(const uint64_t* aux,
                            std::vector<GlobalNode>* moves) const {
  const uint16_t* holders = Holders(aux);
  for (int i = 0; i < sys_->num_transactions(); ++i) {
    const Transaction& t = sys_->txn(i);
    for (int w = 0; w < words_[i]; ++w) {
      uint64_t bits = aux[offset_[i] + w];
      while (bits != 0) {
        int b = std::countr_zero(bits);
        bits &= bits - 1;
        NodeId v = static_cast<NodeId>(w * 64 + b);
        const Step& st = t.step(v);
        if (st.kind == StepKind::kLock &&
            LockBlocked(holders[st.entity], st.mode)) {
          continue;
        }
        moves->push_back(GlobalNode{i, v});
      }
    }
  }
}

int StateSpace::ExpandReducedInto(const uint64_t* state, const uint64_t* aux,
                                  std::vector<GlobalNode>* moves) const {
  const size_t base = moves->size();
  const uint16_t* holders = Holders(aux);
  // first_safe indexes into *moves; npos = no invisible move seen yet.
  constexpr size_t kNone = static_cast<size_t>(-1);
  size_t first_safe = kNone;
  for (int i = 0; i < sys_->num_transactions(); ++i) {
    const Transaction& t = sys_->txn(i);
    for (int w = 0; w < words_[i]; ++w) {
      uint64_t bits = aux[offset_[i] + w];
      while (bits != 0) {
        int b = std::countr_zero(bits);
        bits &= bits - 1;
        NodeId v = static_cast<NodeId>(w * 64 + b);
        const Step& st = t.step(v);
        if (st.kind == StepKind::kLock &&
            LockBlocked(holders[st.entity], st.mode)) {
          continue;
        }
        moves->push_back(GlobalNode{i, v});
        if (first_safe == kNone) {
          // Unlock steps carry the mode of the matching Lock (normalized
          // by Transaction::Create), so st.mode is the move's mode for
          // both kinds: only conflicting accessors must be done.
          bool safe = true;
          for (const UnlockBit& u : entity_unlock_bits_[st.entity]) {
            if (u.txn == i || !LockModesConflict(st.mode, u.mode)) continue;
            if ((state[u.word] & u.mask) == 0) {
              safe = false;
              break;
            }
          }
          if (safe) first_safe = moves->size() - 1;
        }
      }
    }
  }
  if (first_safe == kNone) return 0;
  // One invisible move covers every sibling: keep it, drop the rest.
  const int pruned = static_cast<int>(moves->size() - base) - 1;
  (*moves)[base] = (*moves)[first_safe];
  moves->resize(base + 1);
  return pruned;
}

void StateSpace::ApplyInto(const uint64_t* state, const uint64_t* aux,
                           GlobalNode g, uint64_t* next_state,
                           uint64_t* next_aux) const {
  std::memcpy(next_state, state, total_words_ * sizeof(uint64_t));
  std::memcpy(next_aux, aux, aux_words() * sizeof(uint64_t));
  const int bit = offset_[g.txn] * 64 + g.node;
  next_state[bit / 64] |= 1ULL << (bit % 64);
  next_aux[bit / 64] &= ~(1ULL << (bit % 64));
  // Only direct successors of g can become ready.
  for (NodeId u : hasse_succ_[g.txn][g.node]) {
    const auto& pu = pred_mask_[g.txn][u];
    bool ready = true;
    for (int w = 0; w < words_[g.txn]; ++w) {
      if (pu[w] & ~next_state[offset_[g.txn] + w]) {
        ready = false;
        break;
      }
    }
    if (ready) {
      int ubit = offset_[g.txn] * 64 + u;
      next_aux[ubit / 64] |= 1ULL << (ubit % 64);
    }
  }
  const Step& st = sys_->txn(g.txn).step(g.node);
  uint16_t* holders = Holders(next_aux);
  uint16_t& h = holders[st.entity];
  if (st.kind == StepKind::kLock) {
    if (st.mode == LockMode::kExclusive) {
      h = static_cast<uint16_t>(g.txn);
    } else {
      // Join (or found) the shared-holder set.
      h = IsSharedEntry(h) ? static_cast<uint16_t>(h + 1)
                           : static_cast<uint16_t>(kSharedFlag | 1);
    }
  } else {
    // st.mode is the matching Lock's mode (normalized at Create time).
    if (st.mode == LockMode::kShared && IsSharedEntry(h) &&
        (h & ~kSharedFlag) > 1) {
      h = static_cast<uint16_t>(h - 1);
    } else {
      h = kNoHolder;
    }
  }
}

Result<std::optional<std::vector<GlobalNode>>>
StateSpace::FindScheduleBetween(const ExecState& from, const ExecState& target,
                                uint64_t max_states) const {
  if (!bitmask::IsSubset(from.words, target.words)) {
    return Status::InvalidArgument("target is not a superset of the start");
  }
  if (from.words == target.words) {
    return std::optional<std::vector<GlobalNode>>(std::vector<GlobalNode>{});
  }

  auto in_target = [&](GlobalNode g) {
    return bitmask::Test(target.words, offset_[g.txn] * 64 + g.node);
  };

  // Iterative DFS with a dead-state memo: a state is dead if no in-target
  // move sequence from it reaches the target. States are interned so the
  // memo and the per-state expansion caches live in flat arrays, and the
  // explicit frame stack makes the search depth independent of the native
  // call stack.
  StateStore store(total_words_, aux_words());
  std::vector<uint8_t> dead;
  std::vector<uint64_t> child_state(total_words_);
  std::vector<uint64_t> child_aux(aux_words());

  struct Frame {
    uint32_t id;
    std::vector<GlobalNode> moves;
    size_t next = 0;
  };

  // Frames are pooled by depth — popping keeps the slot (and its moves
  // capacity) for the next push, so expansion allocates only while the
  // search deepens past its previous maximum.
  std::vector<Frame> frames;
  size_t depth = 0;
  auto push_frame = [&](uint32_t id) {
    if (depth == frames.size()) frames.emplace_back();
    Frame& f = frames[depth++];
    f.id = id;
    f.next = 0;
    f.moves.clear();
    ExpandInto(store.AuxOf(id), &f.moves);
    std::erase_if(f.moves, [&](GlobalNode g) { return !in_target(g); });
  };

  std::vector<uint64_t> root_aux(aux_words());
  InitAux(from.words.data(), root_aux.data());
  uint32_t root = store.Intern(from.words.data()).id;
  std::memcpy(store.MutableAuxOf(root), root_aux.data(),
              aux_words() * sizeof(uint64_t));
  dead.push_back(0);

  uint64_t expanded = 1;  // The root counts as expanded, as before.
  if (max_states != 0 && expanded > max_states) {
    return Status::ResourceExhausted(
        StrFormat("schedule search exceeded %llu states",
                  static_cast<unsigned long long>(max_states)));
  }

  std::vector<GlobalNode> path;
  push_frame(root);

  while (depth > 0) {
    Frame& top = frames[depth - 1];
    if (top.next >= top.moves.size()) {
      dead[top.id] = 1;
      --depth;
      if (depth > 0) path.pop_back();
      continue;
    }
    GlobalNode g = top.moves[top.next++];
    ApplyInto(store.KeyOf(top.id), store.AuxOf(top.id), g, child_state.data(),
              child_aux.data());
    if (std::memcmp(child_state.data(), target.words.data(),
                    total_words_ * sizeof(uint64_t)) == 0) {
      path.push_back(g);
      return std::optional<std::vector<GlobalNode>>(std::move(path));
    }
    StateStore::InternResult r = store.Intern(child_state.data());
    if (r.inserted) {
      std::memcpy(store.MutableAuxOf(r.id), child_aux.data(),
                  aux_words() * sizeof(uint64_t));
      dead.push_back(0);
    } else if (dead[r.id]) {
      continue;
    }
    if (max_states != 0 && ++expanded > max_states) {
      return Status::ResourceExhausted(
          StrFormat("schedule search exceeded %llu states",
                    static_cast<unsigned long long>(max_states)));
    }
    path.push_back(g);
    push_frame(r.id);
  }
  return std::optional<std::vector<GlobalNode>>(std::nullopt);
}

}  // namespace wydb
