#include "core/state_space.h"

#include <unordered_set>

#include "common/string_util.h"

namespace wydb {

StateSpace::StateSpace(const TransactionSystem* sys) : sys_(sys) {
  const int n = sys->num_transactions();
  offset_.resize(n);
  pred_mask_.resize(n);
  for (int i = 0; i < n; ++i) {
    offset_[i] = total_words_;
    const Transaction& t = sys->txn(i);
    int words = std::max(1, (t.num_steps() + 63) / 64);
    total_words_ += words;
    pred_mask_[i].assign(t.num_steps(), std::vector<uint64_t>(words, 0));
    for (NodeId v = 0; v < t.num_steps(); ++v) {
      for (NodeId u = 0; u < t.num_steps(); ++u) {
        if (t.Precedes(u, v)) bitmask::Set(&pred_mask_[i][v], u);
      }
    }
  }
}

ExecState StateSpace::EmptyState() const {
  ExecState s;
  s.words.assign(total_words_, 0);
  return s;
}

ExecState StateSpace::FullState() const {
  ExecState s = EmptyState();
  for (int i = 0; i < sys_->num_transactions(); ++i) {
    for (NodeId v = 0; v < sys_->txn(i).num_steps(); ++v) {
      bitmask::Set(&s.words, offset_[i] * 64 + v);
    }
  }
  return s;
}

ExecState StateSpace::StateOf(const PrefixSet& prefix) const {
  ExecState s = EmptyState();
  for (int i = 0; i < sys_->num_transactions(); ++i) {
    const auto& m = prefix.masks()[i];
    for (size_t w = 0; w < m.size(); ++w) {
      s.words[offset_[i] + static_cast<int>(w)] = m[w];
    }
  }
  return s;
}

PrefixSet StateSpace::ToPrefixSet(const ExecState& s) const {
  PrefixSet p(sys_);
  auto* masks = p.mutable_masks();
  for (int i = 0; i < sys_->num_transactions(); ++i) {
    auto& m = (*masks)[i];
    for (size_t w = 0; w < m.size(); ++w) {
      m[w] = s.words[offset_[i] + static_cast<int>(w)];
    }
  }
  return p;
}

bool StateSpace::IsComplete(const ExecState& s) const {
  for (int i = 0; i < sys_->num_transactions(); ++i) {
    const Transaction& t = sys_->txn(i);
    for (NodeId v = 0; v < t.num_steps(); ++v) {
      if (!IsExecuted(s, i, v)) return false;
    }
  }
  return true;
}

bool StateSpace::IsLegal(const ExecState& s, GlobalNode g) const {
  const Transaction& t = sys_->txn(g.txn);
  if (IsExecuted(s, g.txn, g.node)) return false;
  // Predecessors within the transaction must all be executed.
  const auto& pred = pred_mask_[g.txn][g.node];
  for (size_t w = 0; w < pred.size(); ++w) {
    if (pred[w] & ~s.words[offset_[g.txn] + static_cast<int>(w)]) {
      return false;
    }
  }
  if (t.step(g.node).kind == StepKind::kLock) {
    EntityId e = t.step(g.node).entity;
    // Some other transaction holding e (locked, not yet unlocked) blocks.
    for (int j = 0; j < sys_->num_transactions(); ++j) {
      if (j == g.txn) continue;
      const Transaction& tj = sys_->txn(j);
      NodeId lj = tj.LockNode(e);
      if (lj == kInvalidNode) continue;
      if (IsExecuted(s, j, lj) && !IsExecuted(s, j, tj.UnlockNode(e))) {
        return false;
      }
    }
  }
  return true;
}

std::vector<GlobalNode> StateSpace::LegalMoves(const ExecState& s) const {
  std::vector<GlobalNode> moves;
  for (int i = 0; i < sys_->num_transactions(); ++i) {
    const Transaction& t = sys_->txn(i);
    for (NodeId v = 0; v < t.num_steps(); ++v) {
      GlobalNode g{i, v};
      if (IsLegal(s, g)) moves.push_back(g);
    }
  }
  return moves;
}

ExecState StateSpace::Apply(const ExecState& s, GlobalNode move) const {
  ExecState next = s;
  bitmask::Set(&next.words, offset_[move.txn] * 64 + move.node);
  return next;
}

std::vector<EntityId> StateSpace::Held(const ExecState& s, int i) const {
  const Transaction& t = sys_->txn(i);
  std::vector<EntityId> out;
  for (EntityId e : t.entities()) {
    if (IsExecuted(s, i, t.LockNode(e)) &&
        !IsExecuted(s, i, t.UnlockNode(e))) {
      out.push_back(e);
    }
  }
  return out;
}

Result<std::optional<std::vector<GlobalNode>>>
StateSpace::FindScheduleBetween(const ExecState& from, const ExecState& target,
                                uint64_t max_states) const {
  if (!bitmask::IsSubset(from.words, target.words)) {
    return Status::InvalidArgument("target is not a superset of the start");
  }
  // DFS with a dead-state memo: a state is dead if no in-target move
  // sequence from it reaches the target.
  std::unordered_set<ExecState, ExecStateHash> dead;
  std::vector<GlobalNode> path;
  uint64_t expanded = 0;
  bool exhausted = false;

  auto in_target = [&](GlobalNode g) {
    return bitmask::Test(target.words, offset_[g.txn] * 64 + g.node);
  };

  std::function<bool(const ExecState&)> dfs = [&](const ExecState& s) -> bool {
    if (s.words == target.words) return true;
    if (dead.count(s)) return false;
    if (max_states != 0 && ++expanded > max_states) {
      exhausted = true;
      return false;
    }
    for (const GlobalNode& g : LegalMoves(s)) {
      if (!in_target(g)) continue;
      path.push_back(g);
      if (dfs(Apply(s, g))) return true;
      path.pop_back();
      if (exhausted) return false;
    }
    dead.insert(s);
    return false;
  };

  bool found = dfs(from);
  if (exhausted) {
    return Status::ResourceExhausted(
        StrFormat("schedule search exceeded %llu states",
                  static_cast<unsigned long long>(max_states)));
  }
  if (!found) return std::optional<std::vector<GlobalNode>>(std::nullopt);
  return std::optional<std::vector<GlobalNode>>(std::move(path));
}

}  // namespace wydb
