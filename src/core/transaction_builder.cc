#include "core/transaction_builder.h"

#include <unordered_map>

namespace wydb {

int TransactionBuilder::Lock(const std::string& entity) {
  EntityId e = db_->FindEntity(entity);
  if (e == kInvalidEntity) {
    if (first_error_.ok()) {
      first_error_ = Status::NotFound("unknown entity '" + entity + "'");
    }
    return -1;
  }
  return AddStep(StepKind::kLock, e);
}

int TransactionBuilder::LockShared(const std::string& entity) {
  EntityId e = db_->FindEntity(entity);
  if (e == kInvalidEntity) {
    if (first_error_.ok()) {
      first_error_ = Status::NotFound("unknown entity '" + entity + "'");
    }
    return -1;
  }
  return AddStep(StepKind::kLock, e, LockMode::kShared);
}

int TransactionBuilder::Unlock(const std::string& entity) {
  EntityId e = db_->FindEntity(entity);
  if (e == kInvalidEntity) {
    if (first_error_.ok()) {
      first_error_ = Status::NotFound("unknown entity '" + entity + "'");
    }
    return -1;
  }
  return AddStep(StepKind::kUnlock, e);
}

int TransactionBuilder::AddStep(StepKind kind, EntityId e, LockMode mode) {
  steps_.push_back(Step{kind, e, mode});
  return static_cast<int>(steps_.size()) - 1;
}

TransactionBuilder& TransactionBuilder::Arc(int from, int to) {
  if (from < 0 || to < 0) {
    if (first_error_.ok()) {
      first_error_ = Status::InvalidArgument("arc references a failed step");
    }
    return *this;
  }
  arcs_.emplace_back(from, to);
  return *this;
}

TransactionBuilder& TransactionBuilder::Chain(
    std::initializer_list<int> steps) {
  int prev = -2;  // Sentinel distinct from the -1 failure marker.
  for (int s : steps) {
    if (prev != -2) Arc(prev, s);
    prev = s;
  }
  return *this;
}

Result<Transaction> TransactionBuilder::Build() {
  if (!first_error_.ok()) return first_error_;

  std::vector<std::pair<int, int>> arcs = arcs_;

  // Lock -> Unlock for each entity that has both.
  std::unordered_map<EntityId, int> lock_at, unlock_at;
  for (int i = 0; i < static_cast<int>(steps_.size()); ++i) {
    auto& table = steps_[i].kind == StepKind::kLock ? lock_at : unlock_at;
    table.emplace(steps_[i].entity, i);  // Duplicates caught by Create().
  }
  for (const auto& [e, li] : lock_at) {
    auto it = unlock_at.find(e);
    if (it != unlock_at.end()) arcs.emplace_back(li, it->second);
  }

  if (auto_site_chain_) {
    std::unordered_map<SiteId, int> last_at_site;
    for (int i = 0; i < static_cast<int>(steps_.size()); ++i) {
      SiteId site = db_->SiteOf(steps_[i].entity);
      auto it = last_at_site.find(site);
      if (it != last_at_site.end()) arcs.emplace_back(it->second, i);
      last_at_site[site] = i;
    }
  }

  return Transaction::Create(db_, name_, steps_, std::move(arcs));
}

Result<Transaction> TransactionBuilder::FromSequence(
    const Database* db, const std::string& name,
    const std::vector<std::pair<StepKind, std::string>>& seq) {
  TransactionBuilder b(db, name);
  b.set_auto_site_chain(false);
  int prev = -1;
  for (const auto& [kind, entity] : seq) {
    EntityId e = db->FindEntity(entity);
    int cur;
    if (e == kInvalidEntity) {
      cur = kind == StepKind::kLock ? b.Lock(entity) : b.Unlock(entity);
    } else {
      cur = kind == StepKind::kLock ? b.LockId(e) : b.UnlockId(e);
    }
    if (prev >= 0 && cur >= 0) b.Arc(prev, cur);
    prev = cur;
  }
  return b.Build();
}

}  // namespace wydb
