// The distributed database of Section 2: a finite set of entities
// partitioned into pairwise disjoint sites.
#ifndef WYDB_CORE_DATABASE_H_
#define WYDB_CORE_DATABASE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace wydb {

/// Dense id of an entity within a Database.
using EntityId = int32_t;
/// Dense id of a site within a Database.
using SiteId = int32_t;

inline constexpr EntityId kInvalidEntity = -1;
inline constexpr SiteId kInvalidSite = -1;

/// \brief Catalog of named entities, each assigned to exactly one site.
///
/// Replication is deliberately absent, matching the paper: copies of the
/// same logical item at different sites are modelled as distinct entities
/// whose equality is the transactions' concern.
class Database {
 public:
  Database() = default;

  /// Adds a site and returns its id. `name` must be unique.
  Result<SiteId> AddSite(const std::string& name);

  /// Adds entity `name` at `site`. `name` must be globally unique (the
  /// paper's sites are disjoint subsets of one entity set).
  Result<EntityId> AddEntity(const std::string& name, SiteId site);

  /// Convenience: creates the site on first use, then the entity.
  Result<EntityId> AddEntityAtSite(const std::string& entity_name,
                                   const std::string& site_name);

  int num_sites() const { return static_cast<int>(site_names_.size()); }
  int num_entities() const { return static_cast<int>(entity_site_.size()); }

  SiteId SiteOf(EntityId e) const { return entity_site_[e]; }
  const std::string& EntityName(EntityId e) const { return entity_names_[e]; }
  const std::string& SiteName(SiteId s) const { return site_names_[s]; }

  /// Id lookup by name; kInvalidEntity / kInvalidSite if absent.
  EntityId FindEntity(const std::string& name) const;
  SiteId FindSite(const std::string& name) const;

  /// All entities residing at `site`.
  std::vector<EntityId> EntitiesAt(SiteId site) const;

 private:
  std::vector<std::string> site_names_;
  std::vector<std::string> entity_names_;
  std::vector<SiteId> entity_site_;
  std::unordered_map<std::string, SiteId> site_by_name_;
  std::unordered_map<std::string, EntityId> entity_by_name_;
};

}  // namespace wydb

#endif  // WYDB_CORE_DATABASE_H_
