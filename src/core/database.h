// The distributed database of Section 2: a finite set of entities
// partitioned into pairwise disjoint sites.
#ifndef WYDB_CORE_DATABASE_H_
#define WYDB_CORE_DATABASE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace wydb {

/// Dense id of an entity within a Database.
using EntityId = int32_t;
/// Dense id of a site within a Database.
using SiteId = int32_t;

inline constexpr EntityId kInvalidEntity = -1;
inline constexpr SiteId kInvalidSite = -1;

/// \brief Catalog of named entities, each assigned to exactly one site.
///
/// The catalog itself is single-copy, matching the paper's Section 2
/// model: the analyses reason about logical entities. Physical
/// replication is layered on top as a CopyPlacement, which the runtime
/// engine consumes; the static layers never see it.
class Database {
 public:
  Database() = default;

  /// Adds a site and returns its id. `name` must be unique.
  Result<SiteId> AddSite(const std::string& name);

  /// Adds entity `name` at `site`. `name` must be globally unique (the
  /// paper's sites are disjoint subsets of one entity set).
  Result<EntityId> AddEntity(const std::string& name, SiteId site);

  /// Convenience: creates the site on first use, then the entity.
  Result<EntityId> AddEntityAtSite(const std::string& entity_name,
                                   const std::string& site_name);

  int num_sites() const { return static_cast<int>(site_names_.size()); }
  int num_entities() const { return static_cast<int>(entity_site_.size()); }

  SiteId SiteOf(EntityId e) const { return entity_site_[e]; }
  const std::string& EntityName(EntityId e) const { return entity_names_[e]; }
  const std::string& SiteName(SiteId s) const { return site_names_[s]; }

  /// Id lookup by name; kInvalidEntity / kInvalidSite if absent.
  EntityId FindEntity(const std::string& name) const;
  SiteId FindSite(const std::string& name) const;

  /// All entities residing at `site`.
  std::vector<EntityId> EntitiesAt(SiteId site) const;

 private:
  std::vector<std::string> site_names_;
  std::vector<std::string> entity_names_;
  std::vector<SiteId> entity_site_;
  std::unordered_map<std::string, SiteId> site_by_name_;
  std::unordered_map<std::string, EntityId> entity_by_name_;
};

/// \brief Physical copy placement: EntityId -> ordered list of sites
/// holding a copy. The first site of each list is the primary copy.
///
/// The static analyses work on the logical single-copy Database; the
/// runtime engine consumes a placement to fan lock/unlock traffic out to
/// every copy (write-all with primary-copy serialization, DESIGN.md §6).
/// The default placement puts each entity's only copy at its catalog
/// site, which reproduces the single-copy engine exactly.
class CopyPlacement {
 public:
  CopyPlacement() = default;

  /// Single-copy placement: one copy per entity at Database::SiteOf.
  explicit CopyPlacement(const Database& db);

  /// Uniform replication: entity e gets copies at `degree` consecutive
  /// sites starting from its catalog site (wrapping around the site
  /// list). The degree is clamped to [1, db.num_sites()].
  static CopyPlacement RoundRobin(const Database& db, int degree);

  /// Overrides the copy list of `e`. Sites must be distinct, in range and
  /// nonempty; the first listed site becomes the primary.
  Status SetCopies(const Database& db, EntityId e,
                   std::vector<SiteId> sites);

  int num_entities() const { return static_cast<int>(copies_.size()); }

  /// Copy sites of `e`, primary first. Never empty.
  const std::vector<SiteId>& CopiesOf(EntityId e) const {
    return copies_[e];
  }
  SiteId PrimaryOf(EntityId e) const { return copies_[e][0]; }
  int DegreeOf(EntityId e) const {
    return static_cast<int>(copies_[e].size());
  }
  int MaxDegree() const;

  /// True iff some entity has more than one copy.
  bool IsReplicated() const;

 private:
  std::vector<std::vector<SiteId>> copies_;
};

}  // namespace wydb

#endif  // WYDB_CORE_DATABASE_H_
