// The reduction graph R(A') of a prefix (Section 3).
//
// Nodes: the remaining (unexecuted) steps of all transactions.
// Arcs:   the transactions' own precedence arcs among remaining steps, plus
//         for every entity x locked-but-not-unlocked by Ti in A', arcs from
//         U_i x to the remaining L_j x of every other transaction whose
//         lock mode on x conflicts with Ti's hold (all of them in the
//         paper's exclusive-only alphabet; a shared hold does not make
//         another shared lock wait).
// A prefix with a schedule whose reduction graph is cyclic is a *deadlock
// prefix*; Theorem 1 proves a system is deadlock-free iff it has none.
#ifndef WYDB_CORE_REDUCTION_GRAPH_H_
#define WYDB_CORE_REDUCTION_GRAPH_H_

#include <string>
#include <vector>

#include "core/prefix.h"
#include "core/system.h"
#include "graph/digraph.h"

namespace wydb {

/// \brief R(A') with a mapping between its local node ids and the
/// system's GlobalNodes.
class ReductionGraph {
 public:
  /// Builds R(A') for the given prefix. The prefix need not have a
  /// schedule; whether it does is a separate question (see Theorem 1 and
  /// DeadlockChecker).
  explicit ReductionGraph(const PrefixSet& prefix);

  const Digraph& digraph() const { return graph_; }

  int num_nodes() const { return graph_.num_nodes(); }

  GlobalNode ToGlobal(NodeId local) const { return nodes_[local]; }

  /// kInvalidNode if that step was executed (not part of R).
  NodeId ToLocal(GlobalNode g) const;

  bool HasCycle() const;

  /// A cycle as GlobalNodes (empty when acyclic).
  std::vector<GlobalNode> FindGlobalCycle() const;

  /// Renders a cycle like "T1.Lz -> T1.Uy -> T2.Ly -> ...".
  std::string CycleToString(const TransactionSystem& sys,
                            const std::vector<GlobalNode>& cycle) const;

 private:
  std::vector<GlobalNode> nodes_;           // local -> global
  std::vector<std::vector<NodeId>> local_;  // [txn][node] -> local id
  Digraph graph_;
};

}  // namespace wydb

#endif  // WYDB_CORE_REDUCTION_GRAPH_H_
