// Locked transactions (Section 2 of the paper): a transaction is a partial
// order of Lock/Unlock steps such that
//   * for each accessed entity x there is exactly one Lx and one Ux, with
//     Lx preceding Ux, and
//   * steps on entities residing at the same site are totally ordered.
// Action nodes are omitted, as justified in Section 2 of the paper: safety
// and deadlock-freedom depend only on the Lock/Unlock structure.
#ifndef WYDB_CORE_TRANSACTION_H_
#define WYDB_CORE_TRANSACTION_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "core/database.h"
#include "graph/algorithms.h"
#include "graph/digraph.h"

namespace wydb {

/// Kind of a transaction step.
enum class StepKind : uint8_t {
  kLock,
  kUnlock,
};

/// Mode of a Lock step. The paper's alphabet is exclusive-only; shared
/// (read) locks are the standard S/X extension: two S locks on the same
/// entity are compatible, every other combination conflicts.
enum class LockMode : uint8_t {
  kShared,
  kExclusive,
};

/// True iff locks of modes `a` and `b` on the same entity conflict
/// (i.e. unless both are shared).
inline bool LockModesConflict(LockMode a, LockMode b) {
  return a == LockMode::kExclusive || b == LockMode::kExclusive;
}

const char* LockModeName(LockMode mode);

/// One node of the transaction partial order.
struct Step {
  StepKind kind;
  EntityId entity;
  /// Meaningful on kLock steps; kUnlock releases whatever mode was taken.
  LockMode mode = LockMode::kExclusive;

  bool operator==(const Step&) const = default;
};

/// \brief A validated locked transaction: a DAG of Lock/Unlock steps.
///
/// Instances are immutable after creation and cache the transitive closure
/// of their precedence relation, so `Precedes` is O(1). Create via
/// Transaction::Create or TransactionBuilder.
class Transaction {
 public:
  /// Validates the model constraints and builds the closure.
  ///
  /// `arcs` are precedence pairs (from-step-index, to-step-index); they may
  /// contain redundant (transitively implied) arcs. Per-site total order is
  /// *checked*, not inferred: two same-site steps unrelated by `arcs` make
  /// validation fail with InvalidModel.
  static Result<Transaction> Create(const Database* db, std::string name,
                                    std::vector<Step> steps,
                                    std::vector<std::pair<int, int>> arcs);

  const std::string& name() const { return name_; }
  const Database& db() const { return *db_; }

  int num_steps() const { return static_cast<int>(steps_.size()); }
  const Step& step(NodeId v) const { return steps_[v]; }

  /// The given precedence arcs (not transitively closed).
  const Digraph& graph() const { return graph_; }

  /// True iff step u strictly precedes step v in the partial order.
  bool Precedes(NodeId u, NodeId v) const { return closure_.Reaches(u, v); }

  /// True iff u and v are ordered one way or the other.
  bool Comparable(NodeId u, NodeId v) const {
    return Precedes(u, v) || Precedes(v, u);
  }

  /// Entities accessed by this transaction: the set R(T), ascending.
  const std::vector<EntityId>& entities() const { return entities_; }

  bool Accesses(EntityId e) const {
    return lock_node_.count(e) > 0;
  }

  /// The Lx / Ux node for entity e; kInvalidNode if e is not accessed.
  NodeId LockNode(EntityId e) const;
  NodeId UnlockNode(EntityId e) const;

  /// Mode of this transaction's (unique) lock on e; kExclusive if e is
  /// not accessed.
  LockMode LockModeOf(EntityId e) const;

  /// True iff this transaction's access of e conflicts with an access of
  /// e in `other_mode` (i.e. unless both are shared). False if e is not
  /// accessed at all.
  bool ConflictsOn(EntityId e, LockMode other_mode) const {
    return Accesses(e) && LockModesConflict(LockModeOf(e), other_mode);
  }

  SiteId SiteOfStep(NodeId v) const { return db_->SiteOf(steps_[v].entity); }

  /// R_T(s): entities z whose Lz strictly precedes step s (paper §5).
  std::vector<EntityId> EntitiesLockedBefore(NodeId s) const;

  /// L_T(s): entities z such that s precedes Uz but s does not precede Lz
  /// (paper §5) — what is held right before s in the *laziest* extension.
  std::vector<EntityId> EntitiesHeldAt(NodeId s) const;

  /// One fixed linear extension (topological order with deterministic
  /// tie-breaking by node id).
  std::vector<NodeId> SomeLinearExtension() const;

  /// A uniformly-ish random linear extension (random tie-breaking; not
  /// exactly uniform over extensions, but covers all of them with positive
  /// probability).
  std::vector<NodeId> SampleLinearExtension(Rng* rng) const;

  /// All linear extensions, stopping after `max_count` (0 = unbounded;
  /// beware, the count is exponential in general).
  std::vector<std::vector<NodeId>> AllLinearExtensions(
      uint64_t max_count = 0) const;

  /// Calls `visit` for each linear extension until it returns false or all
  /// extensions are exhausted. Returns false iff `visit` stopped early.
  bool ForEachLinearExtension(
      const std::function<bool(const std::vector<NodeId>&)>& visit) const;

  /// The Hasse diagram (transitive reduction) of the precedence relation.
  Digraph HasseDiagram() const;

  /// "Lx" (exclusive lock) / "Sx" (shared lock) / "Ux" (unlock) with the
  /// entity name from the database — the `.wydb` step-token syntax.
  std::string StepLabel(NodeId v) const;

  /// Multi-line dump: one line per step with its direct successors.
  std::string DebugString() const;

 private:
  Transaction() = default;

  const Database* db_ = nullptr;
  std::string name_;
  std::vector<Step> steps_;
  Digraph graph_;
  ReachabilityMatrix closure_;
  std::vector<EntityId> entities_;
  std::unordered_map<EntityId, NodeId> lock_node_;
  std::unordered_map<EntityId, NodeId> unlock_node_;
};

}  // namespace wydb

#endif  // WYDB_CORE_TRANSACTION_H_
