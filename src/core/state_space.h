// Execution state space of a transaction system: states are the prefixes
// reached by legal partial schedules; moves are single lock-respecting
// steps. The exact (exponential-time) checkers and the schedule-completion
// search are all built on this engine.
//
// Two APIs are exposed:
//
//   * The naive API (LegalMoves/Apply/IsLegal over heap-allocated
//     ExecState) rescans every step of every transaction per state. It is
//     retained as the cross-validation reference and for callers off the
//     hot path.
//
//   * The incremental API (InitRoot/InitAux/ExpandInto/ApplyInto) works on
//     raw word buffers sized for a StateStore: each state carries an aux
//     cache holding its frontier bitmask (steps whose intra-transaction
//     predecessors are all executed) and a per-entity lock-holder table.
//     ApplyInto updates both in O(successors-of-move + 1), and ExpandInto
//     emits legal moves in O(frontier) — instead of O(total steps x
//     transactions) per state.
#ifndef WYDB_CORE_STATE_SPACE_H_
#define WYDB_CORE_STATE_SPACE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/result.h"
#include "core/prefix.h"
#include "core/system.h"

namespace wydb {

/// \brief A point in the execution: for each transaction, the set of steps
/// already executed (always downward-closed). Hashable, cheap to copy.
struct ExecState {
  /// Concatenation of per-transaction node bitmasks.
  std::vector<uint64_t> words;

  bool operator==(const ExecState&) const = default;
};

struct ExecStateHash {
  size_t operator()(const ExecState& s) const {
    uint64_t h = 0xCBF29CE484222325ULL;
    for (uint64_t w : s.words) {
      h ^= w;
      h *= 0x100000001B3ULL;
    }
    return static_cast<size_t>(h);
  }
};

/// \brief Legal-move engine over a TransactionSystem.
///
/// Precomputes per-step predecessor masks, Hasse successors, per-entity
/// lock/unlock positions and accessor lists so that move generation is
/// incremental along search paths.
class StateSpace {
 public:
  /// "No transaction" marker in the per-entity holder table.
  static constexpr uint16_t kNoHolder = 0xFFFF;
  /// Holder-table entries are a holder SET, packed in 16 bits per entity
  /// (DESIGN.md §11): kNoHolder = free; a value < kSharedFlag = the id of
  /// the single exclusive holder; kSharedFlag|count = held shared by
  /// `count` transactions. The count form is deliberately anonymous —
  /// it is permutation-invariant, so the orbit canonicalizer only remaps
  /// exclusive entries — and suffices for legality: an X request is
  /// blocked by any entry, an S request only by an exclusive one.
  /// X-only systems never produce shared entries, so their aux buffers
  /// are bit-identical to the exclusive-only encoding.
  static constexpr uint16_t kSharedFlag = 0x8000;

  static bool IsSharedEntry(uint16_t h) {
    return h != kNoHolder && (h & kSharedFlag) != 0;
  }
  static bool IsExclusiveEntry(uint16_t h) {
    return h != kNoHolder && (h & kSharedFlag) == 0;
  }

  explicit StateSpace(const TransactionSystem* sys);

  const TransactionSystem& system() const { return *sys_; }

  ExecState EmptyState() const;
  ExecState FullState() const;

  /// State in which exactly the nodes of `prefix` are executed.
  ExecState StateOf(const PrefixSet& prefix) const;

  /// PrefixSet view of a state (for diagnostics / reduction graphs).
  PrefixSet ToPrefixSet(const ExecState& s) const;
  /// Same, from a raw word buffer of words_per_state() words.
  PrefixSet ToPrefixSet(const uint64_t* words) const;

  bool IsExecuted(const ExecState& s, int txn, NodeId v) const {
    return bitmask::Test(s.words, offset_[txn] * 64 + v) != 0;
  }
  bool IsExecuted(const uint64_t* words, int txn, NodeId v) const {
    int bit = offset_[txn] * 64 + v;
    return (words[bit / 64] >> (bit % 64)) & 1;
  }

  bool IsComplete(const ExecState& s) const;
  bool IsComplete(const uint64_t* words) const;

  /// Steps executable next: per-transaction frontier nodes whose lock
  /// acquisition (if any) is permitted by the current lock table.
  std::vector<GlobalNode> LegalMoves(const ExecState& s) const;

  /// Executes `move`; the caller guarantees it is legal.
  ExecState Apply(const ExecState& s, GlobalNode move) const;

  /// True iff the Lock/step `g` is permitted in `s` (predecessors executed
  /// and, for a Lock, no other transaction holds the entity in a
  /// conflicting mode — two shared holders coexist).
  bool IsLegal(const ExecState& s, GlobalNode g) const;

  /// Entity currently held (locked-not-unlocked) by txn `i` in `s`.
  std::vector<EntityId> Held(const ExecState& s, int i) const;

  // --- Incremental expansion API (StateStore-backed searches) -----------
  //
  // A state is `words_per_state()` key words plus `aux_words()` cache
  // words laid out as [frontier: words_per_state()][holders: packed
  // uint16 per database entity, kNoHolder when free].

  int words_per_state() const { return total_words_; }
  int aux_words() const { return total_words_ + holder_words_; }

  /// Writes the empty state and its aux cache into caller buffers of
  /// words_per_state() / aux_words() words.
  void InitRoot(uint64_t* state, uint64_t* aux) const;

  /// Recomputes the aux cache of an arbitrary `state` from scratch
  /// (O(total steps); used once per search root).
  void InitAux(const uint64_t* state, uint64_t* aux) const;

  /// Appends the legal moves of the state described by `aux` to `*moves`,
  /// in ascending (txn, node) order — the same order as LegalMoves.
  void ExpandInto(const uint64_t* aux, std::vector<GlobalNode>* moves) const;

  /// Commutativity-reduced expansion (the sleep-set / persistent-move
  /// half of SearchEngine::kReduced, DESIGN.md §8.1 and §11). A legal
  /// move is *invisible* when every other accessor of its entity whose
  /// lock mode CONFLICTS with the move's mode has already executed its
  /// Unlock of that entity: no future step of any other transaction can
  /// conflict on the entity, so the move commutes with every
  /// interleaving that postpones it — and {move} is a singleton
  /// persistent set. Shared locks commute with each other, so an S move
  /// ignores the other S accessors entirely — strictly more pruning
  /// than the exclusive-only rule, which needs every other accessor
  /// done. When the state has an invisible move, only the first one (in
  /// ExpandInto order) is appended; otherwise all legal moves are.
  /// Returns the number of expansions pruned. `*moves` is empty on
  /// return iff the state has no legal move at all, so stuck detection
  /// is unaffected by the pruning.
  int ExpandReducedInto(const uint64_t* state, const uint64_t* aux,
                        std::vector<GlobalNode>* moves) const;

  /// Applies legal move `g`: writes the child state and its incrementally
  /// updated aux cache. `next_state`/`next_aux` must not alias the inputs.
  void ApplyInto(const uint64_t* state, const uint64_t* aux, GlobalNode g,
                 uint64_t* next_state, uint64_t* next_aux) const;

  /// O(1) per-entity step lookups (kInvalidNode when txn does not access e).
  NodeId LockNodeOf(int txn, EntityId e) const { return lock_node_[txn][e]; }
  NodeId UnlockNodeOf(int txn, EntityId e) const {
    return unlock_node_[txn][e];
  }
  /// Transactions accessing entity e (precomputed; ascending).
  const std::vector<int>& AccessorsOf(EntityId e) const {
    return accessors_[e];
  }

  // --- Packed-layout accessors (core/symmetry's canonicalizer) ----------

  /// First word of transaction i's mask inside a packed state.
  int txn_word_offset(int i) const { return offset_[i]; }
  /// Number of mask words of transaction i.
  int txn_word_count(int i) const { return words_[i]; }
  /// The per-entity lock-holder table inside an aux buffer.
  const uint16_t* HolderTable(const uint64_t* aux) const {
    return Holders(aux);
  }
  uint16_t* HolderTable(uint64_t* aux) const { return Holders(aux); }

  /// Searches for a legal schedule from `from` that executes exactly the
  /// nodes of `target` (a superset state). Returns the move sequence, or
  /// nullopt if no such schedule exists, or ResourceExhausted if more than
  /// `max_states` distinct states were expanded (0 = unbounded). Runs on
  /// an explicit stack: schedule depth is bounded by memory, not by the
  /// native call stack.
  Result<std::optional<std::vector<GlobalNode>>> FindScheduleBetween(
      const ExecState& from, const ExecState& target,
      uint64_t max_states = 0) const;

  /// Searches for any completion from `from` to the full state.
  Result<std::optional<std::vector<GlobalNode>>> FindCompletion(
      const ExecState& from, uint64_t max_states = 0) const {
    return FindScheduleBetween(from, FullState(), max_states);
  }

 private:
  const uint16_t* Holders(const uint64_t* aux) const {
    return reinterpret_cast<const uint16_t*>(aux + total_words_);
  }
  uint16_t* Holders(uint64_t* aux) const {
    return reinterpret_cast<uint16_t*>(aux + total_words_);
  }

  const TransactionSystem* sys_;
  /// offset_[i] = first word of transaction i's mask inside ExecState.
  std::vector<int> offset_;
  /// words_[i] = number of mask words of transaction i.
  std::vector<int> words_;
  int total_words_ = 0;
  int holder_words_ = 0;
  /// pred_mask_[i][v] = bitmask (in state coordinates) of v's strict
  /// predecessors within transaction i.
  std::vector<std::vector<std::vector<uint64_t>>> pred_mask_;
  /// hasse_succ_[i][v] = direct successors of v in transaction i (the only
  /// steps whose readiness can change when v executes).
  std::vector<std::vector<std::vector<NodeId>>> hasse_succ_;
  /// lock_node_[i][e] / unlock_node_[i][e]: O(1) step positions.
  std::vector<std::vector<NodeId>> lock_node_;
  std::vector<std::vector<NodeId>> unlock_node_;
  /// accessors_[e]: transactions accessing entity e.
  std::vector<std::vector<int>> accessors_;
  /// Per-accessor Unlock-step bit positions of each entity, in state
  /// coordinates: the invisibility test of ExpandReducedInto is "every
  /// *other* listed bit whose mode conflicts with the move's is set".
  struct UnlockBit {
    int txn;
    int word;
    uint64_t mask;
    LockMode mode;  ///< Mode of this accessor's lock on the entity.
  };
  std::vector<std::vector<UnlockBit>> entity_unlock_bits_;
  /// The full state's words (for IsComplete on raw buffers).
  std::vector<uint64_t> full_words_;
};

}  // namespace wydb

#endif  // WYDB_CORE_STATE_SPACE_H_
