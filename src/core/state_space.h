// Execution state space of a transaction system: states are the prefixes
// reached by legal partial schedules; moves are single lock-respecting
// steps. The exact (exponential-time) checkers and the schedule-completion
// search are all built on this engine.
#ifndef WYDB_CORE_STATE_SPACE_H_
#define WYDB_CORE_STATE_SPACE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/result.h"
#include "core/prefix.h"
#include "core/system.h"

namespace wydb {

/// \brief A point in the execution: for each transaction, the set of steps
/// already executed (always downward-closed). Hashable, cheap to copy.
struct ExecState {
  /// Concatenation of per-transaction node bitmasks.
  std::vector<uint64_t> words;

  bool operator==(const ExecState&) const = default;
};

struct ExecStateHash {
  size_t operator()(const ExecState& s) const {
    uint64_t h = 0xCBF29CE484222325ULL;
    for (uint64_t w : s.words) {
      h ^= w;
      h *= 0x100000001B3ULL;
    }
    return static_cast<size_t>(h);
  }
};

/// \brief Legal-move engine over a TransactionSystem.
///
/// Precomputes per-step predecessor masks and per-entity lock/unlock step
/// positions so that LegalMoves runs in O(total steps).
class StateSpace {
 public:
  explicit StateSpace(const TransactionSystem* sys);

  const TransactionSystem& system() const { return *sys_; }

  ExecState EmptyState() const;
  ExecState FullState() const;

  /// State in which exactly the nodes of `prefix` are executed.
  ExecState StateOf(const PrefixSet& prefix) const;

  /// PrefixSet view of a state (for diagnostics / reduction graphs).
  PrefixSet ToPrefixSet(const ExecState& s) const;

  bool IsExecuted(const ExecState& s, int txn, NodeId v) const {
    return bitmask::Test(s.words, offset_[txn] * 64 + v) != 0;
  }

  bool IsComplete(const ExecState& s) const;

  /// Steps executable next: per-transaction frontier nodes whose lock
  /// acquisition (if any) is permitted by the current lock table.
  std::vector<GlobalNode> LegalMoves(const ExecState& s) const;

  /// Executes `move`; the caller guarantees it is legal.
  ExecState Apply(const ExecState& s, GlobalNode move) const;

  /// True iff the Lock/step `g` is permitted in `s` (predecessors executed
  /// and, for a Lock, no other transaction currently holds the entity).
  bool IsLegal(const ExecState& s, GlobalNode g) const;

  /// Entity currently held (locked-not-unlocked) by txn `i` in `s`.
  std::vector<EntityId> Held(const ExecState& s, int i) const;

  /// Searches for a legal schedule from `from` that executes exactly the
  /// nodes of `target` (a superset state). Returns the move sequence, or
  /// nullopt if no such schedule exists, or ResourceExhausted if more than
  /// `max_states` distinct states were expanded (0 = unbounded).
  Result<std::optional<std::vector<GlobalNode>>> FindScheduleBetween(
      const ExecState& from, const ExecState& target,
      uint64_t max_states = 0) const;

  /// Searches for any completion from `from` to the full state.
  Result<std::optional<std::vector<GlobalNode>>> FindCompletion(
      const ExecState& from, uint64_t max_states = 0) const {
    return FindScheduleBetween(from, FullState(), max_states);
  }

  int words_per_state() const { return total_words_; }

 private:
  const TransactionSystem* sys_;
  /// offset_[i] = first word of transaction i's mask inside ExecState.
  std::vector<int> offset_;
  int total_words_ = 0;
  /// pred_mask_[i][v] = bitmask (in state coordinates) of v's strict
  /// predecessors within transaction i.
  std::vector<std::vector<std::vector<uint64_t>>> pred_mask_;
};

}  // namespace wydb

#endif  // WYDB_CORE_STATE_SPACE_H_
