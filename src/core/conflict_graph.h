// The conflict digraph D(S) of a (partial) schedule (Sections 2 and 5).
//
// For a complete schedule S, D(S) has a node per transaction and an arc
// Ti -> Tj labelled x when their accesses of x CONFLICT (at least one
// locks x exclusively; two shared locks are compatible) and Ti acts on
// (locks) x first; S is serializable iff D(S) is acyclic [EGLT]. For a
// partial schedule S' the paper's Lemma 1 refinement also adds Ti -> Tj
// when Ti locked x in S' and Tj conflicts on x but has not locked it yet
// in S'. With every lock exclusive (the paper's alphabet) this is exactly
// the paper's construction.
#ifndef WYDB_CORE_CONFLICT_GRAPH_H_
#define WYDB_CORE_CONFLICT_GRAPH_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/schedule.h"
#include "core/system.h"
#include "graph/digraph.h"

namespace wydb {

/// \brief D(S') for a legal (partial) schedule.
class ConflictGraph {
 public:
  /// Builds D(S'); fails if `s` is not a legal partial schedule.
  static Result<ConflictGraph> FromSchedule(const TransactionSystem& sys,
                                            const Schedule& s);

  /// One node per transaction.
  const Digraph& digraph() const { return graph_; }

  /// Arc list with labels: (from txn, to txn, entity).
  struct LabelledArc {
    int from;
    int to;
    EntityId entity;
  };
  const std::vector<LabelledArc>& arcs() const { return arcs_; }

  bool IsAcyclic() const;

  /// A cycle as transaction indices (empty when acyclic).
  std::vector<int> FindTransactionCycle() const;

  std::string DebugString(const TransactionSystem& sys) const;

 private:
  Digraph graph_;
  std::vector<LabelledArc> arcs_;
};

}  // namespace wydb

#endif  // WYDB_CORE_CONFLICT_GRAPH_H_
