#include "core/frontier_spill.h"

#include <algorithm>

#include "common/thread_pool.h"

namespace wydb {

namespace {
// Chunks staged between watermark checks (and per read-back batch): with
// the engines' 64-state chunks this is 4096 states of staging in RAM at
// a time once a level starts spilling.
constexpr size_t kSpillWindowChunks = 64;
}  // namespace

FrontierStager::FrontierStager(ShardedStateStore* store, ThreadPool* pool,
                               uint64_t mem_budget_bytes,
                               size_t chunk_states)
    : store_(store),
      pool_(pool),
      budget_bytes_(mem_budget_bytes),
      chunk_states_(chunk_states),
      window_states_(mem_budget_bytes == 0
                         ? static_cast<size_t>(-1)
                         : kSpillWindowChunks * chunk_states) {}

FrontierStager::~FrontierStager() {
  if (file_ != nullptr) std::fclose(file_);
}

ShardedStateStore::Staging* FrontierStager::PrepareWindow(size_t states) {
  const size_t nchunks = (states + chunk_states_ - 1) / chunk_states_;
  if (chunks_.size() < chunks_used_ + nchunks) {
    chunks_.resize(chunks_used_ + nchunks);
  }
  window_first_ = chunks_used_;
  for (size_t c = 0; c < nchunks; ++c) {
    store_->ResetStaging(&chunks_[chunks_used_ + c]);
  }
  chunks_used_ += nchunks;
  return chunks_.data() + window_first_;
}

bool FrontierStager::EndWindow() {
  for (size_t c = window_first_; c < chunks_used_; ++c) {
    retained_bytes_ += store_->StagingBytes(chunks_[c]);
  }
  window_first_ = chunks_used_;
  if (budget_bytes_ == 0) return true;
  if (spilling_ ||
      store_->MemoryBytes() + retained_bytes_ > budget_bytes_) {
    return SpillRetained();
  }
  return true;
}

bool FrontierStager::SpillRetained() {
  if (file_ == nullptr) {
    file_ = std::tmpfile();
    if (file_ == nullptr) return false;
  }
  for (size_t c = 0; c < chunks_used_; ++c) {
    if (!store_->WriteStaging(file_, chunks_[c])) return false;
  }
  spilled_chunks_ += chunks_used_;
  chunks_used_ = 0;
  window_first_ = 0;
  retained_bytes_ = 0;
  spilling_ = true;
  return true;
}

bool FrontierStager::Commit(bool dedupe, size_t* fresh) {
  *fresh = 0;
  if (spilled_chunks_ > 0) {
    // A spilling level spills every window, so nothing is retained in
    // RAM here and the file holds the whole level in chunk order.
    // Replay it in window-sized batches; sequential CommitStaged calls
    // in chunk order are id-identical to one big commit.
    if (std::fflush(file_) != 0 || std::fseek(file_, 0, SEEK_SET) != 0) {
      return false;
    }
    size_t remaining = spilled_chunks_;
    while (remaining > 0) {
      const size_t n = std::min(kSpillWindowChunks, remaining);
      if (chunks_.size() < n) chunks_.resize(n);
      for (size_t c = 0; c < n; ++c) {
        if (!store_->ReadStaging(file_, &chunks_[c])) return false;
      }
      *fresh += store_->CommitStaged(&chunks_, n, pool_, dedupe);
      remaining -= n;
    }
    // Rewind for the next level; later writes overwrite in place.
    if (std::fseek(file_, 0, SEEK_SET) != 0) return false;
    ++spilled_levels_;
    spilled_chunks_ = 0;
    spilling_ = false;
  } else if (chunks_used_ > 0) {
    *fresh = store_->CommitStaged(&chunks_, chunks_used_, pool_, dedupe);
  }
  chunks_used_ = 0;
  window_first_ = 0;
  retained_bytes_ = 0;
  return true;
}

}  // namespace wydb
