#include "core/schedule.h"

#include "common/string_util.h"
#include "core/state_space.h"

namespace wydb {

Status ValidateSchedule(const TransactionSystem& sys, const Schedule& s,
                        bool require_complete) {
  StateSpace space(&sys);
  ExecState state = space.EmptyState();
  for (size_t i = 0; i < s.size(); ++i) {
    GlobalNode g = s[i];
    if (g.txn < 0 || g.txn >= sys.num_transactions() || g.node < 0 ||
        g.node >= sys.txn(g.txn).num_steps()) {
      return Status::InvalidArgument(
          StrFormat("step %zu out of range", i));
    }
    if (space.IsExecuted(state, g.txn, g.node)) {
      return Status::InvalidArgument(StrFormat(
          "step %zu (%s) appears twice", i, sys.NodeLabel(g).c_str()));
    }
    if (!space.IsLegal(state, g)) {
      return Status::InvalidArgument(StrFormat(
          "step %zu (%s) violates precedence or locks", i,
          sys.NodeLabel(g).c_str()));
    }
    state = space.Apply(state, g);
  }
  if (require_complete && !space.IsComplete(state)) {
    return Status::InvalidArgument("schedule is not complete");
  }
  return Status::OK();
}

PrefixSet PrefixOf(const TransactionSystem& sys, const Schedule& s) {
  PrefixSet p(&sys);
  for (GlobalNode g : s) {
    bitmask::Set(&(*p.mutable_masks())[g.txn], g.node);
  }
  return p;
}

bool IsSerial(const TransactionSystem& sys, const Schedule& s) {
  (void)sys;
  int current = -1;
  std::vector<bool> seen(sys.num_transactions(), false);
  for (GlobalNode g : s) {
    if (g.txn != current) {
      if (seen[g.txn]) return false;  // Transaction resumed: interleaving.
      seen[g.txn] = true;
      current = g.txn;
    }
  }
  return true;
}

Result<std::optional<Schedule>> TryComplete(const TransactionSystem& sys,
                                            const Schedule& s,
                                            uint64_t max_states) {
  Status valid = ValidateSchedule(sys, s, /*require_complete=*/false);
  if (!valid.ok()) return valid;
  StateSpace space(&sys);
  ExecState from = space.StateOf(PrefixOf(sys, s));
  auto tail = space.FindCompletion(from, max_states);
  if (!tail.ok()) return tail.status();
  if (!tail->has_value()) return std::optional<Schedule>(std::nullopt);
  Schedule full = s;
  full.insert(full.end(), (*tail)->begin(), (*tail)->end());
  return std::optional<Schedule>(std::move(full));
}

std::string ScheduleToString(const TransactionSystem& sys,
                             const Schedule& s) {
  std::vector<std::string> parts;
  parts.reserve(s.size());
  for (GlobalNode g : s) parts.push_back(sys.NodeLabel(g));
  return Join(parts, " ");
}

}  // namespace wydb
