// Transaction systems: a finite set of transactions over one database.
#ifndef WYDB_CORE_SYSTEM_H_
#define WYDB_CORE_SYSTEM_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/database.h"
#include "core/transaction.h"
#include "graph/undirected.h"

namespace wydb {

/// Address of a step inside a TransactionSystem.
struct GlobalNode {
  int txn;      ///< index into TransactionSystem
  NodeId node;  ///< step index within that transaction

  bool operator==(const GlobalNode&) const = default;
};

/// \brief An immutable set of transactions {T1, ..., Tn} over a common
/// Database, as analyzed by the paper.
class TransactionSystem {
 public:
  /// All transactions must reference `db`.
  static Result<TransactionSystem> Create(const Database* db,
                                          std::vector<Transaction> txns);

  const Database& db() const { return *db_; }
  int num_transactions() const { return static_cast<int>(txns_.size()); }
  const Transaction& txn(int i) const { return txns_[i]; }
  const std::vector<Transaction>& transactions() const { return txns_; }

  /// R(Ti) ∩ R(Tj), ascending.
  std::vector<EntityId> SharedEntities(int i, int j) const;

  /// The shared entities on which Ti and Tj CONFLICT: both access and at
  /// least one locks exclusively (two shared locks are compatible).
  /// Equal to SharedEntities for X-only systems.
  std::vector<EntityId> ConflictingEntities(int i, int j) const;

  /// The interaction graph G(A) of Section 5, generalized to lock modes:
  /// one node per transaction, an edge whenever two transactions CONFLICT
  /// on a common entity. Entities shared purely in S mode never block and
  /// never draw conflict arcs, so they do not make an edge. For X-only
  /// systems this is exactly the paper's shared-entity graph.
  UndirectedGraph InteractionGraph() const;

  /// Indices of transactions accessing entity e.
  std::vector<int> AccessorsOf(EntityId e) const;

  /// Total number of steps over all transactions.
  int TotalSteps() const;

  /// Label like "T2.Lx" for diagnostics.
  std::string NodeLabel(GlobalNode g) const;

 private:
  const Database* db_ = nullptr;
  std::vector<Transaction> txns_;
};

}  // namespace wydb

#endif  // WYDB_CORE_SYSTEM_H_
