// Prefixes of transactions and of transaction systems (Section 3).
//
// A prefix of a DAG is a downward-closed node subset (no arcs from outside
// into the subset). A prefix A' of a system A picks one prefix per
// transaction; deadlock analysis revolves around which prefixes admit a
// legal schedule and what their reduction graphs look like.
#ifndef WYDB_CORE_PREFIX_H_
#define WYDB_CORE_PREFIX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/system.h"

namespace wydb {

/// Multi-word bitmask helpers shared by prefix and state-space code.
namespace bitmask {
inline bool Test(const std::vector<uint64_t>& m, int bit) {
  return (m[bit / 64] >> (bit % 64)) & 1;
}
inline void Set(std::vector<uint64_t>* m, int bit) {
  (*m)[bit / 64] |= 1ULL << (bit % 64);
}
inline void Clear(std::vector<uint64_t>* m, int bit) {
  (*m)[bit / 64] &= ~(1ULL << (bit % 64));
}
/// a ⊆ b
inline bool IsSubset(const std::vector<uint64_t>& a,
                     const std::vector<uint64_t>& b) {
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] & ~b[i]) return false;
  }
  return true;
}
}  // namespace bitmask

/// \brief One prefix per transaction of a system (the paper's A').
///
/// Invariant (enforced by the mutators here): each per-transaction node
/// set is downward-closed w.r.t. that transaction's partial order.
class PrefixSet {
 public:
  /// Empty prefix of every transaction.
  explicit PrefixSet(const TransactionSystem* sys);

  /// Prefix containing all nodes of every transaction.
  static PrefixSet Full(const TransactionSystem* sys);

  /// Builds from explicit node lists; fails unless each set is
  /// downward-closed.
  static Result<PrefixSet> FromNodeSets(
      const TransactionSystem* sys,
      const std::vector<std::vector<NodeId>>& nodes);

  const TransactionSystem& system() const { return *sys_; }

  bool Contains(int txn, NodeId v) const {
    return bitmask::Test(masks_[txn], v);
  }

  /// Adds v and all its predecessors in transaction `txn`.
  void AddWithPredecessors(int txn, NodeId v);

  /// Number of nodes in transaction txn's prefix.
  int SizeOf(int txn) const;
  /// Total nodes over all prefixes.
  int TotalSize() const;

  bool IsFull(int txn) const { return SizeOf(txn) == sys_->txn(txn).num_steps(); }
  bool IsComplete() const;

  /// Entities locked but not unlocked by transaction txn's prefix.
  std::vector<EntityId> LockedNotUnlocked(int txn) const;

  /// The transaction holding a lock on e (locked-but-not-unlocked), or -1.
  /// In any schedulable prefix at most one EXCLUSIVE holder exists; with
  /// shared locks several transactions may hold e at once, in which case
  /// this returns the lowest-indexed one (diagnostics only).
  int HolderOf(EntityId e) const;

  /// Nodes of txn's *remaining* part with no predecessor in the remaining
  /// part (candidates for execution next).
  std::vector<NodeId> RemainingFrontier(int txn) const;

  /// Raw per-transaction bitmasks (words of 64 nodes each).
  const std::vector<std::vector<uint64_t>>& masks() const { return masks_; }
  std::vector<std::vector<uint64_t>>* mutable_masks() { return &masks_; }

  bool operator==(const PrefixSet& other) const {
    return masks_ == other.masks_;
  }

  std::string DebugString() const;

 private:
  const TransactionSystem* sys_;
  std::vector<std::vector<uint64_t>> masks_;
};

/// \brief Maximal prefix of `t` accessing no entity in `avoid`
/// (the T* operator of Section 5, Theorem 4): obtained by removing every
/// Ly with y ∈ avoid together with all of Ly's successors.
///
/// Returns the kept nodes as a bitmask (downward-closed by construction).
std::vector<uint64_t> MaximalPrefixAvoiding(const Transaction& t,
                                            const std::vector<EntityId>& avoid);

/// Entities y accessed by `t` such that Uy is NOT in the prefix — the set
/// Y(T') of Section 5 ("entities mentioned in the remaining steps").
std::vector<EntityId> RemainingEntities(const Transaction& t,
                                        const std::vector<uint64_t>& prefix);

/// Entities whose Lock node IS in the prefix — the set R(T').
std::vector<EntityId> AccessedEntities(const Transaction& t,
                                       const std::vector<uint64_t>& prefix);

}  // namespace wydb

#endif  // WYDB_CORE_PREFIX_H_
