// Fluent construction of transactions.
#ifndef WYDB_CORE_TRANSACTION_BUILDER_H_
#define WYDB_CORE_TRANSACTION_BUILDER_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/database.h"
#include "core/transaction.h"

namespace wydb {

/// \brief Incremental builder for Transaction.
///
/// Typical use:
/// \code
///   TransactionBuilder b(&db, "T1");
///   int lx = b.Lock("x");
///   int ly = b.Lock("y");
///   int ux = b.Unlock("x");
///   b.Arc(lx, ly);        // explicit precedence
///   b.Unlock("y");
///   auto t = b.Build();   // Result<Transaction>
/// \endcode
///
/// Conveniences:
///  * Lock->Unlock arcs per entity are added automatically.
///  * With auto_site_chain (default ON) steps touching the same site are
///    chained in insertion order, which establishes the per-site total
///    order the model requires. Turn it off to craft partial orders by
///    hand (e.g. when every entity lives at its own site).
///  * Errors (unknown entity, etc.) are latched and reported by Build().
class TransactionBuilder {
 public:
  TransactionBuilder(const Database* db, std::string name)
      : db_(db), name_(std::move(name)) {}

  /// Enables/disables same-site insertion-order chaining (default on).
  TransactionBuilder& set_auto_site_chain(bool on) {
    auto_site_chain_ = on;
    return *this;
  }

  /// Appends an exclusive Lock step on the named entity; returns its
  /// step index.
  int Lock(const std::string& entity);
  /// Appends a shared Lock step on the named entity; returns its step
  /// index.
  int LockShared(const std::string& entity);
  /// Appends an Unlock step on the named entity; returns its step index.
  int Unlock(const std::string& entity);

  /// Id-based variants.
  int LockId(EntityId e, LockMode mode = LockMode::kExclusive) {
    return AddStep(StepKind::kLock, e, mode);
  }
  int LockSharedId(EntityId e) { return LockId(e, LockMode::kShared); }
  int UnlockId(EntityId e) { return AddStep(StepKind::kUnlock, e); }

  /// Adds precedence arc from -> to (step indices as returned above).
  TransactionBuilder& Arc(int from, int to);

  /// Adds arcs chaining the given steps in order.
  TransactionBuilder& Chain(std::initializer_list<int> steps);

  /// Validates and produces the transaction.
  Result<Transaction> Build();

  /// Builds a *centralized-style* transaction: all steps totally ordered in
  /// the given sequence. Each element is (kind, entity name).
  static Result<Transaction> FromSequence(
      const Database* db, const std::string& name,
      const std::vector<std::pair<StepKind, std::string>>& seq);

 private:
  int AddStep(StepKind kind, EntityId e,
              LockMode mode = LockMode::kExclusive);

  const Database* db_;
  std::string name_;
  bool auto_site_chain_ = true;
  std::vector<Step> steps_;
  std::vector<std::pair<int, int>> arcs_;
  Status first_error_;
};

}  // namespace wydb

#endif  // WYDB_CORE_TRANSACTION_BUILDER_H_
