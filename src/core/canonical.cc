#include "core/canonical.h"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "common/hash_util.h"
#include "common/macros.h"
#include "common/string_util.h"
#include "core/database.h"
#include "core/transaction.h"
#include "io/text_format.h"

namespace wydb {
namespace {

/// Incremental FNV-1a over 64-bit words, mixed on read-out. All color
/// arithmetic goes through this so colors depend on structure only —
/// never on names, original ids, or the order steps happened to be
/// listed in (node ids are scrubbed: every per-step input is an
/// order-theoretic invariant or a sorted multiset).
struct ColorHash {
  uint64_t h = 0xCBF29CE484222325ULL;
  void Add(uint64_t w) {
    h ^= w;
    h *= 0x100000001B3ULL;
  }
  uint64_t Get() const { return MixHash64(h); }
};

struct Colors {
  std::vector<uint64_t> site;
  std::vector<uint64_t> entity;
  std::vector<uint64_t> txn;
};

uint64_t StepKindCode(const Step& st) {
  if (st.kind == StepKind::kUnlock) return 3;
  return st.mode == LockMode::kShared ? 2 : 1;
}

/// (predecessor count << 32) | successor count of `v` in its
/// transaction's partial order — a position descriptor that does not
/// depend on node ids.
uint64_t PositionSig(const Transaction& txn, NodeId v) {
  uint64_t pred = 0, succ = 0;
  for (NodeId u = 0; u < txn.num_steps(); ++u) {
    if (u == v) continue;
    if (txn.Precedes(u, v)) ++pred;
    if (txn.Precedes(v, u)) ++succ;
  }
  return (pred << 32) | succ;
}

/// One round of color refinement: every object rehashes its old color
/// with the colors of its structural neighborhood (multisets sorted, so
/// the result is order-free).
void RefineOnce(const TransactionSystem& sys,
                const std::vector<Digraph>& hasse, Colors* c) {
  const Database& db = sys.db();
  std::vector<uint64_t> ntxn(sys.num_transactions());
  for (int t = 0; t < sys.num_transactions(); ++t) {
    const Transaction& txn = sys.txn(t);
    // Per-step signature: (kind, entity color, position in the order).
    // Signatures may collide while entity colors are still tied; the
    // individualization search below splits those ties later.
    std::vector<uint64_t> sig(txn.num_steps());
    for (NodeId v = 0; v < txn.num_steps(); ++v) {
      const Step& st = txn.step(v);
      ColorHash s;
      s.Add(StepKindCode(st));
      s.Add(c->entity[st.entity]);
      s.Add(PositionSig(txn, v));
      sig[v] = s.Get();
    }
    ColorHash h;
    h.Add(c->txn[t]);
    std::vector<uint64_t> steps(sig);
    std::sort(steps.begin(), steps.end());
    for (uint64_t s : steps) h.Add(s);
    h.Add(0x5EC0ULL);  // Separator: step multiset | arc multiset.
    std::vector<uint64_t> arcs;
    for (NodeId v = 0; v < txn.num_steps(); ++v) {
      for (NodeId w : hasse[t].OutNeighbors(v)) {
        ColorHash a;
        a.Add(sig[v]);
        a.Add(sig[w]);
        arcs.push_back(a.Get());
      }
    }
    std::sort(arcs.begin(), arcs.end());
    for (uint64_t a : arcs) h.Add(a);
    ntxn[t] = h.Get();
  }

  std::vector<uint64_t> nentity(db.num_entities());
  for (EntityId e = 0; e < db.num_entities(); ++e) {
    ColorHash h;
    h.Add(c->entity[e]);
    h.Add(c->site[db.SiteOf(e)]);
    std::vector<uint64_t> accessors;
    for (int t : sys.AccessorsOf(e)) {
      const Transaction& txn = sys.txn(t);
      ColorHash a;
      a.Add(c->txn[t]);
      a.Add(txn.LockModeOf(e) == LockMode::kShared ? 2 : 1);
      a.Add(PositionSig(txn, txn.LockNode(e)));
      a.Add(PositionSig(txn, txn.UnlockNode(e)));
      accessors.push_back(a.Get());
    }
    std::sort(accessors.begin(), accessors.end());
    for (uint64_t a : accessors) h.Add(a);
    nentity[e] = h.Get();
  }

  std::vector<uint64_t> nsite(db.num_sites());
  for (SiteId s = 0; s < db.num_sites(); ++s) {
    ColorHash h;
    h.Add(c->site[s]);
    std::vector<uint64_t> residents;
    for (EntityId e : db.EntitiesAt(s)) residents.push_back(c->entity[e]);
    std::sort(residents.begin(), residents.end());
    for (uint64_t r : residents) h.Add(r);
    nsite[s] = h.Get();
  }

  c->txn = std::move(ntxn);
  c->entity = std::move(nentity);
  c->site = std::move(nsite);
}

/// Class-id vector of a color vector (rank of each color among the sorted
/// distinct values) — the partition, shorn of the unstable hash values.
std::vector<int> Classes(const std::vector<uint64_t>& col) {
  std::vector<uint64_t> distinct(col);
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  std::vector<int> out(col.size());
  for (size_t i = 0; i < col.size(); ++i) {
    out[i] = static_cast<int>(
        std::lower_bound(distinct.begin(), distinct.end(), col[i]) -
        distinct.begin());
  }
  return out;
}

/// Refines until the three partitions stop splitting. The round count is
/// itself structure-determined, so isomorphic systems end with
/// corresponding color values.
void RefineToFixpoint(const TransactionSystem& sys,
                      const std::vector<Digraph>& hasse, Colors* c) {
  const Database& db = sys.db();
  const int max_rounds =
      db.num_sites() + db.num_entities() + sys.num_transactions() + 2;
  auto partition = [&] {
    return std::make_tuple(Classes(c->site), Classes(c->entity),
                           Classes(c->txn));
  };
  auto prev = partition();
  for (int round = 0; round < max_rounds; ++round) {
    RefineOnce(sys, hasse, c);
    auto cur = partition();
    if (cur == prev) break;
    prev = std::move(cur);
  }
}

/// Renders the canonical text for a fixed entity order
/// (canonical id -> original EntityId) and derives the transaction order
/// from it: bodies under the canonical entity names, sorted.
Result<std::pair<std::string, std::vector<int>>> Render(
    const TransactionSystem& sys, const std::vector<int>& entity_order) {
  const Database& db = sys.db();
  const int num_entities = db.num_entities();
  std::vector<int> canon_of_entity(num_entities, -1);
  for (int canon = 0; canon < num_entities; ++canon) {
    canon_of_entity[entity_order[canon]] = canon;
  }

  // Site order: by smallest canonical entity resident there (site entity
  // sets are disjoint, so this is a total order); entity-less sites are
  // all interchangeable and go last — their mutual order cannot show in
  // the text.
  std::vector<std::pair<int, SiteId>> site_rank;
  for (SiteId s = 0; s < db.num_sites(); ++s) {
    int min_canon = num_entities + s;
    for (EntityId e : db.EntitiesAt(s)) {
      min_canon = std::min(min_canon, canon_of_entity[e]);
    }
    site_rank.emplace_back(min_canon, s);
  }
  std::sort(site_rank.begin(), site_rank.end());

  Database cdb;
  std::vector<SiteId> canon_site_of(db.num_sites(), kInvalidSite);
  for (size_t rank = 0; rank < site_rank.size(); ++rank) {
    WYDB_ASSIGN_OR_RETURN(SiteId added,
                          cdb.AddSite(StrFormat("s%d", (int)rank)));
    canon_site_of[site_rank[rank].second] = added;
  }
  for (int canon = 0; canon < num_entities; ++canon) {
    EntityId orig = entity_order[canon];
    WYDB_RETURN_IF_ERROR(cdb.AddEntity(StrFormat("e%d", canon),
                                       canon_site_of[db.SiteOf(orig)])
                             .status());
  }

  // Rebuild every transaction against the canonical database (entities
  // remapped), serialize once with throwaway names, and split header
  // lines from per-transaction bodies. The step list is *relisted* in a
  // canonical linear extension first — greedy minimal-first, ties broken
  // by (canonical entity, kind), which is unique per step — so the
  // rendering depends only on the partial order, never on the order the
  // caller happened to list unordered steps in. That is what makes the
  // canonical text a fixpoint: reparsing it and canonicalizing again
  // reproduces it byte for byte.
  std::vector<Transaction> txns;
  for (int t = 0; t < sys.num_transactions(); ++t) {
    const Transaction& txn = sys.txn(t);
    const NodeId k = txn.num_steps();
    std::vector<NodeId> order;
    order.reserve(k);
    std::vector<char> placed(k, 0);
    for (NodeId n = 0; n < k; ++n) {
      NodeId best = kInvalidNode;
      uint64_t best_rank = 0;
      for (NodeId v = 0; v < k; ++v) {
        if (placed[v]) continue;
        bool ready = true;
        for (NodeId u = 0; u < k && ready; ++u) {
          if (!placed[u] && u != v && txn.Precedes(u, v)) ready = false;
        }
        if (!ready) continue;
        const Step& st = txn.step(v);
        const uint64_t rank =
            static_cast<uint64_t>(canon_of_entity[st.entity]) * 8 +
            StepKindCode(st);
        if (best == kInvalidNode || rank < best_rank) {
          best = v;
          best_rank = rank;
        }
      }
      order.push_back(best);
      placed[best] = 1;
    }
    std::vector<NodeId> pos(k);
    for (NodeId i = 0; i < k; ++i) pos[order[i]] = i;

    std::vector<Step> steps;
    steps.reserve(k);
    for (NodeId i = 0; i < k; ++i) {
      Step st = txn.step(order[i]);
      st.entity = canon_of_entity[st.entity];
      steps.push_back(st);
    }
    // Pass the Hasse arcs, remapped and sorted: the raw arc list may
    // carry transitively redundant arcs in caller-dependent order, and
    // both leak into SomeLinearExtension (LIFO over adjacency lists) and
    // from there into the serializer's chain decomposition.
    std::vector<std::pair<int, int>> arcs;
    const Digraph txn_hasse = txn.HasseDiagram();
    for (NodeId v = 0; v < k; ++v) {
      for (NodeId w : txn_hasse.OutNeighbors(v)) {
        arcs.emplace_back(pos[v], pos[w]);
      }
    }
    std::sort(arcs.begin(), arcs.end());
    WYDB_ASSIGN_OR_RETURN(
        Transaction renamed,
        Transaction::Create(&cdb, StrFormat("q%d", t), std::move(steps),
                            std::move(arcs)));
    txns.push_back(std::move(renamed));
  }
  WYDB_ASSIGN_OR_RETURN(TransactionSystem csys,
                        TransactionSystem::Create(&cdb, std::move(txns)));
  const std::string raw = SerializeSystem(csys);

  std::string header;
  std::vector<std::string> bodies(sys.num_transactions());
  {
    size_t pos = 0;
    int t = 0;
    while (pos < raw.size()) {
      size_t eol = raw.find('\n', pos);
      std::string line = raw.substr(pos, eol - pos);
      pos = eol + 1;
      if (line.rfind("txn ", 0) == 0) {
        bodies[t++] = line.substr(line.find(':') + 1);
      } else {
        header += line + "\n";
      }
    }
  }

  // Canonical slot order: sort by body. Equal bodies are structurally
  // identical transactions — either order yields the same text, and any
  // witness remap through the resulting perm rides a genuine system
  // automorphism.
  std::vector<int> txn_order(sys.num_transactions());
  for (int t = 0; t < sys.num_transactions(); ++t) txn_order[t] = t;
  std::sort(txn_order.begin(), txn_order.end(), [&](int a, int b) {
    if (bodies[a] != bodies[b]) return bodies[a] < bodies[b];
    return a < b;
  });

  std::string text = header;
  for (size_t slot = 0; slot < txn_order.size(); ++slot) {
    text += StrFormat("txn t%d:", (int)slot) + bodies[txn_order[slot]] + "\n";
  }
  return std::make_pair(std::move(text), std::move(txn_order));
}

struct LeafSearch {
  LeafSearch(const TransactionSystem& s, const std::vector<Digraph>& h)
      : sys(s), hasse(h) {}

  const TransactionSystem& sys;
  const std::vector<Digraph>& hasse;
  /// Remaining leaves the individualization search may render.
  int leaf_budget = 64;
  bool complete = true;
  bool have_best = false;
  std::string best_text;
  std::vector<int> best_entity_order;
  std::vector<int> best_txn_order;
  Status error = Status::OK();

  /// Recursive individualization-refinement over entity ties. `c` must
  /// already be at a refinement fixpoint.
  void Search(const Colors& c) {
    if (!error.ok() || !complete) return;
    // Group entities by color; branch on the non-singleton class with
    // the smallest color value (color values are structure-only, so
    // isomorphic systems branch on corresponding classes).
    std::vector<std::pair<uint64_t, EntityId>> by_color;
    for (EntityId e = 0; e < (EntityId)c.entity.size(); ++e) {
      by_color.emplace_back(c.entity[e], e);
    }
    std::sort(by_color.begin(), by_color.end());
    uint64_t branch_color = 0;
    bool tie = false;
    for (size_t i = 0; i + 1 < by_color.size(); ++i) {
      if (by_color[i].first == by_color[i + 1].first) {
        branch_color = by_color[i].first;
        tie = true;
        break;
      }
    }
    if (!tie) {
      if (leaf_budget-- <= 0) {
        complete = false;
        return;
      }
      std::vector<int> order;
      order.reserve(by_color.size());
      for (const auto& [color, e] : by_color) order.push_back(e);
      auto rendered = Render(sys, order);
      if (!rendered.ok()) {
        error = rendered.status();
        return;
      }
      if (!have_best || rendered->first < best_text) {
        have_best = true;
        best_text = std::move(rendered->first);
        best_txn_order = std::move(rendered->second);
        best_entity_order = std::move(order);
      }
      return;
    }
    for (const auto& [color, e] : by_color) {
      if (color != branch_color) continue;
      Colors child = c;
      child.entity[e] = MixHash64(child.entity[e] ^ 0x9E3779B97F4A7C15ULL);
      RefineToFixpoint(sys, hasse, &child);
      Search(child);
      if (!error.ok() || !complete) return;
    }
  }
};

}  // namespace

Result<SystemKey> CanonicalSystemKey(const TransactionSystem& sys) {
  const Database& db = sys.db();
  std::vector<Digraph> hasse;
  hasse.reserve(sys.num_transactions());
  for (int t = 0; t < sys.num_transactions(); ++t) {
    hasse.push_back(sys.txn(t).HasseDiagram());
  }

  Colors colors;
  colors.site.assign(db.num_sites(), 1);
  colors.entity.assign(db.num_entities(), 2);
  colors.txn.assign(sys.num_transactions(), 3);
  RefineToFixpoint(sys, hasse, &colors);

  LeafSearch search{sys, hasse};
  search.Search(colors);
  WYDB_RETURN_IF_ERROR(search.error);

  SystemKey key;
  key.complete = search.complete && search.have_best;
  if (!search.have_best) {
    // Budget exhausted before any leaf: break residual ties by original
    // id. Sound (the text still fully describes the system), just not
    // rename-invariant.
    std::vector<int> order(db.num_entities());
    for (int e = 0; e < db.num_entities(); ++e) order[e] = e;
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      if (colors.entity[a] != colors.entity[b]) {
        return colors.entity[a] < colors.entity[b];
      }
      return a < b;
    });
    WYDB_ASSIGN_OR_RETURN(auto rendered, Render(sys, order));
    key.text = std::move(rendered.first);
    key.txn_perm = std::move(rendered.second);
    key.entity_perm = std::move(order);
  } else {
    key.text = std::move(search.best_text);
    key.txn_perm = std::move(search.best_txn_order);
    key.entity_perm = std::move(search.best_entity_order);
  }

  uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char ch : key.text) {
    h ^= ch;
    h *= 0x100000001B3ULL;
  }
  key.hash = MixHash64(h);
  return key;
}

}  // namespace wydb
