#include "core/database.h"

namespace wydb {

Result<SiteId> Database::AddSite(const std::string& name) {
  if (site_by_name_.count(name)) {
    return Status::AlreadyExists("site '" + name + "' already exists");
  }
  SiteId id = static_cast<SiteId>(site_names_.size());
  site_names_.push_back(name);
  site_by_name_[name] = id;
  return id;
}

Result<EntityId> Database::AddEntity(const std::string& name, SiteId site) {
  if (site < 0 || site >= num_sites()) {
    return Status::InvalidArgument("site id out of range");
  }
  if (entity_by_name_.count(name)) {
    return Status::AlreadyExists("entity '" + name + "' already exists");
  }
  EntityId id = static_cast<EntityId>(entity_names_.size());
  entity_names_.push_back(name);
  entity_site_.push_back(site);
  entity_by_name_[name] = id;
  return id;
}

Result<EntityId> Database::AddEntityAtSite(const std::string& entity_name,
                                           const std::string& site_name) {
  SiteId site = FindSite(site_name);
  if (site == kInvalidSite) {
    auto added = AddSite(site_name);
    if (!added.ok()) return added.status();
    site = *added;
  }
  return AddEntity(entity_name, site);
}

EntityId Database::FindEntity(const std::string& name) const {
  auto it = entity_by_name_.find(name);
  return it == entity_by_name_.end() ? kInvalidEntity : it->second;
}

SiteId Database::FindSite(const std::string& name) const {
  auto it = site_by_name_.find(name);
  return it == site_by_name_.end() ? kInvalidSite : it->second;
}

std::vector<EntityId> Database::EntitiesAt(SiteId site) const {
  std::vector<EntityId> out;
  for (EntityId e = 0; e < num_entities(); ++e) {
    if (entity_site_[e] == site) out.push_back(e);
  }
  return out;
}

}  // namespace wydb
