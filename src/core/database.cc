#include "core/database.h"

#include <algorithm>
#include <utility>

namespace wydb {

Result<SiteId> Database::AddSite(const std::string& name) {
  if (site_by_name_.count(name)) {
    return Status::AlreadyExists("site '" + name + "' already exists");
  }
  SiteId id = static_cast<SiteId>(site_names_.size());
  site_names_.push_back(name);
  site_by_name_[name] = id;
  return id;
}

Result<EntityId> Database::AddEntity(const std::string& name, SiteId site) {
  if (site < 0 || site >= num_sites()) {
    return Status::InvalidArgument("site id out of range");
  }
  if (entity_by_name_.count(name)) {
    return Status::AlreadyExists("entity '" + name + "' already exists");
  }
  EntityId id = static_cast<EntityId>(entity_names_.size());
  entity_names_.push_back(name);
  entity_site_.push_back(site);
  entity_by_name_[name] = id;
  return id;
}

Result<EntityId> Database::AddEntityAtSite(const std::string& entity_name,
                                           const std::string& site_name) {
  SiteId site = FindSite(site_name);
  if (site == kInvalidSite) {
    auto added = AddSite(site_name);
    if (!added.ok()) return added.status();
    site = *added;
  }
  return AddEntity(entity_name, site);
}

EntityId Database::FindEntity(const std::string& name) const {
  auto it = entity_by_name_.find(name);
  return it == entity_by_name_.end() ? kInvalidEntity : it->second;
}

SiteId Database::FindSite(const std::string& name) const {
  auto it = site_by_name_.find(name);
  return it == site_by_name_.end() ? kInvalidSite : it->second;
}

std::vector<EntityId> Database::EntitiesAt(SiteId site) const {
  std::vector<EntityId> out;
  for (EntityId e = 0; e < num_entities(); ++e) {
    if (entity_site_[e] == site) out.push_back(e);
  }
  return out;
}

CopyPlacement::CopyPlacement(const Database& db) {
  copies_.reserve(db.num_entities());
  for (EntityId e = 0; e < db.num_entities(); ++e) {
    copies_.push_back({db.SiteOf(e)});
  }
}

CopyPlacement CopyPlacement::RoundRobin(const Database& db, int degree) {
  if (degree < 1) degree = 1;
  if (degree > db.num_sites()) degree = db.num_sites();
  CopyPlacement placement(db);
  for (EntityId e = 0; e < db.num_entities(); ++e) {
    std::vector<SiteId>& sites = placement.copies_[e];
    for (int k = 1; k < degree; ++k) {
      sites.push_back((db.SiteOf(e) + k) % db.num_sites());
    }
  }
  return placement;
}

Status CopyPlacement::SetCopies(const Database& db, EntityId e,
                                std::vector<SiteId> sites) {
  if (e < 0 || e >= db.num_entities()) {
    return Status::InvalidArgument("entity id out of range");
  }
  if (sites.empty()) {
    return Status::InvalidArgument("an entity needs at least one copy");
  }
  for (std::size_t i = 0; i < sites.size(); ++i) {
    if (sites[i] < 0 || sites[i] >= db.num_sites()) {
      return Status::InvalidArgument("copy site id out of range");
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (sites[i] == sites[j]) {
        return Status::InvalidArgument(
            "duplicate copy site for entity '" + db.EntityName(e) + "'");
      }
    }
  }
  // Entities added to the db since this placement was built get default
  // single-copy rows; earlier SetCopies customizations are preserved.
  for (EntityId grown = static_cast<EntityId>(copies_.size());
       grown < db.num_entities(); ++grown) {
    copies_.push_back({db.SiteOf(grown)});
  }
  copies_[e] = std::move(sites);
  return Status();
}

int CopyPlacement::MaxDegree() const {
  int max_degree = 0;
  for (const std::vector<SiteId>& sites : copies_) {
    max_degree = std::max(max_degree, static_cast<int>(sites.size()));
  }
  return max_degree;
}

bool CopyPlacement::IsReplicated() const {
  for (const std::vector<SiteId>& sites : copies_) {
    if (sites.size() > 1) return true;
  }
  return false;
}

}  // namespace wydb
