#include "core/conflict_graph.h"

#include <map>

#include "common/string_util.h"
#include "graph/algorithms.h"

namespace wydb {

Result<ConflictGraph> ConflictGraph::FromSchedule(
    const TransactionSystem& sys, const Schedule& s) {
  Status valid = ValidateSchedule(sys, s, /*require_complete=*/false);
  if (!valid.ok()) return valid;

  ConflictGraph cg;
  cg.graph_.Resize(sys.num_transactions());

  // Per entity: the transactions that executed its Lock step, in schedule
  // order.
  std::map<EntityId, std::vector<int>> lock_order;
  for (GlobalNode g : s) {
    const Step& st = sys.txn(g.txn).step(g.node);
    if (st.kind == StepKind::kLock) lock_order[st.entity].push_back(g.txn);
  }

  auto add_arc = [&](int from, int to, EntityId e) {
    if (!cg.graph_.HasArc(from, to)) {
      cg.graph_.AddArc(from, to);
    }
    cg.arcs_.push_back({from, to, e});
  };

  // Two accesses of e conflict unless both lock it in shared mode.
  auto conflicts = [&](int t1, int t2, EntityId e) {
    return LockModesConflict(sys.txn(t1).LockModeOf(e),
                             sys.txn(t2).LockModeOf(e));
  };

  for (const auto& [e, lockers] : lock_order) {
    // Arcs among transactions that both locked e, in lock order.
    for (size_t i = 0; i < lockers.size(); ++i) {
      for (size_t j = i + 1; j < lockers.size(); ++j) {
        if (conflicts(lockers[i], lockers[j], e)) {
          add_arc(lockers[i], lockers[j], e);
        }
      }
    }
    // Arcs to conflicting accessors of e that have not locked it in S'.
    for (int t : sys.AccessorsOf(e)) {
      bool locked_in_s = false;
      for (int l : lockers) {
        if (l == t) {
          locked_in_s = true;
          break;
        }
      }
      if (locked_in_s) continue;
      for (int l : lockers) {
        if (conflicts(l, t, e)) add_arc(l, t, e);
      }
    }
  }
  return cg;
}

bool ConflictGraph::IsAcyclic() const { return !HasCycle(graph_); }

std::vector<int> ConflictGraph::FindTransactionCycle() const {
  std::vector<NodeId> cyc = FindCycle(graph_);
  return std::vector<int>(cyc.begin(), cyc.end());
}

std::string ConflictGraph::DebugString(const TransactionSystem& sys) const {
  std::vector<std::string> parts;
  for (const LabelledArc& a : arcs_) {
    parts.push_back(StrFormat("%s -%s-> %s", sys.txn(a.from).name().c_str(),
                              sys.db().EntityName(a.entity).c_str(),
                              sys.txn(a.to).name().c_str()));
  }
  return Join(parts, ", ");
}

}  // namespace wydb
