// Schedules and partial schedules (Section 2/3): lock-respecting merges of
// linear extensions of transaction (prefixes).
#ifndef WYDB_CORE_SCHEDULE_H_
#define WYDB_CORE_SCHEDULE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/prefix.h"
#include "core/system.h"

namespace wydb {

/// A (partial) schedule: a sequence of steps of the system's transactions.
using Schedule = std::vector<GlobalNode>;

/// \brief Checks that `s` is a legal partial schedule of `sys`:
///  * no step repeats;
///  * each transaction's steps respect its partial order; and
///  * between any two Lock x operations there is an Unlock x (equivalently,
///    a Lock x only executes while no other transaction holds x).
/// With `require_complete`, additionally every step of every transaction
/// must appear.
Status ValidateSchedule(const TransactionSystem& sys, const Schedule& s,
                        bool require_complete);

/// The prefix A' executed by partial schedule `s` (assumed legal).
PrefixSet PrefixOf(const TransactionSystem& sys, const Schedule& s);

/// True iff the schedule is serial: each transaction's steps consecutive.
bool IsSerial(const TransactionSystem& sys, const Schedule& s);

/// \brief Tries to extend legal partial schedule `s` to a complete
/// schedule. Returns the complete schedule, nullopt if `s` cannot be
/// completed (it is doomed: some extension of it deadlocks — Theorem 1's
/// "every partial schedule is a prefix of a complete schedule" fails), or
/// ResourceExhausted on budget overrun.
Result<std::optional<Schedule>> TryComplete(const TransactionSystem& sys,
                                            const Schedule& s,
                                            uint64_t max_states = 0);

/// Human-readable one-line rendering, e.g. "T1.Lx T2.Ly T1.Ux".
std::string ScheduleToString(const TransactionSystem& sys, const Schedule& s);

}  // namespace wydb

#endif  // WYDB_CORE_SCHEDULE_H_
