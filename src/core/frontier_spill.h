// Disk-backed staging for the level-synchronous parallel BFS
// (DESIGN.md §9.3): bounds peak RAM by a --mem-budget-mb watermark
// without changing a single interned id.
//
// The parallel engines stage a level's children into per-chunk Staging
// buffers and commit them in chunk order. CommitStaged composes — a
// level committed as several sequential batches (in chunk order) yields
// the same ids/parents/dedup decisions as one big commit — so the
// staged chunks themselves are pure data that can round-trip through a
// file. FrontierStager exploits that: the engine stages one bounded
// *window* of chunks at a time; after each window, if the store plus the
// retained staging exceed the budget, every retained chunk is appended
// to an anonymous spill file (plain fwrite of the staged records). At
// the end of the level, Commit() replays the file chunk-by-chunk in the
// original order and commits in bounded batches, then commits whatever
// never spilled. BFS depth becomes disk-bound; RAM holds the store plus
// one window.
//
// With a zero budget the stager degrades to exactly the old code path:
// one window spanning the whole level, no file, a single CommitStaged.
#ifndef WYDB_CORE_FRONTIER_SPILL_H_
#define WYDB_CORE_FRONTIER_SPILL_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "core/state_store.h"

namespace wydb {

class ThreadPool;

class FrontierStager {
 public:
  /// `mem_budget_bytes` == 0 disables spilling (whole-level windows).
  /// `chunk_states` is the engine's ParallelFor chunk size; staged chunk
  /// c of a window covers states [c*chunk_states, ...) of that window.
  FrontierStager(ShardedStateStore* store, ThreadPool* pool,
                 uint64_t mem_budget_bytes, size_t chunk_states);
  ~FrontierStager();

  FrontierStager(const FrontierStager&) = delete;
  FrontierStager& operator=(const FrontierStager&) = delete;

  /// Max states the engine may stage before the next EndWindow call.
  size_t window_states() const { return window_states_; }

  /// Returns the first of ceil(states / chunk_states) reset Staging
  /// buffers for the next window; the engine indexes them by
  /// begin / chunk_states exactly as it indexed the old per-level chunk
  /// vector. Pointers stay valid until EndWindow/Commit.
  ShardedStateStore::Staging* PrepareWindow(size_t states);

  /// Ends the current window: accounts its bytes and spills every
  /// retained chunk when `store bytes + retained staging bytes` exceed
  /// the budget. Once a level spills, every later window of that level
  /// spills too, keeping the file in global chunk order. Returns false
  /// on I/O failure.
  bool EndWindow();

  /// Commits the whole level: spilled chunks first (read back in file
  /// order, committed in bounded batches), then the retained ones.
  /// Resets the stager for the next level. `*fresh` gets the number of
  /// freshly interned states. Returns false on I/O failure.
  bool Commit(bool dedupe, size_t* fresh);

  /// Levels whose staging hit the spill file (the --stats counter).
  uint64_t spilled_levels() const { return spilled_levels_; }

 private:
  bool SpillRetained();

  ShardedStateStore* const store_;
  ThreadPool* const pool_;
  const uint64_t budget_bytes_;
  const size_t chunk_states_;
  const size_t window_states_;

  /// Retained (not yet spilled) chunks of the current level, in global
  /// chunk order; the window under construction is its tail. Buffers are
  /// reused across windows and levels.
  std::vector<ShardedStateStore::Staging> chunks_;
  size_t chunks_used_ = 0;         ///< Retained chunks, incl. open window.
  size_t window_first_ = 0;        ///< First chunk of the open window.
  uint64_t retained_bytes_ = 0;    ///< Staged bytes in closed windows.

  std::FILE* file_ = nullptr;      ///< Spill file (tmpfile, lazy).
  size_t spilled_chunks_ = 0;      ///< Chunks in the file this level.
  bool spilling_ = false;          ///< This level has hit the file.
  uint64_t spilled_levels_ = 0;
};

}  // namespace wydb

#endif  // WYDB_CORE_FRONTIER_SPILL_H_
