// Arena-backed intern tables for packed search states.
//
// The exact checkers explore exponentially many states, so every constant
// factor per expansion matters (the cost story of Theorems 1-2). The seed
// implementation kept three heap copies of every state (visited set,
// parent map, BFS queue), each behind its own hash-map node. StateStore
// collapses all of that into flat arrays:
//
//   * every state is `key_words` 64-bit words of identity plus `aux_words`
//     of engine cache (frontier masks, lock-holder tables, flags), stored
//     contiguously in two arenas and addressed by a dense 32-bit id;
//   * an open-addressing table (power-of-two capacity, linear probing)
//     maps key words -> id, so visited-set membership is one probe
//     sequence with no per-node allocation;
//   * parent links are a flat array of (parent id, move), making witness
//     reconstruction an array walk instead of a hash-map chase.
//
// Ids are stable for the lifetime of the store; pointers returned by
// KeyOf/AuxOf are invalidated by the next insertion (the arenas are
// std::vectors), so re-fetch them after every insertion. Debug builds
// enforce this: accessors return an epoch-stamped pointer wrapper that
// aborts on dereference once the arena generation has moved (DESIGN.md
// §9.4) — in release builds the wrapper compiles away to a raw pointer.
//
// ShardedStateStore is the multi-core variant (DESIGN.md §7): the intern
// table is split by key-hash into power-of-two shards, each with its own
// arenas and probe table, and deduplication of a whole BFS level runs as
// one batched commit — stage children in parent order, dedup every shard
// in parallel, then assign dense global ids in staging order. The id
// sequence, parent links, and first-visit semantics are bit-identical to
// a serial StateStore fed the same insertions, for any shard count,
// thread count, or chunk size.
//
// Beyond-RAM modes (DESIGN.md §9): StoreOptions selects how the sharded
// store represents state identity. kPlain keeps full keys (the default);
// kDelta stores a varint (parent, xor-delta) record per state and
// reconstructs keys on demand through a per-worker decode cache, exactness
// unchanged; kCompact keeps only a 64-bit fingerprint per state (sound for
// refutation, not for certification). A nonzero memory budget additionally
// lets callers spill staged frontier chunks to disk between commits (see
// core/frontier_spill.h).
#ifndef WYDB_CORE_STATE_STORE_H_
#define WYDB_CORE_STATE_STORE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "common/macros.h"
#include "core/system.h"

namespace wydb {

class ThreadPool;

/// \brief How a ShardedStateStore represents state identity, plus the
/// memory watermark for frontier spill. Threaded from the CLI through
/// both checkers' options down to the store (DESIGN.md §9).
struct StoreOptions {
  enum class KeyEncoding {
    /// Full key words in the arena (the default; exact).
    kPlain,
    /// Per-state varint record: (parent id, changed words, xor deltas),
    /// reconstructed on probe through a decode cache. Exact — probes
    /// compare full reconstructed keys word-wise.
    kDelta,
    /// 64-bit fingerprint only; hash-equal states merge. Sound for
    /// refutation (witnesses replay), NOT for certification.
    kCompact,
  };
  KeyEncoding encoding = KeyEncoding::kPlain;
  /// Memory watermark in MiB for frontier spill (0 = never spill). The
  /// store itself only records this; FrontierStager enforces it.
  uint64_t mem_budget_mb = 0;
};

/// \brief Arena/probe byte breakdown for the --stats memory counters.
struct StoreMemoryStats {
  uint64_t arena_bytes = 0;  ///< Key/aux/record/fingerprint arenas.
  uint64_t probe_bytes = 0;  ///< Open-addressing tables.
  uint64_t link_bytes = 0;   ///< Parent links, global index, scratch.
  uint64_t total() const { return arena_bytes + probe_bytes + link_bytes; }
};

namespace internal {

#ifndef NDEBUG
/// Debug-only checked arena pointer: remembers the store generation at
/// fetch time and aborts on any dereference after a later insertion has
/// (potentially) reallocated the arena. Converts implicitly to T* so
/// call sites read exactly like raw pointers.
template <typename T>
class CheckedArenaPtr {
 public:
  CheckedArenaPtr(T* ptr, const std::atomic<uint64_t>* generation)
      : ptr_(ptr),
        generation_(generation),
        snapshot_(generation->load(std::memory_order_relaxed)) {}

  operator T*() const {  // NOLINT(google-explicit-constructor)
    Check();
    return ptr_;
  }
  T& operator*() const {
    Check();
    return *ptr_;
  }
  T& operator[](size_t i) const {
    Check();
    return ptr_[i];
  }

 private:
  void Check() const {
    WYDB_DCHECK(generation_->load(std::memory_order_relaxed) == snapshot_ &&
                "stale StateStore arena pointer (insertion since fetch)");
  }
  T* ptr_;
  const std::atomic<uint64_t>* generation_;
  uint64_t snapshot_;
};
#endif  // NDEBUG

}  // namespace internal

#ifndef NDEBUG
using ConstArenaPtr = internal::CheckedArenaPtr<const uint64_t>;
using MutableArenaPtr = internal::CheckedArenaPtr<uint64_t>;
#else
using ConstArenaPtr = const uint64_t*;
using MutableArenaPtr = uint64_t*;
#endif

/// \brief Optional canonical-key hook (the symmetry half of
/// SearchEngine::kReduced, DESIGN.md §8.2).
///
/// Canonicalize rewrites a (key, aux) pair in place to the canonical
/// representative of its symmetry class — e.g. OrbitCanonicalizer
/// (core/symmetry.h) sorts the per-transaction key blocks by orbit —
/// so equivalent states intern to one id. Implementations must be
/// deterministic functions of the key and thread-safe: the sharded
/// store invokes the hook from concurrent staging workers, and the
/// canonical key is what feeds the shard hash.
class KeyCanonicalizer {
 public:
  virtual ~KeyCanonicalizer() = default;
  /// `aux` may be null when the caller only needs the key rewritten.
  virtual void Canonicalize(uint64_t* key, uint64_t* aux) const = 0;
};

class StateStore {
 public:
  /// Sentinel id: "no such state" / "no parent" (the root).
  static constexpr uint32_t kNoId = 0xFFFFFFFFu;

  /// `key_words` words of state identity (hashed, deduplicated) and
  /// `aux_words` words of per-state engine cache (not part of identity;
  /// zero-initialised on insertion).
  explicit StateStore(int key_words, int aux_words = 0);

  struct InternResult {
    uint32_t id;
    bool inserted;  ///< False when the key was already present.
  };

  /// Interns `key` (exactly key_words() words). On fresh insertion records
  /// the parent link and zero-fills the aux region; on a hit the existing
  /// id is returned and the parent link is left untouched (BFS first-visit
  /// parents).
  InternResult Intern(const uint64_t* key, uint32_t parent = kNoId,
                      GlobalNode move = GlobalNode{-1, -1});

  /// Installs (or clears, with null) the canonical-key hook used by
  /// InternCanonical. The store does not own the canonicalizer.
  void set_canonicalizer(const KeyCanonicalizer* canonicalizer) {
    canonicalizer_ = canonicalizer;
  }

  /// Canonicalizes `key`/`aux` in place through the installed hook (a
  /// no-op without one), then interns the canonical key; on fresh
  /// insertion the aux region is filled from `aux` (instead of the
  /// zero-fill of plain Intern). `aux` must hold aux_words() words.
  InternResult InternCanonical(uint64_t* key, uint64_t* aux,
                               uint32_t parent = kNoId,
                               GlobalNode move = GlobalNode{-1, -1});

  /// Appends without deduplication (memoization ablation); the hash table
  /// is bypassed entirely. Do not mix with Intern on the same store.
  uint32_t Append(const uint64_t* key, uint32_t parent = kNoId,
                  GlobalNode move = GlobalNode{-1, -1});

  /// Lookup without insertion; kNoId if absent.
  uint32_t Find(const uint64_t* key) const;

  size_t size() const { return parents_.size(); }
  int key_words() const { return key_words_; }
  int aux_words() const { return aux_words_; }

  ConstArenaPtr KeyOf(uint32_t id) const {
    return {keys_.data() + static_cast<size_t>(id) * key_words_,
#ifndef NDEBUG
            &generation_
#endif
    };
  }
  ConstArenaPtr AuxOf(uint32_t id) const {
    return {aux_.data() + static_cast<size_t>(id) * aux_words_,
#ifndef NDEBUG
            &generation_
#endif
    };
  }
  MutableArenaPtr MutableAuxOf(uint32_t id) {
    return {aux_.data() + static_cast<size_t>(id) * aux_words_,
#ifndef NDEBUG
            &generation_
#endif
    };
  }

  uint32_t ParentOf(uint32_t id) const { return parents_[id].parent; }
  GlobalNode MoveOf(uint32_t id) const {
    return GlobalNode{parents_[id].move_txn, parents_[id].move_node};
  }

  /// The move sequence from the root (the ancestor with parent kNoId) to
  /// `id`, in execution order.
  std::vector<GlobalNode> PathFromRoot(uint32_t id) const;

  /// Bytes held by the arenas and the table (diagnostics).
  size_t MemoryBytes() const;
  /// The same bytes, broken down for the --stats memory counters.
  StoreMemoryStats MemoryStats() const;

 private:
  struct ParentLink {
    uint32_t parent;
    int32_t move_txn;
    int32_t move_node;
  };

  void Grow();
  const uint64_t* KeyRaw(uint32_t id) const {
    return keys_.data() + static_cast<size_t>(id) * key_words_;
  }

  const int key_words_;
  const int aux_words_;
  const KeyCanonicalizer* canonicalizer_ = nullptr;
  std::vector<uint64_t> keys_;       ///< size() * key_words_ words.
  std::vector<uint64_t> aux_;        ///< size() * aux_words_ words.
  std::vector<ParentLink> parents_;  ///< One per id.
  std::vector<uint32_t> slots_;      ///< Open-addressing table of ids.
  size_t slot_mask_ = 0;             ///< slots_.size() - 1 (power of two).
  /// Arena epoch for the debug stale-pointer check; bumped by every
  /// insertion (relaxed: ordering is the caller's problem, the counter
  /// only needs to be race-free).
  std::atomic<uint64_t> generation_{0};
};

/// \brief Key-hash-sharded intern table with a deterministic batched
/// commit: the substrate of the kParallelSharded search engine.
///
/// Global ids are dense and allocated in *staging order* — the order
/// Stage() calls would reach a serial StateStore::Intern when chunks are
/// filled in parent order — so verdicts, witnesses, and state counts of a
/// level-synchronous parallel BFS match the serial engines bit for bit.
///
/// Usage per BFS level:
///   1. Split the level's states into chunks (chunk c = states
///      [c*chunk_size, ...)); one Staging buffer per chunk.
///   2. In parallel (any worker<->chunk assignment): for each state of
///      chunk c in id order, Stage() each child into staging[c]. Stage
///      routes the child to a shard by key hash and records the staging
///      ordinal.
///   3. CommitStaged(): dedups every shard in parallel against both the
///      table and the batch itself (first staged occurrence wins the
///      parent link, as with serial Intern), then assigns global ids to
///      the fresh states by a serial rank scan in staging order.
///
/// Commits compose: committing a level as several sequential
/// CommitStaged batches (in chunk order) yields the same ids, parents,
/// and dedup decisions as one big commit — later batches dedup against
/// a table that already holds the earlier ones, and first-staged-
/// occurrence-wins holds across batch boundaries. FrontierStager relies
/// on this to commit a spilled level in bounded-memory batches.
///
/// Between commits the store is read-only and safe to read from any
/// thread; Stage() writes only to the caller's Staging buffer.
class ShardedStateStore {
 public:
  static constexpr uint32_t kNoId = 0xFFFFFFFFu;

  /// `num_shards` is rounded up to a power of two (minimum 1). Shard
  /// choice never affects ids — only contention and per-shard table size.
  /// `options` selects the key encoding (see StoreOptions).
  ShardedStateStore(int key_words, int aux_words, int num_shards,
                    const StoreOptions& options = StoreOptions{});

  int key_words() const { return key_words_; }
  int aux_words() const { return aux_words_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  size_t size() const { return index_.size(); }
  const StoreOptions& options() const { return options_; }

  /// Serial insertion (the search root, before any batches).
  uint32_t InternRoot(const uint64_t* key);

  /// Full key words of `id`. Valid in kPlain always and in kCompact for
  /// non-retired ids; in kDelta use KeyView (debug-checked).
  ConstArenaPtr KeyOf(uint32_t id) const {
    return {KeyRaw(id),
#ifndef NDEBUG
            &generation_
#endif
    };
  }
  ConstArenaPtr AuxOf(uint32_t id) const {
    const Slot s = Unpack(index_[id]);
    const Shard& shard = shards_[s.shard];
    WYDB_DCHECK(s.local >= shard.frontier_base && "retired state");
    return {shard.aux.data() +
                static_cast<size_t>(s.local - shard.frontier_base) *
                    aux_words_,
#ifndef NDEBUG
            &generation_
#endif
    };
  }
  MutableArenaPtr MutableAuxOf(uint32_t id) {
    const Slot s = Unpack(index_[id]);
    Shard& shard = shards_[s.shard];
    WYDB_DCHECK(s.local >= shard.frontier_base && "retired state");
    return {shard.aux.data() +
                static_cast<size_t>(s.local - shard.frontier_base) *
                    aux_words_,
#ifndef NDEBUG
            &generation_
#endif
    };
  }
  uint32_t ParentOf(uint32_t id) const {
    const Slot s = Unpack(index_[id]);
    return shards_[s.shard].parents[s.local].parent;
  }
  GlobalNode MoveOf(uint32_t id) const {
    const Slot s = Unpack(index_[id]);
    const ParentLink& p = shards_[s.shard].parents[s.local];
    return GlobalNode{p.move_txn, p.move_node};
  }

  /// \brief Per-worker scratch for KeyView in kDelta mode: a small
  /// direct-mapped cache of reconstructed keys, so walking a frontier in
  /// id order re-decodes each parent chain O(1) amortized times.
  ///
  /// Not thread-safe; give each worker its own. Cheap to default-
  /// construct (storage is allocated on first use, sized to the store's
  /// key width).
  class KeyDecodeCache {
   public:
    KeyDecodeCache() = default;

   private:
    friend class ShardedStateStore;
    static constexpr size_t kSlots = 128;  // Power of two.
    void EnsureShape(int key_words);
    int key_words_ = 0;
    std::vector<uint32_t> ids_;     ///< kSlots entries; kNoId = empty.
    std::vector<uint64_t> words_;   ///< kSlots * key_words_ words.
    std::vector<uint64_t> scratch_; ///< One key: chain unwind buffer.
    std::vector<uint64_t> compare_; ///< One key: probe-compare buffer.
    std::vector<uint32_t> chain_;   ///< Walk scratch (ids to replay).
  };

  /// Full key words of `id`, valid in every encoding. kPlain/kCompact
  /// return the arena pointer directly; kDelta reconstructs through
  /// `cache` (required non-null in that mode). The returned pointer is
  /// invalidated by the next KeyView call on the same cache, and by any
  /// store insertion.
  const uint64_t* KeyView(uint32_t id, KeyDecodeCache* cache) const {
    if (options_.encoding != StoreOptions::KeyEncoding::kDelta) {
      return KeyRaw(id);
    }
    cache->EnsureShape(key_words_);
    return ReconstructKey(id, cache);
  }

  /// The move sequence from the root to `id`, in execution order.
  std::vector<GlobalNode> PathFromRoot(uint32_t id) const;

  /// Bytes held by the shard arenas, tables, and the global index.
  size_t MemoryBytes() const;
  /// The same bytes, broken down for the --stats memory counters.
  StoreMemoryStats MemoryStats() const;

  /// Per-chunk staging buffer. Reusable across levels (Reset keeps the
  /// allocated capacity).
  class Staging {
   public:
    size_t staged() const { return count_; }

   private:
    friend class ShardedStateStore;
    struct Pending {
      uint64_t hash;
      uint32_t ordinal;  ///< Staging order within the chunk.
      uint32_t parent;
      int32_t move_txn;
      int32_t move_node;
    };
    std::vector<std::vector<uint64_t>> words_;  ///< [shard] key|aux runs.
    std::vector<std::vector<Pending>> pending_;  ///< [shard] metadata.
    /// kDelta only: varint-packed key records, one per pending tuple, in
    /// pending order per shard; rec_lens_ holds the record byte lengths.
    std::vector<std::vector<uint8_t>> recs_;
    std::vector<std::vector<uint32_t>> rec_lens_;
    std::vector<uint8_t> rec_scratch_;  ///< Stage-local encode buffer.
    uint32_t count_ = 0;
  };

  /// Prepares `staging` for a new chunk of this store's batch.
  void ResetStaging(Staging* staging) const;

  /// Stages one candidate child (key_words + aux_words words) with its
  /// parent link. Writes only into `staging`; safe to call concurrently
  /// on distinct Staging objects.
  ///
  /// `parent_key` is the parent's stored (canonical) key and is required
  /// in kDelta mode, where the delta record is computed here at stage
  /// time — commit-time reconstruction would race with other shards'
  /// arena appends. Ignored in other modes; null falls back to a full
  /// (undeltaed) record.
  void Stage(Staging* staging, const uint64_t* key, const uint64_t* aux,
             uint32_t parent, GlobalNode move,
             const uint64_t* parent_key = nullptr) const;

  /// Installs (or clears) the canonical-key hook used by StageCanonical.
  void set_canonicalizer(const KeyCanonicalizer* canonicalizer) {
    canonicalizer_ = canonicalizer;
  }

  /// Canonicalizes `key`/`aux` in place (no-op without a hook), then
  /// stages the canonical tuple — the canonical key is what gets hashed,
  /// so symmetric siblings land in one shard slot and dedup to one id.
  /// Safe to call concurrently on distinct Staging objects. In kDelta
  /// mode `parent_key` must be the parent's *stored* (already canonical)
  /// key, so the xor-delta relates two canonical representatives.
  void StageCanonical(Staging* staging, uint64_t* key, uint64_t* aux,
                      uint32_t parent, GlobalNode move,
                      const uint64_t* parent_key = nullptr) const;

  /// Commits `num_chunks` staged chunks, in chunk order. With `dedupe`,
  /// keys already present (in the store or earlier in the batch) are
  /// dropped; without it every staged tuple becomes a fresh state (the
  /// memoization ablation). Shard dedup runs on `pool` (may be null =
  /// serial). Returns the number of fresh states; their ids are
  /// [old size(), new size()), in staging order.
  size_t CommitStaged(std::vector<Staging>* chunks, size_t num_chunks,
                      ThreadPool* pool, bool dedupe = true);

  /// kCompact only: drops the key/aux arena entries of every state below
  /// the first commit since the previous retire — i.e. retires the
  /// levels that have been fully expanded, keeping only the current
  /// frontier resident. Parents, fingerprints, and the probe tables stay
  /// (probing needs only fingerprints), so dedup and witness replay are
  /// unaffected. KeyOf/AuxOf of retired ids become invalid
  /// (debug-checked). No-op in other encodings.
  void RetireExpanded();

  /// Serializes one staged chunk to `file` (plain fwrite, host byte
  /// order — the spill file never outlives the process). Returns false
  /// on I/O error.
  bool WriteStaging(std::FILE* file, const Staging& staging) const;
  /// Reads back one chunk written by WriteStaging into `staging`
  /// (resetting it first). Returns false on EOF or I/O error.
  bool ReadStaging(std::FILE* file, Staging* staging) const;
  /// Live bytes currently staged in `staging` (spill accounting).
  uint64_t StagingBytes(const Staging& staging) const;

 private:
  struct ParentLink {
    uint32_t parent;
    int32_t move_txn;
    int32_t move_node;
  };
  struct Slot {
    uint32_t shard;
    uint32_t local;
  };
  struct Shard {
    /// kPlain: all keys. kCompact: keys of locals >= frontier_base only.
    /// kDelta: unused (identity lives in recs).
    std::vector<uint64_t> keys;
    /// kPlain/kDelta: all aux. kCompact: locals >= frontier_base only.
    std::vector<uint64_t> aux;
    std::vector<ParentLink> parents;  ///< One per local id, never retired.
    std::vector<uint32_t> slots;      ///< Open addressing -> local id.
    size_t slot_mask = 0;
    /// kDelta/kCompact: full 64-bit key hash per local id (probe
    /// prefilter in kDelta, the whole identity in kCompact; also makes
    /// table growth rehash-free).
    std::vector<uint64_t> hashes;
    /// kDelta: byte offset of each local id's record in recs.
    std::vector<uint64_t> rec_off;
    std::vector<uint8_t> recs;  ///< kDelta: varint key records.
    /// kCompact: first local id whose key/aux words are still resident.
    uint32_t frontier_base = 0;
  };
  /// Commit scratch: one provisional fresh insertion of the delta
  /// two-pass commit (probe pass records it, append pass materializes).
  struct PendingAppend {
    const uint64_t* key_aux;
    const uint8_t* rec;
    uint32_t rec_len;
    uint32_t parent;
    int32_t move_txn;
    int32_t move_node;
  };

  static Slot Unpack(uint64_t packed) {
    return Slot{static_cast<uint32_t>(packed >> 32),
                static_cast<uint32_t>(packed)};
  }
  static uint64_t Pack(uint32_t shard, uint32_t local) {
    return (static_cast<uint64_t>(shard) << 32) | local;
  }

  uint32_t ShardOf(uint64_t hash) const {
    // High bits pick the shard; Find/insert probe with the low bits, so
    // the two choices stay independent.
    return static_cast<uint32_t>(hash >> (64 - shard_bits_)) &
           (static_cast<uint32_t>(shards_.size()) - 1);
  }

  const uint64_t* KeyRaw(uint32_t id) const {
    WYDB_DCHECK(options_.encoding != StoreOptions::KeyEncoding::kDelta &&
                "KeyOf is unavailable in delta encoding; use KeyView");
    const Slot s = Unpack(index_[id]);
    const Shard& shard = shards_[s.shard];
    WYDB_DCHECK(s.local >= shard.frontier_base && "retired state");
    return shard.keys.data() +
           static_cast<size_t>(s.local - shard.frontier_base) * key_words_;
  }

  /// Appends a tuple to `shard` (no table insertion); returns local id.
  uint32_t AppendToShard(Shard* shard, const uint64_t* key_aux,
                         const Staging::Pending& p);
  /// kDelta append: aux + parent link + record bytes + stored hash.
  uint32_t AppendDeltaToShard(Shard* shard, const PendingAppend& a);
  void GrowShard(Shard* shard);
  /// Rehash from stored hashes (kDelta/kCompact, where recomputing
  /// hashes from keys is impossible or wasteful).
  void GrowShardByHash(Shard* shard);

  /// kDelta: encodes the record for `key` into staging->rec_scratch_
  /// (full record when `parent_key` is null or the delta would be
  /// larger) and appends it to the shard's record lane.
  void EncodeRecord(Staging* staging, uint32_t shard, const uint64_t* key,
                    uint32_t parent, const uint64_t* parent_key) const;
  /// kDelta: reconstructs the full key of committed global id `id` via
  /// the parent-record chain, memoized in `cache`. Reads only committed
  /// data — safe concurrently with provisional slot/hash insertions.
  const uint64_t* ReconstructKey(uint32_t id, KeyDecodeCache* cache) const;
  /// kDelta probe: does committed (shard, local) hold exactly `key`?
  bool CommittedKeyEquals(uint32_t shard, uint32_t local,
                          const uint64_t* key, KeyDecodeCache* cache) const;

  size_t CommitStagedDelta(std::vector<Staging>* chunks, size_t num_chunks,
                           ThreadPool* pool, bool dedupe);

  const int key_words_;
  const int aux_words_;
  const StoreOptions options_;
  const KeyCanonicalizer* canonicalizer_ = nullptr;
  int shard_bits_ = 0;
  std::vector<Shard> shards_;
  /// Global id -> packed (shard, local), in allocation order.
  std::vector<uint64_t> index_;
  /// Scratch for CommitStaged: staging-seq -> packed slot of the fresh
  /// insertion, or ~0 for duplicates. Sized to the batch, reused.
  std::vector<uint64_t> fresh_marks_;
  /// Delta-commit scratch: per-shard provisional appends (probe pass
  /// fills, append pass drains) and per-worker decode caches.
  std::vector<std::vector<PendingAppend>> append_scratch_;
  std::vector<KeyDecodeCache> commit_caches_;
  /// kCompact: per-shard local count at the first commit since the last
  /// RetireExpanded — the boundary below which states are expanded.
  std::vector<uint32_t> retire_base_;
  bool retire_base_valid_ = false;
  /// Arena epoch for the debug stale-pointer check. The sharded store
  /// bumps once per mutation batch (InternRoot / CommitStaged /
  /// RetireExpanded): within a batch internal writers append
  /// concurrently, and all outside pointers are invalidated together.
  std::atomic<uint64_t> generation_{0};
};

}  // namespace wydb

#endif  // WYDB_CORE_STATE_STORE_H_
