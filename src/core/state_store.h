// Arena-backed intern tables for packed search states.
//
// The exact checkers explore exponentially many states, so every constant
// factor per expansion matters (the cost story of Theorems 1-2). The seed
// implementation kept three heap copies of every state (visited set,
// parent map, BFS queue), each behind its own hash-map node. StateStore
// collapses all of that into flat arrays:
//
//   * every state is `key_words` 64-bit words of identity plus `aux_words`
//     of engine cache (frontier masks, lock-holder tables, flags), stored
//     contiguously in two arenas and addressed by a dense 32-bit id;
//   * an open-addressing table (power-of-two capacity, linear probing)
//     maps key words -> id, so visited-set membership is one probe
//     sequence with no per-node allocation;
//   * parent links are a flat array of (parent id, move), making witness
//     reconstruction an array walk instead of a hash-map chase.
//
// Ids are stable for the lifetime of the store; pointers returned by
// KeyOf/AuxOf are invalidated by the next Intern/Append (the arenas are
// std::vectors), so re-fetch them after every insertion.
//
// ShardedStateStore is the multi-core variant (DESIGN.md §7): the intern
// table is split by key-hash into power-of-two shards, each with its own
// arenas and probe table, and deduplication of a whole BFS level runs as
// one batched commit — stage children in parent order, dedup every shard
// in parallel, then assign dense global ids in staging order. The id
// sequence, parent links, and first-visit semantics are bit-identical to
// a serial StateStore fed the same insertions, for any shard count,
// thread count, or chunk size.
#ifndef WYDB_CORE_STATE_STORE_H_
#define WYDB_CORE_STATE_STORE_H_

#include <cstdint>
#include <vector>

#include "core/system.h"

namespace wydb {

class ThreadPool;

/// \brief Optional canonical-key hook (the symmetry half of
/// SearchEngine::kReduced, DESIGN.md §8.2).
///
/// Canonicalize rewrites a (key, aux) pair in place to the canonical
/// representative of its symmetry class — e.g. OrbitCanonicalizer
/// (core/symmetry.h) sorts the per-transaction key blocks by orbit —
/// so equivalent states intern to one id. Implementations must be
/// deterministic functions of the key and thread-safe: the sharded
/// store invokes the hook from concurrent staging workers, and the
/// canonical key is what feeds the shard hash.
class KeyCanonicalizer {
 public:
  virtual ~KeyCanonicalizer() = default;
  /// `aux` may be null when the caller only needs the key rewritten.
  virtual void Canonicalize(uint64_t* key, uint64_t* aux) const = 0;
};

class StateStore {
 public:
  /// Sentinel id: "no such state" / "no parent" (the root).
  static constexpr uint32_t kNoId = 0xFFFFFFFFu;

  /// `key_words` words of state identity (hashed, deduplicated) and
  /// `aux_words` words of per-state engine cache (not part of identity;
  /// zero-initialised on insertion).
  explicit StateStore(int key_words, int aux_words = 0);

  struct InternResult {
    uint32_t id;
    bool inserted;  ///< False when the key was already present.
  };

  /// Interns `key` (exactly key_words() words). On fresh insertion records
  /// the parent link and zero-fills the aux region; on a hit the existing
  /// id is returned and the parent link is left untouched (BFS first-visit
  /// parents).
  InternResult Intern(const uint64_t* key, uint32_t parent = kNoId,
                      GlobalNode move = GlobalNode{-1, -1});

  /// Installs (or clears, with null) the canonical-key hook used by
  /// InternCanonical. The store does not own the canonicalizer.
  void set_canonicalizer(const KeyCanonicalizer* canonicalizer) {
    canonicalizer_ = canonicalizer;
  }

  /// Canonicalizes `key`/`aux` in place through the installed hook (a
  /// no-op without one), then interns the canonical key; on fresh
  /// insertion the aux region is filled from `aux` (instead of the
  /// zero-fill of plain Intern). `aux` must hold aux_words() words.
  InternResult InternCanonical(uint64_t* key, uint64_t* aux,
                               uint32_t parent = kNoId,
                               GlobalNode move = GlobalNode{-1, -1});

  /// Appends without deduplication (memoization ablation); the hash table
  /// is bypassed entirely. Do not mix with Intern on the same store.
  uint32_t Append(const uint64_t* key, uint32_t parent = kNoId,
                  GlobalNode move = GlobalNode{-1, -1});

  /// Lookup without insertion; kNoId if absent.
  uint32_t Find(const uint64_t* key) const;

  size_t size() const { return parents_.size(); }
  int key_words() const { return key_words_; }
  int aux_words() const { return aux_words_; }

  const uint64_t* KeyOf(uint32_t id) const {
    return keys_.data() + static_cast<size_t>(id) * key_words_;
  }
  const uint64_t* AuxOf(uint32_t id) const {
    return aux_.data() + static_cast<size_t>(id) * aux_words_;
  }
  uint64_t* MutableAuxOf(uint32_t id) {
    return aux_.data() + static_cast<size_t>(id) * aux_words_;
  }

  uint32_t ParentOf(uint32_t id) const { return parents_[id].parent; }
  GlobalNode MoveOf(uint32_t id) const {
    return GlobalNode{parents_[id].move_txn, parents_[id].move_node};
  }

  /// The move sequence from the root (the ancestor with parent kNoId) to
  /// `id`, in execution order.
  std::vector<GlobalNode> PathFromRoot(uint32_t id) const;

  /// Bytes held by the arenas and the table (diagnostics).
  size_t MemoryBytes() const;

 private:
  struct ParentLink {
    uint32_t parent;
    int32_t move_txn;
    int32_t move_node;
  };

  void Grow();

  const int key_words_;
  const int aux_words_;
  const KeyCanonicalizer* canonicalizer_ = nullptr;
  std::vector<uint64_t> keys_;       ///< size() * key_words_ words.
  std::vector<uint64_t> aux_;        ///< size() * aux_words_ words.
  std::vector<ParentLink> parents_;  ///< One per id.
  std::vector<uint32_t> slots_;      ///< Open-addressing table of ids.
  size_t slot_mask_ = 0;             ///< slots_.size() - 1 (power of two).
};

/// \brief Key-hash-sharded intern table with a deterministic batched
/// commit: the substrate of the kParallelSharded search engine.
///
/// Global ids are dense and allocated in *staging order* — the order
/// Stage() calls would reach a serial StateStore::Intern when chunks are
/// filled in parent order — so verdicts, witnesses, and state counts of a
/// level-synchronous parallel BFS match the serial engines bit for bit.
///
/// Usage per BFS level:
///   1. Split the level's states into chunks (chunk c = states
///      [c*chunk_size, ...)); one Staging buffer per chunk.
///   2. In parallel (any worker<->chunk assignment): for each state of
///      chunk c in id order, Stage() each child into staging[c]. Stage
///      routes the child to a shard by key hash and records the staging
///      ordinal.
///   3. CommitStaged(): dedups every shard in parallel against both the
///      table and the batch itself (first staged occurrence wins the
///      parent link, as with serial Intern), then assigns global ids to
///      the fresh states by a serial rank scan in staging order.
///
/// Between commits the store is read-only and safe to read from any
/// thread; Stage() writes only to the caller's Staging buffer.
class ShardedStateStore {
 public:
  static constexpr uint32_t kNoId = 0xFFFFFFFFu;

  /// `num_shards` is rounded up to a power of two (minimum 1). Shard
  /// choice never affects ids — only contention and per-shard table size.
  ShardedStateStore(int key_words, int aux_words, int num_shards);

  int key_words() const { return key_words_; }
  int aux_words() const { return aux_words_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  size_t size() const { return index_.size(); }

  /// Serial insertion (the search root, before any batches).
  uint32_t InternRoot(const uint64_t* key);

  const uint64_t* KeyOf(uint32_t id) const {
    const Slot s = Unpack(index_[id]);
    return shards_[s.shard].keys.data() +
           static_cast<size_t>(s.local) * key_words_;
  }
  const uint64_t* AuxOf(uint32_t id) const {
    const Slot s = Unpack(index_[id]);
    return shards_[s.shard].aux.data() +
           static_cast<size_t>(s.local) * aux_words_;
  }
  uint64_t* MutableAuxOf(uint32_t id) {
    const Slot s = Unpack(index_[id]);
    return shards_[s.shard].aux.data() +
           static_cast<size_t>(s.local) * aux_words_;
  }
  uint32_t ParentOf(uint32_t id) const {
    const Slot s = Unpack(index_[id]);
    return shards_[s.shard].parents[s.local].parent;
  }
  GlobalNode MoveOf(uint32_t id) const {
    const Slot s = Unpack(index_[id]);
    const ParentLink& p = shards_[s.shard].parents[s.local];
    return GlobalNode{p.move_txn, p.move_node};
  }

  /// The move sequence from the root to `id`, in execution order.
  std::vector<GlobalNode> PathFromRoot(uint32_t id) const;

  /// Bytes held by the shard arenas, tables, and the global index.
  size_t MemoryBytes() const;

  /// Per-chunk staging buffer. Reusable across levels (Reset keeps the
  /// allocated capacity).
  class Staging {
   public:
    size_t staged() const { return count_; }

   private:
    friend class ShardedStateStore;
    struct Pending {
      uint64_t hash;
      uint32_t ordinal;  ///< Staging order within the chunk.
      uint32_t parent;
      int32_t move_txn;
      int32_t move_node;
    };
    std::vector<std::vector<uint64_t>> words_;  ///< [shard] key|aux runs.
    std::vector<std::vector<Pending>> pending_;  ///< [shard] metadata.
    uint32_t count_ = 0;
  };

  /// Prepares `staging` for a new chunk of this store's batch.
  void ResetStaging(Staging* staging) const;

  /// Stages one candidate child (key_words + aux_words words) with its
  /// parent link. Writes only into `staging`; safe to call concurrently
  /// on distinct Staging objects.
  void Stage(Staging* staging, const uint64_t* key, const uint64_t* aux,
             uint32_t parent, GlobalNode move) const;

  /// Installs (or clears) the canonical-key hook used by StageCanonical.
  void set_canonicalizer(const KeyCanonicalizer* canonicalizer) {
    canonicalizer_ = canonicalizer;
  }

  /// Canonicalizes `key`/`aux` in place (no-op without a hook), then
  /// stages the canonical tuple — the canonical key is what gets hashed,
  /// so symmetric siblings land in one shard slot and dedup to one id.
  /// Safe to call concurrently on distinct Staging objects.
  void StageCanonical(Staging* staging, uint64_t* key, uint64_t* aux,
                      uint32_t parent, GlobalNode move) const;

  /// Commits `num_chunks` staged chunks, in chunk order. With `dedupe`,
  /// keys already present (in the store or earlier in the batch) are
  /// dropped; without it every staged tuple becomes a fresh state (the
  /// memoization ablation). Shard dedup runs on `pool` (may be null =
  /// serial). Returns the number of fresh states; their ids are
  /// [old size(), new size()), in staging order.
  size_t CommitStaged(std::vector<Staging>* chunks, size_t num_chunks,
                      ThreadPool* pool, bool dedupe = true);

 private:
  struct ParentLink {
    uint32_t parent;
    int32_t move_txn;
    int32_t move_node;
  };
  struct Slot {
    uint32_t shard;
    uint32_t local;
  };
  struct Shard {
    std::vector<uint64_t> keys;       ///< local size * key_words.
    std::vector<uint64_t> aux;        ///< local size * aux_words.
    std::vector<ParentLink> parents;  ///< One per local id.
    std::vector<uint32_t> slots;      ///< Open addressing -> local id.
    size_t slot_mask = 0;
  };

  static Slot Unpack(uint64_t packed) {
    return Slot{static_cast<uint32_t>(packed >> 32),
                static_cast<uint32_t>(packed)};
  }
  static uint64_t Pack(uint32_t shard, uint32_t local) {
    return (static_cast<uint64_t>(shard) << 32) | local;
  }

  uint32_t ShardOf(uint64_t hash) const {
    // High bits pick the shard; Find/insert probe with the low bits, so
    // the two choices stay independent.
    return static_cast<uint32_t>(hash >> (64 - shard_bits_)) &
           (static_cast<uint32_t>(shards_.size()) - 1);
  }

  /// Appends a tuple to `shard` (no table insertion); returns local id.
  uint32_t AppendToShard(Shard* shard, const uint64_t* key_aux,
                         const Staging::Pending& p);
  void GrowShard(Shard* shard);

  const int key_words_;
  const int aux_words_;
  const KeyCanonicalizer* canonicalizer_ = nullptr;
  int shard_bits_ = 0;
  std::vector<Shard> shards_;
  /// Global id -> packed (shard, local), in allocation order.
  std::vector<uint64_t> index_;
  /// Scratch for CommitStaged: staging-seq -> packed slot of the fresh
  /// insertion, or ~0 for duplicates. Sized to the batch, reused.
  std::vector<uint64_t> fresh_marks_;
};

}  // namespace wydb

#endif  // WYDB_CORE_STATE_STORE_H_
