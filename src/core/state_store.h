// Arena-backed intern table for packed search states.
//
// The exact checkers explore exponentially many states, so every constant
// factor per expansion matters (the cost story of Theorems 1-2). The seed
// implementation kept three heap copies of every state (visited set,
// parent map, BFS queue), each behind its own hash-map node. StateStore
// collapses all of that into flat arrays:
//
//   * every state is `key_words` 64-bit words of identity plus `aux_words`
//     of engine cache (frontier masks, lock-holder tables, flags), stored
//     contiguously in two arenas and addressed by a dense 32-bit id;
//   * an open-addressing table (power-of-two capacity, linear probing)
//     maps key words -> id, so visited-set membership is one probe
//     sequence with no per-node allocation;
//   * parent links are a flat array of (parent id, move), making witness
//     reconstruction an array walk instead of a hash-map chase.
//
// Ids are stable for the lifetime of the store; pointers returned by
// KeyOf/AuxOf are invalidated by the next Intern/Append (the arenas are
// std::vectors), so re-fetch them after every insertion.
#ifndef WYDB_CORE_STATE_STORE_H_
#define WYDB_CORE_STATE_STORE_H_

#include <cstdint>
#include <vector>

#include "core/system.h"

namespace wydb {

class StateStore {
 public:
  /// Sentinel id: "no such state" / "no parent" (the root).
  static constexpr uint32_t kNoId = 0xFFFFFFFFu;

  /// `key_words` words of state identity (hashed, deduplicated) and
  /// `aux_words` words of per-state engine cache (not part of identity;
  /// zero-initialised on insertion).
  explicit StateStore(int key_words, int aux_words = 0);

  struct InternResult {
    uint32_t id;
    bool inserted;  ///< False when the key was already present.
  };

  /// Interns `key` (exactly key_words() words). On fresh insertion records
  /// the parent link and zero-fills the aux region; on a hit the existing
  /// id is returned and the parent link is left untouched (BFS first-visit
  /// parents).
  InternResult Intern(const uint64_t* key, uint32_t parent = kNoId,
                      GlobalNode move = GlobalNode{-1, -1});

  /// Appends without deduplication (memoization ablation); the hash table
  /// is bypassed entirely. Do not mix with Intern on the same store.
  uint32_t Append(const uint64_t* key, uint32_t parent = kNoId,
                  GlobalNode move = GlobalNode{-1, -1});

  /// Lookup without insertion; kNoId if absent.
  uint32_t Find(const uint64_t* key) const;

  size_t size() const { return parents_.size(); }
  int key_words() const { return key_words_; }
  int aux_words() const { return aux_words_; }

  const uint64_t* KeyOf(uint32_t id) const {
    return keys_.data() + static_cast<size_t>(id) * key_words_;
  }
  const uint64_t* AuxOf(uint32_t id) const {
    return aux_.data() + static_cast<size_t>(id) * aux_words_;
  }
  uint64_t* MutableAuxOf(uint32_t id) {
    return aux_.data() + static_cast<size_t>(id) * aux_words_;
  }

  uint32_t ParentOf(uint32_t id) const { return parents_[id].parent; }
  GlobalNode MoveOf(uint32_t id) const {
    return GlobalNode{parents_[id].move_txn, parents_[id].move_node};
  }

  /// The move sequence from the root (the ancestor with parent kNoId) to
  /// `id`, in execution order.
  std::vector<GlobalNode> PathFromRoot(uint32_t id) const;

  /// Bytes held by the arenas and the table (diagnostics).
  size_t MemoryBytes() const;

 private:
  struct ParentLink {
    uint32_t parent;
    int32_t move_txn;
    int32_t move_node;
  };

  uint64_t HashKey(const uint64_t* key) const;
  void Grow();

  const int key_words_;
  const int aux_words_;
  std::vector<uint64_t> keys_;       ///< size() * key_words_ words.
  std::vector<uint64_t> aux_;        ///< size() * aux_words_ words.
  std::vector<ParentLink> parents_;  ///< One per id.
  std::vector<uint32_t> slots_;      ///< Open-addressing table of ids.
  size_t slot_mask_ = 0;             ///< slots_.size() - 1 (power of two).
};

}  // namespace wydb

#endif  // WYDB_CORE_STATE_STORE_H_
