// Transaction-symmetry machinery for the reduced search engine
// (SearchEngine::kReduced, DESIGN.md §8.2).
//
// Generator-produced systems (farms, replicated farms, rings of identical
// templates) are full of *structurally identical* transactions: same
// Lock/Unlock step list over the same entities, same precedence relation.
// Swapping two such transactions is an automorphism of the whole system —
// it maps legal schedules to legal schedules and preserves stuckness,
// completeness, and conflict-digraph cyclicity. The reachable state space
// is therefore partitioned into orbits of the permutation group
// ∏ Sym(orbit), and an exhaustive search only needs one representative
// per orbit.
//
// TransactionOrbits computes the equivalence classes once per system;
// OrbitCanonicalizer is the KeyCanonicalizer hook (core/state_store.h)
// that rewrites a packed search state to its class representative: the
// per-transaction key blocks of each orbit are stable-sorted by content,
// and the aux cache (frontier blocks, lock-holder table) plus the
// optional conflict-arc matrix of the Lemma 1 key are permuted
// consistently. Permutation-equivalent states then intern to one id.
//
// The sort permutation is also exposed (CanonicalizeKey) so the reduced
// engines can reconstruct a *concrete* witness schedule from a stored
// path of representatives: replaying the path while composing the
// per-step sort permutations yields a legal schedule of the original,
// unpermuted system (DESIGN.md §8.3).
#ifndef WYDB_CORE_SYMMETRY_H_
#define WYDB_CORE_SYMMETRY_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/state_space.h"
#include "core/state_store.h"
#include "core/system.h"

namespace wydb {

/// \brief Orbits of the transaction-permutation symmetry group, from
/// structural transaction equality (identical steps over identical
/// entities, identical precedence relation).
class TransactionOrbits {
 public:
  explicit TransactionOrbits(const TransactionSystem& sys);

  int num_transactions() const { return static_cast<int>(orbit_of_.size()); }
  int num_orbits() const { return static_cast<int>(orbits_.size()); }
  int orbit_of(int txn) const { return orbit_of_[txn]; }
  /// Members of each orbit, ascending.
  const std::vector<std::vector<int>>& orbits() const { return orbits_; }
  /// Size of the largest orbit (1 when the system has no symmetry).
  int largest_orbit() const { return largest_; }
  /// True iff some orbit has at least two members (canonicalization can
  /// merge states).
  bool HasNontrivialOrbit() const { return largest_ > 1; }

 private:
  std::vector<int> orbit_of_;
  std::vector<std::vector<int>> orbits_;
  int largest_ = 1;
};

/// \brief KeyCanonicalizer sorting the state key by transaction orbit.
///
/// Key layout: [exec blocks] for the deadlock checker, or
/// [exec blocks | n rows of `arc_row_words` conflict-arc words] for the
/// Lemma 1 safety key. Aux layout: the StateSpace cache ([frontier
/// blocks | holder table]) optionally followed by engine flag words,
/// which are permutation-invariant and left untouched.
///
/// Canonicalize applies a *valid automorphism* chosen deterministically
/// from the key (stable sort of each orbit's exec blocks by content), so
/// the rewritten state is always equivalent to the input — merging is
/// sound even when exec-block ties leave the arc matrix unsorted (the
/// quotient is then merely coarser than optimal; see DESIGN.md §8.2).
class OrbitCanonicalizer : public KeyCanonicalizer {
 public:
  /// `arc_row_words` > 0 selects the Lemma key layout. `space` and
  /// `orbits` must outlive the canonicalizer.
  OrbitCanonicalizer(const StateSpace* space, const TransactionOrbits* orbits,
                     int arc_row_words = 0);

  /// Rewrites `key` (and, when non-null, `aux`) in place to the orbit
  /// representative. Thread-safe (per-thread scratch).
  void Canonicalize(uint64_t* key, uint64_t* aux) const override;

  /// Canonicalize plus the permutation used: `perm[new_index] =
  /// old_index` — the canonical block at transaction slot `new_index`
  /// came from input slot `old_index` (identity outside nontrivial
  /// orbits). `perm` must hold num_transactions() ints.
  void CanonicalizeKey(uint64_t* key, int* perm) const;

 private:
  /// Computes the sort permutation of `key` into `perm` (perm[new]=old).
  /// Returns false when the permutation is the identity.
  bool SortPerm(const uint64_t* key, int* perm) const;
  /// Applies `perm` to key (+ optional aux) using `scratch`.
  void Apply(const int* perm, uint64_t* key, uint64_t* aux,
             std::vector<uint64_t>* scratch) const;

  const StateSpace* space_;
  const TransactionOrbits* orbits_;
  const int arc_row_words_;
  const int n_;
  const int exec_words_;
  const int key_words_;
};

/// \brief Rebuilds a concrete move sequence from a reduced search's
/// stored path of orbit representatives (DESIGN.md §8.3).
///
/// Parent links of a canonicalizing store record each move in its
/// parent *representative's* coordinates. This walks root -> `id` and,
/// per step, emits the concrete move `(tau[txn], node)` and composes
/// `tau` with the step's canonicalization permutation (`tau' = tau o
/// sigma`, recomputed deterministically from the key) — `build_child`
/// writes the *pre-canonical* child key of (parent representative key,
/// move) into a caller buffer of `canon.key words`, i.e. exactly what
/// the engine staged before the canonical hook ran. On return
/// `schedule` is a legal schedule of the unpermuted system and `tau`
/// maps the final representative's transaction indices to concrete
/// ones. The shared core of both checkers' witness reconstruction; the
/// composition direction lives in one place on purpose.
void ReplayReducedPath(
    const ShardedStateStore& store, uint32_t id,
    const OrbitCanonicalizer& canon, bool canonical_active,
    const StateSpace& space, int key_words,
    const std::function<void(const uint64_t* parent_key, GlobalNode move,
                             uint64_t* child_key)>& build_child,
    std::vector<GlobalNode>* schedule, std::vector<int>* tau);

}  // namespace wydb

#endif  // WYDB_CORE_SYMMETRY_H_
