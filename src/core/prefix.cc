#include "core/prefix.h"

#include "common/string_util.h"

namespace wydb {
namespace {

int WordsFor(int steps) { return (steps + 63) / 64; }

}  // namespace

PrefixSet::PrefixSet(const TransactionSystem* sys) : sys_(sys) {
  masks_.resize(sys->num_transactions());
  for (int i = 0; i < sys->num_transactions(); ++i) {
    masks_[i].assign(std::max(1, WordsFor(sys->txn(i).num_steps())), 0);
  }
}

PrefixSet PrefixSet::Full(const TransactionSystem* sys) {
  PrefixSet p(sys);
  for (int i = 0; i < sys->num_transactions(); ++i) {
    for (NodeId v = 0; v < sys->txn(i).num_steps(); ++v) {
      bitmask::Set(&p.masks_[i], v);
    }
  }
  return p;
}

Result<PrefixSet> PrefixSet::FromNodeSets(
    const TransactionSystem* sys,
    const std::vector<std::vector<NodeId>>& nodes) {
  if (static_cast<int>(nodes.size()) != sys->num_transactions()) {
    return Status::InvalidArgument("one node list per transaction required");
  }
  PrefixSet p(sys);
  for (int i = 0; i < sys->num_transactions(); ++i) {
    for (NodeId v : nodes[i]) {
      if (v < 0 || v >= sys->txn(i).num_steps()) {
        return Status::InvalidArgument(
            StrFormat("node %d out of range for transaction %d", v, i));
      }
      bitmask::Set(&p.masks_[i], v);
    }
  }
  // Downward closure check: every predecessor of an included node is
  // included.
  for (int i = 0; i < sys->num_transactions(); ++i) {
    const Transaction& t = sys->txn(i);
    for (NodeId v = 0; v < t.num_steps(); ++v) {
      if (!p.Contains(i, v)) continue;
      for (NodeId u = 0; u < t.num_steps(); ++u) {
        if (t.Precedes(u, v) && !p.Contains(i, u)) {
          return Status::InvalidArgument(StrFormat(
              "node set of transaction %d is not downward-closed: %s in, "
              "predecessor %s out",
              i, t.StepLabel(v).c_str(), t.StepLabel(u).c_str()));
        }
      }
    }
  }
  return p;
}

void PrefixSet::AddWithPredecessors(int txn, NodeId v) {
  const Transaction& t = sys_->txn(txn);
  bitmask::Set(&masks_[txn], v);
  for (NodeId u = 0; u < t.num_steps(); ++u) {
    if (t.Precedes(u, v)) bitmask::Set(&masks_[txn], u);
  }
}

int PrefixSet::SizeOf(int txn) const {
  int count = 0;
  for (uint64_t w : masks_[txn]) count += __builtin_popcountll(w);
  return count;
}

int PrefixSet::TotalSize() const {
  int total = 0;
  for (int i = 0; i < sys_->num_transactions(); ++i) total += SizeOf(i);
  return total;
}

bool PrefixSet::IsComplete() const {
  for (int i = 0; i < sys_->num_transactions(); ++i) {
    if (!IsFull(i)) return false;
  }
  return true;
}

std::vector<EntityId> PrefixSet::LockedNotUnlocked(int txn) const {
  const Transaction& t = sys_->txn(txn);
  std::vector<EntityId> out;
  for (EntityId e : t.entities()) {
    if (Contains(txn, t.LockNode(e)) && !Contains(txn, t.UnlockNode(e))) {
      out.push_back(e);
    }
  }
  return out;
}

int PrefixSet::HolderOf(EntityId e) const {
  for (int i = 0; i < sys_->num_transactions(); ++i) {
    const Transaction& t = sys_->txn(i);
    if (!t.Accesses(e)) continue;
    if (Contains(i, t.LockNode(e)) && !Contains(i, t.UnlockNode(e))) {
      return i;
    }
  }
  return -1;
}

std::vector<NodeId> PrefixSet::RemainingFrontier(int txn) const {
  const Transaction& t = sys_->txn(txn);
  std::vector<NodeId> out;
  for (NodeId v = 0; v < t.num_steps(); ++v) {
    if (Contains(txn, v)) continue;
    bool ready = true;
    for (NodeId u : t.graph().InNeighbors(v)) {
      if (!Contains(txn, u)) {
        ready = false;
        break;
      }
    }
    if (ready) out.push_back(v);
  }
  return out;
}

std::string PrefixSet::DebugString() const {
  std::string out;
  for (int i = 0; i < sys_->num_transactions(); ++i) {
    const Transaction& t = sys_->txn(i);
    out += t.name() + "': {";
    bool first = true;
    for (NodeId v = 0; v < t.num_steps(); ++v) {
      if (!Contains(i, v)) continue;
      if (!first) out += ", ";
      out += t.StepLabel(v);
      first = false;
    }
    out += "}\n";
  }
  return out;
}

std::vector<uint64_t> MaximalPrefixAvoiding(
    const Transaction& t, const std::vector<EntityId>& avoid) {
  const int n = t.num_steps();
  std::vector<uint64_t> keep(std::max(1, (n + 63) / 64), 0);
  // A node survives unless some Ly (y in avoid) equals it or precedes it.
  std::vector<NodeId> banned_roots;
  for (EntityId y : avoid) {
    NodeId ly = t.LockNode(y);
    if (ly != kInvalidNode) banned_roots.push_back(ly);
  }
  for (NodeId v = 0; v < n; ++v) {
    bool banned = false;
    for (NodeId root : banned_roots) {
      if (root == v || t.Precedes(root, v)) {
        banned = true;
        break;
      }
    }
    if (!banned) bitmask::Set(&keep, v);
  }
  return keep;
}

std::vector<EntityId> RemainingEntities(const Transaction& t,
                                        const std::vector<uint64_t>& prefix) {
  std::vector<EntityId> out;
  for (EntityId e : t.entities()) {
    if (!bitmask::Test(prefix, t.UnlockNode(e))) out.push_back(e);
  }
  return out;
}

std::vector<EntityId> AccessedEntities(const Transaction& t,
                                       const std::vector<uint64_t>& prefix) {
  std::vector<EntityId> out;
  for (EntityId e : t.entities()) {
    if (bitmask::Test(prefix, t.LockNode(e))) out.push_back(e);
  }
  return out;
}

}  // namespace wydb
