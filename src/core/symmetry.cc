#include "core/symmetry.h"

#include <algorithm>
#include <cstring>
#include <numeric>

namespace wydb {

namespace {

/// Structural equality: interchangeable transactions must have the same
/// steps over the same entities *and* the same precedence relation, so
/// that swapping them maps the system onto itself.
bool StructurallyEqual(const Transaction& a, const Transaction& b) {
  if (a.num_steps() != b.num_steps()) return false;
  for (NodeId v = 0; v < a.num_steps(); ++v) {
    if (!(a.step(v) == b.step(v))) return false;
  }
  for (NodeId u = 0; u < a.num_steps(); ++u) {
    for (NodeId v = 0; v < a.num_steps(); ++v) {
      if (a.Precedes(u, v) != b.Precedes(u, v)) return false;
    }
  }
  return true;
}

}  // namespace

TransactionOrbits::TransactionOrbits(const TransactionSystem& sys) {
  const int n = sys.num_transactions();
  orbit_of_.assign(n, -1);
  for (int i = 0; i < n; ++i) {
    for (int o = 0; o < static_cast<int>(orbits_.size()); ++o) {
      if (StructurallyEqual(sys.txn(orbits_[o][0]), sys.txn(i))) {
        orbit_of_[i] = o;
        orbits_[o].push_back(i);
        break;
      }
    }
    if (orbit_of_[i] < 0) {
      orbit_of_[i] = static_cast<int>(orbits_.size());
      orbits_.push_back({i});
    }
  }
  for (const auto& orbit : orbits_) {
    largest_ = std::max(largest_, static_cast<int>(orbit.size()));
  }
}

OrbitCanonicalizer::OrbitCanonicalizer(const StateSpace* space,
                                       const TransactionOrbits* orbits,
                                       int arc_row_words)
    : space_(space),
      orbits_(orbits),
      arc_row_words_(arc_row_words),
      n_(space->system().num_transactions()),
      exec_words_(space->words_per_state()),
      key_words_(exec_words_ + n_ * arc_row_words) {}

bool OrbitCanonicalizer::SortPerm(const uint64_t* key, int* perm) const {
  for (int i = 0; i < n_; ++i) perm[i] = i;
  bool moved = false;
  for (const std::vector<int>& orbit : orbits_->orbits()) {
    if (orbit.size() < 2) continue;
    // All members share one step count, hence one block width.
    const int words = space_->txn_word_count(orbit[0]);
    // Stable sort of the orbit's members by exec-block content: ties keep
    // ascending member order, so the permutation is a deterministic
    // function of the key alone (witness replay recomputes it).
    thread_local std::vector<int> members;
    members.assign(orbit.begin(), orbit.end());
    std::stable_sort(members.begin(), members.end(), [&](int a, int b) {
      return std::memcmp(key + space_->txn_word_offset(a),
                         key + space_->txn_word_offset(b),
                         words * sizeof(uint64_t)) < 0;
    });
    for (size_t p = 0; p < orbit.size(); ++p) {
      perm[orbit[p]] = members[p];
      if (members[p] != orbit[p]) moved = true;
    }
  }
  return moved;
}

void OrbitCanonicalizer::Apply(const int* perm, uint64_t* key, uint64_t* aux,
                               std::vector<uint64_t>* scratch) const {
  // Gather-permute the exec blocks of the key (and the frontier blocks of
  // the aux, which share the layout) through a scratch copy.
  const size_t aux_exec = aux != nullptr ? exec_words_ : 0;
  scratch->resize(key_words_ + aux_exec);
  std::memcpy(scratch->data(), key, key_words_ * sizeof(uint64_t));
  if (aux != nullptr) {
    std::memcpy(scratch->data() + key_words_, aux,
                exec_words_ * sizeof(uint64_t));
  }
  const uint64_t* old_key = scratch->data();
  const uint64_t* old_aux_frontier = scratch->data() + key_words_;
  for (int i = 0; i < n_; ++i) {
    const int src = perm[i];
    if (src == i) continue;
    const int words = space_->txn_word_count(i);
    std::memcpy(key + space_->txn_word_offset(i),
                old_key + space_->txn_word_offset(src),
                words * sizeof(uint64_t));
    if (aux != nullptr) {
      std::memcpy(aux + space_->txn_word_offset(i),
                  old_aux_frontier + space_->txn_word_offset(src),
                  words * sizeof(uint64_t));
    }
  }

  if (arc_row_words_ > 0) {
    // arcs[new_i][new_j] = old_arcs[perm[new_i]][perm[new_j]]: rows and
    // columns permute together (the arc ends are transaction indices).
    const uint64_t* old_arcs = old_key + exec_words_;
    uint64_t* arcs = key + exec_words_;
    std::memset(arcs, 0,
                static_cast<size_t>(n_) * arc_row_words_ * sizeof(uint64_t));
    for (int i = 0; i < n_; ++i) {
      const uint64_t* old_row =
          old_arcs + static_cast<size_t>(perm[i]) * arc_row_words_;
      uint64_t* row = arcs + static_cast<size_t>(i) * arc_row_words_;
      for (int j = 0; j < n_; ++j) {
        if ((old_row[perm[j] / 64] >> (perm[j] % 64)) & 1) {
          row[j / 64] |= 1ULL << (j % 64);
        }
      }
    }
  }

  if (aux != nullptr) {
    // Exclusive holder entries are transaction indices: remap old -> new
    // through the inverse permutation. Shared entries are anonymous
    // counts — permutation-invariant by construction — and free slots
    // stay free.
    thread_local std::vector<uint16_t> inv;
    inv.resize(n_);
    for (int i = 0; i < n_; ++i) inv[perm[i]] = static_cast<uint16_t>(i);
    uint16_t* holders = space_->HolderTable(aux);
    const int num_entities = space_->system().db().num_entities();
    for (int e = 0; e < num_entities; ++e) {
      if (StateSpace::IsExclusiveEntry(holders[e])) {
        holders[e] = inv[holders[e]];
      }
    }
  }
}

void OrbitCanonicalizer::Canonicalize(uint64_t* key, uint64_t* aux) const {
  thread_local std::vector<int> perm;
  thread_local std::vector<uint64_t> scratch;
  perm.resize(n_);
  if (SortPerm(key, perm.data())) Apply(perm.data(), key, aux, &scratch);
}

void OrbitCanonicalizer::CanonicalizeKey(uint64_t* key, int* perm) const {
  thread_local std::vector<uint64_t> scratch;
  if (SortPerm(key, perm)) Apply(perm, key, /*aux=*/nullptr, &scratch);
}

void ReplayReducedPath(
    const ShardedStateStore& store, uint32_t id,
    const OrbitCanonicalizer& canon, bool canonical_active,
    const StateSpace& space, int key_words,
    const std::function<void(const uint64_t*, GlobalNode, uint64_t*)>&
        build_child,
    std::vector<GlobalNode>* schedule, std::vector<int>* tau) {
  const int n = space.system().num_transactions();

  std::vector<uint32_t> ids;
  for (uint32_t cur = id;; cur = store.ParentOf(cur)) {
    ids.push_back(cur);
    if (store.ParentOf(cur) == ShardedStateStore::kNoId) break;
  }
  std::reverse(ids.begin(), ids.end());

  tau->resize(n);
  std::iota(tau->begin(), tau->end(), 0);
  std::vector<int> sigma(n), next_tau(n);
  std::vector<uint64_t> child(key_words);
  // KeyView covers the delta-encoded store too: ancestor keys are
  // reconstructed through the decode cache (kCompact has no ancestor
  // keys at all and is rejected before a reduced search starts).
  ShardedStateStore::KeyDecodeCache decode;
  for (size_t k = 1; k < ids.size(); ++k) {
    const GlobalNode g = store.MoveOf(ids[k]);
    schedule->push_back(GlobalNode{(*tau)[g.txn], g.node});
    if (!canonical_active) continue;
    build_child(store.KeyView(ids[k - 1], &decode), g, child.data());
    canon.CanonicalizeKey(child.data(), sigma.data());
    for (int i = 0; i < n; ++i) next_tau[i] = (*tau)[sigma[i]];
    tau->swap(next_tau);
  }
}

}  // namespace wydb
