// Symmetry-invariant canonical form of a transaction system, used as the
// verdict-cache key of the analysis server (docs/SERVE.md).
//
// The key is the system renamed onto canonical names — sites s0.., entities
// e0.., transactions t0.. — in a canonical order and rendered in the .wydb
// text format. The canonical order comes from color refinement over the
// tripartite structure (sites / entities / transactions) followed by
// bounded individualization-refinement on residual entity ties, so it is
// invariant under site/entity renaming and transaction permutation and
// renaming. Equal text implies the systems are isomorphic (the text *is* a
// full description of one), so a cache keyed on it can never conflate two
// systems with different verdicts.
#ifndef WYDB_CORE_CANONICAL_H_
#define WYDB_CORE_CANONICAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/system.h"

namespace wydb {

/// Canonical cache key plus the isomorphism that produced it (needed to
/// map cached witnesses back onto a concrete resubmission).
struct SystemKey {
  /// Canonical .wydb serialization; parseable by ParseWorkload, which is
  /// how cache entries are preloaded from disk.
  std::string text;
  /// FNV-1a of `text`, mixed; a cheap first-stage cache probe.
  uint64_t hash = 0;
  /// False when the individualization budget ran out and remaining entity
  /// ties were broken by original id. The key is still sound (equal text
  /// still implies isomorphic); it may merely miss a possible cache hit.
  bool complete = true;
  /// Canonical transaction slot -> original transaction index.
  std::vector<int> txn_perm;
  /// Canonical entity id -> original EntityId.
  std::vector<int> entity_perm;
};

/// Computes the canonical key of `sys`. The key is invariant under
/// site/entity renaming, transaction permutation and renaming, and the
/// order unordered steps were *listed* in (node ids are scrubbed: colors
/// hash only order-theoretic invariants, and the rendering relists each
/// transaction in a canonical linear extension). In particular, for
/// complete keys the canonical text is a fixpoint: parsing `text` and
/// canonicalizing again reproduces the same text, so a client may
/// resubmit a previously returned canonical form and still hit.
Result<SystemKey> CanonicalSystemKey(const TransactionSystem& sys);

}  // namespace wydb

#endif  // WYDB_CORE_CANONICAL_H_
