#include "core/system.h"

#include <algorithm>

#include "common/string_util.h"

namespace wydb {

Result<TransactionSystem> TransactionSystem::Create(
    const Database* db, std::vector<Transaction> txns) {
  if (db == nullptr) return Status::InvalidArgument("null database");
  for (const Transaction& t : txns) {
    if (&t.db() != db) {
      return Status::InvalidArgument(
          "transaction '" + t.name() + "' is bound to a different database");
    }
  }
  // Names identify transactions in witnesses, stats lines and cache keys;
  // duplicates would make all three ambiguous.
  for (size_t i = 0; i < txns.size(); ++i) {
    for (size_t j = i + 1; j < txns.size(); ++j) {
      if (txns[i].name() == txns[j].name()) {
        return Status::InvalidArgument("duplicate transaction name '" +
                                       txns[i].name() + "'");
      }
    }
  }
  TransactionSystem sys;
  sys.db_ = db;
  sys.txns_ = std::move(txns);
  return sys;
}

std::vector<EntityId> TransactionSystem::SharedEntities(int i, int j) const {
  const auto& a = txns_[i].entities();
  const auto& b = txns_[j].entities();
  std::vector<EntityId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<EntityId> TransactionSystem::ConflictingEntities(int i,
                                                             int j) const {
  std::vector<EntityId> out = SharedEntities(i, j);
  std::erase_if(out, [&](EntityId e) {
    return !LockModesConflict(txns_[i].LockModeOf(e),
                              txns_[j].LockModeOf(e));
  });
  return out;
}

UndirectedGraph TransactionSystem::InteractionGraph() const {
  UndirectedGraph g(num_transactions());
  for (int i = 0; i < num_transactions(); ++i) {
    for (int j = i + 1; j < num_transactions(); ++j) {
      if (!ConflictingEntities(i, j).empty()) g.AddEdge(i, j);
    }
  }
  return g;
}

std::vector<int> TransactionSystem::AccessorsOf(EntityId e) const {
  std::vector<int> out;
  for (int i = 0; i < num_transactions(); ++i) {
    if (txns_[i].Accesses(e)) out.push_back(i);
  }
  return out;
}

int TransactionSystem::TotalSteps() const {
  int total = 0;
  for (const Transaction& t : txns_) total += t.num_steps();
  return total;
}

std::string TransactionSystem::NodeLabel(GlobalNode g) const {
  return StrFormat("%s.%s", txns_[g.txn].name().c_str(),
                   txns_[g.txn].StepLabel(g.node).c_str());
}

}  // namespace wydb
