#include "core/state_store.h"

#include <algorithm>
#include <cstring>

#include "common/hash_util.h"
#include "common/thread_pool.h"

namespace wydb {

namespace {
constexpr size_t kInitialSlots = 1024;       // Power of two.
constexpr size_t kInitialShardSlots = 256;   // Power of two.
constexpr uint64_t kDuplicate = ~0ULL;       // fresh_marks_ sentinel.

// LEB128 varints for the delta key records (DESIGN.md §9.1). Records are
// process-local (arena or spill file), so no cross-host format concerns.
void PutVarint(std::vector<uint8_t>* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

uint64_t GetVarint(const uint8_t** p) {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    const uint8_t b = *(*p)++;
    v |= static_cast<uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}
}  // namespace

// ---------------------------------------------------------------------------
// StateStore (serial).
// ---------------------------------------------------------------------------

StateStore::StateStore(int key_words, int aux_words)
    : key_words_(key_words), aux_words_(aux_words) {
  slots_.assign(kInitialSlots, kNoId);
  slot_mask_ = kInitialSlots - 1;
}

void StateStore::Grow() {
  std::vector<uint32_t> next(slots_.size() * 2, kNoId);
  const size_t mask = next.size() - 1;
  for (uint32_t id = 0; id < parents_.size(); ++id) {
    size_t pos = HashWords(KeyRaw(id), key_words_) & mask;
    while (next[pos] != kNoId) pos = (pos + 1) & mask;
    next[pos] = id;
  }
  slots_ = std::move(next);
  slot_mask_ = mask;
}

StateStore::InternResult StateStore::Intern(const uint64_t* key,
                                            uint32_t parent,
                                            GlobalNode move) {
  // Keep the load factor below 1/2.
  if ((parents_.size() + 1) * 2 > slots_.size()) Grow();
  size_t pos = HashWords(key, key_words_) & slot_mask_;
  while (true) {
    uint32_t id = slots_[pos];
    if (id == kNoId) break;
    if (std::memcmp(KeyRaw(id), key, key_words_ * sizeof(uint64_t)) == 0) {
      return InternResult{id, false};
    }
    pos = (pos + 1) & slot_mask_;
  }
  uint32_t id = Append(key, parent, move);
  slots_[pos] = id;
  return InternResult{id, true};
}

StateStore::InternResult StateStore::InternCanonical(uint64_t* key,
                                                     uint64_t* aux,
                                                     uint32_t parent,
                                                     GlobalNode move) {
  if (canonicalizer_ != nullptr) canonicalizer_->Canonicalize(key, aux);
  InternResult r = Intern(key, parent, move);
  if (r.inserted && aux_words_ > 0) {
    std::memcpy(aux_.data() + static_cast<size_t>(r.id) * aux_words_, aux,
                aux_words_ * sizeof(uint64_t));
  }
  return r;
}

uint32_t StateStore::Append(const uint64_t* key, uint32_t parent,
                            GlobalNode move) {
  uint32_t id = static_cast<uint32_t>(parents_.size());
  keys_.insert(keys_.end(), key, key + key_words_);
  aux_.resize(aux_.size() + aux_words_, 0);
  parents_.push_back(ParentLink{parent, move.txn, move.node});
  generation_.fetch_add(1, std::memory_order_relaxed);
  return id;
}

uint32_t StateStore::Find(const uint64_t* key) const {
  size_t pos = HashWords(key, key_words_) & slot_mask_;
  while (true) {
    uint32_t id = slots_[pos];
    if (id == kNoId) return kNoId;
    if (std::memcmp(KeyRaw(id), key, key_words_ * sizeof(uint64_t)) == 0) {
      return id;
    }
    pos = (pos + 1) & slot_mask_;
  }
}

std::vector<GlobalNode> StateStore::PathFromRoot(uint32_t id) const {
  std::vector<GlobalNode> path;
  for (uint32_t cur = id; parents_[cur].parent != kNoId;
       cur = parents_[cur].parent) {
    path.push_back(MoveOf(cur));
  }
  std::reverse(path.begin(), path.end());
  return path;
}

StoreMemoryStats StateStore::MemoryStats() const {
  StoreMemoryStats m;
  m.arena_bytes = keys_.capacity() * sizeof(uint64_t) +
                  aux_.capacity() * sizeof(uint64_t);
  m.probe_bytes = slots_.capacity() * sizeof(uint32_t);
  m.link_bytes = parents_.capacity() * sizeof(ParentLink);
  return m;
}

size_t StateStore::MemoryBytes() const { return MemoryStats().total(); }

// ---------------------------------------------------------------------------
// ShardedStateStore.
// ---------------------------------------------------------------------------

ShardedStateStore::ShardedStateStore(int key_words, int aux_words,
                                     int num_shards,
                                     const StoreOptions& options)
    : key_words_(key_words), aux_words_(aux_words), options_(options) {
  size_t shards = 1;
  shard_bits_ = 0;
  while (shards < static_cast<size_t>(num_shards > 1 ? num_shards : 1)) {
    shards <<= 1;
    ++shard_bits_;
  }
  if (shard_bits_ == 0) shard_bits_ = 1;  // Keep the >> (64-bits) defined.
  shards_ = std::vector<Shard>(shards);
  for (Shard& shard : shards_) {
    shard.slots.assign(kInitialShardSlots, kNoId);
    shard.slot_mask = kInitialShardSlots - 1;
  }
}

uint32_t ShardedStateStore::InternRoot(const uint64_t* key) {
  const uint64_t hash = HashWords(key, key_words_);
  const uint32_t si = ShardOf(hash);
  Shard& shard = shards_[si];
  uint32_t local;
  if (options_.encoding == StoreOptions::KeyEncoding::kDelta) {
    local = static_cast<uint32_t>(shard.parents.size());
    shard.aux.resize(shard.aux.size() + aux_words_, 0);
    shard.parents.push_back(ParentLink{kNoId, -1, -1});
    shard.hashes.push_back(hash);
    shard.rec_off.push_back(shard.recs.size());
    shard.recs.push_back(0);  // Varint 0: full record follows.
    const uint8_t* raw = reinterpret_cast<const uint8_t*>(key);
    shard.recs.insert(shard.recs.end(), raw,
                      raw + static_cast<size_t>(key_words_) * 8);
  } else {
    // Root aux starts zeroed; the caller fills it via MutableAuxOf.
    std::vector<uint64_t> key_aux(
        static_cast<size_t>(key_words_) + aux_words_, 0);
    std::memcpy(key_aux.data(), key, key_words_ * sizeof(uint64_t));
    Staging::Pending p{hash, 0, kNoId, -1, -1};
    local = AppendToShard(&shard, key_aux.data(), p);
    if (options_.encoding == StoreOptions::KeyEncoding::kCompact) {
      shard.hashes.push_back(hash);
    }
  }
  size_t pos = hash & shard.slot_mask;
  while (shard.slots[pos] != kNoId) pos = (pos + 1) & shard.slot_mask;
  shard.slots[pos] = local;
  const uint32_t id = static_cast<uint32_t>(index_.size());
  index_.push_back(Pack(si, local));
  generation_.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void ShardedStateStore::ResetStaging(Staging* staging) const {
  staging->words_.resize(shards_.size());
  staging->pending_.resize(shards_.size());
  staging->recs_.resize(shards_.size());
  staging->rec_lens_.resize(shards_.size());
  // clear() keeps each lane's capacity from earlier levels. No eager
  // reserve: there are O(chunks x shards) lanes and most stay empty, so
  // a speculative floor would dwarf the states it stages.
  for (size_t s = 0; s < shards_.size(); ++s) {
    staging->words_[s].clear();
    staging->pending_[s].clear();
    staging->recs_[s].clear();
    staging->rec_lens_[s].clear();
  }
  staging->count_ = 0;
}

void ShardedStateStore::EncodeRecord(Staging* staging, uint32_t shard,
                                     const uint64_t* key, uint32_t parent,
                                     const uint64_t* parent_key) const {
  std::vector<uint8_t>& out = staging->recs_[shard];
  const size_t start = out.size();
  const size_t full_size = 1 + static_cast<size_t>(key_words_) * 8;
  bool full = parent_key == nullptr || parent == kNoId;
  if (!full) {
    std::vector<uint8_t>& scratch = staging->rec_scratch_;
    scratch.clear();
    PutVarint(&scratch, static_cast<uint64_t>(parent) + 1);
    uint64_t changed = 0;
    for (int w = 0; w < key_words_; ++w) changed += key[w] != parent_key[w];
    PutVarint(&scratch, changed);
    for (int w = 0; w < key_words_; ++w) {
      if (key[w] != parent_key[w]) {
        PutVarint(&scratch, static_cast<uint64_t>(w));
        PutVarint(&scratch, key[w] ^ parent_key[w]);
      }
    }
    if (scratch.size() >= full_size) {
      full = true;  // Delta would not save anything; store the raw key.
    } else {
      out.insert(out.end(), scratch.begin(), scratch.end());
    }
  }
  if (full) {
    out.push_back(0);
    const uint8_t* raw = reinterpret_cast<const uint8_t*>(key);
    out.insert(out.end(), raw, raw + static_cast<size_t>(key_words_) * 8);
  }
  staging->rec_lens_[shard].push_back(static_cast<uint32_t>(out.size() -
                                                            start));
}

void ShardedStateStore::Stage(Staging* staging, const uint64_t* key,
                              const uint64_t* aux, uint32_t parent,
                              GlobalNode move,
                              const uint64_t* parent_key) const {
  const uint64_t hash = HashWords(key, key_words_);
  const uint32_t shard = ShardOf(hash);
  std::vector<uint64_t>& words = staging->words_[shard];
  words.insert(words.end(), key, key + key_words_);
  words.insert(words.end(), aux, aux + aux_words_);
  staging->pending_[shard].push_back(Staging::Pending{
      hash, staging->count_++, parent, move.txn, move.node});
  if (options_.encoding == StoreOptions::KeyEncoding::kDelta) {
    EncodeRecord(staging, shard, key, parent, parent_key);
  }
}

void ShardedStateStore::StageCanonical(Staging* staging, uint64_t* key,
                                       uint64_t* aux, uint32_t parent,
                                       GlobalNode move,
                                       const uint64_t* parent_key) const {
  if (canonicalizer_ != nullptr) canonicalizer_->Canonicalize(key, aux);
  Stage(staging, key, aux, parent, move, parent_key);
}

uint32_t ShardedStateStore::AppendToShard(Shard* shard,
                                          const uint64_t* key_aux,
                                          const Staging::Pending& p) {
  const uint32_t local = static_cast<uint32_t>(shard->parents.size());
  shard->keys.insert(shard->keys.end(), key_aux, key_aux + key_words_);
  shard->aux.insert(shard->aux.end(), key_aux + key_words_,
                    key_aux + key_words_ + aux_words_);
  shard->parents.push_back(ParentLink{p.parent, p.move_txn, p.move_node});
  return local;
}

uint32_t ShardedStateStore::AppendDeltaToShard(Shard* shard,
                                               const PendingAppend& a) {
  const uint32_t local = static_cast<uint32_t>(shard->parents.size());
  shard->aux.insert(shard->aux.end(), a.key_aux + key_words_,
                    a.key_aux + key_words_ + aux_words_);
  shard->parents.push_back(ParentLink{a.parent, a.move_txn, a.move_node});
  shard->rec_off.push_back(shard->recs.size());
  shard->recs.insert(shard->recs.end(), a.rec, a.rec + a.rec_len);
  return local;
}

void ShardedStateStore::GrowShard(Shard* shard) {
  std::vector<uint32_t> next(shard->slots.size() * 2, kNoId);
  const size_t mask = next.size() - 1;
  for (uint32_t local = 0; local < shard->parents.size(); ++local) {
    const uint64_t* key =
        shard->keys.data() + static_cast<size_t>(local) * key_words_;
    size_t pos = HashWords(key, key_words_) & mask;
    while (next[pos] != kNoId) pos = (pos + 1) & mask;
    next[pos] = local;
  }
  shard->slots = std::move(next);
  shard->slot_mask = mask;
}

void ShardedStateStore::GrowShardByHash(Shard* shard) {
  std::vector<uint32_t> next(shard->slots.size() * 2, kNoId);
  const size_t mask = next.size() - 1;
  for (uint32_t local = 0; local < shard->hashes.size(); ++local) {
    size_t pos = shard->hashes[local] & mask;
    while (next[pos] != kNoId) pos = (pos + 1) & mask;
    next[pos] = local;
  }
  shard->slots = std::move(next);
  shard->slot_mask = mask;
}

void ShardedStateStore::KeyDecodeCache::EnsureShape(int key_words) {
  if (key_words_ == key_words) return;
  key_words_ = key_words;
  ids_.assign(kSlots, kNoId);
  words_.assign(kSlots * static_cast<size_t>(key_words), 0);
  scratch_.assign(static_cast<size_t>(key_words), 0);
  compare_.assign(static_cast<size_t>(key_words), 0);
}

const uint64_t* ShardedStateStore::ReconstructKey(
    uint32_t id, KeyDecodeCache* cache) const {
  const size_t mask = KeyDecodeCache::kSlots - 1;
  const size_t kw = static_cast<size_t>(key_words_);
  std::vector<uint32_t>& chain = cache->chain_;
  chain.clear();
  // Walk the parent-record chain until a cached key or a full record.
  uint32_t cur = id;
  const uint64_t* base = nullptr;
  while (true) {
    const size_t slot = cur & mask;
    if (cache->ids_[slot] == cur) {
      base = cache->words_.data() + slot * kw;
      break;
    }
    const Slot sl = Unpack(index_[cur]);
    const Shard& shard = shards_[sl.shard];
    const uint8_t* p = shard.recs.data() + shard.rec_off[sl.local];
    const uint64_t head = GetVarint(&p);
    if (head == 0) {
      uint64_t* dst = cache->words_.data() + slot * kw;
      std::memcpy(dst, p, kw * 8);
      cache->ids_[slot] = cur;
      base = dst;
      break;
    }
    chain.push_back(cur);
    cur = static_cast<uint32_t>(head - 1);
  }
  if (chain.empty()) return base;
  // Unwind: apply xor deltas ancestor-first, caching every intermediate.
  // chain[0] == id is written last, so its slot is authoritative on exit.
  uint64_t* scratch = cache->scratch_.data();
  std::memcpy(scratch, base, kw * 8);
  for (size_t k = chain.size(); k-- > 0;) {
    const uint32_t node = chain[k];
    const Slot sl = Unpack(index_[node]);
    const Shard& shard = shards_[sl.shard];
    const uint8_t* p = shard.recs.data() + shard.rec_off[sl.local];
    GetVarint(&p);  // parent+1, already followed on the way down.
    const uint64_t changed = GetVarint(&p);
    for (uint64_t i = 0; i < changed; ++i) {
      const uint64_t w = GetVarint(&p);
      scratch[w] ^= GetVarint(&p);
    }
    const size_t slot = node & mask;
    cache->ids_[slot] = node;
    std::memcpy(cache->words_.data() + slot * kw, scratch, kw * 8);
  }
  return cache->words_.data() + (id & mask) * kw;
}

bool ShardedStateStore::CommittedKeyEquals(uint32_t shard_idx,
                                           uint32_t local,
                                           const uint64_t* key,
                                           KeyDecodeCache* cache) const {
  const size_t kw = static_cast<size_t>(key_words_);
  const Shard& shard = shards_[shard_idx];
  const uint8_t* p = shard.recs.data() + shard.rec_off[local];
  const uint64_t head = GetVarint(&p);
  if (head == 0) return std::memcmp(p, key, kw * 8) == 0;
  const uint64_t* parent = ReconstructKey(
      static_cast<uint32_t>(head - 1), cache);
  uint64_t* cmp = cache->compare_.data();
  std::memcpy(cmp, parent, kw * 8);
  const uint64_t changed = GetVarint(&p);
  for (uint64_t i = 0; i < changed; ++i) {
    const uint64_t w = GetVarint(&p);
    cmp[w] ^= GetVarint(&p);
  }
  return std::memcmp(cmp, key, kw * 8) == 0;
}

size_t ShardedStateStore::CommitStaged(std::vector<Staging>* chunks,
                                       size_t num_chunks, ThreadPool* pool,
                                       bool dedupe) {
  if (options_.encoding == StoreOptions::KeyEncoding::kDelta) {
    return CommitStagedDelta(chunks, num_chunks, pool, dedupe);
  }
  const bool compact =
      options_.encoding == StoreOptions::KeyEncoding::kCompact;
  // The retire boundary is the shard occupancy at the *first* commit
  // since the last RetireExpanded: a spilled level commits in several
  // batches, all of which belong to the same (unexpanded) frontier.
  if (compact && !retire_base_valid_) {
    retire_base_.resize(shards_.size());
    for (size_t s = 0; s < shards_.size(); ++s) {
      retire_base_[s] = static_cast<uint32_t>(shards_[s].parents.size());
    }
    retire_base_valid_ = true;
  }
  // Staging sequence of chunk c's ordinal o is chunk_base[c] + o: exactly
  // the order a serial loop over chunks (= parents in id order) would
  // have called Intern.
  size_t total = 0;
  std::vector<size_t> chunk_base(num_chunks);
  for (size_t c = 0; c < num_chunks; ++c) {
    chunk_base[c] = total;
    total += (*chunks)[c].count_;
  }
  if (total == 0) return 0;
  fresh_marks_.assign(total, kDuplicate);

  // Phase 1 (parallel over shards): per-shard dedup in staging order.
  // Shard s touches only its own arenas/table and disjoint fresh_marks_
  // entries, so shards are embarrassingly parallel.
  auto commit_shard = [&](size_t shard_begin, size_t shard_end,
                          int /*worker*/) {
    const size_t kTupleWords = static_cast<size_t>(key_words_) + aux_words_;
    for (size_t s = shard_begin; s < shard_end; ++s) {
      Shard& shard = shards_[s];
      for (size_t c = 0; c < num_chunks; ++c) {
        const Staging& staging = (*chunks)[c];
        const std::vector<uint64_t>& words = staging.words_[s];
        const std::vector<Staging::Pending>& pending = staging.pending_[s];
        for (size_t t = 0; t < pending.size(); ++t) {
          const Staging::Pending& p = pending[t];
          const uint64_t* key_aux = words.data() + t * kTupleWords;
          if (dedupe) {
            if ((shard.parents.size() + 1) * 2 > shard.slots.size()) {
              if (compact) {
                GrowShardByHash(&shard);
              } else {
                GrowShard(&shard);
              }
            }
            size_t pos = p.hash & shard.slot_mask;
            bool hit = false;
            while (true) {
              uint32_t local = shard.slots[pos];
              if (local == kNoId) break;
              if (compact) {
                // Fingerprint identity: hash-equal is a (possibly
                // colliding) duplicate.
                if (shard.hashes[local] == p.hash) {
                  hit = true;
                  break;
                }
              } else {
                const uint64_t* existing =
                    shard.keys.data() +
                    static_cast<size_t>(local - shard.frontier_base) *
                        key_words_;
                if (std::memcmp(existing, key_aux,
                                key_words_ * sizeof(uint64_t)) == 0) {
                  hit = true;
                  break;
                }
              }
              pos = (pos + 1) & shard.slot_mask;
            }
            if (hit) continue;
            const uint32_t local = AppendToShard(&shard, key_aux, p);
            if (compact) shard.hashes.push_back(p.hash);
            shard.slots[pos] = local;
            fresh_marks_[chunk_base[c] + p.ordinal] =
                Pack(static_cast<uint32_t>(s), local);
          } else {
            const uint32_t local = AppendToShard(&shard, key_aux, p);
            if (compact) shard.hashes.push_back(p.hash);
            fresh_marks_[chunk_base[c] + p.ordinal] =
                Pack(static_cast<uint32_t>(s), local);
          }
        }
      }
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(shards_.size(), 1, commit_shard);
  } else {
    commit_shard(0, shards_.size(), 0);
  }

  // Phase 2 (serial rank): allocate dense global ids to the fresh states
  // in staging order — the step that pins down the serial-identical id
  // sequence. One word read per staged tuple.
  const size_t before = index_.size();
  for (size_t seq = 0; seq < total; ++seq) {
    if (fresh_marks_[seq] != kDuplicate) index_.push_back(fresh_marks_[seq]);
  }
  generation_.fetch_add(1, std::memory_order_relaxed);
  return index_.size() - before;
}

size_t ShardedStateStore::CommitStagedDelta(std::vector<Staging>* chunks,
                                            size_t num_chunks,
                                            ThreadPool* pool, bool dedupe) {
  size_t total = 0;
  std::vector<size_t> chunk_base(num_chunks);
  for (size_t c = 0; c < num_chunks; ++c) {
    chunk_base[c] = total;
    total += (*chunks)[c].count_;
  }
  if (total == 0) return 0;
  fresh_marks_.assign(total, kDuplicate);
  const int workers = pool != nullptr ? pool->threads() : 1;
  if (static_cast<int>(commit_caches_.size()) < workers) {
    commit_caches_.resize(workers);
  }
  if (append_scratch_.size() < shards_.size()) {
    append_scratch_.resize(shards_.size());
  }

  const size_t kTupleWords = static_cast<size_t>(key_words_) + aux_words_;
  // Pass 1 (parallel over shards): probe + provisional slot/hash
  // insertion, appending *nothing* to any record arena. Dedup against an
  // existing state reconstructs its key through the parent-record chain,
  // which reads other shards' committed recs/rec_off/index_ — all stable
  // here precisely because appends are deferred to pass 2 (behind the
  // ParallelFor barrier). Deltas themselves were encoded at stage time.
  auto probe_shard = [&](size_t shard_begin, size_t shard_end, int worker) {
    KeyDecodeCache& cache = commit_caches_[worker];
    cache.EnsureShape(key_words_);
    for (size_t s = shard_begin; s < shard_end; ++s) {
      Shard& shard = shards_[s];
      std::vector<PendingAppend>& appends = append_scratch_[s];
      appends.clear();
      const uint32_t committed = static_cast<uint32_t>(shard.parents.size());
      for (size_t c = 0; c < num_chunks; ++c) {
        const Staging& staging = (*chunks)[c];
        const std::vector<uint64_t>& words = staging.words_[s];
        const std::vector<Staging::Pending>& pending = staging.pending_[s];
        const std::vector<uint32_t>& lens = staging.rec_lens_[s];
        const uint8_t* rec = staging.recs_[s].data();
        for (size_t t = 0; t < pending.size(); ++t) {
          const Staging::Pending& p = pending[t];
          const uint64_t* key_aux = words.data() + t * kTupleWords;
          const uint32_t rec_len = lens[t];
          if (!dedupe) {
            shard.hashes.push_back(p.hash);
            appends.push_back(PendingAppend{key_aux, rec, rec_len, p.parent,
                                            p.move_txn, p.move_node});
            fresh_marks_[chunk_base[c] + p.ordinal] = Pack(
                static_cast<uint32_t>(s),
                committed + static_cast<uint32_t>(appends.size()) - 1);
            rec += rec_len;
            continue;
          }
          if ((shard.hashes.size() + 1) * 2 > shard.slots.size()) {
            GrowShardByHash(&shard);
          }
          size_t pos = p.hash & shard.slot_mask;
          bool hit = false;
          while (true) {
            const uint32_t local = shard.slots[pos];
            if (local == kNoId) break;
            if (shard.hashes[local] == p.hash) {
              bool equal;
              if (local < committed) {
                equal = CommittedKeyEquals(static_cast<uint32_t>(s), local,
                                           key_aux, &cache);
              } else {
                // Earlier fresh tuple of this batch: its full staged key
                // is at hand in the probe scratch.
                equal = std::memcmp(appends[local - committed].key_aux,
                                    key_aux,
                                    key_words_ * sizeof(uint64_t)) == 0;
              }
              if (equal) {
                hit = true;
                break;
              }
            }
            pos = (pos + 1) & shard.slot_mask;
          }
          if (!hit) {
            const uint32_t local =
                static_cast<uint32_t>(shard.hashes.size());
            shard.slots[pos] = local;
            shard.hashes.push_back(p.hash);
            appends.push_back(PendingAppend{key_aux, rec, rec_len, p.parent,
                                            p.move_txn, p.move_node});
            fresh_marks_[chunk_base[c] + p.ordinal] =
                Pack(static_cast<uint32_t>(s), local);
          }
          rec += rec_len;
        }
      }
    }
  };
  // Pass 2 (parallel over shards): materialize the provisional
  // insertions — aux words, parent links, record bytes — in the same
  // order pass 1 discovered them, so local ids line up.
  auto append_shard = [&](size_t shard_begin, size_t shard_end,
                          int /*worker*/) {
    for (size_t s = shard_begin; s < shard_end; ++s) {
      Shard& shard = shards_[s];
      for (const PendingAppend& a : append_scratch_[s]) {
        AppendDeltaToShard(&shard, a);
      }
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(shards_.size(), 1, probe_shard);
    pool->ParallelFor(shards_.size(), 1, append_shard);
  } else {
    probe_shard(0, shards_.size(), 0);
    append_shard(0, shards_.size(), 0);
  }

  // Phase 3 (serial rank), identical to the plain commit.
  const size_t before = index_.size();
  for (size_t seq = 0; seq < total; ++seq) {
    if (fresh_marks_[seq] != kDuplicate) index_.push_back(fresh_marks_[seq]);
  }
  generation_.fetch_add(1, std::memory_order_relaxed);
  return index_.size() - before;
}

void ShardedStateStore::RetireExpanded() {
  if (options_.encoding != StoreOptions::KeyEncoding::kCompact ||
      !retire_base_valid_) {
    return;
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = shards_[s];
    const uint32_t keep = retire_base_[s];
    const size_t drop = keep - shard.frontier_base;
    if (drop == 0) continue;
    shard.keys.erase(shard.keys.begin(),
                     shard.keys.begin() + drop * key_words_);
    shard.aux.erase(shard.aux.begin(), shard.aux.begin() + drop * aux_words_);
    shard.frontier_base = keep;
  }
  retire_base_valid_ = false;
  generation_.fetch_add(1, std::memory_order_relaxed);
}

bool ShardedStateStore::WriteStaging(std::FILE* file,
                                     const Staging& staging) const {
  auto put = [&](const void* data, size_t bytes) {
    return bytes == 0 || std::fwrite(data, 1, bytes, file) == bytes;
  };
  const uint64_t count = staging.count_;
  if (!put(&count, sizeof(count))) return false;
  const bool delta = options_.encoding == StoreOptions::KeyEncoding::kDelta;
  for (size_t s = 0; s < shards_.size(); ++s) {
    const uint64_t sizes[3] = {
        staging.words_[s].size(), staging.pending_[s].size(),
        delta ? static_cast<uint64_t>(staging.recs_[s].size()) : 0};
    if (!put(sizes, sizeof(sizes))) return false;
    if (!put(staging.words_[s].data(), sizes[0] * sizeof(uint64_t))) {
      return false;
    }
    if (!put(staging.pending_[s].data(),
             sizes[1] * sizeof(Staging::Pending))) {
      return false;
    }
    if (delta) {
      if (!put(staging.recs_[s].data(), sizes[2])) return false;
      if (!put(staging.rec_lens_[s].data(), sizes[1] * sizeof(uint32_t))) {
        return false;
      }
    }
  }
  return true;
}

bool ShardedStateStore::ReadStaging(std::FILE* file, Staging* staging) const {
  auto get = [&](void* data, size_t bytes) {
    return bytes == 0 || std::fread(data, 1, bytes, file) == bytes;
  };
  ResetStaging(staging);
  uint64_t count = 0;
  if (!get(&count, sizeof(count))) return false;
  staging->count_ = static_cast<uint32_t>(count);
  const bool delta = options_.encoding == StoreOptions::KeyEncoding::kDelta;
  for (size_t s = 0; s < shards_.size(); ++s) {
    uint64_t sizes[3] = {0, 0, 0};
    if (!get(sizes, sizeof(sizes))) return false;
    staging->words_[s].resize(sizes[0]);
    staging->pending_[s].resize(sizes[1]);
    if (!get(staging->words_[s].data(), sizes[0] * sizeof(uint64_t))) {
      return false;
    }
    if (!get(staging->pending_[s].data(),
             sizes[1] * sizeof(Staging::Pending))) {
      return false;
    }
    if (delta) {
      staging->recs_[s].resize(sizes[2]);
      staging->rec_lens_[s].resize(sizes[1]);
      if (!get(staging->recs_[s].data(), sizes[2])) return false;
      if (!get(staging->rec_lens_[s].data(),
               sizes[1] * sizeof(uint32_t))) {
        return false;
      }
    }
  }
  return true;
}

uint64_t ShardedStateStore::StagingBytes(const Staging& staging) const {
  uint64_t bytes = 0;
  for (size_t s = 0; s < staging.words_.size(); ++s) {
    bytes += staging.words_[s].size() * sizeof(uint64_t) +
             staging.pending_[s].size() * sizeof(Staging::Pending) +
             staging.recs_[s].size() +
             staging.rec_lens_[s].size() * sizeof(uint32_t);
  }
  return bytes;
}

std::vector<GlobalNode> ShardedStateStore::PathFromRoot(uint32_t id) const {
  std::vector<GlobalNode> path;
  uint32_t cur = id;
  while (true) {
    const Slot s = Unpack(index_[cur]);
    const ParentLink& link = shards_[s.shard].parents[s.local];
    if (link.parent == kNoId) break;
    path.push_back(GlobalNode{link.move_txn, link.move_node});
    cur = link.parent;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

StoreMemoryStats ShardedStateStore::MemoryStats() const {
  StoreMemoryStats m;
  m.link_bytes = index_.capacity() * sizeof(uint64_t) +
                 fresh_marks_.capacity() * sizeof(uint64_t);
  for (const Shard& shard : shards_) {
    m.arena_bytes += shard.keys.capacity() * sizeof(uint64_t) +
                     shard.aux.capacity() * sizeof(uint64_t) +
                     shard.hashes.capacity() * sizeof(uint64_t) +
                     shard.rec_off.capacity() * sizeof(uint64_t) +
                     shard.recs.capacity();
    m.probe_bytes += shard.slots.capacity() * sizeof(uint32_t);
    m.link_bytes += shard.parents.capacity() * sizeof(ParentLink);
  }
  return m;
}

size_t ShardedStateStore::MemoryBytes() const {
  return MemoryStats().total();
}

}  // namespace wydb
