#include "core/state_store.h"

#include <algorithm>
#include <cstring>

#include "common/hash_util.h"
#include "common/thread_pool.h"

namespace wydb {

namespace {
constexpr size_t kInitialSlots = 1024;       // Power of two.
constexpr size_t kInitialShardSlots = 256;   // Power of two.
constexpr uint64_t kDuplicate = ~0ULL;       // fresh_marks_ sentinel.
}  // namespace

// ---------------------------------------------------------------------------
// StateStore (serial).
// ---------------------------------------------------------------------------

StateStore::StateStore(int key_words, int aux_words)
    : key_words_(key_words), aux_words_(aux_words) {
  slots_.assign(kInitialSlots, kNoId);
  slot_mask_ = kInitialSlots - 1;
}

void StateStore::Grow() {
  std::vector<uint32_t> next(slots_.size() * 2, kNoId);
  const size_t mask = next.size() - 1;
  for (uint32_t id = 0; id < parents_.size(); ++id) {
    size_t pos = HashWords(KeyOf(id), key_words_) & mask;
    while (next[pos] != kNoId) pos = (pos + 1) & mask;
    next[pos] = id;
  }
  slots_ = std::move(next);
  slot_mask_ = mask;
}

StateStore::InternResult StateStore::Intern(const uint64_t* key,
                                            uint32_t parent,
                                            GlobalNode move) {
  // Keep the load factor below 1/2.
  if ((parents_.size() + 1) * 2 > slots_.size()) Grow();
  size_t pos = HashWords(key, key_words_) & slot_mask_;
  while (true) {
    uint32_t id = slots_[pos];
    if (id == kNoId) break;
    if (std::memcmp(KeyOf(id), key, key_words_ * sizeof(uint64_t)) == 0) {
      return InternResult{id, false};
    }
    pos = (pos + 1) & slot_mask_;
  }
  uint32_t id = Append(key, parent, move);
  slots_[pos] = id;
  return InternResult{id, true};
}

StateStore::InternResult StateStore::InternCanonical(uint64_t* key,
                                                     uint64_t* aux,
                                                     uint32_t parent,
                                                     GlobalNode move) {
  if (canonicalizer_ != nullptr) canonicalizer_->Canonicalize(key, aux);
  InternResult r = Intern(key, parent, move);
  if (r.inserted && aux_words_ > 0) {
    std::memcpy(MutableAuxOf(r.id), aux, aux_words_ * sizeof(uint64_t));
  }
  return r;
}

uint32_t StateStore::Append(const uint64_t* key, uint32_t parent,
                            GlobalNode move) {
  uint32_t id = static_cast<uint32_t>(parents_.size());
  keys_.insert(keys_.end(), key, key + key_words_);
  aux_.resize(aux_.size() + aux_words_, 0);
  parents_.push_back(ParentLink{parent, move.txn, move.node});
  return id;
}

uint32_t StateStore::Find(const uint64_t* key) const {
  size_t pos = HashWords(key, key_words_) & slot_mask_;
  while (true) {
    uint32_t id = slots_[pos];
    if (id == kNoId) return kNoId;
    if (std::memcmp(KeyOf(id), key, key_words_ * sizeof(uint64_t)) == 0) {
      return id;
    }
    pos = (pos + 1) & slot_mask_;
  }
}

std::vector<GlobalNode> StateStore::PathFromRoot(uint32_t id) const {
  std::vector<GlobalNode> path;
  for (uint32_t cur = id; parents_[cur].parent != kNoId;
       cur = parents_[cur].parent) {
    path.push_back(MoveOf(cur));
  }
  std::reverse(path.begin(), path.end());
  return path;
}

size_t StateStore::MemoryBytes() const {
  return keys_.capacity() * sizeof(uint64_t) +
         aux_.capacity() * sizeof(uint64_t) +
         parents_.capacity() * sizeof(ParentLink) +
         slots_.capacity() * sizeof(uint32_t);
}

// ---------------------------------------------------------------------------
// ShardedStateStore.
// ---------------------------------------------------------------------------

ShardedStateStore::ShardedStateStore(int key_words, int aux_words,
                                     int num_shards)
    : key_words_(key_words), aux_words_(aux_words) {
  size_t shards = 1;
  shard_bits_ = 0;
  while (shards < static_cast<size_t>(num_shards > 1 ? num_shards : 1)) {
    shards <<= 1;
    ++shard_bits_;
  }
  if (shard_bits_ == 0) shard_bits_ = 1;  // Keep the >> (64-bits) defined.
  shards_ = std::vector<Shard>(shards);
  for (Shard& shard : shards_) {
    shard.slots.assign(kInitialShardSlots, kNoId);
    shard.slot_mask = kInitialShardSlots - 1;
  }
}

uint32_t ShardedStateStore::InternRoot(const uint64_t* key) {
  const uint64_t hash = HashWords(key, key_words_);
  Shard& shard = shards_[ShardOf(hash)];
  Staging::Pending p{hash, 0, kNoId, -1, -1};
  // Root aux starts zeroed; the caller fills it via MutableAuxOf.
  std::vector<uint64_t> key_aux(static_cast<size_t>(key_words_) + aux_words_,
                                0);
  std::memcpy(key_aux.data(), key, key_words_ * sizeof(uint64_t));
  const uint32_t local = AppendToShard(&shard, key_aux.data(), p);
  size_t pos = hash & shard.slot_mask;
  while (shard.slots[pos] != kNoId) pos = (pos + 1) & shard.slot_mask;
  shard.slots[pos] = local;
  const uint32_t id = static_cast<uint32_t>(index_.size());
  index_.push_back(Pack(ShardOf(hash), local));
  return id;
}

void ShardedStateStore::ResetStaging(Staging* staging) const {
  staging->words_.resize(shards_.size());
  staging->pending_.resize(shards_.size());
  // clear() keeps each lane's capacity from earlier levels. No eager
  // reserve: there are O(chunks x shards) lanes and most stay empty, so
  // a speculative floor would dwarf the states it stages.
  for (size_t s = 0; s < shards_.size(); ++s) {
    staging->words_[s].clear();
    staging->pending_[s].clear();
  }
  staging->count_ = 0;
}

void ShardedStateStore::Stage(Staging* staging, const uint64_t* key,
                              const uint64_t* aux, uint32_t parent,
                              GlobalNode move) const {
  const uint64_t hash = HashWords(key, key_words_);
  const uint32_t shard = ShardOf(hash);
  std::vector<uint64_t>& words = staging->words_[shard];
  words.insert(words.end(), key, key + key_words_);
  words.insert(words.end(), aux, aux + aux_words_);
  staging->pending_[shard].push_back(Staging::Pending{
      hash, staging->count_++, parent, move.txn, move.node});
}

void ShardedStateStore::StageCanonical(Staging* staging, uint64_t* key,
                                       uint64_t* aux, uint32_t parent,
                                       GlobalNode move) const {
  if (canonicalizer_ != nullptr) canonicalizer_->Canonicalize(key, aux);
  Stage(staging, key, aux, parent, move);
}

uint32_t ShardedStateStore::AppendToShard(Shard* shard,
                                          const uint64_t* key_aux,
                                          const Staging::Pending& p) {
  const uint32_t local = static_cast<uint32_t>(shard->parents.size());
  shard->keys.insert(shard->keys.end(), key_aux, key_aux + key_words_);
  shard->aux.insert(shard->aux.end(), key_aux + key_words_,
                    key_aux + key_words_ + aux_words_);
  shard->parents.push_back(ParentLink{p.parent, p.move_txn, p.move_node});
  return local;
}

void ShardedStateStore::GrowShard(Shard* shard) {
  std::vector<uint32_t> next(shard->slots.size() * 2, kNoId);
  const size_t mask = next.size() - 1;
  for (uint32_t local = 0; local < shard->parents.size(); ++local) {
    const uint64_t* key =
        shard->keys.data() + static_cast<size_t>(local) * key_words_;
    size_t pos = HashWords(key, key_words_) & mask;
    while (next[pos] != kNoId) pos = (pos + 1) & mask;
    next[pos] = local;
  }
  shard->slots = std::move(next);
  shard->slot_mask = mask;
}

size_t ShardedStateStore::CommitStaged(std::vector<Staging>* chunks,
                                       size_t num_chunks, ThreadPool* pool,
                                       bool dedupe) {
  // Staging sequence of chunk c's ordinal o is chunk_base[c] + o: exactly
  // the order a serial loop over chunks (= parents in id order) would
  // have called Intern.
  size_t total = 0;
  std::vector<size_t> chunk_base(num_chunks);
  for (size_t c = 0; c < num_chunks; ++c) {
    chunk_base[c] = total;
    total += (*chunks)[c].count_;
  }
  if (total == 0) return 0;
  fresh_marks_.assign(total, kDuplicate);

  // Phase 1 (parallel over shards): per-shard dedup in staging order.
  // Shard s touches only its own arenas/table and disjoint fresh_marks_
  // entries, so shards are embarrassingly parallel.
  auto commit_shard = [&](size_t shard_begin, size_t shard_end,
                          int /*worker*/) {
    const size_t kTupleWords = static_cast<size_t>(key_words_) + aux_words_;
    for (size_t s = shard_begin; s < shard_end; ++s) {
      Shard& shard = shards_[s];
      for (size_t c = 0; c < num_chunks; ++c) {
        const Staging& staging = (*chunks)[c];
        const std::vector<uint64_t>& words = staging.words_[s];
        const std::vector<Staging::Pending>& pending = staging.pending_[s];
        for (size_t t = 0; t < pending.size(); ++t) {
          const Staging::Pending& p = pending[t];
          const uint64_t* key_aux = words.data() + t * kTupleWords;
          if (dedupe) {
            if ((shard.parents.size() + 1) * 2 > shard.slots.size()) {
              GrowShard(&shard);
            }
            size_t pos = p.hash & shard.slot_mask;
            bool hit = false;
            while (true) {
              uint32_t local = shard.slots[pos];
              if (local == kNoId) break;
              const uint64_t* existing =
                  shard.keys.data() +
                  static_cast<size_t>(local) * key_words_;
              if (std::memcmp(existing, key_aux,
                              key_words_ * sizeof(uint64_t)) == 0) {
                hit = true;
                break;
              }
              pos = (pos + 1) & shard.slot_mask;
            }
            if (hit) continue;
            const uint32_t local = AppendToShard(&shard, key_aux, p);
            shard.slots[pos] = local;
            fresh_marks_[chunk_base[c] + p.ordinal] =
                Pack(static_cast<uint32_t>(s), local);
          } else {
            const uint32_t local = AppendToShard(&shard, key_aux, p);
            fresh_marks_[chunk_base[c] + p.ordinal] =
                Pack(static_cast<uint32_t>(s), local);
          }
        }
      }
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(shards_.size(), 1, commit_shard);
  } else {
    commit_shard(0, shards_.size(), 0);
  }

  // Phase 2 (serial rank): allocate dense global ids to the fresh states
  // in staging order — the step that pins down the serial-identical id
  // sequence. One word read per staged tuple.
  const size_t before = index_.size();
  for (size_t seq = 0; seq < total; ++seq) {
    if (fresh_marks_[seq] != kDuplicate) index_.push_back(fresh_marks_[seq]);
  }
  return index_.size() - before;
}

std::vector<GlobalNode> ShardedStateStore::PathFromRoot(uint32_t id) const {
  std::vector<GlobalNode> path;
  uint32_t cur = id;
  while (true) {
    const Slot s = Unpack(index_[cur]);
    const ParentLink& link = shards_[s.shard].parents[s.local];
    if (link.parent == kNoId) break;
    path.push_back(GlobalNode{link.move_txn, link.move_node});
    cur = link.parent;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

size_t ShardedStateStore::MemoryBytes() const {
  size_t bytes = index_.capacity() * sizeof(uint64_t) +
                 fresh_marks_.capacity() * sizeof(uint64_t);
  for (const Shard& shard : shards_) {
    bytes += shard.keys.capacity() * sizeof(uint64_t) +
             shard.aux.capacity() * sizeof(uint64_t) +
             shard.parents.capacity() * sizeof(ParentLink) +
             shard.slots.capacity() * sizeof(uint32_t);
  }
  return bytes;
}

}  // namespace wydb
