#include "core/state_store.h"

#include <algorithm>
#include <cstring>

namespace wydb {

namespace {
constexpr size_t kInitialSlots = 1024;  // Power of two.
}  // namespace

StateStore::StateStore(int key_words, int aux_words)
    : key_words_(key_words), aux_words_(aux_words) {
  slots_.assign(kInitialSlots, kNoId);
  slot_mask_ = kInitialSlots - 1;
}

uint64_t StateStore::HashKey(const uint64_t* key) const {
  // FNV-1a over words, finished with a mix so that linear probing sees
  // well-spread low bits even for near-identical states.
  uint64_t h = 0xCBF29CE484222325ULL;
  for (int w = 0; w < key_words_; ++w) {
    h ^= key[w];
    h *= 0x100000001B3ULL;
  }
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  return h;
}

void StateStore::Grow() {
  std::vector<uint32_t> next(slots_.size() * 2, kNoId);
  const size_t mask = next.size() - 1;
  for (uint32_t id = 0; id < parents_.size(); ++id) {
    size_t pos = HashKey(KeyOf(id)) & mask;
    while (next[pos] != kNoId) pos = (pos + 1) & mask;
    next[pos] = id;
  }
  slots_ = std::move(next);
  slot_mask_ = mask;
}

StateStore::InternResult StateStore::Intern(const uint64_t* key,
                                            uint32_t parent,
                                            GlobalNode move) {
  // Keep the load factor below 1/2.
  if ((parents_.size() + 1) * 2 > slots_.size()) Grow();
  size_t pos = HashKey(key) & slot_mask_;
  while (true) {
    uint32_t id = slots_[pos];
    if (id == kNoId) break;
    if (std::memcmp(KeyOf(id), key, key_words_ * sizeof(uint64_t)) == 0) {
      return InternResult{id, false};
    }
    pos = (pos + 1) & slot_mask_;
  }
  uint32_t id = Append(key, parent, move);
  slots_[pos] = id;
  return InternResult{id, true};
}

uint32_t StateStore::Append(const uint64_t* key, uint32_t parent,
                            GlobalNode move) {
  uint32_t id = static_cast<uint32_t>(parents_.size());
  keys_.insert(keys_.end(), key, key + key_words_);
  aux_.resize(aux_.size() + aux_words_, 0);
  parents_.push_back(ParentLink{parent, move.txn, move.node});
  return id;
}

uint32_t StateStore::Find(const uint64_t* key) const {
  size_t pos = HashKey(key) & slot_mask_;
  while (true) {
    uint32_t id = slots_[pos];
    if (id == kNoId) return kNoId;
    if (std::memcmp(KeyOf(id), key, key_words_ * sizeof(uint64_t)) == 0) {
      return id;
    }
    pos = (pos + 1) & slot_mask_;
  }
}

std::vector<GlobalNode> StateStore::PathFromRoot(uint32_t id) const {
  std::vector<GlobalNode> path;
  for (uint32_t cur = id; parents_[cur].parent != kNoId;
       cur = parents_[cur].parent) {
    path.push_back(MoveOf(cur));
  }
  std::reverse(path.begin(), path.end());
  return path;
}

size_t StateStore::MemoryBytes() const {
  return keys_.capacity() * sizeof(uint64_t) +
         aux_.capacity() * sizeof(uint64_t) +
         parents_.capacity() * sizeof(ParentLink) +
         slots_.capacity() * sizeof(uint32_t);
}

}  // namespace wydb
