#include "core/transaction.h"

#include <algorithm>

#include "common/string_util.h"

namespace wydb {

Result<Transaction> Transaction::Create(
    const Database* db, std::string name, std::vector<Step> steps,
    std::vector<std::pair<int, int>> arcs) {
  if (db == nullptr) return Status::InvalidArgument("null database");
  Transaction t;
  t.db_ = db;
  t.name_ = std::move(name);
  t.steps_ = std::move(steps);
  const int n = t.num_steps();
  t.graph_.Resize(n);

  for (const auto& [from, to] : arcs) {
    if (from < 0 || from >= n || to < 0 || to >= n || from == to) {
      return Status::InvalidArgument(
          StrFormat("arc (%d,%d) out of range in transaction '%s'", from, to,
                    t.name_.c_str()));
    }
    t.graph_.AddArc(from, to);
  }
  t.graph_.DeduplicateArcs();

  // Exactly one Lx and one Ux per accessed entity.
  for (NodeId v = 0; v < n; ++v) {
    const Step& s = t.steps_[v];
    if (s.entity < 0 || s.entity >= db->num_entities()) {
      return Status::InvalidArgument(
          StrFormat("step %d of '%s' names an unknown entity", v,
                    t.name_.c_str()));
    }
    auto& table = s.kind == StepKind::kLock ? t.lock_node_ : t.unlock_node_;
    if (!table.emplace(s.entity, v).second) {
      return Status::InvalidModel(StrFormat(
          "transaction '%s' has two %s steps on entity '%s'",
          t.name_.c_str(), s.kind == StepKind::kLock ? "Lock" : "Unlock",
          db->EntityName(s.entity).c_str()));
    }
  }
  for (const auto& [e, lv] : t.lock_node_) {
    if (!t.unlock_node_.count(e)) {
      return Status::InvalidModel(
          StrFormat("transaction '%s' locks '%s' but never unlocks it",
                    t.name_.c_str(), db->EntityName(e).c_str()));
    }
  }
  for (const auto& [e, uv] : t.unlock_node_) {
    if (!t.lock_node_.count(e)) {
      return Status::InvalidModel(
          StrFormat("transaction '%s' unlocks '%s' but never locks it",
                    t.name_.c_str(), db->EntityName(e).c_str()));
    }
  }

  // Acyclicity, then closure.
  if (HasCycle(t.graph_)) {
    return Status::InvalidModel(StrFormat(
        "precedence graph of transaction '%s' has a cycle", t.name_.c_str()));
  }
  t.closure_ = TransitiveClosure(t.graph_);

  // Lx precedes Ux.
  for (const auto& [e, lv] : t.lock_node_) {
    NodeId uv = t.unlock_node_.at(e);
    if (!t.closure_.Reaches(lv, uv)) {
      return Status::InvalidModel(StrFormat(
          "in transaction '%s', L%s does not precede U%s", t.name_.c_str(),
          db->EntityName(e).c_str(), db->EntityName(e).c_str()));
    }
  }

  // Same-site steps must be totally ordered.
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (t.SiteOfStep(u) == t.SiteOfStep(v) && !t.Comparable(u, v)) {
        return Status::InvalidModel(StrFormat(
            "steps %s and %s of '%s' are at site '%s' but unordered",
            t.StepLabel(u).c_str(), t.StepLabel(v).c_str(), t.name_.c_str(),
            db->SiteName(t.SiteOfStep(u)).c_str()));
      }
    }
  }

  // Normalize: an Unlock releases whatever mode its Lock took, so give
  // every Ux the mode of the matching Lx. Keeps Step equality (and the
  // structural-symmetry detection built on it) well-defined regardless of
  // what the caller put on the unlock steps.
  for (NodeId v = 0; v < n; ++v) {
    Step& s = t.steps_[v];
    if (s.kind == StepKind::kUnlock) {
      s.mode = t.steps_[t.lock_node_.at(s.entity)].mode;
    }
  }

  t.entities_.reserve(t.lock_node_.size());
  for (const auto& [e, lv] : t.lock_node_) t.entities_.push_back(e);
  std::sort(t.entities_.begin(), t.entities_.end());
  return t;
}

const char* LockModeName(LockMode mode) {
  return mode == LockMode::kShared ? "shared" : "exclusive";
}

LockMode Transaction::LockModeOf(EntityId e) const {
  auto it = lock_node_.find(e);
  return it == lock_node_.end() ? LockMode::kExclusive
                                : steps_[it->second].mode;
}

NodeId Transaction::LockNode(EntityId e) const {
  auto it = lock_node_.find(e);
  return it == lock_node_.end() ? kInvalidNode : it->second;
}

NodeId Transaction::UnlockNode(EntityId e) const {
  auto it = unlock_node_.find(e);
  return it == unlock_node_.end() ? kInvalidNode : it->second;
}

std::vector<EntityId> Transaction::EntitiesLockedBefore(NodeId s) const {
  std::vector<EntityId> out;
  for (EntityId e : entities_) {
    if (Precedes(lock_node_.at(e), s)) out.push_back(e);
  }
  return out;
}

std::vector<EntityId> Transaction::EntitiesHeldAt(NodeId s) const {
  std::vector<EntityId> out;
  for (EntityId e : entities_) {
    NodeId le = lock_node_.at(e);
    // "Locked but not unlocked right before s": Lz = s itself means z is
    // being locked AT s, not before it.
    if (le == s) continue;
    if (Precedes(s, unlock_node_.at(e)) && !Precedes(s, le)) {
      out.push_back(e);
    }
  }
  return out;
}

std::vector<NodeId> Transaction::SomeLinearExtension() const {
  auto order = TopologicalSort(graph_);
  return *order;  // Guaranteed acyclic by Create().
}

std::vector<NodeId> Transaction::SampleLinearExtension(Rng* rng) const {
  const int n = num_steps();
  std::vector<int> indeg(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId w : graph_.OutNeighbors(v)) indeg[w]++;
  }
  std::vector<NodeId> frontier, order;
  for (NodeId v = 0; v < n; ++v) {
    if (indeg[v] == 0) frontier.push_back(v);
  }
  while (!frontier.empty()) {
    size_t pick = static_cast<size_t>(rng->NextBelow(frontier.size()));
    NodeId v = frontier[pick];
    frontier[pick] = frontier.back();
    frontier.pop_back();
    order.push_back(v);
    for (NodeId w : graph_.OutNeighbors(v)) {
      if (--indeg[w] == 0) frontier.push_back(w);
    }
  }
  return order;
}

bool Transaction::ForEachLinearExtension(
    const std::function<bool(const std::vector<NodeId>&)>& visit) const {
  const int n = num_steps();
  std::vector<int> indeg(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId w : graph_.OutNeighbors(v)) indeg[w]++;
  }
  std::vector<NodeId> order;
  order.reserve(n);
  std::vector<bool> used(n, false);

  // Recursive enumeration with in-degree bookkeeping.
  std::function<bool()> rec = [&]() -> bool {
    if (static_cast<int>(order.size()) == n) return visit(order);
    for (NodeId v = 0; v < n; ++v) {
      if (used[v] || indeg[v] != 0) continue;
      used[v] = true;
      order.push_back(v);
      for (NodeId w : graph_.OutNeighbors(v)) indeg[w]--;
      bool keep_going = rec();
      for (NodeId w : graph_.OutNeighbors(v)) indeg[w]++;
      order.pop_back();
      used[v] = false;
      if (!keep_going) return false;
    }
    return true;
  };
  return rec();
}

std::vector<std::vector<NodeId>> Transaction::AllLinearExtensions(
    uint64_t max_count) const {
  std::vector<std::vector<NodeId>> out;
  ForEachLinearExtension([&](const std::vector<NodeId>& ext) {
    out.push_back(ext);
    return max_count == 0 || out.size() < max_count;
  });
  return out;
}

Digraph Transaction::HasseDiagram() const {
  return TransitiveReduction(graph_, closure_);
}

std::string Transaction::StepLabel(NodeId v) const {
  const Step& s = steps_[v];
  const char* op = s.kind == StepKind::kUnlock          ? "U"
                   : s.mode == LockMode::kShared ? "S"
                                                 : "L";
  return StrFormat("%s%s", op, db_->EntityName(s.entity).c_str());
}

std::string Transaction::DebugString() const {
  std::string out = name_ + ":\n";
  Digraph hasse = HasseDiagram();
  for (NodeId v = 0; v < num_steps(); ++v) {
    out += StrFormat("  [%d] %s @%s ->", v, StepLabel(v).c_str(),
                     db_->SiteName(SiteOfStep(v)).c_str());
    for (NodeId w : hasse.OutNeighbors(v)) {
      out += StrFormat(" %s", StepLabel(w).c_str());
    }
    out += "\n";
  }
  return out;
}

}  // namespace wydb
