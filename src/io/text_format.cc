#include "io/text_format.h"

#include <algorithm>
#include <limits>
#include <sstream>
#include <utility>

#include "common/macros.h"
#include "common/string_util.h"
#include "core/transaction_builder.h"

namespace wydb {
namespace {

Status LineError(int line, const std::string& msg) {
  return Status::InvalidArgument(StrFormat("line %d: %s", line, msg.c_str()));
}

std::vector<std::string> Tokens(const std::string& s) {
  std::istringstream in(s);
  std::vector<std::string> out;
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

/// Parses a non-negative SimTime token; false on garbage or values large
/// enough to wrap the accumulator. The guard must account for the incoming
/// digit: at value == max/10 a final digit above max%10 still wraps.
bool ParseSimTime(const std::string& tok, SimTime* out) {
  if (tok.empty()) return false;
  SimTime value = 0;
  for (char c : tok) {
    if (c < '0' || c > '9') return false;
    const SimTime digit = static_cast<SimTime>(c - '0');
    if (value > (std::numeric_limits<SimTime>::max() - digit) / 10) {
      return false;  // Would wrap.
    }
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

/// Parses a 1-based step ordinal (capped well below INT_MAX so arithmetic
/// on it can't overflow).
bool ParseOrdinal(const std::string& s, int* out) {
  if (s.empty() || s.size() > 9) return false;
  int v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + (c - '0');
  }
  *out = v;
  return true;
}

/// Parses an explicit precedence token '<i>-><j>' (1-based step ordinals).
bool ParseArcToken(const std::string& tok, int* from, int* to) {
  size_t pos = tok.find("->");
  if (pos == std::string::npos) return false;
  return ParseOrdinal(tok.substr(0, pos), from) &&
         ParseOrdinal(tok.substr(pos + 2), to);
}

}  // namespace

Result<WorkloadSpec> ParseWorkload(const std::string& text) {
  WorkloadSpec spec;
  OwnedSystem& out = spec.owned;
  out.db = std::make_unique<Database>();
  struct PendingTxn {
    std::string name;
    std::vector<std::vector<std::string>> segments;  // Step tokens.
    int line;
  };
  std::vector<PendingTxn> pending;
  // `copies` lines, resolved after all sites exist (stanza order between
  // copies and sites/site lines is free as long as the entity exists).
  struct PendingCopies {
    std::string entity;
    std::vector<std::string> sites;
    int line;
  };
  std::vector<PendingCopies> pending_copies;
  // Sites declared by a `site ...:` header (to reject duplicates of the
  // header itself while allowing a prior bare `sites:` declaration).
  std::vector<std::string> site_headers;

  std::istringstream in(text);
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    std::string line = raw;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::vector<std::string> toks = Tokens(line);
    if (toks.empty()) continue;

    if (toks[0] == "sites:") {
      if (toks.size() < 2) {
        return LineError(lineno, "expected 'sites: <name> <name> ...'");
      }
      for (size_t i = 1; i < toks.size(); ++i) {
        auto added = out.db->AddSite(toks[i]);
        if (!added.ok()) return LineError(lineno, added.status().message());
      }
    } else if (toks[0] == "site") {
      if (toks.size() < 2 || toks[1].back() != ':') {
        return LineError(lineno, "expected 'site <name>: <entities...>'");
      }
      std::string site = toks[1].substr(0, toks[1].size() - 1);
      if (site.empty()) return LineError(lineno, "empty site name");
      for (const std::string& seen : site_headers) {
        if (seen == site) {
          return LineError(lineno, "duplicate site '" + site + "'");
        }
      }
      site_headers.push_back(site);
      if (out.db->FindSite(site) == kInvalidSite) {
        auto added = out.db->AddSite(site);
        if (!added.ok()) return LineError(lineno, added.status().message());
      }
      for (size_t i = 2; i < toks.size(); ++i) {
        auto added = out.db->AddEntityAtSite(toks[i], site);
        if (!added.ok()) return LineError(lineno, added.status().message());
      }
    } else if (toks[0] == "copies") {
      if (toks.size() < 3 || toks[1].back() != ':') {
        return LineError(lineno, "expected 'copies <entity>: <sites...>'");
      }
      PendingCopies c;
      c.entity = toks[1].substr(0, toks[1].size() - 1);
      c.line = lineno;
      if (c.entity.empty()) return LineError(lineno, "empty entity name");
      for (const PendingCopies& prev : pending_copies) {
        if (prev.entity == c.entity) {
          return LineError(lineno, "duplicate copies stanza for entity '" +
                                       c.entity + "'");
        }
      }
      c.sites.assign(toks.begin() + 2, toks.end());
      pending_copies.push_back(std::move(c));
    } else if (toks[0] == "latency:") {
      if (spec.has_latency) {
        return LineError(lineno, "duplicate latency stanza");
      }
      if (toks.size() != 4 || !ParseSimTime(toks[1], &spec.latency.base) ||
          !ParseSimTime(toks[2], &spec.latency.jitter) ||
          !ParseSimTime(toks[3], &spec.latency.local)) {
        return LineError(lineno,
                         "expected 'latency: <base> <jitter> <local>' with "
                         "non-negative integers");
      }
      spec.has_latency = true;
    } else if (toks[0] == "txn") {
      if (toks.size() < 2 || toks[1].back() != ':') {
        return LineError(lineno, "expected 'txn <name>: <steps...>'");
      }
      PendingTxn t;
      t.name = toks[1].substr(0, toks[1].size() - 1);
      t.line = lineno;
      if (t.name.empty()) return LineError(lineno, "empty transaction name");
      for (const PendingTxn& prev : pending) {
        if (prev.name == t.name) {
          return LineError(
              lineno, StrFormat("duplicate transaction '%s' (first defined "
                                "at line %d)",
                                t.name.c_str(), prev.line));
        }
      }
      t.segments.emplace_back();
      for (size_t i = 2; i < toks.size(); ++i) {
        if (toks[i] == ";") {
          t.segments.emplace_back();
        } else {
          t.segments.back().push_back(toks[i]);
        }
      }
      pending.push_back(std::move(t));
    } else {
      return LineError(lineno, "unknown directive '" + toks[0] + "'");
    }
  }

  if (!pending_copies.empty()) {
    out.placement = std::make_unique<CopyPlacement>(*out.db);
    for (const PendingCopies& c : pending_copies) {
      EntityId e = out.db->FindEntity(c.entity);
      if (e == kInvalidEntity) {
        return LineError(c.line, "unknown entity '" + c.entity + "'");
      }
      std::vector<SiteId> sites;
      sites.reserve(c.sites.size());
      for (const std::string& name : c.sites) {
        SiteId s = out.db->FindSite(name);
        if (s == kInvalidSite) {
          return LineError(c.line, "unknown site '" + name + "'");
        }
        sites.push_back(s);
      }
      Status set = out.placement->SetCopies(*out.db, e, std::move(sites));
      if (!set.ok()) return LineError(c.line, set.message());
    }
  }

  std::vector<Transaction> txns;
  for (const PendingTxn& p : pending) {
    TransactionBuilder b(out.db.get(), p.name);
    b.set_auto_site_chain(false);
    bool any = false;
    // Explicit '<i>-><j>' precedence tokens, as 1-based ordinals over the
    // step tokens of this txn line (in order of appearance, across
    // segments). Collected first so arcs may reference later steps.
    std::vector<std::pair<int, int>> arc_ordinals;
    std::vector<int> ordinal_to_step;  // 1-based ordinal - 1 -> builder idx.
    for (const auto& segment : p.segments) {
      int prev = -1;
      for (const std::string& tok : segment) {
        if (tok[0] >= '0' && tok[0] <= '9') {
          int from = 0;
          int to = 0;
          if (!ParseArcToken(tok, &from, &to)) {
            return LineError(p.line,
                             "bad arc token '" + tok +
                                 "' (want <i>-><j> with 1-based step "
                                 "ordinals)");
          }
          arc_ordinals.emplace_back(from, to);
          continue;  // Arc tokens do not participate in segment chaining.
        }
        if (tok.size() < 2 ||
            (tok[0] != 'L' && tok[0] != 'S' && tok[0] != 'U')) {
          return LineError(p.line,
                           "bad step token '" + tok +
                               "' (want L<entity>, S<entity> or U<entity>)");
        }
        std::string entity = tok.substr(1);
        int cur = tok[0] == 'L'   ? b.Lock(entity)
                  : tok[0] == 'S' ? b.LockShared(entity)
                                  : b.Unlock(entity);
        if (prev >= 0) b.Arc(prev, cur);
        prev = cur;
        ordinal_to_step.push_back(cur);
        any = true;
      }
    }
    if (!any) return LineError(p.line, "transaction with no steps");
    const int num_steps = static_cast<int>(ordinal_to_step.size());
    for (const auto& [from, to] : arc_ordinals) {
      if (from < 1 || from > num_steps || to < 1 || to > num_steps) {
        return LineError(
            p.line, StrFormat("arc %d->%d out of range (transaction has %d "
                              "steps)",
                              from, to, num_steps));
      }
      if (from == to) {
        return LineError(p.line,
                         StrFormat("arc %d->%d is a self-loop", from, to));
      }
      b.Arc(ordinal_to_step[from - 1], ordinal_to_step[to - 1]);
    }
    auto built = b.Build();
    if (!built.ok()) {
      return LineError(
          p.line, "transaction '" + p.name + "': " + built.status().message());
    }
    txns.push_back(std::move(*built));
  }

  WYDB_ASSIGN_OR_RETURN(
      TransactionSystem sys,
      TransactionSystem::Create(out.db.get(), std::move(txns)));
  out.system = std::make_unique<TransactionSystem>(std::move(sys));
  return spec;
}

Result<OwnedSystem> ParseSystem(const std::string& text) {
  WYDB_ASSIGN_OR_RETURN(WorkloadSpec spec, ParseWorkload(text));
  return std::move(spec.owned);
}

std::string SerializeSystem(const TransactionSystem& sys) {
  return SerializeWorkload(sys, nullptr, nullptr);
}

std::string SerializeWorkload(const TransactionSystem& sys,
                              const CopyPlacement* placement,
                              const LatencyModel* latency) {
  const Database& db = sys.db();
  std::string out;
  // Sites without a primary entity (copy-only or spare sites) would be
  // lost by the `site` lines alone; declare them up front.
  std::string bare_sites;
  for (SiteId s = 0; s < db.num_sites(); ++s) {
    if (db.EntitiesAt(s).empty()) bare_sites += " " + db.SiteName(s);
  }
  if (!bare_sites.empty()) out += "sites:" + bare_sites + "\n";
  for (SiteId s = 0; s < db.num_sites(); ++s) {
    std::vector<EntityId> entities = db.EntitiesAt(s);
    if (entities.empty()) continue;
    out += "site " + db.SiteName(s) + ":";
    for (EntityId e : entities) out += " " + db.EntityName(e);
    out += "\n";
  }
  if (placement != nullptr) {
    for (EntityId e = 0; e < db.num_entities() && e < placement->num_entities();
         ++e) {
      const std::vector<SiteId>& copies = placement->CopiesOf(e);
      if (copies.size() == 1 && copies[0] == db.SiteOf(e)) continue;
      out += "copies " + db.EntityName(e) + ":";
      for (SiteId s : copies) out += " " + db.SiteName(s);
      out += "\n";
    }
  }
  if (latency != nullptr) {
    out += StrFormat("latency: %llu %llu %llu\n",
                     static_cast<unsigned long long>(latency->base),
                     static_cast<unsigned long long>(latency->jitter),
                     static_cast<unsigned long long>(latency->local));
  }
  for (int i = 0; i < sys.num_transactions(); ++i) {
    const Transaction& t = sys.txn(i);
    out += "txn " + t.name() + ":";
    // Decompose the Hasse diagram into chains: walk a fixed linear
    // extension and append each node to the first chain whose tail has a
    // Hasse arc to it. Within-chain adjacency then encodes exactly those
    // Hasse arcs; the remaining (cross-chain) Hasse arcs are emitted as
    // explicit '<i>-><j>' tokens so parse∘serialize is the identity on the
    // step partial order. A totally ordered transaction is a single chain
    // with no leftover arcs, so its serialization is unchanged.
    const Digraph hasse = t.HasseDiagram();
    std::vector<std::vector<NodeId>> chains;
    for (NodeId v : t.SomeLinearExtension()) {
      bool placed = false;
      for (auto& chain : chains) {
        if (hasse.HasArc(chain.back(), v)) {
          chain.push_back(v);
          placed = true;
          break;
        }
      }
      if (!placed) chains.push_back({v});
    }
    // 1-based ordinal of each node in the emitted token stream, and the
    // chain successor covered by segment chaining.
    std::vector<int> ordinal(t.num_steps(), 0);
    std::vector<NodeId> chain_succ(t.num_steps(), kInvalidNode);
    int next_ordinal = 1;
    for (const auto& chain : chains) {
      for (size_t k = 0; k < chain.size(); ++k) {
        ordinal[chain[k]] = next_ordinal++;
        if (k + 1 < chain.size()) chain_succ[chain[k]] = chain[k + 1];
      }
    }
    for (size_t c = 0; c < chains.size(); ++c) {
      if (c > 0) out += " ;";
      for (NodeId v : chains[c]) out += " " + t.StepLabel(v);
    }
    for (const auto& chain : chains) {
      for (NodeId v : chain) {
        std::vector<NodeId> heads = hasse.OutNeighbors(v);
        std::sort(heads.begin(), heads.end(),
                  [&](NodeId a, NodeId b) { return ordinal[a] < ordinal[b]; });
        for (NodeId w : heads) {
          if (w == chain_succ[v]) continue;
          out += StrFormat(" %d->%d", ordinal[v], ordinal[w]);
        }
      }
    }
    out += "\n";
  }
  return out;
}

}  // namespace wydb
