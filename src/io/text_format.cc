#include "io/text_format.h"

#include <sstream>

#include "common/macros.h"
#include "common/string_util.h"
#include "core/transaction_builder.h"

namespace wydb {
namespace {

Status LineError(int line, const std::string& msg) {
  return Status::InvalidArgument(StrFormat("line %d: %s", line, msg.c_str()));
}

std::vector<std::string> Tokens(const std::string& s) {
  std::istringstream in(s);
  std::vector<std::string> out;
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

}  // namespace

Result<OwnedSystem> ParseSystem(const std::string& text) {
  OwnedSystem out;
  out.db = std::make_unique<Database>();
  struct PendingTxn {
    std::string name;
    std::vector<std::vector<std::string>> segments;  // Step tokens.
    int line;
  };
  std::vector<PendingTxn> pending;

  std::istringstream in(text);
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    std::string line = raw;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::vector<std::string> toks = Tokens(line);
    if (toks.empty()) continue;

    if (toks[0] == "site") {
      if (toks.size() < 2 || toks[1].back() != ':') {
        return LineError(lineno, "expected 'site <name>: <entities...>'");
      }
      std::string site = toks[1].substr(0, toks[1].size() - 1);
      if (site.empty()) return LineError(lineno, "empty site name");
      if (out.db->FindSite(site) != kInvalidSite) {
        return LineError(lineno, "duplicate site '" + site + "'");
      }
      for (size_t i = 2; i < toks.size(); ++i) {
        auto added = out.db->AddEntityAtSite(toks[i], site);
        if (!added.ok()) return LineError(lineno, added.status().message());
      }
    } else if (toks[0] == "txn") {
      if (toks.size() < 2 || toks[1].back() != ':') {
        return LineError(lineno, "expected 'txn <name>: <steps...>'");
      }
      PendingTxn t;
      t.name = toks[1].substr(0, toks[1].size() - 1);
      t.line = lineno;
      if (t.name.empty()) return LineError(lineno, "empty transaction name");
      t.segments.emplace_back();
      for (size_t i = 2; i < toks.size(); ++i) {
        if (toks[i] == ";") {
          t.segments.emplace_back();
        } else {
          t.segments.back().push_back(toks[i]);
        }
      }
      pending.push_back(std::move(t));
    } else {
      return LineError(lineno, "unknown directive '" + toks[0] + "'");
    }
  }

  std::vector<Transaction> txns;
  for (const PendingTxn& p : pending) {
    TransactionBuilder b(out.db.get(), p.name);
    b.set_auto_site_chain(false);
    bool any = false;
    for (const auto& segment : p.segments) {
      int prev = -1;
      for (const std::string& tok : segment) {
        if (tok.size() < 2 || (tok[0] != 'L' && tok[0] != 'U')) {
          return LineError(p.line, "bad step token '" + tok +
                                       "' (want L<entity> or U<entity>)");
        }
        std::string entity = tok.substr(1);
        int cur = tok[0] == 'L' ? b.Lock(entity) : b.Unlock(entity);
        if (prev >= 0) b.Arc(prev, cur);
        prev = cur;
        any = true;
      }
    }
    if (!any) return LineError(p.line, "transaction with no steps");
    auto built = b.Build();
    if (!built.ok()) {
      return LineError(
          p.line, "transaction '" + p.name + "': " + built.status().message());
    }
    txns.push_back(std::move(*built));
  }

  WYDB_ASSIGN_OR_RETURN(
      TransactionSystem sys,
      TransactionSystem::Create(out.db.get(), std::move(txns)));
  out.system = std::make_unique<TransactionSystem>(std::move(sys));
  return out;
}

std::string SerializeSystem(const TransactionSystem& sys) {
  const Database& db = sys.db();
  std::string out;
  for (SiteId s = 0; s < db.num_sites(); ++s) {
    out += "site " + db.SiteName(s) + ":";
    for (EntityId e : db.EntitiesAt(s)) out += " " + db.EntityName(e);
    out += "\n";
  }
  for (int i = 0; i < sys.num_transactions(); ++i) {
    const Transaction& t = sys.txn(i);
    out += "txn " + t.name() + ":";
    for (NodeId v : t.SomeLinearExtension()) out += " " + t.StepLabel(v);
    out += "\n";
  }
  return out;
}

}  // namespace wydb
