// A small line-oriented text format for transaction systems, so workloads
// can be authored, versioned and fed to the analyzer CLI without writing
// C++. The full grammar lives in docs/FORMAT.md.
//
//   # comment / blank lines ignored
//   sites: <site> <site> ...                   (declare sites up front;
//                                                needed for copy-only
//                                                sites with no primaries)
//   site <site-name>: <entity> <entity> ...    (entities whose catalog
//                                                site this is; creates
//                                                the site if new)
//   copies <entity>: <site> <site> ...         (copy placement; the first
//                                                site is the primary)
//   latency: <base> <jitter> <local>           (message latency model)
//   txn <txn-name>: <step> <step> ...          (totally ordered)
//   txn <txn-name>: <step> ... ; <step> ...    ( ';' separates per-site
//                                                unordered segments: steps
//                                                within a segment are
//                                                chained, segments are
//                                                mutually unordered )
//   txn <txn-name>: <step> ... <i>-><j> ...    ( '<i>-><j>' adds an explicit
//                                                precedence arc between the
//                                                i-th and j-th step tokens
//                                                of the line, 1-based in
//                                                order of appearance across
//                                                segments; forward
//                                                references are fine )
//
// A step is 'L<entity>' or 'U<entity>', e.g. "Lx" "Uaccount_7". Transaction
// names must be unique within a file.
#ifndef WYDB_IO_TEXT_FORMAT_H_
#define WYDB_IO_TEXT_FORMAT_H_

#include <string>

#include "common/result.h"
#include "gen/system_gen.h"
// Deliberate io -> runtime edge: a workload file configures the traffic
// engine, and LatencyModel is its network knob. The runtime never
// includes io, so the dependency stays acyclic.
#include "runtime/sim/network.h"

namespace wydb {

/// A parsed workload file: the system (plus the copy placement inside
/// OwnedSystem, when the file has `copies` stanzas) and the optional
/// latency model.
struct WorkloadSpec {
  OwnedSystem owned;
  /// From the `latency` stanza; defaults when has_latency is false.
  LatencyModel latency;
  bool has_latency = false;
};

/// Parses the full workload format, including the replication stanzas.
/// Errors carry 1-based line numbers.
Result<WorkloadSpec> ParseWorkload(const std::string& text);

/// Parses the text format into a database plus transaction system (the
/// placement, if any, rides along in OwnedSystem::placement).
Result<OwnedSystem> ParseSystem(const std::string& text);

/// Renders a system back into the text format. parse∘serialize is the
/// identity on the step partial order: each transaction is emitted as
/// ';'-separated chains of its Hasse diagram plus explicit '<i>-><j>' arc
/// tokens for the cross-chain Hasse arcs. Totally ordered transactions
/// serialize as a single plain chain, exactly as before.
std::string SerializeSystem(const TransactionSystem& sys);

/// As SerializeSystem, but also emits `sites`, `copies` and `latency`
/// stanzas. Either pointer may be null; a null placement (or one with no
/// replicated entity) emits no `copies` lines.
std::string SerializeWorkload(const TransactionSystem& sys,
                              const CopyPlacement* placement,
                              const LatencyModel* latency);

}  // namespace wydb

#endif  // WYDB_IO_TEXT_FORMAT_H_
