// A small line-oriented text format for transaction systems, so workloads
// can be authored, versioned and fed to the analyzer CLI without writing
// C++.
//
//   # comment / blank lines ignored
//   site <site-name>: <entity> <entity> ...
//   txn <txn-name>: <step> <step> ...          (totally ordered)
//   txn <txn-name>: <step> ... ; <step> ...    ( ';' separates per-site
//                                                unordered segments: steps
//                                                within a segment are
//                                                chained, segments are
//                                                mutually unordered )
//
// A step is 'L<entity>' or 'U<entity>', e.g. "Lx" "Uaccount_7".
#ifndef WYDB_IO_TEXT_FORMAT_H_
#define WYDB_IO_TEXT_FORMAT_H_

#include <string>

#include "common/result.h"
#include "gen/system_gen.h"

namespace wydb {

/// Parses the text format into a database plus transaction system.
/// Errors carry 1-based line numbers.
Result<OwnedSystem> ParseSystem(const std::string& text);

/// Renders a system back into the text format (totally-ordered
/// transactions round-trip exactly; partial orders are emitted as one
/// segment per maximal chain of a topological order and may gain order).
std::string SerializeSystem(const TransactionSystem& sys);

}  // namespace wydb

#endif  // WYDB_IO_TEXT_FORMAT_H_
