#include "gen/system_gen.h"

#include <algorithm>

#include "analysis/copies_analyzer.h"
#include "common/macros.h"
#include "common/string_util.h"
#include "core/transaction_builder.h"
#include "gen/txn_gen.h"

namespace wydb {
namespace {

Result<OwnedSystem> Finish(std::unique_ptr<Database> db,
                           std::vector<Transaction> txns) {
  WYDB_ASSIGN_OR_RETURN(TransactionSystem sys,
                        TransactionSystem::Create(db.get(), std::move(txns)));
  OwnedSystem out;
  out.db = std::move(db);
  out.system = std::make_unique<TransactionSystem>(std::move(sys));
  return out;
}

}  // namespace

Result<OwnedSystem> GenerateRandomSystem(const RandomSystemOptions& options) {
  auto db = MakeUniformDatabase(options.num_sites, options.entities_per_site);
  Rng rng(options.seed);
  std::vector<Transaction> txns;
  for (int i = 0; i < options.num_transactions; ++i) {
    TxnGenOptions topts;
    topts.entities = SampleEntities(*db, options.entities_per_txn, &rng);
    topts.extra_arc_prob = options.extra_arc_prob;
    topts.two_phase = options.two_phase;
    topts.shared_fraction = options.shared_fraction;
    topts.shared_point_reads = options.shared_point_reads;
    WYDB_ASSIGN_OR_RETURN(
        Transaction t,
        GenerateTransaction(db.get(), StrFormat("T%d", i + 1), topts, &rng));
    txns.push_back(std::move(t));
  }
  return Finish(std::move(db), std::move(txns));
}

Result<OwnedSystem> GenerateSafeSystem(const SafeSystemOptions& options) {
  auto db = MakeUniformDatabase(options.num_sites, options.entities_per_site);
  WYDB_ASSIGN_OR_RETURN(EntityId latch, db->AddEntity("latch", 0));
  Rng rng(options.seed);
  std::vector<Transaction> txns;
  for (int i = 0; i < options.num_transactions; ++i) {
    TxnGenOptions topts;
    std::vector<EntityId> sample =
        SampleEntities(*db, options.entities_per_txn, &rng);
    sample.erase(std::remove(sample.begin(), sample.end(), latch),
                 sample.end());
    topts.entities.push_back(latch);
    topts.entities.insert(topts.entities.end(), sample.begin(), sample.end());
    topts.dominating_first = true;
    topts.hold_first_to_end = true;
    WYDB_ASSIGN_OR_RETURN(
        Transaction t,
        GenerateTransaction(db.get(), StrFormat("T%d", i + 1), topts, &rng));
    txns.push_back(std::move(t));
  }
  return Finish(std::move(db), std::move(txns));
}

Result<OwnedSystem> GenerateRingSystem(int k) {
  if (k < 2) return Status::InvalidArgument("ring needs k >= 2");
  auto db = std::make_unique<Database>();
  std::vector<EntityId> e(k);
  for (int i = 0; i < k; ++i) {
    WYDB_ASSIGN_OR_RETURN(
        e[i], db->AddEntityAtSite(StrFormat("e%d", i), StrFormat("s%d", i)));
  }
  std::vector<Transaction> txns;
  for (int i = 0; i < k; ++i) {
    TransactionBuilder b(db.get(), StrFormat("T%d", i + 1));
    int l1 = b.LockId(e[i]);
    int l2 = b.LockId(e[(i + 1) % k]);
    int u2 = b.UnlockId(e[(i + 1) % k]);
    int u1 = b.UnlockId(e[i]);
    b.Chain({l1, l2, u2, u1});
    WYDB_ASSIGN_OR_RETURN(Transaction t, b.Build());
    txns.push_back(std::move(t));
  }
  return Finish(std::move(db), std::move(txns));
}

Result<OwnedSystem> GenerateChordedCycleSystem(int k, int chords,
                                               uint64_t seed) {
  if (k < 3) return Status::InvalidArgument("chorded cycle needs k >= 3");
  auto db = std::make_unique<Database>();
  std::vector<EntityId> ring(k);
  for (int i = 0; i < k; ++i) {
    WYDB_ASSIGN_OR_RETURN(ring[i], db->AddEntityAtSite(StrFormat("e%d", i),
                                                       StrFormat("s%d", i)));
  }
  // Chord entities shared between transactions two apart.
  struct Chord {
    EntityId entity;
    int a;
    int b;
  };
  Rng rng(seed);
  std::vector<Chord> chord_list;
  for (int c = 0; c < chords; ++c) {
    // Spread chords around the ring deterministically so each one adds a
    // new interaction edge (and thus new simple cycles); the seed only
    // perturbs the start.
    int a = static_cast<int>((rng.NextBelow(2) + 3 * c) % k);
    int b = (a + 2) % k;
    EntityId f;
    WYDB_ASSIGN_OR_RETURN(
        f, db->AddEntityAtSite(StrFormat("f%d", c), StrFormat("sf%d", c)));
    chord_list.push_back({f, a, b});
  }

  std::vector<Transaction> txns;
  for (int i = 0; i < k; ++i) {
    TransactionBuilder b(db.get(), StrFormat("T%d", i + 1));
    std::vector<int> seq;
    seq.push_back(b.LockId(ring[i]));
    seq.push_back(b.LockId(ring[(i + 1) % k]));
    for (const Chord& ch : chord_list) {
      if (ch.a == i || ch.b == i) seq.push_back(b.LockId(ch.entity));
    }
    // Two-phase: unlock everything in reverse.
    std::vector<int> unlocks;
    for (const Chord& ch : chord_list) {
      if (ch.a == i || ch.b == i) unlocks.push_back(b.UnlockId(ch.entity));
    }
    unlocks.push_back(b.UnlockId(ring[(i + 1) % k]));
    unlocks.push_back(b.UnlockId(ring[i]));
    seq.insert(seq.end(), unlocks.begin(), unlocks.end());
    for (size_t s = 0; s + 1 < seq.size(); ++s) b.Arc(seq[s], seq[s + 1]);
    WYDB_ASSIGN_OR_RETURN(Transaction t, b.Build());
    txns.push_back(std::move(t));
  }
  return Finish(std::move(db), std::move(txns));
}

Result<OwnedSystem> GenerateDisjointGridSystem(int k, int entities_per_txn) {
  if (k < 1 || entities_per_txn < 1) {
    return Status::InvalidArgument("grid needs k >= 1 and entities >= 1");
  }
  auto db = std::make_unique<Database>();
  std::vector<Transaction> txns;
  for (int i = 0; i < k; ++i) {
    TransactionBuilder b(db.get(), StrFormat("T%d", i + 1));
    std::vector<int> seq;
    for (int e = 0; e < entities_per_txn; ++e) {
      EntityId id;
      WYDB_ASSIGN_OR_RETURN(
          id, db->AddEntityAtSite(StrFormat("e%d_%d", i, e),
                                  StrFormat("s%d", i)));
      seq.push_back(b.LockId(id));
      seq.push_back(b.UnlockId(id));
    }
    for (size_t s = 0; s + 1 < seq.size(); ++s) b.Arc(seq[s], seq[s + 1]);
    WYDB_ASSIGN_OR_RETURN(Transaction t, b.Build());
    txns.push_back(std::move(t));
  }
  return Finish(std::move(db), std::move(txns));
}

Result<OwnedSystem> GenerateSharedChainSystem(int k) {
  if (k < 2) return Status::InvalidArgument("chain needs k >= 2");
  auto db = std::make_unique<Database>();
  std::vector<EntityId> own(k), shared(k - 1);
  for (int i = 0; i < k; ++i) {
    WYDB_ASSIGN_OR_RETURN(own[i], db->AddEntityAtSite(StrFormat("o%d", i),
                                                      StrFormat("so%d", i)));
  }
  for (int i = 0; i + 1 < k; ++i) {
    WYDB_ASSIGN_OR_RETURN(
        shared[i],
        db->AddEntityAtSite(StrFormat("s%d", i), StrFormat("ss%d", i)));
  }
  std::vector<Transaction> txns;
  for (int i = 0; i < k; ++i) {
    TransactionBuilder b(db.get(), StrFormat("T%d", i + 1));
    std::vector<int> seq;
    if (i > 0) seq.push_back(b.LockId(shared[i - 1]));
    seq.push_back(b.LockId(own[i]));
    if (i + 1 < k) seq.push_back(b.LockId(shared[i]));
    // Two-phase: unlock in reverse acquisition order.
    if (i + 1 < k) seq.push_back(b.UnlockId(shared[i]));
    seq.push_back(b.UnlockId(own[i]));
    if (i > 0) seq.push_back(b.UnlockId(shared[i - 1]));
    for (size_t s = 0; s + 1 < seq.size(); ++s) b.Arc(seq[s], seq[s + 1]);
    WYDB_ASSIGN_OR_RETURN(Transaction t, b.Build());
    txns.push_back(std::move(t));
  }
  return Finish(std::move(db), std::move(txns));
}

Status ReplicateRoundRobin(OwnedSystem* owned, int degree) {
  if (owned == nullptr || owned->db == nullptr) {
    return Status::InvalidArgument("no system to replicate");
  }
  if (degree < 1) return Status::InvalidArgument("degree must be >= 1");
  owned->placement = std::make_unique<CopyPlacement>(
      CopyPlacement::RoundRobin(*owned->db, degree));
  return Status();
}

Result<OwnedSystem> GenerateReplicatedRingSystem(int k, int degree) {
  WYDB_ASSIGN_OR_RETURN(OwnedSystem ring, GenerateRingSystem(k));
  WYDB_RETURN_IF_ERROR(ReplicateRoundRobin(&ring, degree));
  return ring;
}

Result<OwnedSystem> GenerateReplicatedFarm(
    const ReplicatedFarmOptions& opts) {
  if (opts.workers < 1 || opts.entities < 2) {
    return Status::InvalidArgument("farm needs workers >= 1, entities >= 2");
  }
  auto db = std::make_unique<Database>();
  std::vector<EntityId> e(opts.entities);
  for (int i = 0; i < opts.entities; ++i) {
    WYDB_ASSIGN_OR_RETURN(
        e[i], db->AddEntityAtSite(StrFormat("e%d", i), StrFormat("s%d", i)));
  }
  TransactionBuilder b(db.get(), "worker");
  Result<Transaction> built = [&]() -> Result<Transaction> {
    if (opts.certified) {
      // Latch discipline: lock e0 first, hold it to the very end; e0 then
      // covers every other entity, so Corollary 3 certifies any number of
      // workers (Theorem 5).
      std::vector<int> seq;
      for (int i = 0; i < opts.entities; ++i) seq.push_back(b.LockId(e[i]));
      for (int i = 1; i < opts.entities; ++i) seq.push_back(b.UnlockId(e[i]));
      seq.push_back(b.UnlockId(e[0]));
      for (size_t s = 0; s + 1 < seq.size(); ++s) b.Arc(seq[s], seq[s + 1]);
      return b.Build();
    }
    // Cyclic cover (Fig. 6 flavour): locks mutually unordered, each lock
    // held across the NEXT entity's unlock. No first entity exists, so
    // the analyzer refutes the template; three or more workers can
    // deadlock at runtime.
    b.set_auto_site_chain(false);
    std::vector<int> locks(opts.entities), unlocks(opts.entities);
    for (int i = 0; i < opts.entities; ++i) locks[i] = b.LockId(e[i]);
    for (int i = 0; i < opts.entities; ++i) unlocks[i] = b.UnlockId(e[i]);
    for (int i = 0; i < opts.entities; ++i) {
      b.Arc(locks[i], unlocks[(i + 1) % opts.entities]);
    }
    return b.Build();
  }();
  WYDB_RETURN_IF_ERROR(built.status());
  WYDB_ASSIGN_OR_RETURN(TransactionSystem sys,
                        MakeCopies(*built, opts.workers));
  OwnedSystem out;
  out.db = std::move(db);
  out.system = std::make_unique<TransactionSystem>(std::move(sys));
  WYDB_RETURN_IF_ERROR(ReplicateRoundRobin(&out, opts.degree));
  return out;
}

Result<OwnedSystem> GenerateReadMostlyFarm(const ReadMostlyFarmOptions& opts) {
  if (opts.workers < 1 || opts.read_entities < 1 || opts.sites < 1) {
    return Status::InvalidArgument(
        "read-mostly farm needs workers >= 1, read_entities >= 1, sites >= 1");
  }
  auto db = std::make_unique<Database>();
  for (int s = 0; s < opts.sites; ++s) {
    db->AddSite(StrFormat("s%d", s));
  }
  std::vector<EntityId> reads(opts.read_entities);
  for (int i = 0; i < opts.read_entities; ++i) {
    WYDB_ASSIGN_OR_RETURN(
        reads[i], db->AddEntityAtSite(StrFormat("r%d", i),
                                      StrFormat("s%d", i % opts.sites)));
  }
  // Per-worker template: X-lock the worker's PRIVATE entity p<w>, then
  // the shared read set in index order (the first shared_fraction of it
  // in S mode, the rest demoted to X), release in reverse — two-phase
  // and totally ordered. The private entity conflicts with nobody; the
  // S reads conflict with nobody either, so the pure farm is
  // conflict-free, while any X-demoted read becomes a lock chain every
  // pair contends on. The chain is certified for every fraction: the
  // first X read is locked first among the conflicting entities and
  // (reverse release) held until all the others are gone — a dominating
  // entity in the Theorem 3 sense.
  int num_shared =
      static_cast<int>(opts.shared_fraction *
                           static_cast<double>(opts.read_entities) +
                       0.5);
  if (num_shared < 0) num_shared = 0;
  if (num_shared > opts.read_entities) num_shared = opts.read_entities;
  std::vector<Transaction> txns;
  txns.reserve(opts.workers);
  for (int w = 0; w < opts.workers; ++w) {
    WYDB_ASSIGN_OR_RETURN(
        EntityId priv, db->AddEntityAtSite(StrFormat("p%d", w),
                                           StrFormat("s%d", w % opts.sites)));
    TransactionBuilder b(db.get(), StrFormat("reader%d", w));
    std::vector<int> seq;
    seq.push_back(b.LockId(priv));
    for (int i = 0; i < opts.read_entities; ++i) {
      seq.push_back(i < num_shared ? b.LockSharedId(reads[i])
                                   : b.LockId(reads[i]));
    }
    for (int i = opts.read_entities - 1; i >= 0; --i) {
      seq.push_back(b.UnlockId(reads[i]));
    }
    seq.push_back(b.UnlockId(priv));
    for (size_t i = 1; i < seq.size(); ++i) b.Arc(seq[i - 1], seq[i]);
    WYDB_ASSIGN_OR_RETURN(Transaction t, b.Build());
    txns.push_back(std::move(t));
  }
  WYDB_ASSIGN_OR_RETURN(TransactionSystem sys,
                        TransactionSystem::Create(db.get(), std::move(txns)));
  OwnedSystem out;
  out.db = std::move(db);
  out.system = std::make_unique<TransactionSystem>(std::move(sys));
  return out;
}

}  // namespace wydb
