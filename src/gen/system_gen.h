// System-level workload generators: random systems, safe-by-construction
// systems, ring (Fig. 6 style) systems, and interaction graphs with a
// controlled number of cycles.
#ifndef WYDB_GEN_SYSTEM_GEN_H_
#define WYDB_GEN_SYSTEM_GEN_H_

#include <cstdint>
#include <memory>

#include "common/random.h"
#include "common/result.h"
#include "core/system.h"

namespace wydb {

/// A system together with the database it lives in (keeps the Database
/// alive and at a stable address).
struct OwnedSystem {
  std::unique_ptr<Database> db;
  std::unique_ptr<TransactionSystem> system;
  /// Physical copy placement for the runtime engine; null = single-copy.
  /// Wire it up via SimOptions::placement.
  std::unique_ptr<CopyPlacement> placement;
};

struct RandomSystemOptions {
  int num_sites = 2;
  int entities_per_site = 3;
  int num_transactions = 3;
  int entities_per_txn = 3;
  double extra_arc_prob = 0.15;
  bool two_phase = false;
  /// Probability that an entity access is SHARED (S-mode); see
  /// TxnGenOptions::shared_fraction.
  double shared_fraction = 0.0;
  /// Emit shared accesses as adjacent (LS, US) point reads; see
  /// TxnGenOptions::shared_point_reads.
  bool shared_point_reads = false;
  uint64_t seed = 1;
};

/// Fully random system; no safety/deadlock guarantees either way. The
/// exact checkers remain tractable for the default sizes.
Result<OwnedSystem> GenerateRandomSystem(const RandomSystemOptions& options);

struct SafeSystemOptions {
  int num_sites = 2;
  int entities_per_site = 4;
  int num_transactions = 3;
  int entities_per_txn = 3;
  uint64_t seed = 1;
};

/// Safe+deadlock-free by construction: all transactions access a common
/// dominating entity first and hold it to the end (a "global latch"
/// discipline), which satisfies Theorem 3 for every pair and kills every
/// interaction-graph cycle in the Theorem 4 test.
Result<OwnedSystem> GenerateSafeSystem(const SafeSystemOptions& options);

/// \brief Ring system generalizing Fig. 6: k transactions, k entities
/// e_0..e_{k-1}; transaction i locks e_i then e_{i+1 mod k} (two-phase,
/// each entity at its own site).
///
/// Any k >= 2 of these can deadlock in the classic circular-wait way when
/// arranged in a full ring; pairs taken in isolation from a k >= 3 ring
/// share only one entity and are deadlock-free — the paper's point that
/// deadlock-freedom does not reduce to pairs.
Result<OwnedSystem> GenerateRingSystem(int k);

/// \brief A "chained lattice" system whose interaction graph has a tunable
/// number of simple cycles: `k` transactions in a cycle, plus `chords`
/// extra shared entities between transactions two apart. Each chord
/// multiplies the simple-cycle count of G(A).
Result<OwnedSystem> GenerateChordedCycleSystem(int k, int chords,
                                               uint64_t seed);

/// \brief Worst-case-benign workload for the exact checkers: `k`
/// transactions over pairwise disjoint entity sets, each a total order of
/// `entities_per_txn` Lock/Unlock pairs. Trivially safe+deadlock-free, yet
/// every interleaving is legal, so exhaustive exploration must visit
/// (2*entities_per_txn + 1)^k states — the regime where per-state
/// constants dominate (the cost story of Theorems 1-2).
Result<OwnedSystem> GenerateDisjointGridSystem(int k, int entities_per_txn);

/// \brief Open-chain sharing: transaction i holds its own entity o_i and
/// shares s_i with transaction i+1 (two-phase, single shared entity per
/// pair). The interaction graph is a path, so Theorem 4 certifies
/// safe+deadlock-freedom, but the exact Lemma 1 search still explores
/// exponentially many (state, conflict-arc-set) pairs with real arcs.
Result<OwnedSystem> GenerateSharedChainSystem(int k);

// ---------------------------------------------------------------------------
// Replicated workloads (DESIGN.md §6): the same logical systems, plus a
// physical copy placement the runtime engine fans lock traffic out to.
// ---------------------------------------------------------------------------

/// Attaches a round-robin copy placement of the given degree to `owned`
/// (every entity replicated across `degree` consecutive sites, clamped to
/// the site count). Overwrites any existing placement.
Status ReplicateRoundRobin(OwnedSystem* owned, int degree);

/// Ring system (see GenerateRingSystem) whose k entities are each
/// replicated across `degree` of the k sites. Statically uncertified for
/// any k >= 2; the replicated engine can be driven into deadlock at the
/// primary copies exactly like the single-copy ring.
Result<OwnedSystem> GenerateReplicatedRingSystem(int k, int degree);

struct ReplicatedFarmOptions {
  /// Number of identical workers executing the template (the d of
  /// Theorem 5).
  int workers = 4;
  /// Logical entities of the template, one per site.
  int entities = 3;
  /// Copies per entity (clamped to the site count).
  int degree = 2;
  /// true: latch-ordered template (lock e0 first, hold to the end) that
  /// Corollary 3 certifies for any number of workers. false: a cyclic-
  /// cover template (Fig. 6 flavour) the analyzer refutes and whose
  /// 3-worker replicated execution can deadlock.
  bool certified = true;
};

/// Identical-copies service over replicated data: `workers` copies of one
/// template transaction, every entity replicated `degree` ways. The
/// cross-validation bridge between `copies_analyzer` and the replicated
/// traffic engine.
Result<OwnedSystem> GenerateReplicatedFarm(const ReplicatedFarmOptions& opts);

struct ReadMostlyFarmOptions {
  /// Number of identical workers executing the template.
  int workers = 4;
  /// Entities every worker only READS (S-mode, one per site round-robin).
  int read_entities = 4;
  /// Sites to spread the entities over.
  int sites = 2;
  /// Fraction of the read set actually locked in S mode (rounded to the
  /// nearest entity count); the rest are demoted to X. 1.0 is the pure
  /// read-mostly farm, 0.0 its all-X demotion — sweeping this knob shows
  /// shared grants turning into lock-chain contention.
  double shared_fraction = 1.0;
};

/// \brief Certified read-mostly farm (DESIGN.md §11): `workers`
/// transactions that each X-lock a private working entity p<w>, then
/// S-lock the `read_entities` shared read-only entities in index order,
/// releasing in reverse (two-phase).
///
/// The pure farm (shared_fraction = 1) is conflict-FREE: the private
/// entities have one accessor each and the read set is S-by-all, so no
/// pair draws a conflict arc and Theorem 3/4 certify the system for any
/// worker count. Demoting reads to X (lower shared_fraction, or the
/// all-X demotion) turns the read set into a lock chain every pair
/// contends on — still certified for every fraction, because the first
/// X read is locked first among the conflicting entities and held until
/// the rest are released (a dominating entity) — but the chain
/// serializes the workers. At least half the LOCK steps are shared for
/// read_entities >= 1. Because the S reads are shared by all their
/// accessors, every S move is always-invisible to the reduced engine,
/// which therefore interns strictly fewer states on the farm than on
/// its all-X demotion.
Result<OwnedSystem> GenerateReadMostlyFarm(const ReadMostlyFarmOptions& opts);

}  // namespace wydb

#endif  // WYDB_GEN_SYSTEM_GEN_H_
