#include "gen/txn_gen.h"

#include <algorithm>

#include "common/string_util.h"

namespace wydb {

Result<Transaction> GenerateTransaction(const Database* db,
                                        const std::string& name,
                                        const TxnGenOptions& options,
                                        Rng* rng) {
  if (options.entities.empty()) {
    return Status::InvalidArgument("transaction needs at least one entity");
  }
  std::vector<Step> steps;
  const int m = static_cast<int>(options.entities.size());

  // Build a random global order of the 2m steps with every Lock before its
  // Unlock (two_phase additionally forces all Locks first).
  std::vector<int> lock_pos(m), unlock_pos(m);
  if (options.two_phase) {
    std::vector<int> locks(m), unlocks(m);
    for (int i = 0; i < m; ++i) locks[i] = unlocks[i] = i;
    rng->Shuffle(&locks);
    rng->Shuffle(&unlocks);
    for (int i = 0; i < m; ++i) {
      lock_pos[locks[i]] = i;
      unlock_pos[unlocks[i]] = m + i;
    }
  } else {
    // Random interleaving: assign each entity two distinct slots.
    std::vector<int> slots(2 * m);
    for (int i = 0; i < 2 * m; ++i) slots[i] = i;
    rng->Shuffle(&slots);
    for (int i = 0; i < m; ++i) {
      int a = slots[2 * i], b = slots[2 * i + 1];
      lock_pos[i] = std::min(a, b);
      unlock_pos[i] = std::max(a, b);
    }
  }
  // Materialize steps sorted by global position.
  struct Slot {
    int pos;
    StepKind kind;
    EntityId entity;
  };
  std::vector<Slot> order;
  order.reserve(2 * m);
  for (int i = 0; i < m; ++i) {
    order.push_back({lock_pos[i], StepKind::kLock, options.entities[i]});
    order.push_back({unlock_pos[i], StepKind::kUnlock, options.entities[i]});
  }
  std::sort(order.begin(), order.end(),
            [](const Slot& a, const Slot& b) { return a.pos < b.pos; });

  // Moving a single Lock to the front (or Unlock to the back) preserves
  // every entity's L-before-U ordering.
  auto move_step = [&](StepKind kind, bool to_front) {
    auto it = std::find_if(order.begin(), order.end(), [&](const Slot& s) {
      return s.kind == kind && s.entity == options.entities[0];
    });
    Slot moved = *it;
    order.erase(it);
    if (to_front) {
      order.insert(order.begin(), moved);
    } else {
      order.push_back(moved);
    }
  };
  if (options.dominating_first) move_step(StepKind::kLock, /*to_front=*/true);
  if (options.hold_first_to_end) {
    move_step(StepKind::kUnlock, /*to_front=*/false);
  }

  // Pick the shared-mode entities. The first entity stays exclusive under
  // the latch disciplines (a shared latch blocks no one and covers
  // nothing).
  std::vector<uint8_t> is_shared(db->num_entities(), 0);
  for (int i = 0; i < m; ++i) {
    if (i == 0 && (options.dominating_first || options.hold_first_to_end)) {
      continue;
    }
    if (options.shared_fraction > 0 &&
        rng->NextBernoulli(options.shared_fraction)) {
      is_shared[options.entities[i]] = 1;
    }
  }
  if (options.shared_point_reads && !options.two_phase) {
    // Compact each shared access into an adjacent (LS, US) pair: the
    // Unlock moves to directly follow its Lock. (Skipped under two_phase:
    // the all-Locks-before-all-Unlocks arcs would cycle against the
    // site chain through an early-placed Unlock.)
    for (int i = 0; i < m; ++i) {
      EntityId e = options.entities[i];
      if (!is_shared[e]) continue;
      auto u = std::find_if(order.begin(), order.end(), [&](const Slot& s) {
        return s.kind == StepKind::kUnlock && s.entity == e;
      });
      Slot moved = *u;
      order.erase(u);
      auto l = std::find_if(order.begin(), order.end(), [&](const Slot& s) {
        return s.kind == StepKind::kLock && s.entity == e;
      });
      order.insert(l + 1, moved);
    }
  }

  steps.reserve(order.size());
  for (const Slot& s : order) {
    steps.push_back(Step{s.kind, s.entity,
                         is_shared[s.entity] ? LockMode::kShared
                                             : LockMode::kExclusive});
  }

  std::vector<std::pair<int, int>> arcs;
  const int total = static_cast<int>(steps.size());
  // Per-site chains in global order.
  std::vector<int> last_at_site(db->num_sites(), -1);
  for (int i = 0; i < total; ++i) {
    SiteId site = db->SiteOf(steps[i].entity);
    if (last_at_site[site] != -1) arcs.emplace_back(last_at_site[site], i);
    last_at_site[site] = i;
  }
  // Lock -> Unlock.
  std::vector<int> lock_step(db->num_entities(), -1);
  for (int i = 0; i < total; ++i) {
    if (steps[i].kind == StepKind::kLock) {
      lock_step[steps[i].entity] = i;
    } else {
      arcs.emplace_back(lock_step[steps[i].entity], i);
    }
  }
  // Extra forward arcs.
  for (int i = 0; i < total; ++i) {
    for (int j = i + 1; j < total; ++j) {
      if (rng->NextBernoulli(options.extra_arc_prob)) arcs.emplace_back(i, j);
    }
  }
  if (options.two_phase) {
    // Two-phase in the PARTIAL-ORDER sense: every Lock precedes every
    // Unlock. Positional phases alone are not enough — cross-site steps
    // would stay incomparable and admit non-two-phase linear extensions.
    for (int i = 0; i < total; ++i) {
      if (steps[i].kind != StepKind::kLock) continue;
      for (int j = 0; j < total; ++j) {
        if (steps[j].kind == StepKind::kUnlock) arcs.emplace_back(i, j);
      }
    }
  }
  if (options.dominating_first) {
    // The global order already puts L(entity 0) first; pin it explicitly.
    for (int i = 1; i < total; ++i) arcs.emplace_back(0, i);
  }
  if (options.hold_first_to_end) {
    // The global order now ends with U(entity 0); pin it explicitly.
    for (int i = 0; i < total - 1; ++i) arcs.emplace_back(i, total - 1);
  }

  return Transaction::Create(db, name, std::move(steps), std::move(arcs));
}

std::vector<EntityId> SampleEntities(const Database& db, int count,
                                     Rng* rng) {
  std::vector<EntityId> all(db.num_entities());
  for (EntityId e = 0; e < db.num_entities(); ++e) all[e] = e;
  rng->Shuffle(&all);
  all.resize(std::min<size_t>(all.size(), static_cast<size_t>(count)));
  return all;
}

std::unique_ptr<Database> MakeUniformDatabase(int sites,
                                              int entities_per_site) {
  auto db = std::make_unique<Database>();
  for (int s = 0; s < sites; ++s) {
    auto site = db->AddSite(StrFormat("s%d", s));
    for (int e = 0; e < entities_per_site; ++e) {
      db->AddEntity(StrFormat("e%d_%d", s, e), *site).ValueOrDie();
    }
  }
  return db;
}

}  // namespace wydb
