// Random transaction generators for tests and benchmarks.
#ifndef WYDB_GEN_TXN_GEN_H_
#define WYDB_GEN_TXN_GEN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "core/database.h"
#include "core/transaction.h"

namespace wydb {

struct TxnGenOptions {
  /// Entities this transaction accesses (chosen by the caller; determines
  /// sites implicitly through the database).
  std::vector<EntityId> entities;
  /// Probability of an extra cross-site precedence arc between randomly
  /// chosen step pairs (density of the partial order beyond the per-site
  /// chains and the Lx -> Ux arcs).
  double extra_arc_prob = 0.15;
  /// Force two-phase locking: all Locks precede all Unlocks.
  bool two_phase = false;
  /// Each entity independently becomes a SHARED (S-mode) access with this
  /// probability; the rest stay exclusive. With dominating_first the first
  /// entity always stays exclusive (a shared latch covers nothing).
  double shared_fraction = 0.0;
  /// Emit every shared access as an adjacent (LS, US) "point read": the
  /// Unlock is placed immediately after the Lock in the global order, so
  /// (with extra_arc_prob = 0 and two_phase = false) the Unlock's only
  /// predecessor is its own Lock. The S->X demotion-monotonicity property
  /// tested by the fuzz battery is only sound for such point reads
  /// (DESIGN.md §11): a long-held S lock can act as a latch when demoted
  /// to X and turn an unsafe system into a certified one.
  bool shared_point_reads = false;
  /// Force a *dominating first entity*: the first chosen entity's Lock
  /// precedes every other step (Corollary 3 condition 1).
  bool dominating_first = false;
  /// Additionally hold the first entity to the very end: its Unlock
  /// succeeds every other step. Together with dominating_first this yields
  /// the "global latch" discipline that is safe+DF by Theorem 3.
  bool hold_first_to_end = false;
};

/// Generates a random well-formed transaction over the given entities.
/// Steps at the same site are chained in a random order; cross-site arcs
/// are sampled per `extra_arc_prob` (only forward w.r.t. a random global
/// order, keeping the graph acyclic).
Result<Transaction> GenerateTransaction(const Database* db,
                                        const std::string& name,
                                        const TxnGenOptions& options,
                                        Rng* rng);

/// A random subset of `count` entities drawn from the database.
std::vector<EntityId> SampleEntities(const Database& db, int count, Rng* rng);

/// Builds a database with `sites` sites and `entities_per_site` entities
/// each, named s<k> / e<k>_<m>.
std::unique_ptr<Database> MakeUniformDatabase(int sites,
                                              int entities_per_site);

}  // namespace wydb

#endif  // WYDB_GEN_TXN_GEN_H_
