// Random transaction generators for tests and benchmarks.
#ifndef WYDB_GEN_TXN_GEN_H_
#define WYDB_GEN_TXN_GEN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "core/database.h"
#include "core/transaction.h"

namespace wydb {

struct TxnGenOptions {
  /// Entities this transaction accesses (chosen by the caller; determines
  /// sites implicitly through the database).
  std::vector<EntityId> entities;
  /// Probability of an extra cross-site precedence arc between randomly
  /// chosen step pairs (density of the partial order beyond the per-site
  /// chains and the Lx -> Ux arcs).
  double extra_arc_prob = 0.15;
  /// Force two-phase locking: all Locks precede all Unlocks.
  bool two_phase = false;
  /// Force a *dominating first entity*: the first chosen entity's Lock
  /// precedes every other step (Corollary 3 condition 1).
  bool dominating_first = false;
  /// Additionally hold the first entity to the very end: its Unlock
  /// succeeds every other step. Together with dominating_first this yields
  /// the "global latch" discipline that is safe+DF by Theorem 3.
  bool hold_first_to_end = false;
};

/// Generates a random well-formed transaction over the given entities.
/// Steps at the same site are chained in a random order; cross-site arcs
/// are sampled per `extra_arc_prob` (only forward w.r.t. a random global
/// order, keeping the graph acyclic).
Result<Transaction> GenerateTransaction(const Database* db,
                                        const std::string& name,
                                        const TxnGenOptions& options,
                                        Rng* rng);

/// A random subset of `count` entities drawn from the database.
std::vector<EntityId> SampleEntities(const Database& db, int count, Rng* rng);

/// Builds a database with `sites` sites and `entities_per_site` entities
/// each, named s<k> / e<k>_<m>.
std::unique_ptr<Database> MakeUniformDatabase(int sites,
                                              int entities_per_site);

}  // namespace wydb

#endif  // WYDB_GEN_TXN_GEN_H_
