#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

#include "analysis/store_stats.h"
#include "common/string_util.h"
#include "io/text_format.h"
#include "runtime/simulation.h"

namespace wydb {
namespace {

std::vector<std::string> Tokens(const std::string& s) {
  std::istringstream in(s);
  std::vector<std::string> out;
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

/// Splits a `key=value` request parameter.
bool SplitParam(const std::string& tok, std::string* key, std::string* value) {
  size_t eq = tok.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  *key = tok.substr(0, eq);
  *value = tok.substr(eq + 1);
  return true;
}

bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtoull(s.c_str(), &end, 10);
  return end == s.c_str() + s.size();
}

uint64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The payload line a "line %d: ..." error message points at, if any —
/// malformed requests echo the offending line back (docs/SERVE.md).
std::string OffendingLine(const std::string& message,
                          const std::string& payload) {
  if (message.rfind("line ", 0) != 0) return "";
  char* end = nullptr;
  long lineno = std::strtol(message.c_str() + 5, &end, 10);
  if (end == message.c_str() + 5 || lineno < 1) return "";
  std::istringstream in(payload);
  std::string line;
  for (long i = 0; i < lineno; ++i) {
    if (!std::getline(in, line)) return "";
  }
  return line;
}

/// Maps a cached refutation witness onto the request system through a
/// delta match: canonical slot -> entry transaction -> body-equal request
/// transaction. Fails (falling back to a fresh search) when the witness
/// touches a removed transaction or does not revalidate.
Result<SafetyViolation> MapEntryWitness(const CertificateBundle& bundle,
                                        const std::vector<int>& entry_perm,
                                        const DeltaMatch& match,
                                        const TransactionSystem& sys) {
  Schedule sched;
  sched.reserve(bundle.witness.size());
  for (const auto& [slot, node] : bundle.witness) {
    if (slot < 0 || slot >= static_cast<int>(entry_perm.size())) {
      return Status::InvalidArgument("witness slot out of range");
    }
    const int entry_txn = entry_perm[slot];
    const int request_txn = match.request_txn_of_entry[entry_txn];
    if (request_txn < 0) {
      return Status::FailedPrecondition(
          "witness touches the removed transaction");
    }
    if (node < 0 || node >= sys.txn(request_txn).num_steps()) {
      return Status::InvalidArgument("witness node out of range");
    }
    sched.push_back(GlobalNode{request_txn, node});
  }
  return ValidateViolation(sys, std::move(sched));
}

}  // namespace

Server::Server(const ServerOptions& options)
    : options_(options),
      cache_(options.cache_entries),
      shared_(std::make_unique<Shared>()) {
  shared_->latencies.reserve(512);
}

Result<Server> Server::Create(const ServerOptions& options) {
  if (options.store.encoding == StoreOptions::KeyEncoding::kCompact) {
    return Status::InvalidArgument(
        "wydb_serve rejects --store-encoding compact: compacted verdicts "
        "are probabilistic, and a verdict cache must only hold exact ones");
  }
  SafetyCheckOptions probe;
  probe.engine = options.engine;
  probe.store = options.store;
  WYDB_RETURN_IF_ERROR(ValidateStoreOptions(probe, probe.engine));
  if (options.cache_entries < 1) {
    return Status::InvalidArgument("cache capacity must be at least 1");
  }
  if (options.journal_fsync_every < 0 || options.journal_compact_slack < 0) {
    return Status::InvalidArgument("journal policy values must be >= 0");
  }

  Server server(options);
  if (!options.journal_path.empty()) {
    JournalOptions jopts;
    jopts.fsync_every = options.journal_fsync_every;
    JournalRecovery recovery;
    auto journal = Journal::Open(options.journal_path, jopts, &recovery);
    if (!journal.ok()) return journal.status();
    server.shared_->journal = std::make_unique<Journal>(std::move(*journal));
    server.shared_->stats.journal_salvaged_bytes = recovery.dropped_bytes;
    for (const std::string& payload : recovery.payloads) {
      // A record that fails the certificate fingerprint or is not
      // canonical-stable is skipped, never fatal: the journal already
      // survived the frame CRC, so this is defense in depth.
      if (server.LoadJournalRecord(payload).ok()) {
        ++server.shared_->stats.journal_recovered;
      } else {
        ++server.shared_->stats.journal_errors;
      }
    }
  }
  return server;
}

Status Server::LoadJournalRecord(const std::string& payload) {
  WYDB_ASSIGN_OR_RETURN(CertificateBundle bundle, ParseCertificate(payload));
  WYDB_ASSIGN_OR_RETURN(WorkloadSpec spec,
                        ParseWorkload(bundle.canonical_text));
  const TransactionSystem& sys = *spec.owned.system;
  WYDB_ASSIGN_OR_RETURN(SystemKey key, CanonicalSystemKey(sys));
  if (key.text != bundle.canonical_text) {
    // Witness realization requires key.text == canonical_text; an
    // incomplete key whose text is not a reparse fixpoint cannot be
    // re-served soundly, so it is dropped rather than mis-keyed.
    return Status::FailedPrecondition(
        "journaled certificate is not canonical-stable");
  }
  SystemProfile profile = ProfileOf(sys);
  cache_.Insert(std::move(key), std::move(bundle), std::move(profile));
  return Status::OK();
}

void Server::JournalVerdict(const CertificateBundle& bundle) {
  Shared& sh = *shared_;
  std::lock_guard<std::mutex> lock(sh.journal_mu);
  if (sh.journal == nullptr) return;
  Status st = sh.journal->Append(SerializeCertificate(bundle));
  if (!st.ok()) {
    // Persistence degrades, serving does not: the verdict is already in
    // the in-memory cache and on its way to the client.
    ++sh.stats.journal_errors;
    return;
  }
  ++sh.stats.journal_appends;
  if (sh.journal->records() >
      static_cast<uint64_t>(cache_.size()) +
          static_cast<uint64_t>(options_.journal_compact_slack)) {
    Status compacted = sh.journal->Compact(cache_.SerializedSnapshot());
    if (compacted.ok()) {
      ++sh.stats.journal_compactions;
    } else {
      ++sh.stats.journal_errors;
    }
  }
}

Status Server::FlushJournal() {
  Shared& sh = *shared_;
  std::lock_guard<std::mutex> lock(sh.journal_mu);
  if (sh.journal == nullptr) return Status::OK();
  return sh.journal->Sync();
}

void Server::RecordLatency(uint64_t micros) {
  constexpr size_t kRing = 512;
  Shared& sh = *shared_;
  std::lock_guard<std::mutex> lock(sh.latency_mu);
  if (sh.latencies.size() < kRing) {
    sh.latencies.push_back(micros);
  } else {
    sh.latencies[sh.latency_next % kRing] = micros;
  }
  ++sh.latency_next;
}

std::string Server::StatsLine() const {
  uint64_t p50 = 0;
  uint64_t p95 = 0;
  {
    Shared& sh = *shared_;
    std::lock_guard<std::mutex> lock(sh.latency_mu);
    if (!sh.latencies.empty()) {
      std::vector<uint64_t> sorted = sh.latencies;
      std::sort(sorted.begin(), sorted.end());
      p50 = sorted[sorted.size() / 2];
      p95 = sorted[(sorted.size() * 95) / 100 == sorted.size()
                       ? sorted.size() - 1
                       : (sorted.size() * 95) / 100];
    }
  }
  const ServerStats& s = shared_->stats;
  return StrFormat(
      "stats: requests=%llu certify=%llu simulate=%llu errors=%llu "
      "cache_hits=%llu cache_misses=%llu incremental=%llu full=%llu "
      "monotone=%llu witness_reuse=%llu delta_searches=%llu "
      "delta_skipped_tests=%llu deadline_polls=%llu runaways=%llu "
      "journal_appends=%llu journal_recovered=%llu "
      "journal_salvaged_bytes=%llu journal_compactions=%llu "
      "journal_errors=%llu cache_size=%d p50_us=%llu p95_us=%llu",
      (unsigned long long)s.requests, (unsigned long long)s.certify_requests,
      (unsigned long long)s.simulate_requests, (unsigned long long)s.errors,
      (unsigned long long)s.cache_hits, (unsigned long long)s.cache_misses,
      (unsigned long long)s.incremental_certifications,
      (unsigned long long)s.full_certifications,
      (unsigned long long)s.monotone_shortcuts,
      (unsigned long long)s.witness_reuses,
      (unsigned long long)s.delta_searches,
      (unsigned long long)s.delta_skipped_tests,
      (unsigned long long)s.deadline_polls,
      (unsigned long long)s.runaways_rejected,
      (unsigned long long)s.journal_appends,
      (unsigned long long)s.journal_recovered,
      (unsigned long long)s.journal_salvaged_bytes,
      (unsigned long long)s.journal_compactions,
      (unsigned long long)s.journal_errors, cache_.size(),
      (unsigned long long)p50, (unsigned long long)p95);
}

void Server::HandleCertify(const std::vector<std::string>& params,
                           const std::string& payload,
                           std::vector<std::string>* response) {
  const uint64_t start_us = NowMicros();
  ServerStats& stats = shared_->stats;
  auto fail = [&](const std::string& message) {
    ++stats.errors;
    response->push_back("error: " + message);
    const std::string echo = OffendingLine(message, payload);
    if (!echo.empty()) response->push_back("echo: " + echo);
  };

  uint64_t max_states = options_.max_states;
  uint64_t timeout_ms = options_.timeout_ms > 0 ? options_.timeout_ms : 0;
  for (const std::string& tok : params) {
    std::string key;
    std::string value;
    if (!SplitParam(tok, &key, &value)) {
      return fail("bad certify parameter '" + tok + "' (want key=value)");
    }
    if (key == "max_states") {
      if (!ParseU64(value, &max_states)) {
        return fail("bad max_states value '" + value + "'");
      }
    } else if (key == "timeout_ms") {
      if (!ParseU64(value, &timeout_ms)) {
        return fail("bad timeout_ms value '" + value + "'");
      }
    } else {
      return fail("unknown certify parameter '" + key + "'");
    }
  }

  // Runaway rejection: with no wall-clock budget, the state budget is
  // the only bound left, so a request may not disable it (max_states=0)
  // or raise it past the server's configured budget. With a timeout the
  // request is time-bounded regardless of states, so both are allowed.
  if (timeout_ms == 0 &&
      (max_states == 0 ||
       (options_.max_states > 0 && max_states > options_.max_states))) {
    ++stats.runaways_rejected;
    return fail(
        "runaway certify rejected: timeout_ms=0 leaves max_states as the "
        "only bound, which may not be 0 or above the server budget");
  }

  auto parsed = ParseWorkload(payload);
  if (!parsed.ok()) return fail(parsed.status().message());
  const TransactionSystem& sys = *parsed->owned.system;

  auto key = CanonicalSystemKey(sys);
  if (!key.ok()) return fail(key.status().message());

  SafetyCheckOptions base;
  base.max_states = max_states;
  base.search_threads = options_.search_threads;
  if (timeout_ms > 0) {
    base.deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms);
  }

  auto respond = [&](const CertificateBundle& bundle, const char* source,
                     const SafetyViolation* violation) {
    response->push_back(StrFormat(
        "verdict: certified=%s source=%s states=%llu elapsed_us=%llu "
        "key=%016llx",
        bundle.certified ? "yes" : "no", source,
        (unsigned long long)bundle.states_visited,
        (unsigned long long)(NowMicros() - start_us),
        (unsigned long long)key->hash));
    if (violation != nullptr) {
      response->push_back("witness: " +
                          ScheduleToString(sys, violation->schedule));
      std::string cycle = "cycle:";
      for (int t : violation->txn_cycle) cycle += " " + sys.txn(t).name();
      response->push_back(cycle);
    }
  };

  // 1. Exact canonical hit: the cached verdict transfers through the
  // isomorphism; a refutation witness is remapped and countersigned.
  if (auto hit = cache_.Find(*key)) {
    if (hit->certified) {
      ++stats.cache_hits;
      respond(*hit, "cache", nullptr);
      return;
    }
    auto violation = RealizeWitness(*hit, *key, sys);
    if (violation.ok()) {
      ++stats.cache_hits;
      respond(*hit, "cache", &*violation);
      return;
    }
    // A cached witness that fails to countersign falls through to a
    // fresh search rather than being served.
  }
  ++stats.cache_misses;

  const SystemProfile profile = ProfileOf(sys);
  auto finish = [&](const SafetyReport& report, const char* source) {
    stats.deadline_polls += report.deadline_polls;
    CertificateBundle bundle = MakeCertificate(*key, report);
    respond(bundle, source,
            report.violation.has_value() ? &*report.violation : nullptr);
    cache_.Insert(std::move(*key), bundle, profile);
    JournalVerdict(bundle);
  };

  // 2. One transaction away from a cached system: incremental paths.
  if (auto match = cache_.FindDelta(profile)) {
    const CertificateBundle& entry_bundle = match->bundle;
    const std::vector<int>& entry_perm = match->entry_txn_perm;

    if (match->removed && entry_bundle.certified) {
      // Safety and deadlock-freedom are monotone under transaction
      // removal: every partial schedule of the subsystem is one of the
      // certified supersystem (docs/SERVE.md).
      ++stats.incremental_certifications;
      ++stats.monotone_shortcuts;
      SafetyReport derived;
      derived.holds = true;
      finish(derived, "incremental");
      return;
    }
    if (!entry_bundle.certified) {
      // Refuted neighbor: the cached witness transfers verbatim when it
      // avoids a removed transaction (removal) or unconditionally
      // (addition — a violation survives adding transactions).
      auto violation = MapEntryWitness(entry_bundle, entry_perm, *match, sys);
      if (violation.ok()) {
        ++stats.incremental_certifications;
        ++stats.witness_reuses;
        SafetyReport derived;
        derived.holds = false;
        derived.violation = std::move(*violation);
        finish(derived, "incremental");
        return;
      }
      // Witness didn't transfer (e.g. it uses the removed transaction):
      // fall through to a full search.
    } else if (match->added) {
      // Certified base plus one transaction: delta-gated search. Cycle
      // tests are skipped while the new transaction is idle — sound
      // because the base system is certified (docs/SERVE.md).
      SafetyCheckOptions opts = base;
      opts.engine = SearchEngine::kIncremental;
      opts.delta_txn = match->delta_index;
      auto report = CheckSafeAndDeadlockFree(sys, opts);
      if (!report.ok()) return fail(report.status().message());
      ++stats.incremental_certifications;
      ++stats.delta_searches;
      stats.delta_skipped_tests += report->delta_skipped_tests;
      finish(*report, "incremental");
      return;
    }
  }

  // 3. Full certification.
  SafetyCheckOptions opts = base;
  opts.engine = options_.engine;
  if (opts.engine == SearchEngine::kParallelSharded ||
      opts.engine == SearchEngine::kReduced) {
    opts.store = options_.store;
  }
  auto report = CheckSafeAndDeadlockFree(sys, opts);
  if (!report.ok()) return fail(report.status().message());
  ++stats.full_certifications;
  finish(*report, "full");
}

void Server::HandleSimulate(const std::vector<std::string>& params,
                            const std::string& payload,
                            std::vector<std::string>* response) {
  ServerStats& stats = shared_->stats;
  auto fail = [&](const std::string& message) {
    ++stats.errors;
    response->push_back("error: " + message);
    const std::string echo = OffendingLine(message, payload);
    if (!echo.empty()) response->push_back("echo: " + echo);
  };

  ConflictPolicy policy = ConflictPolicy::kBlock;
  uint64_t runs = 20;
  uint64_t seed = 1;
  for (const std::string& tok : params) {
    std::string key;
    std::string value;
    if (!SplitParam(tok, &key, &value)) {
      return fail("bad simulate parameter '" + tok + "' (want key=value)");
    }
    if (key == "policy") {
      if (!ParseConflictPolicy(value, &policy)) {
        return fail("unknown policy '" + value + "'");
      }
    } else if (key == "runs") {
      if (!ParseU64(value, &runs) || runs == 0 || runs > 10'000) {
        return fail("bad runs value '" + value + "'");
      }
    } else if (key == "seed") {
      if (!ParseU64(value, &seed)) {
        return fail("bad seed value '" + value + "'");
      }
    } else {
      return fail("unknown simulate parameter '" + key + "'");
    }
  }

  auto parsed = ParseWorkload(payload);
  if (!parsed.ok()) return fail(parsed.status().message());
  const TransactionSystem& sys = *parsed->owned.system;

  SimOptions opts;
  opts.policy = policy;
  opts.seed = seed;
  if (parsed->has_latency) opts.latency = parsed->latency;
  opts.placement = parsed->owned.placement.get();
  auto agg = RunMany(sys, opts, static_cast<int>(runs));
  if (!agg.ok()) return fail(agg.status().message());
  response->push_back(StrFormat(
      "sim: policy=%s runs=%d committed=%d deadlocked=%d "
      "budget_exhausted=%d gave_up=%d aborts=%llu messages=%llu "
      "serializable=%s",
      ConflictPolicyName(policy), agg->runs, agg->committed_runs,
      agg->deadlocked_runs, agg->budget_exhausted_runs, agg->gave_up_runs,
      (unsigned long long)agg->total_aborts,
      (unsigned long long)agg->total_messages,
      agg->all_histories_serializable ? "yes" : "no"));
}

Status Server::Preload(const std::string& text) {
  WYDB_ASSIGN_OR_RETURN(WorkloadSpec spec, ParseWorkload(text));
  const TransactionSystem& sys = *spec.owned.system;
  WYDB_ASSIGN_OR_RETURN(SystemKey key, CanonicalSystemKey(sys));
  if (cache_.Find(key).has_value()) return Status::OK();
  SafetyCheckOptions opts;
  opts.max_states = options_.max_states;
  opts.engine = options_.engine;
  opts.search_threads = options_.search_threads;
  if (opts.engine == SearchEngine::kParallelSharded ||
      opts.engine == SearchEngine::kReduced) {
    opts.store = options_.store;
  }
  WYDB_ASSIGN_OR_RETURN(SafetyReport report, CheckSafeAndDeadlockFree(sys, opts));
  CertificateBundle bundle = MakeCertificate(key, report);
  SystemProfile profile = ProfileOf(sys);
  cache_.Insert(std::move(key), bundle, std::move(profile));
  JournalVerdict(bundle);
  return Status::OK();
}

void Server::ServeStream(std::istream& in, std::ostream& out) {
  ServerStats& stats = shared_->stats;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::vector<std::string> toks = Tokens(line);
    if (toks.empty()) continue;
    const std::string verb = toks[0];
    const std::vector<std::string> params(toks.begin() + 1, toks.end());

    if (verb == "quit") {
      ++stats.requests;
      out << "bye\n.\n" << std::flush;
      return;
    }
    if (verb == "stats") {
      ++stats.requests;
      out << StatsLine() << "\n.\n" << std::flush;
      continue;
    }
    if (verb == "certify" || verb == "simulate") {
      std::string payload;
      bool terminated = false;
      std::string pl;
      while (std::getline(in, pl)) {
        if (!pl.empty() && pl.back() == '\r') pl.pop_back();
        if (pl == "end") {
          terminated = true;
          break;
        }
        payload += pl + "\n";
      }
      ++stats.requests;
      if (!terminated) {
        ++stats.errors;
        out << "error: unexpected EOF before 'end'\n.\n" << std::flush;
        return;
      }
      const uint64_t start_us = NowMicros();
      std::vector<std::string> response;
      if (verb == "certify") {
        ++stats.certify_requests;
        HandleCertify(params, payload, &response);
      } else {
        ++stats.simulate_requests;
        HandleSimulate(params, payload, &response);
      }
      RecordLatency(NowMicros() - start_us);
      for (const std::string& r : response) out << r << "\n";
      out << ".\n" << std::flush;
      continue;
    }
    ++stats.requests;
    ++stats.errors;
    out << "error: unknown verb '" << verb << "'\n.\n" << std::flush;
  }
}

}  // namespace wydb
