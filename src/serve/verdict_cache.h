// Verdict cache of the analysis server (docs/SERVE.md): canonical-key
// exact lookup plus single-transaction delta matching against cached
// systems, so resubmissions — permuted, renamed, or one transaction away
// — reuse prior certification work.
#ifndef WYDB_SERVE_VERDICT_CACHE_H_
#define WYDB_SERVE_VERDICT_CACHE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/certificate.h"
#include "core/canonical.h"
#include "core/system.h"

namespace wydb {

/// The textual shape of a system under its *own* names: the serialized
/// site/entity header plus each transaction's serialized body (name
/// stripped). Used for delta matching, which is purely textual — it fires
/// when a request keeps a cached system's entity names and moves by one
/// transaction. Renamed resubmissions are the canonical key's job.
struct SystemProfile {
  std::string header;
  std::vector<std::string> bodies;  ///< Indexed by transaction.
  std::vector<std::string> names;   ///< Transaction names, same index.
};

SystemProfile ProfileOf(const TransactionSystem& sys);

struct CacheEntry {
  SystemKey key;
  CertificateBundle bundle;
  SystemProfile profile;
  uint64_t last_used = 0;
};

/// A request exactly one transaction away from a cache entry.
struct DeltaMatch {
  const CacheEntry* entry = nullptr;
  bool added = false;    ///< Request = entry plus one transaction.
  bool removed = false;  ///< Request = entry minus one transaction.
  /// added: request index of the extra transaction.
  /// removed: entry index of the missing transaction.
  int delta_index = -1;
  /// Entry transaction index -> request transaction index with an equal
  /// body (-1 for the removed one). Transactions with equal bodies are
  /// structurally interchangeable, so any body-respecting matching maps
  /// witnesses correctly.
  std::vector<int> request_txn_of_entry;
};

class VerdictCache {
 public:
  explicit VerdictCache(int capacity) : capacity_(capacity) {}

  /// Exact canonical lookup (hash, then text); bumps LRU on hit. The
  /// returned pointer (like DeltaMatch::entry) is invalidated by the next
  /// Insert — consume it before inserting.
  const CacheEntry* Find(const SystemKey& key);

  /// Most-recently-used entry exactly one transaction away from the
  /// request, if any.
  std::optional<DeltaMatch> FindDelta(const SystemProfile& request);

  /// Inserts (or refreshes) an entry, evicting the least recently used
  /// one at capacity.
  void Insert(SystemKey key, CertificateBundle bundle, SystemProfile profile);

  int size() const { return static_cast<int>(entries_.size()); }

 private:
  std::vector<CacheEntry> entries_;
  uint64_t tick_ = 0;
  int capacity_;
};

}  // namespace wydb

#endif  // WYDB_SERVE_VERDICT_CACHE_H_
