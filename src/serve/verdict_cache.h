// Verdict cache of the analysis server (docs/SERVE.md): canonical-key
// exact lookup plus single-transaction delta matching against cached
// systems, so resubmissions — permuted, renamed, or one transaction away
// — reuse prior certification work.
//
// The cache is internally synchronized with a shared mutex: lookups
// (Find/FindDelta/Snapshot) run concurrently under shared locks — LRU
// bumps go through per-entry atomics — while Insert takes the lock
// exclusively. Lookups therefore return self-contained copies rather
// than pointers into the entry table, so a hit stays valid however many
// sessions insert behind it.
#ifndef WYDB_SERVE_VERDICT_CACHE_H_
#define WYDB_SERVE_VERDICT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "analysis/certificate.h"
#include "core/canonical.h"
#include "core/system.h"

namespace wydb {

/// The textual shape of a system under its *own* names: the serialized
/// site/entity header plus each transaction's serialized body (name
/// stripped). Used for delta matching, which is purely textual — it fires
/// when a request keeps a cached system's entity names and moves by one
/// transaction. Renamed resubmissions are the canonical key's job.
struct SystemProfile {
  std::string header;
  std::vector<std::string> bodies;  ///< Indexed by transaction.
  std::vector<std::string> names;   ///< Transaction names, same index.
};

SystemProfile ProfileOf(const TransactionSystem& sys);

/// A request exactly one transaction away from a cached system. Carries
/// copies of the matched entry's bundle and transaction permutation, so
/// it outlives any concurrent cache mutation.
struct DeltaMatch {
  CertificateBundle bundle;        ///< The matched entry's verdict.
  std::vector<int> entry_txn_perm; ///< The matched entry's key.txn_perm.
  bool added = false;    ///< Request = entry plus one transaction.
  bool removed = false;  ///< Request = entry minus one transaction.
  /// added: request index of the extra transaction.
  /// removed: entry index of the missing transaction.
  int delta_index = -1;
  /// Entry transaction index -> request transaction index with an equal
  /// body (-1 for the removed one). Transactions with equal bodies are
  /// structurally interchangeable, so any body-respecting matching maps
  /// witnesses correctly.
  std::vector<int> request_txn_of_entry;
};

class VerdictCache {
 public:
  explicit VerdictCache(int capacity)
      : state_(std::make_unique<State>()), capacity_(capacity) {}

  /// Exact canonical lookup (hash, then text); bumps LRU on hit.
  /// Returns a copy of the cached bundle.
  std::optional<CertificateBundle> Find(const SystemKey& key);

  /// Most-recently-used entry exactly one transaction away from the
  /// request, if any.
  std::optional<DeltaMatch> FindDelta(const SystemProfile& request);

  /// Inserts (or refreshes) an entry, evicting the least recently used
  /// one at capacity.
  void Insert(SystemKey key, CertificateBundle bundle, SystemProfile profile);

  /// Serialized certificates of every entry, least recently used first
  /// — the journal-compaction snapshot (replaying it in order leaves
  /// the most recently used entries freshest).
  std::vector<std::string> SerializedSnapshot() const;

  int size() const;

 private:
  struct Entry {
    SystemKey key;
    CertificateBundle bundle;
    SystemProfile profile;
    /// Atomic so shared-lock readers may bump it; moves happen only
    /// under the exclusive lock.
    std::atomic<uint64_t> last_used{0};

    Entry() = default;
    Entry(Entry&& o) noexcept
        : key(std::move(o.key)),
          bundle(std::move(o.bundle)),
          profile(std::move(o.profile)),
          last_used(o.last_used.load(std::memory_order_relaxed)) {}
    Entry& operator=(Entry&& o) noexcept {
      key = std::move(o.key);
      bundle = std::move(o.bundle);
      profile = std::move(o.profile);
      last_used.store(o.last_used.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
      return *this;
    }
  };

  /// Heap-held so the cache (and the Server around it) stays movable.
  struct State {
    mutable std::shared_mutex mu;
    std::vector<Entry> entries;
    std::atomic<uint64_t> tick{0};
  };

  std::unique_ptr<State> state_;
  int capacity_;
};

}  // namespace wydb

#endif  // WYDB_SERVE_VERDICT_CACHE_H_
