#include "serve/journal.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/hash_util.h"

namespace wydb {
namespace {

constexpr char kMagic[4] = {'W', 'Y', 'J', '1'};
constexpr size_t kHeaderBytes = 12;  // magic + u32 len + u32 crc.
/// A single serialized certificate is a few KiB; anything near this
/// bound is a corrupt length field, not a record.
constexpr uint32_t kMaxPayloadBytes = 1u << 30;

void PutU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

uint32_t GetU32(const char* p) {
  const unsigned char* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(u[0]) | (static_cast<uint32_t>(u[1]) << 8) |
         (static_cast<uint32_t>(u[2]) << 16) |
         (static_cast<uint32_t>(u[3]) << 24);
}

/// CRC over the length field and the payload, so a flipped length bit
/// is caught even when the (garbage) length still lands in bounds.
uint32_t RecordCrc(uint32_t len, const char* payload) {
  char len_le[4];
  len_le[0] = static_cast<char>(len & 0xFF);
  len_le[1] = static_cast<char>((len >> 8) & 0xFF);
  len_le[2] = static_cast<char>((len >> 16) & 0xFF);
  len_le[3] = static_cast<char>((len >> 24) & 0xFF);
  uint32_t crc = Crc32(len_le, sizeof(len_le));
  return Crc32(payload, len, crc);
}

Status Errno(const char* what) {
  return Status::Internal(std::string("journal ") + what + ": " +
                          std::strerror(errno));
}

}  // namespace

std::string FrameJournalRecord(const std::string& payload) {
  std::string rec;
  rec.reserve(kHeaderBytes + payload.size());
  rec.append(kMagic, sizeof(kMagic));
  const uint32_t len = static_cast<uint32_t>(payload.size());
  PutU32(&rec, len);
  PutU32(&rec, RecordCrc(len, payload.data()));
  rec += payload;
  return rec;
}

JournalRecovery ScanJournalImage(const std::string& data) {
  JournalRecovery out;
  size_t pos = 0;
  while (data.size() - pos >= kHeaderBytes) {
    const char* p = data.data() + pos;
    if (std::memcmp(p, kMagic, sizeof(kMagic)) != 0) break;
    const uint32_t len = GetU32(p + 4);
    const uint32_t crc = GetU32(p + 8);
    if (len > kMaxPayloadBytes || len > data.size() - pos - kHeaderBytes) {
      break;  // Torn tail: the record's bytes never made it to disk.
    }
    if (RecordCrc(len, p + kHeaderBytes) != crc) break;
    out.payloads.emplace_back(p + kHeaderBytes, len);
    pos += kHeaderBytes + len;
  }
  out.valid_bytes = pos;
  out.dropped_bytes = data.size() - pos;
  return out;
}

Result<Journal> Journal::Open(std::string path, const JournalOptions& options,
                              JournalRecovery* recovery) {
  int fd = -1;
  do {
    fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return Errno("open");

  std::string image;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Errno("read");
    }
    if (n == 0) break;
    image.append(buf, static_cast<size_t>(n));
  }

  JournalRecovery rec = ScanJournalImage(image);
  if (rec.dropped_bytes > 0) {
    // Salvage: drop the torn/corrupt tail so appends extend a file whose
    // every byte is part of a checksummed record.
    if (::ftruncate(fd, static_cast<off_t>(rec.valid_bytes)) != 0) {
      ::close(fd);
      return Errno("ftruncate");
    }
  }
  if (::lseek(fd, static_cast<off_t>(rec.valid_bytes), SEEK_SET) < 0) {
    ::close(fd);
    return Errno("lseek");
  }

  Journal j(std::move(path), options, fd, rec.valid_bytes,
            rec.payloads.size());
  if (recovery != nullptr) *recovery = std::move(rec);
  return j;
}

Journal::Journal(std::string path, const JournalOptions& options, int fd,
                 uint64_t valid_bytes, uint64_t records)
    : path_(std::move(path)),
      options_(options),
      fd_(fd),
      bytes_(valid_bytes),
      records_(records) {}

Journal::~Journal() {
  if (fd_ >= 0) {
    if (unsynced_appends_ > 0 && !failed_) ::fsync(fd_);
    ::close(fd_);
  }
}

Journal::Journal(Journal&& other) noexcept
    : path_(std::move(other.path_)),
      options_(other.options_),
      fd_(other.fd_),
      bytes_(other.bytes_),
      records_(other.records_),
      unsynced_appends_(other.unsynced_appends_),
      failed_(other.failed_),
      injector_(other.injector_) {
  other.fd_ = -1;
}

Journal& Journal::operator=(Journal&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    path_ = std::move(other.path_);
    options_ = other.options_;
    fd_ = other.fd_;
    bytes_ = other.bytes_;
    records_ = other.records_;
    unsynced_appends_ = other.unsynced_appends_;
    failed_ = other.failed_;
    injector_ = other.injector_;
    other.fd_ = -1;
  }
  return *this;
}

Status Journal::WriteAll(int fd, const char* data, size_t len) {
  size_t limit = len;
  bool inject_fail = false;
  if (injector_ != nullptr && injector_->Tick()) {
    switch (injector_->fault) {
      case FaultInjector::Fault::kFailWrite:
        return Status::Internal("journal write: injected I/O error");
      case FaultInjector::Fault::kShortWrite:
        limit = len / 2;  // Persist a torn half, then report failure.
        inject_fail = true;
        break;
      default:
        break;
    }
  }
  size_t done = 0;
  while (done < limit) {
    ssize_t n = ::write(fd, data + done, limit - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write");
    }
    done += static_cast<size_t>(n);
  }
  if (inject_fail) {
    return Status::Internal("journal write: injected short write");
  }
  return Status::OK();
}

Status Journal::FsyncFd(int fd) {
  if (injector_ != nullptr && injector_->Tick() &&
      injector_->fault == FaultInjector::Fault::kFailFsync) {
    return Status::Internal("journal fsync: injected I/O error");
  }
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return Errno("fsync");
  return Status::OK();
}

Status Journal::Append(const std::string& payload) {
  if (fd_ < 0 || failed_) {
    return Status::FailedPrecondition("journal is closed after an I/O error");
  }
  const std::string rec = FrameJournalRecord(payload);
  Status write = WriteAll(fd_, rec.data(), rec.size());
  if (!write.ok()) {
    // Roll the file back to the last good record so a partial frame
    // can't strand every later append behind an unparseable middle.
    if (::ftruncate(fd_, static_cast<off_t>(bytes_)) != 0 ||
        ::lseek(fd_, static_cast<off_t>(bytes_), SEEK_SET) < 0) {
      failed_ = true;
    }
    return write;
  }
  bytes_ += rec.size();
  ++records_;
  ++unsynced_appends_;
  if (options_.fsync_every > 0 &&
      unsynced_appends_ >= static_cast<uint64_t>(options_.fsync_every)) {
    return Sync();
  }
  return Status::OK();
}

Status Journal::Sync() {
  if (fd_ < 0 || failed_) {
    return Status::FailedPrecondition("journal is closed after an I/O error");
  }
  if (unsynced_appends_ == 0) return Status::OK();
  Status st = FsyncFd(fd_);
  if (st.ok()) unsynced_appends_ = 0;
  return st;
}

Status Journal::Compact(const std::vector<std::string>& payloads) {
  if (fd_ < 0 || failed_) {
    return Status::FailedPrecondition("journal is closed after an I/O error");
  }
  const std::string tmp_path = path_ + ".tmp";
  int tmp = -1;
  do {
    tmp = ::open(tmp_path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC,
                 0644);
  } while (tmp < 0 && errno == EINTR);
  if (tmp < 0) return Errno("open tmp");

  uint64_t tmp_bytes = 0;
  for (const std::string& payload : payloads) {
    const std::string rec = FrameJournalRecord(payload);
    Status write = WriteAll(tmp, rec.data(), rec.size());
    if (!write.ok()) {
      ::close(tmp);
      ::unlink(tmp_path.c_str());
      return write;
    }
    tmp_bytes += rec.size();
  }
  Status sync = FsyncFd(tmp);
  if (!sync.ok()) {
    ::close(tmp);
    ::unlink(tmp_path.c_str());
    return sync;
  }
  // rename() swaps the directory entry atomically: a crash leaves either
  // the old journal or the complete snapshot, never a mix. The directory
  // fsync makes the swap itself durable.
  if (::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    ::close(tmp);
    ::unlink(tmp_path.c_str());
    return Errno("rename");
  }
  std::string dir = ".";
  size_t slash = path_.find_last_of('/');
  if (slash != std::string::npos) dir = path_.substr(0, slash + 1);
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    ::fsync(dfd);  // Best-effort: some filesystems refuse directory fsync.
    ::close(dfd);
  }
  ::close(fd_);  // The old inode; tmp now *is* the journal.
  fd_ = tmp;
  bytes_ = tmp_bytes;
  records_ = payloads.size();
  unsynced_appends_ = 0;
  return Status::OK();
}

}  // namespace wydb
