#include "serve/verdict_cache.h"

#include <algorithm>
#include <map>
#include <utility>

#include "io/text_format.h"

namespace wydb {

SystemProfile ProfileOf(const TransactionSystem& sys) {
  SystemProfile p;
  const std::string raw = SerializeSystem(sys);
  size_t pos = 0;
  while (pos < raw.size()) {
    size_t eol = raw.find('\n', pos);
    std::string line = raw.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.rfind("txn ", 0) == 0) {
      p.bodies.push_back(line.substr(line.find(':') + 1));
    } else {
      p.header += line + "\n";
    }
  }
  for (int t = 0; t < sys.num_transactions(); ++t) {
    p.names.push_back(sys.txn(t).name());
  }
  return p;
}

namespace {

std::optional<DeltaMatch> MatchOne(const CacheEntry& entry,
                                   const SystemProfile& request) {
  const SystemProfile& cached = entry.profile;
  if (cached.header != request.header) return std::nullopt;
  const int ne = static_cast<int>(cached.bodies.size());
  const int nr = static_cast<int>(request.bodies.size());
  if (nr - ne != 1 && ne - nr != 1) return std::nullopt;

  std::map<std::string, std::vector<int>> by_body;
  for (int i = 0; i < nr; ++i) by_body[request.bodies[i]].push_back(i);

  DeltaMatch m;
  m.entry = &entry;
  m.request_txn_of_entry.assign(ne, -1);
  std::vector<int> unmatched_entry;
  int matched = 0;
  for (int i = 0; i < ne; ++i) {
    auto it = by_body.find(cached.bodies[i]);
    if (it == by_body.end() || it->second.empty()) {
      unmatched_entry.push_back(i);
      continue;
    }
    m.request_txn_of_entry[i] = it->second.back();
    it->second.pop_back();
    ++matched;
  }
  if (nr == ne + 1) {
    if (!unmatched_entry.empty() || matched != ne) return std::nullopt;
    for (const auto& [body, left] : by_body) {
      if (!left.empty()) m.delta_index = left.front();
    }
    m.added = true;
  } else {
    if (unmatched_entry.size() != 1 || matched != nr) return std::nullopt;
    m.delta_index = unmatched_entry[0];
    m.removed = true;
  }
  return m;
}

}  // namespace

const CacheEntry* VerdictCache::Find(const SystemKey& key) {
  for (CacheEntry& e : entries_) {
    if (e.key.hash == key.hash && e.key.text == key.text) {
      e.last_used = ++tick_;
      return &e;
    }
  }
  return nullptr;
}

std::optional<DeltaMatch> VerdictCache::FindDelta(
    const SystemProfile& request) {
  const CacheEntry* best = nullptr;
  std::optional<DeltaMatch> best_match;
  for (const CacheEntry& e : entries_) {
    if (best != nullptr && e.last_used < best->last_used) continue;
    std::optional<DeltaMatch> m = MatchOne(e, request);
    if (m.has_value()) {
      best = &e;
      best_match = std::move(m);
    }
  }
  return best_match;
}

void VerdictCache::Insert(SystemKey key, CertificateBundle bundle,
                          SystemProfile profile) {
  for (CacheEntry& e : entries_) {
    if (e.key.hash == key.hash && e.key.text == key.text) {
      e.bundle = std::move(bundle);
      e.profile = std::move(profile);
      e.last_used = ++tick_;
      return;
    }
  }
  if (capacity_ > 0 && static_cast<int>(entries_.size()) >= capacity_) {
    auto lru = std::min_element(entries_.begin(), entries_.end(),
                                [](const CacheEntry& a, const CacheEntry& b) {
                                  return a.last_used < b.last_used;
                                });
    entries_.erase(lru);
  }
  CacheEntry e;
  e.key = std::move(key);
  e.bundle = std::move(bundle);
  e.profile = std::move(profile);
  e.last_used = ++tick_;
  entries_.push_back(std::move(e));
}

}  // namespace wydb
