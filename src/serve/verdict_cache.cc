#include "serve/verdict_cache.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <utility>

#include "io/text_format.h"

namespace wydb {

SystemProfile ProfileOf(const TransactionSystem& sys) {
  SystemProfile p;
  const std::string raw = SerializeSystem(sys);
  size_t pos = 0;
  while (pos < raw.size()) {
    size_t eol = raw.find('\n', pos);
    std::string line = raw.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.rfind("txn ", 0) == 0) {
      p.bodies.push_back(line.substr(line.find(':') + 1));
    } else {
      p.header += line + "\n";
    }
  }
  for (int t = 0; t < sys.num_transactions(); ++t) {
    p.names.push_back(sys.txn(t).name());
  }
  return p;
}

namespace {

/// Match skeleton against one entry; the winning candidate's bundle and
/// permutation are copied out after the scan.
struct CandidateMatch {
  bool added = false;
  bool removed = false;
  int delta_index = -1;
  std::vector<int> request_txn_of_entry;
};

std::optional<CandidateMatch> MatchOne(const SystemProfile& cached,
                                       const SystemProfile& request) {
  if (cached.header != request.header) return std::nullopt;
  const int ne = static_cast<int>(cached.bodies.size());
  const int nr = static_cast<int>(request.bodies.size());
  if (nr - ne != 1 && ne - nr != 1) return std::nullopt;

  std::map<std::string, std::vector<int>> by_body;
  for (int i = 0; i < nr; ++i) by_body[request.bodies[i]].push_back(i);

  CandidateMatch m;
  m.request_txn_of_entry.assign(ne, -1);
  std::vector<int> unmatched_entry;
  int matched = 0;
  for (int i = 0; i < ne; ++i) {
    auto it = by_body.find(cached.bodies[i]);
    if (it == by_body.end() || it->second.empty()) {
      unmatched_entry.push_back(i);
      continue;
    }
    m.request_txn_of_entry[i] = it->second.back();
    it->second.pop_back();
    ++matched;
  }
  if (nr == ne + 1) {
    if (!unmatched_entry.empty() || matched != ne) return std::nullopt;
    for (const auto& [body, left] : by_body) {
      if (!left.empty()) m.delta_index = left.front();
    }
    m.added = true;
  } else {
    if (unmatched_entry.size() != 1 || matched != nr) return std::nullopt;
    m.delta_index = unmatched_entry[0];
    m.removed = true;
  }
  return m;
}

}  // namespace

std::optional<CertificateBundle> VerdictCache::Find(const SystemKey& key) {
  std::shared_lock<std::shared_mutex> lock(state_->mu);
  for (Entry& e : state_->entries) {
    if (e.key.hash == key.hash && e.key.text == key.text) {
      e.last_used.store(
          state_->tick.fetch_add(1, std::memory_order_relaxed) + 1,
          std::memory_order_relaxed);
      return e.bundle;
    }
  }
  return std::nullopt;
}

std::optional<DeltaMatch> VerdictCache::FindDelta(
    const SystemProfile& request) {
  std::shared_lock<std::shared_mutex> lock(state_->mu);
  const Entry* best = nullptr;
  uint64_t best_used = 0;
  std::optional<CandidateMatch> best_match;
  for (const Entry& e : state_->entries) {
    const uint64_t used = e.last_used.load(std::memory_order_relaxed);
    if (best != nullptr && used < best_used) continue;
    std::optional<CandidateMatch> m = MatchOne(e.profile, request);
    if (m.has_value()) {
      best = &e;
      best_used = used;
      best_match = std::move(m);
    }
  }
  if (best == nullptr) return std::nullopt;
  DeltaMatch out;
  out.bundle = best->bundle;
  out.entry_txn_perm = best->key.txn_perm;
  out.added = best_match->added;
  out.removed = best_match->removed;
  out.delta_index = best_match->delta_index;
  out.request_txn_of_entry = std::move(best_match->request_txn_of_entry);
  return out;
}

void VerdictCache::Insert(SystemKey key, CertificateBundle bundle,
                          SystemProfile profile) {
  std::unique_lock<std::shared_mutex> lock(state_->mu);
  const uint64_t now = state_->tick.fetch_add(1, std::memory_order_relaxed) + 1;
  for (Entry& e : state_->entries) {
    if (e.key.hash == key.hash && e.key.text == key.text) {
      e.bundle = std::move(bundle);
      e.profile = std::move(profile);
      e.last_used.store(now, std::memory_order_relaxed);
      return;
    }
  }
  if (capacity_ > 0 &&
      static_cast<int>(state_->entries.size()) >= capacity_) {
    auto lru = std::min_element(
        state_->entries.begin(), state_->entries.end(),
        [](const Entry& a, const Entry& b) {
          return a.last_used.load(std::memory_order_relaxed) <
                 b.last_used.load(std::memory_order_relaxed);
        });
    state_->entries.erase(lru);
  }
  Entry e;
  e.key = std::move(key);
  e.bundle = std::move(bundle);
  e.profile = std::move(profile);
  e.last_used.store(now, std::memory_order_relaxed);
  state_->entries.push_back(std::move(e));
}

std::vector<std::string> VerdictCache::SerializedSnapshot() const {
  std::shared_lock<std::shared_mutex> lock(state_->mu);
  std::vector<const Entry*> order;
  order.reserve(state_->entries.size());
  for (const Entry& e : state_->entries) order.push_back(&e);
  std::sort(order.begin(), order.end(), [](const Entry* a, const Entry* b) {
    return a->last_used.load(std::memory_order_relaxed) <
           b->last_used.load(std::memory_order_relaxed);
  });
  std::vector<std::string> out;
  out.reserve(order.size());
  for (const Entry* e : order) out.push_back(SerializeCertificate(e->bundle));
  return out;
}

int VerdictCache::size() const {
  std::shared_lock<std::shared_mutex> lock(state_->mu);
  return static_cast<int>(state_->entries.size());
}

}  // namespace wydb
