// Long-running analysis server (docs/SERVE.md): certify / simulate /
// stats / quit over a line protocol, with a canonical-key verdict cache,
// single-transaction incremental recertification, per-request resource
// budgets, and malformed-request isolation (one bad request never kills
// the stream).
#ifndef WYDB_SERVE_SERVER_H_
#define WYDB_SERVE_SERVER_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/safety_checker.h"
#include "common/status.h"
#include "serve/verdict_cache.h"

namespace wydb {

struct ServerOptions {
  /// Per-request state budget for certifications (0 = unbounded).
  uint64_t max_states = 5'000'000;
  /// Default per-request wall-clock timeout in ms (0 = none). A request
  /// may lower or raise its own with `timeout_ms=N`.
  int timeout_ms = 0;
  /// Verdict-cache capacity, in systems.
  int cache_entries = 128;
  /// Engine for full certifications (incremental recertification always
  /// uses kIncremental, where the delta gate lives).
  SearchEngine engine = SearchEngine::kIncremental;
  int search_threads = 0;
  /// Store memory mode for full runs on the sharded engines (DESIGN.md
  /// §9). kCompact is rejected at startup: compacted verdicts are not
  /// exact, and a serving cache must never launder a probabilistic
  /// refutation into a certificate.
  StoreOptions store;
};

struct ServerStats {
  uint64_t requests = 0;
  uint64_t certify_requests = 0;
  uint64_t simulate_requests = 0;
  uint64_t errors = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// Certifications answered without a full search: monotone shortcuts,
  /// witness reuses, and delta-gated searches.
  uint64_t incremental_certifications = 0;
  uint64_t full_certifications = 0;
  uint64_t monotone_shortcuts = 0;
  uint64_t witness_reuses = 0;
  uint64_t delta_searches = 0;
  /// Cycle tests elided by the delta gate, summed over delta searches.
  uint64_t delta_skipped_tests = 0;
};

class Server {
 public:
  /// Validates options (e.g. rejects kCompact).
  static Result<Server> Create(const ServerOptions& options);

  /// Serves requests from `in` until EOF or `quit`. Every response —
  /// including errors — is terminated by a lone '.' line, and no request
  /// terminates the loop except `quit`/EOF.
  void ServeStream(std::istream& in, std::ostream& out);

  /// Certifies `text` (a .wydb workload) and caches the result, as a
  /// `certify` request would; used by --preload and tests.
  Status Preload(const std::string& text);

  /// The greppable one-line stats rendering served for `stats`.
  std::string StatsLine() const;

  const ServerStats& stats() const { return stats_; }

 private:
  explicit Server(const ServerOptions& options);

  /// Appends the response lines for one certify request (never fails:
  /// failures become `error:` lines and count in stats_.errors).
  void HandleCertify(const std::vector<std::string>& params,
                     const std::string& payload,
                     std::vector<std::string>* response);
  void HandleSimulate(const std::vector<std::string>& params,
                      const std::string& payload,
                      std::vector<std::string>* response);
  void RecordLatency(uint64_t micros);

  ServerOptions options_;
  VerdictCache cache_;
  ServerStats stats_;
  std::vector<uint64_t> latencies_;  ///< Ring of recent request latencies.
  size_t latency_next_ = 0;
};

}  // namespace wydb

#endif  // WYDB_SERVE_SERVER_H_
