// Long-running analysis server (docs/SERVE.md): certify / simulate /
// stats / quit over a line protocol, with a canonical-key verdict cache,
// single-transaction incremental recertification, per-request resource
// budgets, and malformed-request isolation (one bad request never kills
// the stream).
//
// One Server is shared by every concurrent session: ServeStream may be
// called from many threads at once, each with its own stream pair. The
// verdict cache carries its own shared-mutex, counters are atomics, and
// the journal and latency ring sit behind mutexes, so sessions never
// observe each other beyond the (intended) shared cache and stats.
#ifndef WYDB_SERVE_SERVER_H_
#define WYDB_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "analysis/safety_checker.h"
#include "common/status.h"
#include "serve/journal.h"
#include "serve/verdict_cache.h"

namespace wydb {

struct ServerOptions {
  /// Per-request state budget for certifications (0 = unbounded).
  uint64_t max_states = 5'000'000;
  /// Default per-request wall-clock timeout in ms (0 = none). A request
  /// may lower or raise its own with `timeout_ms=N` — but a request
  /// whose effective timeout is 0 may not also disable or exceed the
  /// state budget (see HandleCertify's runaway rejection).
  int timeout_ms = 0;
  /// Verdict-cache capacity, in systems.
  int cache_entries = 128;
  /// Engine for full certifications (incremental recertification always
  /// uses kIncremental, where the delta gate lives).
  SearchEngine engine = SearchEngine::kIncremental;
  int search_threads = 0;
  /// Store memory mode for full runs on the sharded engines (DESIGN.md
  /// §9). kCompact is rejected at startup: compacted verdicts are not
  /// exact, and a serving cache must never launder a probabilistic
  /// refutation into a certificate.
  StoreOptions store;
  /// Verdict-journal path ("" = no persistence). Freshly computed
  /// verdicts are appended; at startup the journal's salvageable prefix
  /// reseeds the cache (DESIGN.md §13).
  std::string journal_path;
  /// Group-fsync policy: fsync the journal after every N appends
  /// (1 = every append, 0 = leave durability to the OS).
  int journal_fsync_every = 8;
  /// Compact the journal into a snapshot of the live cache once it
  /// holds this many records more than the cache does (0 = compact as
  /// soon as the journal carries any dead record).
  int journal_compact_slack = 256;
};

/// Counters are atomics so concurrent sessions may bump them; read them
/// whole only when no session is active (tests join first).
struct ServerStats {
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> certify_requests{0};
  std::atomic<uint64_t> simulate_requests{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> cache_misses{0};
  /// Certifications answered without a full search: monotone shortcuts,
  /// witness reuses, and delta-gated searches.
  std::atomic<uint64_t> incremental_certifications{0};
  std::atomic<uint64_t> full_certifications{0};
  std::atomic<uint64_t> monotone_shortcuts{0};
  std::atomic<uint64_t> witness_reuses{0};
  std::atomic<uint64_t> delta_searches{0};
  /// Cycle tests elided by the delta gate, summed over delta searches.
  std::atomic<uint64_t> delta_skipped_tests{0};
  /// Deadline checks performed by the search engines, summed over every
  /// certification this server ran (proves budgets are being enforced).
  std::atomic<uint64_t> deadline_polls{0};
  /// Certify requests rejected for disabling every bound (timeout_ms=0
  /// with an unbounded or over-budget max_states).
  std::atomic<uint64_t> runaways_rejected{0};
  std::atomic<uint64_t> journal_appends{0};
  std::atomic<uint64_t> journal_recovered{0};  ///< Records replayed at startup.
  std::atomic<uint64_t> journal_salvaged_bytes{0};  ///< Torn tail dropped.
  std::atomic<uint64_t> journal_compactions{0};
  std::atomic<uint64_t> journal_errors{0};
};

class Server {
 public:
  /// Validates options (e.g. rejects kCompact) and, when a journal path
  /// is configured, recovers its valid prefix into the cache.
  static Result<Server> Create(const ServerOptions& options);

  /// Serves requests from `in` until EOF or `quit`. Every response —
  /// including errors — is terminated by a lone '.' line, and no request
  /// terminates the loop except `quit`/EOF. Safe to call concurrently
  /// from multiple session threads (one stream pair per session).
  void ServeStream(std::istream& in, std::ostream& out);

  /// Certifies `text` (a .wydb workload) and caches the result, as a
  /// `certify` request would; used by --preload and tests.
  Status Preload(const std::string& text);

  /// Fsyncs any unsynced journal suffix (graceful-drain path). OK when
  /// no journal is configured.
  Status FlushJournal();

  /// The greppable one-line stats rendering served for `stats`.
  std::string StatsLine() const;

  const ServerStats& stats() const { return shared_->stats; }

 private:
  /// Journal, latency ring, and stats live on the heap so Server stays
  /// movable (Result<Server>) while sessions share one instance.
  struct Shared {
    ServerStats stats;
    std::mutex latency_mu;
    std::vector<uint64_t> latencies;  ///< Ring of recent request latencies.
    size_t latency_next = 0;
    std::mutex journal_mu;
    std::unique_ptr<Journal> journal;
  };

  explicit Server(const ServerOptions& options);

  /// Appends the response lines for one certify request (never fails:
  /// failures become `error:` lines and count in stats.errors).
  void HandleCertify(const std::vector<std::string>& params,
                     const std::string& payload,
                     std::vector<std::string>* response);
  void HandleSimulate(const std::vector<std::string>& params,
                      const std::string& payload,
                      std::vector<std::string>* response);
  void RecordLatency(uint64_t micros);

  /// Journals a freshly computed verdict and compacts when the journal
  /// has outgrown the cache by journal_compact_slack records. Journal
  /// failures are counted, not fatal: serving continues memory-only.
  void JournalVerdict(const CertificateBundle& bundle);

  /// Replays one recovered journal payload into the cache.
  Status LoadJournalRecord(const std::string& payload);

  ServerOptions options_;
  VerdictCache cache_;
  std::unique_ptr<Shared> shared_;
};

}  // namespace wydb

#endif  // WYDB_SERVE_SERVER_H_
