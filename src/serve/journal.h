// Crash-safe verdict journal of the analysis server (docs/SERVE.md,
// DESIGN.md §13).
//
// An append-only log of serialized certificate bundles. Each record is
// framed as
//
//   magic "WYJ1" | u32le payload_len | u32le crc | payload bytes
//
// where the CRC-32 covers the length field and the payload, so a
// bit-flip anywhere in a record — including its length — is detected.
// Recovery scans records from the front and stops at the first frame
// that fails the magic, length-bounds, or CRC check: everything before
// it is the salvaged valid prefix, everything after is discarded by
// truncating the file. A torn tail (the failure mode of `kill -9`
// mid-append or a short write) therefore costs at most the records
// after the last fsync; it never refuses startup. The server replays
// the salvaged payloads through the certificate parser — which has its
// own fingerprint line — so a record must pass two independent
// integrity checks before a verdict is re-served.
//
// Durability is a group-fsync policy: fsync after every Nth append
// (1 = every append, 0 = leave it to the OS). Compaction rewrites the
// live cache as a fresh journal via the standard crash-safe dance:
// write a temp file, fsync it, rename over the journal, fsync the
// directory.
#ifndef WYDB_SERVE_JOURNAL_H_
#define WYDB_SERVE_JOURNAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace wydb {

/// Test-only fault hook on the journal's I/O syscalls. The journal
/// counts every write/fsync it issues; when the count reaches
/// `trigger_op` (1-based) the configured fault fires once: the syscall
/// is skipped (or truncated, for a short write) and an error is
/// reported exactly as if the kernel had failed it. Non-owning — the
/// test keeps the injector alive for the journal's lifetime.
struct FaultInjector {
  enum class Fault {
    kNone,
    kFailWrite,   ///< write() reports EIO without writing anything.
    kShortWrite,  ///< write() persists only half the record, then fails.
    kFailFsync,   ///< fsync() reports EIO (data may or may not be durable).
  };
  Fault fault = Fault::kNone;
  uint64_t trigger_op = 0;  ///< Fire on the Nth counted op; 0 = never.
  uint64_t ops = 0;         ///< Counted so far (owned by the journal).
  bool fired = false;

  /// Advances the op counter; true when the fault fires on this op.
  bool Tick() {
    if (fault == Fault::kNone || trigger_op == 0) return false;
    if (++ops == trigger_op) {
      fired = true;
      return true;
    }
    return false;
  }
};

/// What recovery found in an existing journal file.
struct JournalRecovery {
  std::vector<std::string> payloads;  ///< Valid records, oldest first.
  uint64_t valid_bytes = 0;           ///< Length of the salvaged prefix.
  uint64_t dropped_bytes = 0;         ///< Torn/corrupt tail discarded.
};

struct JournalOptions {
  /// Group-fsync policy: fsync after every N appends (1 = every append,
  /// 0 = never — durability is left to the OS page cache).
  int fsync_every = 8;
};

class Journal {
 public:
  /// Opens (creating if absent) the journal at `path`, recovers the
  /// valid record prefix into `recovery`, and truncates any torn or
  /// corrupt tail so subsequent appends extend a consistent file.
  /// Corruption is never a startup failure — only real I/O errors
  /// (open/ftruncate) are.
  static Result<Journal> Open(std::string path, const JournalOptions& options,
                              JournalRecovery* recovery);

  ~Journal();
  Journal(Journal&& other) noexcept;
  Journal& operator=(Journal&& other) noexcept;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Appends one record. On any write failure the file is rolled back
  /// (truncated) to the end of the last good record, so a failed append
  /// never leaves a torn middle that would strand later records.
  Status Append(const std::string& payload);

  /// Forces everything appended so far to disk regardless of the group
  /// policy (graceful-drain path).
  Status Sync();

  /// Atomically replaces the journal with a snapshot holding exactly
  /// `payloads`: temp file + fsync + rename + directory fsync.
  Status Compact(const std::vector<std::string>& payloads);

  /// Records appended or compacted into the current file (recovered
  /// records count too).
  uint64_t records() const { return records_; }
  uint64_t bytes() const { return bytes_; }
  const std::string& path() const { return path_; }

  /// Installs a test-only fault hook (nullptr to clear).
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

 private:
  Journal(std::string path, const JournalOptions& options, int fd,
          uint64_t valid_bytes, uint64_t records);

  /// write() the whole buffer at the current offset, honoring the fault
  /// injector and retrying EINTR.
  Status WriteAll(int fd, const char* data, size_t len);
  Status FsyncFd(int fd);

  std::string path_;
  JournalOptions options_;
  int fd_ = -1;
  uint64_t bytes_ = 0;    ///< End of the last fully appended record.
  uint64_t records_ = 0;
  uint64_t unsynced_appends_ = 0;
  bool failed_ = false;   ///< Rollback failed: refuse further appends.
  FaultInjector* injector_ = nullptr;
};

/// Frames one record (exposed for tests that hand-craft corrupt files).
std::string FrameJournalRecord(const std::string& payload);

/// Scans `data` (a journal file image) and returns the valid prefix —
/// the pure core of recovery, exposed for fuzzing every truncation
/// offset without touching the filesystem.
JournalRecovery ScanJournalImage(const std::string& data);

}  // namespace wydb

#endif  // WYDB_SERVE_JOURNAL_H_
