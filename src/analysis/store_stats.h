// --stats memory counters and store-option validation shared by the
// deadlock and safety checkers (DESIGN.md §9). Header-only: the helpers
// are templated over the report/options structs, which the two checkers
// define independently but with matching field names.
#ifndef WYDB_ANALYSIS_STORE_STATS_H_
#define WYDB_ANALYSIS_STORE_STATS_H_

#include <cmath>

#include "analysis/search_engine.h"
#include "common/status.h"
#include "core/frontier_spill.h"
#include "core/state_store.h"

namespace wydb {

// Fills the --stats memory counters of `report` from the search store
// and stager; must run at every return point (the arenas are live then).
template <typename Report>
void FillMemoryStats(const ShardedStateStore& store,
                     const FrontierStager& stager, Report* report) {
  const StoreMemoryStats m = store.MemoryStats();
  report->store_bytes = m.total();
  report->arena_bytes = m.arena_bytes;
  report->probe_table_bytes = m.probe_bytes;
  report->spilled_levels = stager.spilled_levels();
  if (store.options().encoding == StoreOptions::KeyEncoding::kCompact) {
    // Fingerprint identity can merge distinct states, so a positive
    // verdict is not a certificate; the expected number of colliding
    // pairs among n 64-bit fingerprints is <= n(n-1)/2^65.
    report->exact = false;
    const double n = static_cast<double>(store.size());
    report->fingerprint_collision_bound = std::ldexp(n * (n - 1.0), -65);
  }
}

template <typename Report>
void FillMemoryStats(const StateStore& store, Report* report) {
  const StoreMemoryStats m = store.MemoryStats();
  report->store_bytes = m.total();
  report->arena_bytes = m.arena_bytes;
  report->probe_table_bytes = m.probe_bytes;
}

// The serial engines support only the default store configuration; the
// memory modes live on the sharded substrate (DESIGN.md §9).
template <typename Options>
Status ValidateStoreOptions(const Options& options, SearchEngine engine) {
  const StoreOptions& so = options.store;
  const bool nondefault =
      so.encoding != StoreOptions::KeyEncoding::kPlain ||
      so.mem_budget_mb > 0;
  if (nondefault && (engine == SearchEngine::kNaiveReference ||
                     engine == SearchEngine::kIncremental)) {
    return Status::InvalidArgument(
        "store encoding / memory budget options require the parallel or "
        "reduced engine");
  }
  if (so.encoding == StoreOptions::KeyEncoding::kCompact &&
      engine == SearchEngine::kReduced) {
    return Status::InvalidArgument(
        "hash compaction requires the parallel engine: reduced witness "
        "replay reads ancestor keys, which compaction discards");
  }
  return Status::OK();
}

}  // namespace wydb

#endif  // WYDB_ANALYSIS_STORE_STATS_H_
