#include "analysis/sat/threesat_prime.h"

#include <algorithm>

#include "common/string_util.h"

namespace wydb {

Result<ThreeSatPrimeOccurrences> ValidateThreeSatPrime(
    const CnfFormula& formula) {
  Status valid = formula.Validate();
  if (!valid.ok()) return valid;

  const int n = formula.num_vars();
  ThreeSatPrimeOccurrences occ;
  occ.first_positive.assign(n, -1);
  occ.second_positive.assign(n, -1);
  occ.negative.assign(n, -1);

  for (int i = 0; i < formula.num_clauses(); ++i) {
    const auto& clause = formula.clause(i);
    if (clause.size() > 3) {
      return Status::InvalidArgument(
          StrFormat("clause %d has more than 3 literals", i));
    }
    for (size_t a = 0; a < clause.size(); ++a) {
      for (size_t b = a + 1; b < clause.size(); ++b) {
        if (clause[a].var == clause[b].var) {
          return Status::InvalidArgument(StrFormat(
              "clause %d mentions variable x%d twice", i, clause[a].var));
        }
      }
    }
    for (const Literal& l : clause) {
      if (l.positive) {
        if (occ.first_positive[l.var] == -1) {
          occ.first_positive[l.var] = i;
        } else if (occ.second_positive[l.var] == -1) {
          occ.second_positive[l.var] = i;
        } else {
          return Status::InvalidArgument(StrFormat(
              "variable x%d occurs positively more than twice", l.var));
        }
      } else {
        if (occ.negative[l.var] != -1) {
          return Status::InvalidArgument(StrFormat(
              "variable x%d occurs negatively more than once", l.var));
        }
        occ.negative[l.var] = i;
      }
    }
  }
  for (int j = 0; j < n; ++j) {
    if (occ.second_positive[j] == -1 || occ.negative[j] == -1) {
      return Status::InvalidArgument(StrFormat(
          "variable x%d does not occur exactly twice positively and once "
          "negatively",
          j));
    }
  }
  return occ;
}

Result<CnfFormula> GenerateThreeSatPrime(
    const ThreeSatPrimeGenOptions& opts) {
  const int n = opts.num_vars;
  if (n < 1) return Status::InvalidArgument("need at least one variable");
  int r = opts.num_clauses == 0 ? (3 * n + 1) / 2 : opts.num_clauses;
  if (r < n || r > 3 * n) {
    return Status::InvalidArgument(StrFormat(
        "num_clauses must lie in [%d, %d] for %d variables", n, 3 * n, n));
  }

  Rng rng(opts.seed);
  // Tokens: (var, positive). Each variable contributes + + -.
  struct Token {
    int var;
    bool positive;
  };
  for (int attempt = 0; attempt < 64; ++attempt) {
    std::vector<Token> tokens;
    tokens.reserve(3 * n);
    for (int j = 0; j < n; ++j) {
      tokens.push_back({j, true});
      tokens.push_back({j, true});
      tokens.push_back({j, false});
    }
    rng.Shuffle(&tokens);

    std::vector<std::vector<Literal>> clauses(r);
    auto fits = [&](int c, const Token& t) {
      if (clauses[c].size() >= 3) return false;
      for (const Literal& l : clauses[c]) {
        if (l.var == t.var) return false;
      }
      return true;
    };

    bool ok = true;
    size_t next = 0;
    // Seed every clause with one token so none stays empty.
    for (int c = 0; c < r && ok; ++c) {
      bool placed = false;
      for (size_t probe = next; probe < tokens.size(); ++probe) {
        if (fits(c, tokens[probe])) {
          std::swap(tokens[next], tokens[probe]);
          clauses[c].push_back(
              Literal{tokens[next].var, tokens[next].positive});
          ++next;
          placed = true;
          break;
        }
      }
      ok = placed;
    }
    // Distribute the rest.
    for (size_t i = next; i < tokens.size() && ok; ++i) {
      bool placed = false;
      for (int tries = 0; tries < 4 * r && !placed; ++tries) {
        int c = static_cast<int>(rng.NextBelow(r));
        if (fits(c, tokens[i])) {
          clauses[c].push_back(Literal{tokens[i].var, tokens[i].positive});
          placed = true;
        }
      }
      for (int c = 0; c < r && !placed; ++c) {
        if (fits(c, tokens[i])) {
          clauses[c].push_back(Literal{tokens[i].var, tokens[i].positive});
          placed = true;
        }
      }
      ok = placed;
    }
    if (!ok) continue;

    CnfFormula f(n, std::move(clauses));
    if (ValidateThreeSatPrime(f).ok()) return f;
  }
  return Status::Internal(
      "failed to pack a 3SAT' instance after 64 attempts");
}

}  // namespace wydb
