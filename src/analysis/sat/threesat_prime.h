// 3SAT' — the NP-complete fragment Theorem 2 reduces from: CNF with at
// most 3 literals per clause where every variable occurs exactly twice
// positively and exactly once negatively.
#ifndef WYDB_ANALYSIS_SAT_THREESAT_PRIME_H_
#define WYDB_ANALYSIS_SAT_THREESAT_PRIME_H_

#include <cstdint>

#include "analysis/sat/cnf.h"
#include "common/random.h"
#include "common/result.h"

namespace wydb {

/// Per-variable occurrence map of a 3SAT' formula.
struct ThreeSatPrimeOccurrences {
  /// first_positive[j], second_positive[j], negative[j]: clause indices of
  /// variable j's three occurrences (the paper's c_h, c_k, c_l).
  std::vector<int> first_positive;
  std::vector<int> second_positive;
  std::vector<int> negative;
};

/// Checks the 3SAT' shape: <= 3 literals per clause, no clause mentioning
/// a variable twice, each variable exactly twice positive + once negative.
/// Returns the occurrence map on success.
Result<ThreeSatPrimeOccurrences> ValidateThreeSatPrime(
    const CnfFormula& formula);

struct ThreeSatPrimeGenOptions {
  int num_vars = 8;
  /// Number of clauses; 0 picks ceil(3n/2). Must satisfy
  /// num_vars <= num_clauses <= 3 * num_vars when nonzero.
  int num_clauses = 0;
  uint64_t seed = 1;
};

/// Generates a random 3SAT' instance by distributing each variable's three
/// occurrence tokens over clause bins (capacity 3, distinct variables per
/// clause, no empty clause).
Result<CnfFormula> GenerateThreeSatPrime(const ThreeSatPrimeGenOptions& opts);

}  // namespace wydb

#endif  // WYDB_ANALYSIS_SAT_THREESAT_PRIME_H_
