// The Theorem 2 reduction: 3SAT' formula -> two distributed transactions
// {T1, T2} such that the formula is satisfiable iff {T1, T2} has a
// deadlock (i.e. the pair is NOT deadlock-free).
//
// Entities (each residing at its own site, so both transactions are
// genuine partial orders): c_i, c'_i per clause; x_j, x'_j, x''_j per
// variable. Both transactions lock and unlock every entity. The precedence
// arcs are the Fig. 4 gadgets; see reduction.cc for the exact arc lists
// and the correspondence to the paper's cycle components.
#ifndef WYDB_ANALYSIS_SAT_REDUCTION_H_
#define WYDB_ANALYSIS_SAT_REDUCTION_H_

#include <memory>
#include <vector>

#include "analysis/sat/cnf.h"
#include "analysis/sat/threesat_prime.h"
#include "common/result.h"
#include "core/prefix.h"
#include "core/system.h"

namespace wydb {

/// \brief The reduced instance plus the bookkeeping needed to map
/// witnesses back and forth.
class SatReduction {
 public:
  /// Performs the reduction. Fails unless `formula` is 3SAT'.
  static Result<SatReduction> FromFormula(const CnfFormula& formula);

  const TransactionSystem& system() const { return *system_; }
  const Database& db() const { return *db_; }
  const CnfFormula& formula() const { return formula_; }

  /// Entity handles (indices follow the formula's clause/variable order).
  EntityId c(int i) const { return c_[i]; }
  EntityId cp(int i) const { return cp_[i]; }
  EntityId x(int j) const { return x_[j]; }
  EntityId xp(int j) const { return xp_[j]; }
  EntityId xpp(int j) const { return xpp_[j]; }

  /// Builds the deadlock-prefix witness from a satisfying assignment (the
  /// Z_i sets of the completeness proof). The returned prefix consists of
  /// Lock nodes only, admits a schedule trivially, and has a cyclic
  /// reduction graph.
  Result<PrefixSet> WitnessPrefix(const std::vector<bool>& assignment) const;

  /// Decodes a reduction-graph cycle into a truth assignment per the
  /// soundness proof: U1 x_j or U1 x'_j on the cycle => x_j true;
  /// U2 x_j => false; untouched variables default to true.
  std::vector<bool> DecodeAssignment(
      const std::vector<GlobalNode>& cycle) const;

 private:
  SatReduction() = default;

  CnfFormula formula_;
  ThreeSatPrimeOccurrences occ_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<TransactionSystem> system_;
  std::vector<EntityId> c_, cp_, x_, xp_, xpp_;
};

}  // namespace wydb

#endif  // WYDB_ANALYSIS_SAT_REDUCTION_H_
