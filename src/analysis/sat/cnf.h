// Minimal CNF formula model used by the Theorem 2 reduction and its DPLL
// oracle.
#ifndef WYDB_ANALYSIS_SAT_CNF_H_
#define WYDB_ANALYSIS_SAT_CNF_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace wydb {

/// A literal: variable index (0-based) and polarity.
struct Literal {
  int var;
  bool positive;

  bool operator==(const Literal&) const = default;
};

/// \brief CNF formula: conjunction of clauses, each a disjunction of
/// literals.
class CnfFormula {
 public:
  CnfFormula() = default;
  CnfFormula(int num_vars, std::vector<std::vector<Literal>> clauses)
      : num_vars_(num_vars), clauses_(std::move(clauses)) {}

  int num_vars() const { return num_vars_; }
  int num_clauses() const { return static_cast<int>(clauses_.size()); }
  const std::vector<std::vector<Literal>>& clauses() const {
    return clauses_;
  }
  const std::vector<Literal>& clause(int i) const { return clauses_[i]; }

  void AddClause(std::vector<Literal> lits) {
    for (const Literal& l : lits) {
      if (l.var >= num_vars_) num_vars_ = l.var + 1;
    }
    clauses_.push_back(std::move(lits));
  }

  /// True iff `assignment` (one bool per variable) satisfies the formula.
  bool IsSatisfiedBy(const std::vector<bool>& assignment) const;

  /// Well-formedness: in-range variables, nonempty clauses.
  Status Validate() const;

  /// "(x0 + !x1)(x2)" style rendering.
  std::string ToString() const;

 private:
  int num_vars_ = 0;
  std::vector<std::vector<Literal>> clauses_;
};

}  // namespace wydb

#endif  // WYDB_ANALYSIS_SAT_CNF_H_
