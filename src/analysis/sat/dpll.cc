#include "analysis/sat/dpll.h"

#include <algorithm>

#include "common/string_util.h"

namespace wydb {
namespace {

enum class Value : uint8_t { kUnset, kTrue, kFalse };

// Iterative DPLL with two-watched-literal unit propagation and a cheap
// activity-based branching heuristic.
//
// Watched-literal invariants (see DESIGN.md):
//   (W1) every clause of size >= 2 watches two distinct positions;
//   (W2) a watched literal is only revisited when its negation is
//        assigned — satisfied or unassigned watches are never scanned;
//   (W3) if a clause is not satisfied, neither watch is false under the
//        current assignment, unless the clause is unit/conflicting, in
//        which case propagation notices it at the moment the second watch
//        becomes false.
// Hence propagation cost is proportional to the watcher lists actually
// touched, not to the number of clauses (the seed implementation rescanned
// every clause per propagation step).
class Solver {
 public:
  Solver(const CnfFormula& f, const DpllOptions& options)
      : options_(options), num_vars_(f.num_vars()) {
    value_.assign(num_vars_, Value::kUnset);
    activity_.assign(num_vars_, 0.0);
    watches_.assign(static_cast<size_t>(num_vars_) * 2, {});
    // Flatten clauses; literal l encoded as 2*var + (positive ? 0 : 1).
    for (const auto& clause : f.clauses()) {
      uint32_t begin = static_cast<uint32_t>(lits_.size());
      for (const Literal& l : clause) {
        lits_.push_back((l.var << 1) | (l.positive ? 0 : 1));
        activity_[l.var] += 1.0;  // Static seed: frequent vars first.
      }
      clauses_.push_back(Clause{begin, static_cast<uint32_t>(clause.size())});
    }
    for (uint32_t c = 0; c < clauses_.size(); ++c) {
      const Clause& cl = clauses_[c];
      if (cl.size == 1) {
        initial_units_.push_back(lits_[cl.begin]);
      } else {
        watches_[lits_[cl.begin]].push_back(c);
        watches_[lits_[cl.begin + 1]].push_back(c);
      }
    }
  }

  Result<DpllResult> Run() {
    DpllResult res;
    bool sat = Search();
    if (exhausted_) {
      return Status::ResourceExhausted(
          StrFormat("DPLL exceeded %llu decisions",
                    static_cast<unsigned long long>(options_.max_decisions)));
    }
    res.satisfiable = sat;
    if (sat) {
      res.assignment.resize(num_vars_);
      for (int v = 0; v < num_vars_; ++v) {
        res.assignment[v] = value_[v] != Value::kFalse;
      }
    }
    res.decisions = decisions_;
    return res;
  }

 private:
  struct Clause {
    uint32_t begin;
    uint32_t size;
  };

  static int VarOf(int lit) { return lit >> 1; }
  static int Negate(int lit) { return lit ^ 1; }

  Value LitValue(int lit) const {
    Value v = value_[lit >> 1];
    if (v == Value::kUnset) return Value::kUnset;
    bool is_true = (v == Value::kTrue) == ((lit & 1) == 0);
    return is_true ? Value::kTrue : Value::kFalse;
  }

  // Assigns `lit` true and pushes it on the trail. Returns false if the
  // variable already holds the opposite value.
  bool Enqueue(int lit) {
    Value v = LitValue(lit);
    if (v == Value::kFalse) return false;
    if (v == Value::kUnset) {
      value_[lit >> 1] = (lit & 1) == 0 ? Value::kTrue : Value::kFalse;
      trail_.push_back(lit);
    }
    return true;
  }

  // Two-watched-literal propagation from trail_[qhead_] onward. On
  // conflict returns the index of the conflicting clause; kNoConflict
  // otherwise.
  static constexpr uint32_t kNoConflict = 0xFFFFFFFFu;
  uint32_t Propagate() {
    while (qhead_ < trail_.size()) {
      int p = trail_[qhead_++];
      int false_lit = Negate(p);  // Clauses watching ~p must be checked.
      std::vector<uint32_t>& watchers = watches_[false_lit];
      size_t keep = 0;
      for (size_t wi = 0; wi < watchers.size(); ++wi) {
        uint32_t c = watchers[wi];
        const Clause& cl = clauses_[c];
        int32_t* cls = lits_.data() + cl.begin;
        // Normalize: the false watch sits at position 1.
        if (cls[0] == false_lit) std::swap(cls[0], cls[1]);
        // Satisfied clause: keep the watch as-is.
        if (LitValue(cls[0]) == Value::kTrue) {
          watchers[keep++] = c;
          continue;
        }
        // Look for a non-false literal to take over the watch.
        bool moved = false;
        for (uint32_t k = 2; k < cl.size; ++k) {
          if (LitValue(cls[k]) != Value::kFalse) {
            std::swap(cls[1], cls[k]);
            watches_[cls[1]].push_back(c);
            moved = true;
            break;
          }
        }
        if (moved) continue;
        // Clause is unit (cls[0] unset) or conflicting (cls[0] false).
        watchers[keep++] = c;
        if (!Enqueue(cls[0])) {
          // Conflict: restore untouched tail of the watcher list.
          for (size_t wj = wi + 1; wj < watchers.size(); ++wj) {
            watchers[keep++] = watchers[wj];
          }
          watchers.resize(keep);
          return c;
        }
      }
      watchers.resize(keep);
    }
    return kNoConflict;
  }

  void BumpConflict(uint32_t conflict) {
    const Clause& cl = clauses_[conflict];
    for (uint32_t k = 0; k < cl.size; ++k) {
      activity_[VarOf(lits_[cl.begin + k])] += bump_;
    }
    bump_ *= 1.0 / 0.95;  // Decay old activity by inflating future bumps.
    if (bump_ > 1e100) {
      for (double& a : activity_) a *= 1e-100;
      bump_ *= 1e-100;
    }
  }

  // Most-active unset variable; -1 when all assigned.
  int PickBranchVar() const {
    int best = -1;
    double best_act = -1.0;
    for (int v = 0; v < num_vars_; ++v) {
      if (value_[v] == Value::kUnset && activity_[v] > best_act) {
        best = v;
        best_act = activity_[v];
      }
    }
    return best;
  }

  // Undo trail down to `level_mark` assignments.
  void BacktrackTo(size_t level_mark) {
    while (trail_.size() > level_mark) {
      value_[trail_.back() >> 1] = Value::kUnset;
      trail_.pop_back();
    }
    qhead_ = level_mark;
  }

  bool Search() {
    // Top-level units: a conflict here is UNSAT outright.
    for (int lit : initial_units_) {
      if (!Enqueue(lit)) return false;
    }

    struct Decision {
      int var;
      size_t trail_mark;  ///< Trail size before the decision.
      bool flipped;       ///< Second phase already tried.
    };
    std::vector<Decision> decisions;

    while (true) {
      uint32_t conflict = Propagate();
      if (conflict == kNoConflict) {
        if (static_cast<int>(trail_.size()) == num_vars_) return true;
        int var = PickBranchVar();
        if (var == -1) return true;  // Vars absent from clauses remain unset.
        ++decisions_;
        if (options_.max_decisions != 0 &&
            decisions_ > options_.max_decisions) {
          exhausted_ = true;
          return false;
        }
        decisions.push_back(Decision{var, trail_.size(), false});
        Enqueue(var << 1);  // Try true first, as the seed solver did.
      } else {
        BumpConflict(conflict);
        // Chronological backtracking: flip the deepest unflipped decision.
        while (!decisions.empty() && decisions.back().flipped) {
          decisions.pop_back();
        }
        if (decisions.empty()) return false;
        Decision& d = decisions.back();
        BacktrackTo(d.trail_mark);
        d.flipped = true;
        Enqueue((d.var << 1) | 1);  // Second phase: false.
      }
    }
  }

  const DpllOptions& options_;
  const int num_vars_;
  std::vector<Value> value_;
  std::vector<double> activity_;
  double bump_ = 1.0;
  std::vector<int32_t> lits_;      ///< Flat encoded literals of all clauses.
  std::vector<Clause> clauses_;
  std::vector<std::vector<uint32_t>> watches_;  ///< Per encoded literal.
  std::vector<int32_t> initial_units_;
  std::vector<int32_t> trail_;
  size_t qhead_ = 0;
  uint64_t decisions_ = 0;
  bool exhausted_ = false;
};

}  // namespace

Result<DpllResult> SolveDpll(const CnfFormula& formula,
                             const DpllOptions& options) {
  Status valid = formula.Validate();
  if (!valid.ok()) return valid;
  Solver solver(formula, options);
  return solver.Run();
}

}  // namespace wydb
