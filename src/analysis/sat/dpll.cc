#include "analysis/sat/dpll.h"

#include <algorithm>

#include "common/string_util.h"

namespace wydb {
namespace {

enum class Value : uint8_t { kUnset, kTrue, kFalse };

class Solver {
 public:
  Solver(const CnfFormula& f, const DpllOptions& options)
      : f_(f), options_(options), value_(f.num_vars(), Value::kUnset) {}

  Result<DpllResult> Run() {
    DpllResult res;
    bool sat = Search(&res);
    if (exhausted_) {
      return Status::ResourceExhausted(
          StrFormat("DPLL exceeded %llu decisions",
                    static_cast<unsigned long long>(options_.max_decisions)));
    }
    res.satisfiable = sat;
    if (sat) {
      res.assignment.resize(f_.num_vars());
      for (int v = 0; v < f_.num_vars(); ++v) {
        res.assignment[v] = value_[v] != Value::kFalse;
      }
    }
    res.decisions = decisions_;
    return res;
  }

 private:
  bool LitTrue(const Literal& l) const {
    return value_[l.var] == (l.positive ? Value::kTrue : Value::kFalse);
  }
  bool LitFalse(const Literal& l) const {
    return value_[l.var] == (l.positive ? Value::kFalse : Value::kTrue);
  }

  // Returns kUnsat / kSat / kUnknown-style: 0 conflict, 1 all satisfied,
  // 2 undecided. Fills `unit` with a forced literal if found.
  int Inspect(std::optional<Literal>* unit) const {
    bool all_sat = true;
    for (const auto& clause : f_.clauses()) {
      bool sat = false;
      int unassigned = 0;
      Literal last{0, true};
      for (const Literal& l : clause) {
        if (LitTrue(l)) {
          sat = true;
          break;
        }
        if (!LitFalse(l)) {
          ++unassigned;
          last = l;
        }
      }
      if (sat) continue;
      if (unassigned == 0) return 0;
      all_sat = false;
      if (unassigned == 1 && !unit->has_value()) *unit = last;
    }
    return all_sat ? 1 : 2;
  }

  bool Search(DpllResult* res) {
    if (exhausted_) return false;
    // Unit propagation to fixpoint.
    std::vector<int> trail;
    for (;;) {
      std::optional<Literal> unit;
      int state = Inspect(&unit);
      if (state == 0) {
        for (int v : trail) value_[v] = Value::kUnset;
        return false;
      }
      if (state == 1) return true;
      if (!unit.has_value()) break;
      value_[unit->var] = unit->positive ? Value::kTrue : Value::kFalse;
      trail.push_back(unit->var);
    }

    // Branch on the most frequently occurring unset variable.
    std::vector<int> freq(f_.num_vars(), 0);
    for (const auto& clause : f_.clauses()) {
      bool sat = false;
      for (const Literal& l : clause) {
        if (LitTrue(l)) {
          sat = true;
          break;
        }
      }
      if (sat) continue;
      for (const Literal& l : clause) {
        if (value_[l.var] == Value::kUnset) freq[l.var]++;
      }
    }
    int var = -1;
    for (int v = 0; v < f_.num_vars(); ++v) {
      if (value_[v] == Value::kUnset && (var == -1 || freq[v] > freq[var])) {
        var = v;
      }
    }
    if (var == -1) {
      // All assigned and no conflict => satisfied (Inspect said undecided
      // only because of empty frequency; defensive).
      for (int v : trail) value_[v] = Value::kUnset;
      return true;
    }

    ++decisions_;
    if (options_.max_decisions != 0 &&
        decisions_ > options_.max_decisions) {
      exhausted_ = true;
      for (int v : trail) value_[v] = Value::kUnset;
      return false;
    }

    for (Value val : {Value::kTrue, Value::kFalse}) {
      value_[var] = val;
      if (Search(res)) return true;
      value_[var] = Value::kUnset;
      if (exhausted_) break;
    }
    for (int v : trail) value_[v] = Value::kUnset;
    return false;
  }

  const CnfFormula& f_;
  const DpllOptions& options_;
  std::vector<Value> value_;
  uint64_t decisions_ = 0;
  bool exhausted_ = false;
};

}  // namespace

Result<DpllResult> SolveDpll(const CnfFormula& formula,
                             const DpllOptions& options) {
  Status valid = formula.Validate();
  if (!valid.ok()) return valid;
  Solver solver(formula, options);
  return solver.Run();
}

}  // namespace wydb
