#include "analysis/sat/cnf.h"

#include "common/string_util.h"

namespace wydb {

bool CnfFormula::IsSatisfiedBy(const std::vector<bool>& assignment) const {
  for (const auto& clause : clauses_) {
    bool sat = false;
    for (const Literal& l : clause) {
      if (assignment[l.var] == l.positive) {
        sat = true;
        break;
      }
    }
    if (!sat) return false;
  }
  return true;
}

Status CnfFormula::Validate() const {
  for (int i = 0; i < num_clauses(); ++i) {
    if (clauses_[i].empty()) {
      return Status::InvalidArgument(
          StrFormat("clause %d is empty (trivially unsatisfiable)", i));
    }
    for (const Literal& l : clauses_[i]) {
      if (l.var < 0 || l.var >= num_vars_) {
        return Status::InvalidArgument(
            StrFormat("clause %d references variable %d out of range", i,
                      l.var));
      }
    }
  }
  return Status::OK();
}

std::string CnfFormula::ToString() const {
  std::string out;
  for (const auto& clause : clauses_) {
    out += "(";
    for (size_t i = 0; i < clause.size(); ++i) {
      if (i) out += " + ";
      if (!clause[i].positive) out += "!";
      out += StrFormat("x%d", clause[i].var);
    }
    out += ")";
  }
  return out;
}

}  // namespace wydb
