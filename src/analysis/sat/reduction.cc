#include "analysis/sat/reduction.h"

#include "common/macros.h"
#include "common/string_util.h"
#include "core/transaction_builder.h"

namespace wydb {
namespace {

// Builds one of the two reduction transactions. `arc` pairs are
// (lock-entity, unlock-entity): an arc from L<first> to U<second>.
Result<Transaction> BuildTxn(
    const Database* db, const std::string& name,
    const std::vector<EntityId>& entities,
    const std::vector<std::pair<EntityId, EntityId>>& arcs,
    std::vector<NodeId>* lock_step, std::vector<NodeId>* unlock_step) {
  TransactionBuilder b(db, name);
  b.set_auto_site_chain(false);
  lock_step->assign(db->num_entities(), kInvalidNode);
  unlock_step->assign(db->num_entities(), kInvalidNode);
  for (EntityId e : entities) {
    (*lock_step)[e] = b.LockId(e);
    (*unlock_step)[e] = b.UnlockId(e);
  }
  for (const auto& [from, to] : arcs) {
    b.Arc((*lock_step)[from], (*unlock_step)[to]);
  }
  return b.Build();
}

}  // namespace

Result<SatReduction> SatReduction::FromFormula(const CnfFormula& formula) {
  SatReduction red;
  red.formula_ = formula;
  WYDB_ASSIGN_OR_RETURN(red.occ_, ValidateThreeSatPrime(formula));

  const int r = formula.num_clauses();
  const int n = formula.num_vars();
  red.db_ = std::make_unique<Database>();

  auto add_entity = [&](const std::string& name) -> Result<EntityId> {
    // One site per entity: both transactions stay genuine partial orders.
    return red.db_->AddEntityAtSite(name, "site_" + name);
  };
  for (int i = 0; i < r; ++i) {
    WYDB_ASSIGN_OR_RETURN(EntityId e, add_entity(StrFormat("c%d", i)));
    red.c_.push_back(e);
    WYDB_ASSIGN_OR_RETURN(EntityId ep, add_entity(StrFormat("c'%d", i)));
    red.cp_.push_back(ep);
  }
  for (int j = 0; j < n; ++j) {
    WYDB_ASSIGN_OR_RETURN(EntityId e, add_entity(StrFormat("x%d", j)));
    red.x_.push_back(e);
    WYDB_ASSIGN_OR_RETURN(EntityId ep, add_entity(StrFormat("x'%d", j)));
    red.xp_.push_back(ep);
    WYDB_ASSIGN_OR_RETURN(EntityId epp, add_entity(StrFormat("x''%d", j)));
    red.xpp_.push_back(epp);
  }

  std::vector<EntityId> all;
  for (int i = 0; i < r; ++i) {
    all.push_back(red.c_[i]);
    all.push_back(red.cp_[i]);
  }
  for (int j = 0; j < n; ++j) {
    all.push_back(red.x_[j]);
    all.push_back(red.xp_[j]);
    all.push_back(red.xpp_[j]);
  }

  auto next = [&](int i) { return (i + 1) % r; };

  // Arc lists (Lfrom -> Uto); see DESIGN.md experiment F4/F5 and the
  // cycle-component commentary in the header.
  std::vector<std::pair<EntityId, EntityId>> arcs1, arcs2;
  for (int i = 0; i < r; ++i) {
    arcs1.emplace_back(red.cp_[i], red.c_[i]);  // L c'_i -> U c_i
    arcs2.emplace_back(red.cp_[i], red.c_[i]);
  }
  for (int j = 0; j < n; ++j) {
    const int h = red.occ_.first_positive[j];
    const int k = red.occ_.second_positive[j];
    const int l = red.occ_.negative[j];
    // T1 gadgets.
    arcs1.emplace_back(red.x_[j], red.xpp_[j]);      // Lx_j   -> Ux''_j
    arcs1.emplace_back(red.c_[h], red.x_[j]);        // Lc_h   -> Ux_j
    arcs1.emplace_back(red.c_[k], red.xp_[j]);       // Lc_k   -> Ux'_j
    arcs1.emplace_back(red.xp_[j], red.c_[next(l)]);   // Lx'_j -> Uc_{l+1}
    arcs1.emplace_back(red.xp_[j], red.cp_[next(l)]);  // Lx'_j -> Uc'_{l+1}
    // T2 gadgets.
    arcs2.emplace_back(red.xpp_[j], red.xp_[j]);     // Lx''_j -> Ux'_j
    arcs2.emplace_back(red.c_[l], red.x_[j]);        // Lc_l   -> Ux_j
    arcs2.emplace_back(red.x_[j], red.c_[next(h)]);    // Lx_j  -> Uc_{h+1}
    arcs2.emplace_back(red.x_[j], red.cp_[next(h)]);   // Lx_j  -> Uc'_{h+1}
    arcs2.emplace_back(red.xp_[j], red.c_[next(k)]);   // Lx'_j -> Uc_{k+1}
    arcs2.emplace_back(red.xp_[j], red.cp_[next(k)]);  // Lx'_j -> Uc'_{k+1}
  }

  std::vector<NodeId> lock1, unlock1, lock2, unlock2;
  WYDB_ASSIGN_OR_RETURN(
      Transaction t1,
      BuildTxn(red.db_.get(), "T1", all, arcs1, &lock1, &unlock1));
  WYDB_ASSIGN_OR_RETURN(
      Transaction t2,
      BuildTxn(red.db_.get(), "T2", all, arcs2, &lock2, &unlock2));

  std::vector<Transaction> txns;
  txns.push_back(std::move(t1));
  txns.push_back(std::move(t2));
  WYDB_ASSIGN_OR_RETURN(TransactionSystem sys,
                        TransactionSystem::Create(red.db_.get(),
                                                  std::move(txns)));
  red.system_ = std::make_unique<TransactionSystem>(std::move(sys));
  return red;
}

Result<PrefixSet> SatReduction::WitnessPrefix(
    const std::vector<bool>& assignment) const {
  if (static_cast<int>(assignment.size()) != formula_.num_vars()) {
    return Status::InvalidArgument("assignment size mismatch");
  }
  if (!formula_.IsSatisfiedBy(assignment)) {
    return Status::FailedPrecondition(
        "assignment does not satisfy the formula");
  }
  const Transaction& t1 = system_->txn(0);
  const Transaction& t2 = system_->txn(1);
  std::vector<std::vector<NodeId>> nodes(2);

  auto hold1 = [&](EntityId e) { nodes[0].push_back(t1.LockNode(e)); };
  auto hold2 = [&](EntityId e) { nodes[1].push_back(t2.LockNode(e)); };

  for (int i = 0; i < formula_.num_clauses(); ++i) {
    // Choose a literal z_i of clause i satisfied by the assignment.
    const Literal* z = nullptr;
    for (const Literal& l : formula_.clause(i)) {
      if (assignment[l.var] == l.positive) {
        z = &l;
        break;
      }
    }
    if (z == nullptr) {
      return Status::Internal("satisfied formula with unsatisfied clause");
    }
    const int j = z->var;
    if (z->positive) {
      // Z_i = {L1 x_j, L1 x'_j, L2 c_i, L1 c'_i}.
      hold1(x_[j]);
      hold1(xp_[j]);
      hold2(c_[i]);
      hold1(cp_[i]);
    } else {
      // Z_i = {L2 x_j, L2 x'_j, L1 x''_j, L1 c_i, L2 c'_i}.
      hold2(x_[j]);
      hold2(xp_[j]);
      hold1(xpp_[j]);
      hold1(c_[i]);
      hold2(cp_[i]);
    }
  }
  return PrefixSet::FromNodeSets(system_.get(), nodes);
}

std::vector<bool> SatReduction::DecodeAssignment(
    const std::vector<GlobalNode>& cycle) const {
  const Transaction& t1 = system_->txn(0);
  const Transaction& t2 = system_->txn(1);
  std::vector<bool> assignment(formula_.num_vars(), true);
  for (int j = 0; j < formula_.num_vars(); ++j) {
    for (GlobalNode g : cycle) {
      const Transaction& t = g.txn == 0 ? t1 : t2;
      const Step& s = t.step(g.node);
      if (s.kind != StepKind::kUnlock) continue;
      if (g.txn == 0 && (s.entity == x_[j] || s.entity == xp_[j])) {
        assignment[j] = true;
        break;
      }
      if (g.txn == 1 && s.entity == x_[j]) {
        assignment[j] = false;
        break;
      }
    }
  }
  return assignment;
}

}  // namespace wydb
