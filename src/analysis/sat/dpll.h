// DPLL satisfiability solver: the oracle used to cross-validate the
// Theorem 2 reduction (formula satisfiable <=> reduced pair has a
// deadlock).
#ifndef WYDB_ANALYSIS_SAT_DPLL_H_
#define WYDB_ANALYSIS_SAT_DPLL_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "analysis/sat/cnf.h"
#include "common/result.h"

namespace wydb {

struct DpllOptions {
  /// Give up (ResourceExhausted) after this many decisions (0 = unbounded).
  uint64_t max_decisions = 50'000'000;
};

struct DpllResult {
  bool satisfiable = false;
  /// A satisfying assignment when satisfiable.
  std::vector<bool> assignment;
  uint64_t decisions = 0;
};

/// Decides satisfiability with two-watched-literal unit propagation and
/// activity-based branching (see DESIGN.md §2 for the invariants).
Result<DpllResult> SolveDpll(const CnfFormula& formula,
                             const DpllOptions& options = {});

}  // namespace wydb

#endif  // WYDB_ANALYSIS_SAT_DPLL_H_
