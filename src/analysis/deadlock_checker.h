// Exact deadlock-freedom decision (Theorem 1).
//
// Two equivalent formulations are implemented, both exploring the
// reachable execution states (= prefixes admitting a schedule):
//   * kStuckState:      look for a reachable, incomplete state with no
//                       legal move — a deadlock partial schedule.
//   * kReductionGraph:  look for a reachable prefix whose reduction graph
//                       is cyclic — a deadlock prefix (Theorem 1). This
//                       detects doom earlier but decides the same
//                       predicate; the equivalence is property-tested.
// Worst-case exponential — Theorem 2 proves this is unavoidable in general
// (coNP-completeness even for two transactions).
#ifndef WYDB_ANALYSIS_DEADLOCK_CHECKER_H_
#define WYDB_ANALYSIS_DEADLOCK_CHECKER_H_

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "analysis/search_engine.h"
#include "common/result.h"
#include "core/prefix.h"
#include "core/schedule.h"
#include "core/state_store.h"
#include "core/system.h"

namespace wydb {

/// How DeadlockChecker recognizes a deadlock.
enum class DeadlockDetectionMode {
  kStuckState,
  kReductionGraph,
};

struct DeadlockCheckOptions {
  DeadlockDetectionMode mode = DeadlockDetectionMode::kStuckState;
  /// Abort with ResourceExhausted after visiting this many states
  /// (0 = unbounded).
  uint64_t max_states = 5'000'000;
  /// When false, skip memoization of visited states (ablation knob for the
  /// bench suite; exponentially slower on diamond-shaped state spaces).
  bool memoize = true;
  /// Expansion engine; kNaiveReference is the retained seed implementation
  /// used for cross-validation and benchmarking.
  SearchEngine engine = SearchEngine::kIncremental;
  /// Worker threads for kParallelSharded (ignored by the serial engines).
  /// 0 = the WYDB_SEARCH_THREADS environment variable when set, else the
  /// hardware concurrency. Results are identical for every value.
  int search_threads = 0;
  /// Store memory mode (DESIGN.md §9): key encoding + spill watermark.
  /// Non-default values require the kParallelSharded or kReduced engine
  /// (kCompact: kParallelSharded only — reduced witness replay reads
  /// ancestor keys, which compaction discards).
  StoreOptions store;
  /// Wall-clock abort point; default-constructed (epoch) = no deadline.
  /// Overruns return ResourceExhausted, like max_states. Checked every
  /// ~2048 popped states by the serial engines and once per worker chunk
  /// by the level-synchronous ones.
  std::chrono::steady_clock::time_point deadline{};
};

/// Evidence that a system can deadlock.
struct DeadlockWitness {
  /// A partial schedule leading to the deadlock prefix / stuck state.
  Schedule schedule;
  /// The prefix executed by `schedule`.
  std::vector<std::vector<NodeId>> prefix_nodes;
  /// For kReductionGraph: the cycle found in R(A'), as "T.Lx -> ..." text.
  std::string reduction_cycle;
};

struct DeadlockReport {
  bool deadlock_free = false;
  std::optional<DeadlockWitness> witness;
  uint64_t states_visited = 0;
  /// Distinct states held by the search store when the verdict was
  /// reached — the memory-side cost metric behind `--stats`. On a
  /// deadlock-free run this is the full reachable-state count for the
  /// exhaustive engines and the orbit-representative count under
  /// kReduced; on witness-bearing runs it is engine-dependent (how many
  /// children of the final level were interned before returning).
  uint64_t states_interned = 0;
  /// Expansions skipped by kReduced's persistent-move (sleep-set)
  /// pruning; 0 for the exhaustive engines.
  uint64_t sleep_set_pruned = 0;
  /// Times the engine consulted the wall clock against `deadline`
  /// (0 when no deadline was set): evidence that the budget was being
  /// enforced, surfaced by `--stats` and the server's `stats` verb.
  uint64_t deadline_polls = 0;
  /// Memory-side cost metrics (--stats; DESIGN.md §9). Total store
  /// bytes, of which the key/aux/record arenas and the probe tables.
  /// Zero for kNaiveReference (no instrumented store).
  uint64_t store_bytes = 0;
  uint64_t arena_bytes = 0;
  uint64_t probe_table_bytes = 0;
  /// BFS levels whose staged frontier hit the spill file.
  uint64_t spilled_levels = 0;
  /// False when the verdict came from a hash-compacted (fingerprint)
  /// search: sound for refutation, not a certificate. Witnesses replay
  /// concretely and stay trustworthy either way.
  bool exact = true;
  /// kCompact only: Stanford-bitstate-style expected collision
  /// probability bound, n(n-1)/2^65 for n interned fingerprints.
  double fingerprint_collision_bound = 0.0;
};

/// Decides deadlock-freedom of `sys` exactly.
Result<DeadlockReport> CheckDeadlockFreedom(
    const TransactionSystem& sys, const DeadlockCheckOptions& options = {});

/// Convenience: tests whether `prefix` is a deadlock prefix in the sense of
/// Section 3 — it admits a schedule AND its reduction graph is cyclic.
Result<bool> IsDeadlockPrefix(const TransactionSystem& sys,
                              const PrefixSet& prefix,
                              uint64_t max_states = 5'000'000);

}  // namespace wydb

#endif  // WYDB_ANALYSIS_DEADLOCK_CHECKER_H_
