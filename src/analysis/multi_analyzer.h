// Safety + deadlock-freedom of a transaction SYSTEM in time polynomial in
// the number of cycles of its interaction graph (Section 5, Theorem 4;
// O(n^2) for fixed transaction count, Corollary 4).
//
// Algorithm:
//   1. Every pair must pass the Theorem 3 test (else the system fails).
//   2. For each simple cycle of the interaction graph G(A), traversed in
//      each direction with each choice of "last transaction", compute the
//      canonical maximal prefixes T1*,...,Tk* of the normal-form theorem;
//      if every Ti* retains its Lx_i step (x_i = dominating entity of the
//      pair (Ti, Ti+1)), the serial concatenation of the prefixes is a
//      partial schedule with a cyclic conflict digraph — a violation.
//   3. Otherwise the system is safe and deadlock-free.
#ifndef WYDB_ANALYSIS_MULTI_ANALYZER_H_
#define WYDB_ANALYSIS_MULTI_ANALYZER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/pair_analyzer.h"
#include "common/result.h"
#include "core/schedule.h"
#include "core/system.h"

namespace wydb {

struct MultiCheckOptions {
  /// Refuse (ResourceExhausted) if the interaction graph has more simple
  /// cycles than this (0 = unbounded). Theorem 4's bound is inherently
  /// per-cycle.
  uint64_t max_cycles = 1'000'000;
};

struct MultiViolation {
  /// For a failed pair: the two transaction indices and the pair verdict.
  std::optional<std::pair<int, int>> failed_pair;
  PairVerdict pair_verdict;

  /// For a cycle-based violation: the traversal order T1..Tk (Tk last).
  std::vector<int> cycle;
  /// The normal-form partial schedule S* whose D(S*) is cyclic.
  Schedule witness;
};

struct MultiReport {
  bool safe_and_deadlock_free = false;
  std::optional<MultiViolation> violation;
  uint64_t cycles_checked = 0;
  uint64_t variants_checked = 0;  ///< direction x rotation variants.
};

Result<MultiReport> CheckSystemSafeAndDeadlockFree(
    const TransactionSystem& sys, const MultiCheckOptions& options = {});

/// The Section 6 remark, as API: deadlock-freedom alone is coNP-complete
/// even for fixed transaction counts (Theorem 2 via sites, [Y2] via
/// transaction count), BUT transactions locked by a safe policy (e.g.
/// two-phase locking [EGLT]) are safe by construction, and for a safe
/// system deadlock-freedom coincides with safety+deadlock-freedom — which
/// Theorem 4 decides in polynomial time for a fixed number of
/// transactions.
///
/// The caller asserts safety (e.g. all transactions two-phase locked);
/// the function merely re-labels the Theorem 4 verdict. Passing an unsafe
/// system yields a sound "not deadlock-free OR not safe" refutation but
/// the verdict can no longer be read as deadlock-freedom alone.
inline Result<MultiReport> CheckDeadlockFreedomAssumingSafe(
    const TransactionSystem& sys, const MultiCheckOptions& options = {}) {
  return CheckSystemSafeAndDeadlockFree(sys, options);
}

}  // namespace wydb

#endif  // WYDB_ANALYSIS_MULTI_ANALYZER_H_
