#include "analysis/multi_analyzer.h"

#include <algorithm>

#include "common/string_util.h"
#include "core/prefix.h"

namespace wydb {
namespace {

// Linear extension of the prefix (a downward-closed node mask) of `t`,
// obtained by filtering a topological order of the whole transaction.
std::vector<NodeId> PrefixExtension(const Transaction& t,
                                    const std::vector<uint64_t>& mask) {
  std::vector<NodeId> out;
  for (NodeId v : t.SomeLinearExtension()) {
    if (bitmask::Test(mask, v)) out.push_back(v);
  }
  return out;
}

// Entities of the given transactions whose access CONFLICTS with
// `target`'s own access of them (at least one side exclusive). The
// canonical-prefix construction only needs T* to avoid CONFLICTING
// contact with the rest of the cycle: an entity both sides merely read
// neither blocks nor draws an arc, so truncating T* at it would lose
// violations. For X-only systems this is the paper's full entity union
// (entities `target` never accesses are dropped too, which
// MaximalPrefixAvoiding ignores anyway).
std::vector<EntityId> ConflictingEntityUnion(const TransactionSystem& sys,
                                             int target,
                                             const std::vector<int>& txns) {
  const Transaction& tt = sys.txn(target);
  std::vector<EntityId> out;
  for (int i : txns) {
    const Transaction& t = sys.txn(i);
    for (EntityId e : t.entities()) {
      if (tt.ConflictsOn(e, t.LockModeOf(e))) out.push_back(e);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

Result<MultiReport> CheckSystemSafeAndDeadlockFree(
    const TransactionSystem& sys, const MultiCheckOptions& options) {
  MultiReport report;
  const int n = sys.num_transactions();

  // Step 1: all pairs safe+DF; remember dominating entities.
  // dom[i][j] is only meaningful when i and j share entities.
  std::vector<std::vector<EntityId>> dom(
      n, std::vector<EntityId>(n, kInvalidEntity));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      auto verdict = CheckPairTheorem3(sys.txn(i), sys.txn(j));
      if (!verdict.ok()) return verdict.status();
      if (!verdict->safe_and_deadlock_free) {
        report.safe_and_deadlock_free = false;
        MultiViolation v;
        v.failed_pair = {i, j};
        v.pair_verdict = *verdict;
        report.violation = std::move(v);
        return report;
      }
      dom[i][j] = dom[j][i] = verdict->dominating_entity;
    }
  }

  // Step 2: enumerate interaction-graph cycles.
  UndirectedGraph g = sys.InteractionGraph();
  std::vector<std::vector<NodeId>> cycles = g.SimpleCycles(
      options.max_cycles == 0 ? 0 : options.max_cycles + 1);
  if (options.max_cycles != 0 &&
      static_cast<uint64_t>(cycles.size()) > options.max_cycles) {
    return Status::ResourceExhausted(StrFormat(
        "interaction graph has more than %llu simple cycles",
        static_cast<unsigned long long>(options.max_cycles)));
  }

  for (const std::vector<NodeId>& raw_cycle : cycles) {
    ++report.cycles_checked;
    const int k = static_cast<int>(raw_cycle.size());
    for (int direction = 0; direction < 2; ++direction) {
      std::vector<int> seq(raw_cycle.begin(), raw_cycle.end());
      if (direction == 1) std::reverse(seq.begin(), seq.end());
      for (int rot = 0; rot < k; ++rot) {
        ++report.variants_checked;
        // order[0..k-1] = T1..Tk, traversed so that arcs go
        // order[i] -> order[i+1] and order[k-1] is the last transaction.
        std::vector<int> order(k);
        for (int i = 0; i < k; ++i) order[i] = seq[(rot + i) % k];

        // Dominating entity x_i for each consecutive pair (mod k).
        std::vector<EntityId> x(k);
        bool pairs_share = true;
        for (int i = 0; i < k; ++i) {
          x[i] = dom[order[i]][order[(i + 1) % k]];
          if (x[i] == kInvalidEntity) {
            pairs_share = false;  // Not an edge of G(A); skip.
            break;
          }
        }
        if (!pairs_share) continue;

        // Canonical maximal prefixes.
        std::vector<std::vector<uint64_t>> prefix(k);
        // T1*: avoid conflicting entities of every cycle transaction
        // except T1, T2.
        {
          std::vector<int> others;
          for (int j = 2; j < k; ++j) others.push_back(order[j]);
          prefix[0] = MaximalPrefixAvoiding(
              sys.txn(order[0]), ConflictingEntityUnion(sys, order[0], others));
        }
        // Ti*: avoid the conflicting part of Y(T*_{i-1}) plus conflicting
        // entities of non-adjacent cycle transactions.
        for (int i = 1; i < k; ++i) {
          std::vector<int> others;
          for (int j = 0; j < k; ++j) {
            if (j == i - 1 || j == i || j == (i + 1) % k) continue;
            others.push_back(order[j]);
          }
          const Transaction& cur = sys.txn(order[i]);
          const Transaction& prev = sys.txn(order[i - 1]);
          std::vector<EntityId> avoid =
              ConflictingEntityUnion(sys, order[i], others);
          std::vector<EntityId> y = RemainingEntities(prev, prefix[i - 1]);
          std::erase_if(y, [&](EntityId e) {
            return !cur.ConflictsOn(e, prev.LockModeOf(e));
          });
          avoid.insert(avoid.end(), y.begin(), y.end());
          std::sort(avoid.begin(), avoid.end());
          avoid.erase(std::unique(avoid.begin(), avoid.end()), avoid.end());
          prefix[i] = MaximalPrefixAvoiding(cur, avoid);
        }

        // Property (3): every Ti* keeps its Lx_i step.
        bool all_lock = true;
        for (int i = 0; i < k; ++i) {
          NodeId lx = sys.txn(order[i]).LockNode(x[i]);
          if (!bitmask::Test(prefix[i], lx)) {
            all_lock = false;
            break;
          }
        }
        if (!all_lock) continue;

        // Violation: serial concatenation is a partial schedule with a
        // cyclic conflict digraph.
        MultiViolation v;
        v.cycle = order;
        for (int i = 0; i < k; ++i) {
          for (NodeId node : PrefixExtension(sys.txn(order[i]), prefix[i])) {
            v.witness.push_back(GlobalNode{order[i], node});
          }
        }
        report.safe_and_deadlock_free = false;
        report.violation = std::move(v);
        return report;
      }
    }
  }

  report.safe_and_deadlock_free = true;
  return report;
}

}  // namespace wydb
