#include "analysis/certificate.h"

#include <cstdlib>
#include <sstream>

#include "common/hash_util.h"
#include "common/macros.h"
#include "common/string_util.h"
#include "graph/algorithms.h"

namespace wydb {
namespace {

uint64_t FnvBytes(const std::string& s) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return MixHash64(h);
}

std::string Hex16(uint64_t v) { return StrFormat("%016llx", (unsigned long long)v); }

bool ParseHex16(const std::string& s, uint64_t* out) {
  if (s.size() != 16) return false;
  char* end = nullptr;
  *out = std::strtoull(s.c_str(), &end, 16);
  return end == s.c_str() + 16;
}

bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtoull(s.c_str(), &end, 10);
  return end == s.c_str() + s.size();
}

/// Replays the §5 conflict-arc rule over a schedule of `sys` and returns
/// the resulting D(S') — an implementation independent of the search
/// engines, so it can countersign their witnesses.
Digraph ReplayConflictDigraph(const TransactionSystem& sys,
                              const Schedule& sched) {
  const int n = sys.num_transactions();
  Digraph d(n);
  std::vector<std::vector<bool>> executed(n);
  for (int t = 0; t < n; ++t) executed[t].assign(sys.txn(t).num_steps(), false);
  for (GlobalNode g : sched) {
    const Step& st = sys.txn(g.txn).step(g.node);
    if (st.kind == StepKind::kLock) {
      for (int j : sys.AccessorsOf(st.entity)) {
        if (j == g.txn) continue;
        if (!LockModesConflict(st.mode, sys.txn(j).LockModeOf(st.entity))) {
          continue;
        }
        NodeId lj = sys.txn(j).LockNode(st.entity);
        if (executed[j][lj]) {
          d.AddArc(j, g.txn);
        } else {
          d.AddArc(g.txn, j);
        }
      }
    }
    executed[g.txn][g.node] = true;
  }
  d.DeduplicateArcs();
  return d;
}

}  // namespace

CertificateBundle MakeCertificate(const SystemKey& key,
                                  const SafetyReport& report) {
  CertificateBundle b;
  b.certified = report.holds;
  b.canonical_text = key.text;
  b.key_hash = key.hash;
  b.key_complete = key.complete;
  b.states_visited = report.states_visited;
  b.states_interned = report.states_interned;
  if (!report.holds && report.violation.has_value()) {
    std::vector<int> slot_of(key.txn_perm.size());
    for (size_t slot = 0; slot < key.txn_perm.size(); ++slot) {
      slot_of[key.txn_perm[slot]] = static_cast<int>(slot);
    }
    for (GlobalNode g : report.violation->schedule) {
      b.witness.emplace_back(slot_of[g.txn], g.node);
    }
    for (int t : report.violation->txn_cycle) b.cycle.push_back(slot_of[t]);
  }
  return b;
}

std::string SerializeCertificate(const CertificateBundle& bundle) {
  std::string body = "wydb-certificate v1\n";
  body += StrFormat("certified: %s\n", bundle.certified ? "yes" : "no");
  body += "key-hash: " + Hex16(bundle.key_hash) + "\n";
  body += StrFormat("key-complete: %s\n", bundle.key_complete ? "yes" : "no");
  body += StrFormat("states-visited: %llu\n",
                    (unsigned long long)bundle.states_visited);
  body += StrFormat("states-interned: %llu\n",
                    (unsigned long long)bundle.states_interned);
  if (!bundle.witness.empty()) {
    body += "witness:";
    for (const auto& [slot, node] : bundle.witness) {
      body += StrFormat(" %d.%d", slot, node);
    }
    body += "\n";
  }
  if (!bundle.cycle.empty()) {
    body += "cycle:";
    for (int slot : bundle.cycle) body += StrFormat(" %d", slot);
    body += "\n";
  }
  body += "canonical-system-begin\n";
  body += bundle.canonical_text;
  body += "canonical-system-end\n";
  return body + "fingerprint: " + Hex16(FnvBytes(body)) + "\n";
}

Result<CertificateBundle> ParseCertificate(const std::string& text) {
  auto bad = [](const std::string& msg) {
    return Status::InvalidArgument("certificate: " + msg);
  };
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "wydb-certificate v1") {
    return bad("missing 'wydb-certificate v1' header");
  }
  CertificateBundle b;
  std::string body = line + "\n";
  bool saw_certified = false;
  bool saw_system = false;
  bool saw_fingerprint = false;
  uint64_t fingerprint = 0;
  while (std::getline(in, line)) {
    if (line.rfind("fingerprint: ", 0) == 0) {
      if (!ParseHex16(line.substr(13), &fingerprint)) {
        return bad("malformed fingerprint");
      }
      saw_fingerprint = true;
      break;
    }
    body += line + "\n";
    if (line.rfind("certified: ", 0) == 0) {
      const std::string v = line.substr(11);
      if (v != "yes" && v != "no") return bad("certified must be yes|no");
      b.certified = v == "yes";
      saw_certified = true;
    } else if (line.rfind("key-hash: ", 0) == 0) {
      if (!ParseHex16(line.substr(10), &b.key_hash)) {
        return bad("malformed key-hash");
      }
    } else if (line.rfind("key-complete: ", 0) == 0) {
      b.key_complete = line.substr(14) == "yes";
    } else if (line.rfind("states-visited: ", 0) == 0) {
      if (!ParseU64(line.substr(16), &b.states_visited)) {
        return bad("malformed states-visited");
      }
    } else if (line.rfind("states-interned: ", 0) == 0) {
      if (!ParseU64(line.substr(17), &b.states_interned)) {
        return bad("malformed states-interned");
      }
    } else if (line.rfind("witness:", 0) == 0) {
      std::istringstream toks(line.substr(8));
      std::string tok;
      while (toks >> tok) {
        size_t dot = tok.find('.');
        uint64_t slot = 0;
        uint64_t node = 0;
        if (dot == std::string::npos || !ParseU64(tok.substr(0, dot), &slot) ||
            !ParseU64(tok.substr(dot + 1), &node)) {
          return bad("malformed witness token '" + tok + "'");
        }
        b.witness.emplace_back(static_cast<int>(slot),
                               static_cast<NodeId>(node));
      }
    } else if (line.rfind("cycle:", 0) == 0) {
      std::istringstream toks(line.substr(6));
      std::string tok;
      while (toks >> tok) {
        uint64_t slot = 0;
        if (!ParseU64(tok, &slot)) {
          return bad("malformed cycle token '" + tok + "'");
        }
        b.cycle.push_back(static_cast<int>(slot));
      }
    } else if (line == "canonical-system-begin") {
      std::string sys_text;
      bool closed = false;
      while (std::getline(in, line)) {
        body += line + "\n";
        if (line == "canonical-system-end") {
          closed = true;
          break;
        }
        sys_text += line + "\n";
      }
      if (!closed) return bad("unterminated canonical system block");
      b.canonical_text = std::move(sys_text);
      saw_system = true;
    } else {
      return bad("unknown line '" + line + "'");
    }
  }
  if (!saw_fingerprint) return bad("missing fingerprint line");
  if (!saw_certified) return bad("missing certified line");
  if (!saw_system) return bad("missing canonical system block");
  if (FnvBytes(body) != fingerprint) {
    return bad("fingerprint mismatch (corrupted or edited)");
  }
  return b;
}

Result<SafetyViolation> ValidateViolation(const TransactionSystem& sys,
                                          Schedule sched) {
  WYDB_RETURN_IF_ERROR(
      ValidateSchedule(sys, sched, /*require_complete=*/false));
  Digraph replayed = ReplayConflictDigraph(sys, sched);
  std::vector<NodeId> cycle = FindCycle(replayed);
  if (cycle.empty()) {
    return Status::InvalidArgument(
        "witness schedule replays to an acyclic conflict digraph");
  }
  return SafetyViolation{std::move(sched),
                         std::vector<int>(cycle.begin(), cycle.end())};
}

Result<SafetyViolation> RealizeWitness(const CertificateBundle& bundle,
                                       const SystemKey& key,
                                       const TransactionSystem& sys) {
  if (bundle.certified) {
    return Status::FailedPrecondition(
        "certificate is a certification, not a refutation");
  }
  if (key.text != bundle.canonical_text) {
    return Status::InvalidArgument(
        "certificate was issued for a different canonical system");
  }
  const int n = sys.num_transactions();
  Schedule sched;
  sched.reserve(bundle.witness.size());
  for (const auto& [slot, node] : bundle.witness) {
    if (slot < 0 || slot >= n) {
      return Status::InvalidArgument("witness slot out of range");
    }
    const int txn = key.txn_perm[slot];
    if (node < 0 || node >= sys.txn(txn).num_steps()) {
      return Status::InvalidArgument("witness node out of range");
    }
    sched.push_back(GlobalNode{txn, node});
  }
  return ValidateViolation(sys, std::move(sched));
}

}  // namespace wydb
