#include "analysis/early_unlock.h"

#include <algorithm>

#include "analysis/multi_analyzer.h"
#include "common/macros.h"

namespace wydb {
namespace {

// Returns the step sequence if `t` is a total order, empty otherwise.
std::vector<NodeId> TotalOrderOf(const Transaction& t) {
  std::vector<NodeId> order = t.SomeLinearExtension();
  for (size_t i = 0; i + 1 < order.size(); ++i) {
    if (!t.Precedes(order[i], order[i + 1])) return {};
  }
  return order;
}

Result<Transaction> RebuildSequence(const Database* db,
                                    const std::string& name,
                                    const std::vector<Step>& steps) {
  std::vector<std::pair<int, int>> arcs;
  for (int i = 0; i + 1 < static_cast<int>(steps.size()); ++i) {
    arcs.emplace_back(i, i + 1);
  }
  return Transaction::Create(db, name, steps, std::move(arcs));
}

}  // namespace

int64_t HoldingCost(const Transaction& t) {
  std::vector<NodeId> order = TotalOrderOf(t);
  if (order.empty() && t.num_steps() > 1) return -1;
  std::vector<int64_t> pos(t.num_steps());
  for (size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  int64_t cost = 0;
  for (EntityId e : t.entities()) {
    cost += pos[t.UnlockNode(e)] - pos[t.LockNode(e)];
  }
  return cost;
}

Result<EarlyUnlockResult> OptimizeEarlyUnlock(
    const TransactionSystem& sys, const EarlyUnlockOptions& options) {
  MultiCheckOptions mopts;
  mopts.max_cycles = options.max_cycles;
  {
    WYDB_ASSIGN_OR_RETURN(MultiReport base,
                          CheckSystemSafeAndDeadlockFree(sys, mopts));
    if (!base.safe_and_deadlock_free) {
      return Status::FailedPrecondition(
          "input system is not safe+deadlock-free; early unlocking can "
          "only preserve a certificate, not create one");
    }
  }

  const Database* db = &sys.db();
  const int n = sys.num_transactions();

  // Working copy: per-transaction step sequences; partial orders kept as
  // immutable Transaction copies.
  std::vector<std::vector<Step>> seq(n);
  std::vector<bool> is_total(n, false);
  EarlyUnlockResult result;
  for (int i = 0; i < n; ++i) {
    const Transaction& t = sys.txn(i);
    std::vector<NodeId> order = TotalOrderOf(t);
    if (order.empty() && t.num_steps() > 1) {
      ++result.skipped_partial;
      continue;
    }
    is_total[i] = true;
    for (NodeId v : order) seq[i].push_back(t.step(v));
    result.holding_cost_before += HoldingCost(t);
  }

  // Materializes the current working system.
  auto build = [&]() -> Result<TransactionSystem> {
    std::vector<Transaction> txns;
    for (int i = 0; i < n; ++i) {
      if (is_total[i]) {
        WYDB_ASSIGN_OR_RETURN(
            Transaction t, RebuildSequence(db, sys.txn(i).name(), seq[i]));
        txns.push_back(std::move(t));
      } else {
        txns.push_back(sys.txn(i));
      }
    }
    return TransactionSystem::Create(db, std::move(txns));
  };

  // Holding cost of a sequence directly (positions = indices).
  auto seq_cost = [](const std::vector<Step>& s) {
    int64_t cost = 0;
    std::vector<std::pair<EntityId, int>> locks;
    for (int p = 0; p < static_cast<int>(s.size()); ++p) {
      if (s[p].kind == StepKind::kLock) {
        locks.emplace_back(s[p].entity, p);
      } else {
        for (const auto& [e, lp] : locks) {
          if (e == s[p].entity) cost += p - lp;
        }
      }
    }
    return cost;
  };

  // Greedy: relocate each Unlock to the furthest-left position that (a)
  // stays after its own Lock, (b) strictly decreases the transaction's
  // holding cost, and (c) keeps the Theorem 4 certificate. Each committed
  // move strictly decreases the total integer cost, so the loop
  // terminates.
  bool progress = true;
  bool budget_hit = false;
  while (progress && !budget_hit) {
    progress = false;
    for (int i = 0; i < n && !budget_hit; ++i) {
      if (!is_total[i]) continue;
      const int len = static_cast<int>(seq[i].size());
      for (int q = 1; q < len && !budget_hit; ++q) {
        if (options.max_moves != 0 &&
            result.moves_committed >= options.max_moves) {
          budget_hit = true;
          break;
        }
        if (seq[i][q].kind != StepKind::kUnlock) continue;
        // Own lock position bounds how far left the unlock may travel.
        int own_lock = -1;
        for (int p = 0; p < q; ++p) {
          if (seq[i][p].kind == StepKind::kLock &&
              seq[i][p].entity == seq[i][q].entity) {
            own_lock = p;
          }
        }
        const int64_t cost_now = seq_cost(seq[i]);
        const std::vector<Step> original = seq[i];
        bool committed = false;
        for (int p = own_lock + 1; p < q && !committed; ++p) {
          // Move step q to position p (shifting p..q-1 right).
          std::vector<Step> moved = original;
          Step u = moved[q];
          moved.erase(moved.begin() + q);
          moved.insert(moved.begin() + p, u);
          if (seq_cost(moved) >= cost_now) continue;
          seq[i] = moved;
          auto candidate = build();
          bool keep = false;
          if (candidate.ok()) {
            auto check = CheckSystemSafeAndDeadlockFree(*candidate, mopts);
            if (!check.ok()) {
              seq[i] = original;
              return check.status();
            }
            keep = check->safe_and_deadlock_free;
          }
          if (keep) {
            ++result.moves_committed;
            progress = true;
            committed = true;
          } else {
            seq[i] = original;
            ++result.moves_rejected;
          }
        }
      }
    }
  }

  WYDB_ASSIGN_OR_RETURN(TransactionSystem final_sys, build());
  for (int i = 0; i < n; ++i) {
    if (is_total[i]) {
      result.holding_cost_after += HoldingCost(final_sys.txn(i));
    }
  }
  result.system = std::move(final_sys);
  return result;
}

}  // namespace wydb
