#include "analysis/copies_analyzer.h"

#include "common/string_util.h"

namespace wydb {

CopiesVerdict CheckTwoCopies(const Transaction& t) {
  CopiesVerdict v;
  if (t.entities().size() <= 1) {
    // Zero or one entity: two copies just serialize on it.
    v.safe_and_deadlock_free = true;
    v.first_entity =
        t.entities().empty() ? kInvalidEntity : t.entities()[0];
    return v;
  }

  // Condition 1: some Lx precedes all other nodes.
  EntityId x = kInvalidEntity;
  for (EntityId cand : t.entities()) {
    NodeId lx = t.LockNode(cand);
    bool first = true;
    for (NodeId u = 0; u < t.num_steps() && first; ++u) {
      if (u != lx && !t.Precedes(lx, u)) first = false;
    }
    if (first) {
      x = cand;
      break;
    }
  }
  if (x == kInvalidEntity) {
    v.safe_and_deadlock_free = false;
    v.explanation = StrFormat(
        "no entity of '%s' is locked before all other steps (Corollary 3)",
        t.name().c_str());
    return v;
  }
  v.first_entity = x;

  // Condition 2: every other y is covered by some z with Lz < Ly < Uz.
  for (EntityId y : t.entities()) {
    if (y == x) continue;
    NodeId ly = t.LockNode(y);
    bool covered = false;
    for (EntityId z : t.entities()) {
      if (z == y) continue;
      if (t.Precedes(t.LockNode(z), ly) && t.Precedes(ly, t.UnlockNode(z))) {
        covered = true;
        break;
      }
    }
    if (!covered) {
      v.safe_and_deadlock_free = false;
      v.offending_entity = y;
      v.explanation = StrFormat(
          "entity '%s' of '%s' has no cover: nothing is locked before L%s "
          "and unlocked after it (Corollary 3)",
          t.db().EntityName(y).c_str(), t.name().c_str(),
          t.db().EntityName(y).c_str());
      return v;
    }
  }
  v.safe_and_deadlock_free = true;
  return v;
}

CopiesVerdict CheckCopies(const Transaction& t, int d) {
  if (d < 2) {
    CopiesVerdict v;
    v.safe_and_deadlock_free = true;
    v.explanation = "fewer than two copies cannot interleave";
    return v;
  }
  // Theorem 5: the d-copy system is safe+DF iff the 2-copy system is.
  return CheckTwoCopies(t);
}

Result<TransactionSystem> MakeCopies(const Transaction& t, int d) {
  if (d < 1) return Status::InvalidArgument("need at least one copy");
  std::vector<Transaction> txns;
  txns.reserve(d);
  for (int i = 1; i <= d; ++i) {
    std::vector<Step> steps;
    steps.reserve(t.num_steps());
    std::vector<std::pair<int, int>> arcs;
    for (NodeId v = 0; v < t.num_steps(); ++v) steps.push_back(t.step(v));
    for (NodeId v = 0; v < t.num_steps(); ++v) {
      for (NodeId w : t.graph().OutNeighbors(v)) arcs.emplace_back(v, w);
    }
    auto copy = Transaction::Create(&t.db(),
                                    StrFormat("%s#%d", t.name().c_str(), i),
                                    std::move(steps), std::move(arcs));
    if (!copy.ok()) return copy.status();
    txns.push_back(std::move(*copy));
  }
  return TransactionSystem::Create(&t.db(), std::move(txns));
}

Result<ReplicatedCopies> MakeReplicatedCopies(const Transaction& t, int d,
                                              int degree) {
  if (degree < 1) return Status::InvalidArgument("need degree >= 1");
  Result<TransactionSystem> sys = MakeCopies(t, d);
  if (!sys.ok()) return sys.status();
  return ReplicatedCopies{std::move(*sys),
                          CopyPlacement::RoundRobin(t.db(), degree),
                          CheckCopies(t, d)};
}

}  // namespace wydb
