// Early unlocking (the extension the paper points to via [W2], Wolfson's
// "An algorithm for early unlocking of entities in database transactions"):
// given a transaction system that is safe and deadlock-free, hoist Unlock
// steps earlier — shrinking the window each entity stays locked — while
// re-certifying safety+deadlock-freedom with the paper's polynomial tests
// after every move.
//
// The optimizer is greedy and conservative: it only commits a hoist when
// the Theorem 4 test still passes, so the output system carries the same
// certificate as the input. Currently supports totally-ordered
// transactions (sequences), the common case for workloads authored as
// programs; partially-ordered inputs are returned unchanged.
#ifndef WYDB_ANALYSIS_EARLY_UNLOCK_H_
#define WYDB_ANALYSIS_EARLY_UNLOCK_H_

#include <cstdint>

#include "common/result.h"
#include "core/system.h"

namespace wydb {

struct EarlyUnlockOptions {
  /// Passed through to the Theorem 4 re-certification.
  uint64_t max_cycles = 100'000;
  /// Upper bound on committed hoists (0 = unbounded); a safety valve for
  /// very large systems.
  uint64_t max_moves = 0;
};

struct EarlyUnlockResult {
  TransactionSystem system;  ///< The optimized (still certified) system.
  /// Sum over transactions and entities of (pos(Ux) - pos(Lx)) before and
  /// after — the paper's "amount of time entities are kept locked".
  int64_t holding_cost_before = 0;
  int64_t holding_cost_after = 0;
  uint64_t moves_committed = 0;
  uint64_t moves_rejected = 0;
  /// Transactions skipped because they are genuinely partial orders.
  int skipped_partial = 0;
};

/// Requires the input system to already be safe+deadlock-free (returns
/// FailedPrecondition otherwise — hoisting cannot repair an unsafe
/// system, only preserve a certificate).
Result<EarlyUnlockResult> OptimizeEarlyUnlock(
    const TransactionSystem& sys, const EarlyUnlockOptions& options = {});

/// The holding cost of one totally-ordered transaction (sum of per-entity
/// lock window lengths); -1 if the transaction is not a total order.
int64_t HoldingCost(const Transaction& t);

}  // namespace wydb

#endif  // WYDB_ANALYSIS_EARLY_UNLOCK_H_
