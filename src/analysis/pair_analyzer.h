// Safety + deadlock-freedom of a PAIR of distributed transactions in
// polynomial time (Section 5, Theorem 3 and Corollary 2).
//
// Even though safety alone and deadlock-freedom alone are coNP-complete
// for two distributed transactions ([KP2] and Theorem 2 respectively),
// their conjunction is decidable in O(n^2):
//   (1) some shared entity x is locked before every other shared entity
//       in both transactions, and
//   (2) for every other shared y, L_{T1}(Ly) ∩ R_{T2}(Ly) and
//       L_{T2}(Ly) ∩ R_{T1}(Ly) are nonempty,
// where R_T(s) = entities locked before s in T, and L_T(s) = entities z
// with s preceding Uz but not Lz.
//
// The O(n^3) minimal-prefix algorithm the paper develops first is kept as
// CheckPairMinimalPrefix — an independent oracle and the ablation baseline
// for bench_pair.
#ifndef WYDB_ANALYSIS_PAIR_ANALYZER_H_
#define WYDB_ANALYSIS_PAIR_ANALYZER_H_

#include <string>

#include "common/result.h"
#include "core/transaction.h"

namespace wydb {

/// Why a pair failed (or passed) the test.
enum class PairFailure {
  kNone,                ///< Safe and deadlock-free.
  kNoDominatingEntity,  ///< Condition (1) fails.
  kUncoveredEntity,     ///< Condition (2) fails for some y.
};

struct PairVerdict {
  bool safe_and_deadlock_free = false;
  PairFailure failure = PairFailure::kNone;
  /// The dominating first-locked shared entity x (kInvalidEntity when the
  /// transactions share nothing or condition (1) fails).
  EntityId dominating_entity = kInvalidEntity;
  /// For kUncoveredEntity: the y whose cover sets came up empty.
  EntityId offending_entity = kInvalidEntity;
  std::string explanation;
};

/// Theorem 3 test, O(n^2) given transitively-closed transactions.
/// Requires t1, t2 bound to the same database.
Result<PairVerdict> CheckPairTheorem3(const Transaction& t1,
                                      const Transaction& t2);

/// The O(n^3) minimal-prefix variant from Section 5. Decides the same
/// predicate (the per-entity diagnostics may differ; only the verdict and
/// condition-(1) outputs are guaranteed to match Theorem 3).
Result<PairVerdict> CheckPairMinimalPrefix(const Transaction& t1,
                                           const Transaction& t2);

/// Condition (1) helper, exposed for MultiAnalyzer: the unique shared
/// entity locked first in both transactions, or kInvalidEntity.
EntityId FindDominatingEntity(const Transaction& t1, const Transaction& t2);

}  // namespace wydb

#endif  // WYDB_ANALYSIS_PAIR_ANALYZER_H_
