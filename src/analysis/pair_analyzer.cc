#include "analysis/pair_analyzer.h"

#include <algorithm>

#include "common/macros.h"
#include "common/string_util.h"

namespace wydb {
namespace {

Status CheckSameDb(const Transaction& t1, const Transaction& t2) {
  if (&t1.db() != &t2.db()) {
    return Status::InvalidArgument(
        "transactions are bound to different databases");
  }
  return Status::OK();
}

// The CONFLICTING shared entities of the pair. Inside an isolated pair an
// entity both sides lock in S mode never blocks either transaction and
// never draws a conflict arc — it behaves exactly as if it were renamed
// apart — so the Theorem 3 / minimal-prefix machinery runs on the
// conflicting subset (equal to the full intersection for X-only pairs).
std::vector<EntityId> Shared(const Transaction& t1, const Transaction& t2) {
  std::vector<EntityId> r;
  std::set_intersection(t1.entities().begin(), t1.entities().end(),
                        t2.entities().begin(), t2.entities().end(),
                        std::back_inserter(r));
  std::erase_if(r, [&](EntityId e) {
    return !LockModesConflict(t1.LockModeOf(e), t2.LockModeOf(e));
  });
  return r;
}

PairVerdict OkVerdict(EntityId dominating) {
  PairVerdict v;
  v.safe_and_deadlock_free = true;
  v.failure = PairFailure::kNone;
  v.dominating_entity = dominating;
  return v;
}

PairVerdict NoDominating(const Transaction& t1, const Transaction& t2) {
  PairVerdict v;
  v.safe_and_deadlock_free = false;
  v.failure = PairFailure::kNoDominatingEntity;
  v.explanation = StrFormat(
      "no shared entity is locked before all other shared entities in both "
      "'%s' and '%s' (condition (1) of Theorem 3)",
      t1.name().c_str(), t2.name().c_str());
  return v;
}

PairVerdict Uncovered(const Transaction& t1, const Transaction& t2,
                      EntityId x, EntityId y) {
  PairVerdict v;
  v.safe_and_deadlock_free = false;
  v.failure = PairFailure::kUncoveredEntity;
  v.dominating_entity = x;
  v.offending_entity = y;
  v.explanation = StrFormat(
      "shared entity '%s' is uncovered between '%s' and '%s' "
      "(condition (2) of Theorem 3)",
      t1.db().EntityName(y).c_str(), t1.name().c_str(), t2.name().c_str());
  return v;
}

}  // namespace

EntityId FindDominatingEntity(const Transaction& t1, const Transaction& t2) {
  std::vector<EntityId> r = Shared(t1, t2);
  for (EntityId x : r) {
    bool dominates = true;
    for (EntityId y : r) {
      if (y == x) continue;
      if (!t1.Precedes(t1.LockNode(x), t1.LockNode(y)) ||
          !t2.Precedes(t2.LockNode(x), t2.LockNode(y))) {
        dominates = false;
        break;
      }
    }
    if (dominates) return x;  // Unique if it exists (locks are a poset).
  }
  return kInvalidEntity;
}

Result<PairVerdict> CheckPairTheorem3(const Transaction& t1,
                                      const Transaction& t2) {
  WYDB_RETURN_IF_ERROR(CheckSameDb(t1, t2));
  std::vector<EntityId> r = Shared(t1, t2);
  if (r.empty()) return OkVerdict(kInvalidEntity);
  if (r.size() == 1) {
    // A single shared entity trivially dominates and needs no cover.
    return OkVerdict(r[0]);
  }

  EntityId x = FindDominatingEntity(t1, t2);
  if (x == kInvalidEntity) return NoDominating(t1, t2);

  // Condition (2): z covers y in (T, T') if T unlocks z only after Ly
  // while not necessarily locking it first (z in L_T(Ly)), and T' locks z
  // before Ly (z in R_{T'}(Ly)).
  auto covered = [&](const Transaction& ta, const Transaction& tb,
                     EntityId y) {
    NodeId lya = ta.LockNode(y);
    NodeId lyb = tb.LockNode(y);
    for (EntityId z : r) {
      if (z == y) continue;
      bool in_l_ta = ta.Precedes(lya, ta.UnlockNode(z)) &&
                     !ta.Precedes(lya, ta.LockNode(z));
      if (!in_l_ta) continue;
      if (tb.Precedes(tb.LockNode(z), lyb)) return true;
    }
    return false;
  };

  for (EntityId y : r) {
    if (y == x) continue;
    if (!covered(t1, t2, y) || !covered(t2, t1, y)) {
      return Uncovered(t1, t2, x, y);
    }
  }
  return OkVerdict(x);
}

Result<PairVerdict> CheckPairMinimalPrefix(const Transaction& t1,
                                           const Transaction& t2) {
  WYDB_RETURN_IF_ERROR(CheckSameDb(t1, t2));
  std::vector<EntityId> r = Shared(t1, t2);
  if (r.empty()) return OkVerdict(kInvalidEntity);
  if (r.size() == 1) return OkVerdict(r[0]);

  EntityId x = FindDominatingEntity(t1, t2);
  if (x == kInvalidEntity) return NoDominating(t1, t2);

  // For each shared y != x and each side (ta, tb): compute the minimal
  // prefix of ta that (a) contains every strict predecessor of Ly in ta and
  // (b) for each z locked before Ly in tb, contains Uz whenever it
  // contains Lz. If that prefix avoids Ly, a violating extension pair
  // exists for this y.
  auto side_violates = [&](const Transaction& ta, const Transaction& tb,
                           EntityId y) {
    NodeId lya = ta.LockNode(y);
    NodeId lyb = tb.LockNode(y);
    const int n = ta.num_steps();
    std::vector<bool> in_prefix(n, false);
    for (NodeId u = 0; u < n; ++u) {
      if (ta.Precedes(u, lya)) in_prefix[u] = true;
    }
    // Entities z with Lz preceding Ly in tb (R_{T2}(Ly) for the minimal
    // extension of tb).
    std::vector<EntityId> r_tb;
    for (EntityId z : r) {
      if (z != y && tb.Precedes(tb.LockNode(z), lyb)) r_tb.push_back(z);
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (EntityId z : r_tb) {
        NodeId lz = ta.LockNode(z);
        NodeId uz = ta.UnlockNode(z);
        if (in_prefix[lz] && !in_prefix[uz]) {
          in_prefix[uz] = true;
          for (NodeId u = 0; u < n; ++u) {
            if (ta.Precedes(u, uz)) in_prefix[u] = true;
          }
          changed = true;
        }
      }
    }
    return !in_prefix[lya];
  };

  for (EntityId y : r) {
    if (y == x) continue;
    if (side_violates(t1, t2, y) || side_violates(t2, t1, y)) {
      return Uncovered(t1, t2, x, y);
    }
  }
  return OkVerdict(x);
}

}  // namespace wydb
