// Engine selection knob shared by the exact checkers.
#ifndef WYDB_ANALYSIS_SEARCH_ENGINE_H_
#define WYDB_ANALYSIS_SEARCH_ENGINE_H_

namespace wydb {

/// Which expansion engine backs an exact state-space search.
enum class SearchEngine {
  /// Interned StateStore states with incremental move generation and
  /// (for the safety checker) incremental conflict-arc cycle detection.
  kIncremental,
  /// The seed implementation: heap-copied states in hash containers, full
  /// rescans per state. Retained as the cross-validation reference and as
  /// the benchmark baseline; verdicts and states_visited counts are
  /// bit-identical to kIncremental by construction (property-tested).
  kNaiveReference,
};

}  // namespace wydb

#endif  // WYDB_ANALYSIS_SEARCH_ENGINE_H_
