// Engine selection knob shared by the exact checkers.
#ifndef WYDB_ANALYSIS_SEARCH_ENGINE_H_
#define WYDB_ANALYSIS_SEARCH_ENGINE_H_

namespace wydb {

/// Which expansion engine backs an exact state-space search.
enum class SearchEngine {
  /// Interned StateStore states with incremental move generation and
  /// (for the safety checker) incremental conflict-arc cycle detection.
  kIncremental,
  /// The seed implementation: heap-copied states in hash containers, full
  /// rescans per state. Retained as the cross-validation reference and as
  /// the benchmark baseline; verdicts and states_visited counts are
  /// bit-identical to kIncremental by construction (property-tested).
  kNaiveReference,
  /// Level-synchronous parallel BFS over a ShardedStateStore: expansion
  /// and per-shard deduplication run on a work-stealing thread pool, and
  /// fresh states get dense ids by a deterministic staging-order rank
  /// (DESIGN.md §7). Verdicts, witnesses, and states_visited are
  /// bit-identical to the serial engines for any thread or shard count;
  /// the thread count comes from the checker options' `search_threads`.
  kParallelSharded,
  /// Commutativity- and symmetry-reduced search (DESIGN.md §8): sleep-set
  /// style persistent-move pruning (StateSpace::ExpandReducedInto) plus
  /// transaction-orbit canonicalization of state keys (core/symmetry),
  /// run on the same level-synchronous sharded substrate. Verdicts agree
  /// with the exhaustive engines and every witness replays to a real
  /// stuck/unsafe state, but states_visited counts the *reduced* space —
  /// orders of magnitude smaller on symmetric workloads. Honors
  /// `search_threads`; results are identical for every thread count.
  kReduced,
};

}  // namespace wydb

#endif  // WYDB_ANALYSIS_SEARCH_ENGINE_H_
