// Exact safety and safety+deadlock-freedom decisions (Lemma 1).
//
// Lemma 1: a system is safe AND deadlock-free iff the conflict digraph
// D(S') of every partial schedule S' is acyclic. The checker explores
// reachable (state, conflict-arc-set) pairs; a reachable cyclic D(S') is a
// violation witness. Pure safety additionally requires the violating
// schedule to be completable.
//
// Exponential in the worst case; the polynomial algorithms of Section 5
// (PairAnalyzer, MultiAnalyzer) are the paper's contribution — this module
// is their ground-truth oracle at small sizes.
#ifndef WYDB_ANALYSIS_SAFETY_CHECKER_H_
#define WYDB_ANALYSIS_SAFETY_CHECKER_H_

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "analysis/search_engine.h"
#include "common/result.h"
#include "core/schedule.h"
#include "core/state_store.h"
#include "core/system.h"

namespace wydb {

struct SafetyCheckOptions {
  uint64_t max_states = 5'000'000;  ///< 0 = unbounded.
  /// Expansion engine; kNaiveReference is the retained seed implementation
  /// used for cross-validation and benchmarking.
  SearchEngine engine = SearchEngine::kIncremental;
  /// Worker threads for kParallelSharded (ignored by the serial engines).
  /// 0 = the WYDB_SEARCH_THREADS environment variable when set, else the
  /// hardware concurrency. Results are identical for every value.
  int search_threads = 0;
  /// Store memory mode (DESIGN.md §9): key encoding + spill watermark.
  /// Non-default values require the kParallelSharded or kReduced engine
  /// (kCompact: kParallelSharded only — reduced witness replay reads
  /// ancestor keys, which compaction discards).
  StoreOptions store;
  /// Wall-clock abort point; default-constructed (epoch) = no deadline.
  /// Overruns return ResourceExhausted, like max_states. Checked every
  /// ~2048 popped states by the serial engines and once per BFS level by
  /// the level-synchronous ones.
  std::chrono::steady_clock::time_point deadline{};
  /// Incremental-recertification gate (docs/SERVE.md): when >= 0, names
  /// a transaction T such that the system minus T is already known safe
  /// and deadlock-free. Any reachable cyclic D(S') then has a step of T
  /// executed, so cycle tests are skipped (and their cost saved) for
  /// children of T-idle states reached by non-T moves. Sound ONLY under
  /// that precondition; requires kIncremental and CheckSafeAndDeadlockFree
  /// (rejected elsewhere). The verdict is bit-identical to a full run.
  int delta_txn = -1;
};

struct SafetyViolation {
  /// A partial (for safe+DF) or complete (for safety) schedule whose
  /// conflict digraph is cyclic.
  Schedule schedule;
  /// The D(S') cycle, as transaction indices.
  std::vector<int> txn_cycle;
};

struct SafetyReport {
  bool holds = false;  ///< The checked property (see function) holds.
  std::optional<SafetyViolation> violation;
  uint64_t states_visited = 0;
  /// Distinct (state, arc-set) pairs held by the search store when the
  /// verdict was reached (orbit representatives only under kReduced) —
  /// the memory-side cost metric behind `--stats`. Exact across engines
  /// only when the property holds; on violation runs it depends on how
  /// many children of the final level each engine interned first.
  uint64_t states_interned = 0;
  /// Expansions skipped by kReduced's persistent-move (sleep-set)
  /// pruning; 0 for the exhaustive engines.
  uint64_t sleep_set_pruned = 0;
  /// Cycle tests elided by the delta_txn gate; 0 unless delta_txn >= 0.
  uint64_t delta_skipped_tests = 0;
  /// Times the engine consulted the wall clock against `deadline`
  /// (0 when no deadline was set): evidence that the budget was being
  /// enforced, surfaced by `--stats` and the server's `stats` verb.
  uint64_t deadline_polls = 0;
  /// Memory-side cost metrics (--stats; DESIGN.md §9). Total store
  /// bytes, of which the key/aux/record arenas and the probe tables.
  /// Zero for kNaiveReference (no instrumented store).
  uint64_t store_bytes = 0;
  uint64_t arena_bytes = 0;
  uint64_t probe_table_bytes = 0;
  /// BFS levels whose staged frontier hit the spill file.
  uint64_t spilled_levels = 0;
  /// False when the verdict came from a hash-compacted (fingerprint)
  /// search: sound for refutation, not a certificate. Violations replay
  /// concretely and stay trustworthy either way.
  bool exact = true;
  /// kCompact only: Stanford-bitstate-style expected collision
  /// probability bound, n(n-1)/2^65 for n interned fingerprints.
  double fingerprint_collision_bound = 0.0;
};

/// Decides "safe and deadlock-free" exactly via Lemma 1.
Result<SafetyReport> CheckSafeAndDeadlockFree(
    const TransactionSystem& sys, const SafetyCheckOptions& options = {});

/// Decides safety alone: every *complete* schedule serializable.
Result<SafetyReport> CheckSafety(const TransactionSystem& sys,
                                 const SafetyCheckOptions& options = {});

}  // namespace wydb

#endif  // WYDB_ANALYSIS_SAFETY_CHECKER_H_
