// First-class, serializable analysis results (docs/SERVE.md).
//
// A CertificateBundle packages a safe+deadlock-freedom verdict with the
// canonical form of the system it was decided for, the witness (when
// refuted) in canonical coordinates, and enough search metadata to audit
// the run. Bundles are produced by `wydb_analyze --certificate`, cached
// and served by `wydb_serve`, and replayed in tests; because the witness
// is stored against the canonical system, one bundle serves every
// renamed/permuted resubmission of the same system.
#ifndef WYDB_ANALYSIS_CERTIFICATE_H_
#define WYDB_ANALYSIS_CERTIFICATE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "analysis/safety_checker.h"
#include "common/result.h"
#include "core/canonical.h"
#include "core/schedule.h"
#include "core/system.h"

namespace wydb {

struct CertificateBundle {
  bool certified = false;  ///< Safe and deadlock-free.
  /// Canonical .wydb text of the certified system (SystemKey::text).
  std::string canonical_text;
  uint64_t key_hash = 0;
  bool key_complete = true;
  uint64_t states_visited = 0;
  uint64_t states_interned = 0;
  /// Refuted only: the violating partial schedule, as (canonical
  /// transaction slot, node id) pairs, and the D(S') cycle as canonical
  /// slots. Empty when certified.
  std::vector<std::pair<int, NodeId>> witness;
  std::vector<int> cycle;
};

/// Packages a report decided for the system behind `key` (witness
/// coordinates are translated through key.txn_perm into canonical slots).
CertificateBundle MakeCertificate(const SystemKey& key,
                                  const SafetyReport& report);

/// Line format with a trailing `fingerprint:` integrity line.
std::string SerializeCertificate(const CertificateBundle& bundle);

/// Parses and verifies the fingerprint; InvalidArgument on tampering or
/// syntax errors.
Result<CertificateBundle> ParseCertificate(const std::string& text);

/// Validates that `sched` is a legal partial schedule of `sys` whose
/// replayed conflict digraph D(S') is cyclic, via an arc replay
/// independent of the search engines. Returns the violation with the
/// freshly found cycle; InvalidArgument otherwise. This is the
/// countersignature every served witness passes through.
Result<SafetyViolation> ValidateViolation(const TransactionSystem& sys,
                                          Schedule sched);

/// Maps the bundle's canonical witness onto concrete system `sys`, whose
/// canonical key must be `key` (i.e. key.text == bundle.canonical_text),
/// and *revalidates* it: the schedule must be legal for `sys` and its
/// replayed conflict digraph cyclic. The returned violation is therefore
/// trustworthy even if the bundle came from disk. FailedPrecondition when
/// the bundle is not a refutation; InvalidArgument when validation fails
/// (callers fall back to a fresh search).
Result<SafetyViolation> RealizeWitness(const CertificateBundle& bundle,
                                       const SystemKey& key,
                                       const TransactionSystem& sys);

}  // namespace wydb

#endif  // WYDB_ANALYSIS_CERTIFICATE_H_
