#include "analysis/safety_checker.h"

#include <bit>
#include <cstring>
#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"
#include "core/state_space.h"
#include "core/state_store.h"
#include "graph/algorithms.h"

namespace wydb {
namespace {

// ---------------------------------------------------------------------------
// Naive reference engine (the seed implementation): heap-copied states in
// hash containers, the conflict digraph rebuilt and FindCycle rerun from
// scratch at every state. Retained for cross-validation and benchmarking.
// ---------------------------------------------------------------------------

// Search state: executed steps plus the arc set of D(S') packed as an
// n*n bitmask appended to the exec words (arc i->j at bit i*n + j).
struct LemmaState {
  std::vector<uint64_t> words;
  bool operator==(const LemmaState&) const = default;
};

struct LemmaStateHash {
  size_t operator()(const LemmaState& s) const {
    uint64_t h = 0xCBF29CE484222325ULL;
    for (uint64_t w : s.words) {
      h ^= w;
      h *= 0x100000001B3ULL;
    }
    return static_cast<size_t>(h);
  }
};

class LemmaSearchNaive {
 public:
  LemmaSearchNaive(const TransactionSystem& sys,
                   const SafetyCheckOptions& options, bool require_complete)
      : sys_(sys),
        options_(options),
        require_complete_(require_complete),
        space_(&sys),
        n_(sys.num_transactions()),
        exec_words_(space_.words_per_state()),
        arc_words_((n_ * n_ + 63) / 64) {}

  Result<SafetyReport> Run();

 private:
  LemmaState Root() const {
    LemmaState s;
    s.words.assign(exec_words_ + arc_words_, 0);
    return s;
  }

  ExecState ExecOf(const LemmaState& s) const {
    ExecState e;
    e.words.assign(s.words.begin(), s.words.begin() + exec_words_);
    return e;
  }

  bool ArcSet(const LemmaState& s, int i, int j) const {
    int bit = i * n_ + j;
    return (s.words[exec_words_ + bit / 64] >> (bit % 64)) & 1;
  }

  void AddArc(LemmaState* s, int i, int j) const {
    int bit = i * n_ + j;
    s->words[exec_words_ + bit / 64] |= 1ULL << (bit % 64);
  }

  Digraph ArcsDigraph(const LemmaState& s) const {
    Digraph d(n_);
    for (int i = 0; i < n_; ++i) {
      for (int j = 0; j < n_; ++j) {
        if (i != j && ArcSet(s, i, j)) d.AddArc(i, j);
      }
    }
    return d;
  }

  // Applies `g`, updating arcs per the partial-schedule digraph D(S')
  // definition of Section 5.
  LemmaState Apply(const LemmaState& s, GlobalNode g) const {
    LemmaState next = s;
    ExecState exec = ExecOf(s);
    ExecState exec_next = space_.Apply(exec, g);
    for (int w = 0; w < exec_words_; ++w) next.words[w] = exec_next.words[w];

    const Step& st = sys_.txn(g.txn).step(g.node);
    if (st.kind == StepKind::kLock) {
      EntityId x = st.entity;
      for (int j : sys_.AccessorsOf(x)) {
        if (j == g.txn) continue;
        NodeId lj = sys_.txn(j).LockNode(x);
        if (space_.IsExecuted(exec, j, lj)) {
          AddArc(&next, j, g.txn);  // Tj locked x earlier in S'.
        } else {
          AddArc(&next, g.txn, j);  // Ti locks first, even if Lx of Tj
                                    // never executes in S'.
        }
      }
    }
    return next;
  }

  const TransactionSystem& sys_;
  const SafetyCheckOptions& options_;
  const bool require_complete_;
  StateSpace space_;
  const int n_;
  const int exec_words_;
  const int arc_words_;
};

Result<SafetyReport> LemmaSearchNaive::Run() {
  SafetyReport report;
  std::unordered_set<LemmaState, LemmaStateHash> visited;
  std::unordered_map<LemmaState, std::pair<LemmaState, GlobalNode>,
                     LemmaStateHash>
      parent;
  std::vector<LemmaState> queue;
  LemmaState root = Root();
  queue.push_back(root);
  visited.insert(root);

  auto path_to = [&](const LemmaState& state) {
    Schedule rev;
    LemmaState cur = state;
    while (!(cur == root)) {
      auto it = parent.find(cur);
      rev.push_back(it->second.second);
      cur = it->second.first;
    }
    return Schedule(rev.rbegin(), rev.rend());
  };

  for (size_t head = 0; head < queue.size(); ++head) {
    LemmaState s = queue[head];
    ++report.states_visited;
    if (options_.max_states != 0 &&
        report.states_visited > options_.max_states) {
      return Status::ResourceExhausted(StrFormat(
          "safety check exceeded %llu states",
          static_cast<unsigned long long>(options_.max_states)));
    }

    Digraph arcs = ArcsDigraph(s);
    std::vector<NodeId> cycle = FindCycle(arcs);
    if (!cycle.empty()) {
      Schedule sched = path_to(s);
      if (!require_complete_) {
        report.holds = false;
        report.violation = SafetyViolation{
            std::move(sched), std::vector<int>(cycle.begin(), cycle.end())};
        return report;
      }
      // Safety alone: the cyclic partial schedule only matters if it can
      // be extended to a complete schedule. Arc sets only grow, so the
      // completed schedule is also cyclic.
      auto completion =
          space_.FindCompletion(ExecOf(s), options_.max_states);
      if (!completion.ok()) return completion.status();
      if (completion->has_value()) {
        sched.insert(sched.end(), (*completion)->begin(),
                     (*completion)->end());
        report.holds = false;
        report.violation = SafetyViolation{
            std::move(sched), std::vector<int>(cycle.begin(), cycle.end())};
        return report;
      }
      // Not completable: neither this state nor any descendant can reach a
      // complete schedule — prune the subtree.
      continue;
    }

    for (GlobalNode g : space_.LegalMoves(ExecOf(s))) {
      LemmaState next = Apply(s, g);
      if (visited.insert(next).second) {
        parent.emplace(next, std::make_pair(s, g));
        queue.push_back(next);
      }
    }
  }

  report.holds = true;
  return report;
}

// ---------------------------------------------------------------------------
// Incremental engine.
//
// States are interned in a StateStore. The key is [exec words | arc rows]:
// the conflict-arc set of D(S') packed row-major, one row of ceil(n/64)
// words per transaction, so row operations (reachability) are word ops.
//
// Cycle detection is incremental. Arc sets only grow along a path (§5
// lemma), and every arc added by applying a Lock step of transaction t is
// incident to t. Hence if the parent state's digraph is acyclic, any cycle
// in the child passes through t, so the child is cyclic iff t can reach
// itself — one bitset BFS from t's row instead of a full FindCycle. BFS
// only ever expands acyclic states (cyclic ones report or prune), so the
// invariant "parent acyclic" holds inductively and each state's cyclicity
// is decided once, at creation, and carried in a flag word.
// ---------------------------------------------------------------------------

class LemmaSearchIncremental {
 public:
  LemmaSearchIncremental(const TransactionSystem& sys,
                         const SafetyCheckOptions& options,
                         bool require_complete)
      : sys_(sys),
        options_(options),
        require_complete_(require_complete),
        space_(&sys),
        n_(sys.num_transactions()),
        exec_words_(space_.words_per_state()),
        row_words_((n_ + 63) / 64),
        arc_words_(n_ * row_words_),
        key_words_(exec_words_ + arc_words_),
        flag_word_(space_.aux_words()),
        aux_words_(space_.aux_words() + 1),
        reach_(row_words_),
        frontier_(row_words_) {}

  Result<SafetyReport> Run();

 private:
  const uint64_t* Arcs(const uint64_t* key) const { return key + exec_words_; }
  uint64_t* Arcs(uint64_t* key) const { return key + exec_words_; }

  void AddArc(uint64_t* arcs, int i, int j) const {
    arcs[i * row_words_ + j / 64] |= 1ULL << (j % 64);
  }

  /// True iff t lies on a cycle: t reaches itself via the arc rows.
  bool OnCycle(const uint64_t* arcs, int t) const;

  Digraph ArcsDigraph(const uint64_t* key) const {
    Digraph d(n_);
    const uint64_t* arcs = Arcs(key);
    for (int i = 0; i < n_; ++i) {
      for (int j = 0; j < n_; ++j) {
        if (i != j &&
            ((arcs[i * row_words_ + j / 64] >> (j % 64)) & 1) != 0) {
          d.AddArc(i, j);
        }
      }
    }
    return d;
  }

  ExecState ExecOf(const uint64_t* key) const {
    ExecState e;
    e.words.assign(key, key + exec_words_);
    return e;
  }

  const TransactionSystem& sys_;
  const SafetyCheckOptions& options_;
  const bool require_complete_;
  StateSpace space_;
  const int n_;
  const int exec_words_;
  const int row_words_;
  const int arc_words_;
  const int key_words_;
  const int flag_word_;
  const int aux_words_;
  mutable std::vector<uint64_t> reach_;
  mutable std::vector<uint64_t> frontier_;
};

bool LemmaSearchIncremental::OnCycle(const uint64_t* arcs, int t) const {
  // Bitset BFS over successor rows starting from t's successors.
  for (int w = 0; w < row_words_; ++w) {
    reach_[w] = arcs[t * row_words_ + w];
    frontier_[w] = reach_[w];
  }
  while (true) {
    if ((reach_[t / 64] >> (t % 64)) & 1) return true;
    bool grew = false;
    for (int w = 0; w < row_words_; ++w) {
      uint64_t bits = frontier_[w];
      frontier_[w] = 0;
      while (bits != 0) {
        int j = w * 64 + std::countr_zero(bits);
        bits &= bits - 1;
        const uint64_t* row = arcs + static_cast<size_t>(j) * row_words_;
        for (int rw = 0; rw < row_words_; ++rw) {
          uint64_t fresh = row[rw] & ~reach_[rw];
          if (fresh != 0) {
            reach_[rw] |= fresh;
            frontier_[rw] |= fresh;
            grew = true;
          }
        }
      }
    }
    if (!grew) return false;
  }
}

Result<SafetyReport> LemmaSearchIncremental::Run() {
  SafetyReport report;
  StateStore store(key_words_, aux_words_);

  std::vector<uint64_t> key_buf(key_words_, 0);
  std::vector<uint64_t> aux_buf(aux_words_, 0);
  space_.InitRoot(key_buf.data(), aux_buf.data());
  uint32_t root = store.Intern(key_buf.data()).id;
  std::memcpy(store.MutableAuxOf(root), aux_buf.data(),
              aux_words_ * sizeof(uint64_t));

  std::vector<GlobalNode> moves;
  for (uint32_t head = 0; head < store.size(); ++head) {
    ++report.states_visited;
    if (options_.max_states != 0 &&
        report.states_visited > options_.max_states) {
      return Status::ResourceExhausted(StrFormat(
          "safety check exceeded %llu states",
          static_cast<unsigned long long>(options_.max_states)));
    }

    if ((store.AuxOf(head)[flag_word_] & 1) != 0) {
      // This state was created cyclic; materialize the cycle only now,
      // when it is actually reported (or probed for completability).
      std::vector<NodeId> cycle = FindCycle(ArcsDigraph(store.KeyOf(head)));
      Schedule sched = store.PathFromRoot(head);
      if (!require_complete_) {
        report.holds = false;
        report.violation = SafetyViolation{
            std::move(sched), std::vector<int>(cycle.begin(), cycle.end())};
        return report;
      }
      auto completion =
          space_.FindCompletion(ExecOf(store.KeyOf(head)),
                                options_.max_states);
      if (!completion.ok()) return completion.status();
      if (completion->has_value()) {
        sched.insert(sched.end(), (*completion)->begin(),
                     (*completion)->end());
        report.holds = false;
        report.violation = SafetyViolation{
            std::move(sched), std::vector<int>(cycle.begin(), cycle.end())};
        return report;
      }
      // Not completable: prune the subtree (descendants inherit the cycle).
      continue;
    }

    moves.clear();
    space_.ExpandInto(store.AuxOf(head), &moves);
    for (GlobalNode g : moves) {
      // Exec part + expansion cache update in O(successors of g).
      space_.ApplyInto(store.KeyOf(head), store.AuxOf(head), g,
                       key_buf.data(), aux_buf.data());
      std::memcpy(Arcs(key_buf.data()), Arcs(store.KeyOf(head)),
                  arc_words_ * sizeof(uint64_t));
      aux_buf[flag_word_] = 0;

      const Step& st = sys_.txn(g.txn).step(g.node);
      if (st.kind == StepKind::kLock) {
        const EntityId x = st.entity;
        const int t = g.txn;
        uint64_t* arcs = Arcs(key_buf.data());
        for (int j : space_.AccessorsOf(x)) {
          if (j == t) continue;
          NodeId lj = space_.LockNodeOf(j, x);
          if (space_.IsExecuted(store.KeyOf(head), j, lj)) {
            AddArc(arcs, j, t);  // Tj locked x earlier in S'.
          } else {
            AddArc(arcs, t, j);  // Ti locks first, even if Lx of Tj never
                                 // executes in S'.
          }
        }
        // All fresh arcs touch t and the parent is acyclic, so the child
        // is cyclic iff t reaches itself now.
        if (OnCycle(arcs, t)) aux_buf[flag_word_] |= 1;
      }

      StateStore::InternResult r = store.Intern(key_buf.data(), head, g);
      if (r.inserted) {
        std::memcpy(store.MutableAuxOf(r.id), aux_buf.data(),
                    aux_words_ * sizeof(uint64_t));
      }
    }
  }

  report.holds = true;
  return report;
}

Result<SafetyReport> RunSearch(const TransactionSystem& sys,
                               const SafetyCheckOptions& options,
                               bool require_complete) {
  if (options.engine == SearchEngine::kNaiveReference) {
    LemmaSearchNaive search(sys, options, require_complete);
    return search.Run();
  }
  LemmaSearchIncremental search(sys, options, require_complete);
  return search.Run();
}

}  // namespace

Result<SafetyReport> CheckSafeAndDeadlockFree(
    const TransactionSystem& sys, const SafetyCheckOptions& options) {
  return RunSearch(sys, options, /*require_complete=*/false);
}

Result<SafetyReport> CheckSafety(const TransactionSystem& sys,
                                 const SafetyCheckOptions& options) {
  return RunSearch(sys, options, /*require_complete=*/true);
}

}  // namespace wydb
