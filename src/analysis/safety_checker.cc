#include "analysis/safety_checker.h"

#include <bit>
#include <cstring>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "analysis/store_stats.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/frontier_spill.h"
#include "core/state_space.h"
#include "core/state_store.h"
#include "core/symmetry.h"
#include "graph/algorithms.h"

namespace wydb {
namespace {

Status DeadlineError() {
  return Status::ResourceExhausted("safety check deadline exceeded");
}

/// Polls the deadline, counting the wall-clock consult in the report;
/// true when a configured deadline has passed. No-deadline runs cost one
/// comparison and count nothing.
bool PollDeadline(const SafetyCheckOptions& options, SafetyReport* report) {
  if (options.deadline == std::chrono::steady_clock::time_point{}) {
    return false;
  }
  ++report->deadline_polls;
  return std::chrono::steady_clock::now() >= options.deadline;
}

/// How often the serial engines poll the deadline, in popped states.
constexpr uint64_t kDeadlineStride = 2048;

/// True iff transaction `t` lies on a cycle of the packed row-major arc
/// bitset (one row of `row_words` words per transaction): bitset BFS from
/// t's successor row until it reaches t or stops growing. `reach` and
/// `frontier` are caller scratch of row_words words (so concurrent
/// searches can keep per-worker buffers).
bool ArcsOnCycle(const uint64_t* arcs, int t, int row_words,
                 std::vector<uint64_t>& reach,
                 std::vector<uint64_t>& frontier) {
  for (int w = 0; w < row_words; ++w) {
    reach[w] = arcs[t * row_words + w];
    frontier[w] = reach[w];
  }
  while (true) {
    if ((reach[t / 64] >> (t % 64)) & 1) return true;
    bool grew = false;
    for (int w = 0; w < row_words; ++w) {
      uint64_t bits = frontier[w];
      frontier[w] = 0;
      while (bits != 0) {
        int j = w * 64 + std::countr_zero(bits);
        bits &= bits - 1;
        const uint64_t* row = arcs + static_cast<size_t>(j) * row_words;
        for (int rw = 0; rw < row_words; ++rw) {
          uint64_t fresh = row[rw] & ~reach[rw];
          if (fresh != 0) {
            reach[rw] |= fresh;
            frontier[rw] |= fresh;
            grew = true;
          }
        }
      }
    }
    if (!grew) return false;
  }
}

inline void AddPackedArc(uint64_t* arcs, int row_words, int i, int j) {
  arcs[i * row_words + j / 64] |= 1ULL << (j % 64);
}

/// The one definition of the §5 child arc update shared by every Lemma
/// engine (the bit-identical contract of the exhaustive ones rides on
/// it): executing `g` from the parent state `parent_key` adds, for a
/// Lock of x by Ti, the arc Tj -> Ti for every CONFLICTING accessor Tj
/// whose Lx is already executed in S' and Ti -> Tj otherwise. Two
/// shared locks on x are compatible and draw no arc (X–X and X–S pairs
/// do); with every lock exclusive this is exactly the paper's §5 rule.
/// Returns false when `g` is not a Lock (no arcs added).
bool ApplyLockArcs(const StateSpace& space, const uint64_t* parent_key,
                   GlobalNode g, int row_words, uint64_t* arcs) {
  const Step& st = space.system().txn(g.txn).step(g.node);
  if (st.kind != StepKind::kLock) return false;
  const EntityId x = st.entity;
  const int t = g.txn;
  for (int j : space.AccessorsOf(x)) {
    if (j == t) continue;
    if (!LockModesConflict(st.mode, space.system().txn(j).LockModeOf(x))) {
      continue;  // S–S: compatible, no conflict arc.
    }
    NodeId lj = space.LockNodeOf(j, x);
    if (space.IsExecuted(parent_key, j, lj)) {
      AddPackedArc(arcs, row_words, j, t);  // Tj locked x earlier in S'.
    } else {
      AddPackedArc(arcs, row_words, t, j);  // Ti locks first, even if Lx
                                            // of Tj never executes in S'.
    }
  }
  return true;
}

/// Arc update plus the incremental cycle test: all fresh arcs touch Ti
/// and the parent is acyclic, so the child is cyclic iff Ti now reaches
/// itself; returns that verdict (`reach`/`frontier` are caller scratch
/// of row_words words).
bool ApplyLockArcsAndTestCycle(const StateSpace& space,
                               const uint64_t* parent_key, GlobalNode g,
                               int row_words, uint64_t* arcs,
                               std::vector<uint64_t>& reach,
                               std::vector<uint64_t>& frontier) {
  if (!ApplyLockArcs(space, parent_key, g, row_words, arcs)) return false;
  return ArcsOnCycle(arcs, g.txn, row_words, reach, frontier);
}

// ---------------------------------------------------------------------------
// Naive reference engine (the seed implementation): heap-copied states in
// hash containers, the conflict digraph rebuilt and FindCycle rerun from
// scratch at every state. Retained for cross-validation and benchmarking.
// ---------------------------------------------------------------------------

// Search state: executed steps plus the arc set of D(S') packed as an
// n*n bitmask appended to the exec words (arc i->j at bit i*n + j).
struct LemmaState {
  std::vector<uint64_t> words;
  bool operator==(const LemmaState&) const = default;
};

struct LemmaStateHash {
  size_t operator()(const LemmaState& s) const {
    uint64_t h = 0xCBF29CE484222325ULL;
    for (uint64_t w : s.words) {
      h ^= w;
      h *= 0x100000001B3ULL;
    }
    return static_cast<size_t>(h);
  }
};

class LemmaSearchNaive {
 public:
  LemmaSearchNaive(const TransactionSystem& sys,
                   const SafetyCheckOptions& options, bool require_complete)
      : sys_(sys),
        options_(options),
        require_complete_(require_complete),
        space_(&sys),
        n_(sys.num_transactions()),
        exec_words_(space_.words_per_state()),
        arc_words_((n_ * n_ + 63) / 64) {}

  Result<SafetyReport> Run();

 private:
  LemmaState Root() const {
    LemmaState s;
    s.words.assign(exec_words_ + arc_words_, 0);
    return s;
  }

  ExecState ExecOf(const LemmaState& s) const {
    ExecState e;
    e.words.assign(s.words.begin(), s.words.begin() + exec_words_);
    return e;
  }

  bool ArcSet(const LemmaState& s, int i, int j) const {
    int bit = i * n_ + j;
    return (s.words[exec_words_ + bit / 64] >> (bit % 64)) & 1;
  }

  void AddArc(LemmaState* s, int i, int j) const {
    int bit = i * n_ + j;
    s->words[exec_words_ + bit / 64] |= 1ULL << (bit % 64);
  }

  Digraph ArcsDigraph(const LemmaState& s) const {
    Digraph d(n_);
    for (int i = 0; i < n_; ++i) {
      for (int j = 0; j < n_; ++j) {
        if (i != j && ArcSet(s, i, j)) d.AddArc(i, j);
      }
    }
    return d;
  }

  // Applies `g`, updating arcs per the partial-schedule digraph D(S')
  // definition of Section 5.
  LemmaState Apply(const LemmaState& s, GlobalNode g) const {
    LemmaState next = s;
    ExecState exec = ExecOf(s);
    ExecState exec_next = space_.Apply(exec, g);
    for (int w = 0; w < exec_words_; ++w) next.words[w] = exec_next.words[w];

    const Step& st = sys_.txn(g.txn).step(g.node);
    if (st.kind == StepKind::kLock) {
      EntityId x = st.entity;
      for (int j : sys_.AccessorsOf(x)) {
        if (j == g.txn) continue;
        if (!LockModesConflict(st.mode, sys_.txn(j).LockModeOf(x))) {
          continue;  // S–S: compatible, no conflict arc.
        }
        NodeId lj = sys_.txn(j).LockNode(x);
        if (space_.IsExecuted(exec, j, lj)) {
          AddArc(&next, j, g.txn);  // Tj locked x earlier in S'.
        } else {
          AddArc(&next, g.txn, j);  // Ti locks first, even if Lx of Tj
                                    // never executes in S'.
        }
      }
    }
    return next;
  }

  const TransactionSystem& sys_;
  const SafetyCheckOptions& options_;
  const bool require_complete_;
  StateSpace space_;
  const int n_;
  const int exec_words_;
  const int arc_words_;
};

Result<SafetyReport> LemmaSearchNaive::Run() {
  SafetyReport report;
  std::unordered_set<LemmaState, LemmaStateHash> visited;
  std::unordered_map<LemmaState, std::pair<LemmaState, GlobalNode>,
                     LemmaStateHash>
      parent;
  std::vector<LemmaState> queue;
  LemmaState root = Root();
  queue.push_back(root);
  visited.insert(root);

  auto path_to = [&](const LemmaState& state) {
    Schedule rev;
    LemmaState cur = state;
    while (!(cur == root)) {
      auto it = parent.find(cur);
      rev.push_back(it->second.second);
      cur = it->second.first;
    }
    return Schedule(rev.rbegin(), rev.rend());
  };

  for (size_t head = 0; head < queue.size(); ++head) {
    LemmaState s = queue[head];
    ++report.states_visited;
    if (options_.max_states != 0 &&
        report.states_visited > options_.max_states) {
      return Status::ResourceExhausted(StrFormat(
          "safety check exceeded %llu states",
          static_cast<unsigned long long>(options_.max_states)));
    }
    if (report.states_visited % kDeadlineStride == 1 &&
        PollDeadline(options_, &report)) {
      return DeadlineError();
    }

    Digraph arcs = ArcsDigraph(s);
    std::vector<NodeId> cycle = FindCycle(arcs);
    if (!cycle.empty()) {
      Schedule sched = path_to(s);
      if (!require_complete_) {
        report.holds = false;
        report.violation = SafetyViolation{
            std::move(sched), std::vector<int>(cycle.begin(), cycle.end())};
        report.states_interned = visited.size();
        return report;
      }
      // Safety alone: the cyclic partial schedule only matters if it can
      // be extended to a complete schedule. Arc sets only grow, so the
      // completed schedule is also cyclic.
      auto completion =
          space_.FindCompletion(ExecOf(s), options_.max_states);
      if (!completion.ok()) return completion.status();
      if (completion->has_value()) {
        sched.insert(sched.end(), (*completion)->begin(),
                     (*completion)->end());
        report.holds = false;
        report.violation = SafetyViolation{
            std::move(sched), std::vector<int>(cycle.begin(), cycle.end())};
        report.states_interned = visited.size();
        return report;
      }
      // Not completable: neither this state nor any descendant can reach a
      // complete schedule — prune the subtree.
      continue;
    }

    for (GlobalNode g : space_.LegalMoves(ExecOf(s))) {
      LemmaState next = Apply(s, g);
      if (visited.insert(next).second) {
        parent.emplace(next, std::make_pair(s, g));
        queue.push_back(next);
      }
    }
  }

  report.holds = true;
  report.states_interned = visited.size();
  return report;
}


// Shared [exec words | arc rows] key layout of the Lemma engines — one
// definition for the serial and parallel implementations, so the packed
// key format (and with it their bit-identical contract) cannot diverge.
struct LemmaKeyLayout {
  explicit LemmaKeyLayout(const StateSpace& space)
      : n_(space.system().num_transactions()),
        exec_words_(space.words_per_state()),
        row_words_((n_ + 63) / 64),
        arc_words_(n_ * row_words_),
        key_words_(exec_words_ + arc_words_),
        flag_word_(space.aux_words()),
        aux_words_(space.aux_words() + 1) {}

  const uint64_t* Arcs(const uint64_t* key) const {
    return key + exec_words_;
  }
  uint64_t* Arcs(uint64_t* key) const { return key + exec_words_; }

  Digraph ArcsDigraph(const uint64_t* key) const {
    Digraph d(n_);
    const uint64_t* arcs = Arcs(key);
    for (int i = 0; i < n_; ++i) {
      for (int j = 0; j < n_; ++j) {
        if (i != j &&
            ((arcs[i * row_words_ + j / 64] >> (j % 64)) & 1) != 0) {
          d.AddArc(i, j);
        }
      }
    }
    return d;
  }

  ExecState ExecOf(const uint64_t* key) const {
    ExecState e;
    e.words.assign(key, key + exec_words_);
    return e;
  }

  const int n_;
  const int exec_words_;
  const int row_words_;
  const int arc_words_;
  const int key_words_;
  const int flag_word_;
  const int aux_words_;
};

// ---------------------------------------------------------------------------
// Incremental engine.
//
// States are interned in a StateStore. The key is [exec words | arc rows]:
// the conflict-arc set of D(S') packed row-major, one row of ceil(n/64)
// words per transaction, so row operations (reachability) are word ops.
//
// Cycle detection is incremental. Arc sets only grow along a path (§5
// lemma), and every arc added by applying a Lock step of transaction t is
// incident to t. Hence if the parent state's digraph is acyclic, any cycle
// in the child passes through t, so the child is cyclic iff t can reach
// itself — one bitset BFS from t's row instead of a full FindCycle. BFS
// only ever expands acyclic states (cyclic ones report or prune), so the
// invariant "parent acyclic" holds inductively and each state's cyclicity
// is decided once, at creation, and carried in a flag word.
// ---------------------------------------------------------------------------

class LemmaSearchIncremental {
 public:
  LemmaSearchIncremental(const TransactionSystem& sys,
                         const SafetyCheckOptions& options,
                         bool require_complete)
      : sys_(sys),
        options_(options),
        require_complete_(require_complete),
        space_(&sys),
        lay_(space_),
        reach_(lay_.row_words_),
        frontier_(lay_.row_words_) {}

  Result<SafetyReport> Run();

 private:
  const TransactionSystem& sys_;
  const SafetyCheckOptions& options_;
  const bool require_complete_;
  StateSpace space_;
  const LemmaKeyLayout lay_;
  mutable std::vector<uint64_t> reach_;
  mutable std::vector<uint64_t> frontier_;
};

Result<SafetyReport> LemmaSearchIncremental::Run() {
  SafetyReport report;
  StateStore store(lay_.key_words_, lay_.aux_words_);

  std::vector<uint64_t> key_buf(lay_.key_words_, 0);
  std::vector<uint64_t> aux_buf(lay_.aux_words_, 0);
  space_.InitRoot(key_buf.data(), aux_buf.data());
  uint32_t root = store.Intern(key_buf.data()).id;
  std::memcpy(store.MutableAuxOf(root), aux_buf.data(),
              lay_.aux_words_ * sizeof(uint64_t));

  // Delta gate (docs/SERVE.md): with the system minus txn `delta` known
  // safe+DF, no reachable state with `delta` idle can be cyclic, so
  // children of delta-idle parents reached by non-delta moves skip the
  // cycle test. Idleness is one word-range scan of the parent's exec
  // block for `delta`.
  const int delta = options_.delta_txn;
  const int delta_off = delta >= 0 ? space_.txn_word_offset(delta) : 0;
  const int delta_cnt = delta >= 0 ? space_.txn_word_count(delta) : 0;

  std::vector<GlobalNode> moves;
  moves.reserve(64);
  for (uint32_t head = 0; head < store.size(); ++head) {
    ++report.states_visited;
    if (options_.max_states != 0 &&
        report.states_visited > options_.max_states) {
      return Status::ResourceExhausted(StrFormat(
          "safety check exceeded %llu states",
          static_cast<unsigned long long>(options_.max_states)));
    }
    if (report.states_visited % kDeadlineStride == 1 &&
        PollDeadline(options_, &report)) {
      return DeadlineError();
    }

    if ((store.AuxOf(head)[lay_.flag_word_] & 1) != 0) {
      // This state was created cyclic; materialize the cycle only now,
      // when it is actually reported (or probed for completability).
      std::vector<NodeId> cycle = FindCycle(lay_.ArcsDigraph(store.KeyOf(head)));
      Schedule sched = store.PathFromRoot(head);
      if (!require_complete_) {
        report.holds = false;
        report.violation = SafetyViolation{
            std::move(sched), std::vector<int>(cycle.begin(), cycle.end())};
        report.states_interned = store.size();
        FillMemoryStats(store, &report);
        return report;
      }
      auto completion =
          space_.FindCompletion(lay_.ExecOf(store.KeyOf(head)),
                                options_.max_states);
      if (!completion.ok()) return completion.status();
      if (completion->has_value()) {
        sched.insert(sched.end(), (*completion)->begin(),
                     (*completion)->end());
        report.holds = false;
        report.violation = SafetyViolation{
            std::move(sched), std::vector<int>(cycle.begin(), cycle.end())};
        report.states_interned = store.size();
        FillMemoryStats(store, &report);
        return report;
      }
      // Not completable: prune the subtree (descendants inherit the cycle).
      continue;
    }

    moves.clear();
    space_.ExpandInto(store.AuxOf(head), &moves);
    for (GlobalNode g : moves) {
      // Exec part + expansion cache update in O(successors of g).
      space_.ApplyInto(store.KeyOf(head), store.AuxOf(head), g,
                       key_buf.data(), aux_buf.data());
      std::memcpy(lay_.Arcs(key_buf.data()), lay_.Arcs(store.KeyOf(head)),
                  lay_.arc_words_ * sizeof(uint64_t));
      aux_buf[lay_.flag_word_] = 0;
      bool skip_cycle_test = false;
      if (delta >= 0 && g.txn != delta) {
        skip_cycle_test = true;
        const uint64_t* parent_key = store.KeyOf(head);
        for (int w = 0; w < delta_cnt; ++w) {
          if (parent_key[delta_off + w] != 0) {
            skip_cycle_test = false;
            break;
          }
        }
      }
      if (skip_cycle_test) {
        // Child stays delta-idle, hence acyclic by the gate's
        // precondition; the arcs must still accrue.
        ApplyLockArcs(space_, store.KeyOf(head), g, lay_.row_words_,
                      lay_.Arcs(key_buf.data()));
        ++report.delta_skipped_tests;
      } else if (ApplyLockArcsAndTestCycle(space_, store.KeyOf(head), g,
                                           lay_.row_words_,
                                           lay_.Arcs(key_buf.data()), reach_,
                                           frontier_)) {
        aux_buf[lay_.flag_word_] |= 1;
      }

      StateStore::InternResult r = store.Intern(key_buf.data(), head, g);
      if (r.inserted) {
        std::memcpy(store.MutableAuxOf(r.id), aux_buf.data(),
                    lay_.aux_words_ * sizeof(uint64_t));
      }
    }
  }

  report.holds = true;
  report.states_interned = store.size();
  FillMemoryStats(store, &report);
  return report;
}

// ---------------------------------------------------------------------------
// Parallel sharded engine (DESIGN.md §7).
//
// Same state encoding and incremental cycle test as LemmaSearchIncremental
// — key [exec words | arc rows], cyclicity decided once at creation and
// carried in the aux flag word — but driven as a level-synchronous BFS
// over a ShardedStateStore. Because a FIFO BFS pops in id order, each
// level is handled in serial-equivalent phases:
//
//   1. Flagged scan (serial, one bit per state): cyclic states in id
//      order. For safe+DF the first one is the violation. For pure safety
//      each runs FindCompletion exactly as the serial pop would —
//      completable reports, uncompletable prunes — with the pop-budget
//      guard interleaved at the flagged state's id.
//   2. Expand (parallel, work-stealing chunks): acyclic states stage
//      their children — exec/aux via ApplyInto, arcs copied from the
//      parent plus the Lock arcs of the move, flag from the
//      one-bitset-BFS self-reachability test (all per-worker scratch).
//   3. Commit: per-shard parallel dedup, then the staging-order rank
//      assigns serial-identical dense ids.
class LemmaSearchParallel {
 public:
  LemmaSearchParallel(const TransactionSystem& sys,
                      const SafetyCheckOptions& options,
                      bool require_complete)
      : options_(options),
        require_complete_(require_complete),
        space_(&sys),
        lay_(space_) {}

  Result<SafetyReport> Run();

 private:
  const SafetyCheckOptions& options_;
  const bool require_complete_;
  StateSpace space_;
  const LemmaKeyLayout lay_;
};

Result<SafetyReport> LemmaSearchParallel::Run() {
  SafetyReport report;
  ThreadPool pool(options_.search_threads);
  ShardedStateStore store(lay_.key_words_, lay_.aux_words_,
                          /*num_shards=*/4 * pool.threads(), options_.store);
  const bool compact =
      options_.store.encoding == StoreOptions::KeyEncoding::kCompact;
  constexpr size_t kChunkStates = 64;
  FrontierStager stager(&store, &pool, options_.store.mem_budget_mb << 20,
                        kChunkStates);

  {
    std::vector<uint64_t> key_buf(lay_.key_words_, 0);
    std::vector<uint64_t> aux_buf(lay_.aux_words_, 0);
    space_.InitRoot(key_buf.data(), aux_buf.data());
    uint32_t root = store.InternRoot(key_buf.data());
    std::memcpy(store.MutableAuxOf(root), aux_buf.data(),
                lay_.aux_words_ * sizeof(uint64_t));
  }

  struct WorkerScratch {
    std::vector<uint64_t> key;
    std::vector<uint64_t> aux;
    std::vector<uint64_t> reach;
    std::vector<uint64_t> frontier;
    std::vector<GlobalNode> moves;
    ShardedStateStore::KeyDecodeCache decode;
  };
  std::vector<WorkerScratch> scratch(pool.threads());
  for (WorkerScratch& s : scratch) {
    s.key.resize(lay_.key_words_);
    s.aux.resize(lay_.aux_words_);
    s.reach.resize(lay_.row_words_);
    s.frontier.resize(lay_.row_words_);
    s.moves.reserve(64);
  }
  ShardedStateStore::KeyDecodeCache decode;  // Phase-1 (serial) cache.

  // In-level deadline machinery: a per-level check alone lets one
  // oversized BFS level outrun the budget by that level's whole
  // expansion time, so workers also poll the clock once per chunk and
  // raise `deadline_hit` for everyone.
  const bool has_deadline =
      options_.deadline != std::chrono::steady_clock::time_point{};
  std::atomic<bool> deadline_hit{false};
  std::atomic<uint64_t> worker_polls{0};
  auto chunk_expired = [&] {
    if (!has_deadline) return false;
    if (deadline_hit.load(std::memory_order_relaxed)) return true;
    worker_polls.fetch_add(1, std::memory_order_relaxed);
    if (std::chrono::steady_clock::now() >= options_.deadline) {
      deadline_hit.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  };

  size_t level_begin = 0;
  while (level_begin < store.size()) {
    if (PollDeadline(options_, &report)) return DeadlineError();
    const size_t level_end = store.size();
    const size_t level_size = level_end - level_begin;

    // Phase 1: flagged (cyclic) states, in id order. Mirrors the serial
    // pop loop: the budget check precedes the flag handling at each id.
    for (size_t i = 0; i < level_size; ++i) {
      const uint32_t id = static_cast<uint32_t>(level_begin + i);
      if (i % kDeadlineStride == kDeadlineStride - 1 &&
          PollDeadline(options_, &report)) {
        return DeadlineError();
      }
      if ((store.AuxOf(id)[lay_.flag_word_] & 1) == 0) continue;
      if (options_.max_states != 0 &&
          static_cast<uint64_t>(id) + 1 > options_.max_states) {
        return Status::ResourceExhausted(StrFormat(
            "safety check exceeded %llu states",
            static_cast<unsigned long long>(options_.max_states)));
      }
      std::vector<NodeId> cycle =
          FindCycle(lay_.ArcsDigraph(store.KeyView(id, &decode)));
      Schedule sched = store.PathFromRoot(id);
      if (!require_complete_) {
        report.states_visited = static_cast<uint64_t>(id) + 1;
        report.holds = false;
        report.violation = SafetyViolation{
            std::move(sched), std::vector<int>(cycle.begin(), cycle.end())};
        report.states_interned = store.size();
        FillMemoryStats(store, stager, &report);
        return report;
      }
      auto completion = space_.FindCompletion(
          lay_.ExecOf(store.KeyView(id, &decode)), options_.max_states);
      if (!completion.ok()) return completion.status();
      if (completion->has_value()) {
        sched.insert(sched.end(), (*completion)->begin(),
                     (*completion)->end());
        report.states_visited = static_cast<uint64_t>(id) + 1;
        report.holds = false;
        report.violation = SafetyViolation{
            std::move(sched), std::vector<int>(cycle.begin(), cycle.end())};
        report.states_interned = store.size();
        FillMemoryStats(store, stager, &report);
        return report;
      }
      // Uncompletable: pruned, like the serial `continue`.
    }
    if (options_.max_states != 0 && level_end > options_.max_states) {
      return Status::ResourceExhausted(StrFormat(
          "safety check exceeded %llu states",
          static_cast<unsigned long long>(options_.max_states)));
    }

    // Phase 2: expand the acyclic states of the level, in bounded
    // windows; between windows the stager may spill the staged chunks to
    // disk (no-op without --mem-budget-mb, where the single window spans
    // the level).
    size_t done = 0;
    while (done < level_size) {
      const size_t wcount =
          std::min(stager.window_states(), level_size - done);
      ShardedStateStore::Staging* window = stager.PrepareWindow(wcount);
      const size_t wbase = done;

      pool.ParallelFor(
          wcount, kChunkStates,
          [&](size_t begin, size_t end, int worker) {
            if (chunk_expired()) return;  // Level aborts below.
            WorkerScratch& ws = scratch[worker];
            ShardedStateStore::Staging& staging =
                window[begin / kChunkStates];
            for (size_t i = begin; i < end; ++i) {
              const uint32_t id =
                  static_cast<uint32_t>(level_begin + wbase + i);
              if ((store.AuxOf(id)[lay_.flag_word_] & 1) != 0) {
                continue;  // Pruned.
              }
              const uint64_t* key = store.KeyView(id, &ws.decode);
              ws.moves.clear();
              space_.ExpandInto(store.AuxOf(id), &ws.moves);
              for (GlobalNode g : ws.moves) {
                space_.ApplyInto(key, store.AuxOf(id), g, ws.key.data(),
                                 ws.aux.data());
                std::memcpy(lay_.Arcs(ws.key.data()), lay_.Arcs(key),
                            lay_.arc_words_ * sizeof(uint64_t));
                ws.aux[lay_.flag_word_] = 0;
                if (ApplyLockArcsAndTestCycle(space_, key, g,
                                              lay_.row_words_,
                                              lay_.Arcs(ws.key.data()),
                                              ws.reach, ws.frontier)) {
                  ws.aux[lay_.flag_word_] |= 1;
                }
                store.Stage(&staging, ws.key.data(), ws.aux.data(), id, g,
                            key);
              }
            }
          });

      done += wcount;
      if (!stager.EndWindow()) {
        return Status::Internal("frontier spill write failed");
      }
    }
    report.deadline_polls +=
        worker_polls.exchange(0, std::memory_order_relaxed);
    if (deadline_hit.load(std::memory_order_relaxed)) {
      return DeadlineError();  // A partial level is never committed.
    }

    // Phase 3: deterministic commit (replayed from disk if spilled).
    size_t fresh = 0;
    if (!stager.Commit(/*dedupe=*/true, &fresh)) {
      return Status::Internal("frontier spill read-back failed");
    }
    // Hash compaction keeps only the frontier's key/aux words resident;
    // everything below this level has been fully expanded.
    if (compact) store.RetireExpanded();
    level_begin = level_end;
  }

  report.states_visited = store.size();
  report.states_interned = store.size();
  report.holds = true;
  FillMemoryStats(store, stager, &report);
  return report;
}

// ---------------------------------------------------------------------------
// Reduced engine (DESIGN.md §8): persistent-move pruning + orbit
// canonicalization over the extended (state, arc-set) space, on the
// level-synchronous sharded substrate. Both reductions preserve the
// reachability of terminal extended states, and a cyclic arc set
// persists to every descendant, so the Lemma 1 verdicts survive (§8.4).
// The canonical permutation sorts orbit blocks by exec content and
// permutes the arc matrix rows/columns along; exec-block ties are left
// in place (stable sort), which merely merges fewer states — every merge
// is through a genuine system automorphism.
// ---------------------------------------------------------------------------

class LemmaSearchReduced {
 public:
  LemmaSearchReduced(const TransactionSystem& sys,
                     const SafetyCheckOptions& options, bool require_complete)
      : options_(options),
        require_complete_(require_complete),
        space_(&sys),
        lay_(space_),
        orbits_(sys),
        canon_(&space_, &orbits_, lay_.row_words_) {}

  Result<SafetyReport> Run();

 private:
  const SafetyCheckOptions& options_;
  const bool require_complete_;
  StateSpace space_;
  const LemmaKeyLayout lay_;
  const TransactionOrbits orbits_;
  const OrbitCanonicalizer canon_;
};

Result<SafetyReport> LemmaSearchReduced::Run() {
  SafetyReport report;
  ThreadPool pool(options_.search_threads);
  // kCompact is rejected before dispatch (make_violation and the replay
  // read ancestor keys); kDelta + spill compose with the reduction.
  ShardedStateStore store(lay_.key_words_, lay_.aux_words_,
                          /*num_shards=*/4 * pool.threads(), options_.store);
  constexpr size_t kChunkStates = 64;
  FrontierStager stager(&store, &pool, options_.store.mem_budget_mb << 20,
                        kChunkStates);
  if (orbits_.HasNontrivialOrbit()) store.set_canonicalizer(&canon_);

  {
    std::vector<uint64_t> key_buf(lay_.key_words_, 0);
    std::vector<uint64_t> aux_buf(lay_.aux_words_, 0);
    space_.InitRoot(key_buf.data(), aux_buf.data());
    uint32_t root = store.InternRoot(key_buf.data());
    std::memcpy(store.MutableAuxOf(root), aux_buf.data(),
                lay_.aux_words_ * sizeof(uint64_t));
  }

  // Builds the concrete violation for a flagged representative: replay
  // the path via the shared permutation composition (core/symmetry,
  // DESIGN.md §8.3), permute the stored arc matrix through the final
  // tau, and report a cycle of the *concrete* digraph.
  auto make_violation = [&](uint32_t id,
                            const Schedule& extra) -> SafetyViolation {
    Schedule sched;
    std::vector<int> tau;
    ReplayReducedPath(
        store, id, canon_, orbits_.HasNontrivialOrbit(), space_,
        lay_.key_words_,
        [&](const uint64_t* parent_key, GlobalNode g, uint64_t* child_key) {
          // Pre-canonical child = parent representative + move: the exec
          // bit and the §5 lock arcs, exactly as the search staged it.
          std::memcpy(child_key, parent_key,
                      lay_.key_words_ * sizeof(uint64_t));
          const int bit = space_.txn_word_offset(g.txn) * 64 + g.node;
          child_key[bit / 64] |= 1ULL << (bit % 64);
          ApplyLockArcs(space_, parent_key, g, lay_.row_words_,
                        lay_.Arcs(child_key));
        },
        &sched, &tau);
    for (GlobalNode g : extra) sched.push_back(GlobalNode{tau[g.txn], g.node});
    Digraph concrete(lay_.n_);
    ShardedStateStore::KeyDecodeCache vdecode;
    const uint64_t* arcs = lay_.Arcs(store.KeyView(id, &vdecode));
    for (int i = 0; i < lay_.n_; ++i) {
      for (int j = 0; j < lay_.n_; ++j) {
        if (i != j &&
            ((arcs[i * lay_.row_words_ + j / 64] >> (j % 64)) & 1) != 0) {
          concrete.AddArc(tau[i], tau[j]);
        }
      }
    }
    std::vector<NodeId> cycle = FindCycle(concrete);
    return SafetyViolation{std::move(sched),
                           std::vector<int>(cycle.begin(), cycle.end())};
  };

  struct WorkerScratch {
    std::vector<uint64_t> key;
    std::vector<uint64_t> aux;
    std::vector<uint64_t> reach;
    std::vector<uint64_t> frontier;
    std::vector<GlobalNode> moves;
    ShardedStateStore::KeyDecodeCache decode;
    uint64_t pruned = 0;
  };
  std::vector<WorkerScratch> scratch(pool.threads());
  for (WorkerScratch& s : scratch) {
    s.key.resize(lay_.key_words_);
    s.aux.resize(lay_.aux_words_);
    s.reach.resize(lay_.row_words_);
    s.frontier.resize(lay_.row_words_);
    s.moves.reserve(64);
  }

  auto sum_pruned = [&] {
    uint64_t total = 0;
    for (const WorkerScratch& s : scratch) total += s.pruned;
    return total;
  };
  ShardedStateStore::KeyDecodeCache decode;  // Phase-1 (serial) cache.

  // In-level deadline machinery, as in LemmaSearchParallel: workers
  // poll once per chunk so one oversized level cannot outrun the budget.
  const bool has_deadline =
      options_.deadline != std::chrono::steady_clock::time_point{};
  std::atomic<bool> deadline_hit{false};
  std::atomic<uint64_t> worker_polls{0};
  auto chunk_expired = [&] {
    if (!has_deadline) return false;
    if (deadline_hit.load(std::memory_order_relaxed)) return true;
    worker_polls.fetch_add(1, std::memory_order_relaxed);
    if (std::chrono::steady_clock::now() >= options_.deadline) {
      deadline_hit.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  };

  size_t level_begin = 0;
  while (level_begin < store.size()) {
    if (PollDeadline(options_, &report)) return DeadlineError();
    const size_t level_end = store.size();
    const size_t level_size = level_end - level_begin;

    // Phase 1: flagged (cyclic) representatives, in id order. A cyclic
    // state reports (safe+DF), or reports-if-completable and prunes
    // otherwise (pure safety) — completability is permutation-invariant,
    // so it is probed on the representative and only a reported
    // violation pays for path reconstruction.
    for (size_t i = 0; i < level_size; ++i) {
      const uint32_t id = static_cast<uint32_t>(level_begin + i);
      if (i % kDeadlineStride == kDeadlineStride - 1 &&
          PollDeadline(options_, &report)) {
        return DeadlineError();
      }
      if ((store.AuxOf(id)[lay_.flag_word_] & 1) == 0) continue;
      if (options_.max_states != 0 &&
          static_cast<uint64_t>(id) + 1 > options_.max_states) {
        return Status::ResourceExhausted(StrFormat(
            "safety check exceeded %llu states",
            static_cast<unsigned long long>(options_.max_states)));
      }
      if (!require_complete_) {
        report.states_visited = static_cast<uint64_t>(id) + 1;
        report.states_interned = store.size();
        report.sleep_set_pruned = sum_pruned();
        report.holds = false;
        report.violation = make_violation(id, Schedule{});
        FillMemoryStats(store, stager, &report);
        return report;
      }
      auto completion = space_.FindCompletion(
          lay_.ExecOf(store.KeyView(id, &decode)), options_.max_states);
      if (!completion.ok()) return completion.status();
      if (completion->has_value()) {
        report.states_visited = static_cast<uint64_t>(id) + 1;
        report.states_interned = store.size();
        report.sleep_set_pruned = sum_pruned();
        report.holds = false;
        report.violation = make_violation(id, **completion);
        FillMemoryStats(store, stager, &report);
        return report;
      }
      // Uncompletable: no descendant reaches a complete schedule, and
      // they all inherit the cycle — prune the subtree.
    }
    if (options_.max_states != 0 && level_end > options_.max_states) {
      return Status::ResourceExhausted(StrFormat(
          "safety check exceeded %llu states",
          static_cast<unsigned long long>(options_.max_states)));
    }

    // Phase 2: reduced expansion of the acyclic representatives, in
    // bounded windows (spilled between windows under --mem-budget-mb).
    size_t done = 0;
    while (done < level_size) {
      const size_t wcount =
          std::min(stager.window_states(), level_size - done);
      ShardedStateStore::Staging* window = stager.PrepareWindow(wcount);
      const size_t wbase = done;

      pool.ParallelFor(
          wcount, kChunkStates,
          [&](size_t begin, size_t end, int worker) {
            if (chunk_expired()) return;  // Level aborts below.
            WorkerScratch& ws = scratch[worker];
            ShardedStateStore::Staging& staging =
                window[begin / kChunkStates];
            for (size_t i = begin; i < end; ++i) {
              const uint32_t id =
                  static_cast<uint32_t>(level_begin + wbase + i);
              if ((store.AuxOf(id)[lay_.flag_word_] & 1) != 0) continue;
              const uint64_t* key = store.KeyView(id, &ws.decode);
              ws.moves.clear();
              ws.pruned +=
                  space_.ExpandReducedInto(key, store.AuxOf(id), &ws.moves);
              for (GlobalNode g : ws.moves) {
                space_.ApplyInto(key, store.AuxOf(id), g, ws.key.data(),
                                 ws.aux.data());
                std::memcpy(lay_.Arcs(ws.key.data()), lay_.Arcs(key),
                            lay_.arc_words_ * sizeof(uint64_t));
                ws.aux[lay_.flag_word_] = 0;
                if (ApplyLockArcsAndTestCycle(space_, key, g,
                                              lay_.row_words_,
                                              lay_.Arcs(ws.key.data()),
                                              ws.reach, ws.frontier)) {
                  ws.aux[lay_.flag_word_] |= 1;
                }
                // The parent's stored key is already canonical, so the
                // xor-delta record relates two canonical representatives.
                store.StageCanonical(&staging, ws.key.data(), ws.aux.data(),
                                     id, g, key);
              }
            }
          });

      done += wcount;
      if (!stager.EndWindow()) {
        return Status::Internal("frontier spill write failed");
      }
    }
    report.deadline_polls +=
        worker_polls.exchange(0, std::memory_order_relaxed);
    if (deadline_hit.load(std::memory_order_relaxed)) {
      return DeadlineError();  // A partial level is never committed.
    }

    // Phase 3: deterministic commit (canonical keys fed the shard hash;
    // replayed from disk if spilled).
    size_t fresh = 0;
    if (!stager.Commit(/*dedupe=*/true, &fresh)) {
      return Status::Internal("frontier spill read-back failed");
    }
    level_begin = level_end;
  }

  report.states_visited = store.size();
  report.states_interned = store.size();
  report.sleep_set_pruned = sum_pruned();
  report.holds = true;
  FillMemoryStats(store, stager, &report);
  return report;
}

Result<SafetyReport> RunSearch(const TransactionSystem& sys,
                               const SafetyCheckOptions& options,
                               bool require_complete) {
  WYDB_RETURN_IF_ERROR(ValidateStoreOptions(options, options.engine));
  if (options.delta_txn >= 0) {
    if (options.delta_txn >= sys.num_transactions()) {
      return Status::InvalidArgument(
          StrFormat("delta_txn %d out of range (system has %d transactions)",
                    options.delta_txn, sys.num_transactions()));
    }
    if (options.engine != SearchEngine::kIncremental) {
      return Status::InvalidArgument(
          "delta_txn requires the incremental engine");
    }
    if (require_complete) {
      return Status::InvalidArgument(
          "delta_txn applies to the safe+deadlock-free check only");
    }
  }
  if (options.engine == SearchEngine::kNaiveReference) {
    LemmaSearchNaive search(sys, options, require_complete);
    return search.Run();
  }
  if (options.engine == SearchEngine::kParallelSharded) {
    LemmaSearchParallel search(sys, options, require_complete);
    return search.Run();
  }
  if (options.engine == SearchEngine::kReduced) {
    LemmaSearchReduced search(sys, options, require_complete);
    return search.Run();
  }
  LemmaSearchIncremental search(sys, options, require_complete);
  return search.Run();
}

}  // namespace

Result<SafetyReport> CheckSafeAndDeadlockFree(
    const TransactionSystem& sys, const SafetyCheckOptions& options) {
  return RunSearch(sys, options, /*require_complete=*/false);
}

Result<SafetyReport> CheckSafety(const TransactionSystem& sys,
                                 const SafetyCheckOptions& options) {
  return RunSearch(sys, options, /*require_complete=*/true);
}

}  // namespace wydb
