#include "analysis/safety_checker.h"

#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"
#include "core/state_space.h"
#include "graph/algorithms.h"

namespace wydb {
namespace {

// Search state: executed steps plus the arc set of D(S') packed as an
// n*n bitmask appended to the exec words (arc i->j at bit i*n + j).
struct LemmaState {
  std::vector<uint64_t> words;
  bool operator==(const LemmaState&) const = default;
};

struct LemmaStateHash {
  size_t operator()(const LemmaState& s) const {
    uint64_t h = 0xCBF29CE484222325ULL;
    for (uint64_t w : s.words) {
      h ^= w;
      h *= 0x100000001B3ULL;
    }
    return static_cast<size_t>(h);
  }
};

class LemmaSearch {
 public:
  LemmaSearch(const TransactionSystem& sys, const SafetyCheckOptions& options,
              bool require_complete)
      : sys_(sys),
        options_(options),
        require_complete_(require_complete),
        space_(&sys),
        n_(sys.num_transactions()),
        exec_words_(space_.words_per_state()),
        arc_words_((n_ * n_ + 63) / 64) {}

  Result<SafetyReport> Run();

 private:
  LemmaState Root() const {
    LemmaState s;
    s.words.assign(exec_words_ + arc_words_, 0);
    return s;
  }

  ExecState ExecOf(const LemmaState& s) const {
    ExecState e;
    e.words.assign(s.words.begin(), s.words.begin() + exec_words_);
    return e;
  }

  bool ArcSet(const LemmaState& s, int i, int j) const {
    int bit = i * n_ + j;
    return (s.words[exec_words_ + bit / 64] >> (bit % 64)) & 1;
  }

  void AddArc(LemmaState* s, int i, int j) const {
    int bit = i * n_ + j;
    s->words[exec_words_ + bit / 64] |= 1ULL << (bit % 64);
  }

  Digraph ArcsDigraph(const LemmaState& s) const {
    Digraph d(n_);
    for (int i = 0; i < n_; ++i) {
      for (int j = 0; j < n_; ++j) {
        if (i != j && ArcSet(s, i, j)) d.AddArc(i, j);
      }
    }
    return d;
  }

  // Applies `g`, updating arcs per the partial-schedule digraph D(S')
  // definition of Section 5.
  LemmaState Apply(const LemmaState& s, GlobalNode g) const {
    LemmaState next = s;
    ExecState exec = ExecOf(s);
    ExecState exec_next = space_.Apply(exec, g);
    for (int w = 0; w < exec_words_; ++w) next.words[w] = exec_next.words[w];

    const Step& st = sys_.txn(g.txn).step(g.node);
    if (st.kind == StepKind::kLock) {
      EntityId x = st.entity;
      for (int j : sys_.AccessorsOf(x)) {
        if (j == g.txn) continue;
        NodeId lj = sys_.txn(j).LockNode(x);
        if (space_.IsExecuted(exec, j, lj)) {
          AddArc(&next, j, g.txn);  // Tj locked x earlier in S'.
        } else {
          AddArc(&next, g.txn, j);  // Ti locks first, even if Lx of Tj
                                    // never executes in S'.
        }
      }
    }
    return next;
  }

  const TransactionSystem& sys_;
  const SafetyCheckOptions& options_;
  const bool require_complete_;
  StateSpace space_;
  const int n_;
  const int exec_words_;
  const int arc_words_;
};

Result<SafetyReport> LemmaSearch::Run() {
  SafetyReport report;
  std::unordered_set<LemmaState, LemmaStateHash> visited;
  std::unordered_map<LemmaState, std::pair<LemmaState, GlobalNode>,
                     LemmaStateHash>
      parent;
  std::vector<LemmaState> queue;
  LemmaState root = Root();
  queue.push_back(root);
  visited.insert(root);

  auto path_to = [&](const LemmaState& state) {
    Schedule rev;
    LemmaState cur = state;
    while (!(cur == root)) {
      auto it = parent.find(cur);
      rev.push_back(it->second.second);
      cur = it->second.first;
    }
    return Schedule(rev.rbegin(), rev.rend());
  };

  for (size_t head = 0; head < queue.size(); ++head) {
    LemmaState s = queue[head];
    ++report.states_visited;
    if (options_.max_states != 0 &&
        report.states_visited > options_.max_states) {
      return Status::ResourceExhausted(StrFormat(
          "safety check exceeded %llu states",
          static_cast<unsigned long long>(options_.max_states)));
    }

    Digraph arcs = ArcsDigraph(s);
    std::vector<NodeId> cycle = FindCycle(arcs);
    if (!cycle.empty()) {
      Schedule sched = path_to(s);
      if (!require_complete_) {
        report.holds = false;
        report.violation = SafetyViolation{
            std::move(sched), std::vector<int>(cycle.begin(), cycle.end())};
        return report;
      }
      // Safety alone: the cyclic partial schedule only matters if it can
      // be extended to a complete schedule. Arc sets only grow, so the
      // completed schedule is also cyclic.
      auto completion =
          space_.FindCompletion(ExecOf(s), options_.max_states);
      if (!completion.ok()) return completion.status();
      if (completion->has_value()) {
        sched.insert(sched.end(), (*completion)->begin(),
                     (*completion)->end());
        report.holds = false;
        report.violation = SafetyViolation{
            std::move(sched), std::vector<int>(cycle.begin(), cycle.end())};
        return report;
      }
      // Not completable: neither this state nor any descendant can reach a
      // complete schedule — prune the subtree.
      continue;
    }

    for (GlobalNode g : space_.LegalMoves(ExecOf(s))) {
      LemmaState next = Apply(s, g);
      if (visited.insert(next).second) {
        parent.emplace(next, std::make_pair(s, g));
        queue.push_back(next);
      }
    }
  }

  report.holds = true;
  return report;
}

}  // namespace

Result<SafetyReport> CheckSafeAndDeadlockFree(
    const TransactionSystem& sys, const SafetyCheckOptions& options) {
  LemmaSearch search(sys, options, /*require_complete=*/false);
  return search.Run();
}

Result<SafetyReport> CheckSafety(const TransactionSystem& sys,
                                 const SafetyCheckOptions& options) {
  LemmaSearch search(sys, options, /*require_complete=*/true);
  return search.Run();
}

}  // namespace wydb
