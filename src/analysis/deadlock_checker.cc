#include "analysis/deadlock_checker.h"

#include <cstring>
#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"
#include "core/reduction_graph.h"
#include "core/state_space.h"
#include "core/state_store.h"

namespace wydb {
namespace {

// Reconstructs the schedule leading to `state` by following parent links.
Schedule PathTo(const ExecState& state,
                const std::unordered_map<ExecState,
                                         std::pair<ExecState, GlobalNode>,
                                         ExecStateHash>& parent,
                const ExecState& root) {
  Schedule rev;
  ExecState cur = state;
  while (!(cur == root)) {
    auto it = parent.find(cur);
    rev.push_back(it->second.second);
    cur = it->second.first;
  }
  return Schedule(rev.rbegin(), rev.rend());
}

std::vector<std::vector<NodeId>> PrefixNodesOf(const StateSpace& space,
                                               const uint64_t* words) {
  const TransactionSystem& sys = space.system();
  std::vector<std::vector<NodeId>> out(sys.num_transactions());
  for (int i = 0; i < sys.num_transactions(); ++i) {
    for (NodeId v = 0; v < sys.txn(i).num_steps(); ++v) {
      if (space.IsExecuted(words, i, v)) out[i].push_back(v);
    }
  }
  return out;
}

// The seed implementation: hash containers of heap-copied ExecStates and
// full move rescans per state. Retained as the cross-validation reference;
// CheckDeadlockFreedom with the incremental engine must match it verdict-
// and count-for-count.
Result<DeadlockReport> CheckDeadlockFreedomNaive(
    const TransactionSystem& sys, const DeadlockCheckOptions& options) {
  StateSpace space(&sys);
  DeadlockReport report;

  // BFS over reachable states. Reachable state <=> prefix admitting a
  // schedule, so in kReductionGraph mode every visited state is a
  // candidate deadlock prefix.
  std::unordered_set<ExecState, ExecStateHash> visited;
  std::unordered_map<ExecState, std::pair<ExecState, GlobalNode>,
                     ExecStateHash>
      parent;
  std::vector<ExecState> queue;
  ExecState root = space.EmptyState();
  queue.push_back(root);
  visited.insert(root);

  auto make_witness = [&](const ExecState& s,
                          std::string cycle_text) -> DeadlockWitness {
    DeadlockWitness w;
    w.schedule = PathTo(s, parent, root);
    w.prefix_nodes = PrefixNodesOf(space, s.words.data());
    w.reduction_cycle = std::move(cycle_text);
    return w;
  };

  for (size_t head = 0; head < queue.size(); ++head) {
    ExecState s = queue[head];
    ++report.states_visited;
    if (options.max_states != 0 &&
        report.states_visited > options.max_states) {
      return Status::ResourceExhausted(StrFormat(
          "deadlock check exceeded %llu states",
          static_cast<unsigned long long>(options.max_states)));
    }

    std::vector<GlobalNode> moves = space.LegalMoves(s);

    if (options.mode == DeadlockDetectionMode::kStuckState) {
      if (moves.empty() && !space.IsComplete(s)) {
        report.deadlock_free = false;
        report.witness = make_witness(s, "");
        return report;
      }
    } else {
      ReductionGraph rg(space.ToPrefixSet(s));
      if (rg.HasCycle()) {
        std::vector<GlobalNode> cycle = rg.FindGlobalCycle();
        report.deadlock_free = false;
        report.witness = make_witness(s, rg.CycleToString(sys, cycle));
        return report;
      }
    }

    for (GlobalNode g : moves) {
      ExecState next = space.Apply(s, g);
      bool fresh = options.memoize ? visited.insert(next).second : true;
      if (fresh) {
        parent.emplace(next, std::make_pair(s, g));
        queue.push_back(next);
      }
    }
  }

  report.deadlock_free = true;
  return report;
}

// Interned-state BFS: one StateStore arena holds every state's key words
// plus its frontier/holder cache; ids replace all heap copies.
Result<DeadlockReport> CheckDeadlockFreedomIncremental(
    const TransactionSystem& sys, const DeadlockCheckOptions& options) {
  StateSpace space(&sys);
  DeadlockReport report;

  const int kw = space.words_per_state();
  const int aw = space.aux_words();
  StateStore store(kw, aw);
  std::vector<uint64_t> state_buf(kw);
  std::vector<uint64_t> aux_buf(aw);
  space.InitRoot(state_buf.data(), aux_buf.data());
  uint32_t root = options.memoize ? store.Intern(state_buf.data()).id
                                  : store.Append(state_buf.data());
  std::memcpy(store.MutableAuxOf(root), aux_buf.data(),
              aw * sizeof(uint64_t));

  auto make_witness = [&](uint32_t id,
                          std::string cycle_text) -> DeadlockWitness {
    DeadlockWitness w;
    w.schedule = store.PathFromRoot(id);
    w.prefix_nodes = PrefixNodesOf(space, store.KeyOf(id));
    w.reduction_cycle = std::move(cycle_text);
    return w;
  };

  std::vector<GlobalNode> moves;
  for (uint32_t head = 0; head < store.size(); ++head) {
    ++report.states_visited;
    if (options.max_states != 0 &&
        report.states_visited > options.max_states) {
      return Status::ResourceExhausted(StrFormat(
          "deadlock check exceeded %llu states",
          static_cast<unsigned long long>(options.max_states)));
    }

    moves.clear();
    space.ExpandInto(store.AuxOf(head), &moves);

    if (options.mode == DeadlockDetectionMode::kStuckState) {
      if (moves.empty() && !space.IsComplete(store.KeyOf(head))) {
        report.deadlock_free = false;
        report.witness = make_witness(head, "");
        return report;
      }
    } else {
      ReductionGraph rg(space.ToPrefixSet(store.KeyOf(head)));
      if (rg.HasCycle()) {
        std::vector<GlobalNode> cycle = rg.FindGlobalCycle();
        report.deadlock_free = false;
        report.witness = make_witness(head, rg.CycleToString(sys, cycle));
        return report;
      }
    }

    for (GlobalNode g : moves) {
      // Pointers into the store are refetched after every insertion: the
      // arenas may reallocate.
      space.ApplyInto(store.KeyOf(head), store.AuxOf(head), g,
                      state_buf.data(), aux_buf.data());
      if (options.memoize) {
        StateStore::InternResult r = store.Intern(state_buf.data(), head, g);
        if (r.inserted) {
          std::memcpy(store.MutableAuxOf(r.id), aux_buf.data(),
                      aw * sizeof(uint64_t));
        }
      } else {
        uint32_t id = store.Append(state_buf.data(), head, g);
        std::memcpy(store.MutableAuxOf(id), aux_buf.data(),
                    aw * sizeof(uint64_t));
      }
    }
  }

  report.deadlock_free = true;
  return report;
}

}  // namespace

Result<DeadlockReport> CheckDeadlockFreedom(
    const TransactionSystem& sys, const DeadlockCheckOptions& options) {
  if (options.engine == SearchEngine::kNaiveReference) {
    return CheckDeadlockFreedomNaive(sys, options);
  }
  return CheckDeadlockFreedomIncremental(sys, options);
}

Result<bool> IsDeadlockPrefix(const TransactionSystem& sys,
                              const PrefixSet& prefix, uint64_t max_states) {
  ReductionGraph rg(prefix);
  if (!rg.HasCycle()) return false;
  StateSpace space(&sys);
  auto sched = space.FindScheduleBetween(space.EmptyState(),
                                         space.StateOf(prefix), max_states);
  if (!sched.ok()) return sched.status();
  return sched->has_value();
}

}  // namespace wydb
