#include "analysis/deadlock_checker.h"

#include <cmath>
#include <cstring>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "analysis/store_stats.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/frontier_spill.h"
#include "core/reduction_graph.h"
#include "core/state_space.h"
#include "core/state_store.h"
#include "core/symmetry.h"

namespace wydb {
namespace {

Status DeadlineError() {
  return Status::ResourceExhausted("deadlock check deadline exceeded");
}

/// Polls the deadline, counting the wall-clock consult in the report;
/// true when a configured deadline has passed. No-deadline runs cost one
/// comparison and count nothing.
bool PollDeadline(const DeadlockCheckOptions& options,
                  DeadlockReport* report) {
  if (options.deadline == std::chrono::steady_clock::time_point{}) {
    return false;
  }
  ++report->deadline_polls;
  return std::chrono::steady_clock::now() >= options.deadline;
}

/// How often the serial engines poll the deadline, in popped states.
constexpr uint64_t kDeadlineStride = 2048;

// Reconstructs the schedule leading to `state` by following parent links.
Schedule PathTo(const ExecState& state,
                const std::unordered_map<ExecState,
                                         std::pair<ExecState, GlobalNode>,
                                         ExecStateHash>& parent,
                const ExecState& root) {
  Schedule rev;
  ExecState cur = state;
  while (!(cur == root)) {
    auto it = parent.find(cur);
    rev.push_back(it->second.second);
    cur = it->second.first;
  }
  return Schedule(rev.rbegin(), rev.rend());
}

std::vector<std::vector<NodeId>> PrefixNodesOf(const StateSpace& space,
                                               const uint64_t* words) {
  const TransactionSystem& sys = space.system();
  std::vector<std::vector<NodeId>> out(sys.num_transactions());
  for (int i = 0; i < sys.num_transactions(); ++i) {
    for (NodeId v = 0; v < sys.txn(i).num_steps(); ++v) {
      if (space.IsExecuted(words, i, v)) out[i].push_back(v);
    }
  }
  return out;
}

// The seed implementation: hash containers of heap-copied ExecStates and
// full move rescans per state. Retained as the cross-validation reference;
// CheckDeadlockFreedom with the incremental engine must match it verdict-
// and count-for-count.
Result<DeadlockReport> CheckDeadlockFreedomNaive(
    const TransactionSystem& sys, const DeadlockCheckOptions& options) {
  StateSpace space(&sys);
  DeadlockReport report;

  // BFS over reachable states. Reachable state <=> prefix admitting a
  // schedule, so in kReductionGraph mode every visited state is a
  // candidate deadlock prefix.
  std::unordered_set<ExecState, ExecStateHash> visited;
  std::unordered_map<ExecState, std::pair<ExecState, GlobalNode>,
                     ExecStateHash>
      parent;
  std::vector<ExecState> queue;
  ExecState root = space.EmptyState();
  queue.push_back(root);
  visited.insert(root);

  auto make_witness = [&](const ExecState& s,
                          std::string cycle_text) -> DeadlockWitness {
    DeadlockWitness w;
    w.schedule = PathTo(s, parent, root);
    w.prefix_nodes = PrefixNodesOf(space, s.words.data());
    w.reduction_cycle = std::move(cycle_text);
    return w;
  };

  for (size_t head = 0; head < queue.size(); ++head) {
    ExecState s = queue[head];
    ++report.states_visited;
    if (options.max_states != 0 &&
        report.states_visited > options.max_states) {
      return Status::ResourceExhausted(StrFormat(
          "deadlock check exceeded %llu states",
          static_cast<unsigned long long>(options.max_states)));
    }
    if (report.states_visited % kDeadlineStride == 1 &&
        PollDeadline(options, &report)) {
      return DeadlineError();
    }

    std::vector<GlobalNode> moves = space.LegalMoves(s);

    if (options.mode == DeadlockDetectionMode::kStuckState) {
      if (moves.empty() && !space.IsComplete(s)) {
        report.deadlock_free = false;
        report.witness = make_witness(s, "");
        report.states_interned = visited.size();
        return report;
      }
    } else {
      ReductionGraph rg(space.ToPrefixSet(s));
      if (rg.HasCycle()) {
        std::vector<GlobalNode> cycle = rg.FindGlobalCycle();
        report.deadlock_free = false;
        report.witness = make_witness(s, rg.CycleToString(sys, cycle));
        report.states_interned = visited.size();
        return report;
      }
    }

    for (GlobalNode g : moves) {
      ExecState next = space.Apply(s, g);
      bool fresh = options.memoize ? visited.insert(next).second : true;
      if (fresh) {
        parent.emplace(next, std::make_pair(s, g));
        queue.push_back(next);
      }
    }
  }

  report.deadlock_free = true;
  report.states_interned = visited.size();
  return report;
}

// Interned-state BFS: one StateStore arena holds every state's key words
// plus its frontier/holder cache; ids replace all heap copies.
Result<DeadlockReport> CheckDeadlockFreedomIncremental(
    const TransactionSystem& sys, const DeadlockCheckOptions& options) {
  StateSpace space(&sys);
  DeadlockReport report;

  const int kw = space.words_per_state();
  const int aw = space.aux_words();
  StateStore store(kw, aw);
  std::vector<uint64_t> state_buf(kw);
  std::vector<uint64_t> aux_buf(aw);
  space.InitRoot(state_buf.data(), aux_buf.data());
  uint32_t root = options.memoize ? store.Intern(state_buf.data()).id
                                  : store.Append(state_buf.data());
  std::memcpy(store.MutableAuxOf(root), aux_buf.data(),
              aw * sizeof(uint64_t));

  auto make_witness = [&](uint32_t id,
                          std::string cycle_text) -> DeadlockWitness {
    DeadlockWitness w;
    w.schedule = store.PathFromRoot(id);
    w.prefix_nodes = PrefixNodesOf(space, store.KeyOf(id));
    w.reduction_cycle = std::move(cycle_text);
    return w;
  };

  std::vector<GlobalNode> moves;
  moves.reserve(64);
  for (uint32_t head = 0; head < store.size(); ++head) {
    ++report.states_visited;
    if (options.max_states != 0 &&
        report.states_visited > options.max_states) {
      return Status::ResourceExhausted(StrFormat(
          "deadlock check exceeded %llu states",
          static_cast<unsigned long long>(options.max_states)));
    }
    if (report.states_visited % kDeadlineStride == 1 &&
        PollDeadline(options, &report)) {
      return DeadlineError();
    }

    moves.clear();
    space.ExpandInto(store.AuxOf(head), &moves);

    if (options.mode == DeadlockDetectionMode::kStuckState) {
      if (moves.empty() && !space.IsComplete(store.KeyOf(head))) {
        report.deadlock_free = false;
        report.witness = make_witness(head, "");
        report.states_interned = store.size();
        FillMemoryStats(store, &report);
        return report;
      }
    } else {
      ReductionGraph rg(space.ToPrefixSet(store.KeyOf(head)));
      if (rg.HasCycle()) {
        std::vector<GlobalNode> cycle = rg.FindGlobalCycle();
        report.deadlock_free = false;
        report.witness = make_witness(head, rg.CycleToString(sys, cycle));
        report.states_interned = store.size();
        FillMemoryStats(store, &report);
        return report;
      }
    }

    for (GlobalNode g : moves) {
      // Pointers into the store are refetched after every insertion: the
      // arenas may reallocate.
      space.ApplyInto(store.KeyOf(head), store.AuxOf(head), g,
                      state_buf.data(), aux_buf.data());
      if (options.memoize) {
        StateStore::InternResult r = store.Intern(state_buf.data(), head, g);
        if (r.inserted) {
          std::memcpy(store.MutableAuxOf(r.id), aux_buf.data(),
                      aw * sizeof(uint64_t));
        }
      } else {
        uint32_t id = store.Append(state_buf.data(), head, g);
        std::memcpy(store.MutableAuxOf(id), aux_buf.data(),
                    aw * sizeof(uint64_t));
      }
    }
  }

  report.deadlock_free = true;
  report.states_interned = store.size();
  FillMemoryStats(store, &report);
  return report;
}

// Level-synchronous parallel BFS over a ShardedStateStore (DESIGN.md §7).
//
// A FIFO BFS pops states in id order and ids are assigned in discovery
// order, so the serial search is equivalent to processing the store one
// *level* at a time. Each level runs in three steps:
//
//   1. Expand + check (parallel, work-stealing chunks of the level):
//      generate each state's moves, evaluate the witness predicate
//      (stuck state / cyclic reduction graph — both purely per-state),
//      and stage every child into the chunk's staging buffer.
//   2. Reduce: the minimum witness id across workers. A witness at id w
//      reproduces the serial report exactly — the serial loop would have
//      popped 0..w and returned, so states_visited = w+1 and the parent
//      links of w's ancestors (all committed in earlier levels, in
//      serial-identical order) give the same schedule.
//   3. Commit: ShardedStateStore::CommitStaged dedups per shard in
//      parallel and ranks fresh states in staging (= serial Intern)
//      order.
//
// Budget accounting mirrors the serial pop counter arithmetically: the
// serial loop fails at the first pop k with k+1 > max_states, so with a
// witness at w the search fails iff w+1 > max_states, and with no
// witness in the level it fails iff the level's last id + 1 does.
Result<DeadlockReport> CheckDeadlockFreedomParallel(
    const TransactionSystem& sys, const DeadlockCheckOptions& options) {
  StateSpace space(&sys);
  DeadlockReport report;

  ThreadPool pool(options.search_threads);
  const int kw = space.words_per_state();
  const int aw = space.aux_words();
  ShardedStateStore store(kw, aw, /*num_shards=*/4 * pool.threads(),
                          options.store);
  const bool compact =
      options.store.encoding == StoreOptions::KeyEncoding::kCompact;
  constexpr size_t kChunkStates = 64;
  FrontierStager stager(&store, &pool,
                        options.store.mem_budget_mb << 20, kChunkStates);

  {
    std::vector<uint64_t> state_buf(kw), aux_buf(aw);
    space.InitRoot(state_buf.data(), aux_buf.data());
    uint32_t root = store.InternRoot(state_buf.data());
    std::memcpy(store.MutableAuxOf(root), aux_buf.data(),
                aw * sizeof(uint64_t));
  }

  auto make_witness = [&](uint32_t id,
                          std::string cycle_text) -> DeadlockWitness {
    ShardedStateStore::KeyDecodeCache decode;
    DeadlockWitness w;
    w.schedule = store.PathFromRoot(id);
    w.prefix_nodes = PrefixNodesOf(space, store.KeyView(id, &decode));
    w.reduction_cycle = std::move(cycle_text);
    return w;
  };

  struct WorkerScratch {
    std::vector<uint64_t> state;
    std::vector<uint64_t> aux;
    std::vector<GlobalNode> moves;
    ShardedStateStore::KeyDecodeCache decode;
    uint32_t witness = ShardedStateStore::kNoId;  ///< Min witness id seen.
  };
  std::vector<WorkerScratch> scratch(pool.threads());
  for (WorkerScratch& s : scratch) {
    s.state.resize(kw);
    s.aux.resize(aw);
    s.moves.reserve(64);
  }

  // In-level deadline machinery: a per-level check alone lets one
  // oversized BFS level outrun the budget by that level's whole
  // expansion time, so workers also poll the clock once per chunk and
  // raise `deadline_hit` for everyone.
  const bool has_deadline =
      options.deadline != std::chrono::steady_clock::time_point{};
  std::atomic<bool> deadline_hit{false};
  std::atomic<uint64_t> worker_polls{0};
  auto chunk_expired = [&] {
    if (!has_deadline) return false;
    if (deadline_hit.load(std::memory_order_relaxed)) return true;
    worker_polls.fetch_add(1, std::memory_order_relaxed);
    if (std::chrono::steady_clock::now() >= options.deadline) {
      deadline_hit.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  };

  size_t level_begin = 0;
  while (level_begin < store.size()) {
    if (PollDeadline(options, &report)) return DeadlineError();
    const size_t level_end = store.size();
    const size_t level_size = level_end - level_begin;
    for (WorkerScratch& s : scratch) s.witness = ShardedStateStore::kNoId;
    // Popping this whole level already exceeds the budget, so the serial
    // loop can only end inside it — with a witness whose id fits the
    // budget, or with ResourceExhausted. Children are unobservable either
    // way; skip staging them.
    const bool budget_ends_here =
        options.max_states != 0 && level_end > options.max_states;

    // The level is staged in bounded windows; between windows the stager
    // may spill the staged chunks to disk (no-op without --mem-budget-mb,
    // where the single window spans the level). Ids ascend across
    // windows, so the first window containing a witness holds the
    // level's minimum and later windows need not run.
    uint32_t witness = ShardedStateStore::kNoId;
    size_t done = 0;
    while (done < level_size) {
      const size_t wcount =
          std::min(stager.window_states(), level_size - done);
      ShardedStateStore::Staging* window = stager.PrepareWindow(wcount);
      const size_t wbase = done;

      pool.ParallelFor(
          wcount, kChunkStates,
          [&](size_t begin, size_t end, int worker) {
            if (chunk_expired()) return;  // Level aborts below.
            WorkerScratch& ws = scratch[worker];
            ShardedStateStore::Staging& staging =
                window[begin / kChunkStates];
            for (size_t i = begin; i < end; ++i) {
              const uint32_t id =
                  static_cast<uint32_t>(level_begin + wbase + i);
              const uint64_t* key = store.KeyView(id, &ws.decode);
              ws.moves.clear();
              space.ExpandInto(store.AuxOf(id), &ws.moves);
              bool is_witness;
              if (options.mode == DeadlockDetectionMode::kStuckState) {
                is_witness = ws.moves.empty() && !space.IsComplete(key);
              } else {
                ReductionGraph rg(space.ToPrefixSet(key));
                is_witness = rg.HasCycle();
              }
              if (is_witness) {
                // The serial loop returns here without expanding;
                // children of later states in this level are never
                // observed, so skipping the staging is safe (and the
                // whole level's staged children are discarded below).
                if (id < ws.witness) ws.witness = id;
                continue;
              }
              if (budget_ends_here) continue;
              for (GlobalNode g : ws.moves) {
                space.ApplyInto(key, store.AuxOf(id), g, ws.state.data(),
                                ws.aux.data());
                store.Stage(&staging, ws.state.data(), ws.aux.data(), id, g,
                            key);
              }
            }
          });

      done += wcount;
      for (const WorkerScratch& s : scratch) {
        witness = std::min(witness, s.witness);
      }
      if (witness != ShardedStateStore::kNoId) break;
      if (!budget_ends_here && !stager.EndWindow()) {
        return Status::Internal("frontier spill write failed");
      }
    }
    report.deadline_polls +=
        worker_polls.exchange(0, std::memory_order_relaxed);
    if (deadline_hit.load(std::memory_order_relaxed)) {
      // Skipped chunks may hide the minimal witness, so an expired level
      // reports the budget overrun, never a possibly-non-minimal witness.
      return DeadlineError();
    }

    if (witness != ShardedStateStore::kNoId) {
      if (options.max_states != 0 &&
          static_cast<uint64_t>(witness) + 1 > options.max_states) {
        return Status::ResourceExhausted(StrFormat(
            "deadlock check exceeded %llu states",
            static_cast<unsigned long long>(options.max_states)));
      }
      report.states_visited = static_cast<uint64_t>(witness) + 1;
      report.deadlock_free = false;
      report.states_interned = store.size();
      std::string cycle_text;
      if (options.mode == DeadlockDetectionMode::kReductionGraph) {
        ShardedStateStore::KeyDecodeCache decode;
        ReductionGraph rg(
            space.ToPrefixSet(store.KeyView(witness, &decode)));
        cycle_text = rg.CycleToString(sys, rg.FindGlobalCycle());
      }
      report.witness = make_witness(witness, std::move(cycle_text));
      FillMemoryStats(store, stager, &report);
      return report;
    }
    if (options.max_states != 0 && level_end > options.max_states) {
      return Status::ResourceExhausted(StrFormat(
          "deadlock check exceeded %llu states",
          static_cast<unsigned long long>(options.max_states)));
    }
    size_t fresh = 0;
    if (!stager.Commit(options.memoize, &fresh)) {
      return Status::Internal("frontier spill read-back failed");
    }
    // Hash compaction keeps only the frontier's key/aux words resident;
    // everything below this level has been fully expanded.
    if (compact) store.RetireExpanded();
    level_begin = level_end;
  }

  report.states_visited = store.size();
  report.states_interned = store.size();
  report.deadlock_free = true;
  FillMemoryStats(store, stager, &report);
  return report;
}

// ---------------------------------------------------------------------------
// Reduced engine (DESIGN.md §8): persistent-move pruning + orbit
// canonicalization on the level-synchronous sharded substrate.
//
// The search explores one representative per symmetry orbit and, per
// state, only the persistent move subset of ExpandReducedInto. Verdicts
// agree with the exhaustive engines (both reductions preserve the
// reachability of terminal — stuck or complete — states, §8.4), but the
// id sequence covers the *reduced* space, so states_visited is smaller,
// not bit-identical. Results are still deterministic for every thread
// count: pruning and canonicalization are per-state functions and the
// staging-order rank fixes the ids.
// ---------------------------------------------------------------------------

// Rebuilds a concrete witness from a stored path of orbit
// representatives via the shared ReplayReducedPath permutation
// composition (core/symmetry, DESIGN.md §8.3): the concrete schedule is
// legal from the empty state and ends in a genuine stuck / cyclic state.
DeadlockWitness MakeReducedWitness(const StateSpace& space,
                                   const OrbitCanonicalizer& canon,
                                   bool canonical_active,
                                   const ShardedStateStore& store,
                                   uint32_t id, bool want_cycle_text) {
  const int kw = space.words_per_state();
  DeadlockWitness w;
  std::vector<int> tau;
  ReplayReducedPath(
      store, id, canon, canonical_active, space, kw,
      [&](const uint64_t* parent_key, GlobalNode g, uint64_t* child_key) {
        // Pre-canonical child = parent representative + the move's bit.
        std::memcpy(child_key, parent_key, kw * sizeof(uint64_t));
        const int bit = space.txn_word_offset(g.txn) * 64 + g.node;
        child_key[bit / 64] |= 1ULL << (bit % 64);
      },
      &w.schedule, &tau);

  std::vector<uint64_t> concrete(kw, 0);
  for (GlobalNode g : w.schedule) {
    const int bit = space.txn_word_offset(g.txn) * 64 + g.node;
    concrete[bit / 64] |= 1ULL << (bit % 64);
  }
  w.prefix_nodes = PrefixNodesOf(space, concrete.data());
  if (want_cycle_text) {
    ReductionGraph rg(space.ToPrefixSet(concrete.data()));
    w.reduction_cycle = rg.CycleToString(space.system(),
                                         rg.FindGlobalCycle());
  }
  return w;
}

Result<DeadlockReport> CheckDeadlockFreedomReduced(
    const TransactionSystem& sys, const DeadlockCheckOptions& options) {
  StateSpace space(&sys);
  TransactionOrbits orbits(sys);
  OrbitCanonicalizer canon(&space, &orbits, /*arc_row_words=*/0);
  const bool canonical = orbits.HasNontrivialOrbit();
  DeadlockReport report;

  ThreadPool pool(options.search_threads);
  const int kw = space.words_per_state();
  const int aw = space.aux_words();
  ShardedStateStore store(kw, aw, /*num_shards=*/4 * pool.threads(),
                          options.store);
  if (canonical) store.set_canonicalizer(&canon);
  constexpr size_t kChunkStates = 64;
  FrontierStager stager(&store, &pool,
                        options.store.mem_budget_mb << 20, kChunkStates);

  {
    std::vector<uint64_t> state_buf(kw), aux_buf(aw);
    space.InitRoot(state_buf.data(), aux_buf.data());
    // The empty state is its own canonical form.
    uint32_t root = store.InternRoot(state_buf.data());
    std::memcpy(store.MutableAuxOf(root), aux_buf.data(),
                aw * sizeof(uint64_t));
  }

  struct WorkerScratch {
    std::vector<uint64_t> state;
    std::vector<uint64_t> aux;
    std::vector<GlobalNode> moves;
    ShardedStateStore::KeyDecodeCache decode;
    uint32_t witness = ShardedStateStore::kNoId;
    uint64_t pruned = 0;
  };
  std::vector<WorkerScratch> scratch(pool.threads());
  for (WorkerScratch& s : scratch) {
    s.state.resize(kw);
    s.aux.resize(aw);
    s.moves.reserve(64);
  }

  auto sum_pruned = [&] {
    uint64_t total = 0;
    for (const WorkerScratch& s : scratch) total += s.pruned;
    return total;
  };

  // In-level deadline machinery, as in CheckDeadlockFreedomParallel.
  const bool has_deadline =
      options.deadline != std::chrono::steady_clock::time_point{};
  std::atomic<bool> deadline_hit{false};
  std::atomic<uint64_t> worker_polls{0};
  auto chunk_expired = [&] {
    if (!has_deadline) return false;
    if (deadline_hit.load(std::memory_order_relaxed)) return true;
    worker_polls.fetch_add(1, std::memory_order_relaxed);
    if (std::chrono::steady_clock::now() >= options.deadline) {
      deadline_hit.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  };

  size_t level_begin = 0;
  while (level_begin < store.size()) {
    if (PollDeadline(options, &report)) return DeadlineError();
    const size_t level_end = store.size();
    const size_t level_size = level_end - level_begin;
    for (WorkerScratch& s : scratch) s.witness = ShardedStateStore::kNoId;
    const bool budget_ends_here =
        options.max_states != 0 && level_end > options.max_states;

    uint32_t witness = ShardedStateStore::kNoId;
    size_t done = 0;
    while (done < level_size) {
      const size_t wcount =
          std::min(stager.window_states(), level_size - done);
      ShardedStateStore::Staging* window = stager.PrepareWindow(wcount);
      const size_t wbase = done;

      pool.ParallelFor(
          wcount, kChunkStates,
          [&](size_t begin, size_t end, int worker) {
            if (chunk_expired()) return;  // Level aborts below.
            WorkerScratch& ws = scratch[worker];
            ShardedStateStore::Staging& staging =
                window[begin / kChunkStates];
            for (size_t i = begin; i < end; ++i) {
              const uint32_t id =
                  static_cast<uint32_t>(level_begin + wbase + i);
              const uint64_t* key = store.KeyView(id, &ws.decode);
              ws.moves.clear();
              ws.pruned +=
                  space.ExpandReducedInto(key, store.AuxOf(id), &ws.moves);
              // ExpandReducedInto returns an empty set only for genuinely
              // stuck states, so the witness predicates are unchanged.
              bool is_witness;
              if (options.mode == DeadlockDetectionMode::kStuckState) {
                is_witness = ws.moves.empty() && !space.IsComplete(key);
              } else {
                ReductionGraph rg(space.ToPrefixSet(key));
                is_witness = rg.HasCycle();
              }
              if (is_witness) {
                if (id < ws.witness) ws.witness = id;
                continue;
              }
              if (budget_ends_here) continue;
              for (GlobalNode g : ws.moves) {
                space.ApplyInto(key, store.AuxOf(id), g, ws.state.data(),
                                ws.aux.data());
                // The parent's stored key is already canonical, so the
                // xor-delta relates two canonical representatives.
                store.StageCanonical(&staging, ws.state.data(),
                                     ws.aux.data(), id, g, key);
              }
            }
          });

      done += wcount;
      for (const WorkerScratch& s : scratch) {
        witness = std::min(witness, s.witness);
      }
      if (witness != ShardedStateStore::kNoId) break;
      if (!budget_ends_here && !stager.EndWindow()) {
        return Status::Internal("frontier spill write failed");
      }
    }
    report.deadline_polls +=
        worker_polls.exchange(0, std::memory_order_relaxed);
    if (deadline_hit.load(std::memory_order_relaxed)) {
      // Skipped chunks may hide the minimal witness, so an expired level
      // reports the budget overrun, never a possibly-non-minimal witness.
      return DeadlineError();
    }

    if (witness != ShardedStateStore::kNoId) {
      if (options.max_states != 0 &&
          static_cast<uint64_t>(witness) + 1 > options.max_states) {
        return Status::ResourceExhausted(StrFormat(
            "deadlock check exceeded %llu states",
            static_cast<unsigned long long>(options.max_states)));
      }
      report.states_visited = static_cast<uint64_t>(witness) + 1;
      report.states_interned = store.size();
      report.sleep_set_pruned = sum_pruned();
      report.deadlock_free = false;
      report.witness = MakeReducedWitness(
          space, canon, canonical, store, witness,
          options.mode == DeadlockDetectionMode::kReductionGraph);
      FillMemoryStats(store, stager, &report);
      return report;
    }
    if (options.max_states != 0 && level_end > options.max_states) {
      return Status::ResourceExhausted(StrFormat(
          "deadlock check exceeded %llu states",
          static_cast<unsigned long long>(options.max_states)));
    }
    size_t fresh = 0;
    if (!stager.Commit(options.memoize, &fresh)) {
      return Status::Internal("frontier spill read-back failed");
    }
    level_begin = level_end;
  }

  report.states_visited = store.size();
  report.states_interned = store.size();
  report.sleep_set_pruned = sum_pruned();
  report.deadlock_free = true;
  FillMemoryStats(store, stager, &report);
  return report;
}

}  // namespace

Result<DeadlockReport> CheckDeadlockFreedom(
    const TransactionSystem& sys, const DeadlockCheckOptions& options) {
  WYDB_RETURN_IF_ERROR(ValidateStoreOptions(options, options.engine));
  if (options.engine == SearchEngine::kNaiveReference) {
    return CheckDeadlockFreedomNaive(sys, options);
  }
  if (options.engine == SearchEngine::kParallelSharded) {
    return CheckDeadlockFreedomParallel(sys, options);
  }
  if (options.engine == SearchEngine::kReduced) {
    return CheckDeadlockFreedomReduced(sys, options);
  }
  return CheckDeadlockFreedomIncremental(sys, options);
}

Result<bool> IsDeadlockPrefix(const TransactionSystem& sys,
                              const PrefixSet& prefix, uint64_t max_states) {
  ReductionGraph rg(prefix);
  if (!rg.HasCycle()) return false;
  StateSpace space(&sys);
  auto sched = space.FindScheduleBetween(space.EmptyState(),
                                         space.StateOf(prefix), max_states);
  if (!sched.ok()) return sched.status();
  return sched->has_value();
}

}  // namespace wydb
