// Identical-copy systems (Section 5, Corollary 3 and Theorem 5).
//
// Corollary 3: two copies of a distributed transaction T are safe and
// deadlock-free iff some entity x has Lx preceding every other node of T,
// and every other entity y has some z locked before Ly and unlocked after
// Ly. Theorem 5 lifts this to ANY number of copies. (Deadlock-freedom
// alone does NOT lift: Fig. 6 shows 3 copies that deadlock although 2
// cannot.)
#ifndef WYDB_ANALYSIS_COPIES_ANALYZER_H_
#define WYDB_ANALYSIS_COPIES_ANALYZER_H_

#include <string>

#include "common/result.h"
#include "core/system.h"
#include "core/transaction.h"

namespace wydb {

struct CopiesVerdict {
  bool safe_and_deadlock_free = false;
  /// The entity whose lock precedes everything (Corollary 3's x), or
  /// kInvalidEntity.
  EntityId first_entity = kInvalidEntity;
  /// When failing: the uncovered entity, if that is the reason.
  EntityId offending_entity = kInvalidEntity;
  std::string explanation;
};

/// Corollary 3 test, directly on the syntax of T. O(n^2) with the closure.
CopiesVerdict CheckTwoCopies(const Transaction& t);

/// Theorem 5: d >= 2 copies are safe+DF iff two copies are. d < 2 is
/// trivially safe+DF.
CopiesVerdict CheckCopies(const Transaction& t, int d);

/// Materializes a system of d copies of `t` (named "<name>#1".."#d") for
/// cross-validation against the exact checkers.
Result<TransactionSystem> MakeCopies(const Transaction& t, int d);

/// Cross-validation bridge to the replicated traffic engine: d identical
/// transaction copies of `t` plus a round-robin data placement of the
/// given degree over t's database.
///
/// The CheckCopies verdict is placement-independent: the engine's
/// write-all protocol serializes every entity on its primary copy, so
/// the reachable wait-for states over primaries are exactly those of the
/// single-copy system, and secondary-copy waits always resolve (in-flight
/// release) — see DESIGN.md §6. Hence `certified` below predicts the
/// replicated runtime for ANY degree, which tests/replication_test.cc
/// drives empirically.
struct ReplicatedCopies {
  TransactionSystem system;
  CopyPlacement placement;
  /// The syntactic Theorem 5 verdict for the transaction copies.
  CopiesVerdict verdict;
};
Result<ReplicatedCopies> MakeReplicatedCopies(const Transaction& t, int d,
                                              int degree);

}  // namespace wydb

#endif  // WYDB_ANALYSIS_COPIES_ANALYZER_H_
