// Identical-copy systems (Section 5, Corollary 3 and Theorem 5).
//
// Corollary 3: two copies of a distributed transaction T are safe and
// deadlock-free iff some entity x has Lx preceding every other node of T,
// and every other entity y has some z locked before Ly and unlocked after
// Ly. Theorem 5 lifts this to ANY number of copies. (Deadlock-freedom
// alone does NOT lift: Fig. 6 shows 3 copies that deadlock although 2
// cannot.)
#ifndef WYDB_ANALYSIS_COPIES_ANALYZER_H_
#define WYDB_ANALYSIS_COPIES_ANALYZER_H_

#include <string>

#include "common/result.h"
#include "core/system.h"
#include "core/transaction.h"

namespace wydb {

struct CopiesVerdict {
  bool safe_and_deadlock_free = false;
  /// The entity whose lock precedes everything (Corollary 3's x), or
  /// kInvalidEntity.
  EntityId first_entity = kInvalidEntity;
  /// When failing: the uncovered entity, if that is the reason.
  EntityId offending_entity = kInvalidEntity;
  std::string explanation;
};

/// Corollary 3 test, directly on the syntax of T. O(n^2) with the closure.
CopiesVerdict CheckTwoCopies(const Transaction& t);

/// Theorem 5: d >= 2 copies are safe+DF iff two copies are. d < 2 is
/// trivially safe+DF.
CopiesVerdict CheckCopies(const Transaction& t, int d);

/// Materializes a system of d copies of `t` (named "<name>#1".."#d") for
/// cross-validation against the exact checkers.
Result<TransactionSystem> MakeCopies(const Transaction& t, int d);

}  // namespace wydb

#endif  // WYDB_ANALYSIS_COPIES_ANALYZER_H_
