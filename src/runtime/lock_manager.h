// Per-site exclusive lock table with FIFO wait queues — the substrate a
// 1985 distributed DBMS would run at each site.
#ifndef WYDB_RUNTIME_LOCK_MANAGER_H_
#define WYDB_RUNTIME_LOCK_MANAGER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/database.h"

namespace wydb {

/// \brief Exclusive locks for the entities of one site.
///
/// The manager is purely mechanical: grant if free, queue if held. Policy
/// (wound-wait etc.) is applied by the caller through the `on_block` hook
/// and the Abort operation.
class LockManager {
 public:
  explicit LockManager(SiteId site) : site_(site) {}

  SiteId site() const { return site_; }

  /// Called when `requester` blocks behind `holder` on `entity`.
  using BlockHook = std::function<void(int requester, int holder,
                                       EntityId entity)>;
  void set_on_block(BlockHook hook) { on_block_ = std::move(hook); }

  /// Requests an exclusive lock for transaction `txn`; `on_grant` runs
  /// when the lock is granted (possibly immediately, synchronously).
  void Request(int txn, EntityId entity, std::function<void()> on_grant);

  /// Releases `entity` if `txn` holds it (no-op otherwise — stale release
  /// messages from aborted attempts are tolerated). Grants the next
  /// waiter, if any.
  void Release(int txn, EntityId entity);

  /// Aborts `txn` at this site: drops its queued requests and releases all
  /// locks it holds (granting waiters).
  void Abort(int txn);

  /// The transaction holding `entity`, or -1.
  int HolderOf(EntityId entity) const;

  bool IsWaiting(int txn) const;

  /// (waiter, holder, entity) edges of this site's wait-for relation.
  struct WaitEdge {
    int waiter;
    int holder;
    EntityId entity;
  };
  std::vector<WaitEdge> WaitForEdges() const;

  uint64_t grants() const { return grants_; }

 private:
  struct Waiter {
    int txn;
    std::function<void()> on_grant;
  };
  struct LockState {
    int holder = -1;
    std::deque<Waiter> queue;
  };

  void Grant(EntityId entity, LockState* state);

  SiteId site_;
  std::unordered_map<EntityId, LockState> table_;
  BlockHook on_block_;
  uint64_t grants_ = 0;
};

}  // namespace wydb

#endif  // WYDB_RUNTIME_LOCK_MANAGER_H_
