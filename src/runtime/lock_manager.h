// Per-site exclusive lock table with FIFO wait queues — the substrate a
// 1985 distributed DBMS would run at each site.
//
// Data-oriented layout: the table is a dense vector indexed by EntityId,
// waiters live in a pooled free-list and queues are intrusive index
// links. Operations never call back into the engine; instead they append
// POD LockEvent records to an output buffer the engine drains after each
// call. This keeps the hot path allocation-free and removes the
// re-entrancy of the old std::function grant/block hooks.
#ifndef WYDB_RUNTIME_LOCK_MANAGER_H_
#define WYDB_RUNTIME_LOCK_MANAGER_H_

#include <cstdint>
#include <vector>

#include "core/database.h"

namespace wydb {

/// \brief POD record emitted by lock-table operations.
///
/// `kGrant`: `txn` now holds `entity`; `node`/`attempt` echo the waiter
/// payload passed to Request (the Lock step being served). The engine must
/// validate `attempt` against the executor and give the lock back if the
/// attempt went stale while the grant was pending.
///
/// `kBlock`: `txn` is queued on `entity` behind `holder`. Emitted when a
/// request queues and re-emitted for every remaining waiter when
/// holdership changes, so a timestamp policy (wound-wait etc.) can be
/// re-applied against the new holder. The engine must re-validate the
/// edge (same holder, txn still waiting) at processing time: the table
/// may have moved on while the record sat in the buffer.
struct LockEvent {
  enum class Kind : uint8_t { kGrant, kBlock };
  Kind kind;
  SiteId site;
  int32_t txn;
  EntityId entity;
  int32_t node;     ///< Grant only: waiter payload.
  int32_t attempt;  ///< Grant only: waiter payload.
  int32_t holder;   ///< Block only: the transaction being waited on.
};

/// \brief Exclusive locks for the entities of one site.
///
/// The manager is purely mechanical: grant if free, queue if held. Policy
/// (wound-wait etc.) is applied by the caller by reacting to the kBlock
/// records and issuing Abort.
class LockManager {
 public:
  /// `num_entities` sizes the dense table (global entity id space; rows
  /// for entities of other sites stay untouched). Events are appended to
  /// `*out`, which must outlive the manager.
  LockManager(SiteId site, int num_entities, std::vector<LockEvent>* out);

  SiteId site() const { return site_; }

  /// Requests an exclusive lock for transaction `txn`. Emits kGrant
  /// (immediately if free) or queues and emits kBlock. `node` and
  /// `attempt` are opaque payload echoed in the grant record.
  void Request(int txn, EntityId entity, int32_t node = -1,
               int32_t attempt = 0);

  /// Releases `entity` if `txn` holds it (no-op otherwise — stale release
  /// messages from aborted attempts are tolerated). Grants the next
  /// waiter, if any.
  void Release(int txn, EntityId entity);

  /// Aborts `txn` at this site: drops its queued requests and releases all
  /// locks it holds (granting waiters).
  void Abort(int txn);

  /// The transaction holding `entity`, or -1.
  int HolderOf(EntityId entity) const { return table_[entity].holder; }

  bool IsWaiting(int txn) const;
  bool IsWaitingOn(int txn, EntityId entity) const;

  /// (waiter, holder, entity) edges of this site's wait-for relation.
  struct WaitEdge {
    int waiter;
    int holder;
    EntityId entity;
  };
  std::vector<WaitEdge> WaitForEdges() const;
  void AppendWaitForEdges(std::vector<WaitEdge>* out) const;

  uint64_t grants() const { return grants_; }

  /// Waiter-pool introspection (tests): the pool must plateau at the
  /// high-water mark of simultaneous waiters — churn recycles slots
  /// through the free list instead of growing the vector.
  size_t waiter_pool_size() const { return pool_.size(); }
  /// Free-listed (recyclable) slots; equals waiter_pool_size() when no
  /// transaction is queued anywhere.
  size_t free_waiter_count() const;

 private:
  struct Waiter {
    int32_t txn;
    int32_t node;
    int32_t attempt;
    int32_t next;  ///< Pool index of the next waiter, or -1.
  };
  struct LockState {
    int32_t holder = -1;
    int32_t head = -1;  ///< Pool index of the first waiter, or -1.
    int32_t tail = -1;
  };

  int32_t AllocWaiter(int txn, int32_t node, int32_t attempt);
  void FreeWaiter(int32_t idx);
  /// Grants the queue head of `entity` (holder must be -1) and re-emits
  /// kBlock for the remaining waiters against the new holder.
  void GrantHead(EntityId entity);
  void EmitGrant(EntityId entity, const Waiter& w);
  void EmitBlock(EntityId entity, int32_t txn, int32_t holder);

  SiteId site_;
  std::vector<LockState> table_;
  std::vector<Waiter> pool_;
  int32_t free_head_ = -1;
  /// Entities this manager has ever touched (sparse iteration support for
  /// Abort / WaitForEdges without scanning the whole dense table).
  std::vector<EntityId> touched_;
  std::vector<uint8_t> is_touched_;
  std::vector<LockEvent>* out_;
  uint64_t grants_ = 0;
};

}  // namespace wydb

#endif  // WYDB_RUNTIME_LOCK_MANAGER_H_
