// Per-site shared/exclusive lock table with FIFO wait queues — the
// substrate a 1985 distributed DBMS would run at each site.
//
// Data-oriented layout: the table is a dense vector indexed by EntityId;
// waiters AND shared-holder records live in one pooled free-list and both
// queues and sharer sets are intrusive index links. Operations never call
// back into the engine; instead they append POD LockEvent records to an
// output buffer the engine drains after each call. This keeps the hot
// path allocation-free and removes the re-entrancy of the old
// std::function grant/block hooks.
//
// Mode semantics (DESIGN.md §11): any number of shared holders OR one
// exclusive holder. Queueing is FIFO-fair: a shared request behind a
// queued exclusive waiter queues too (no reader starvation), and a freed
// entity grants the maximal consecutive shared prefix of its queue in one
// batch. An S->X upgrade keeps its shared hold and jumps to the queue
// HEAD; it is promoted the moment it is the sole remaining sharer. Two
// sharers upgrading the same entity therefore deadlock on each other —
// visible to the caller as wait-for edges (each waits on every
// conflicting holder) and resolvable by the usual policies.
#ifndef WYDB_RUNTIME_LOCK_MANAGER_H_
#define WYDB_RUNTIME_LOCK_MANAGER_H_

#include <cstdint>
#include <vector>

#include "core/database.h"
#include "core/transaction.h"

namespace wydb {

/// \brief POD record emitted by lock-table operations.
///
/// `kGrant`: `txn` now holds `entity`; `node`/`attempt` echo the waiter
/// payload passed to Request (the Lock step being served). The engine must
/// validate `attempt` against the executor and give the lock back if the
/// attempt went stale while the grant was pending.
///
/// `kBlock`: `txn` is queued on `entity` behind `holder`. With shared
/// holders one record is emitted PER conflicting holder, so a timestamp
/// policy resolves the request against each of them. Emitted when a
/// request queues and re-emitted for every remaining waiter when
/// holdership changes. The engine must re-validate the edge (holder still
/// holds, txn still waiting) at processing time: the table may have moved
/// on while the record sat in the buffer.
struct LockEvent {
  enum class Kind : uint8_t { kGrant, kBlock };
  Kind kind;
  SiteId site;
  int32_t txn;
  EntityId entity;
  int32_t node;     ///< Grant only: waiter payload.
  int32_t attempt;  ///< Grant only: waiter payload.
  int32_t holder;   ///< Block only: the transaction being waited on.
};

/// \brief Shared/exclusive locks for the entities of one site.
///
/// The manager is purely mechanical: grant if compatible, queue if not.
/// Policy (wound-wait etc.) is applied by the caller by reacting to the
/// kBlock records and issuing Abort.
class LockManager {
 public:
  /// `num_entities` sizes the dense table (global entity id space; rows
  /// for entities of other sites stay untouched). Events are appended to
  /// `*out`, which must outlive the manager.
  LockManager(SiteId site, int num_entities, std::vector<LockEvent>* out);

  SiteId site() const { return site_; }

  /// Requests a lock in `mode` for transaction `txn`. Emits kGrant
  /// (immediately if compatible and the queue is empty) or queues and
  /// emits kBlock per conflicting holder. An exclusive request by a
  /// current sharer is an UPGRADE: granted at once if `txn` is the sole
  /// sharer, otherwise queued at the head while the shared hold is kept.
  /// `node` and `attempt` are opaque payload echoed in the grant record.
  void Request(int txn, EntityId entity, LockMode mode, int32_t node = -1,
               int32_t attempt = 0);
  /// Back-compat: exclusive request.
  void Request(int txn, EntityId entity, int32_t node = -1,
               int32_t attempt = 0) {
    Request(txn, entity, LockMode::kExclusive, node, attempt);
  }

  /// Releases `entity` if `txn` holds it in either mode (no-op otherwise —
  /// stale release messages from aborted attempts are tolerated). Grants
  /// the next waiter batch, if any.
  void Release(int txn, EntityId entity);

  /// Aborts `txn` at this site: drops its queued requests (counting
  /// abandoned upgrades) and releases all locks it holds in either mode
  /// (granting waiters).
  void Abort(int txn);

  /// An exclusive holder if there is one, else an arbitrary shared holder,
  /// else -1. Use IsHolding for membership tests under shared modes.
  int HolderOf(EntityId entity) const {
    const LockState& s = table_[entity];
    if (s.holder != -1) return s.holder;
    return s.sharer_head == -1 ? -1 : pool_[s.sharer_head].txn;
  }

  /// True iff `txn` holds `entity` in either mode.
  bool IsHolding(int txn, EntityId entity) const;
  /// Number of shared holders of `entity` (0 when exclusively held/free).
  int SharerCountOf(EntityId entity) const;

  bool IsWaiting(int txn) const;
  bool IsWaitingOn(int txn, EntityId entity) const;

  /// (waiter, holder, entity) edges of this site's wait-for relation:
  /// one edge per conflicting holder (all sharers for a queued X request;
  /// an upgrader never waits on itself).
  struct WaitEdge {
    int waiter;
    int holder;
    EntityId entity;
  };
  std::vector<WaitEdge> WaitForEdges() const;
  void AppendWaitForEdges(std::vector<WaitEdge>* out) const;

  uint64_t grants() const { return grants_; }
  /// Shared-mode grants (each granted S request counts once).
  uint64_t shared_grants() const { return shared_grants_; }
  /// Completed S->X upgrades.
  uint64_t upgrades() const { return upgrades_; }
  /// Queued upgrades abandoned by Abort.
  uint64_t upgrade_aborts() const { return upgrade_aborts_; }

  /// Waiter-pool introspection (tests): the pool must plateau at the
  /// high-water mark of simultaneous waiters + shared holders — churn
  /// recycles slots through the free list instead of growing the vector.
  size_t waiter_pool_size() const { return pool_.size(); }
  /// Free-listed (recyclable) slots; equals waiter_pool_size() when no
  /// transaction is queued or sharing anywhere.
  size_t free_waiter_count() const;

 private:
  struct Waiter {
    int32_t txn;
    int32_t node;
    int32_t attempt;
    int32_t next;  ///< Pool index of the next waiter/sharer, or -1.
    LockMode mode;
    bool upgrade;  ///< Queued S->X upgrade: still holds S on the entity.
  };
  struct LockState {
    int32_t holder = -1;       ///< Exclusive holder, or -1.
    int32_t sharer_head = -1;  ///< Pool index of the first sharer, or -1.
    int32_t head = -1;         ///< Pool index of the first waiter, or -1.
    int32_t tail = -1;
  };

  int32_t AllocWaiter(int txn, int32_t node, int32_t attempt, LockMode mode,
                      bool upgrade);
  void FreeWaiter(int32_t idx);
  void AddSharer(LockState& state, int txn);
  bool RemoveSharer(LockState& state, int txn);
  bool IsSharer(const LockState& state, int txn) const;
  bool SoleSharerIs(const LockState& state, int txn) const;
  /// Grants the maximal compatible prefix of `entity`'s queue (a single X,
  /// a promotable upgrade, or a consecutive batch of S requests) and
  /// re-emits kBlock for the remaining waiters against the new holders.
  void GrantHead(EntityId entity);
  void EmitGrant(EntityId entity, const Waiter& w);
  void EmitBlock(EntityId entity, int32_t txn, int32_t holder);
  /// One kBlock per current conflicting holder of `entity` (skips `txn`
  /// itself so an upgrader never waits on its own shared hold).
  void EmitBlocksAgainstHolders(EntityId entity, int32_t txn);
  void Touch(EntityId entity);

  SiteId site_;
  std::vector<LockState> table_;
  std::vector<Waiter> pool_;
  int32_t free_head_ = -1;
  /// Entities this manager has ever touched (sparse iteration support for
  /// Abort / WaitForEdges without scanning the whole dense table).
  std::vector<EntityId> touched_;
  std::vector<uint8_t> is_touched_;
  std::vector<LockEvent>* out_;
  uint64_t grants_ = 0;
  uint64_t shared_grants_ = 0;
  uint64_t upgrades_ = 0;
  uint64_t upgrade_aborts_ = 0;
};

}  // namespace wydb

#endif  // WYDB_RUNTIME_LOCK_MANAGER_H_
