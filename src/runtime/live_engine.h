// Wall-clock executor: runs a TransactionSystem on real OS threads against
// the thread-safe StripedLockManager — the empirical counterpart of
// SimEngine on actual hardware.
//
// Each worker thread owns a disjoint subset of the system's transactions
// and drives each through the same TxnExecutor state machine the simulator
// uses, in a closed-loop session mirroring runtime/workload.{h,cc}: MPL
// admission, think time between rounds, per-round commit latency
// (p50/p95/p99), throughput and abort rate.
//
// The perf payoff this engine exists to measure: a system certified
// safe+DF by the static analyzer (Theorem 4) runs under ConflictPolicy::
// kBlock — pure parking, no timestamps, no timeout scans, no wait-for
// graphs — and cannot deadlock. Uncertified systems run under kBlock only
// behind the engine's watchdog, which detects global non-progress and
// stops the run with `deadlocked = true` (the watchdog is a test/CLI
// harness, not detection machinery: it costs one counter read per
// interval, nothing per lock op).
#ifndef WYDB_RUNTIME_LIVE_ENGINE_H_
#define WYDB_RUNTIME_LIVE_ENGINE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/system.h"
#include "runtime/scheduler.h"
#include "runtime/simulation.h"

namespace wydb {

struct LiveOptions {
  ConflictPolicy policy = ConflictPolicy::kBlock;
  uint64_t seed = 1;
  /// Worker threads (0 = hardware concurrency), clamped to the number of
  /// transactions. Transactions are dealt round-robin over the workers.
  int threads = 0;
  /// Multi-programming level: max transactions concurrently inside a
  /// round (0 = unlimited); excess arrivals wait in admission order.
  int mpl = 0;
  /// Per-transaction round target; 0 = duration-bounded only.
  int rounds = 0;
  /// Wall-clock session length; workers stop starting new rounds after
  /// this. 0 = rounds-bounded only. At least one bound must be set.
  int64_t duration_ms = 0;
  /// Mean think time between a commit and the next round's arrival; the
  /// sampled delay is uniform in [1, 2*think_us]. 0 = none.
  int64_t think_us = 0;
  /// Dwell while holding each granted lock before the next step. Widens
  /// the conflict windows that a 1-quantum scheduler otherwise hides —
  /// how the deadlock tests make uncertified systems actually deadlock
  /// within a bounded run. 0 = none.
  int64_t hold_us = 0;
  /// Busy CPU work (spin, not sleep) after each granted lock — models
  /// the computation a real transaction does while holding its locks.
  /// Unlike hold_us it keeps the holder RUNNABLE, so on a saturated
  /// machine it gets preempted mid-critical-section and waiters pile up
  /// behind it: the regime where the conflict policies' overheads
  /// (timeout scans, timestamp aborts) actually show up. 0 = none.
  int64_t work_us = 0;
  /// Base backoff after an abort; the sampled delay is uniform in
  /// [backoff_us, 2*backoff_us).
  int64_t backoff_us = 200;
  /// A transaction aborted more than this many times in one round gives
  /// up, ending the session.
  int max_restarts = 10'000;
  /// Watchdog progress-check period. Two consecutive checks with zero
  /// progress and parked waiters declare deadlock and stop the run.
  int64_t watchdog_interval_ms = 250;
  /// StripedLockManager stripe count (0 = auto).
  int num_stripes = 0;
  /// kDetect: waiter park timeout before a wait-for scan.
  int64_t detect_interval_us = 2000;
};

struct LiveResult {
  /// Session ended by its bound (rounds done or duration elapsed).
  bool completed = false;
  /// Watchdog saw sustained non-progress with parked waiters.
  bool deadlocked = false;
  /// Some transaction exceeded max_restarts.
  bool gave_up = false;

  int threads = 0;
  int stripes = 0;

  uint64_t commits = 0;
  uint64_t aborts = 0;
  /// Completed lock-table operations (grants + releases).
  uint64_t lock_ops = 0;
  /// Shared-mode lock grants (0 for X-only workloads).
  uint64_t shared_grants = 0;
  /// Completed S->X upgrades.
  uint64_t upgrades = 0;
  /// Upgrade attempts that ended in an abort.
  uint64_t upgrade_aborts = 0;
  /// kDetect wait-for scans.
  uint64_t detector_runs = 0;

  double wall_seconds = 0.0;
  double commits_per_sec = 0.0;
  double lock_ops_per_sec = 0.0;
  /// aborts / (aborts + commits); 0 when nothing ran.
  double abort_rate = 0.0;
  /// Per-round commit latency in microseconds (arrival -> commit).
  LatencyStats latency;

  /// Waiting transactions at the moment the watchdog fired (deadlock
  /// participants, plus any transaction queued behind them).
  std::vector<int> blocked_txns;
};

/// Runs one closed-loop wall-clock session. Fails with InvalidArgument if
/// neither `rounds` nor `duration_ms` is set, or the system is empty.
Result<LiveResult> RunLive(const TransactionSystem& sys,
                           const LiveOptions& options);

}  // namespace wydb

#endif  // WYDB_RUNTIME_LIVE_ENGINE_H_
