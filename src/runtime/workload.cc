#include "runtime/workload.h"

#include "runtime/seed_sweep.h"
#include "runtime/sim_engine.h"

namespace wydb {

Result<SimResult> RunWorkload(const TransactionSystem& sys,
                              const WorkloadOptions& options) {
  if (options.duration == 0 && options.rounds == 0) {
    return Status::InvalidArgument(
        "workload needs a duration or a round target");
  }
  if (options.mpl < 0 || options.rounds < 0) {
    return Status::InvalidArgument("mpl/rounds must be non-negative");
  }
  if (options.max_backlog <= 0) {
    return Status::InvalidArgument("max_backlog must be positive");
  }
  SimEngine::DriverConfig driver;
  driver.closed_loop = true;
  driver.open_loop = options.open_loop;
  driver.max_backlog = options.max_backlog;
  driver.think_time = options.think_time;
  driver.duration = options.duration;
  driver.rounds = options.rounds;
  driver.mpl = options.mpl;
  SimEngine engine(sys, options.sim, driver);
  return engine.Run();
}

Result<WorkloadAggregate> RunWorkloadMany(const TransactionSystem& sys,
                                          const WorkloadOptions& base,
                                          int runs, int threads) {
  auto results =
      internal::SeedSweep<Result<SimResult>>(runs, threads, [&](int r) {
        WorkloadOptions opts = base;
        opts.sim.seed = base.sim.seed + static_cast<uint64_t>(r);
        return RunWorkload(sys, opts);
      });

  WorkloadAggregate agg;
  double throughput_sum = 0, abort_sum = 0, p50_sum = 0, p95_sum = 0,
         p99_sum = 0;
  for (int r = 0; r < runs; ++r) {
    Result<SimResult>& res = *results[r];
    if (!res.ok()) return res.status();
    ++agg.runs;
    if (res->deadlocked) ++agg.deadlocked_runs;
    if (res->budget_exhausted) ++agg.budget_exhausted_runs;
    if (res->gave_up) ++agg.gave_up_runs;
    agg.total_commits += res->commits;
    agg.total_aborts += res->aborts;
    agg.total_shared_grants += res->shared_grants;
    agg.total_upgrades += res->upgrades;
    agg.total_upgrade_aborts += res->upgrade_aborts;
    throughput_sum += res->throughput;
    abort_sum += res->abort_rate;
    p50_sum += static_cast<double>(res->latency.p50);
    p95_sum += static_cast<double>(res->latency.p95);
    p99_sum += static_cast<double>(res->latency.p99);
  }
  if (agg.runs > 0) {
    agg.avg_throughput = throughput_sum / agg.runs;
    agg.avg_abort_rate = abort_sum / agg.runs;
    agg.avg_p50 = p50_sum / agg.runs;
    agg.avg_p95 = p95_sum / agg.runs;
    agg.avg_p99 = p99_sum / agg.runs;
  }
  return agg;
}

}  // namespace wydb
