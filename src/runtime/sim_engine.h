// Internal: the data-oriented simulation engine shared by RunSimulation
// (one-shot) and RunWorkload (closed-loop traffic). Not part of the
// public runtime API.
//
// The engine is a single event loop over POD SimEvent records dispatched
// by a switch; lock tables report grants/blocks as POD LockEvent records
// drained after every dispatch. Nothing on the hot path allocates a
// closure (DESIGN.md §4).
#ifndef WYDB_RUNTIME_SIM_ENGINE_H_
#define WYDB_RUNTIME_SIM_ENGINE_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "core/system.h"
#include "runtime/lock_manager.h"
#include "runtime/sim/event_queue.h"
#include "runtime/sim/network.h"
#include "runtime/simulation.h"
#include "runtime/txn_runtime.h"

namespace wydb {

/// \brief One seeded run of the distributed lock/message simulation.
class SimEngine {
 public:
  /// Traffic-driver knobs layered on top of SimOptions. Defaults give the
  /// one-shot semantics: every transaction runs exactly one round.
  struct DriverConfig {
    /// Re-issue each committed transaction after a think-time delay.
    bool closed_loop = false;
    /// Open variant: a free-running per-transaction arrival clock fires
    /// every sampled interval, independent of round completion; arrivals
    /// that find the transaction busy queue (up to max_backlog per txn),
    /// so saturation shows up as latency instead of throttled arrivals.
    bool open_loop = false;
    /// Open mode: arrivals beyond this per-transaction backlog pause the
    /// arrival clock (it resumes as the backlog drains). The bound keeps
    /// a stalled system quiescible, so deadlock detection/classification
    /// still happens.
    int max_backlog = 256;
    /// Mean think time (closed) / inter-arrival interval (open). The
    /// sampled delay is uniform in [1, 2*think_time] (mean ~think_time).
    SimTime think_time = 100;
    /// Stop issuing new rounds once the clock reaches this (0 = no limit);
    /// in-flight rounds drain to completion.
    SimTime duration = 0;
    /// Per-transaction round target (0 = no limit).
    int rounds = 0;
    /// Multi-programming level: max transactions simultaneously executing
    /// a round (0 = unlimited). Excess arrivals wait in a FIFO.
    int mpl = 0;
  };

  SimEngine(const TransactionSystem& sys, const SimOptions& options,
            const DriverConfig& driver);

  Result<SimResult> Run();

 private:
  struct LogEntry {
    int32_t txn;
    NodeId node;
    int32_t attempt;
  };

  void Dispatch(const SimEvent& ev);
  void PumpLockEvents();
  void HandleGrant(const LockEvent& le);
  void HandleBlock(const LockEvent& le);

  void BeginRound(int i, SimTime arrival);
  void AdmitOrQueueRound(int i, SimTime arrival);
  void AdmitFromFifo();
  void Advance(int i);
  void IssueStep(int i, NodeId v);
  void CommitRound(int i);
  void AbortTxn(int i);
  bool DetectAndResolve();

  /// Copy sites of `e` (primary first), honouring the placement.
  const std::vector<SiteId>& CopiesOf(EntityId e) const {
    return copies_[e];
  }
  /// The copy whose site-local events represent `e` in the committed
  /// history (one log entry per logical step, replicated or not).
  SiteId PrimaryOf(EntityId e) const { return copies_[e][0]; }
  /// Sends `kind` for step `v` of txn `i` to every copy site of `e`
  /// starting at list index `from`, and counts them as outstanding acks.
  void SendToCopies(int i, NodeId v, EntityId e, EventKind kind,
                    std::size_t from);

  /// True once txn i must not issue further rounds (duration elapsed or
  /// round target reached).
  bool Retired(int i) const;
  SimTime ThinkDelay();

  std::vector<int> IncompleteTxns() const;
  void FinalizeMetrics();
  Status ExtractHistory();

  const TransactionSystem& sys_;
  const SimOptions& options_;
  DriverConfig driver_;
  Rng rng_;
  EventQueue queue_;
  Network network_;
  std::vector<LockEvent> lock_events_;
  std::vector<LockManager> sites_;
  std::vector<TxnExecutor> executors_;
  /// EntityId -> copy sites (primary first). Resolved once from
  /// SimOptions::placement; single-copy rows when no placement is given.
  std::vector<std::vector<SiteId>> copies_;
  /// Per (txn, step): per-copy acks still outstanding before the step's
  /// home-site join completes. Only valid for the currently issued
  /// attempt; IssueStep re-initializes on every (re)issue.
  std::vector<std::vector<int32_t>> pending_acks_;
  /// Per (txn, step): whether the write-all fan-out past the primary copy
  /// has been issued (Lock steps acquire the primary first; the grant ack
  /// triggers the fan-out to the remaining copies).
  std::vector<std::vector<uint8_t>> fanned_out_;
  std::vector<SiteId> home_;
  std::vector<uint64_t> timestamp_;
  /// Current round committed (sticky true in one-shot mode).
  std::vector<uint8_t> committed_;
  /// Attempt number at the start of the current round (restart counting).
  std::vector<int32_t> round_base_attempt_;
  /// One-shot mode: the attempt whose steps belong to the committed
  /// history (-1 = none). Traffic mode records no history.
  std::vector<int32_t> committed_attempt_;
  std::vector<LogEntry> log_;

  // Traffic-driver state.
  std::vector<int32_t> rounds_done_;
  std::vector<SimTime> arrival_time_;
  /// Open mode: arrival times that found the transaction still busy.
  std::vector<std::deque<SimTime>> pending_arrivals_;
  /// Open mode: whether the per-transaction arrival clock is running.
  std::vector<uint8_t> arrival_clock_on_;
  /// MPL admission: transactions waiting for an execution slot.
  std::vector<int32_t> admit_fifo_;
  std::vector<uint8_t> in_admit_fifo_;
  std::size_t admit_head_ = 0;
  int active_ = 0;

  std::vector<SimTime> latencies_;
  SimResult result_;
};

}  // namespace wydb

#endif  // WYDB_RUNTIME_SIM_ENGINE_H_
