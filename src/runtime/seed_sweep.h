// Internal: seed-striped thread-pool sweep shared by RunMany and
// RunWorkloadMany. Runs fn(0..runs-1) across workers and returns the
// results indexed by run, so callers can reduce in seed order and get
// aggregates identical to a serial loop for any thread count.
#ifndef WYDB_RUNTIME_SEED_SWEEP_H_
#define WYDB_RUNTIME_SEED_SWEEP_H_

#include <optional>
#include <thread>
#include <vector>

namespace wydb::internal {

template <typename ResultT, typename Fn>
std::vector<std::optional<ResultT>> SeedSweep(int runs, int threads,
                                              Fn&& fn) {
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  if (threads > runs) threads = runs < 1 ? 1 : runs;

  std::vector<std::optional<ResultT>> results(
      static_cast<std::size_t>(runs < 0 ? 0 : runs));
  auto run_range = [&](int worker) {
    for (int r = worker; r < runs; r += threads) results[r].emplace(fn(r));
  };
  if (threads <= 1) {
    run_range(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (int w = 0; w < threads; ++w) pool.emplace_back(run_range, w);
    for (std::thread& t : pool) t.join();
  }
  return results;
}

}  // namespace wydb::internal

#endif  // WYDB_RUNTIME_SEED_SWEEP_H_
