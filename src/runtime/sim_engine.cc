#include "runtime/sim_engine.h"

#include <algorithm>
#include <utility>

#include "core/conflict_graph.h"
#include "graph/algorithms.h"

namespace wydb {

SimEngine::SimEngine(const TransactionSystem& sys, const SimOptions& options,
                     const DriverConfig& driver)
    : sys_(sys),
      options_(options),
      driver_(driver),
      rng_(options.seed),
      network_(&queue_, sys.db().num_sites(), options.latency, &rng_) {
  const int n = sys.num_transactions();
  const int num_entities = sys.db().num_entities();
  const int num_sites = sys.db().num_sites();
  sites_.reserve(num_sites);
  for (SiteId s = 0; s < num_sites; ++s) {
    sites_.emplace_back(s, num_entities, &lock_events_);
  }
  // Resolve the copy-placement table once. Each site's lock table is
  // dense over the global entity id space, so entity e's copy at site s
  // is simply row e of site s's table.
  copies_.reserve(num_entities);
  for (EntityId e = 0; e < num_entities; ++e) {
    if (options.placement != nullptr) {
      copies_.push_back(options.placement->CopiesOf(e));
    } else {
      copies_.push_back({sys.db().SiteOf(e)});
    }
  }
  executors_.reserve(n);
  for (int i = 0; i < n; ++i) {
    executors_.emplace_back(i, &sys.txn(i));
    // Home site: where the transaction's first entity's primary copy
    // lives (round-robin fallback for the empty edge case).
    SiteId home = sys.txn(i).entities().empty()
                      ? i % std::max(1, num_sites)
                      : PrimaryOf(sys.txn(i).entities()[0]);
    home_.push_back(home);
    timestamp_.push_back(static_cast<uint64_t>(i));
    pending_acks_.emplace_back(sys.txn(i).num_steps(), 0);
    fanned_out_.emplace_back(sys.txn(i).num_steps(), 0);
  }
  committed_.assign(n, 0);
  round_base_attempt_.assign(n, 1);
  committed_attempt_.assign(n, -1);
  rounds_done_.assign(n, 0);
  arrival_time_.assign(n, 0);
  pending_arrivals_.resize(n);
  arrival_clock_on_.assign(n, 0);
  in_admit_fifo_.assign(n, 0);
}

SimTime SimEngine::ThinkDelay() {
  return 1 + rng_.NextBelow(2 * driver_.think_time);
}

bool SimEngine::Retired(int i) const {
  if (!driver_.closed_loop) return rounds_done_[i] >= 1;
  if (driver_.rounds > 0 && rounds_done_[i] >= driver_.rounds) return true;
  if (driver_.duration > 0 && queue_.now() >= driver_.duration) return true;
  return false;
}

void SimEngine::Dispatch(const SimEvent& ev) {
  switch (ev.kind) {
    case EventKind::kStartTxn: {
      TxnExecutor& exec = executors_[ev.txn];
      if (exec.attempt() != ev.attempt) break;  // Stale restart timer.
      if (exec.state() == TxnState::kBackoff) {
        // Resuming an aborted attempt: the round is already admitted.
        exec.set_state(TxnState::kRunning);
        Advance(ev.txn);
      } else if (exec.state() == TxnState::kNotStarted) {
        AdmitOrQueueRound(ev.txn, queue_.now());  // First arrival.
      }
      break;
    }
    case EventKind::kThinkDone: {
      TxnExecutor& exec = executors_[ev.txn];
      if (driver_.open_loop) {
        if (Retired(ev.txn)) break;  // The arrival clock stops for good.
        if (exec.state() == TxnState::kThinking && !in_admit_fifo_[ev.txn]) {
          AdmitOrQueueRound(ev.txn, queue_.now());
        } else if (static_cast<int>(pending_arrivals_[ev.txn].size()) <
                   driver_.max_backlog) {
          // Busy (running, backing off, or awaiting an MPL slot): the
          // arrival queues behind the in-flight round.
          pending_arrivals_[ev.txn].push_back(queue_.now());
        } else {
          // Backlog full: pause the arrival clock so a stalled system
          // can quiesce (deadlock detection happens at quiescence).
          // CommitRound resumes it once the backlog drains.
          arrival_clock_on_[ev.txn] = 0;
          break;
        }
        // Re-arm the free-running arrival clock, independent of whether
        // the previous round finished: a fixed arrival rate.
        SimEvent next = ev;
        queue_.After(ThinkDelay(), next);
        break;
      }
      if (exec.state() == TxnState::kThinking) {
        AdmitOrQueueRound(ev.txn, queue_.now());
      }
      break;
    }
    case EventKind::kLockArrive: {
      if (executors_[ev.txn].attempt() != ev.attempt) break;  // Stale.
      const Step st = executors_[ev.txn].txn().step(ev.node);
      sites_[ev.site].Request(ev.txn, st.entity, st.mode, ev.node,
                              ev.attempt);
      break;  // Grants/blocks pumped by the main loop.
    }
    case EventKind::kUnlockArrive: {
      if (executors_[ev.txn].attempt() != ev.attempt) break;
      const EntityId e = executors_[ev.txn].txn().step(ev.node).entity;
      // Traffic mode never extracts a history; don't grow the log. With
      // replication, only the primary copy's event represents the logical
      // step (one log entry per step, whatever the degree).
      if (!driver_.closed_loop && ev.site == PrimaryOf(e)) {
        log_.push_back(LogEntry{ev.txn, ev.node, ev.attempt});
      }
      sites_[ev.site].Release(ev.txn, e);
      SimEvent ack;
      ack.kind = EventKind::kAckArrive;
      ack.txn = ev.txn;
      ack.node = ev.node;
      ack.attempt = ev.attempt;
      ack.site = home_[ev.txn];
      network_.Send(ev.site, home_[ev.txn], ack);
      break;
    }
    case EventKind::kAckArrive: {
      if (executors_[ev.txn].attempt() != ev.attempt) break;
      if (--pending_acks_[ev.txn][ev.node] > 0) break;  // Join pending.
      if (!fanned_out_[ev.txn][ev.node]) {
        // The primary copy is granted: fan the write-all out to the
        // remaining copies. They cannot deadlock among themselves — only
        // the primary holder ever requests secondaries (DESIGN.md §6).
        fanned_out_[ev.txn][ev.node] = 1;
        const Step step = executors_[ev.txn].txn().step(ev.node);
        SendToCopies(ev.txn, ev.node, step.entity, EventKind::kLockArrive,
                     /*from=*/1);
        break;
      }
      executors_[ev.txn].MarkCompleted(ev.node);
      Advance(ev.txn);
      break;
    }
  }
}

void SimEngine::PumpLockEvents() {
  // Index loop: handlers append (Release/Abort emit more records) and the
  // vector may reallocate, so copy each record out before dispatching.
  for (std::size_t i = 0; i < lock_events_.size(); ++i) {
    const LockEvent le = lock_events_[i];
    if (le.kind == LockEvent::Kind::kGrant) {
      HandleGrant(le);
    } else {
      HandleBlock(le);
    }
  }
  lock_events_.clear();
}

void SimEngine::HandleGrant(const LockEvent& le) {
  if (executors_[le.txn].attempt() != le.attempt) {
    // Granted to an aborted attempt (in-flight race): give it back
    // immediately. No-op if the abort already released it.
    sites_[le.site].Release(le.txn, le.entity);
    return;
  }
  // Lock granted at the site: this is the linearization point. Only the
  // primary copy's grant enters the history log (one entry per step).
  if (!driver_.closed_loop && le.site == PrimaryOf(le.entity)) {
    log_.push_back(LogEntry{le.txn, le.node, le.attempt});
  }
  SimEvent ack;
  ack.kind = EventKind::kAckArrive;
  ack.txn = le.txn;
  ack.node = le.node;
  ack.attempt = le.attempt;
  ack.site = home_[le.txn];
  network_.Send(le.site, home_[le.txn], ack);
}

void SimEngine::HandleBlock(const LockEvent& le) {
  // The record may be stale: re-validate the wait edge against the table.
  // With shared holders the named holder need not be THE holder — it must
  // merely still hold the entity in some mode.
  const LockManager& lm = sites_[le.site];
  if (!lm.IsHolding(le.holder, le.entity)) return;
  if (!lm.IsWaitingOn(le.txn, le.entity)) return;
  ConflictAction action = ResolveConflict(options_.policy, timestamp_[le.txn],
                                          timestamp_[le.holder]);
  switch (action) {
    case ConflictAction::kWait:
      break;
    case ConflictAction::kAbortRequester:
      AbortTxn(le.txn);
      break;
    case ConflictAction::kAbortHolder:
      AbortTxn(le.holder);
      break;
  }
}

void SimEngine::AdmitOrQueueRound(int i, SimTime arrival) {
  if (Retired(i)) {
    executors_[i].set_state(TxnState::kCommitted);
    committed_[i] = 1;
    return;
  }
  if (driver_.mpl > 0 && active_ >= driver_.mpl) {
    arrival_time_[i] = arrival;  // Latency includes the admission wait.
    admit_fifo_.push_back(i);
    in_admit_fifo_[i] = 1;
    return;
  }
  BeginRound(i, arrival);
}

void SimEngine::BeginRound(int i, SimTime arrival) {
  TxnExecutor& exec = executors_[i];
  if (exec.state() == TxnState::kNotStarted) {
    exec.MarkStarted();
  } else {
    exec.BeginRound();  // Bumps the attempt: prior-round stragglers stale.
  }
  committed_[i] = 0;
  round_base_attempt_[i] = exec.attempt();
  arrival_time_[i] = arrival;
  ++active_;
  if (driver_.closed_loop && driver_.open_loop && !arrival_clock_on_[i]) {
    // Open variant: seed the free-running arrival clock once; it re-arms
    // itself on every firing (Dispatch, kThinkDone).
    arrival_clock_on_[i] = 1;
    SimEvent think;
    think.kind = EventKind::kThinkDone;
    think.txn = i;
    queue_.After(ThinkDelay(), think);
  }
  Advance(i);
}

void SimEngine::Advance(int i) {
  TxnExecutor& exec = executors_[i];
  if (exec.IsDone()) {
    if (!committed_[i]) CommitRound(i);
    return;
  }
  // Issuing only schedules network events, so the ready list shrinks
  // monotonically here; steps issue in ascending node order.
  while (!exec.ReadySteps().empty()) {
    NodeId v = exec.ReadySteps().front();
    exec.MarkIssued(v);
    IssueStep(i, v);
  }
}

void SimEngine::SendToCopies(int i, NodeId v, EntityId e, EventKind kind,
                             std::size_t from) {
  const std::vector<SiteId>& copies = copies_[e];
  pending_acks_[i][v] = static_cast<int32_t>(copies.size() - from);
  for (std::size_t k = from; k < copies.size(); ++k) {
    SimEvent ev;
    ev.kind = kind;
    ev.txn = i;
    ev.node = v;
    ev.attempt = executors_[i].attempt();
    ev.site = copies[k];
    network_.Send(home_[i], copies[k], ev);
  }
}

void SimEngine::IssueStep(int i, NodeId v) {
  const Step step = executors_[i].txn().step(v);
  if (step.kind == StepKind::kLock) {
    // Write-all with primary-copy serialization: acquire the primary copy
    // first; its grant ack fans out to the remaining copies (kAckArrive).
    // Simultaneous fan-out would let two homes each grab half the copies
    // of the SAME entity and deadlock on it — the primary order prevents
    // exactly that (DESIGN.md §6).
    fanned_out_[i][v] = copies_[step.entity].size() == 1 ? 1 : 0;
    pending_acks_[i][v] = 1;
    SimEvent ev;
    ev.kind = EventKind::kLockArrive;
    ev.txn = i;
    ev.node = v;
    ev.attempt = executors_[i].attempt();
    ev.site = PrimaryOf(step.entity);
    network_.Send(home_[i], ev.site, ev);
  } else {
    // Releases cannot block: fan the unlock out to every copy at once
    // and join the acks at the home site.
    fanned_out_[i][v] = 1;
    SendToCopies(i, v, step.entity, EventKind::kUnlockArrive, /*from=*/0);
  }
}

void SimEngine::CommitRound(int i) {
  TxnExecutor& exec = executors_[i];
  committed_[i] = 1;
  exec.set_state(TxnState::kCommitted);
  if (!driver_.closed_loop) committed_attempt_[i] = exec.attempt();
  ++result_.commits;
  ++rounds_done_[i];
  latencies_.push_back(queue_.now() - arrival_time_[i]);
  --active_;
  if (!driver_.closed_loop) return;
  AdmitFromFifo();
  if (Retired(i)) return;
  if (driver_.open_loop) {
    if (!pending_arrivals_[i].empty()) {
      SimTime arrival = pending_arrivals_[i].front();
      pending_arrivals_[i].pop_front();
      if (!arrival_clock_on_[i]) {
        // Backlog has headroom again: resume the paused arrival clock.
        arrival_clock_on_[i] = 1;
        SimEvent think;
        think.kind = EventKind::kThinkDone;
        think.txn = i;
        queue_.After(ThinkDelay(), think);
      }
      AdmitOrQueueRound(i, arrival);
    } else {
      exec.set_state(TxnState::kThinking);  // Awaits the next arrival.
    }
  } else {
    exec.set_state(TxnState::kThinking);
    SimEvent think;
    think.kind = EventKind::kThinkDone;
    think.txn = i;
    queue_.After(ThinkDelay(), think);
  }
}

// A slot freed up: admit the longest-waiting queued round, if any.
void SimEngine::AdmitFromFifo() {
  while (admit_head_ < admit_fifo_.size() &&
         (driver_.mpl == 0 || active_ < driver_.mpl)) {
    int j = admit_fifo_[admit_head_++];
    in_admit_fifo_[j] = 0;
    if (Retired(j)) {
      executors_[j].set_state(TxnState::kCommitted);
      committed_[j] = 1;
      continue;
    }
    BeginRound(j, arrival_time_[j]);
    break;
  }
}

void SimEngine::AbortTxn(int i) {
  TxnExecutor& exec = executors_[i];
  if (committed_[i] || exec.state() == TxnState::kGaveUp) {
    return;  // Too late to wound.
  }
  ++result_.aborts;
  for (LockManager& site : sites_) site.Abort(i);
  exec.Restart();  // Bumps the attempt => in-flight events go stale.
  if (exec.attempt() - round_base_attempt_[i] > options_.max_restarts) {
    result_.gave_up = true;
    exec.set_state(TxnState::kGaveUp);
    --active_;  // Free the execution slot it occupied.
    if (driver_.closed_loop) AdmitFromFifo();
    return;
  }
  SimTime backoff =
      options_.restart_backoff + rng_.NextBelow(options_.restart_backoff);
  SimEvent restart;
  restart.kind = EventKind::kStartTxn;
  restart.txn = i;
  restart.attempt = exec.attempt();
  queue_.After(backoff, restart);
}

std::vector<int> SimEngine::IncompleteTxns() const {
  std::vector<int> out;
  for (int i = 0; i < sys_.num_transactions(); ++i) {
    if (!committed_[i]) out.push_back(i);
  }
  return out;
}

// Global wait-for cycle detection at quiescence; aborts the youngest
// transaction on a cycle. Returns true if it made progress.
bool SimEngine::DetectAndResolve() {
  ++result_.detector_runs;
  Digraph wait_for(sys_.num_transactions());
  std::vector<LockManager::WaitEdge> edges;
  for (const LockManager& site : sites_) site.AppendWaitForEdges(&edges);
  for (const auto& edge : edges) wait_for.AddArc(edge.waiter, edge.holder);
  std::vector<NodeId> cycle = FindCycle(wait_for);
  if (cycle.empty()) return false;
  int victim = cycle[0];
  for (NodeId v : cycle) {
    if (timestamp_[v] > timestamp_[victim]) victim = v;
  }
  AbortTxn(victim);
  PumpLockEvents();  // The abort releases locks: serve the grants now.
  return true;
}

void SimEngine::FinalizeMetrics() {
  result_.events = queue_.processed();
  result_.messages = network_.messages_sent();
  result_.makespan = queue_.now();
  for (const LockManager& site : sites_) {
    result_.shared_grants += site.shared_grants();
    result_.upgrades += site.upgrades();
    result_.upgrade_aborts += site.upgrade_aborts();
  }
  const uint64_t attempts = result_.aborts + result_.commits;
  result_.abort_rate =
      attempts == 0 ? 0.0
                    : static_cast<double>(result_.aborts) /
                          static_cast<double>(attempts);
  result_.throughput =
      result_.makespan == 0
          ? 0.0
          : static_cast<double>(result_.commits) * 1e6 /
                static_cast<double>(result_.makespan);
  if (latencies_.empty()) return;
  std::sort(latencies_.begin(), latencies_.end());
  auto pct = [&](double p) {
    std::size_t idx = static_cast<std::size_t>(
        p * static_cast<double>(latencies_.size() - 1) + 0.5);
    return latencies_[std::min(idx, latencies_.size() - 1)];
  };
  result_.latency.p50 = pct(0.50);
  result_.latency.p95 = pct(0.95);
  result_.latency.p99 = pct(0.99);
  result_.latency.max = latencies_.back();
  double sum = 0;
  for (SimTime l : latencies_) sum += static_cast<double>(l);
  result_.latency.mean = sum / static_cast<double>(latencies_.size());
  result_.latency.samples = latencies_.size();
}

Status SimEngine::ExtractHistory() {
  // Committed history: site-linearized log filtered to the attempts that
  // committed (one-shot mode: at most one per transaction).
  for (const LogEntry& entry : log_) {
    if (committed_[entry.txn] &&
        entry.attempt == committed_attempt_[entry.txn]) {
      result_.committed_history.push_back(GlobalNode{entry.txn, entry.node});
    }
  }
  if (result_.all_committed) {
    auto cg = ConflictGraph::FromSchedule(sys_, result_.committed_history);
    if (!cg.ok()) return cg.status();
    result_.history_serializable = cg->IsAcyclic();
  }
  return Status();
}

Result<SimResult> SimEngine::Run() {
  for (int i = 0; i < sys_.num_transactions(); ++i) {
    SimTime offset = options_.start_spread == 0
                         ? 0
                         : rng_.NextBelow(options_.start_spread + 1);
    SimEvent start;
    start.kind = EventKind::kStartTxn;
    start.txn = i;
    start.attempt = 1;
    queue_.After(offset, start);
  }

  SimEvent ev;
  for (;;) {
    while ((options_.max_events == 0 ||
            queue_.processed() < options_.max_events) &&
           queue_.PopNext(&ev)) {
      Dispatch(ev);
      PumpLockEvents();
    }
    if (!queue_.empty()) {
      result_.budget_exhausted = true;
      break;
    }
    // Quiescent. Done, deadlocked, or (under kDetect) resolvable.
    std::vector<int> incomplete = IncompleteTxns();
    if (incomplete.empty()) {
      result_.all_committed = true;
      break;
    }
    if (result_.gave_up) break;
    if (options_.policy == ConflictPolicy::kDetect && DetectAndResolve()) {
      continue;
    }
    result_.deadlocked = true;
    result_.blocked_txns = std::move(incomplete);
    break;
  }

  FinalizeMetrics();
  if (!driver_.closed_loop) {
    Status s = ExtractHistory();
    if (!s.ok()) return s;
  }
  return std::move(result_);
}

}  // namespace wydb
