#include "runtime/txn_runtime.h"

#include <algorithm>

namespace wydb {

const char* TxnStateName(TxnState state) {
  switch (state) {
    case TxnState::kNotStarted:
      return "not-started";
    case TxnState::kRunning:
      return "running";
    case TxnState::kBackoff:
      return "backoff";
    case TxnState::kThinking:
      return "thinking";
    case TxnState::kCommitted:
      return "committed";
    case TxnState::kGaveUp:
      return "gave-up";
  }
  return "unknown";
}

TxnExecutor::TxnExecutor(int index, const Transaction* txn)
    : index_(index), txn_(txn) {
  Reset();
}

void TxnExecutor::Reset() {
  ++attempt_;
  const int n = txn_->num_steps();
  issued_.assign(n, 0);
  completed_.assign(n, 0);
  pending_preds_.resize(n);
  ready_.clear();
  completion_order_.clear();
  completed_count_ = 0;
  for (NodeId v = 0; v < n; ++v) {
    pending_preds_[v] = txn_->graph().InDegree(v);
    if (pending_preds_[v] == 0) ready_.push_back(v);  // Ascending by loop.
  }
}

void TxnExecutor::InsertReady(NodeId v) {
  // Keep ready_ sorted ascending: deterministic issue order matching the
  // old recompute-from-scratch ReadySteps().
  ready_.insert(std::lower_bound(ready_.begin(), ready_.end(), v), v);
}

void TxnExecutor::MarkIssued(NodeId v) {
  if (issued_[v]) return;
  issued_[v] = 1;
  auto it = std::lower_bound(ready_.begin(), ready_.end(), v);
  if (it != ready_.end() && *it == v) ready_.erase(it);
}

void TxnExecutor::MarkCompleted(NodeId v) {
  if (completed_[v]) return;
  completed_[v] = 1;
  completion_order_.push_back(v);
  ++completed_count_;
  for (NodeId u : txn_->graph().OutNeighbors(v)) {
    if (--pending_preds_[u] == 0 && !issued_[u]) InsertReady(u);
  }
}

std::vector<EntityId> TxnExecutor::HeldEntities() const {
  std::vector<EntityId> held;
  for (EntityId e : txn_->entities()) {
    if (completed_[txn_->LockNode(e)] && !completed_[txn_->UnlockNode(e)]) {
      held.push_back(e);
    }
  }
  return held;
}

void TxnExecutor::Restart() {
  Reset();
  state_ = TxnState::kBackoff;
}

void TxnExecutor::BeginRound() {
  Reset();
  state_ = TxnState::kRunning;
}

}  // namespace wydb
