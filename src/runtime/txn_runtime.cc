#include "runtime/txn_runtime.h"

namespace wydb {

void TxnExecutor::Reset() {
  ++attempt_;
  issued_.assign(txn_->num_steps(), false);
  completed_.assign(txn_->num_steps(), false);
  completion_order_.clear();
  completed_count_ = 0;
}

std::vector<NodeId> TxnExecutor::ReadySteps() const {
  std::vector<NodeId> ready;
  for (NodeId v = 0; v < txn_->num_steps(); ++v) {
    if (issued_[v]) continue;
    bool ok = true;
    for (NodeId u : txn_->graph().InNeighbors(v)) {
      if (!completed_[u]) {
        ok = false;
        break;
      }
    }
    if (ok) ready.push_back(v);
  }
  return ready;
}

void TxnExecutor::MarkCompleted(NodeId v) {
  if (!completed_[v]) {
    completed_[v] = true;
    completion_order_.push_back(v);
    ++completed_count_;
  }
}

std::vector<EntityId> TxnExecutor::HeldEntities() const {
  std::vector<EntityId> held;
  for (EntityId e : txn_->entities()) {
    if (completed_[txn_->LockNode(e)] && !completed_[txn_->UnlockNode(e)]) {
      held.push_back(e);
    }
  }
  return held;
}

void TxnExecutor::Restart() { Reset(); }

}  // namespace wydb
