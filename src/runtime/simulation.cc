#include "runtime/simulation.h"

#include <algorithm>
#include <memory>

#include "common/random.h"
#include "core/conflict_graph.h"
#include "graph/algorithms.h"
#include "runtime/lock_manager.h"
#include "runtime/sim/event_queue.h"
#include "runtime/txn_runtime.h"

namespace wydb {
namespace {

class Simulation {
 public:
  Simulation(const TransactionSystem& sys, const SimOptions& options)
      : sys_(sys),
        options_(options),
        rng_(options.seed),
        network_(&queue_, sys.db().num_sites(), options.latency, &rng_) {
    const int n = sys.num_transactions();
    for (SiteId s = 0; s < sys.db().num_sites(); ++s) {
      sites_.push_back(std::make_unique<LockManager>(s));
      sites_.back()->set_on_block(
          [this](int requester, int holder, EntityId entity) {
            OnBlock(requester, holder, entity);
          });
    }
    for (int i = 0; i < n; ++i) {
      executors_.emplace_back(i, &sys.txn(i));
      // Home site: where the transaction's first entity lives (round-robin
      // fallback for the empty edge case).
      SiteId home = sys.txn(i).entities().empty()
                        ? i % std::max(1, sys.db().num_sites())
                        : sys.db().SiteOf(sys.txn(i).entities()[0]);
      home_.push_back(home);
      timestamp_.push_back(static_cast<uint64_t>(i));
      committed_.push_back(false);
    }
  }

  Result<SimResult> Run();

 private:
  struct LogEntry {
    int txn;
    NodeId node;
    int attempt;
  };

  void StartTxn(int i) {
    TxnExecutor& exec = executors_[i];
    exec.MarkStarted();
    Advance(i);
  }

  // Issues every ready step of transaction i.
  void Advance(int i) {
    TxnExecutor& exec = executors_[i];
    if (exec.IsDone()) {
      if (!committed_[i]) committed_[i] = true;
      return;
    }
    for (NodeId v : exec.ReadySteps()) {
      exec.MarkIssued(v);
      IssueStep(i, v);
    }
  }

  void IssueStep(int i, NodeId v) {
    TxnExecutor& exec = executors_[i];
    const Transaction& t = exec.txn();
    const Step step = t.step(v);
    const SiteId target = sys_.db().SiteOf(step.entity);
    const int att = exec.attempt();

    if (step.kind == StepKind::kLock) {
      network_.Send(home_[i], target, [this, i, v, att, step, target] {
        if (executors_[i].attempt() != att) return;  // Stale attempt.
        sites_[target]->Request(i, step.entity, [this, i, v, att, target] {
          // Lock granted at the site: this is the linearization point.
          if (executors_[i].attempt() != att) {
            // Granted to an aborted attempt (in-flight race): give it
            // back immediately.
            sites_[target]->Release(i, executors_[i].txn().step(v).entity);
            return;
          }
          log_.push_back(LogEntry{i, v, att});
          network_.Send(target, home_[i], [this, i, v, att] {
            if (executors_[i].attempt() != att) return;
            executors_[i].MarkCompleted(v);
            Advance(i);
          });
        });
      });
    } else {
      network_.Send(home_[i], target, [this, i, v, att, step, target] {
        if (executors_[i].attempt() != att) return;
        log_.push_back(LogEntry{i, v, att});
        sites_[target]->Release(i, step.entity);
        network_.Send(target, home_[i], [this, i, v, att] {
          if (executors_[i].attempt() != att) return;
          executors_[i].MarkCompleted(v);
          Advance(i);
        });
      });
    }
  }

  void OnBlock(int requester, int holder, EntityId entity) {
    (void)entity;
    ConflictAction action = ResolveConflict(
        options_.policy, timestamp_[requester], timestamp_[holder]);
    switch (action) {
      case ConflictAction::kWait:
        break;
      case ConflictAction::kAbortRequester:
        AbortTxn(requester);
        break;
      case ConflictAction::kAbortHolder:
        AbortTxn(holder);
        break;
    }
  }

  void AbortTxn(int i) {
    if (committed_[i]) return;  // Too late to wound.
    ++result_.aborts;
    for (auto& site : sites_) site->Abort(i);
    TxnExecutor& exec = executors_[i];
    exec.Restart();  // Bumps the attempt => in-flight callbacks go stale.
    if (exec.attempt() > options_.max_restarts) {
      result_.gave_up = true;
      return;
    }
    SimTime backoff =
        options_.restart_backoff + rng_.NextBelow(options_.restart_backoff);
    queue_.After(backoff, [this, i] { StartTxn(i); });
  }

  std::vector<int> IncompleteTxns() const {
    std::vector<int> out;
    for (int i = 0; i < sys_.num_transactions(); ++i) {
      if (!committed_[i]) out.push_back(i);
    }
    return out;
  }

  // Global wait-for cycle detection at quiescence; aborts the youngest
  // transaction on a cycle. Returns true if it made progress.
  bool DetectAndResolve() {
    ++result_.detector_runs;
    Digraph wait_for(sys_.num_transactions());
    for (const auto& site : sites_) {
      for (const auto& edge : site->WaitForEdges()) {
        wait_for.AddArc(edge.waiter, edge.holder);
      }
    }
    std::vector<NodeId> cycle = FindCycle(wait_for);
    if (cycle.empty()) return false;
    int victim = cycle[0];
    for (NodeId v : cycle) {
      if (timestamp_[v] > timestamp_[victim]) victim = v;
    }
    AbortTxn(victim);
    return true;
  }

  const TransactionSystem& sys_;
  const SimOptions& options_;
  Rng rng_;
  EventQueue queue_;
  Network network_;
  std::vector<std::unique_ptr<LockManager>> sites_;
  std::vector<TxnExecutor> executors_;
  std::vector<SiteId> home_;
  std::vector<uint64_t> timestamp_;
  std::vector<bool> committed_;
  std::vector<LogEntry> log_;
  SimResult result_;
};

Result<SimResult> Simulation::Run() {
  for (int i = 0; i < sys_.num_transactions(); ++i) {
    SimTime offset = options_.start_spread == 0
                         ? 0
                         : rng_.NextBelow(options_.start_spread + 1);
    queue_.After(offset, [this, i] { StartTxn(i); });
  }

  for (;;) {
    uint64_t budget = options_.max_events == 0
                          ? 0
                          : options_.max_events - queue_.processed();
    if (options_.max_events != 0 && queue_.processed() >= options_.max_events) {
      result_.budget_exhausted = true;
      break;
    }
    queue_.RunAll(budget);
    if (!queue_.empty()) {
      result_.budget_exhausted = true;
      break;
    }
    // Quiescent. Done, deadlocked, or (under kDetect) resolvable.
    std::vector<int> incomplete = IncompleteTxns();
    if (incomplete.empty()) {
      result_.all_committed = true;
      break;
    }
    if (result_.gave_up) break;
    if (options_.policy == ConflictPolicy::kDetect && DetectAndResolve()) {
      continue;
    }
    result_.deadlocked = true;
    result_.blocked_txns = incomplete;
    break;
  }

  result_.events = queue_.processed();
  result_.messages = network_.messages_sent();
  result_.makespan = queue_.now();

  // Committed history: site-linearized log filtered to final attempts of
  // committed transactions.
  for (const LogEntry& entry : log_) {
    if (committed_[entry.txn] &&
        entry.attempt == executors_[entry.txn].attempt()) {
      result_.committed_history.push_back(
          GlobalNode{entry.txn, entry.node});
    }
  }
  if (result_.all_committed) {
    auto cg = ConflictGraph::FromSchedule(sys_, result_.committed_history);
    if (!cg.ok()) return cg.status();
    result_.history_serializable = cg->IsAcyclic();
  }
  return result_;
}

}  // namespace

Result<SimResult> RunSimulation(const TransactionSystem& sys,
                                const SimOptions& options) {
  Simulation sim(sys, options);
  return sim.Run();
}

Result<AggregateResult> RunMany(const TransactionSystem& sys,
                                const SimOptions& base, int runs) {
  AggregateResult agg;
  double makespan_sum = 0.0;
  for (int r = 0; r < runs; ++r) {
    SimOptions opts = base;
    opts.seed = base.seed + static_cast<uint64_t>(r);
    auto res = RunSimulation(sys, opts);
    if (!res.ok()) return res.status();
    ++agg.runs;
    if (res->all_committed) {
      ++agg.committed_runs;
      if (!res->history_serializable) agg.all_histories_serializable = false;
    }
    if (res->deadlocked) ++agg.deadlocked_runs;
    agg.total_aborts += res->aborts;
    agg.total_messages += res->messages;
    makespan_sum += static_cast<double>(res->makespan);
  }
  if (agg.runs > 0) agg.avg_makespan = makespan_sum / agg.runs;
  return agg;
}

}  // namespace wydb
