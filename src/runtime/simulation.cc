#include "runtime/simulation.h"

#include "runtime/seed_sweep.h"
#include "runtime/sim_engine.h"

namespace wydb {
namespace {

void Accumulate(AggregateResult* agg, const SimResult& res,
                double* makespan_sum) {
  ++agg->runs;
  if (res.all_committed) {
    ++agg->committed_runs;
    if (!res.history_serializable) agg->all_histories_serializable = false;
  }
  if (res.deadlocked) ++agg->deadlocked_runs;
  if (res.budget_exhausted) ++agg->budget_exhausted_runs;
  if (res.gave_up) ++agg->gave_up_runs;
  agg->total_aborts += res.aborts;
  agg->total_messages += res.messages;
  agg->total_shared_grants += res.shared_grants;
  agg->total_upgrades += res.upgrades;
  agg->total_upgrade_aborts += res.upgrade_aborts;
  *makespan_sum += static_cast<double>(res.makespan);
}

}  // namespace

Result<SimResult> RunSimulation(const TransactionSystem& sys,
                                const SimOptions& options) {
  SimEngine engine(sys, options, SimEngine::DriverConfig{});
  return engine.Run();
}

Result<AggregateResult> RunMany(const TransactionSystem& sys,
                                const SimOptions& base, int runs,
                                int threads) {
  auto results =
      internal::SeedSweep<Result<SimResult>>(runs, threads, [&](int r) {
        SimOptions opts = base;
        opts.seed = base.seed + static_cast<uint64_t>(r);
        return RunSimulation(sys, opts);
      });

  AggregateResult agg;
  double makespan_sum = 0.0;
  for (int r = 0; r < runs; ++r) {
    Result<SimResult>& res = *results[r];
    if (!res.ok()) return res.status();
    Accumulate(&agg, *res, &makespan_sum);
  }
  if (agg.runs > 0) agg.avg_makespan = makespan_sum / agg.runs;
  return agg;
}

}  // namespace wydb
