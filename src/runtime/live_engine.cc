#include "runtime/live_engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/random.h"
#include "common/status.h"
#include "runtime/striped_lock_manager.h"
#include "runtime/txn_runtime.h"

namespace wydb {
namespace {

using Clock = std::chrono::steady_clock;

int64_t ElapsedUs(Clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               since)
      .count();
}

/// MPL admission gate: at most `limit` transactions inside a round at
/// once (0 = unlimited). Stop- and deadline-aware so a stalled session
/// never wedges a worker here.
class Admission {
 public:
  Admission(int limit, const std::atomic<bool>* stop)
      : limit_(limit), stop_(stop) {}

  /// Blocks until a slot frees up. False if the session stopped or the
  /// caller's deadline check fails first (slot NOT taken).
  template <typename DeadlineFn>
  bool Enter(const DeadlineFn& past_deadline) {
    if (limit_ <= 0) return !stop_->load(std::memory_order_acquire);
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      if (stop_->load(std::memory_order_acquire) || past_deadline())
        return false;
      if (in_flight_ < limit_) {
        ++in_flight_;
        return true;
      }
      cv_.wait_for(lk, std::chrono::milliseconds(50));
    }
  }

  void Leave() {
    if (limit_ <= 0) return;
    {
      std::lock_guard<std::mutex> lk(mu_);
      --in_flight_;
    }
    cv_.notify_one();
  }

  void WakeAll() { cv_.notify_all(); }

 private:
  const int limit_;
  const std::atomic<bool>* stop_;
  int in_flight_ = 0;
  std::mutex mu_;
  std::condition_variable cv_;
};

class LiveEngine {
 public:
  LiveEngine(const TransactionSystem& sys, const LiveOptions& options)
      : sys_(sys),
        options_(options),
        num_txns_(sys.num_transactions()),
        mgr_(sys.db().num_entities(), num_txns_,
             StripedLockManager::Options{options.policy, options.num_stripes,
                                         options.detect_interval_us}),
        admission_(options.mpl, &stop_) {}

  LiveResult Run() {
    int threads = options_.threads;
    if (threads <= 0)
      threads = static_cast<int>(std::thread::hardware_concurrency());
    threads = std::clamp(threads, 1, num_txns_);

    // Timestamps for the RSL policies: the transaction index, exactly the
    // assignment SimEngine uses, so live and simulated conflict decisions
    // implement the same priority order.
    for (int t = 0; t < num_txns_; ++t) mgr_.SetTimestamp(t, t);

    start_ = Clock::now();
    has_deadline_ = options_.duration_ms > 0;
    deadline_ = start_ + std::chrono::milliseconds(options_.duration_ms);

    std::vector<std::vector<int64_t>> latencies(threads);
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int w = 0; w < threads; ++w) {
      workers.emplace_back(
          [this, w, threads, &latencies] { Worker(w, threads, &latencies[w]); });
    }
    std::thread watchdog([this] { Watchdog(); });

    for (std::thread& t : workers) t.join();
    // Workers done: stop the session so the watchdog exits.
    Stop();
    watchdog.join();

    return Finalize(threads, latencies);
  }

 private:
  // One worker drives transactions w, w+threads, w+2*threads, ... each
  // through closed-loop rounds: arrival -> MPL admission -> attempt loop
  // (restart on abort) -> commit -> think.
  void Worker(int w, int threads, std::vector<int64_t>* latencies) {
    std::vector<TxnExecutor> executors;
    std::vector<int> rounds_done;
    for (int t = w; t < num_txns_; t += threads) {
      executors.emplace_back(t, &sys_.txn(t));
      rounds_done.push_back(0);
    }
    Rng rng(options_.seed * 0x9E3779B97F4A7C15ull + static_cast<uint64_t>(w));

    bool any_active = true;
    while (any_active && !stop_.load(std::memory_order_acquire)) {
      any_active = false;
      for (size_t i = 0; i < executors.size(); ++i) {
        if (options_.rounds > 0 && rounds_done[i] >= options_.rounds) continue;
        if (PastDeadline()) return;
        if (stop_.load(std::memory_order_acquire)) return;
        any_active = true;

        const auto arrival = Clock::now();
        if (!admission_.Enter([this] { return PastDeadline(); })) return;
        const bool committed = RunRound(&executors[i], &rng);
        admission_.Leave();
        if (!committed) return;  // Stopped or gave up mid-round.

        ++rounds_done[i];
        latencies->push_back(ElapsedUs(arrival));
        commits_.fetch_add(1, std::memory_order_relaxed);
        if (options_.think_us > 0) {
          SleepStopAware(static_cast<int64_t>(
              1 + rng.NextBelow(static_cast<uint64_t>(2 * options_.think_us))));
        }
      }
      // Duration-bounded sessions keep cycling until the deadline.
      if (options_.rounds <= 0) any_active = !PastDeadline();
    }
  }

  /// One round of one transaction: walk the step DAG in lowest-ready
  /// order, restarting on aborts. True iff the round committed.
  bool RunRound(TxnExecutor* ex, Rng* rng) {
    const int txn = ex->index();
    ex->BeginRound();
    mgr_.BeginAttempt(txn);
    int restarts = 0;
    for (;;) {
      bool aborted = false;
      while (!ex->IsDone()) {
        const NodeId v = ex->ReadySteps().front();
        ex->MarkIssued(v);
        const Step& step = ex->txn().step(v);
        if (step.kind == StepKind::kLock) {
          switch (mgr_.Acquire(txn, step.entity, step.mode)) {
            case StripedLockManager::AcquireStatus::kGranted:
              ex->MarkCompleted(v);
              if (options_.hold_us > 0) {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(options_.hold_us));
              }
              if (options_.work_us > 0) SpinFor(options_.work_us);
              break;
            case StripedLockManager::AcquireStatus::kAborted:
              aborted = true;
              break;
            case StripedLockManager::AcquireStatus::kStopped:
              mgr_.ReleaseAll(txn, ex->HeldEntities());
              return false;
          }
          if (aborted) break;
        } else {
          mgr_.Release(txn, step.entity);
          ex->MarkCompleted(v);
        }
      }
      if (!aborted) return true;

      aborts_.fetch_add(1, std::memory_order_relaxed);
      mgr_.ReleaseAll(txn, ex->HeldEntities());
      ex->Restart();
      if (++restarts > options_.max_restarts) {
        gave_up_.store(true, std::memory_order_release);
        Stop();
        return false;
      }
      if (options_.backoff_us > 0) {
        SleepStopAware(static_cast<int64_t>(
            options_.backoff_us +
            rng->NextBelow(static_cast<uint64_t>(options_.backoff_us))));
      }
      if (stop_.load(std::memory_order_acquire)) return false;
      mgr_.BeginAttempt(txn);
      ex->set_state(TxnState::kRunning);
    }
  }

  // Deadlock watchdog: under a blocking policy a wedged session makes no
  // progress at all — commits, aborts and lock ops all freeze while
  // waiters sit parked. Two consecutive frozen intervals with parked
  // waiters declare deadlock. This is the harness's safety net for
  // UNCERTIFIED systems; it reads three counters per interval and adds
  // zero work to any lock operation.
  void Watchdog() {
    uint64_t last_progress = ProgressCounter();
    int strikes = 0;
    std::unique_lock<std::mutex> lk(watchdog_mu_);
    while (!stop_.load(std::memory_order_acquire)) {
      watchdog_cv_.wait_for(
          lk, std::chrono::milliseconds(options_.watchdog_interval_ms));
      if (stop_.load(std::memory_order_acquire)) return;
      const uint64_t progress = ProgressCounter();
      if (progress != last_progress) {
        last_progress = progress;
        strikes = 0;
        continue;
      }
      if (mgr_.TotalWaiters() == 0) {
        strikes = 0;
        continue;
      }
      if (++strikes < 2) continue;
      // Frozen twice in a row with parked waiters: circular wait.
      for (const StripedLockManager::WaitEdge& e : mgr_.WaitForEdges()) {
        blocked_txns_.push_back(e.waiter);
      }
      std::sort(blocked_txns_.begin(), blocked_txns_.end());
      blocked_txns_.erase(
          std::unique(blocked_txns_.begin(), blocked_txns_.end()),
          blocked_txns_.end());
      deadlocked_.store(true, std::memory_order_release);
      Stop();
      return;
    }
  }

  uint64_t ProgressCounter() const {
    return commits_.load(std::memory_order_relaxed) +
           aborts_.load(std::memory_order_relaxed) + mgr_.lock_ops();
  }

  bool PastDeadline() const { return has_deadline_ && Clock::now() >= deadline_; }

  void Stop() {
    stop_.store(true, std::memory_order_seq_cst);
    mgr_.RequestStop();
    admission_.WakeAll();
    watchdog_cv_.notify_all();
  }

  /// Burns ~us of CPU while staying runnable (work_us): unlike a sleep
  /// the thread keeps its core and can be preempted holding locks.
  static void SpinFor(int64_t us) {
    const auto until = Clock::now() + std::chrono::microseconds(us);
    while (Clock::now() < until) {
    }
  }

  /// Sleeps ~us, in slices, bailing early once the session stops.
  void SleepStopAware(int64_t us) {
    constexpr int64_t kSliceUs = 20'000;
    while (us > 0 && !stop_.load(std::memory_order_acquire)) {
      const int64_t slice = std::min(us, kSliceUs);
      std::this_thread::sleep_for(std::chrono::microseconds(slice));
      us -= slice;
    }
  }

  LiveResult Finalize(int threads,
                      const std::vector<std::vector<int64_t>>& latencies) {
    LiveResult r;
    r.threads = threads;
    r.stripes = mgr_.num_stripes();
    r.deadlocked = deadlocked_.load(std::memory_order_acquire);
    r.gave_up = gave_up_.load(std::memory_order_acquire);
    r.completed = !r.deadlocked && !r.gave_up;
    r.commits = commits_.load(std::memory_order_relaxed);
    r.aborts = aborts_.load(std::memory_order_relaxed);
    r.lock_ops = mgr_.lock_ops();
    r.shared_grants = mgr_.shared_grants();
    r.upgrades = mgr_.upgrades();
    r.upgrade_aborts = mgr_.upgrade_aborts();
    r.detector_runs = mgr_.detector_runs();
    r.blocked_txns = blocked_txns_;
    r.wall_seconds = static_cast<double>(ElapsedUs(start_)) * 1e-6;
    if (r.wall_seconds > 0) {
      r.commits_per_sec = static_cast<double>(r.commits) / r.wall_seconds;
      r.lock_ops_per_sec = static_cast<double>(r.lock_ops) / r.wall_seconds;
    }
    const uint64_t attempts = r.aborts + r.commits;
    r.abort_rate = attempts == 0 ? 0.0
                                 : static_cast<double>(r.aborts) /
                                       static_cast<double>(attempts);

    std::vector<int64_t> all;
    for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
    if (!all.empty()) {
      std::sort(all.begin(), all.end());
      auto pct = [&](double p) {
        std::size_t idx = static_cast<std::size_t>(
            p * static_cast<double>(all.size() - 1) + 0.5);
        return static_cast<SimTime>(all[std::min(idx, all.size() - 1)]);
      };
      r.latency.p50 = pct(0.50);
      r.latency.p95 = pct(0.95);
      r.latency.p99 = pct(0.99);
      r.latency.max = static_cast<SimTime>(all.back());
      double sum = 0;
      for (int64_t l : all) sum += static_cast<double>(l);
      r.latency.mean = sum / static_cast<double>(all.size());
      r.latency.samples = all.size();
    }
    return r;
  }

  const TransactionSystem& sys_;
  const LiveOptions options_;
  const int num_txns_;
  StripedLockManager mgr_;
  std::atomic<bool> stop_{false};
  Admission admission_;
  std::atomic<bool> deadlocked_{false};
  std::atomic<bool> gave_up_{false};
  std::atomic<uint64_t> commits_{0};
  std::atomic<uint64_t> aborts_{0};
  std::vector<int> blocked_txns_;  ///< Written by the watchdog, pre-Stop.
  Clock::time_point start_;
  Clock::time_point deadline_;
  bool has_deadline_ = false;
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
};

}  // namespace

Result<LiveResult> RunLive(const TransactionSystem& sys,
                           const LiveOptions& options) {
  if (sys.num_transactions() == 0) {
    return Status::InvalidArgument("live run needs a non-empty system");
  }
  if (options.rounds <= 0 && options.duration_ms <= 0) {
    return Status::InvalidArgument(
        "live run needs a bound: set rounds or duration_ms");
  }
  if (options.mpl < 0 || options.threads < 0) {
    return Status::InvalidArgument("mpl and threads must be non-negative");
  }
  LiveEngine engine(sys, options);
  return engine.Run();
}

}  // namespace wydb
