#include "runtime/striped_lock_manager.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/macros.h"
#include "graph/algorithms.h"
#include "graph/digraph.h"

namespace wydb {
namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

StripedLockManager::StripedLockManager(int num_entities, int num_txns,
                                       const Options& options)
    : options_(options) {
  WYDB_DCHECK(num_entities >= 0);
  WYDB_DCHECK(num_txns > 0);
  size_t stripes = options.num_stripes > 0
                       ? RoundUpPow2(static_cast<size_t>(options.num_stripes))
                       : RoundUpPow2(std::max<size_t>(
                             8, 2 * std::thread::hardware_concurrency()));
  stripes = std::min(stripes, RoundUpPow2(std::max(1, num_entities)));
  stripe_shift_ = 64;
  for (size_t p = stripes; p > 1; p >>= 1) --stripe_shift_;
  stripes_ = std::vector<Stripe>(stripes);
  entries_.resize(num_entities);
  nodes_ = std::make_unique<WaitNode[]>(num_txns);
  abort_flag_ = std::make_unique<std::atomic<uint8_t>[]>(num_txns);
  for (int t = 0; t < num_txns; ++t)
    abort_flag_[t].store(0, std::memory_order_relaxed);
  timestamp_.assign(num_txns, 0);
}

void StripedLockManager::Enqueue(Entry& entry, int txn, LockMode mode,
                                 bool upgrading) {
  WaitNode& node = nodes_[txn];
  node.next = -1;
  node.granted = 0;
  node.mode = mode;
  node.upgrading = upgrading ? 1 : 0;
  if (entry.tail < 0) {
    entry.head = entry.tail = txn;
  } else {
    nodes_[entry.tail].next = txn;
    entry.tail = txn;
  }
}

void StripedLockManager::EnqueueFront(Entry& entry, int txn, LockMode mode,
                                      bool upgrading) {
  WaitNode& node = nodes_[txn];
  node.granted = 0;
  node.mode = mode;
  node.upgrading = upgrading ? 1 : 0;
  node.next = entry.head;
  entry.head = txn;
  if (entry.tail < 0) entry.tail = txn;
}

void StripedLockManager::Unlink(Entry& entry, int txn) {
  int32_t prev = -1;
  for (int32_t cur = entry.head; cur >= 0; cur = nodes_[cur].next) {
    if (cur == txn) {
      if (prev < 0) {
        entry.head = nodes_[cur].next;
      } else {
        nodes_[prev].next = nodes_[cur].next;
      }
      if (entry.tail == txn) entry.tail = prev;
      nodes_[cur].next = -1;
      return;
    }
    prev = cur;
  }
}

bool StripedLockManager::IsSharer(const Entry& entry, int txn) const {
  return std::find(entry.sharers.begin(), entry.sharers.end(), txn) !=
         entry.sharers.end();
}

bool StripedLockManager::RemoveSharer(Entry& entry, int txn) {
  auto it = std::find(entry.sharers.begin(), entry.sharers.end(), txn);
  if (it == entry.sharers.end()) return false;
  entry.sharers.erase(it);
  return true;
}

void StripedLockManager::FlagPolicyAbort(int txn) {
  if (abort_flag_[txn].exchange(1, std::memory_order_seq_cst) == 0)
    policy_aborts_.fetch_add(1, std::memory_order_relaxed);
  nodes_[txn].cv.notify_all();
}

void StripedLockManager::GrantHead(Entry& entry,
                                   std::vector<int>* wounds) {
  WYDB_DCHECK(entry.holder < 0);
  bool granted_any = false;
  while (entry.head >= 0) {
    const int winner = entry.head;
    WaitNode& node = nodes_[winner];
    if (node.upgrading) {
      // Promotable only once the upgrader is the sole remaining sharer.
      if (entry.sharers.size() != 1 || entry.sharers[0] != winner) break;
      entry.head = node.next;
      if (entry.head < 0) entry.tail = -1;
      node.next = -1;
      entry.sharers.clear();
      entry.holder = winner;
      node.granted = 1;
      node.cv.notify_one();
      granted_any = true;
      break;  // Exclusive now: nothing further is grantable.
    }
    if (node.mode == LockMode::kExclusive) {
      if (!entry.sharers.empty()) break;
      entry.head = node.next;
      if (entry.head < 0) entry.tail = -1;
      node.next = -1;
      entry.holder = winner;
      node.granted = 1;
      node.cv.notify_one();
      granted_any = true;
      break;
    }
    // Shared: compatible with existing sharers; grant the whole
    // consecutive shared prefix of the queue in one batch.
    entry.head = node.next;
    if (entry.head < 0) entry.tail = -1;
    node.next = -1;
    entry.sharers.push_back(winner);
    node.granted = 1;
    node.cv.notify_one();
    granted_any = true;
  }
  if (!granted_any) return;
  // Holdership changed: the timestamp policies must be re-applied for the
  // remaining waiters against the NEW holders (the flat LockManager's
  // grant-echo idiom). An older wound-wait waiter wounds the fresh
  // holders; a younger wait-die waiter dies now instead of waiting
  // forever behind older ones. Just-granted holders are woken on THIS
  // stripe, so flagging them here is safe — they observe the flag
  // together with the grant and unwind through the kAborted give-back.
  // A PRE-EXISTING sharer may be parked on another stripe: its flag is
  // set here but the wake is deferred to the caller via *wounds
  // (WakeIfParked latches that stripe; doing so under this latch would
  // invert the latch order).
  if (options_.policy != ConflictPolicy::kWoundWait &&
      options_.policy != ConflictPolicy::kWaitDie) {
    return;
  }
  for (int32_t w = entry.head; w >= 0;) {
    int32_t next = nodes_[w].next;
    if (entry.holder >= 0) {
      ConflictAction action = ResolveConflict(options_.policy, timestamp_[w],
                                              timestamp_[entry.holder]);
      if (action == ConflictAction::kAbortHolder) {
        FlagPolicyAbort(entry.holder);
      } else if (action == ConflictAction::kAbortRequester) {
        FlagPolicyAbort(w);
      }
    } else {
      for (int s : entry.sharers) {
        if (s == w) continue;  // An upgrader never waits on itself.
        ConflictAction action =
            ResolveConflict(options_.policy, timestamp_[w], timestamp_[s]);
        if (action == ConflictAction::kAbortHolder) {
          FlagPolicyAbort(s);
          if (wounds != nullptr) wounds->push_back(s);
        } else if (action == ConflictAction::kAbortRequester) {
          FlagPolicyAbort(w);
        }
      }
    }
    w = next;
  }
}

StripedLockManager::AcquireStatus StripedLockManager::Acquire(int txn,
                                                              EntityId entity,
                                                              LockMode mode) {
  if (stop_.load(std::memory_order_acquire)) return AcquireStatus::kStopped;
  if (AbortRequested(txn)) return AcquireStatus::kAborted;
  Stripe& stripe = stripes_[StripeOf(entity)];
  std::unique_lock<std::mutex> lk(stripe.mu);
  Entry& entry = entries_[entity];
  if (entry.holder == txn || (mode == LockMode::kShared && IsSharer(entry, txn))) {
    // Re-grant of an already-held entity (the executor never does this,
    // but the table stays consistent if a caller retries). An exclusive
    // hold subsumes a shared request.
    grants_.fetch_add(1, std::memory_order_relaxed);
    return AcquireStatus::kGranted;
  }

  const bool upgrading =
      mode == LockMode::kExclusive && IsSharer(entry, txn);
  if (upgrading && entry.holder < 0 && entry.sharers.size() == 1) {
    // Sole sharer: promote in place.
    entry.sharers.clear();
    entry.holder = txn;
    grants_.fetch_add(1, std::memory_order_relaxed);
    upgrades_.fetch_add(1, std::memory_order_relaxed);
    return AcquireStatus::kGranted;
  }
  if (!upgrading) {
    // FIFO fairness: even a compatible shared request queues behind
    // queued waiters, so a stream of readers cannot starve a writer.
    const bool grantable =
        entry.holder < 0 && entry.head < 0 &&
        (mode == LockMode::kShared || entry.sharers.empty());
    if (grantable) {
      if (mode == LockMode::kShared) {
        entry.sharers.push_back(txn);
        shared_grants_.fetch_add(1, std::memory_order_relaxed);
      } else {
        entry.holder = txn;
      }
      grants_.fetch_add(1, std::memory_order_relaxed);
      return AcquireStatus::kGranted;
    }
  }

  // Conflict. Timestamp policies resolve it against EACH conflicting
  // holder before anyone parks; kBlock and kDetect go straight to the
  // queue.
  std::vector<int> wounds;
  if (options_.policy == ConflictPolicy::kWoundWait ||
      options_.policy == ConflictPolicy::kWaitDie) {
    std::vector<int> blockers;
    if (upgrading) {
      for (int s : entry.sharers) {
        if (s != txn) blockers.push_back(s);
      }
    } else if (entry.holder >= 0) {
      blockers.push_back(entry.holder);
    } else if (mode == LockMode::kExclusive && !entry.sharers.empty()) {
      blockers = entry.sharers;
    } else {
      // Free entity but a non-empty queue (transient, between a release
      // and the winner waking, or an S request behind a queued X): FIFO
      // order still applies — resolve against the queue head, the txn
      // about to become holder.
      blockers.push_back(entry.head);
    }
    bool requester_dies = false;
    for (int b : blockers) {
      ConflictAction action =
          ResolveConflict(options_.policy, timestamp_[txn], timestamp_[b]);
      if (action == ConflictAction::kAbortRequester) {
        requester_dies = true;
        break;
      }
      if (action == ConflictAction::kAbortHolder) wounds.push_back(b);
    }
    if (requester_dies) {
      policy_aborts_.fetch_add(1, std::memory_order_relaxed);
      if (upgrading) upgrade_aborts_.fetch_add(1, std::memory_order_relaxed);
      return AcquireStatus::kAborted;
    }
  }

  // An upgrade queues at the HEAD keeping its shared hold: granting any
  // later waiter first could never let the upgrade through, and two
  // queued upgrades on one entity are a genuine deadlock the policy (or
  // detector) resolves.
  if (upgrading) {
    EnqueueFront(entry, txn, mode, /*upgrading=*/true);
  } else {
    Enqueue(entry, txn, mode, /*upgrading=*/false);
  }
  nodes_[txn].parked_on.store(entity, std::memory_order_seq_cst);
  if (!wounds.empty()) {
    // Wounds are delivered AFTER this stripe's latch is dropped: a
    // wounded holder may be parked on a different stripe, and waking it
    // there while holding this latch would be a latch-order inversion.
    // The queue slot keeps our claim in the window.
    lk.unlock();
    for (int b : wounds) {
      if (abort_flag_[b].exchange(1, std::memory_order_seq_cst) == 0)
        policy_aborts_.fetch_add(1, std::memory_order_relaxed);
      WakeIfParked(b);
    }
    lk.lock();
  }
  return Park(txn, entity, lk);
}

StripedLockManager::AcquireStatus StripedLockManager::Park(
    int txn, EntityId entity, std::unique_lock<std::mutex>& lk) {
  WaitNode& node = nodes_[txn];
  const bool was_upgrading = node.upgrading != 0;
  const bool timed = options_.policy == ConflictPolicy::kDetect;
  const auto interval =
      std::chrono::microseconds(std::max<int64_t>(1, options_.detect_interval_us));
  if (timed && !node.granted && !AbortRequested(txn) &&
      !stop_.load(std::memory_order_acquire)) {
    // Scan on block (the industrial baseline: InnoDB-style detection on
    // every lock wait). A live system cannot observe quiescence the way
    // the discrete-event engine does, so the detector runs the moment a
    // waiter parks — that is detection's hot-path price — and then
    // re-arms every detect_interval_us for cycles that form later. The
    // scan latches every stripe, so ours drops first; the queue slot
    // keeps the claim while unlatched.
    lk.unlock();
    RunDetector();
    lk.lock();
  }
  for (;;) {
    if (node.granted) {
      // Granted — but a pending abort (wound delivered while parked, or
      // delivered in the grant-echo) wins: give the hold straight back.
      node.parked_on.store(kInvalidEntity, std::memory_order_seq_cst);
      if (AbortRequested(txn) || stop_.load(std::memory_order_acquire)) {
        Entry& entry = entries_[entity];
        node.granted = 0;
        if (entry.holder == txn) {
          entry.holder = -1;
        } else {
          RemoveSharer(entry, txn);  // A shared grant being returned.
        }
        std::vector<int> wounds;
        if (entry.holder < 0) GrantHead(entry, &wounds);
        const bool stopped = stop_.load(std::memory_order_acquire);
        if (!stopped && was_upgrading)
          upgrade_aborts_.fetch_add(1, std::memory_order_relaxed);
        if (!wounds.empty()) {
          lk.unlock();
          for (int b : wounds) WakeIfParked(b);
        }
        return stopped ? AcquireStatus::kStopped : AcquireStatus::kAborted;
      }
      grants_.fetch_add(1, std::memory_order_relaxed);
      if (was_upgrading) {
        upgrades_.fetch_add(1, std::memory_order_relaxed);
      } else if (node.mode == LockMode::kShared) {
        shared_grants_.fetch_add(1, std::memory_order_relaxed);
      }
      return AcquireStatus::kGranted;
    }
    if (stop_.load(std::memory_order_acquire) || AbortRequested(txn)) {
      Unlink(entries_[entity], txn);
      node.parked_on.store(kInvalidEntity, std::memory_order_seq_cst);
      if (stop_.load(std::memory_order_acquire)) return AcquireStatus::kStopped;
      if (was_upgrading)
        upgrade_aborts_.fetch_add(1, std::memory_order_relaxed);
      return AcquireStatus::kAborted;
    }
    if (timed) {
      if (node.cv.wait_for(lk, interval) == std::cv_status::timeout &&
          !node.granted && !AbortRequested(txn) &&
          !stop_.load(std::memory_order_acquire)) {
        // Still stuck after a full interval: scan for a cycle. The scan
        // latches every stripe, so ours must be dropped first; the queue
        // slot keeps our claim while unlatched.
        lk.unlock();
        RunDetector();
        lk.lock();
      }
    } else {
      node.cv.wait(lk);
    }
  }
}

void StripedLockManager::ReleaseLocked(int txn, Entry& entry,
                                       std::vector<int>* wounds) {
  if (entry.holder == txn) {
    entry.holder = -1;
    releases_.fetch_add(1, std::memory_order_relaxed);
    GrantHead(entry, wounds);
    return;
  }
  if (!RemoveSharer(entry, txn)) return;  // Stale release: tolerated.
  releases_.fetch_add(1, std::memory_order_relaxed);
  if (entry.holder < 0) GrantHead(entry, wounds);
}

void StripedLockManager::Release(int txn, EntityId entity) {
  std::vector<int> wounds;
  {
    Stripe& stripe = stripes_[StripeOf(entity)];
    std::lock_guard<std::mutex> lk(stripe.mu);
    ReleaseLocked(txn, entries_[entity], &wounds);
  }
  for (int b : wounds) WakeIfParked(b);
}

void StripedLockManager::ReleaseAll(int txn,
                                    const std::vector<EntityId>& held) {
  for (EntityId e : held) Release(txn, e);
}

void StripedLockManager::BeginAttempt(int txn) {
  abort_flag_[txn].store(0, std::memory_order_seq_cst);
}

void StripedLockManager::RequestAbort(int txn) {
  abort_flag_[txn].store(1, std::memory_order_seq_cst);
  WakeIfParked(txn);
}

void StripedLockManager::WakeIfParked(int txn) {
  // The abort-flag store and the parked_on stores in Acquire/Park are
  // all seq_cst, and the waiter re-checks the flag under the stripe
  // latch before every wait: either we observe its parking spot here and
  // notify under that latch, or the waiter's predicate check happens
  // after the flag store and sees the flag itself. The loop handles the
  // waiter migrating between the loads.
  for (;;) {
    EntityId e = nodes_[txn].parked_on.load(std::memory_order_seq_cst);
    if (e == kInvalidEntity) return;
    Stripe& stripe = stripes_[StripeOf(e)];
    std::lock_guard<std::mutex> lk(stripe.mu);
    if (nodes_[txn].parked_on.load(std::memory_order_seq_cst) == e) {
      nodes_[txn].cv.notify_all();
      return;
    }
  }
}

void StripedLockManager::RequestStop() {
  stop_.store(true, std::memory_order_seq_cst);
  // Notify every current waiter under its stripe latch: a waiter already
  // parked when we latch its entity's stripe gets the notify; one that
  // parks later re-checks stop_ under the latch first and never sleeps.
  for (size_t e = 0; e < entries_.size(); ++e) {
    Stripe& stripe = stripes_[StripeOf(static_cast<EntityId>(e))];
    std::lock_guard<std::mutex> lk(stripe.mu);
    for (int32_t w = entries_[e].head; w >= 0; w = nodes_[w].next) {
      nodes_[w].cv.notify_all();
    }
  }
}

void StripedLockManager::RunDetector() {
  std::lock_guard<std::mutex> detect_lk(detect_mu_);
  if (stop_.load(std::memory_order_acquire)) return;
  detector_runs_.fetch_add(1, std::memory_order_relaxed);
  // Latch all stripes in index order (the one place two stripe latches
  // are ever held together; ordered, so no latch cycle) for a consistent
  // wait-for snapshot.
  std::vector<std::unique_lock<std::mutex>> latches;
  latches.reserve(stripes_.size());
  for (Stripe& stripe : stripes_) latches.emplace_back(stripe.mu);

  const int n = static_cast<int>(timestamp_.size());
  Digraph wait_for(n);
  for (size_t e = 0; e < entries_.size(); ++e) {
    const Entry& entry = entries_[e];
    for (int32_t w = entry.head; w >= 0; w = nodes_[w].next) {
      if (entry.holder >= 0) {
        wait_for.AddArc(w, entry.holder);
      } else {
        // Blocked by shared holders: one edge per sharer. An upgrader is
        // itself a sharer — skip the self-edge, keep the edges to the
        // OTHER sharers (this is what makes an upgrade-deadlock between
        // two sharers a visible 2-cycle).
        for (int s : entry.sharers) {
          if (s != w) wait_for.AddArc(w, s);
        }
      }
    }
  }
  std::vector<NodeId> cycle = FindCycle(wait_for);
  if (cycle.empty()) return;
  // Abort the youngest (largest timestamp) transaction on the cycle.
  int victim = cycle.front();
  for (NodeId t : cycle) {
    if (timestamp_[t] > timestamp_[victim]) victim = t;
  }
  if (abort_flag_[victim].exchange(1, std::memory_order_seq_cst) == 0)
    policy_aborts_.fetch_add(1, std::memory_order_relaxed);
  nodes_[victim].cv.notify_all();  // Its stripe latch is held (all are).
}

int StripedLockManager::HolderOf(EntityId entity) const {
  const Stripe& stripe = stripes_[StripeOf(entity)];
  std::lock_guard<std::mutex> lk(stripe.mu);
  const Entry& entry = entries_[entity];
  if (entry.holder >= 0) return entry.holder;
  return entry.sharers.empty() ? -1 : entry.sharers.front();
}

bool StripedLockManager::IsHolding(int txn, EntityId entity) const {
  const Stripe& stripe = stripes_[StripeOf(entity)];
  std::lock_guard<std::mutex> lk(stripe.mu);
  const Entry& entry = entries_[entity];
  return entry.holder == txn || IsSharer(entry, txn);
}

int StripedLockManager::SharerCountOf(EntityId entity) const {
  const Stripe& stripe = stripes_[StripeOf(entity)];
  std::lock_guard<std::mutex> lk(stripe.mu);
  return static_cast<int>(entries_[entity].sharers.size());
}

size_t StripedLockManager::TotalWaiters() const {
  size_t count = 0;
  for (size_t s = 0; s < stripes_.size(); ++s) {
    std::lock_guard<std::mutex> lk(stripes_[s].mu);
    for (size_t e = 0; e < entries_.size(); ++e) {
      if (StripeOf(static_cast<EntityId>(e)) != s) continue;
      for (int32_t w = entries_[e].head; w >= 0; w = nodes_[w].next) ++count;
    }
  }
  return count;
}

std::vector<StripedLockManager::WaitEdge> StripedLockManager::WaitForEdges()
    const {
  std::vector<std::unique_lock<std::mutex>> latches;
  latches.reserve(stripes_.size());
  for (const Stripe& stripe : stripes_) latches.emplace_back(stripe.mu);
  std::vector<WaitEdge> edges;
  for (size_t e = 0; e < entries_.size(); ++e) {
    const Entry& entry = entries_[e];
    for (int32_t w = entry.head; w >= 0; w = nodes_[w].next) {
      if (entry.holder >= 0) {
        edges.push_back(WaitEdge{w, entry.holder, static_cast<EntityId>(e)});
      } else {
        for (int s : entry.sharers) {
          if (s != w) {
            edges.push_back(WaitEdge{w, s, static_cast<EntityId>(e)});
          }
        }
      }
    }
  }
  return edges;
}

}  // namespace wydb
