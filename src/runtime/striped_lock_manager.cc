#include "runtime/striped_lock_manager.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/macros.h"
#include "graph/algorithms.h"
#include "graph/digraph.h"

namespace wydb {
namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

StripedLockManager::StripedLockManager(int num_entities, int num_txns,
                                       const Options& options)
    : options_(options) {
  WYDB_DCHECK(num_entities >= 0);
  WYDB_DCHECK(num_txns > 0);
  size_t stripes = options.num_stripes > 0
                       ? RoundUpPow2(static_cast<size_t>(options.num_stripes))
                       : RoundUpPow2(std::max<size_t>(
                             8, 2 * std::thread::hardware_concurrency()));
  stripes = std::min(stripes, RoundUpPow2(std::max(1, num_entities)));
  stripe_shift_ = 64;
  for (size_t p = stripes; p > 1; p >>= 1) --stripe_shift_;
  stripes_ = std::vector<Stripe>(stripes);
  entries_.resize(num_entities);
  nodes_ = std::make_unique<WaitNode[]>(num_txns);
  abort_flag_ = std::make_unique<std::atomic<uint8_t>[]>(num_txns);
  for (int t = 0; t < num_txns; ++t)
    abort_flag_[t].store(0, std::memory_order_relaxed);
  timestamp_.assign(num_txns, 0);
}

void StripedLockManager::Enqueue(Entry& entry, int txn) {
  WaitNode& node = nodes_[txn];
  node.next = -1;
  node.granted = 0;
  if (entry.tail < 0) {
    entry.head = entry.tail = txn;
  } else {
    nodes_[entry.tail].next = txn;
    entry.tail = txn;
  }
}

void StripedLockManager::Unlink(Entry& entry, int txn) {
  int32_t prev = -1;
  for (int32_t cur = entry.head; cur >= 0; cur = nodes_[cur].next) {
    if (cur == txn) {
      if (prev < 0) {
        entry.head = nodes_[cur].next;
      } else {
        nodes_[prev].next = nodes_[cur].next;
      }
      if (entry.tail == txn) entry.tail = prev;
      nodes_[cur].next = -1;
      return;
    }
    prev = cur;
  }
}

void StripedLockManager::GrantHead(EntityId entity, Entry& entry) {
  WYDB_DCHECK(entry.holder < 0);
  if (entry.head < 0) return;
  int winner = entry.head;
  entry.head = nodes_[winner].next;
  if (entry.head < 0) entry.tail = -1;
  nodes_[winner].next = -1;
  entry.holder = winner;
  nodes_[winner].granted = 1;
  nodes_[winner].cv.notify_one();
  // Holdership changed: the timestamp policies must be re-applied for the
  // remaining waiters against the NEW holder (the flat LockManager's
  // grant-echo idiom). An older wound-wait waiter wounds the fresh holder;
  // a younger wait-die waiter dies now instead of waiting forever behind
  // an older one. Everything stays inside this one stripe: flagging the
  // just-granted holder is fine because it wakes, sees the flag together
  // with the grant, and unwinds through the normal kAborted path.
  if (options_.policy != ConflictPolicy::kWoundWait &&
      options_.policy != ConflictPolicy::kWaitDie) {
    return;
  }
  for (int32_t w = entry.head; w >= 0;) {
    int32_t next = nodes_[w].next;
    ConflictAction action =
        ResolveConflict(options_.policy, timestamp_[w], timestamp_[winner]);
    if (action == ConflictAction::kAbortHolder) {
      if (abort_flag_[winner].exchange(1, std::memory_order_seq_cst) == 0)
        policy_aborts_.fetch_add(1, std::memory_order_relaxed);
      nodes_[winner].cv.notify_all();
    } else if (action == ConflictAction::kAbortRequester) {
      if (abort_flag_[w].exchange(1, std::memory_order_seq_cst) == 0)
        policy_aborts_.fetch_add(1, std::memory_order_relaxed);
      nodes_[w].cv.notify_all();
    }
    w = next;
  }
}

StripedLockManager::AcquireStatus StripedLockManager::Acquire(int txn,
                                                              EntityId entity) {
  if (stop_.load(std::memory_order_acquire)) return AcquireStatus::kStopped;
  if (AbortRequested(txn)) return AcquireStatus::kAborted;
  Stripe& stripe = stripes_[StripeOf(entity)];
  std::unique_lock<std::mutex> lk(stripe.mu);
  Entry& entry = entries_[entity];
  if (entry.holder == txn) {
    // Re-grant of an already-held entity (the executor never does this,
    // but the table stays consistent if a caller retries).
    grants_.fetch_add(1, std::memory_order_relaxed);
    return AcquireStatus::kGranted;
  }
  if (entry.holder < 0 && entry.head < 0) {
    entry.holder = txn;
    grants_.fetch_add(1, std::memory_order_relaxed);
    return AcquireStatus::kGranted;
  }

  // Conflict. Timestamp policies resolve it before anyone parks; kBlock
  // and kDetect go straight to the queue.
  if (options_.policy == ConflictPolicy::kWoundWait ||
      options_.policy == ConflictPolicy::kWaitDie) {
    int holder = entry.holder;
    // With a free entity but a non-empty queue (transient, between a
    // release and the winner waking) FIFO order still applies: resolve
    // against the queue head, the txn about to become holder.
    if (holder < 0) holder = entry.head;
    ConflictAction action =
        ResolveConflict(options_.policy, timestamp_[txn], timestamp_[holder]);
    if (action == ConflictAction::kAbortRequester) {
      policy_aborts_.fetch_add(1, std::memory_order_relaxed);
      return AcquireStatus::kAborted;
    }
    if (action == ConflictAction::kAbortHolder) {
      // Wound the holder, then wait our turn. The wound is delivered
      // AFTER this stripe's latch is dropped: the holder may be parked on
      // a different stripe, and waking it there while holding this latch
      // would be a latch-order inversion. Enqueue first so the slot
      // cannot be lost in the window.
      Enqueue(entry, txn);
      nodes_[txn].parked_on.store(entity, std::memory_order_seq_cst);
      lk.unlock();
      if (abort_flag_[holder].exchange(1, std::memory_order_seq_cst) == 0)
        policy_aborts_.fetch_add(1, std::memory_order_relaxed);
      WakeIfParked(holder);
      lk.lock();
      return Park(txn, entity, lk);
    }
    // kWait: fall through to the queue.
  }

  Enqueue(entry, txn);
  nodes_[txn].parked_on.store(entity, std::memory_order_seq_cst);
  return Park(txn, entity, lk);
}

StripedLockManager::AcquireStatus StripedLockManager::Park(
    int txn, EntityId entity, std::unique_lock<std::mutex>& lk) {
  WaitNode& node = nodes_[txn];
  const bool timed = options_.policy == ConflictPolicy::kDetect;
  const auto interval =
      std::chrono::microseconds(std::max<int64_t>(1, options_.detect_interval_us));
  if (timed && !node.granted && !AbortRequested(txn) &&
      !stop_.load(std::memory_order_acquire)) {
    // Scan on block (the industrial baseline: InnoDB-style detection on
    // every lock wait). A live system cannot observe quiescence the way
    // the discrete-event engine does, so the detector runs the moment a
    // waiter parks — that is detection's hot-path price — and then
    // re-arms every detect_interval_us for cycles that form later. The
    // scan latches every stripe, so ours drops first; the queue slot
    // keeps the claim while unlatched.
    lk.unlock();
    RunDetector();
    lk.lock();
  }
  for (;;) {
    if (node.granted) {
      // Granted — but a pending abort (wound delivered while parked, or
      // delivered in the grant-echo) wins: give the entity straight back.
      node.parked_on.store(kInvalidEntity, std::memory_order_seq_cst);
      if (AbortRequested(txn) || stop_.load(std::memory_order_acquire)) {
        Entry& entry = entries_[entity];
        node.granted = 0;
        WYDB_DCHECK(entry.holder == txn);
        entry.holder = -1;
        GrantHead(entity, entry);
        return stop_.load(std::memory_order_acquire)
                   ? AcquireStatus::kStopped
                   : AcquireStatus::kAborted;
      }
      grants_.fetch_add(1, std::memory_order_relaxed);
      return AcquireStatus::kGranted;
    }
    if (stop_.load(std::memory_order_acquire) || AbortRequested(txn)) {
      Unlink(entries_[entity], txn);
      node.parked_on.store(kInvalidEntity, std::memory_order_seq_cst);
      return stop_.load(std::memory_order_acquire) ? AcquireStatus::kStopped
                                                   : AcquireStatus::kAborted;
    }
    if (timed) {
      if (node.cv.wait_for(lk, interval) == std::cv_status::timeout &&
          !node.granted && !AbortRequested(txn) &&
          !stop_.load(std::memory_order_acquire)) {
        // Still stuck after a full interval: scan for a cycle. The scan
        // latches every stripe, so ours must be dropped first; the queue
        // slot keeps our claim while unlatched.
        lk.unlock();
        RunDetector();
        lk.lock();
      }
    } else {
      node.cv.wait(lk);
    }
  }
}

void StripedLockManager::ReleaseLocked(int txn, EntityId entity, Entry& entry) {
  if (entry.holder != txn) return;  // Stale release: tolerated, a no-op.
  entry.holder = -1;
  releases_.fetch_add(1, std::memory_order_relaxed);
  GrantHead(entity, entry);
}

void StripedLockManager::Release(int txn, EntityId entity) {
  Stripe& stripe = stripes_[StripeOf(entity)];
  std::lock_guard<std::mutex> lk(stripe.mu);
  ReleaseLocked(txn, entity, entries_[entity]);
}

void StripedLockManager::ReleaseAll(int txn,
                                    const std::vector<EntityId>& held) {
  for (EntityId e : held) Release(txn, e);
}

void StripedLockManager::BeginAttempt(int txn) {
  abort_flag_[txn].store(0, std::memory_order_seq_cst);
}

void StripedLockManager::RequestAbort(int txn) {
  abort_flag_[txn].store(1, std::memory_order_seq_cst);
  WakeIfParked(txn);
}

void StripedLockManager::WakeIfParked(int txn) {
  // The abort-flag store and the parked_on stores in Acquire/Park are
  // all seq_cst, and the waiter re-checks the flag under the stripe
  // latch before every wait: either we observe its parking spot here and
  // notify under that latch, or the waiter's predicate check happens
  // after the flag store and sees the flag itself. The loop handles the
  // waiter migrating between the loads.
  for (;;) {
    EntityId e = nodes_[txn].parked_on.load(std::memory_order_seq_cst);
    if (e == kInvalidEntity) return;
    Stripe& stripe = stripes_[StripeOf(e)];
    std::lock_guard<std::mutex> lk(stripe.mu);
    if (nodes_[txn].parked_on.load(std::memory_order_seq_cst) == e) {
      nodes_[txn].cv.notify_all();
      return;
    }
  }
}

void StripedLockManager::RequestStop() {
  stop_.store(true, std::memory_order_seq_cst);
  // Notify every current waiter under its stripe latch: a waiter already
  // parked when we latch its entity's stripe gets the notify; one that
  // parks later re-checks stop_ under the latch first and never sleeps.
  for (size_t e = 0; e < entries_.size(); ++e) {
    Stripe& stripe = stripes_[StripeOf(static_cast<EntityId>(e))];
    std::lock_guard<std::mutex> lk(stripe.mu);
    for (int32_t w = entries_[e].head; w >= 0; w = nodes_[w].next) {
      nodes_[w].cv.notify_all();
    }
  }
}

void StripedLockManager::RunDetector() {
  std::lock_guard<std::mutex> detect_lk(detect_mu_);
  if (stop_.load(std::memory_order_acquire)) return;
  detector_runs_.fetch_add(1, std::memory_order_relaxed);
  // Latch all stripes in index order (the one place two stripe latches
  // are ever held together; ordered, so no latch cycle) for a consistent
  // wait-for snapshot.
  std::vector<std::unique_lock<std::mutex>> latches;
  latches.reserve(stripes_.size());
  for (Stripe& stripe : stripes_) latches.emplace_back(stripe.mu);

  const int n = static_cast<int>(timestamp_.size());
  Digraph wait_for(n);
  for (size_t e = 0; e < entries_.size(); ++e) {
    const Entry& entry = entries_[e];
    if (entry.holder < 0) continue;
    for (int32_t w = entry.head; w >= 0; w = nodes_[w].next) {
      wait_for.AddArc(w, entry.holder);
    }
  }
  std::vector<NodeId> cycle = FindCycle(wait_for);
  if (cycle.empty()) return;
  // Abort the youngest (largest timestamp) transaction on the cycle.
  int victim = cycle.front();
  for (NodeId t : cycle) {
    if (timestamp_[t] > timestamp_[victim]) victim = t;
  }
  if (abort_flag_[victim].exchange(1, std::memory_order_seq_cst) == 0)
    policy_aborts_.fetch_add(1, std::memory_order_relaxed);
  nodes_[victim].cv.notify_all();  // Its stripe latch is held (all are).
}

int StripedLockManager::HolderOf(EntityId entity) const {
  const Stripe& stripe = stripes_[StripeOf(entity)];
  std::lock_guard<std::mutex> lk(stripe.mu);
  return entries_[entity].holder;
}

size_t StripedLockManager::TotalWaiters() const {
  size_t count = 0;
  for (size_t s = 0; s < stripes_.size(); ++s) {
    std::lock_guard<std::mutex> lk(stripes_[s].mu);
    for (size_t e = 0; e < entries_.size(); ++e) {
      if (StripeOf(static_cast<EntityId>(e)) != s) continue;
      for (int32_t w = entries_[e].head; w >= 0; w = nodes_[w].next) ++count;
    }
  }
  return count;
}

std::vector<StripedLockManager::WaitEdge> StripedLockManager::WaitForEdges()
    const {
  std::vector<std::unique_lock<std::mutex>> latches;
  latches.reserve(stripes_.size());
  for (const Stripe& stripe : stripes_) latches.emplace_back(stripe.mu);
  std::vector<WaitEdge> edges;
  for (size_t e = 0; e < entries_.size(); ++e) {
    const Entry& entry = entries_[e];
    if (entry.holder < 0) continue;
    for (int32_t w = entry.head; w >= 0; w = nodes_[w].next) {
      edges.push_back(WaitEdge{w, entry.holder, static_cast<EntityId>(e)});
    }
  }
  return edges;
}

}  // namespace wydb
