// End-to-end distributed execution of a TransactionSystem on the simulated
// substrate: per-site lock managers, message-passing between each
// transaction's home site and the entities' sites, and a pluggable
// deadlock-handling policy.
//
// This is the empirical counterpart of the paper's static analysis: a
// system certified safe+DF by Theorem 3/4 never deadlocks here under the
// pure blocking policy, while uncertified systems can be driven into
// deadlock by adverse message timing (seeds).
#ifndef WYDB_RUNTIME_SIMULATION_H_
#define WYDB_RUNTIME_SIMULATION_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/schedule.h"
#include "core/system.h"
#include "runtime/scheduler.h"
#include "runtime/sim/network.h"

namespace wydb {

struct SimOptions {
  ConflictPolicy policy = ConflictPolicy::kBlock;
  uint64_t seed = 1;
  LatencyModel latency;
  /// Physical copy placement for the replicated engine (DESIGN.md §6).
  /// Null means single-copy at each entity's catalog site (the classic
  /// engine, bit-identical to pre-replication behaviour). The placement
  /// is borrowed: it must outlive every run launched with these options.
  const CopyPlacement* placement = nullptr;
  /// Base delay before an aborted transaction restarts (plus jitter).
  SimTime restart_backoff = 200;
  /// Transactions start at a random offset in [0, start_spread].
  SimTime start_spread = 30;
  /// Event budget (0 = unbounded).
  uint64_t max_events = 2'000'000;
  /// A transaction that restarts more than this many times in one round
  /// gives up.
  int max_restarts = 10'000;
};

/// Commit-latency percentiles over the committed rounds of one run, in
/// simulated time units.
struct LatencyStats {
  SimTime p50 = 0;
  SimTime p95 = 0;
  SimTime p99 = 0;
  SimTime max = 0;
  double mean = 0.0;
  uint64_t samples = 0;
};

struct SimResult {
  bool all_committed = false;
  /// Ended quiescent with blocked transactions (circular wait) under a
  /// blocking policy.
  bool deadlocked = false;
  bool budget_exhausted = false;
  bool gave_up = false;  ///< Some transaction exceeded max_restarts.

  uint64_t aborts = 0;
  uint64_t detector_runs = 0;
  uint64_t messages = 0;
  uint64_t events = 0;
  /// Shared-mode lock grants across all sites (0 for X-only workloads).
  uint64_t shared_grants = 0;
  /// Completed S->X upgrades across all sites.
  uint64_t upgrades = 0;
  /// Queued upgrades abandoned by aborts.
  uint64_t upgrade_aborts = 0;
  SimTime makespan = 0;

  /// Committed rounds. One-shot: the number of committed transactions.
  /// Closed-loop: total rounds committed across the run.
  uint64_t commits = 0;
  /// Commits per one million simulated time units ("per simulated second"
  /// with the abstract-microsecond clock).
  double throughput = 0.0;
  /// aborts / (aborts + commits); 0 when nothing ran.
  double abort_rate = 0.0;
  /// Per-round commit latency (round arrival -> commit).
  LatencyStats latency;

  /// Transactions still blocked at the end (deadlock participants).
  std::vector<int> blocked_txns;
  /// Site-linearized history of the committed attempts. One-shot mode
  /// only; closed-loop runs leave it empty.
  Schedule committed_history;
  /// Acyclicity of D(committed_history); only meaningful (and only
  /// computed) when all_committed in one-shot mode.
  bool history_serializable = true;
};

/// Runs one seeded simulation to completion, deadlock, or budget.
Result<SimResult> RunSimulation(const TransactionSystem& sys,
                                const SimOptions& options);

struct AggregateResult {
  int runs = 0;
  int committed_runs = 0;
  int deadlocked_runs = 0;
  int budget_exhausted_runs = 0;
  int gave_up_runs = 0;
  uint64_t total_aborts = 0;
  uint64_t total_messages = 0;
  /// Lock-mode traffic totals across the seeded runs (all 0 for X-only
  /// workloads; see the SimResult fields of the same names).
  uint64_t total_shared_grants = 0;
  uint64_t total_upgrades = 0;
  uint64_t total_upgrade_aborts = 0;
  double avg_makespan = 0.0;
  bool all_histories_serializable = true;
};

/// Runs `runs` simulations with seeds base.seed, base.seed+1, ...
///
/// Independent seeds run concurrently on a thread pool (`threads` = 0
/// picks the hardware concurrency; 1 forces the serial loop). Each seed's
/// SimResult is bit-identical regardless of thread count, and results are
/// reduced in seed order, so the aggregate is too.
Result<AggregateResult> RunMany(const TransactionSystem& sys,
                                const SimOptions& base, int runs,
                                int threads = 0);

}  // namespace wydb

#endif  // WYDB_RUNTIME_SIMULATION_H_
