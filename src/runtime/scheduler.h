// Deadlock-handling policies for the runtime, including the classic
// timestamp baselines of Rosenkrantz, Stearns & Lewis [RSL] that the
// paper's static approach is an alternative to.
#ifndef WYDB_RUNTIME_SCHEDULER_H_
#define WYDB_RUNTIME_SCHEDULER_H_

#include <cstdint>
#include <string>

namespace wydb {

/// What the runtime does when a lock request conflicts.
enum class ConflictPolicy {
  /// Pure blocking: wait in FIFO order. Deadlocks can happen; a system
  /// statically certified safe+DF by the paper's algorithms never
  /// deadlocks under this policy.
  kBlock,
  /// Wound-wait [RSL]: an older requester wounds (aborts) a younger
  /// holder; a younger requester waits. Deadlock-free, restarts instead.
  kWoundWait,
  /// Wait-die [RSL]: an older requester waits; a younger requester dies
  /// (aborts itself). Deadlock-free, restarts instead.
  kWaitDie,
  /// Block, but run a global wait-for-graph cycle detector whenever the
  /// system quiesces, aborting the youngest transaction on a cycle.
  kDetect,
};

const char* ConflictPolicyName(ConflictPolicy policy);

/// Inverse of ConflictPolicyName ("block", "wound-wait", "wait-die",
/// "detect"); false if the name is unknown.
bool ParseConflictPolicy(const std::string& name, ConflictPolicy* out);

/// Resolution of a single conflict under a timestamp policy.
enum class ConflictAction {
  kWait,
  kAbortRequester,
  kAbortHolder,
};

/// Applies the policy given the transactions' (immutable, assigned-once)
/// timestamps. Smaller timestamp = older transaction.
ConflictAction ResolveConflict(ConflictPolicy policy, uint64_t ts_requester,
                               uint64_t ts_holder);

}  // namespace wydb

#endif  // WYDB_RUNTIME_SCHEDULER_H_
