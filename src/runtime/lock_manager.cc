#include "runtime/lock_manager.h"

namespace wydb {

LockManager::LockManager(SiteId site, int num_entities,
                         std::vector<LockEvent>* out)
    : site_(site),
      table_(num_entities),
      is_touched_(num_entities, 0),
      out_(out) {}

int32_t LockManager::AllocWaiter(int txn, int32_t node, int32_t attempt) {
  int32_t idx;
  if (free_head_ != -1) {
    idx = free_head_;
    free_head_ = pool_[idx].next;
  } else {
    idx = static_cast<int32_t>(pool_.size());
    pool_.emplace_back();
  }
  pool_[idx] = Waiter{txn, node, attempt, -1};
  return idx;
}

void LockManager::FreeWaiter(int32_t idx) {
  pool_[idx].next = free_head_;
  free_head_ = idx;
}

size_t LockManager::free_waiter_count() const {
  size_t count = 0;
  for (int32_t idx = free_head_; idx != -1; idx = pool_[idx].next) ++count;
  return count;
}

void LockManager::EmitGrant(EntityId entity, const Waiter& w) {
  ++grants_;
  out_->push_back(LockEvent{LockEvent::Kind::kGrant, site_, w.txn, entity,
                            w.node, w.attempt, -1});
}

void LockManager::EmitBlock(EntityId entity, int32_t txn, int32_t holder) {
  out_->push_back(
      LockEvent{LockEvent::Kind::kBlock, site_, txn, entity, -1, 0, holder});
}

void LockManager::Request(int txn, EntityId entity, int32_t node,
                          int32_t attempt) {
  if (!is_touched_[entity]) {
    is_touched_[entity] = 1;
    touched_.push_back(entity);
  }
  LockState& state = table_[entity];
  if (state.holder == -1 && state.head == -1) {
    state.holder = txn;
    EmitGrant(entity, Waiter{txn, node, attempt, -1});
    return;
  }
  int32_t idx = AllocWaiter(txn, node, attempt);
  if (state.tail == -1) {
    state.head = state.tail = idx;
  } else {
    pool_[state.tail].next = idx;
    state.tail = idx;
  }
  if (state.holder != -1) EmitBlock(entity, txn, state.holder);
}

void LockManager::Release(int txn, EntityId entity) {
  LockState& state = table_[entity];
  if (state.holder != txn) return;
  state.holder = -1;
  GrantHead(entity);
}

void LockManager::GrantHead(EntityId entity) {
  LockState& state = table_[entity];
  if (state.head == -1) return;
  int32_t idx = state.head;
  state.head = pool_[idx].next;
  if (state.head == -1) state.tail = -1;
  state.holder = pool_[idx].txn;
  EmitGrant(entity, pool_[idx]);
  FreeWaiter(idx);
  // Holdership changed: re-emit block records for the remaining waiters so
  // the caller re-applies the conflict policy against the NEW holder.
  // Without this, wound-wait admits wait cycles: an old transaction queued
  // behind a young one inherits an old->young wait edge when the young
  // waiter is granted first.
  for (int32_t w = state.head; w != -1; w = pool_[w].next) {
    EmitBlock(entity, pool_[w].txn, state.holder);
  }
}

void LockManager::Abort(int txn) {
  for (EntityId entity : touched_) {
    LockState& state = table_[entity];
    int32_t prev = -1;
    for (int32_t w = state.head; w != -1;) {
      int32_t next = pool_[w].next;
      if (pool_[w].txn == txn) {
        if (prev == -1) {
          state.head = next;
        } else {
          pool_[prev].next = next;
        }
        if (state.tail == w) state.tail = prev;
        FreeWaiter(w);
      } else {
        prev = w;
      }
      w = next;
    }
    if (state.holder == txn) {
      state.holder = -1;
      GrantHead(entity);
    }
  }
}

bool LockManager::IsWaiting(int txn) const {
  for (EntityId entity : touched_) {
    for (int32_t w = table_[entity].head; w != -1; w = pool_[w].next) {
      if (pool_[w].txn == txn) return true;
    }
  }
  return false;
}

bool LockManager::IsWaitingOn(int txn, EntityId entity) const {
  for (int32_t w = table_[entity].head; w != -1; w = pool_[w].next) {
    if (pool_[w].txn == txn) return true;
  }
  return false;
}

std::vector<LockManager::WaitEdge> LockManager::WaitForEdges() const {
  std::vector<WaitEdge> edges;
  AppendWaitForEdges(&edges);
  return edges;
}

void LockManager::AppendWaitForEdges(std::vector<WaitEdge>* out) const {
  for (EntityId entity : touched_) {
    const LockState& state = table_[entity];
    if (state.holder == -1) continue;
    for (int32_t w = state.head; w != -1; w = pool_[w].next) {
      out->push_back(WaitEdge{pool_[w].txn, state.holder, entity});
    }
  }
}

}  // namespace wydb
