#include "runtime/lock_manager.h"

namespace wydb {

void LockManager::Request(int txn, EntityId entity,
                          std::function<void()> on_grant) {
  LockState& state = table_[entity];
  if (state.holder == -1 && state.queue.empty()) {
    state.holder = txn;
    ++grants_;
    on_grant();
    return;
  }
  state.queue.push_back(Waiter{txn, std::move(on_grant)});
  if (on_block_ && state.holder != -1) {
    on_block_(txn, state.holder, entity);
  }
}

void LockManager::Release(int txn, EntityId entity) {
  auto it = table_.find(entity);
  if (it == table_.end() || it->second.holder != txn) return;
  it->second.holder = -1;
  Grant(entity, &it->second);
}

void LockManager::Grant(EntityId entity, LockState* state) {
  while (state->holder == -1 && !state->queue.empty()) {
    Waiter next = std::move(state->queue.front());
    state->queue.pop_front();
    state->holder = next.txn;
    ++grants_;
    next.on_grant();
    if (!on_block_) return;
    // Holdership changed: re-apply the conflict policy for the remaining
    // waiters against the NEW holder. Without this, wound-wait admits
    // wait cycles: an old transaction queued behind a young one inherits
    // an old->young wait edge when the young waiter is granted first.
    const int holder = state->holder;
    std::vector<int> waiters;
    waiters.reserve(state->queue.size());
    for (const Waiter& w : state->queue) waiters.push_back(w.txn);
    for (int w : waiters) {
      if (state->holder != holder) break;  // Holder wounded meanwhile.
      on_block_(w, holder, entity);
    }
    if (state->holder != -1) return;
    // The new holder was wounded and released; grant the next waiter.
  }
}

void LockManager::Abort(int txn) {
  for (auto& [entity, state] : table_) {
    for (auto it = state.queue.begin(); it != state.queue.end();) {
      it = it->txn == txn ? state.queue.erase(it) : std::next(it);
    }
    if (state.holder == txn) {
      state.holder = -1;
      Grant(entity, &state);
    }
  }
}

int LockManager::HolderOf(EntityId entity) const {
  auto it = table_.find(entity);
  return it == table_.end() ? -1 : it->second.holder;
}

bool LockManager::IsWaiting(int txn) const {
  for (const auto& [entity, state] : table_) {
    for (const Waiter& w : state.queue) {
      if (w.txn == txn) return true;
    }
  }
  return false;
}

std::vector<LockManager::WaitEdge> LockManager::WaitForEdges() const {
  std::vector<WaitEdge> edges;
  for (const auto& [entity, state] : table_) {
    if (state.holder == -1) continue;
    for (const Waiter& w : state.queue) {
      edges.push_back(WaitEdge{w.txn, state.holder, entity});
    }
  }
  return edges;
}

}  // namespace wydb
