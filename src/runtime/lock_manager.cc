#include "runtime/lock_manager.h"

namespace wydb {

LockManager::LockManager(SiteId site, int num_entities,
                         std::vector<LockEvent>* out)
    : site_(site),
      table_(num_entities),
      is_touched_(num_entities, 0),
      out_(out) {}

void LockManager::Touch(EntityId entity) {
  if (!is_touched_[entity]) {
    is_touched_[entity] = 1;
    touched_.push_back(entity);
  }
}

int32_t LockManager::AllocWaiter(int txn, int32_t node, int32_t attempt,
                                 LockMode mode, bool upgrade) {
  int32_t idx;
  if (free_head_ != -1) {
    idx = free_head_;
    free_head_ = pool_[idx].next;
  } else {
    idx = static_cast<int32_t>(pool_.size());
    pool_.emplace_back();
  }
  pool_[idx] = Waiter{txn, node, attempt, -1, mode, upgrade};
  return idx;
}

void LockManager::FreeWaiter(int32_t idx) {
  pool_[idx].next = free_head_;
  free_head_ = idx;
}

size_t LockManager::free_waiter_count() const {
  size_t count = 0;
  for (int32_t idx = free_head_; idx != -1; idx = pool_[idx].next) ++count;
  return count;
}

void LockManager::AddSharer(LockState& state, int txn) {
  int32_t idx = AllocWaiter(txn, -1, 0, LockMode::kShared, false);
  pool_[idx].next = state.sharer_head;
  state.sharer_head = idx;
}

bool LockManager::RemoveSharer(LockState& state, int txn) {
  int32_t prev = -1;
  for (int32_t s = state.sharer_head; s != -1; s = pool_[s].next) {
    if (pool_[s].txn == txn) {
      if (prev == -1) {
        state.sharer_head = pool_[s].next;
      } else {
        pool_[prev].next = pool_[s].next;
      }
      FreeWaiter(s);
      return true;
    }
    prev = s;
  }
  return false;
}

bool LockManager::IsSharer(const LockState& state, int txn) const {
  for (int32_t s = state.sharer_head; s != -1; s = pool_[s].next) {
    if (pool_[s].txn == txn) return true;
  }
  return false;
}

bool LockManager::SoleSharerIs(const LockState& state, int txn) const {
  return state.sharer_head != -1 && pool_[state.sharer_head].txn == txn &&
         pool_[state.sharer_head].next == -1;
}

void LockManager::EmitGrant(EntityId entity, const Waiter& w) {
  ++grants_;
  out_->push_back(LockEvent{LockEvent::Kind::kGrant, site_, w.txn, entity,
                            w.node, w.attempt, -1});
}

void LockManager::EmitBlock(EntityId entity, int32_t txn, int32_t holder) {
  out_->push_back(
      LockEvent{LockEvent::Kind::kBlock, site_, txn, entity, -1, 0, holder});
}

void LockManager::EmitBlocksAgainstHolders(EntityId entity, int32_t txn) {
  const LockState& state = table_[entity];
  if (state.holder != -1) {
    if (state.holder != txn) EmitBlock(entity, txn, state.holder);
    return;
  }
  for (int32_t s = state.sharer_head; s != -1; s = pool_[s].next) {
    if (pool_[s].txn != txn) EmitBlock(entity, txn, pool_[s].txn);
  }
}

void LockManager::Request(int txn, EntityId entity, LockMode mode,
                          int32_t node, int32_t attempt) {
  Touch(entity);
  LockState& state = table_[entity];

  if (mode == LockMode::kExclusive && IsSharer(state, txn)) {
    // S->X upgrade. Immediate if txn is the only sharer; otherwise it
    // keeps its shared hold and queues at the HEAD: granting any later
    // waiter first could never let the upgrade through, and two queued
    // upgrades on one entity are a genuine deadlock the caller resolves.
    if (state.holder == -1 && SoleSharerIs(state, txn)) {
      RemoveSharer(state, txn);
      state.holder = txn;
      ++upgrades_;
      EmitGrant(entity, Waiter{txn, node, attempt, -1, mode, false});
      return;
    }
    int32_t idx = AllocWaiter(txn, node, attempt, mode, /*upgrade=*/true);
    pool_[idx].next = state.head;
    state.head = idx;
    if (state.tail == -1) state.tail = idx;
    EmitBlocksAgainstHolders(entity, txn);
    return;
  }

  // FIFO fairness: even a compatible shared request queues behind queued
  // waiters, so a stream of readers cannot starve a writer.
  const bool grantable =
      state.head == -1 && state.holder == -1 &&
      (mode == LockMode::kShared || state.sharer_head == -1);
  if (grantable) {
    if (mode == LockMode::kShared) {
      AddSharer(state, txn);
      ++shared_grants_;
    } else {
      state.holder = txn;
    }
    EmitGrant(entity, Waiter{txn, node, attempt, -1, mode, false});
    return;
  }
  int32_t idx = AllocWaiter(txn, node, attempt, mode, /*upgrade=*/false);
  if (state.tail == -1) {
    state.head = state.tail = idx;
  } else {
    pool_[state.tail].next = idx;
    state.tail = idx;
  }
  EmitBlocksAgainstHolders(entity, txn);
}

void LockManager::Release(int txn, EntityId entity) {
  LockState& state = table_[entity];
  if (state.holder == txn) {
    state.holder = -1;
    GrantHead(entity);
    return;
  }
  if (RemoveSharer(state, txn)) GrantHead(entity);
}

void LockManager::GrantHead(EntityId entity) {
  LockState& state = table_[entity];
  bool granted_any = false;
  while (state.head != -1) {
    const int32_t idx = state.head;
    const Waiter& w = pool_[idx];
    if (w.upgrade) {
      // Promotable only once every other sharer is gone.
      if (state.holder != -1 || !SoleSharerIs(state, w.txn)) break;
      state.head = w.next;
      if (state.head == -1) state.tail = -1;
      RemoveSharer(state, pool_[idx].txn);
      state.holder = pool_[idx].txn;
      ++upgrades_;
      EmitGrant(entity, pool_[idx]);
      FreeWaiter(idx);
      granted_any = true;
      break;  // Exclusive now: nothing further is grantable.
    }
    if (w.mode == LockMode::kExclusive) {
      if (state.holder != -1 || state.sharer_head != -1) break;
      state.head = w.next;
      if (state.head == -1) state.tail = -1;
      state.holder = pool_[idx].txn;
      EmitGrant(entity, pool_[idx]);
      FreeWaiter(idx);
      granted_any = true;
      break;
    }
    // Shared: compatible with existing sharers; batch the consecutive
    // shared prefix of the queue in one go.
    if (state.holder != -1) break;
    state.head = w.next;
    if (state.head == -1) state.tail = -1;
    AddSharer(state, pool_[idx].txn);
    ++shared_grants_;
    EmitGrant(entity, pool_[idx]);
    FreeWaiter(idx);
    granted_any = true;
  }
  if (!granted_any) return;
  // Holdership changed: re-emit block records for the remaining waiters so
  // the caller re-applies the conflict policy against the NEW holders.
  // Without this, wound-wait admits wait cycles: an old transaction queued
  // behind a young one inherits an old->young wait edge when the young
  // waiter is granted first.
  for (int32_t w = state.head; w != -1; w = pool_[w].next) {
    EmitBlocksAgainstHolders(entity, pool_[w].txn);
  }
}

void LockManager::Abort(int txn) {
  for (EntityId entity : touched_) {
    LockState& state = table_[entity];
    bool changed = false;
    int32_t prev = -1;
    for (int32_t w = state.head; w != -1;) {
      int32_t next = pool_[w].next;
      if (pool_[w].txn == txn) {
        if (pool_[w].upgrade) ++upgrade_aborts_;
        if (prev == -1) {
          state.head = next;
        } else {
          pool_[prev].next = next;
        }
        if (state.tail == w) state.tail = prev;
        FreeWaiter(w);
        changed = true;
      } else {
        prev = w;
      }
      w = next;
    }
    if (RemoveSharer(state, txn)) changed = true;
    if (state.holder == txn) {
      state.holder = -1;
      changed = true;
    }
    // Any removal can unblock the head (e.g. dropping a queued X exposes
    // a grantable shared batch, or dropping a sharer promotes an
    // upgrade). GrantHead is a no-op when nothing is grantable.
    if (changed) GrantHead(entity);
  }
}

bool LockManager::IsHolding(int txn, EntityId entity) const {
  const LockState& state = table_[entity];
  return state.holder == txn || IsSharer(state, txn);
}

int LockManager::SharerCountOf(EntityId entity) const {
  int count = 0;
  for (int32_t s = table_[entity].sharer_head; s != -1; s = pool_[s].next) {
    ++count;
  }
  return count;
}

bool LockManager::IsWaiting(int txn) const {
  for (EntityId entity : touched_) {
    for (int32_t w = table_[entity].head; w != -1; w = pool_[w].next) {
      if (pool_[w].txn == txn) return true;
    }
  }
  return false;
}

bool LockManager::IsWaitingOn(int txn, EntityId entity) const {
  for (int32_t w = table_[entity].head; w != -1; w = pool_[w].next) {
    if (pool_[w].txn == txn) return true;
  }
  return false;
}

std::vector<LockManager::WaitEdge> LockManager::WaitForEdges() const {
  std::vector<WaitEdge> edges;
  AppendWaitForEdges(&edges);
  return edges;
}

void LockManager::AppendWaitForEdges(std::vector<WaitEdge>* out) const {
  for (EntityId entity : touched_) {
    const LockState& state = table_[entity];
    for (int32_t w = state.head; w != -1; w = pool_[w].next) {
      if (state.holder != -1) {
        if (state.holder != pool_[w].txn) {
          out->push_back(WaitEdge{pool_[w].txn, state.holder, entity});
        }
        continue;
      }
      for (int32_t s = state.sharer_head; s != -1; s = pool_[s].next) {
        if (pool_[s].txn != pool_[w].txn) {
          out->push_back(WaitEdge{pool_[w].txn, pool_[s].txn, entity});
        }
      }
    }
  }
}

}  // namespace wydb
