// Per-transaction execution state: walks the transaction DAG, issuing each
// step once all its predecessors have completed, with per-site sequencing
// inherited from the partial order.
#ifndef WYDB_RUNTIME_TXN_RUNTIME_H_
#define WYDB_RUNTIME_TXN_RUNTIME_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/transaction.h"

namespace wydb {

/// \brief Tracks which steps of one transaction attempt have been issued
/// and completed, and computes the next issuable steps.
///
/// The executor is passive: the Simulation drives it, sending the issued
/// steps to lock managers over the network and reporting completions back.
class TxnExecutor {
 public:
  TxnExecutor(int index, const Transaction* txn)
      : index_(index), txn_(txn) { Reset(); }

  int index() const { return index_; }
  const Transaction& txn() const { return *txn_; }

  /// Current attempt number (starts at 1; bumped by Restart).
  int attempt() const { return attempt_; }

  bool started() const { return started_; }
  void MarkStarted() { started_ = true; }

  bool IsDone() const { return completed_count_ == txn_->num_steps(); }

  /// Steps whose predecessors are all complete and which have not been
  /// issued yet in this attempt.
  std::vector<NodeId> ReadySteps() const;

  void MarkIssued(NodeId v) { issued_[v] = true; }
  void MarkCompleted(NodeId v);

  bool IsIssued(NodeId v) const { return issued_[v]; }
  bool IsCompleted(NodeId v) const { return completed_[v]; }

  /// Entities whose Lock completed but whose Unlock has not (locks held by
  /// the current attempt, assuming grants are recorded as completions).
  std::vector<EntityId> HeldEntities() const;

  /// Abort bookkeeping: clears all progress and bumps the attempt counter.
  void Restart();

  /// Completion order of this attempt's steps (for history extraction).
  const std::vector<NodeId>& completion_order() const {
    return completion_order_;
  }

 private:
  void Reset();

  int index_;
  const Transaction* txn_;
  int attempt_ = 0;
  bool started_ = false;
  std::vector<bool> issued_;
  std::vector<bool> completed_;
  std::vector<NodeId> completion_order_;
  int completed_count_ = 0;
};

}  // namespace wydb

#endif  // WYDB_RUNTIME_TXN_RUNTIME_H_
