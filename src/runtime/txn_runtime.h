// Per-transaction execution state: walks the transaction DAG, issuing each
// step once all its predecessors have completed, with per-site sequencing
// inherited from the partial order.
#ifndef WYDB_RUNTIME_TXN_RUNTIME_H_
#define WYDB_RUNTIME_TXN_RUNTIME_H_

#include <cstdint>
#include <vector>

#include "core/transaction.h"

namespace wydb {

/// Lifecycle of one transaction in the engine. The continuation logic the
/// engine used to capture in nested lambdas is now this inspectable state
/// plus the per-step issued/completed flags below.
enum class TxnState : uint8_t {
  kNotStarted = 0,
  kRunning,    ///< Current attempt has steps in flight or ready.
  kBackoff,    ///< Aborted; waiting for the restart timer.
  kThinking,   ///< Closed-loop: round committed; waiting for think timer.
  kCommitted,  ///< Done (one-shot), or current round committed.
  kGaveUp,     ///< Exceeded max_restarts; permanently stopped.
};

const char* TxnStateName(TxnState state);

/// \brief Tracks which steps of one transaction attempt have been issued
/// and completed, and maintains the ready frontier incrementally.
///
/// The executor is passive: the Simulation drives it, sending the issued
/// steps to lock managers over the network and reporting completions back.
class TxnExecutor {
 public:
  TxnExecutor(int index, const Transaction* txn);

  int index() const { return index_; }
  const Transaction& txn() const { return *txn_; }

  /// Current attempt number (starts at 1; bumped by Restart).
  int attempt() const { return attempt_; }

  TxnState state() const { return state_; }
  void set_state(TxnState s) { state_ = s; }

  bool started() const { return state_ != TxnState::kNotStarted; }
  void MarkStarted() {
    if (state_ == TxnState::kNotStarted) state_ = TxnState::kRunning;
  }

  bool IsDone() const { return completed_count_ == txn_->num_steps(); }

  /// Steps whose predecessors are all complete and which have not been
  /// issued yet in this attempt, ascending. Maintained incrementally:
  /// MarkCompleted enqueues newly enabled successors, MarkIssued removes.
  const std::vector<NodeId>& ReadySteps() const { return ready_; }

  void MarkIssued(NodeId v);
  void MarkCompleted(NodeId v);

  bool IsIssued(NodeId v) const { return issued_[v]; }
  bool IsCompleted(NodeId v) const { return completed_[v]; }

  /// Entities whose Lock completed but whose Unlock has not (locks held by
  /// the current attempt, assuming grants are recorded as completions).
  std::vector<EntityId> HeldEntities() const;

  /// Abort bookkeeping: clears all progress, bumps the attempt counter and
  /// enters kBackoff.
  void Restart();

  /// Closed-loop bookkeeping: clears all progress for a fresh round (also
  /// bumps the attempt counter, so in-flight acks of the previous round go
  /// stale) and enters kRunning.
  void BeginRound();

  /// Completion order of this attempt's steps (for history extraction).
  const std::vector<NodeId>& completion_order() const {
    return completion_order_;
  }

 private:
  void Reset();
  void InsertReady(NodeId v);

  int index_;
  const Transaction* txn_;
  int attempt_ = 0;
  TxnState state_ = TxnState::kNotStarted;
  std::vector<uint8_t> issued_;
  std::vector<uint8_t> completed_;
  /// Number of incomplete predecessors per step; a step joins ready_ when
  /// this hits zero.
  std::vector<int32_t> pending_preds_;
  std::vector<NodeId> ready_;
  std::vector<NodeId> completion_order_;
  int completed_count_ = 0;
};

}  // namespace wydb

#endif  // WYDB_RUNTIME_TXN_RUNTIME_H_
