#include "runtime/sim/event_queue.h"

#include <utility>

namespace wydb {

void EventQueue::At(SimTime t, SimEvent ev) {
  ev.time = t < now_ ? now_ : t;
  ev.seq = next_seq_++;
  heap_.push_back(ev);
  SiftUp(heap_.size() - 1);
}

bool EventQueue::PopNext(SimEvent* out) {
  if (heap_.empty()) return false;
  *out = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) SiftDown(0);
  now_ = out->time;
  ++processed_;
  return true;
}

void EventQueue::SiftUp(std::size_t i) {
  while (i > 0) {
    std::size_t parent = (i - 1) / 2;
    if (!Earlier(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void EventQueue::SiftDown(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t best = i;
    std::size_t left = 2 * i + 1, right = 2 * i + 2;
    if (left < n && Earlier(heap_[left], heap_[best])) best = left;
    if (right < n && Earlier(heap_[right], heap_[best])) best = right;
    if (best == i) return;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

}  // namespace wydb
