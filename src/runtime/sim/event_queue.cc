#include "runtime/sim/event_queue.h"

#include <utility>

namespace wydb {

void EventQueue::At(SimTime t, Callback cb) {
  if (t < now_) t = now_;
  heap_.push(Event{t, next_seq_++, std::move(cb)});
}

bool EventQueue::RunOne() {
  if (heap_.empty()) return false;
  // priority_queue::top returns const&; moving out right before pop() is
  // safe because pop() only needs the element to be in a valid state.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  now_ = ev.time;
  ++processed_;
  ev.cb();
  return true;
}

uint64_t EventQueue::RunAll(uint64_t max_events) {
  uint64_t count = 0;
  while ((max_events == 0 || count < max_events) && RunOne()) ++count;
  return count;
}

}  // namespace wydb
