#include "runtime/sim/network.h"

namespace wydb {

void Network::Send(SiteId from, SiteId to, SimEvent ev) {
  ++messages_sent_;
  SimTime latency;
  if (from == to) {
    latency = model_.local;
  } else {
    latency = model_.base;
    if (model_.jitter > 0) latency += rng_->NextBelow(model_.jitter + 1);
  }
  queue_->After(latency, ev);
}

}  // namespace wydb
