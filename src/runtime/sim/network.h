// Simulated site-to-site messaging with a configurable latency model.
//
// Substitution note (DESIGN.md §4.1): the paper's model has no timing;
// the network exists so that runtime interleavings vary per seed and lock
// grants arrive in adversarial orders, which is what deadlock formation
// depends on.
//
// A message is a POD SimEvent scheduled on the shared EventQueue after a
// sampled latency; the network itself holds no payload state.
#ifndef WYDB_RUNTIME_SIM_NETWORK_H_
#define WYDB_RUNTIME_SIM_NETWORK_H_

#include <cstdint>

#include "common/random.h"
#include "core/database.h"
#include "runtime/sim/event_queue.h"

namespace wydb {

/// Message latency distribution.
struct LatencyModel {
  /// Minimum one-way latency between distinct sites.
  SimTime base = 10;
  /// Uniform extra latency in [0, jitter] sampled per message. Nonzero
  /// jitter allows reordering of in-flight messages.
  SimTime jitter = 5;
  /// Latency for a message from a site to itself (local call).
  SimTime local = 1;
};

/// \brief Delivers POD events between sites with simulated latency.
class Network {
 public:
  Network(EventQueue* queue, int num_sites, LatencyModel model, Rng* rng)
      : queue_(queue), num_sites_(num_sites), model_(model), rng_(rng) {}

  /// Schedules `ev` for delivery after the sampled latency.
  void Send(SiteId from, SiteId to, SimEvent ev);

  uint64_t messages_sent() const { return messages_sent_; }
  int num_sites() const { return num_sites_; }

 private:
  EventQueue* queue_;
  int num_sites_;
  LatencyModel model_;
  Rng* rng_;
  uint64_t messages_sent_ = 0;
};

}  // namespace wydb

#endif  // WYDB_RUNTIME_SIM_NETWORK_H_
