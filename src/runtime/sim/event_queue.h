// Discrete-event simulation kernel: a clock plus a stable min-heap of POD
// event records. Ties break by insertion order, so runs are fully
// deterministic for a fixed seed.
//
// The queue stores no closures: an event is a tagged 32-byte record and
// dispatch is a `switch` in the engine that owns the queue. Pushing and
// popping never allocates beyond the flat heap vector's amortized growth.
#ifndef WYDB_RUNTIME_SIM_EVENT_QUEUE_H_
#define WYDB_RUNTIME_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <vector>

namespace wydb {

/// Simulated time in abstract microseconds.
using SimTime = uint64_t;

/// Discriminator of a SimEvent. The engine dispatches on this tag.
enum class EventKind : uint8_t {
  /// Start (or restart after backoff) transaction `txn`'s attempt
  /// `attempt`. Stale if the executor has moved past that attempt.
  kStartTxn = 0,
  /// A Lock request for step `node` of `txn` (attempt `attempt`) arrives
  /// at `site`.
  kLockArrive,
  /// An Unlock request for step `node` of `txn` arrives at `site`.
  kUnlockArrive,
  /// The completion ack for step `node` of `txn` arrives back at the
  /// transaction's home site.
  kAckArrive,
  /// Closed-loop driver: `txn`'s think time elapsed; begin the next round.
  kThinkDone,
};

/// \brief POD event record; the only thing the kernel queues.
struct SimEvent {
  SimTime time = 0;    ///< Absolute delivery time (filled by the queue).
  uint64_t seq = 0;    ///< Insertion order, for deterministic tie-breaks.
  EventKind kind = EventKind::kStartTxn;
  int32_t txn = -1;
  int32_t node = -1;
  int32_t attempt = 0;
  int32_t site = -1;
};

/// \brief Deterministic discrete-event queue over POD records.
class EventQueue {
 public:
  SimTime now() const { return now_; }
  uint64_t processed() const { return processed_; }
  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

  /// Schedules `ev` at absolute time `t` (clamped to now()). `ev.time` and
  /// `ev.seq` are overwritten by the queue.
  void At(SimTime t, SimEvent ev);

  /// Schedules `ev` at now() + delay.
  void After(SimTime delay, SimEvent ev) { At(now_ + delay, ev); }

  /// Pops the earliest event into `*out`, advancing the clock. Returns
  /// false when empty.
  bool PopNext(SimEvent* out);

 private:
  // Flat binary min-heap ordered by (time, seq). Hand-rolled rather than
  // std::priority_queue so PopNext can move the root out without the
  // const_cast dance, and so the storage is reusable across runs.
  void SiftUp(std::size_t i);
  void SiftDown(std::size_t i);
  static bool Earlier(const SimEvent& a, const SimEvent& b) {
    return a.time != b.time ? a.time < b.time : a.seq < b.seq;
  }

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t processed_ = 0;
  std::vector<SimEvent> heap_;
};

}  // namespace wydb

#endif  // WYDB_RUNTIME_SIM_EVENT_QUEUE_H_
