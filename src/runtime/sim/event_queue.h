// Discrete-event simulation kernel: a clock plus a stable min-heap of
// callbacks. Ties break by insertion order, so runs are fully
// deterministic for a fixed seed.
#ifndef WYDB_RUNTIME_SIM_EVENT_QUEUE_H_
#define WYDB_RUNTIME_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace wydb {

/// Simulated time in abstract microseconds.
using SimTime = uint64_t;

/// \brief Deterministic discrete-event queue.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  SimTime now() const { return now_; }
  uint64_t processed() const { return processed_; }
  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

  /// Schedules `cb` at absolute time `t` (clamped to now()).
  void At(SimTime t, Callback cb);

  /// Schedules `cb` at now() + delay.
  void After(SimTime delay, Callback cb) { At(now_ + delay, std::move(cb)); }

  /// Pops and runs the earliest event. Returns false when empty.
  bool RunOne();

  /// Runs until empty or `max_events` processed (0 = unbounded).
  /// Returns the number of events processed by this call.
  uint64_t RunAll(uint64_t max_events = 0);

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
};

}  // namespace wydb

#endif  // WYDB_RUNTIME_SIM_EVENT_QUEUE_H_
