#include "runtime/scheduler.h"

namespace wydb {

const char* ConflictPolicyName(ConflictPolicy policy) {
  switch (policy) {
    case ConflictPolicy::kBlock:
      return "block";
    case ConflictPolicy::kWoundWait:
      return "wound-wait";
    case ConflictPolicy::kWaitDie:
      return "wait-die";
    case ConflictPolicy::kDetect:
      return "detect";
  }
  return "unknown";
}

bool ParseConflictPolicy(const std::string& name, ConflictPolicy* out) {
  for (ConflictPolicy policy :
       {ConflictPolicy::kBlock, ConflictPolicy::kWoundWait,
        ConflictPolicy::kWaitDie, ConflictPolicy::kDetect}) {
    if (name == ConflictPolicyName(policy)) {
      *out = policy;
      return true;
    }
  }
  return false;
}

ConflictAction ResolveConflict(ConflictPolicy policy, uint64_t ts_requester,
                               uint64_t ts_holder) {
  switch (policy) {
    case ConflictPolicy::kBlock:
    case ConflictPolicy::kDetect:
      return ConflictAction::kWait;
    case ConflictPolicy::kWoundWait:
      // Older requester wounds the younger holder.
      return ts_requester < ts_holder ? ConflictAction::kAbortHolder
                                      : ConflictAction::kWait;
    case ConflictPolicy::kWaitDie:
      // Older requester may wait; younger requester dies.
      return ts_requester < ts_holder ? ConflictAction::kWait
                                      : ConflictAction::kAbortRequester;
  }
  return ConflictAction::kWait;
}

}  // namespace wydb
