// Thread-safe shared/exclusive lock table for the live (wall-clock)
// engine: the flat per-site LockManager rebuilt for real concurrency.
//
// Architecture (the pthread lock tables of real storage engines):
//   * the grant/waiter state of every entity lives in a dense table, but
//     access is guarded by a fixed array of STRIPE latches — entity ->
//     stripe is a pure multiplicative-hash computation, so the lookup
//     itself is lock-free and the stripe count bounds latch contention
//     independently of the entity count;
//   * waiter queues are intrusive: one pre-allocated WaitNode per
//     transaction (a transaction waits on at most one entity at a time),
//     linked through the nodes by transaction index — the hot path never
//     allocates;
//   * blocked requesters park on a per-transaction condition variable
//     paired with the stripe latch, so a release wakes exactly the
//     transactions it grants (no thundering herd).
//
// Lock modes (DESIGN.md §11): any number of shared holders OR one
// exclusive holder per entity. Queueing is FIFO-fair — a shared request
// behind a queued exclusive waiter queues too (no reader starvation) —
// and a freed entity grants the maximal consecutive shared prefix of its
// queue in one batch. An S->X upgrade keeps its shared hold and jumps to
// the queue HEAD; it is promoted the moment it is the sole remaining
// sharer. Two sharers upgrading the same entity deadlock on each other:
// the timestamp policies resolve it by aborting one side up front, and
// kDetect sees the cycle because wait-for edges run to EVERY conflicting
// holder (an upgrader never waits on itself).
//
// Conflict policies:
//   * kBlock is the paper's certified fast path: a conflicting request
//     parks until granted — no timestamps are consulted, no timeout ever
//     fires, no wait-for graph is ever built. The only extra wake source
//     is RequestStop(), used by the engine's shutdown/watchdog path.
//   * kWoundWait / kWaitDie are the Rosenkrantz-Stearns-Lewis timestamp
//     baselines: conflicts consult timestamps against EACH conflicting
//     holder and resolve by aborting the younger party (Acquire returns
//     kAborted; the caller must release its locks and retry with the
//     same timestamp).
//   * kDetect scans on block (InnoDB-style): a parking waiter snapshots
//     the global wait-for graph (all stripes latched in index order) and
//     aborts the youngest transaction on a cycle, then re-scans every
//     detect_interval_us while it stays parked.
//
// The manager resolves conflicts but never aborts anything itself: an
// aborted Acquire returns kAborted and the CALLER releases held locks via
// Release/ReleaseAll and retries after BeginAttempt.
#ifndef WYDB_RUNTIME_STRIPED_LOCK_MANAGER_H_
#define WYDB_RUNTIME_STRIPED_LOCK_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/database.h"
#include "core/transaction.h"
#include "runtime/scheduler.h"

namespace wydb {

class StripedLockManager {
 public:
  enum class AcquireStatus : uint8_t {
    kGranted,  ///< The caller now holds the entity in the requested mode.
    kAborted,  ///< Policy decided against the caller (wound / die / victim)
               ///< or RequestAbort was called: release everything, retry.
    kStopped,  ///< RequestStop happened: unwind without retrying.
  };

  struct Options {
    ConflictPolicy policy = ConflictPolicy::kBlock;
    /// Number of latch stripes (rounded up to a power of two; 0 = auto:
    /// a small multiple of the hardware concurrency).
    int num_stripes = 0;
    /// kDetect only: how long a parked waiter waits before re-running
    /// the wait-for cycle scan (the first scan runs at park time).
    /// Ignored by every other policy.
    int64_t detect_interval_us = 2000;
  };

  /// `num_entities` sizes the dense lock table, `num_txns` the
  /// per-transaction wait-node pool. Transaction ids are 0..num_txns-1.
  StripedLockManager(int num_entities, int num_txns, const Options& options);

  /// Blocking acquire in `mode`. Returns kGranted once the caller holds
  /// `entity`, kAborted if the conflict policy (or RequestAbort) turned
  /// the caller into a victim, kStopped after RequestStop. An exclusive
  /// request by a current sharer is an UPGRADE (granted at once if sole
  /// sharer, else queued at the head while the shared hold is kept). Must
  /// not be called while the caller already waits elsewhere (one
  /// outstanding Acquire per transaction).
  AcquireStatus Acquire(int txn, EntityId entity,
                        LockMode mode = LockMode::kExclusive);

  /// Releases `entity` if `txn` holds it in either mode (stale releases
  /// tolerated) and grants the next waiter batch.
  void Release(int txn, EntityId entity);

  /// Abort/commit cleanup: releases every entity in `held` that `txn`
  /// still holds.
  void ReleaseAll(int txn, const std::vector<EntityId>& held);

  /// Clears txn's pending-abort flag; call before each fresh attempt.
  void BeginAttempt(int txn);

  /// Marks `txn` a victim: its current or next Acquire returns kAborted.
  /// Wakes it if it is parked. Never call while holding engine locks that
  /// a parked transaction could be blocked under.
  void RequestAbort(int txn);

  /// Wakes every parked transaction with kStopped and fails all future
  /// Acquires. Idempotent.
  void RequestStop();
  bool stopped() const { return stop_.load(std::memory_order_acquire); }

  /// Timestamp consulted by kWoundWait/kWaitDie (smaller = older). Set
  /// before the transaction's first request; stable across restarts (the
  /// RSL policies' no-livelock argument needs that).
  void SetTimestamp(int txn, uint64_t ts) { timestamp_[txn] = ts; }

  ConflictPolicy policy() const { return options_.policy; }
  int num_stripes() const { return static_cast<int>(stripes_.size()); }

  /// Completed lock operations (grants returned to callers + releases).
  /// Cheap (relaxed counter sum); safe to call concurrently.
  uint64_t lock_ops() const {
    return grants_.load(std::memory_order_relaxed) +
           releases_.load(std::memory_order_relaxed);
  }
  uint64_t grants() const { return grants_.load(std::memory_order_relaxed); }
  /// Shared-mode grants returned to callers (subset of grants()).
  uint64_t shared_grants() const {
    return shared_grants_.load(std::memory_order_relaxed);
  }
  /// Completed S->X upgrades (subset of grants()).
  uint64_t upgrades() const {
    return upgrades_.load(std::memory_order_relaxed);
  }
  /// Upgrade attempts that ended in kAborted.
  uint64_t upgrade_aborts() const {
    return upgrade_aborts_.load(std::memory_order_relaxed);
  }
  /// kDetect: wait-for scans run by timed-out waiters.
  uint64_t detector_runs() const {
    return detector_runs_.load(std::memory_order_relaxed);
  }
  /// Aborts decided by the conflict policy (not RequestAbort).
  uint64_t policy_aborts() const {
    return policy_aborts_.load(std::memory_order_relaxed);
  }

  // --- Introspection (latches stripes; not for hot paths). ---------------

  /// The exclusive holder if there is one, else an arbitrary shared
  /// holder, else -1. Use IsHolding for membership under shared modes.
  int HolderOf(EntityId entity) const;
  /// True iff `txn` holds `entity` in either mode.
  bool IsHolding(int txn, EntityId entity) const;
  /// Number of shared holders of `entity` (0 when exclusively held/free).
  int SharerCountOf(EntityId entity) const;
  /// Parked transactions over all entities.
  size_t TotalWaiters() const;

  struct WaitEdge {
    int waiter;
    int holder;
    EntityId entity;
  };
  /// Consistent snapshot of the wait-for relation (latches every stripe
  /// in index order): one edge per conflicting holder — all sharers for a
  /// queued exclusive request; an upgrader never waits on itself.
  std::vector<WaitEdge> WaitForEdges() const;

 private:
  /// Queue/grant state of one entity. Guarded by its stripe's latch.
  struct Entry {
    int32_t holder = -1;            ///< Exclusive holder, or -1.
    std::vector<int32_t> sharers;   ///< Shared holders (empty when X-held).
    int32_t head = -1;              ///< Waiting transaction index, or -1.
    int32_t tail = -1;
  };

  /// One pre-allocated park slot per transaction; all fields except the
  /// atomics are guarded by the stripe latch of `entity`.
  struct WaitNode {
    std::condition_variable cv;
    int32_t next = -1;
    uint8_t granted = 0;
    LockMode mode = LockMode::kExclusive;  ///< Mode of the queued request.
    uint8_t upgrading = 0;  ///< Queued S->X upgrade: still holds S.
    /// Entity this transaction is parked on (set under the stripe latch
    /// before the first predicate check, cleared under it on wake).
    /// Atomic so RequestAbort can chase the parking spot latch-free.
    std::atomic<EntityId> parked_on{kInvalidEntity};
  };

  struct alignas(64) Stripe {
    mutable std::mutex mu;
  };

  size_t StripeOf(EntityId e) const {
    // Multiplicative hash: adjacent entity ids land on different stripes.
    // One stripe means a 64-bit shift, which C++ leaves undefined — that
    // case is index 0 by definition.
    if (stripe_shift_ >= 64) return 0;
    return (static_cast<uint64_t>(static_cast<uint32_t>(e)) *
            0x9E3779B97F4A7C15ull) >>
           stripe_shift_;
  }

  /// Appends txn to entity's waiter queue. Stripe latch held.
  void Enqueue(Entry& entry, int txn, LockMode mode, bool upgrading);
  /// Prepends txn (upgrades). Stripe latch held.
  void EnqueueFront(Entry& entry, int txn, LockMode mode, bool upgrading);
  /// Removes txn from entity's waiter queue if present. Stripe latch held.
  void Unlink(Entry& entry, int txn);
  bool IsSharer(const Entry& entry, int txn) const;
  bool RemoveSharer(Entry& entry, int txn);
  /// Grants the maximal compatible prefix of the queue (one X, a
  /// promotable upgrade, or a consecutive batch of S requests), wakes the
  /// winners, and re-applies the timestamp policy of the remaining
  /// waiters against the new holders. Holders parked on OTHER stripes
  /// cannot be woken under this latch; their ids are appended to *wounds
  /// (flag already set) and the caller must WakeIfParked each AFTER
  /// dropping the latch. Stripe latch held; entry.holder must be -1.
  void GrantHead(Entry& entry, std::vector<int>* wounds);
  /// Releases under the latch; grants the next waiter batch.
  void ReleaseLocked(int txn, Entry& entry,
                     std::vector<int>* wounds);

  /// Parks txn on `entity` until granted/aborted/stopped. The caller has
  /// already enqueued it; `lk` holds the stripe latch. Returns the final
  /// status with the node unlinked and parked_on cleared. May return with
  /// `lk` unlocked (give-back wound delivery).
  AcquireStatus Park(int txn, EntityId entity,
                     std::unique_lock<std::mutex>& lk);

  /// Sets txn's abort flag (counting the policy abort on the 0->1 edge)
  /// and notifies its cv. Safe under any latch; pair with a latch-free
  /// WakeIfParked when txn may be parked on another stripe.
  void FlagPolicyAbort(int txn);

  /// kDetect: snapshot the wait-for graph and abort the youngest
  /// transaction on a cycle, if any. Caller holds no stripe latch.
  void RunDetector();

  /// Notifies txn under its parking stripe's latch if it is parked.
  /// Caller holds no stripe latch.
  void WakeIfParked(int txn);

  bool AbortRequested(int txn) const {
    return abort_flag_[txn].load(std::memory_order_acquire) != 0;
  }

  Options options_;
  size_t stripe_shift_;
  std::vector<Stripe> stripes_;
  std::vector<Entry> entries_;
  std::unique_ptr<WaitNode[]> nodes_;
  std::unique_ptr<std::atomic<uint8_t>[]> abort_flag_;
  std::vector<uint64_t> timestamp_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> grants_{0};
  std::atomic<uint64_t> shared_grants_{0};
  std::atomic<uint64_t> upgrades_{0};
  std::atomic<uint64_t> upgrade_aborts_{0};
  std::atomic<uint64_t> releases_{0};
  std::atomic<uint64_t> detector_runs_{0};
  std::atomic<uint64_t> policy_aborts_{0};
  /// Serializes kDetect scans (one timed-out waiter scans at a time).
  std::mutex detect_mu_;
};

}  // namespace wydb

#endif  // WYDB_RUNTIME_STRIPED_LOCK_MANAGER_H_
