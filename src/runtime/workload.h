// Closed-loop traffic driver: turns the one-shot simulation into a
// throughput engine in the style of closed-loop OLTP drivers (TPC-C/DBT2).
// Each committed transaction re-issues after a think-time delay for a
// configured duration or round count, yielding throughput, abort-rate and
// commit-latency percentile metrics.
#ifndef WYDB_RUNTIME_WORKLOAD_H_
#define WYDB_RUNTIME_WORKLOAD_H_

#include <cstdint>

#include "common/result.h"
#include "core/system.h"
#include "runtime/simulation.h"

namespace wydb {

struct WorkloadOptions {
  SimOptions sim;
  /// Closed loop (default): the next round arrives one think-time after
  /// the previous round commits. Open loop: a free-running per-
  /// transaction arrival clock fires every think_time interval regardless
  /// of round completion; arrivals that find the transaction busy queue —
  /// so latency under saturation grows instead of throttling the arrival
  /// rate.
  bool open_loop = false;
  /// Open mode: per-transaction arrival backlog bound; when full, the
  /// arrival clock pauses until the backlog drains. Keeps a deadlocked
  /// system quiescible so deadlock detection/classification still works.
  int max_backlog = 256;
  /// Mean think time (closed) / inter-arrival interval (open); the
  /// sampled delay is uniform in [1, 2*think_time].
  SimTime think_time = 100;
  /// Stop issuing new rounds once the simulated clock reaches this
  /// (in-flight rounds drain). 0 = rounds-bounded instead.
  SimTime duration = 100'000;
  /// Per-transaction round target; 0 = duration-bounded only. At least
  /// one of duration/rounds must be set.
  int rounds = 0;
  /// Multi-programming level: max transactions concurrently executing a
  /// round (0 = unlimited); excess arrivals wait in an admission FIFO.
  int mpl = 0;
};

/// Runs one seeded traffic session. The SimResult carries the throughput
/// metrics (`commits`, `throughput`, `abort_rate`, `latency`);
/// `committed_history` is not populated in traffic mode.
Result<SimResult> RunWorkload(const TransactionSystem& sys,
                              const WorkloadOptions& options);

/// Aggregate over seeded sessions (seeds base.sim.seed, +1, ...).
struct WorkloadAggregate {
  int runs = 0;
  int deadlocked_runs = 0;
  int budget_exhausted_runs = 0;
  int gave_up_runs = 0;
  uint64_t total_commits = 0;
  uint64_t total_aborts = 0;
  /// Lock-mode traffic totals across the sessions (all 0 for X-only
  /// workloads; see the SimResult fields of the same names).
  uint64_t total_shared_grants = 0;
  uint64_t total_upgrades = 0;
  uint64_t total_upgrade_aborts = 0;
  double avg_throughput = 0.0;
  double avg_abort_rate = 0.0;
  /// Means of the per-run percentiles.
  double avg_p50 = 0.0;
  double avg_p95 = 0.0;
  double avg_p99 = 0.0;
};

/// Runs `runs` sessions (thread pool as in RunMany; aggregates are
/// identical for any thread count).
Result<WorkloadAggregate> RunWorkloadMany(const TransactionSystem& sys,
                                          const WorkloadOptions& base,
                                          int runs, int threads = 0);

}  // namespace wydb

#endif  // WYDB_RUNTIME_WORKLOAD_H_
