// Tarjan strongly-connected components.
#ifndef WYDB_GRAPH_TARJAN_H_
#define WYDB_GRAPH_TARJAN_H_

#include <vector>

#include "graph/digraph.h"

namespace wydb {

/// \brief Result of an SCC decomposition.
struct SccResult {
  /// component[v] = id of v's SCC; ids are in reverse topological order
  /// (an arc between SCCs goes from higher id to lower id... Tarjan's
  /// numbering: components are emitted in reverse topological order, so
  /// arcs between distinct components go from larger to smaller ids).
  std::vector<int> component;
  int num_components = 0;

  /// Members of each component, indexed by component id.
  std::vector<std::vector<NodeId>> members;
};

/// Computes SCCs of `g` (iterative Tarjan; safe for large graphs).
SccResult StronglyConnectedComponents(const Digraph& g);

}  // namespace wydb

#endif  // WYDB_GRAPH_TARJAN_H_
