#include "graph/algorithms.h"

#include <algorithm>
#include <cassert>

namespace wydb {

std::optional<std::vector<NodeId>> TopologicalSort(const Digraph& g) {
  const int n = g.num_nodes();
  std::vector<int> indeg(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId w : g.OutNeighbors(v)) indeg[w]++;
  }
  std::vector<NodeId> order;
  order.reserve(n);
  std::vector<NodeId> frontier;
  for (NodeId v = 0; v < n; ++v) {
    if (indeg[v] == 0) frontier.push_back(v);
  }
  while (!frontier.empty()) {
    NodeId v = frontier.back();
    frontier.pop_back();
    order.push_back(v);
    for (NodeId w : g.OutNeighbors(v)) {
      if (--indeg[w] == 0) frontier.push_back(w);
    }
  }
  if (static_cast<int>(order.size()) != n) return std::nullopt;
  return order;
}

bool HasCycle(const Digraph& g) { return !TopologicalSort(g).has_value(); }

std::vector<NodeId> FindCycle(const Digraph& g) {
  const int n = g.num_nodes();
  // Colors: 0 = white, 1 = on stack, 2 = done.
  std::vector<int> color(n, 0);
  std::vector<NodeId> parent(n, kInvalidNode);
  std::vector<NodeId> cycle;

  // Iterative DFS keeping an explicit stack of (node, next-edge-index).
  for (NodeId root = 0; root < n && cycle.empty(); ++root) {
    if (color[root] != 0) continue;
    std::vector<std::pair<NodeId, size_t>> stack{{root, 0}};
    color[root] = 1;
    while (!stack.empty() && cycle.empty()) {
      auto& [v, idx] = stack.back();
      const auto& succ = g.OutNeighbors(v);
      if (idx == succ.size()) {
        color[v] = 2;
        stack.pop_back();
        continue;
      }
      NodeId w = succ[idx++];
      if (color[w] == 0) {
        color[w] = 1;
        parent[w] = v;
        stack.emplace_back(w, 0);
      } else if (color[w] == 1) {
        // Found a back edge v -> w; walk parents from v up to w.
        cycle.push_back(w);
        for (NodeId u = v; u != w; u = parent[u]) cycle.push_back(u);
        std::reverse(cycle.begin() + 1, cycle.end());
      }
    }
  }
  return cycle;
}

ReachabilityMatrix TransitiveClosure(const Digraph& g) {
  auto order = TopologicalSort(g);
  assert(order.has_value() && "TransitiveClosure requires a DAG");
  const int n = g.num_nodes();
  ReachabilityMatrix m(n);
  // Process in reverse topological order so successors are complete.
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    NodeId v = *it;
    for (NodeId w : g.OutNeighbors(v)) {
      m.Set(v, w);
      m.OrRow(v, w);
    }
  }
  return m;
}

Digraph TransitiveReduction(const Digraph& g,
                            const ReachabilityMatrix& closure) {
  const int n = g.num_nodes();
  Digraph reduced(n);
  for (NodeId v = 0; v < n; ++v) {
    // Keep arc v->w iff no other direct successor u of v reaches w.
    std::vector<NodeId> succ = g.OutNeighbors(v);
    std::sort(succ.begin(), succ.end());
    succ.erase(std::unique(succ.begin(), succ.end()), succ.end());
    for (NodeId w : succ) {
      bool redundant = false;
      for (NodeId u : succ) {
        if (u != w && closure.Reaches(u, w)) {
          redundant = true;
          break;
        }
      }
      if (!redundant) reduced.AddArc(v, w);
    }
  }
  return reduced;
}

std::vector<NodeId> ReachableFrom(const Digraph& g, NodeId start) {
  std::vector<bool> seen(g.num_nodes(), false);
  std::vector<NodeId> stack{start}, out;
  while (!stack.empty()) {
    NodeId v = stack.back();
    stack.pop_back();
    for (NodeId w : g.OutNeighbors(v)) {
      if (!seen[w]) {
        seen[w] = true;
        out.push_back(w);
        stack.push_back(w);
      }
    }
  }
  return out;
}

std::vector<NodeId> AncestorsOf(const Digraph& g, NodeId v) {
  std::vector<bool> seen(g.num_nodes(), false);
  std::vector<NodeId> stack{v}, out;
  while (!stack.empty()) {
    NodeId u = stack.back();
    stack.pop_back();
    for (NodeId p : g.InNeighbors(u)) {
      if (!seen[p]) {
        seen[p] = true;
        out.push_back(p);
        stack.push_back(p);
      }
    }
  }
  return out;
}

}  // namespace wydb
