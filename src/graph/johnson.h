// Johnson's algorithm: enumerate all elementary (simple) directed cycles.
#ifndef WYDB_GRAPH_JOHNSON_H_
#define WYDB_GRAPH_JOHNSON_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/digraph.h"

namespace wydb {

/// \brief Options bounding the cycle enumeration.
struct CycleEnumOptions {
  /// Stop after this many cycles have been emitted (guard against the
  /// worst-case exponential count). 0 means unbounded.
  uint64_t max_cycles = 0;
  /// Ignore cycles longer than this many nodes. 0 means unbounded.
  int max_length = 0;
};

/// Calls `emit` for each elementary cycle of `g` (node sequence, first node
/// not repeated at the end). Returns the number of cycles emitted; if the
/// max_cycles bound fired, the result equals max_cycles and enumeration is
/// incomplete.
uint64_t EnumerateElementaryCycles(
    const Digraph& g, const CycleEnumOptions& options,
    const std::function<void(const std::vector<NodeId>&)>& emit);

/// Convenience: collect all cycles (use only when the count is known small).
std::vector<std::vector<NodeId>> AllElementaryCycles(
    const Digraph& g, const CycleEnumOptions& options = {});

}  // namespace wydb

#endif  // WYDB_GRAPH_JOHNSON_H_
