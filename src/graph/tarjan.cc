#include "graph/tarjan.h"

#include <algorithm>

namespace wydb {

SccResult StronglyConnectedComponents(const Digraph& g) {
  const int n = g.num_nodes();
  SccResult res;
  res.component.assign(n, -1);

  std::vector<int> index(n, -1), lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<NodeId> stack;
  int next_index = 0;

  // Explicit DFS frames: (node, next out-edge position).
  struct Frame {
    NodeId v;
    size_t edge;
  };
  std::vector<Frame> frames;

  for (NodeId root = 0; root < n; ++root) {
    if (index[root] != -1) continue;
    frames.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!frames.empty()) {
      Frame& f = frames.back();
      const auto& succ = g.OutNeighbors(f.v);
      if (f.edge < succ.size()) {
        NodeId w = succ[f.edge++];
        if (index[w] == -1) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[f.v] = std::min(lowlink[f.v], index[w]);
        }
        continue;
      }
      // Post-visit.
      NodeId v = f.v;
      frames.pop_back();
      if (!frames.empty()) {
        lowlink[frames.back().v] = std::min(lowlink[frames.back().v],
                                            lowlink[v]);
      }
      if (lowlink[v] == index[v]) {
        res.members.emplace_back();
        NodeId w;
        do {
          w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          res.component[w] = res.num_components;
          res.members.back().push_back(w);
        } while (w != v);
        ++res.num_components;
      }
    }
  }
  return res;
}

}  // namespace wydb
