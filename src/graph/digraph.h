// Compact directed graph used as the backbone of transactions, conflict
// graphs and reduction graphs.
#ifndef WYDB_GRAPH_DIGRAPH_H_
#define WYDB_GRAPH_DIGRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

namespace wydb {

/// Index of a node inside a Digraph. Dense, 0-based.
using NodeId = int32_t;

inline constexpr NodeId kInvalidNode = -1;

/// \brief Adjacency-list directed graph over nodes 0..n-1.
///
/// Parallel arcs are tolerated on insertion and deduplicated lazily where
/// algorithms require it. The graph never stores payloads; callers keep a
/// side table indexed by NodeId.
class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(int num_nodes) { Resize(num_nodes); }

  int num_nodes() const { return static_cast<int>(out_.size()); }
  int num_arcs() const { return num_arcs_; }

  /// Grows the node set to `n` nodes (never shrinks).
  void Resize(int n);

  /// Appends a fresh node and returns its id.
  NodeId AddNode();

  /// Adds arc from -> to. Both ids must be in range.
  void AddArc(NodeId from, NodeId to);

  /// True if an arc from -> to exists (linear in out-degree of `from`).
  bool HasArc(NodeId from, NodeId to) const;

  const std::vector<NodeId>& OutNeighbors(NodeId v) const { return out_[v]; }
  const std::vector<NodeId>& InNeighbors(NodeId v) const { return in_[v]; }

  int OutDegree(NodeId v) const { return static_cast<int>(out_[v].size()); }
  int InDegree(NodeId v) const { return static_cast<int>(in_[v].size()); }

  /// Removes duplicate arcs; preserves relative order of first occurrences.
  void DeduplicateArcs();

  /// Multi-line "v -> a b c" dump for debugging.
  std::string DebugString() const;

 private:
  std::vector<std::vector<NodeId>> out_;
  std::vector<std::vector<NodeId>> in_;
  int num_arcs_ = 0;
};

}  // namespace wydb

#endif  // WYDB_GRAPH_DIGRAPH_H_
