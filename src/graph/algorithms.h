// Core digraph algorithms: topological sort, cycle detection, reachability,
// transitive closure and reduction.
#ifndef WYDB_GRAPH_ALGORITHMS_H_
#define WYDB_GRAPH_ALGORITHMS_H_

#include <optional>
#include <vector>

#include "graph/digraph.h"

namespace wydb {

/// \brief Row-per-node bitset reachability matrix.
///
/// closure.Reaches(u, v) is true iff there is a path (of length >= 1 when
/// built with ReflexiveClosure=false) from u to v.
class ReachabilityMatrix {
 public:
  ReachabilityMatrix() = default;
  ReachabilityMatrix(int n)  // NOLINT(runtime/explicit)
      : n_(n), words_((n + 63) / 64), bits_(static_cast<size_t>(n) * words_) {}

  int num_nodes() const { return n_; }

  bool Reaches(NodeId u, NodeId v) const {
    return (bits_[static_cast<size_t>(u) * words_ + v / 64] >>
            (v % 64)) & 1;
  }
  void Set(NodeId u, NodeId v) {
    bits_[static_cast<size_t>(u) * words_ + v / 64] |= 1ULL << (v % 64);
  }
  /// rows[u] |= rows[v]
  void OrRow(NodeId u, NodeId v) {
    size_t ub = static_cast<size_t>(u) * words_;
    size_t vb = static_cast<size_t>(v) * words_;
    for (int w = 0; w < words_; ++w) bits_[ub + w] |= bits_[vb + w];
  }

 private:
  int n_ = 0;
  int words_ = 0;
  std::vector<uint64_t> bits_;
};

/// Topological order of `g`, or nullopt if `g` has a cycle (Kahn).
std::optional<std::vector<NodeId>> TopologicalSort(const Digraph& g);

/// True iff `g` contains a directed cycle.
bool HasCycle(const Digraph& g);

/// Some directed cycle of `g` as a node sequence (first node not repeated),
/// or empty vector if acyclic.
std::vector<NodeId> FindCycle(const Digraph& g);

/// Transitive closure of a DAG via reverse topological DP.
/// Requires `g` acyclic (asserts in debug builds).
ReachabilityMatrix TransitiveClosure(const Digraph& g);

/// Hasse diagram: the unique minimal arc set with the same closure.
/// Requires `g` acyclic.
Digraph TransitiveReduction(const Digraph& g,
                            const ReachabilityMatrix& closure);

/// Nodes reachable from `start` (excluding start unless on a cycle).
std::vector<NodeId> ReachableFrom(const Digraph& g, NodeId start);

/// All ancestors of `v` (nodes that can reach v), excluding v.
std::vector<NodeId> AncestorsOf(const Digraph& g, NodeId v);

}  // namespace wydb

#endif  // WYDB_GRAPH_ALGORITHMS_H_
