// Undirected graphs: used for the interaction graph G(A) of a transaction
// system (Section 5 of the paper).
#ifndef WYDB_GRAPH_UNDIRECTED_H_
#define WYDB_GRAPH_UNDIRECTED_H_

#include <cstdint>
#include <vector>

#include "graph/digraph.h"

namespace wydb {

/// \brief Simple undirected graph over nodes 0..n-1 (no parallel edges,
/// no self-loops).
class UndirectedGraph {
 public:
  UndirectedGraph() = default;
  explicit UndirectedGraph(int num_nodes)
      : adj_(static_cast<size_t>(num_nodes)) {}

  int num_nodes() const { return static_cast<int>(adj_.size()); }
  int num_edges() const { return num_edges_; }

  /// Adds edge {u, v}; ignored if it already exists or u == v.
  void AddEdge(NodeId u, NodeId v);

  bool HasEdge(NodeId u, NodeId v) const;

  const std::vector<NodeId>& Neighbors(NodeId v) const { return adj_[v]; }

  /// Number of edges in a spanning forest = n - #components; the cycle
  /// space dimension is num_edges() - n + #components.
  int CycleSpaceDimension() const;

  /// All simple cycles as *undirected* vertex sequences (each cycle listed
  /// once; orientation and rotation normalized to start at the smallest
  /// vertex and move toward its smaller neighbor). Bounded by
  /// `max_cycles` (0 = unbounded). Cycles have length >= 3.
  std::vector<std::vector<NodeId>> SimpleCycles(uint64_t max_cycles = 0) const;

  /// The symmetric digraph (u->v and v->u per edge); handy for reusing
  /// directed algorithms.
  Digraph ToSymmetricDigraph() const;

 private:
  std::vector<std::vector<NodeId>> adj_;
  int num_edges_ = 0;
};

}  // namespace wydb

#endif  // WYDB_GRAPH_UNDIRECTED_H_
