#include "graph/digraph.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "common/string_util.h"

namespace wydb {

void Digraph::Resize(int n) {
  assert(n >= num_nodes());
  out_.resize(static_cast<size_t>(n));
  in_.resize(static_cast<size_t>(n));
}

NodeId Digraph::AddNode() {
  out_.emplace_back();
  in_.emplace_back();
  return static_cast<NodeId>(out_.size() - 1);
}

void Digraph::AddArc(NodeId from, NodeId to) {
  assert(from >= 0 && from < num_nodes());
  assert(to >= 0 && to < num_nodes());
  out_[from].push_back(to);
  in_[to].push_back(from);
  ++num_arcs_;
}

bool Digraph::HasArc(NodeId from, NodeId to) const {
  const auto& succ = out_[from];
  return std::find(succ.begin(), succ.end(), to) != succ.end();
}

void Digraph::DeduplicateArcs() {
  num_arcs_ = 0;
  for (auto* adj : {&out_, &in_}) {
    for (auto& list : *adj) {
      std::unordered_set<NodeId> seen;
      auto it = std::remove_if(list.begin(), list.end(), [&](NodeId v) {
        return !seen.insert(v).second;
      });
      list.erase(it, list.end());
    }
  }
  for (const auto& list : out_) num_arcs_ += static_cast<int>(list.size());
}

std::string Digraph::DebugString() const {
  std::string s;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    s += StrFormat("%d ->", v);
    for (NodeId w : out_[v]) s += StrFormat(" %d", w);
    s += "\n";
  }
  return s;
}

}  // namespace wydb
