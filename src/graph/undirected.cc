#include "graph/undirected.h"

#include <algorithm>

#include "graph/johnson.h"

namespace wydb {

void UndirectedGraph::AddEdge(NodeId u, NodeId v) {
  if (u == v || HasEdge(u, v)) return;
  adj_[u].push_back(v);
  adj_[v].push_back(u);
  ++num_edges_;
}

bool UndirectedGraph::HasEdge(NodeId u, NodeId v) const {
  const auto& nb = adj_[u];
  return std::find(nb.begin(), nb.end(), v) != nb.end();
}

int UndirectedGraph::CycleSpaceDimension() const {
  const int n = num_nodes();
  std::vector<bool> seen(n, false);
  int components = 0;
  for (NodeId root = 0; root < n; ++root) {
    if (seen[root]) continue;
    ++components;
    std::vector<NodeId> stack{root};
    seen[root] = true;
    while (!stack.empty()) {
      NodeId v = stack.back();
      stack.pop_back();
      for (NodeId w : adj_[v]) {
        if (!seen[w]) {
          seen[w] = true;
          stack.push_back(w);
        }
      }
    }
  }
  return num_edges_ - n + components;
}

std::vector<std::vector<NodeId>> UndirectedGraph::SimpleCycles(
    uint64_t max_cycles) const {
  // Run Johnson on the symmetric digraph; each undirected cycle of length
  // >= 3 appears exactly twice (once per orientation), and every edge
  // {u,v} yields the spurious directed 2-cycle u->v->u. Filter and
  // canonicalize.
  Digraph sym = ToSymmetricDigraph();
  std::vector<std::vector<NodeId>> out;
  CycleEnumOptions opts;
  // Each kept cycle is seen twice, plus one 2-cycle per edge is discarded.
  opts.max_cycles = max_cycles == 0
                        ? 0
                        : 2 * max_cycles + static_cast<uint64_t>(num_edges_);
  EnumerateElementaryCycles(sym, opts, [&](const std::vector<NodeId>& c) {
    if (c.size() < 3) return;
    // Johnson roots every cycle at its minimal vertex, so c[0] is the
    // smallest. Keep the orientation whose second vertex is smaller than
    // the last; the reverse orientation is the duplicate.
    if (c[1] < c.back()) {
      if (max_cycles == 0 || out.size() < max_cycles) out.push_back(c);
    }
  });
  return out;
}

Digraph UndirectedGraph::ToSymmetricDigraph() const {
  Digraph g(num_nodes());
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (NodeId v : adj_[u]) g.AddArc(u, v);
  }
  return g;
}

}  // namespace wydb
