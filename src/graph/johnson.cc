#include "graph/johnson.h"

#include <algorithm>

#include "graph/tarjan.h"

namespace wydb {
namespace {

// State for Johnson's circuit-finding procedure restricted to one SCC and
// rooted at the SCC's least vertex `s`.
class JohnsonSearch {
 public:
  JohnsonSearch(const Digraph& g, const std::vector<bool>& in_scope,
                NodeId s, const CycleEnumOptions& options,
                const std::function<void(const std::vector<NodeId>&)>& emit,
                uint64_t* emitted)
      : g_(g),
        in_scope_(in_scope),
        s_(s),
        options_(options),
        emit_(emit),
        emitted_(emitted),
        blocked_(g.num_nodes(), false),
        block_list_(g.num_nodes()) {}

  bool Run() { return Circuit(s_); }

 private:
  bool Budget() const {
    return options_.max_cycles == 0 || *emitted_ < options_.max_cycles;
  }

  void Unblock(NodeId v) {
    blocked_[v] = false;
    for (NodeId w : block_list_[v]) {
      if (blocked_[w]) Unblock(w);
    }
    block_list_[v].clear();
  }

  // Returns true if a cycle through the current path was found.
  bool Circuit(NodeId v) {
    if (!Budget()) return false;
    bool found = false;
    path_.push_back(v);
    blocked_[v] = true;
    if (options_.max_length == 0 ||
        static_cast<int>(path_.size()) <= options_.max_length) {
      for (NodeId w : g_.OutNeighbors(v)) {
        if (!in_scope_[w] || w < s_) continue;
        if (w == s_) {
          if (Budget()) {
            emit_(path_);
            ++*emitted_;
            found = true;
          }
        } else if (!blocked_[w]) {
          if (Circuit(w)) found = true;
        }
        if (!Budget()) break;
      }
    }
    if (found) {
      Unblock(v);
    } else {
      for (NodeId w : g_.OutNeighbors(v)) {
        if (!in_scope_[w] || w < s_) continue;
        auto& bl = block_list_[w];
        if (std::find(bl.begin(), bl.end(), v) == bl.end()) bl.push_back(v);
      }
    }
    path_.pop_back();
    return found;
  }

  const Digraph& g_;
  const std::vector<bool>& in_scope_;
  const NodeId s_;
  const CycleEnumOptions& options_;
  const std::function<void(const std::vector<NodeId>&)>& emit_;
  uint64_t* emitted_;

  std::vector<bool> blocked_;
  std::vector<std::vector<NodeId>> block_list_;
  std::vector<NodeId> path_;
};

}  // namespace

uint64_t EnumerateElementaryCycles(
    const Digraph& g, const CycleEnumOptions& options,
    const std::function<void(const std::vector<NodeId>&)>& emit) {
  const int n = g.num_nodes();
  uint64_t emitted = 0;

  // Self-loops are cycles of length 1; Johnson's SCC trick skips them, so
  // handle explicitly first.
  for (NodeId v = 0; v < n; ++v) {
    if (options.max_cycles != 0 && emitted >= options.max_cycles) {
      return emitted;
    }
    if (g.HasArc(v, v)) {
      std::vector<NodeId> self{v};
      emit(self);
      ++emitted;
    }
  }

  for (NodeId s = 0; s < n; ++s) {
    if (options.max_cycles != 0 && emitted >= options.max_cycles) break;
    // Restrict to nodes >= s and find the SCC containing s in that
    // subgraph.
    Digraph sub(n);
    for (NodeId v = s; v < n; ++v) {
      for (NodeId w : g.OutNeighbors(v)) {
        if (w >= s && w != v) sub.AddArc(v, w);
      }
    }
    SccResult scc = StronglyConnectedComponents(sub);
    int cs = scc.component[s];
    if (static_cast<int>(scc.members[cs].size()) < 2) continue;
    std::vector<bool> in_scope(n, false);
    for (NodeId v : scc.members[cs]) in_scope[v] = true;

    JohnsonSearch search(sub, in_scope, s, options, emit, &emitted);
    search.Run();
  }
  return emitted;
}

std::vector<std::vector<NodeId>> AllElementaryCycles(
    const Digraph& g, const CycleEnumOptions& options) {
  std::vector<std::vector<NodeId>> cycles;
  EnumerateElementaryCycles(
      g, options,
      [&](const std::vector<NodeId>& c) { cycles.push_back(c); });
  return cycles;
}

}  // namespace wydb
