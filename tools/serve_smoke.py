#!/usr/bin/env python3
"""CI smoke for wydb_serve: drive a live server end to end.

Legs:
1. certify a deadlocking workload (full search, refuted, witness);
2. resubmit it with sites/entities/transactions renamed and reordered —
   must be an exact cache hit, observable in the stats counters, with
   the witness remapped onto the resubmission's own names;
3. certify a certified base, then the base plus one transaction
   (delta-gated incremental search) and a subset of a larger cached
   system (monotone removal) — incremental counters must move;
4. a malformed request (duplicate transaction name) mid-stream — the
   server must answer an error with the offending line echoed and keep
   serving;
5. every certify verdict is cross-checked against `wydb_analyze
   --exact` on the same workload (exit 0 = certified, 1 = refuted);
6. a TCP leg: `--port` serves the same protocol over a socket;
7. a concurrent fault-injection leg: 4 clients at once — one trickling
   bytes at 1 byte/100 ms, one disconnecting mid-request, two normal —
   the normal clients' verdicts must match `wydb_analyze --exact`,
   arrive within a bounded latency, and the server must survive and
   then drain cleanly on SIGTERM (exit 0);
8. a malformed-flood leg: a burst of garbage requests over one session,
   each answered with an isolated error, the server still serving after;
9. a backpressure leg: with --sessions 1, a third simultaneous
   connection is shed with an `at capacity` error while the occupied
   session keeps its slot.

Usage: tools/serve_smoke.py path/to/wydb_serve path/to/wydb_analyze
Exits nonzero with a named complaint on any mismatch.
"""

import random
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

DEADLOCK = (
    "site s1: x\n"
    "site s2: y\n"
    "txn T1: Lx Ly Ux Uy\n"
    "txn T2: Ly Lx Uy Ux\n"
)

# DEADLOCK with everything renamed and the transactions reordered:
# isomorphic, so it must hit the cache.
DEADLOCK_PERMUTED = (
    "site a2: beta\n"
    "site a1: alpha\n"
    "txn B: Lbeta Lalpha Ubeta Ualpha\n"
    "txn A: Lalpha Lbeta Ualpha Ubeta\n"
)

CERTIFIED_BASE = (
    "site s1: x\n"
    "site s2: y\n"
    "txn T1: Lx Ly Ux Uy\n"
    "txn T2: Lx Ly Ux Uy\n"
)

CERTIFIED_PLUS_ONE = CERTIFIED_BASE + "txn T3: Lx Ux\n"

DUPLICATE = "site s1: x\ntxn T: Lx Ux\ntxn T: Lx Ux\n"

ERRORS: list[str] = []


def complain(msg: str) -> None:
    ERRORS.append(msg)
    print(f"serve_smoke: {msg}", file=sys.stderr)


def analyze_verdict(analyze: Path, workload: str) -> bool:
    """True iff `wydb_analyze --exact` certifies the workload."""
    with tempfile.NamedTemporaryFile(
        "w", suffix=".wydb", delete=False
    ) as tmp:
        tmp.write(workload)
        path = tmp.name
    proc = subprocess.run(
        [str(analyze), path, "--exact"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    if proc.returncode not in (0, 1):
        complain(
            f"wydb_analyze --exact exited {proc.returncode} on\n{workload}"
        )
    return proc.returncode == 0


def split_responses(output: str) -> list[list[str]]:
    """Splits a server transcript into '.'-terminated responses."""
    responses, current = [], []
    for line in output.splitlines():
        if line == ".":
            responses.append(current)
            current = []
        else:
            current.append(line)
    if current:
        complain(f"trailing unterminated output: {current}")
    return responses


def response_field(response: list[str], prefix: str) -> str:
    for line in response:
        if line.startswith(prefix):
            return line
    return ""


def expect(cond: bool, msg: str) -> None:
    if not cond:
        complain(msg)


def run_pipe_session(serve: Path, analyze: Path) -> None:
    certifies = [DEADLOCK, DEADLOCK_PERMUTED, CERTIFIED_BASE,
                 CERTIFIED_PLUS_ONE]
    session = (
        f"certify\n{DEADLOCK}end\n"
        f"certify\n{DEADLOCK_PERMUTED}end\n"
        "stats\n"
        f"certify\n{CERTIFIED_BASE}end\n"
        f"certify\n{CERTIFIED_PLUS_ONE}end\n"
        f"certify\n{DUPLICATE}end\n"
        # A fresh server would full-search this; here the larger cached
        # system answers it by monotone removal.
        "stats\n"
        "quit\n"
    )
    # The removal leg needs the base absent from the cache while the
    # larger system is present, so run it on a second server below.
    proc = subprocess.run(
        [str(serve)],
        input=session,
        capture_output=True,
        text=True,
        timeout=300,
    )
    expect(proc.returncode == 0, f"server exited {proc.returncode}")
    responses = split_responses(proc.stdout)
    expect(len(responses) == 8, f"expected 8 responses, got {len(responses)}")
    if len(responses) != 8:
        return
    (full, cached, stats1, base, plus_one, malformed, stats2,
     bye) = responses

    verdict = response_field(full, "verdict: ")
    expect("certified=no source=full" in verdict,
           f"leg 1: want full refutation, got '{verdict}'")
    expect(bool(response_field(full, "witness: ")), "leg 1: no witness")
    expect(bool(response_field(full, "cycle: ")), "leg 1: no cycle")

    verdict = response_field(cached, "verdict: ")
    expect("certified=no source=cache" in verdict,
           f"leg 2: want cache hit, got '{verdict}'")
    witness = response_field(cached, "witness: ")
    expect("A." in witness and "B." in witness,
           f"leg 2: witness not remapped onto request names: '{witness}'")
    stats_line = response_field(stats1, "stats: ")
    expect("cache_hits=1" in stats_line,
           f"leg 2: cache_hits not bumped: '{stats_line}'")

    verdict = response_field(plus_one, "verdict: ")
    expect("source=incremental" in verdict,
           f"leg 3: +1 txn not incremental: '{verdict}'")

    error = response_field(malformed, "error: ")
    expect("duplicate transaction 'T'" in error,
           f"leg 4: want duplicate-name error, got '{error}'")
    expect(response_field(malformed, "echo: ") == "echo: txn T: Lx Ux",
           "leg 4: offending line not echoed")

    stats_line = response_field(stats2, "stats: ")
    expect("errors=1" in stats_line,
           f"leg 4: errors counter: '{stats_line}'")
    expect("delta_searches=1" in stats_line,
           f"leg 3: delta_searches counter: '{stats_line}'")
    expect(bye == ["bye"], f"quit: got {bye}")

    # Leg 5: server verdicts must agree with wydb_analyze --exact.
    served = [full, cached, base, plus_one]
    for workload, response in zip(certifies, served):
        v = response_field(response, "verdict: ")
        server_says = "certified=yes" in v
        analyzer_says = analyze_verdict(analyze, workload)
        expect(
            server_says == analyzer_says,
            f"verdict mismatch (server {v!r} vs --exact "
            f"{'certified' if analyzer_says else 'refuted'}) on\n{workload}",
        )

    # Monotone-removal leg on a fresh server: cache the 3-txn system,
    # then certify its 2-txn subset.
    session = (
        f"certify\n{CERTIFIED_PLUS_ONE}end\n"
        f"certify\n{CERTIFIED_BASE}end\n"
        "stats\nquit\n"
    )
    proc = subprocess.run(
        [str(serve)], input=session, capture_output=True, text=True,
        timeout=300,
    )
    responses = split_responses(proc.stdout)
    expect(len(responses) == 4, "removal leg: expected 4 responses")
    if len(responses) == 4:
        verdict = response_field(responses[1], "verdict: ")
        expect("certified=yes source=incremental states=0" in verdict,
               f"removal leg: want monotone shortcut, got '{verdict}'")
        stats_line = response_field(responses[2], "stats: ")
        expect("monotone=1" in stats_line,
               f"removal leg: monotone counter: '{stats_line}'")


def run_tcp_session(serve: Path) -> None:
    for _ in range(5):
        port = random.randint(20000, 60000)
        proc = subprocess.Popen(
            [str(serve), "--port", str(port)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            deadline = time.time() + 10
            sock = None
            while time.time() < deadline and proc.poll() is None:
                try:
                    sock = socket.create_connection(
                        ("127.0.0.1", port), timeout=2
                    )
                    break
                except OSError:
                    time.sleep(0.1)
            if sock is None:
                continue  # Port taken or server died; retry another.
            with sock:
                sock.sendall(
                    f"certify\n{DEADLOCK}end\nstats\nquit\n".encode()
                )
                sock.settimeout(30)
                data = b""
                while b"bye" not in data:
                    chunk = sock.recv(4096)
                    if not chunk:
                        break
                    data += chunk
            text = data.decode()
            expect("certified=no source=full" in text,
                   f"tcp leg: verdict missing in {text!r}")
            expect("stats: requests=" in text,
                   f"tcp leg: stats missing in {text!r}")
            expect("bye" in text, f"tcp leg: bye missing in {text!r}")
            return
        finally:
            proc.terminate()
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
    complain("tcp leg: could not establish a connection on any port")


def start_server(serve: Path, extra_args: list[str]):
    """Starts wydb_serve on a random port; returns (proc, port) or None."""
    for _ in range(5):
        port = random.randint(20000, 60000)
        proc = subprocess.Popen(
            [str(serve), "--port", str(port), *extra_args],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        deadline = time.time() + 10
        while time.time() < deadline and proc.poll() is None:
            try:
                with socket.create_connection(("127.0.0.1", port),
                                              timeout=2):
                    pass
                return proc, port
            except OSError:
                time.sleep(0.1)
        proc.terminate()
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()
    return None


def recv_until_bye(sock: socket.socket, timeout: float = 60.0) -> str:
    sock.settimeout(timeout)
    data = b""
    try:
        while b"bye" not in data:
            chunk = sock.recv(4096)
            if not chunk:
                break
            data += chunk
    except OSError as e:
        complain(f"recv failed: {e}")
    return data.decode(errors="replace")


def run_concurrent_faults_session(serve: Path, analyze: Path) -> None:
    """Leg 7: 4 concurrent clients — slow, disconnecting, two normal."""
    started = start_server(serve, ["--sessions", "4"])
    if started is None:
        complain("concurrent leg: could not start the server")
        return
    proc, port = started
    results: dict[str, str] = {}
    latencies: dict[str, float] = {}

    def normal_client(name: str, workload: str) -> None:
        t0 = time.time()
        try:
            with socket.create_connection(("127.0.0.1", port),
                                          timeout=10) as sock:
                sock.sendall(
                    f"certify\n{workload}end\nstats\nquit\n".encode()
                )
                results[name] = recv_until_bye(sock)
        except OSError as e:
            complain(f"concurrent leg: {name} failed: {e}")
        latencies[name] = time.time() - t0

    def slow_client() -> None:
        # One byte every 100 ms: a request that takes ~1.2 s to arrive
        # must not stall anyone else's session.
        try:
            with socket.create_connection(("127.0.0.1", port),
                                          timeout=10) as sock:
                for byte in b"stats\nquit\n":
                    sock.sendall(bytes([byte]))
                    time.sleep(0.1)
                results["slow"] = recv_until_bye(sock)
        except OSError as e:
            complain(f"concurrent leg: slow client failed: {e}")

    def disconnecting_client() -> None:
        # Half a certify request, then a hard close mid-request: the
        # server must treat it as that session's EOF and nothing more.
        try:
            sock = socket.create_connection(("127.0.0.1", port), timeout=10)
            sock.sendall(b"certify\nsite s1: x\ntxn T1:")
            time.sleep(0.2)
            sock.close()
        except OSError as e:
            complain(f"concurrent leg: disconnector failed: {e}")

    threads = [
        threading.Thread(target=slow_client),
        threading.Thread(target=disconnecting_client),
        threading.Thread(target=normal_client, args=("n1", DEADLOCK)),
        threading.Thread(target=normal_client, args=("n2", CERTIFIED_BASE)),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)

    for name, workload, want in (("n1", DEADLOCK, False),
                                 ("n2", CERTIFIED_BASE, True)):
        text = results.get(name, "")
        served = "certified=yes" in text
        expect(("verdict: " in text) and not ("error: " in text),
               f"concurrent leg: {name} got no clean verdict: {text!r}")
        expect(served == want,
               f"concurrent leg: {name} verdict flipped: {text!r}")
        expect(served == analyze_verdict(analyze, workload),
               f"concurrent leg: {name} disagrees with --exact")
        # Bounded latency despite the 1.2 s slow-trickle neighbor: these
        # tiny systems certify in milliseconds, so anything near the
        # slow client's timescale means sessions serialized.
        expect(latencies.get(name, 999) < 30,
               f"concurrent leg: {name} took {latencies.get(name):.1f}s")
    expect("stats: requests=" in results.get("slow", ""),
           f"concurrent leg: slow client starved: {results.get('slow')!r}")
    expect(proc.poll() is None,
           "concurrent leg: server died during the fault mix")

    # Graceful drain: SIGTERM must flush and exit 0, not be killed.
    proc.terminate()
    try:
        code = proc.wait(timeout=30)
        expect(code == 0, f"concurrent leg: drain exited {code}")
    except subprocess.TimeoutExpired:
        proc.kill()
        complain("concurrent leg: server hung on SIGTERM drain")


def run_malformed_flood_session(serve: Path) -> None:
    """Leg 8: a burst of garbage requests never kills the stream."""
    started = start_server(serve, [])
    if started is None:
        complain("flood leg: could not start the server")
        return
    proc, port = started
    try:
        flood = []
        for i in range(50):
            flood.append(f"frobnicate {i}\n")
            flood.append(f"certify\n{DUPLICATE}end\n")
        flood.append(f"certify\n{CERTIFIED_BASE}end\n")
        flood.append("stats\nquit\n")
        with socket.create_connection(("127.0.0.1", port), timeout=10) as s:
            s.sendall("".join(flood).encode())
            text = recv_until_bye(s)
        expect(text.count("error: ") == 100,
               f"flood leg: want 100 isolated errors, got "
               f"{text.count('error: ')}")
        expect("certified=yes" in text,
               "flood leg: good request after the flood not served")
        expect("errors=100" in text, "flood leg: errors counter")
        expect(proc.poll() is None, "flood leg: server died")
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()


def run_backpressure_session(serve: Path) -> None:
    """Leg 9: --sessions 1 sheds the connection past cap + queue."""
    started = start_server(serve, ["--sessions", "1"])
    if started is None:
        complain("backpressure leg: could not start the server")
        return
    proc, port = started
    try:
        # Let the start_server probe connection's session finish first,
        # or it would transiently hold the single slot.
        time.sleep(0.3)
        # Occupy the one session slot without finishing the request...
        holder = socket.create_connection(("127.0.0.1", port), timeout=10)
        holder.sendall(b"certify\n")  # Mid-request: the slot stays held.
        time.sleep(0.3)
        # ...fill the one queue slot...
        waiter = socket.create_connection(("127.0.0.1", port), timeout=10)
        time.sleep(0.3)
        # ...and the next connection must be shed, immediately.
        with socket.create_connection(("127.0.0.1", port), timeout=10) as s:
            s.settimeout(10)
            data = b""
            try:
                while b"\n" not in data:
                    chunk = s.recv(4096)
                    if not chunk:
                        break
                    data += chunk
            except OSError as e:
                complain(f"backpressure leg: shed read failed: {e}")
        expect(b"at capacity" in data,
               f"backpressure leg: want shed error, got {data!r}")
        # The held session is still alive: finish its request normally.
        holder.sendall(f"{CERTIFIED_BASE}end\nquit\n".encode())
        text = recv_until_bye(holder)
        expect("certified=yes" in text,
               f"backpressure leg: holder's request lost: {text!r}")
        holder.close()
        # The queued connection now gets the freed slot.
        waiter.sendall(b"stats\nquit\n")
        text = recv_until_bye(waiter)
        expect("stats: requests=" in text,
               f"backpressure leg: queued connection starved: {text!r}")
        waiter.close()
        expect(proc.poll() is None, "backpressure leg: server died")
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    serve, analyze = Path(sys.argv[1]), Path(sys.argv[2])
    run_pipe_session(serve, analyze)
    run_tcp_session(serve)
    run_concurrent_faults_session(serve, analyze)
    run_malformed_flood_session(serve)
    run_backpressure_session(serve)
    if not ERRORS:
        print("serve_smoke: OK (pipe + tcp + concurrent-fault + flood + "
              "backpressure sessions, verdicts cross-checked against "
              "wydb_analyze --exact)")
    return 1 if ERRORS else 0


if __name__ == "__main__":
    sys.exit(main())
