#!/usr/bin/env python3
"""Docs consistency gate for CI.

1. Every relative markdown link in README.md, DESIGN.md and docs/*.md
   must resolve to an existing file or directory.
2. The `wydb_analyze --help` text and the README CLI tour must agree:
   every subcommand and every `--flag` the binary advertises appears in
   README.md, and every `--flag` the README documents is advertised by
   the binary.

Usage: tools/check_docs.py [path/to/wydb_analyze]
Run from the repository root. The binary argument is optional; without
it the help/README sync check is skipped (link checking still runs).
"""

import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOC_FILES = [REPO / "README.md", REPO / "DESIGN.md"] + sorted(
    (REPO / "docs").glob("*.md")
)

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FLAG_RE = re.compile(r"--[A-Za-z][A-Za-z-]*")
SUBCOMMAND_RE = re.compile(r"^  wydb_analyze (\w+)", re.MULTILINE)

# Flags that are prose (cmake/ctest/benchmark), not wydb_analyze options.
FLAG_ALLOWLIST = {
    "--help",
    "--build",
    "--output-on-failure",
    "--benchmark_filter",
}


def check_links() -> list[str]:
    errors = []
    for doc in DOC_FILES:
        if not doc.exists():
            errors.append(f"{doc.relative_to(REPO)}: file missing")
            continue
        for lineno, line in enumerate(doc.read_text().splitlines(), 1):
            for target in LINK_RE.findall(line):
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                path = target.split("#", 1)[0]
                if not path:
                    continue  # Pure in-page anchor.
                resolved = (doc.parent / path).resolve()
                if not resolved.exists():
                    errors.append(
                        f"{doc.relative_to(REPO)}:{lineno}: broken link "
                        f"'{target}'"
                    )
    return errors


def check_help_sync(binary: Path) -> list[str]:
    errors = []
    readme = (REPO / "README.md").read_text()
    try:
        help_text = subprocess.run(
            [str(binary), "--help"],
            capture_output=True,
            text=True,
            check=True,
            timeout=30,
        ).stdout
    except (OSError, subprocess.SubprocessError) as exc:
        return [f"cannot run {binary} --help: {exc}"]

    for sub in set(SUBCOMMAND_RE.findall(help_text)):
        if not re.search(rf"`{sub}`|wydb_analyze {sub}", readme):
            errors.append(f"subcommand '{sub}' in --help but not README.md")

    help_flags = set(FLAG_RE.findall(help_text)) - {"--help"}
    readme_flags = set(FLAG_RE.findall(readme)) - FLAG_ALLOWLIST
    for flag in sorted(help_flags - readme_flags):
        errors.append(f"flag '{flag}' in --help but not README.md")
    for flag in sorted(readme_flags - help_flags):
        errors.append(f"flag '{flag}' in README.md but not --help")
    return errors


def main() -> int:
    errors = check_links()
    if len(sys.argv) > 1:
        errors += check_help_sync(Path(sys.argv[1]))
    else:
        print("note: no wydb_analyze binary given; skipping help sync check")
    for error in errors:
        print(f"check_docs: {error}", file=sys.stderr)
    if not errors:
        print(f"check_docs: OK ({len(DOC_FILES)} docs checked)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
