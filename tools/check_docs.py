#!/usr/bin/env python3
"""Docs consistency gate for CI.

1. Every relative markdown link in README.md, DESIGN.md and docs/*.md
   must resolve to an existing file or directory.
2. The `--help` texts and the README CLI tour must agree: every
   subcommand and every `--flag` the binaries advertise appears in
   README.md, and every `--flag` the README documents is advertised by
   one of the binaries. The README documents both `wydb_analyze` and
   `wydb_serve`, so this check needs both binaries to run.
3. CLI smoke: misuse of the binary (no arguments, unknown subcommand or
   file, subcommand without a workload, flag without its value, unknown
   option) must exit nonzero and print usage to stderr — never crash or
   silently succeed. The `run` subcommand additionally enforces the
   fast-path gate: `--no-detection` on a workload that Theorem 4 does
   not certify safe + deadlock-free is refused (exit 2, "not certified"
   on stderr), while a certified workload runs it and prints exactly one
   deterministic `result:` line at MPL 1.
4. Server smoke: `wydb_serve` flag misuse exits 2 with usage on stderr
   (including the compact-encoding refusal), and a short scripted
   stdin/stdout session exercises the line protocol: certify, exact
   cache hit on resubmission, error isolation, stats, quit.

Usage: tools/check_docs.py [path/to/wydb_analyze [path/to/wydb_serve]]
Run from the repository root. The binary arguments are optional;
without them the corresponding checks are skipped (link checking still
runs), and help/README sync is skipped unless BOTH are given, since
README flags are the union of the two binaries' flags.
"""

import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOC_FILES = [REPO / "README.md", REPO / "DESIGN.md"] + sorted(
    (REPO / "docs").glob("*.md")
)

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FLAG_RE = re.compile(r"--[A-Za-z][A-Za-z-]*")
SUBCOMMAND_RE = re.compile(r"^  wydb_analyze (\w+)", re.MULTILINE)

# Flags that are prose (cmake/ctest/benchmark/compare_bench), not
# wydb_analyze options.
FLAG_ALLOWLIST = {
    "--help",
    "--build",
    "--output-on-failure",
    "--benchmark_filter",
    "--benchmark",  # FLAG_RE stops at '_': --benchmark_out etc.
    "--threshold",
}


def check_links() -> list[str]:
    errors = []
    for doc in DOC_FILES:
        if not doc.exists():
            errors.append(f"{doc.relative_to(REPO)}: file missing")
            continue
        for lineno, line in enumerate(doc.read_text().splitlines(), 1):
            for target in LINK_RE.findall(line):
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                path = target.split("#", 1)[0]
                if not path:
                    continue  # Pure in-page anchor.
                resolved = (doc.parent / path).resolve()
                if not resolved.exists():
                    errors.append(
                        f"{doc.relative_to(REPO)}:{lineno}: broken link "
                        f"'{target}'"
                    )
    return errors


def check_help_sync(analyze: Path, serve: Path) -> list[str]:
    errors = []
    readme = (REPO / "README.md").read_text()
    help_texts = {}
    for binary in (analyze, serve):
        try:
            help_texts[binary] = subprocess.run(
                [str(binary), "--help"],
                capture_output=True,
                text=True,
                check=True,
                timeout=30,
            ).stdout
        except (OSError, subprocess.SubprocessError) as exc:
            return [f"cannot run {binary} --help: {exc}"]

    for sub in set(SUBCOMMAND_RE.findall(help_texts[analyze])):
        if not re.search(rf"`{sub}`|wydb_analyze {sub}", readme):
            errors.append(f"subcommand '{sub}' in --help but not README.md")

    # README flags are the union over both binaries: the tours document
    # each binary's own flags, and several (--engine, --max-states, ...)
    # are deliberately shared.
    help_flags = set()
    for text in help_texts.values():
        help_flags |= set(FLAG_RE.findall(text))
    help_flags -= {"--help"}
    readme_flags = set(FLAG_RE.findall(readme)) - FLAG_ALLOWLIST
    for flag in sorted(help_flags - readme_flags):
        errors.append(f"flag '{flag}' in --help but not README.md")
    for flag in sorted(readme_flags - help_flags):
        errors.append(f"flag '{flag}' in README.md but not any --help")
    return errors


# The `--stats` line printed under each exact check: one greppable
# `stats:` token followed by fixed key=value fields (sweeps parse this).
STATS_LINE_RE = re.compile(
    r"^    stats: states_interned=\d+ sleep_set_pruned=\d+"
    r" deadline_polls=\d+"
    r" orbits=\d+ largest_orbit=\d+ bytes_per_state=\d+(?:\.\d+)?"
    r" arena_bytes=\d+ probe_table_bytes=\d+ spilled_levels=\d+"
    r" fingerprint_collision_bound=[0-9.eE+-]+$",
    re.MULTILINE,
)

# The deterministic `run` result line. The certified workload has 3
# transactions, so --mpl 1 --rounds 5 commits exactly 15 times with no
# aborts, on the live engine and the simulator alike (MPL-1 determinism
# is part of the live engine's contract).
LIVE_RESULT_RE = re.compile(
    r"^result: engine=live policy=block commits=15 aborts=0"
    r" abort_rate=0\.000 deadlocked=0 gave_up=0$",
    re.MULTILINE,
)
SIM_RESULT_RE = re.compile(
    r"^result: engine=sim policy=block commits=15 aborts=0"
    r" abort_rate=0\.000 deadlocked=0 gave_up=0$",
    re.MULTILINE,
)

# The shared workload (3 transactions, 2 S-locks per round) commits the
# same 15 rounds at MPL 1 and grants exactly 30 shared locks; its perf
# line must carry the shared-mode counters (the result line format is
# mode-agnostic and shared by both workloads).
SHARED_PERF_RE = re.compile(
    r"^perf: .*shared_grants=30 upgrades=0 upgrade_aborts=0$",
    re.MULTILINE,
)

# The sweep CSV header, shared-mode traffic columns included.
SWEEP_CSV_HEADER_RE = re.compile(
    r"^policy,degree,mpl,runs,total_commits,total_aborts,avg_throughput,"
    r"avg_abort_rate,avg_p50,avg_p95,avg_p99,deadlocked_runs,"
    r"budget_exhausted_runs,gave_up_runs,shared_grants,upgrades,"
    r"upgrade_aborts$",
    re.MULTILINE,
)


def check_cli_smoke(binary: Path) -> list[str]:
    """Misuse must exit nonzero with usage on stderr; --help must work;
    the --stats output format must hold (one stats line per exact check,
    matching STATS_LINE_RE); the run subcommand's certification gate and
    deterministic result line must hold."""
    sample = REPO / "tools" / "sample_workload.wydb"
    certified = REPO / "tools" / "certified_workload.wydb"
    shared = REPO / "tools" / "shared_workload.wydb"
    # (args, want_code, want_stderr_substring, want_stdout_match)
    # where want_stdout_match is None or a (regex, expected_count) pair.
    # The sample workload is REFUTED, so plain analysis exits 1.
    cases = [
        (["--help"], 0, None, None),
        ([], 2, "usage", None),
        (["definitely-not-a-subcommand"], 2, "usage", None),
        (["simulate"], 2, "usage", None),
        (["sweep"], 2, "usage", None),
        (["--exact"], 2, "usage", None),  # Option where the workload goes.
        ([str(sample), "--no-such-option"], 2, "usage", None),
        ([str(sample), "--simulate"], 2, "needs a value", None),
        ([str(sample), "--search-threads"], 2, "needs a value", None),
        ([str(sample), "--search-threads", "four"], 2,
         "non-negative integer", None),
        ([str(sample), "--simulate", "-5"], 2, "non-negative integer",
         None),
        (["simulate", str(sample), "--policy"], 2, "needs a value", None),
        ([str(sample), "--engine"], 2, "needs a value", None),
        ([str(sample), "--engine", "bogus"], 2,
         "incremental, reference, parallel, or reduced", None),
        # --stats implies --exact; both exact checks print a stats line.
        ([str(sample), "--stats"], 1, None, (STATS_LINE_RE, 2)),
        ([str(sample), "--engine", "reduced", "--stats",
          "--search-threads", "2"], 1, None, (STATS_LINE_RE, 2)),
        # Store memory modes (DESIGN.md §9): misuse exits 2 before any
        # search runs; well-formed runs keep the stats-line format.
        ([str(sample), "--store-encoding"], 2, "needs a value", None),
        ([str(sample), "--store-encoding", "bogus"], 2,
         "plain, delta, or compact", None),
        ([str(sample), "--mem-budget-mb"], 2, "needs a value", None),
        ([str(sample), "--mem-budget-mb", "four"], 2,
         "non-negative integer", None),
        ([str(sample), "--max-states"], 2, "needs a value", None),
        ([str(sample), "--max-states", "many"], 2,
         "non-negative integer", None),
        ([str(sample), "--store-encoding", "compact"], 2,
         "--allow-compaction", None),
        ([str(sample), "--store-encoding", "delta", "--engine",
          "incremental"], 2, "parallel or reduced", None),
        ([str(sample), "--store-encoding", "compact", "--allow-compaction",
          "--engine", "reduced"], 2, "parallel engine", None),
        ([str(sample), "--store-encoding", "delta", "--stats"], 1, None,
         (STATS_LINE_RE, 2)),
        ([str(sample), "--store-encoding", "delta", "--engine", "reduced",
          "--stats"], 1, None, (STATS_LINE_RE, 2)),
        ([str(sample), "--store-encoding", "compact", "--allow-compaction",
          "--stats"], 1, None, (STATS_LINE_RE, 2)),
        ([str(sample), "--mem-budget-mb", "1", "--stats"], 1, None,
         (STATS_LINE_RE, 2)),
        # Live-engine `run` misuse contract (DESIGN.md §10): bad flags
        # exit 2 before any thread starts.
        (["run"], 2, "usage", None),
        (["run", str(sample), "--policy"], 2, "needs a value", None),
        (["run", str(sample), "--policy", "bogus"], 2,
         "block, detect, wound-wait, or wait-die", None),
        (["run", str(sample), "--engine", "bogus"], 2, "live or sim",
         None),
        (["run", str(sample), "--no-such-option"], 2, "usage", None),
        (["run", str(sample), "--rounds", "two"], 2,
         "non-negative integer", None),
        # The fast-path gate: the sample workload is refuted, so the
        # detection-free run is refused outright...
        (["run", str(sample), "--no-detection"], 2, "not certified",
         None),
        # ...while the certified workload runs it, deterministically at
        # MPL 1, and the simulator reproduces the exact counts.
        (["run", str(certified), "--no-detection", "--mpl", "1",
          "--rounds", "5"], 0, None, (LIVE_RESULT_RE, 1)),
        (["run", str(certified), "--engine", "sim", "--policy", "block",
          "--rounds", "5"], 0, None, (SIM_RESULT_RE, 1)),
        # Shared/exclusive lock modes (DESIGN.md §11): the S-mode
        # workload is certified, so plain analysis exits 0...
        ([str(shared)], 0, None, None),
        # ...the detection-free fast path accepts it with the same MPL-1
        # determinism contract as the X-only workload, and the perf line
        # carries the exact shared-mode counters on both engines.
        (["run", str(shared), "--no-detection", "--mpl", "1",
          "--rounds", "5"], 0, None, (LIVE_RESULT_RE, 1)),
        (["run", str(shared), "--no-detection", "--mpl", "1",
          "--rounds", "5"], 0, None, (SHARED_PERF_RE, 1)),
        (["run", str(shared), "--engine", "sim", "--policy", "block",
          "--rounds", "5"], 0, None, (SIM_RESULT_RE, 1)),
        (["run", str(shared), "--engine", "sim", "--policy", "block",
          "--rounds", "5"], 0, None, (SHARED_PERF_RE, 1)),
        # The generated read-mostly farm: misuse of the sweep knobs exits
        # 2 with a named complaint before any session runs...
        (["sweep", "--gen"], 2, "needs a value", None),
        (["sweep", "--gen", "bogus"], 2, "read-mostly", None),
        (["sweep", "--gen", "read-mostly", "--shared-fraction", "200"], 2,
         "0-100", None),
        (["sweep", "--gen", "read-mostly", "--workers", "two"], 2,
         "non-negative integer", None),
        (["sweep", str(sample), "--workers", "2"], 2,
         "need --gen read-mostly", None),
        (["sweep", str(sample), "--gen", "read-mostly"], 2,
         "give one or the other", None),
        # ...and the happy path emits the CSV with the shared-mode
        # traffic columns.
        (["sweep", "--gen", "read-mostly", "--workers", "2",
          "--read-entities", "2", "--runs", "1"], 0, None,
         (SWEEP_CSV_HEADER_RE, 1)),
    ]
    errors = []
    for args, want_code, want_stderr, want_stdout in cases:
        label = "wydb_analyze " + " ".join(args)
        try:
            proc = subprocess.run(
                [str(binary)] + args,
                capture_output=True,
                text=True,
                timeout=60,
            )
        except (OSError, subprocess.SubprocessError) as exc:
            errors.append(f"{label}: failed to run: {exc}")
            continue
        if proc.returncode != want_code:
            errors.append(
                f"{label}: exit {proc.returncode}, want {want_code}"
            )
        if want_stderr is not None and want_stderr not in proc.stderr:
            errors.append(f"{label}: stderr lacks '{want_stderr}'")
        if want_stdout is not None:
            regex, want_count = want_stdout
            matches = regex.findall(proc.stdout)
            if len(matches) != want_count:
                errors.append(
                    f"{label}: expected {want_count} stdout lines "
                    f"matching {regex.pattern!r}, found {len(matches)}"
                )
    return errors


def check_serve_smoke(binary: Path) -> list[str]:
    """wydb_serve misuse exits 2 with usage on stderr; a scripted
    stdin/stdout session exercises the protocol end to end."""
    certified = REPO / "tools" / "certified_workload.wydb"
    misuse = [
        (["--port"], "needs a value"),
        (["--port", "0"], "1-65535"),
        (["--max-states", "many"], "non-negative integer"),
        (["--cache-entries", "0"], "at least 1"),
        (["--engine", "bogus"],
         "incremental, reference, parallel, or reduced"),
        (["--store-encoding", "bogus"], "plain or delta"),
        (["--store-encoding", "compact"], "refused"),
        (["--preload"], "needs a value"),
        # I/O failure, not flag misuse: exits 2 but without usage.
        (["--preload", "/no/such/file.wydb", "--no-usage"], "cannot open"),
        (["--no-such-option"], "unknown option"),
        # Fault-tolerant serving knobs (docs/SERVE.md): the session cap
        # must admit at least one session, and the journal tuning flags
        # are meaningless without a journal to tune.
        (["--sessions"], "needs a value"),
        (["--sessions", "0"], "at least 1"),
        (["--journal"], "needs a value"),
        (["--journal-fsync", "1"], "need --journal"),
        (["--journal-compact", "0"], "need --journal"),
    ]
    errors = []
    for args, want_stderr in misuse:
        want_usage = "--no-usage" not in args
        args = [a for a in args if a != "--no-usage"]
        label = "wydb_serve " + " ".join(args)
        try:
            proc = subprocess.run(
                [str(binary)] + args,
                capture_output=True,
                text=True,
                timeout=30,
                stdin=subprocess.DEVNULL,
            )
        except (OSError, subprocess.SubprocessError) as exc:
            errors.append(f"{label}: failed to run: {exc}")
            continue
        if proc.returncode != 2:
            errors.append(f"{label}: exit {proc.returncode}, want 2")
        if want_stderr not in proc.stderr:
            errors.append(f"{label}: stderr lacks '{want_stderr}'")
        if want_usage and "usage" not in proc.stderr:
            errors.append(f"{label}: stderr lacks usage")

    # Protocol drive: certify the certified workload twice (the second
    # must be an exact cache hit), interleave a malformed request that
    # must not end the stream, and read the counters back.
    workload = certified.read_text()
    session = (
        "certify\n" + workload + "end\n"
        "certify\nsite s1: x\ntxn T: Lx Ux\ntxn T: Lx Ux\nend\n"
        "certify\n" + workload + "end\n"
        "stats\n"
        "quit\n"
    )
    label = "wydb_serve <protocol session>"
    try:
        proc = subprocess.run(
            [str(binary), "--preload", str(certified)],
            input=session,
            capture_output=True,
            text=True,
            timeout=60,
        )
    except (OSError, subprocess.SubprocessError) as exc:
        return errors + [f"{label}: failed to run: {exc}"]
    if proc.returncode != 0:
        errors.append(f"{label}: exit {proc.returncode}, want 0")
    out = proc.stdout
    for want in [
        "verdict: certified=yes source=cache",  # preloaded, so both hit
        "error: line 3: duplicate transaction 'T' (first defined at "
        "line 2)",
        "echo: txn T: Lx Ux",
        "cache_hits=2",
        "errors=1",
        "bye",
    ]:
        if want not in out:
            errors.append(f"{label}: stdout lacks '{want}'")
    dots = sum(1 for line in out.splitlines() if line == ".")
    if dots != 5:
        errors.append(
            f"{label}: expected 5 '.'-terminated responses, saw {dots}"
        )
    return errors


def main() -> int:
    errors = check_links()
    analyze = Path(sys.argv[1]) if len(sys.argv) > 1 else None
    serve = Path(sys.argv[2]) if len(sys.argv) > 2 else None
    if analyze and serve:
        errors += check_help_sync(analyze, serve)
    else:
        print("note: need both wydb_analyze and wydb_serve for help "
              "sync; skipping")
    if analyze:
        errors += check_cli_smoke(analyze)
    else:
        print("note: no wydb_analyze binary given; skipping CLI smoke")
    if serve:
        errors += check_serve_smoke(serve)
    else:
        print("note: no wydb_serve binary given; skipping server smoke")
    for error in errors:
        print(f"check_docs: {error}", file=sys.stderr)
    if not errors:
        print(f"check_docs: OK ({len(DOC_FILES)} docs checked)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
