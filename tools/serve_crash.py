#!/usr/bin/env python3
"""CI crash-recovery check for wydb_serve's verdict journal.

The script drives the acceptance scenario end to end:

1. start wydb_serve with --journal and --journal-fsync 1, certify a
   batch of distinct workloads over TCP, and wait for every verdict;
2. fire one more certify and SIGKILL (kill -9) the server without
   waiting — the canonical mid-append crash;
3. restart the server on the SAME journal: recovery must replay every
   completed verdict (journal_recovered counter), losing at most the
   in-flight one;
4. resubmit a renamed/reordered (isomorphic) twin of every pre-kill
   workload: each must be served `source=cache` with zero full
   certifications — the recovered cache keys are canonical;
5. corrupt the journal tail with garbage bytes and restart again: the
   server must salvage the valid prefix (journal_salvaged_bytes > 0)
   and keep serving rather than refuse startup.

Usage: tools/serve_crash.py path/to/wydb_serve
Exits nonzero with a named complaint on any failed expectation.
"""

import random
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ERRORS: list[str] = []


def complain(msg: str) -> None:
    ERRORS.append(msg)
    print(f"serve_crash: {msg}", file=sys.stderr)


def expect(cond: bool, msg: str) -> None:
    if not cond:
        complain(msg)


DEADLOCK = (
    "site s1: x\n"
    "site s2: y\n"
    "txn T1: Lx Ly Ux Uy\n"
    "txn T2: Ly Lx Uy Ux\n"
)

DEADLOCK_PERMUTED = (
    "site a2: beta\n"
    "site a1: alpha\n"
    "txn B: Lbeta Lalpha Ubeta Ualpha\n"
    "txn A: Lalpha Lbeta Ualpha Ubeta\n"
)


def certified_family(k: int) -> tuple[str, str]:
    """A k-transaction certified system and an isomorphic twin with
    sites, entities, and transactions renamed and reordered."""
    base = "site s1: x\nsite s2: y\n" + "".join(
        f"txn T{i}: Lx Ly Ux Uy\n" for i in range(1, k + 1)
    )
    twin = "site b: q\nsite a: p\n" + "".join(
        f"txn W{i}: Lp Lq Up Uq\n" for i in range(k, 0, -1)
    )
    return base, twin


WORKLOADS = [(DEADLOCK, DEADLOCK_PERMUTED)] + [
    certified_family(k) for k in (2, 3, 4, 5)
]


def start_server(serve: Path, extra_args: list[str]):
    for _ in range(5):
        port = random.randint(20000, 60000)
        proc = subprocess.Popen(
            [str(serve), "--port", str(port), *extra_args],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        deadline = time.time() + 10
        while time.time() < deadline and proc.poll() is None:
            try:
                with socket.create_connection(("127.0.0.1", port),
                                              timeout=2):
                    pass
                return proc, port
            except OSError:
                time.sleep(0.1)
        proc.terminate()
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()
    return None


def recv_responses(sock: socket.socket, count: int,
                   timeout: float = 120.0) -> list[str]:
    """Reads until `count` '.'-terminated responses have arrived."""
    sock.settimeout(timeout)
    data = b""
    try:
        while data.decode(errors="replace").count("\n.\n") < count:
            chunk = sock.recv(4096)
            if not chunk:
                break
            data += chunk
    except OSError as e:
        complain(f"recv failed: {e}")
    text = data.decode(errors="replace")
    responses, current = [], []
    for line in text.splitlines():
        if line == ".":
            responses.append("\n".join(current))
            current = []
        else:
            current.append(line)
    return responses


def stats_value(stats_line: str, key: str) -> int:
    for tok in stats_line.split():
        if tok.startswith(key + "="):
            try:
                return int(tok[len(key) + 1:])
            except ValueError:
                return -1
    return -1


def kill_dash_nine(proc: subprocess.Popen) -> None:
    proc.send_signal(signal.SIGKILL)
    try:
        proc.wait(timeout=10)
    except subprocess.TimeoutExpired:
        complain("server survived SIGKILL?!")


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    serve = Path(sys.argv[1])
    journal = Path(tempfile.mkdtemp(prefix="wydb_crash_")) / "verdicts.wyj"
    args = ["--journal", str(journal), "--journal-fsync", "1"]

    # --- Phase 1: load the journal, then kill -9 mid-append. ---
    started = start_server(serve, args)
    if started is None:
        complain("phase 1: could not start the server")
        return 1
    proc, port = started
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        for base, _ in WORKLOADS:
            sock.sendall(f"certify\n{base}end\n".encode())
        responses = recv_responses(sock, len(WORKLOADS))
        expect(len(responses) == len(WORKLOADS),
               f"phase 1: {len(responses)}/{len(WORKLOADS)} verdicts")
        for resp in responses:
            expect("verdict: " in resp and "error: " not in resp,
                   f"phase 1: bad response: {resp!r}")
        # One more request in flight, then the axe — no waiting, so the
        # kill lands during (or before) its append.
        sock.sendall(f"certify\n{certified_family(6)[0]}end\n".encode())
        kill_dash_nine(proc)
    expect(journal.exists(), "phase 1: journal file never created")

    # --- Phase 2: restart on the same journal; every completed verdict
    # must be back, and isomorphic twins must all be cache hits. ---
    started = start_server(serve, args)
    if started is None:
        complain("phase 2: could not restart on the journal")
        return 1
    proc, port = started
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        sock.sendall(b"stats\n")
        (stats,) = recv_responses(sock, 1)
        recovered = stats_value(stats, "journal_recovered")
        expect(recovered >= len(WORKLOADS),
               f"phase 2: recovered {recovered} < {len(WORKLOADS)}: {stats}")
        expect(stats_value(stats, "cache_size") >= len(WORKLOADS),
               f"phase 2: cache not reseeded: {stats}")

        for i, (_, twin) in enumerate(WORKLOADS):
            sock.sendall(f"certify\n{twin}end\n".encode())
            (resp,) = recv_responses(sock, 1)
            expect("source=cache" in resp,
                   f"phase 2: twin {i} not a cache hit: {resp!r}")

        sock.sendall(b"stats\nquit\n")
        stats, _bye = recv_responses(sock, 2)
        expect(stats_value(stats, "cache_hits") == len(WORKLOADS),
               f"phase 2: cache_hits: {stats}")
        expect(stats_value(stats, "cache_misses") == 0,
               f"phase 2: cache_misses: {stats}")
        expect(stats_value(stats, "full") == 0,
               f"phase 2: full certifications ran after recovery: {stats}")
    proc.terminate()
    try:
        expect(proc.wait(timeout=30) == 0, "phase 2: drain exit nonzero")
    except subprocess.TimeoutExpired:
        proc.kill()
        complain("phase 2: server hung on SIGTERM")

    # --- Phase 3: corrupt the tail; salvage, don't refuse. ---
    with journal.open("ab") as f:
        f.write(b"WYJ1\xff\xff\xff\x7fgarbage tail bytes")
    started = start_server(serve, args)
    if started is None:
        complain("phase 3: server refused to start on a corrupt tail")
        return 1
    proc, port = started
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        sock.sendall(f"certify\n{DEADLOCK_PERMUTED}end\nstats\nquit\n"
                     .encode())
        twin_resp, stats, _bye = recv_responses(sock, 3)
        expect(stats_value(stats, "journal_salvaged_bytes") > 0,
               f"phase 3: salvage not reported: {stats}")
        expect("source=cache" in twin_resp,
               f"phase 3: verdicts lost to the torn tail: {twin_resp!r}")
    proc.terminate()
    try:
        proc.wait(timeout=30)
    except subprocess.TimeoutExpired:
        proc.kill()

    if not ERRORS:
        print("serve_crash: OK (kill -9, journal recovery, isomorphic "
              "cache hits, torn-tail salvage)")
    return 1 if ERRORS else 0


if __name__ == "__main__":
    sys.exit(main())
