#!/usr/bin/env python3
"""Benchmark perf-regression guard: diff two BENCH_statespace.json files.

Compares a candidate google-benchmark JSON dump against a baseline and
fails (exit 1) when the *geomean* ratio candidate/baseline over all
matched benchmarks regresses by more than the threshold (default 15%)
for either guarded metric:

  * ns_per_state       — per-state cost of the search engines (falls
                         back to real_time for rows without the
                         counter),
  * states             — states interned/visited (the reduction
                         engines' whole point is to shrink this),
  * bytes_per_state    — store bytes per interned state (the
                         memory-mode series of DESIGN.md §9 exist to
                         shrink this),
  * lock_ops_per_sec   — live-engine lock-table throughput (HIGHER is
                         better: the fast-path-vs-baseline series of
                         DESIGN.md §10 exist to raise this), and
  * commits_per_sec    — live-engine commit throughput (higher is
                         better).

For lower-is-better metrics a regression is geomean ratio
candidate/baseline > 1 + threshold; for higher-is-better metrics it is
geomean ratio < 1 - threshold.

Benchmarks are matched by exact `name`; rows present in only one file
are reported but never fail the run (series come and go), and rows that
errored (`error_occurred`) are skipped. Geomeans are used so one noisy
series cannot hide a broad regression — or fail the run on its own.

Usage:
  tools/compare_bench.py BASELINE.json CANDIDATE.json [--threshold 0.15]

CI runs this as an *advisory* job (continue-on-error) against the
committed baseline, since hosted-runner hardware differs from the
recording host; run it locally on one machine for a binding check:

  ./build/bench_statespace --benchmark_out=new.json \
      --benchmark_out_format=json
  python3 tools/compare_bench.py BENCH_statespace.json new.json
"""

import argparse
import json
import math
import sys


# metric name -> direction: +1 = lower is better (regression when the
# geomean ratio rises past 1 + threshold), -1 = higher is better
# (regression when it falls past 1 - threshold).
METRICS = {
    "ns_per_state": +1,
    "states": +1,
    "bytes_per_state": +1,
    "lock_ops_per_sec": -1,
    "commits_per_sec": -1,
}


def load_rows(path: str) -> dict[str, dict]:
    with open(path) as f:
        data = json.load(f)
    rows = {}
    # Raw google-benchmark output keeps rows under "benchmarks"; the
    # hand-curated BENCH_runtime.json baseline keeps its live-engine
    # rows (google-benchmark shaped) under "live_series".
    for row in data.get("benchmarks", []) + data.get("live_series", []):
        if row.get("run_type") == "aggregate":
            continue
        if row.get("error_occurred"):
            continue
        rows[row["name"]] = row
    return rows


def metric_value(row: dict, metric: str):
    value = row.get(metric)
    if value is None and metric == "ns_per_state":
        value = row.get("real_time")  # Rows without a states counter.
    if value is None or value <= 0:
        return None
    return float(value)


def geomean(ratios: list[float]) -> float:
    return math.exp(sum(math.log(r) for r in ratios) / len(ratios))


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Diff two google-benchmark JSON files; exit 1 on "
        "geomean regression beyond the threshold."
    )
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="allowed geomean regression per metric (default 0.15 = 15%%)",
    )
    args = parser.parse_args()

    base = load_rows(args.baseline)
    cand = load_rows(args.candidate)
    matched = sorted(base.keys() & cand.keys())
    only_base = sorted(base.keys() - cand.keys())
    only_cand = sorted(cand.keys() - base.keys())
    if only_base:
        print(f"note: {len(only_base)} series only in baseline "
              f"(e.g. {only_base[0]})")
    if only_cand:
        print(f"note: {len(only_cand)} series only in candidate "
              f"(e.g. {only_cand[0]})")
    if not matched:
        print("compare_bench: no matching benchmark names", file=sys.stderr)
        return 1

    failed = False
    for metric, direction in METRICS.items():
        ratios = []
        worst = (1.0, None)
        for name in matched:
            b = metric_value(base[name], metric)
            c = metric_value(cand[name], metric)
            if b is None or c is None:
                continue
            ratio = c / b
            ratios.append(ratio)
            # "Worse" is a higher ratio for lower-is-better metrics and
            # a lower ratio for higher-is-better ones.
            if (ratio - worst[0]) * direction > 0:
                worst = (ratio, name)
        if not ratios:
            print(f"{metric}: no comparable rows")
            continue
        gm = geomean(ratios)
        verdict = "OK"
        if direction > 0 and gm > 1.0 + args.threshold:
            verdict = f"REGRESSION (> +{args.threshold:.0%})"
            failed = True
        elif direction < 0 and gm < 1.0 - args.threshold:
            verdict = f"REGRESSION (< -{args.threshold:.0%})"
            failed = True
        better = "lower" if direction > 0 else "higher"
        print(f"{metric}: geomean ratio {gm:.3f} over {len(ratios)} "
              f"series ({better} is better) — {verdict}")
        if worst[1] is not None:
            print(f"  worst single series: {worst[1]} ({worst[0]:.3f}x)")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
