// wydb_analyze: command-line front end for the paper's algorithms.
// Run `wydb_analyze --help` for the full usage text (kHelp below); the
// README.md CLI tour documents every flag and is kept in sync by the
// docs CI job (tools/check_docs.py).
//
// The workload format is documented in docs/FORMAT.md; see
// tools/sample_workload.wydb for an example.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <vector>

#include "analysis/certificate.h"
#include "analysis/deadlock_checker.h"
#include "analysis/early_unlock.h"
#include "analysis/multi_analyzer.h"
#include "analysis/pair_analyzer.h"
#include "analysis/safety_checker.h"
#include "core/schedule.h"
#include "core/symmetry.h"
#include "gen/system_gen.h"
#include "io/text_format.h"
#include "runtime/live_engine.h"
#include "runtime/simulation.h"
#include "runtime/workload.h"

using namespace wydb;

namespace {

constexpr char kHelp[] =
    R"(wydb_analyze: static certification and traffic simulation of locked
distributed transaction systems (Wolfson-Yannakakis, PODS '85).

Usage:
  wydb_analyze <workload.wydb> [analysis options]
  wydb_analyze simulate <workload.wydb> [simulate options]
  wydb_analyze sweep <workload.wydb> [sweep options]
  wydb_analyze run <workload.wydb> [run options]
  wydb_analyze --help

Analysis options:
  --pairs            also print the per-pair Theorem 3 verdicts
  --exact            also run the exact (exponential) checkers
  --engine <e>       exact-checker engine: incremental (default),
                     reference (the naive seed implementation), parallel
                     (sharded level-synchronous BFS), or reduced
                     (commutativity pruning + transaction-symmetry
                     canonicalization; verdict-equivalent, visits far
                     fewer states on symmetric workloads); implies
                     --exact and composes with --search-threads
  --search-threads <k>  worker threads for the parallel and reduced
                     engines (0 = hardware concurrency); without
                     --engine this selects the parallel engine, whose
                     verdicts, witnesses, and state counts are
                     bit-identical to the serial engine; implies --exact
  --stats            print a per-check stats line (states interned,
                     sleep-set pruned expansions, symmetry orbits,
                     store bytes/state, arena and probe-table bytes,
                     spilled levels, fingerprint collision bound);
                     implies --exact
  --store-encoding <c>  exact-checker state-store key encoding: plain
                     (default), delta (varint parent-delta records in a
                     byte arena; same verdicts and state ids, much
                     smaller), or compact (64-bit fingerprints instead
                     of full keys; probabilistic, needs
                     --allow-compaction); implies --exact and selects
                     the parallel engine unless --engine picked
                     parallel or reduced (compact: parallel only)
  --mem-budget-mb <m>  spill staged search frontiers to a temporary
                     file whenever the store plus staging exceed <m>
                     MiB, bounding BFS memory by disk instead of RAM
                     (0 = never spill); implies --exact and engine
                     selection like --store-encoding
  --max-states <n>   per-check state budget for the exact oracles
                     (default 5000000; a search past it returns
                     ResourceExhausted; 0 keeps the default); implies
                     --exact
  --timeout-ms <d>   per-check wall-clock budget for the exact oracles
                     (0 = none, the default); a check past it returns
                     ResourceExhausted, and the stats line reports how
                     often the engine consulted the clock
                     (deadline_polls); implies --exact
  --allow-compaction  accept the non-certified verdicts of
                     --store-encoding compact (sound refutations and
                     witnesses; "yes" verdicts carry a collision
                     probability bound, see --stats)
  --certificate <file>  write the safe+deadlock-free verdict as a
                     wydb-certificate v1 bundle (docs/SERVE.md): the
                     canonical form of the system, the verdict, and the
                     witness in canonical coordinates, fingerprinted;
                     implies --exact and refuses --store-encoding
                     compact (compacted verdicts are probabilistic)
  --optimize         run the early-unlock optimizer and print the result
  --simulate <runs>  simulate the workload <runs> times per policy
  --dump             echo the parsed system back in text format

simulate: run the traffic engine (replicated when the file has `copies`
stanzas; the file's `latency` stanza, if any, sets the network model).
  --policy <p>       block|detect|wound-wait|wait-die|all (default all)
  --runs <n>         seeded runs per policy (default 20)
  --seed <s>         base seed (default 1)
  --threads <k>      worker threads for the run sweep (default: hardware)
  --closed-loop      closed-loop traffic mode (each commit re-issues
                     after a think-time delay)
  --open-loop        open arrival variant (fixed-rate arrival clock)
  --duration <d>     traffic session length in sim time (default 100000)
  --think <t>        mean think time / inter-arrival interval
  --rounds <r>       per-transaction round target (bounds the session
                     instead of --duration unless both are given)
  --mpl <m>          multi-programming level cap (0 = unlimited)
Any of --open-loop/--duration/--think/--rounds/--mpl implies traffic
mode; without them the subcommand runs the one-shot simulation sweep.

sweep: run a policy x replication-degree x MPL grid of closed-loop
traffic sessions through the threaded seed sweep and emit one CSV row
per cell (header first, to stdout or --out). The CSV includes the
shared_grants / upgrades / upgrade_aborts lock-mode counters, so
sweeping --shared-fraction shows S-mode batching turn into lock-chain
contention.
  --policy <p>       as in simulate (default all)
  --degrees <list>   comma-separated replication degrees, e.g. 1,2,3
                     (round-robin placements; default: the file's own
                     placement, or single-copy)
  --mpls <list>      comma-separated MPL caps, e.g. 0,2,8 (default 0)
  --runs <n>         seeded sessions per cell (default 20)
  --seed <s>         base seed (default 1)
  --threads <k>      worker threads per cell (default: hardware)
  --duration <d>     session length in sim time (default 100000)
  --think <t>        mean think time (default 100)
  --out <file>       write the CSV to a file instead of stdout
  --gen read-mostly  generate the workload instead of reading a file: a
                     certified read-mostly farm (per-worker X-locked
                     private entity, then an S-locked shared read set;
                     DESIGN.md section 11) shaped by the knobs below
  --workers <n>      generated farm: identical workers (default 4)
  --read-entities <n>  generated farm: read-set entities (default 4)
  --shared-fraction <pct>  generated farm: percent of the read set kept
                     in S mode, 0-100 (default 100; 0 is the all-X
                     demotion of the same system)

run: execute the workload on the wall-clock LiveEngine (real OS threads
against the striped thread-safe lock table) or, for cross-checking, the
deterministic simulator. Certified systems may run the paper's
no-detection fast path (--policy block / --no-detection: pure blocking,
no timestamps, no timeout scans); the subcommand REFUSES that fast path
unless the Theorem 4 certification verdict is positive. Prints one
greppable `result:` line (exact counts; deterministic at --mpl 1 or
--threads 1) and one `perf:` line.
  --engine <e>       live (default) or sim (the closed-loop simulator,
                     for live-vs-sim cross-validation)
  --policy <p>       block|detect|wound-wait|wait-die (default detect);
                     block is the certified fast path and is gated on
                     the certification verdict
  --no-detection     alias for --policy block: run with deadlock
                     handling compiled out entirely
  --threads <k>      live worker threads (0 = hardware concurrency)
  --mpl <m>          multi-programming level cap (0 = unlimited)
  --rounds <r>       per-transaction round target (default 50 when no
                     --duration-ms is given)
  --duration-ms <d>  wall-clock session length in milliseconds (sim:
                     mapped to d*1000 simulated time units)
  --think-us <t>     mean think time between rounds, microseconds
  --hold-us <t>      dwell while holding each granted lock (widens the
                     live conflict window; useful to demonstrate
                     deadlocks on uncertified systems)
  --stripes <n>      lock-table latch stripes (0 = auto)
  --seed <s>         base seed (default 1)
)";

void PrintUsage(std::FILE* out) {
  std::fputs(
      "usage:\n"
      "  wydb_analyze <workload.wydb> [analysis options]\n"
      "  wydb_analyze simulate <workload.wydb> [simulate options]\n"
      "  wydb_analyze sweep <workload.wydb> [sweep options]\n"
      "  wydb_analyze run <workload.wydb> [run options]\n"
      "  wydb_analyze --help\n",
      out);
}

int Fail(const char* msg) {
  std::fprintf(stderr, "wydb_analyze: %s\n", msg);
  PrintUsage(stderr);
  return 2;
}

/// Exit path for a value-taking flag with no value (simulate/sweep).
[[noreturn]] void FailMissingValue(const char* opt) {
  std::fprintf(stderr, "wydb_analyze: %s needs a value\n", opt);
  PrintUsage(stderr);
  std::exit(2);
}

/// Strict non-negative integer flag value; exits 2 on garbage (atoi
/// would silently read "four" or "-5" as 0/-5).
int ParseCountFlag(const char* opt, const char* value) {
  int parsed = 0;
  bool digits = false;
  for (const char* p = value; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9' || parsed > 100'000'000) {
      digits = false;
      break;
    }
    parsed = parsed * 10 + (*p - '0');
    digits = true;
  }
  if (!digits) {
    std::fprintf(stderr,
                 "wydb_analyze: %s wants a non-negative integer, got '%s'\n",
                 opt, value);
    PrintUsage(stderr);
    std::exit(2);
  }
  return parsed;
}

Result<WorkloadSpec> LoadWorkload(const char* path) {
  std::ifstream file(path);
  if (!file) {
    return Status::InvalidArgument("cannot open workload file");
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  return ParseWorkload(buffer.str());
}

std::vector<ConflictPolicy> PoliciesFromArg(const char* arg) {
  if (!std::strcmp(arg, "all")) {
    return {ConflictPolicy::kBlock, ConflictPolicy::kDetect,
            ConflictPolicy::kWoundWait, ConflictPolicy::kWaitDie};
  }
  ConflictPolicy p;
  if (!ParseConflictPolicy(arg, &p)) return {};
  return {p};
}

int RunSimulateCommand(int argc, char** argv) {
  if (argc < 3) {
    return Fail("usage: wydb_analyze simulate <workload.wydb> [options]");
  }
  const char* policy_arg = "all";
  int runs = 20;
  uint64_t seed = 1;
  int threads = 0;
  bool traffic = false, open_loop = false, duration_set = false;
  SimTime duration = 100'000, think = 100;
  int rounds = 0, mpl = 0;
  for (int a = 3; a < argc; ++a) {
    auto next = [&](const char* opt) -> const char* {
      if (a + 1 >= argc) FailMissingValue(opt);
      return argv[++a];
    };
    if (!std::strcmp(argv[a], "--policy")) {
      policy_arg = next("--policy");
    } else if (!std::strcmp(argv[a], "--runs")) {
      runs = std::atoi(next("--runs"));
    } else if (!std::strcmp(argv[a], "--seed")) {
      seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (!std::strcmp(argv[a], "--threads")) {
      threads = std::atoi(next("--threads"));
    } else if (!std::strcmp(argv[a], "--closed-loop")) {
      traffic = true;
    } else if (!std::strcmp(argv[a], "--open-loop")) {
      traffic = true;
      open_loop = true;
    } else if (!std::strcmp(argv[a], "--duration")) {
      traffic = true;
      duration_set = true;
      duration = std::strtoull(next("--duration"), nullptr, 10);
    } else if (!std::strcmp(argv[a], "--think")) {
      traffic = true;
      think = std::strtoull(next("--think"), nullptr, 10);
    } else if (!std::strcmp(argv[a], "--rounds")) {
      traffic = true;
      rounds = std::atoi(next("--rounds"));
    } else if (!std::strcmp(argv[a], "--mpl")) {
      traffic = true;
      mpl = std::atoi(next("--mpl"));
    } else {
      return Fail("unknown simulate option");
    }
  }
  std::vector<ConflictPolicy> policies = PoliciesFromArg(policy_arg);
  if (policies.empty()) return Fail("unknown --policy");
  if (runs <= 0) return Fail("--runs must be positive");
  // --rounds alone means a rounds-bounded session, not duration-bounded.
  if (rounds > 0 && !duration_set) duration = 0;

  auto loaded = LoadWorkload(argv[2]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 loaded.status().ToString().c_str());
    return 2;
  }
  const TransactionSystem& sys = *loaded->owned.system;
  const CopyPlacement* placement = loaded->owned.placement.get();
  std::printf(
      "%d transactions, %d entities, %d sites%s; %d runs per policy\n",
      sys.num_transactions(), sys.db().num_entities(), sys.db().num_sites(),
      placement != nullptr && placement->IsReplicated() ? " (replicated)"
                                                        : "",
      runs);

  for (ConflictPolicy policy : policies) {
    if (traffic) {
      WorkloadOptions opts;
      opts.sim.policy = policy;
      opts.sim.seed = seed;
      opts.sim.placement = placement;
      if (loaded->has_latency) opts.sim.latency = loaded->latency;
      opts.open_loop = open_loop;
      opts.think_time = think;
      opts.duration = duration;
      opts.rounds = rounds;
      opts.mpl = mpl;
      auto agg = RunWorkloadMany(sys, opts, runs, threads);
      if (!agg.ok()) {
        std::fprintf(stderr, "simulate failed: %s\n",
                     agg.status().ToString().c_str());
        return 1;
      }
      std::printf(
          "  %-10s throughput %.1f commits/Msim-us, commits %llu, "
          "abort rate %.3f, latency p50/p95/p99 %.0f/%.0f/%.0f, "
          "deadlocked %d, budget %d, gave-up %d, shared grants %llu, "
          "upgrades %llu, upgrade aborts %llu\n",
          ConflictPolicyName(policy), agg->avg_throughput,
          static_cast<unsigned long long>(agg->total_commits),
          agg->avg_abort_rate, agg->avg_p50, agg->avg_p95, agg->avg_p99,
          agg->deadlocked_runs, agg->budget_exhausted_runs,
          agg->gave_up_runs,
          static_cast<unsigned long long>(agg->total_shared_grants),
          static_cast<unsigned long long>(agg->total_upgrades),
          static_cast<unsigned long long>(agg->total_upgrade_aborts));
    } else {
      SimOptions opts;
      opts.policy = policy;
      opts.seed = seed;
      opts.placement = placement;
      if (loaded->has_latency) opts.latency = loaded->latency;
      auto agg = RunMany(sys, opts, runs, threads);
      if (!agg.ok()) {
        std::fprintf(stderr, "simulate failed: %s\n",
                     agg.status().ToString().c_str());
        return 1;
      }
      std::printf(
          "  %-10s committed %d/%d, deadlocked %d, budget %d, gave-up %d, "
          "aborts %llu, avg makespan %.0f, shared grants %llu, "
          "upgrades %llu, upgrade aborts %llu\n",
          ConflictPolicyName(policy), agg->committed_runs, agg->runs,
          agg->deadlocked_runs, agg->budget_exhausted_runs,
          agg->gave_up_runs,
          static_cast<unsigned long long>(agg->total_aborts),
          agg->avg_makespan,
          static_cast<unsigned long long>(agg->total_shared_grants),
          static_cast<unsigned long long>(agg->total_upgrades),
          static_cast<unsigned long long>(agg->total_upgrade_aborts));
    }
  }
  return 0;
}

int RunRunCommand(int argc, char** argv) {
  if (argc < 3) {
    return Fail("usage: wydb_analyze run <workload.wydb> [options]");
  }
  const char* engine_arg = "live";
  const char* policy_arg = "detect";
  bool no_detection = false;
  uint64_t seed = 1;
  int threads = 0, mpl = 0, rounds = 0, stripes = 0;
  int duration_ms = 0, think_us = 0, hold_us = 0;
  for (int a = 3; a < argc; ++a) {
    auto next = [&](const char* opt) -> const char* {
      if (a + 1 >= argc) FailMissingValue(opt);
      return argv[++a];
    };
    if (!std::strcmp(argv[a], "--engine")) {
      engine_arg = next("--engine");
    } else if (!std::strcmp(argv[a], "--policy")) {
      policy_arg = next("--policy");
    } else if (!std::strcmp(argv[a], "--no-detection")) {
      no_detection = true;
    } else if (!std::strcmp(argv[a], "--threads")) {
      threads = ParseCountFlag("--threads", next("--threads"));
    } else if (!std::strcmp(argv[a], "--mpl")) {
      mpl = ParseCountFlag("--mpl", next("--mpl"));
    } else if (!std::strcmp(argv[a], "--rounds")) {
      rounds = ParseCountFlag("--rounds", next("--rounds"));
    } else if (!std::strcmp(argv[a], "--duration-ms")) {
      duration_ms = ParseCountFlag("--duration-ms", next("--duration-ms"));
    } else if (!std::strcmp(argv[a], "--think-us")) {
      think_us = ParseCountFlag("--think-us", next("--think-us"));
    } else if (!std::strcmp(argv[a], "--hold-us")) {
      hold_us = ParseCountFlag("--hold-us", next("--hold-us"));
    } else if (!std::strcmp(argv[a], "--stripes")) {
      stripes = ParseCountFlag("--stripes", next("--stripes"));
    } else if (!std::strcmp(argv[a], "--seed")) {
      seed = std::strtoull(next("--seed"), nullptr, 10);
    } else {
      return Fail("unknown run option");
    }
  }
  const bool live = !std::strcmp(engine_arg, "live");
  if (!live && std::strcmp(engine_arg, "sim") != 0) {
    return Fail("--engine wants live or sim");
  }
  ConflictPolicy policy;
  if (!ParseConflictPolicy(policy_arg, &policy)) {
    return Fail("--policy wants block, detect, wound-wait, or wait-die");
  }
  if (no_detection) policy = ConflictPolicy::kBlock;
  if (rounds == 0 && duration_ms == 0) rounds = 50;

  auto loaded = LoadWorkload(argv[2]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 loaded.status().ToString().c_str());
    return 2;
  }
  const TransactionSystem& sys = *loaded->owned.system;
  std::printf("%d transactions, %d entities, %d sites; %s engine, %s "
              "policy\n",
              sys.num_transactions(), sys.db().num_entities(),
              sys.db().num_sites(), live ? "live" : "sim",
              ConflictPolicyName(policy));

  // The fast-path gate: detection-free blocking is the paper's payoff,
  // and it is only sound when the Theorem 4 verdict is positive. An
  // uncertified system under pure blocking can deadlock, so the run is
  // refused outright rather than left to the watchdog.
  if (policy == ConflictPolicy::kBlock && live) {
    auto report = CheckSystemSafeAndDeadlockFree(sys);
    if (!report.ok() || !report->safe_and_deadlock_free) {
      std::fprintf(
          stderr,
          "wydb_analyze: refusing the no-detection fast path: the system "
          "is not certified safe + deadlock-free (Theorem 4)%s%s; run "
          "under --policy detect, wound-wait, or wait-die instead\n",
          report.ok() ? "" : " — static analysis failed: ",
          report.ok() ? "" : report.status().ToString().c_str());
      return 2;
    }
    std::printf(
        "certified safe + deadlock-free: running with deadlock handling "
        "compiled out\n");
  }

  if (live) {
    LiveOptions o;
    o.policy = policy;
    o.seed = seed;
    o.threads = threads;
    o.mpl = mpl;
    o.rounds = rounds;
    o.duration_ms = duration_ms;
    o.think_us = think_us;
    o.hold_us = hold_us;
    o.num_stripes = stripes;
    auto r = RunLive(sys, o);
    if (!r.ok()) {
      std::fprintf(stderr, "run failed: %s\n", r.status().ToString().c_str());
      return 2;
    }
    std::printf(
        "result: engine=live policy=%s commits=%llu aborts=%llu "
        "abort_rate=%.3f deadlocked=%d gave_up=%d\n",
        ConflictPolicyName(policy),
        static_cast<unsigned long long>(r->commits),
        static_cast<unsigned long long>(r->aborts), r->abort_rate,
        r->deadlocked ? 1 : 0, r->gave_up ? 1 : 0);
    std::printf(
        "perf: threads=%d stripes=%d wall_s=%.3f commits_per_sec=%.1f "
        "lock_ops_per_sec=%.1f p50_us=%llu p95_us=%llu p99_us=%llu "
        "shared_grants=%llu upgrades=%llu upgrade_aborts=%llu\n",
        r->threads, r->stripes, r->wall_seconds, r->commits_per_sec,
        r->lock_ops_per_sec,
        static_cast<unsigned long long>(r->latency.p50),
        static_cast<unsigned long long>(r->latency.p95),
        static_cast<unsigned long long>(r->latency.p99),
        static_cast<unsigned long long>(r->shared_grants),
        static_cast<unsigned long long>(r->upgrades),
        static_cast<unsigned long long>(r->upgrade_aborts));
    if (r->deadlocked) {
      std::printf("deadlocked transactions:");
      for (int t : r->blocked_txns)
        std::printf(" %s", sys.txn(t).name().c_str());
      std::printf("\n");
    }
    return r->completed ? 0 : 1;
  }

  WorkloadOptions opts;
  opts.sim.policy = policy;
  opts.sim.seed = seed;
  opts.sim.placement = loaded->owned.placement.get();
  if (loaded->has_latency) opts.sim.latency = loaded->latency;
  opts.think_time = static_cast<SimTime>(think_us);
  opts.duration = static_cast<SimTime>(duration_ms) * 1000;
  opts.rounds = rounds;
  opts.mpl = mpl;
  auto r = RunWorkload(sys, opts);
  if (!r.ok()) {
    std::fprintf(stderr, "run failed: %s\n", r.status().ToString().c_str());
    return 2;
  }
  std::printf(
      "result: engine=sim policy=%s commits=%llu aborts=%llu "
      "abort_rate=%.3f deadlocked=%d gave_up=%d\n",
      ConflictPolicyName(policy), static_cast<unsigned long long>(r->commits),
      static_cast<unsigned long long>(r->aborts), r->abort_rate,
      r->deadlocked ? 1 : 0, r->gave_up ? 1 : 0);
  std::printf(
      "perf: makespan=%llu throughput=%.1f p50_us=%llu p95_us=%llu "
      "p99_us=%llu shared_grants=%llu upgrades=%llu upgrade_aborts=%llu\n",
      static_cast<unsigned long long>(r->makespan), r->throughput,
      static_cast<unsigned long long>(r->latency.p50),
      static_cast<unsigned long long>(r->latency.p95),
      static_cast<unsigned long long>(r->latency.p99),
      static_cast<unsigned long long>(r->shared_grants),
      static_cast<unsigned long long>(r->upgrades),
      static_cast<unsigned long long>(r->upgrade_aborts));
  return !r->deadlocked && !r->gave_up ? 0 : 1;
}

// Parses "1,2,8" into non-negative ints; empty on malformed input or
// entries beyond a sane bound (guards signed overflow).
std::vector<int> ParseIntList(const char* arg) {
  constexpr int kMax = 1'000'000'000;
  std::vector<int> out;
  int value = 0;
  bool digits = false;
  for (const char* p = arg;; ++p) {
    if (*p >= '0' && *p <= '9') {
      if (value > kMax / 10) return {};
      value = value * 10 + (*p - '0');
      digits = true;
    } else if (*p == ',' || *p == '\0') {
      if (!digits) return {};
      out.push_back(value);
      value = 0;
      digits = false;
      if (*p == '\0') return out;
    } else {
      return {};
    }
  }
}

int RunSweepCommand(int argc, char** argv) {
  if (argc < 3) {
    return Fail(
        "usage: wydb_analyze sweep <workload.wydb | --gen read-mostly> "
        "[options]");
  }
  const char* policy_arg = "all";
  const char* out_path = nullptr;
  const char* workload_path = nullptr;
  bool gen_read_mostly = false, farm_knob_set = false;
  int workers = 4, read_entities = 4, shared_pct = 100;
  std::vector<int> degrees;  // Empty: use the file's own placement.
  std::vector<int> mpls = {0};
  int runs = 20, threads = 0;
  uint64_t seed = 1;
  SimTime duration = 100'000, think = 100;
  // `--gen read-mostly` replaces the workload-file argument, so the
  // option scan starts at argv[2] when no file is given.
  int a = 3;
  if (argv[2][0] != '-') {
    workload_path = argv[2];
  } else {
    a = 2;
  }
  for (; a < argc; ++a) {
    auto next = [&](const char* opt) -> const char* {
      if (a + 1 >= argc) FailMissingValue(opt);
      return argv[++a];
    };
    if (!std::strcmp(argv[a], "--policy")) {
      policy_arg = next("--policy");
    } else if (!std::strcmp(argv[a], "--degrees")) {
      degrees = ParseIntList(next("--degrees"));
      if (degrees.empty()) return Fail("--degrees wants e.g. 1,2,3");
    } else if (!std::strcmp(argv[a], "--mpls")) {
      mpls = ParseIntList(next("--mpls"));
      if (mpls.empty()) return Fail("--mpls wants e.g. 0,2,8");
    } else if (!std::strcmp(argv[a], "--runs")) {
      runs = std::atoi(next("--runs"));
    } else if (!std::strcmp(argv[a], "--seed")) {
      seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (!std::strcmp(argv[a], "--threads")) {
      threads = std::atoi(next("--threads"));
    } else if (!std::strcmp(argv[a], "--duration")) {
      duration = std::strtoull(next("--duration"), nullptr, 10);
    } else if (!std::strcmp(argv[a], "--think")) {
      think = std::strtoull(next("--think"), nullptr, 10);
    } else if (!std::strcmp(argv[a], "--out")) {
      out_path = next("--out");
    } else if (!std::strcmp(argv[a], "--gen")) {
      if (std::strcmp(next("--gen"), "read-mostly") != 0) {
        return Fail("--gen wants read-mostly");
      }
      gen_read_mostly = true;
    } else if (!std::strcmp(argv[a], "--workers")) {
      workers = ParseCountFlag("--workers", next("--workers"));
      farm_knob_set = true;
    } else if (!std::strcmp(argv[a], "--read-entities")) {
      read_entities = ParseCountFlag("--read-entities",
                                     next("--read-entities"));
      farm_knob_set = true;
    } else if (!std::strcmp(argv[a], "--shared-fraction")) {
      shared_pct = ParseCountFlag("--shared-fraction",
                                  next("--shared-fraction"));
      if (shared_pct > 100) {
        return Fail("--shared-fraction wants a percentage in 0-100");
      }
      farm_knob_set = true;
    } else {
      return Fail("unknown sweep option");
    }
  }
  std::vector<ConflictPolicy> policies = PoliciesFromArg(policy_arg);
  if (policies.empty()) return Fail("unknown --policy");
  if (runs <= 0) return Fail("--runs must be positive");
  if (duration == 0) return Fail("--duration must be positive");
  if (gen_read_mostly && workload_path != nullptr) {
    return Fail("--gen read-mostly replaces the workload file; give one "
                "or the other");
  }
  if (farm_knob_set && !gen_read_mostly) {
    return Fail("--workers/--read-entities/--shared-fraction need "
                "--gen read-mostly");
  }
  if (!gen_read_mostly && workload_path == nullptr) {
    return Fail("sweep needs a workload file or --gen read-mostly");
  }

  std::optional<Result<WorkloadSpec>> loaded;
  OwnedSystem generated_sys;
  const TransactionSystem* sys_ptr = nullptr;
  const CopyPlacement* file_placement = nullptr;
  bool has_latency = false;
  LatencyModel latency;
  if (gen_read_mostly) {
    ReadMostlyFarmOptions fopts;
    fopts.workers = workers;
    fopts.read_entities = read_entities;
    fopts.shared_fraction = static_cast<double>(shared_pct) / 100.0;
    auto farm = GenerateReadMostlyFarm(fopts);
    if (!farm.ok()) {
      std::fprintf(stderr, "wydb_analyze: generating the read-mostly "
                   "farm failed: %s\n",
                   farm.status().ToString().c_str());
      return 2;
    }
    generated_sys = std::move(*farm);
    sys_ptr = generated_sys.system.get();
    file_placement = generated_sys.placement.get();
  } else {
    loaded.emplace(LoadWorkload(workload_path));
    if (!loaded->ok()) {
      std::fprintf(stderr, "parse error: %s\n",
                   loaded->status().ToString().c_str());
      return 2;
    }
    sys_ptr = (*loaded)->owned.system.get();
    file_placement = (*loaded)->owned.placement.get();
    has_latency = (*loaded)->has_latency;
    if (has_latency) latency = (*loaded)->latency;
  }
  const TransactionSystem& sys = *sys_ptr;

  // Resolve the degree axis: explicit --degrees build round-robin
  // placements; otherwise the single cell uses the file's placement (or
  // single-copy when the file has none).
  struct DegreeCell {
    int degree;
    const CopyPlacement* placement;  // Null = single-copy.
  };
  std::vector<CopyPlacement> generated;
  std::vector<DegreeCell> degree_cells;
  if (degrees.empty()) {
    degree_cells.push_back(
        {file_placement != nullptr ? file_placement->MaxDegree() : 1,
         file_placement});
  } else {
    generated.reserve(degrees.size());  // Stable addresses for the cells.
    for (int d : degrees) {
      if (d < 1) return Fail("--degrees entries must be >= 1");
      if (d > sys.db().num_sites()) {
        std::fprintf(stderr,
                     "wydb_analyze: degree %d exceeds the %d sites; "
                     "clamping\n",
                     d, sys.db().num_sites());
      }
      generated.push_back(CopyPlacement::RoundRobin(sys.db(), d));
      degree_cells.push_back({generated.back().MaxDegree(),
                              &generated.back()});
    }
  }

  std::FILE* out = stdout;
  if (out_path != nullptr) {
    out = std::fopen(out_path, "w");
    if (out == nullptr) return Fail("cannot open --out file");
  }
  std::fprintf(out,
               "policy,degree,mpl,runs,total_commits,total_aborts,"
               "avg_throughput,avg_abort_rate,avg_p50,avg_p95,avg_p99,"
               "deadlocked_runs,budget_exhausted_runs,gave_up_runs,"
               "shared_grants,upgrades,upgrade_aborts\n");
  for (ConflictPolicy policy : policies) {
    for (const DegreeCell& cell : degree_cells) {
      for (int mpl : mpls) {
        WorkloadOptions opts;
        opts.sim.policy = policy;
        opts.sim.seed = seed;
        opts.sim.placement = cell.placement;
        if (has_latency) opts.sim.latency = latency;
        opts.duration = duration;
        opts.think_time = think;
        opts.mpl = mpl;
        auto agg = RunWorkloadMany(sys, opts, runs, threads);
        if (!agg.ok()) {
          std::fprintf(stderr, "sweep cell failed: %s\n",
                       agg.status().ToString().c_str());
          if (out != stdout) std::fclose(out);
          return 1;
        }
        std::fprintf(out,
                     "%s,%d,%d,%d,%llu,%llu,%.3f,%.4f,%.1f,%.1f,%.1f,%d,"
                     "%d,%d,%llu,%llu,%llu\n",
                     ConflictPolicyName(policy), cell.degree, mpl, agg->runs,
                     static_cast<unsigned long long>(agg->total_commits),
                     static_cast<unsigned long long>(agg->total_aborts),
                     agg->avg_throughput, agg->avg_abort_rate, agg->avg_p50,
                     agg->avg_p95, agg->avg_p99, agg->deadlocked_runs,
                     agg->budget_exhausted_runs, agg->gave_up_runs,
                     static_cast<unsigned long long>(agg->total_shared_grants),
                     static_cast<unsigned long long>(agg->total_upgrades),
                     static_cast<unsigned long long>(
                         agg->total_upgrade_aborts));
      }
    }
  }
  if (out != stdout) std::fclose(out);
  return 0;
}

void PrintMultiVerdict(const TransactionSystem& sys,
                       const MultiReport& report) {
  std::printf("Theorem 4 (safe + deadlock-free): %s\n",
              report.safe_and_deadlock_free ? "CERTIFIED" : "REFUTED");
  std::printf("  interaction-graph cycles checked: %llu (variants: %llu)\n",
              static_cast<unsigned long long>(report.cycles_checked),
              static_cast<unsigned long long>(report.variants_checked));
  if (report.safe_and_deadlock_free || !report.violation) return;
  const MultiViolation& v = *report.violation;
  if (v.failed_pair) {
    std::printf("  failing pair: %s, %s\n",
                sys.txn(v.failed_pair->first).name().c_str(),
                sys.txn(v.failed_pair->second).name().c_str());
    std::printf("  %s\n", v.pair_verdict.explanation.c_str());
  } else {
    std::printf("  circular wait:");
    for (int i : v.cycle) std::printf(" %s", sys.txn(i).name().c_str());
    std::printf("\n  witness partial schedule:\n    %s\n",
                ScheduleToString(sys, v.witness).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 &&
      (!std::strcmp(argv[1], "--help") || !std::strcmp(argv[1], "help"))) {
    std::fputs(kHelp, stdout);
    return 0;
  }
  if (argc < 2) {
    return Fail("no workload given; see wydb_analyze --help");
  }
  if (!std::strcmp(argv[1], "simulate")) {
    return RunSimulateCommand(argc, argv);
  }
  if (!std::strcmp(argv[1], "sweep")) {
    return RunSweepCommand(argc, argv);
  }
  if (!std::strcmp(argv[1], "run")) {
    return RunRunCommand(argc, argv);
  }
  if (argv[1][0] == '-') {
    return Fail("expected a workload file or subcommand before options");
  }
  bool pairs = false, exact = false, optimize = false, dump = false;
  bool stats = false, engine_set = false, allow_compaction = false;
  const char* cert_path = nullptr;
  int max_states = 0;
  int timeout_ms = 0;
  SearchEngine engine = SearchEngine::kIncremental;
  StoreOptions store;
  int simulate_runs = 0, search_threads = 0;
  for (int a = 2; a < argc; ++a) {
    if (!std::strcmp(argv[a], "--pairs")) {
      pairs = true;
    } else if (!std::strcmp(argv[a], "--exact")) {
      exact = true;
    } else if (!std::strcmp(argv[a], "--engine")) {
      if (a + 1 >= argc) FailMissingValue("--engine");
      const char* name = argv[++a];
      exact = true;  // The engine choice only shows in the exact checks.
      engine_set = true;
      if (!std::strcmp(name, "incremental")) {
        engine = SearchEngine::kIncremental;
      } else if (!std::strcmp(name, "reference")) {
        engine = SearchEngine::kNaiveReference;
      } else if (!std::strcmp(name, "parallel")) {
        engine = SearchEngine::kParallelSharded;
      } else if (!std::strcmp(name, "reduced")) {
        engine = SearchEngine::kReduced;
      } else {
        return Fail(
            "--engine wants incremental, reference, parallel, or reduced");
      }
    } else if (!std::strcmp(argv[a], "--search-threads")) {
      if (a + 1 >= argc) FailMissingValue("--search-threads");
      exact = true;
      // Without an explicit --engine, a thread count selects the
      // bit-identical parallel engine (the pre---engine behavior).
      if (!engine_set) {
        engine = SearchEngine::kParallelSharded;
        engine_set = true;
      }
      search_threads = ParseCountFlag("--search-threads", argv[++a]);
    } else if (!std::strcmp(argv[a], "--stats")) {
      exact = true;
      stats = true;
    } else if (!std::strcmp(argv[a], "--store-encoding")) {
      if (a + 1 >= argc) FailMissingValue("--store-encoding");
      const char* name = argv[++a];
      exact = true;  // The store only exists in the exact checks.
      if (!std::strcmp(name, "plain")) {
        store.encoding = StoreOptions::KeyEncoding::kPlain;
      } else if (!std::strcmp(name, "delta")) {
        store.encoding = StoreOptions::KeyEncoding::kDelta;
      } else if (!std::strcmp(name, "compact")) {
        store.encoding = StoreOptions::KeyEncoding::kCompact;
      } else {
        return Fail("--store-encoding wants plain, delta, or compact");
      }
    } else if (!std::strcmp(argv[a], "--mem-budget-mb")) {
      if (a + 1 >= argc) FailMissingValue("--mem-budget-mb");
      exact = true;
      store.mem_budget_mb = ParseCountFlag("--mem-budget-mb", argv[++a]);
    } else if (!std::strcmp(argv[a], "--max-states")) {
      if (a + 1 >= argc) FailMissingValue("--max-states");
      exact = true;
      max_states = ParseCountFlag("--max-states", argv[++a]);
    } else if (!std::strcmp(argv[a], "--timeout-ms")) {
      if (a + 1 >= argc) FailMissingValue("--timeout-ms");
      exact = true;
      timeout_ms = ParseCountFlag("--timeout-ms", argv[++a]);
    } else if (!std::strcmp(argv[a], "--allow-compaction")) {
      exact = true;
      allow_compaction = true;
    } else if (!std::strcmp(argv[a], "--certificate")) {
      if (a + 1 >= argc) FailMissingValue("--certificate");
      exact = true;
      cert_path = argv[++a];
    } else if (!std::strcmp(argv[a], "--optimize")) {
      optimize = true;
    } else if (!std::strcmp(argv[a], "--dump")) {
      dump = true;
    } else if (!std::strcmp(argv[a], "--simulate")) {
      if (a + 1 >= argc) FailMissingValue("--simulate");
      simulate_runs = ParseCountFlag("--simulate", argv[++a]);
    } else {
      return Fail("unknown option");
    }
  }

  // The memory modes live on the sharded substrate (DESIGN.md §9): pick
  // the parallel engine unless one was chosen explicitly, and reject the
  // serial engines (and compact under reduced, whose witness replay
  // reads ancestor keys) before any work happens.
  if (store.encoding != StoreOptions::KeyEncoding::kPlain ||
      store.mem_budget_mb > 0) {
    if (!engine_set) {
      engine = SearchEngine::kParallelSharded;
      engine_set = true;
    }
    if (engine == SearchEngine::kIncremental ||
        engine == SearchEngine::kNaiveReference) {
      return Fail(
          "--store-encoding / --mem-budget-mb need --engine parallel or "
          "reduced");
    }
  }
  if (store.encoding == StoreOptions::KeyEncoding::kCompact) {
    if (cert_path != nullptr) {
      return Fail(
          "--certificate refuses --store-encoding compact: compacted "
          "verdicts are probabilistic and cannot be certified");
    }
    if (engine == SearchEngine::kReduced) {
      return Fail("--store-encoding compact needs the parallel engine");
    }
    if (!allow_compaction) {
      return Fail(
          "--store-encoding compact replaces keys by fingerprints and "
          "cannot certify; pass --allow-compaction to accept that");
    }
  }

  auto parsed = LoadWorkload(argv[1]);
  if (!parsed.ok()) {
    // A missing file here is just as likely a mistyped subcommand.
    std::fprintf(stderr, "parse error (workload '%s'): %s\n", argv[1],
                 parsed.status().ToString().c_str());
    PrintUsage(stderr);
    return 2;
  }
  const TransactionSystem& sys = *parsed->owned.system;
  std::printf("parsed %d transactions, %d entities, %d sites (%d steps)\n",
              sys.num_transactions(), sys.db().num_entities(),
              sys.db().num_sites(), sys.TotalSteps());
  if (dump) {
    std::printf("%s",
                SerializeWorkload(sys, parsed->owned.placement.get(),
                                  parsed->has_latency ? &parsed->latency
                                                      : nullptr)
                    .c_str());
  }

  // Workloads can exhaust the static analyzer's cycle-enumeration budget
  // (many structurally identical transactions over shared entities) while
  // staying well within reach of the exact engines — the memory-mode soak
  // farm is exactly that shape. With --exact the run falls through to the
  // exact checks and the exit code follows their verdicts instead.
  auto report = CheckSystemSafeAndDeadlockFree(sys);
  if (!report.ok()) {
    if (exact &&
        report.status().code() == StatusCode::kResourceExhausted) {
      std::printf("static analysis: %s\n  (budget exhausted; deferring to "
                  "the exact checks)\n",
                  report.status().ToString().c_str());
    } else {
      std::fprintf(stderr, "analysis failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
  } else {
    PrintMultiVerdict(sys, *report);
  }

  if (pairs) {
    std::printf("\nper-pair Theorem 3 verdicts:\n");
    for (int i = 0; i < sys.num_transactions(); ++i) {
      for (int j = i + 1; j < sys.num_transactions(); ++j) {
        auto v = CheckPairTheorem3(sys.txn(i), sys.txn(j));
        if (!v.ok()) continue;
        std::printf("  %s vs %s: %s", sys.txn(i).name().c_str(),
                    sys.txn(j).name().c_str(),
                    v->safe_and_deadlock_free ? "ok" : "FAIL");
        if (v->dominating_entity != kInvalidEntity) {
          std::printf(" (first entity: %s)",
                      sys.db().EntityName(v->dominating_entity).c_str());
        }
        std::printf("\n");
      }
    }
  }

  bool exact_deadlock_free = false;
  bool exact_safe = false;
  if (exact) {
    const char* engine_name =
        engine == SearchEngine::kNaiveReference   ? "reference"
        : engine == SearchEngine::kParallelSharded ? "parallel"
        : engine == SearchEngine::kReduced         ? "reduced"
                                                   : "incremental";
    std::printf("\nexact checks (exponential; budgets apply; %s engine):\n",
                engine_name);
    DeadlockCheckOptions dopts;
    SafetyCheckOptions sopts;
    dopts.engine = engine;
    dopts.search_threads = search_threads;
    dopts.store = store;
    sopts.engine = engine;
    sopts.search_threads = search_threads;
    sopts.store = store;
    if (max_states > 0) {
      dopts.max_states = static_cast<uint64_t>(max_states);
      sopts.max_states = static_cast<uint64_t>(max_states);
    }
    // Each check gets its own wall-clock budget, armed immediately
    // before it runs so earlier checks don't eat a later one's time.
    auto arm_deadline = [&](std::chrono::steady_clock::time_point* d) {
      if (timeout_ms > 0) {
        *d = std::chrono::steady_clock::now() +
             std::chrono::milliseconds(timeout_ms);
      }
    };
    // The stats line is sweep-greppable: one `stats:` token, then fixed
    // key=value fields (covered by the check_docs.py CLI smoke cases).
    // Orbits are only computed when the line is actually printed.
    std::optional<TransactionOrbits> orbits;
    if (stats) orbits.emplace(sys);
    auto print_stats = [&](const auto& r) {
      if (!stats) return;
      const uint64_t denom = r.states_interned > 0 ? r.states_interned : 1;
      std::printf(
          "    stats: states_interned=%llu sleep_set_pruned=%llu "
          "deadline_polls=%llu orbits=%d largest_orbit=%d "
          "bytes_per_state=%.1f arena_bytes=%llu probe_table_bytes=%llu "
          "spilled_levels=%llu fingerprint_collision_bound=%.3g\n",
          static_cast<unsigned long long>(r.states_interned),
          static_cast<unsigned long long>(r.sleep_set_pruned),
          static_cast<unsigned long long>(r.deadline_polls),
          orbits->num_orbits(), orbits->largest_orbit(),
          static_cast<double>(r.store_bytes) / static_cast<double>(denom),
          static_cast<unsigned long long>(r.arena_bytes),
          static_cast<unsigned long long>(r.probe_table_bytes),
          static_cast<unsigned long long>(r.spilled_levels),
          r.fingerprint_collision_bound);
    };
    arm_deadline(&dopts.deadline);
    auto df = CheckDeadlockFreedom(sys, dopts);
    exact_deadlock_free = df.ok() && df->deadlock_free;
    if (df.ok()) {
      std::printf("  deadlock-free: %s%s (%llu states)\n",
                  df->deadlock_free ? "yes" : "NO",
                  df->exact ? "" : " [not certified: hash-compacted]",
                  static_cast<unsigned long long>(df->states_visited));
      if (!df->deadlock_free) {
        std::printf("    witness: %s\n",
                    ScheduleToString(sys, df->witness->schedule).c_str());
      }
      print_stats(*df);
    } else {
      std::printf("  deadlock-free: %s\n", df.status().ToString().c_str());
    }
    arm_deadline(&sopts.deadline);
    auto safe = CheckSafety(sys, sopts);
    exact_safe = safe.ok() && safe->holds;
    if (safe.ok()) {
      std::printf("  safe: %s%s\n", safe->holds ? "yes" : "NO",
                  safe->exact ? "" : " [not certified: hash-compacted]");
      print_stats(*safe);
    } else {
      std::printf("  safe: %s\n", safe.status().ToString().c_str());
    }

    if (cert_path != nullptr) {
      arm_deadline(&sopts.deadline);
      auto full = CheckSafeAndDeadlockFree(sys, sopts);
      if (!full.ok()) {
        std::fprintf(stderr, "wydb_analyze: --certificate check failed: %s\n",
                     full.status().ToString().c_str());
        return 1;
      }
      auto key = CanonicalSystemKey(sys);
      if (!key.ok()) {
        std::fprintf(stderr, "wydb_analyze: canonicalization failed: %s\n",
                     key.status().ToString().c_str());
        return 1;
      }
      std::ofstream cert_out(cert_path);
      if (!cert_out) {
        std::fprintf(stderr,
                     "wydb_analyze: cannot open --certificate file '%s'\n",
                     cert_path);
        return 1;
      }
      cert_out << SerializeCertificate(MakeCertificate(*key, *full));
      std::printf("certificate: path=%s certified=%s states=%llu "
                  "key=%016llx\n",
                  cert_path, full->holds ? "yes" : "no",
                  static_cast<unsigned long long>(full->states_visited),
                  static_cast<unsigned long long>(key->hash));
    }
  }

  if (optimize) {
    std::printf("\nearly-unlock optimization:\n");
    auto opt = OptimizeEarlyUnlock(sys);
    if (!opt.ok()) {
      std::printf("  %s\n", opt.status().ToString().c_str());
    } else {
      std::printf("  holding cost %lld -> %lld (%llu hoists, %llu "
                  "rejected, %d partial-order txns skipped)\n",
                  static_cast<long long>(opt->holding_cost_before),
                  static_cast<long long>(opt->holding_cost_after),
                  static_cast<unsigned long long>(opt->moves_committed),
                  static_cast<unsigned long long>(opt->moves_rejected),
                  opt->skipped_partial);
      std::printf("%s", SerializeSystem(opt->system).c_str());
    }
  }

  if (simulate_runs > 0) {
    std::printf("\nsimulation (%d runs per policy):\n", simulate_runs);
    for (auto policy : {ConflictPolicy::kBlock, ConflictPolicy::kDetect,
                        ConflictPolicy::kWoundWait,
                        ConflictPolicy::kWaitDie}) {
      SimOptions opts;
      opts.policy = policy;
      opts.placement = parsed->owned.placement.get();
      if (parsed->has_latency) opts.latency = parsed->latency;
      auto agg = RunMany(sys, opts, simulate_runs);
      if (!agg.ok()) continue;
      std::printf(
          "  %-10s committed %d/%d, deadlocked %d, budget %d, gave-up %d, "
          "aborts %llu, avg makespan %.0f, shared grants %llu, "
          "upgrades %llu, upgrade aborts %llu\n",
          ConflictPolicyName(policy), agg->committed_runs, agg->runs,
          agg->deadlocked_runs, agg->budget_exhausted_runs,
          agg->gave_up_runs,
          static_cast<unsigned long long>(agg->total_aborts),
          agg->avg_makespan,
          static_cast<unsigned long long>(agg->total_shared_grants),
          static_cast<unsigned long long>(agg->total_upgrades),
          static_cast<unsigned long long>(agg->total_upgrade_aborts));
    }
  }
  if (report.ok()) return report->safe_and_deadlock_free ? 0 : 1;
  // Static analysis deferred to the exact checks (ResourceExhausted +
  // --exact above): certify on their combined verdict.
  return exact_deadlock_free && exact_safe ? 0 : 1;
}
