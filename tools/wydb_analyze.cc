// wydb_analyze: command-line front end for the paper's algorithms.
//
// Usage:
//   wydb_analyze <workload.wydb> [options]
//   wydb_analyze simulate <workload.wydb> [sim options]
//
// Analysis options:
//   --pairs            also print the per-pair Theorem 3 verdicts
//   --exact            also run the exact (exponential) checkers
//   --optimize         run the early-unlock optimizer and print the result
//   --simulate <runs>  simulate the workload <runs> times per policy
//   --dump             echo the parsed system back in text format
//
// `simulate` subcommand options (the traffic engine):
//   --policy <p>       block|detect|wound-wait|wait-die|all (default all)
//   --runs <n>         seeded runs per policy (default 20)
//   --seed <s>         base seed (default 1)
//   --threads <k>      worker threads for the run sweep (default: hardware)
//   --closed-loop      closed-loop traffic mode (each commit re-issues
//                      after a think-time delay)
//   --open-loop        open arrival variant (fixed-rate arrival clock)
//   --duration <d>     traffic session length in sim time (default 100000)
//   --think <t>        mean think time / inter-arrival interval
//   --rounds <r>       per-transaction round target (bounds the session
//                      instead of --duration unless both are given)
//   --mpl <m>          multi-programming level cap (0 = unlimited)
// Any of --open-loop/--duration/--think/--rounds/--mpl implies traffic
// mode; without them the subcommand runs the one-shot simulation sweep.
//
// The workload format is documented in src/io/text_format.h; see
// tools/sample_workload.wydb for an example.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "analysis/deadlock_checker.h"
#include "analysis/early_unlock.h"
#include "analysis/multi_analyzer.h"
#include "analysis/pair_analyzer.h"
#include "analysis/safety_checker.h"
#include "core/schedule.h"
#include "io/text_format.h"
#include "runtime/simulation.h"
#include "runtime/workload.h"

using namespace wydb;

namespace {

int Fail(const char* msg) {
  std::fprintf(stderr, "wydb_analyze: %s\n", msg);
  return 2;
}

Result<OwnedSystem> LoadSystem(const char* path) {
  std::ifstream file(path);
  if (!file) {
    return Status::InvalidArgument("cannot open workload file");
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  return ParseSystem(buffer.str());
}

std::vector<ConflictPolicy> PoliciesFromArg(const char* arg) {
  if (!std::strcmp(arg, "all")) {
    return {ConflictPolicy::kBlock, ConflictPolicy::kDetect,
            ConflictPolicy::kWoundWait, ConflictPolicy::kWaitDie};
  }
  ConflictPolicy p;
  if (!ParseConflictPolicy(arg, &p)) return {};
  return {p};
}

int RunSimulateCommand(int argc, char** argv) {
  if (argc < 3) {
    return Fail("usage: wydb_analyze simulate <workload.wydb> [options]");
  }
  const char* policy_arg = "all";
  int runs = 20;
  uint64_t seed = 1;
  int threads = 0;
  bool traffic = false, open_loop = false, duration_set = false;
  SimTime duration = 100'000, think = 100;
  int rounds = 0, mpl = 0;
  for (int a = 3; a < argc; ++a) {
    auto next = [&](const char* opt) -> const char* {
      if (a + 1 >= argc) {
        std::fprintf(stderr, "wydb_analyze: %s needs a value\n", opt);
        std::exit(2);
      }
      return argv[++a];
    };
    if (!std::strcmp(argv[a], "--policy")) {
      policy_arg = next("--policy");
    } else if (!std::strcmp(argv[a], "--runs")) {
      runs = std::atoi(next("--runs"));
    } else if (!std::strcmp(argv[a], "--seed")) {
      seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (!std::strcmp(argv[a], "--threads")) {
      threads = std::atoi(next("--threads"));
    } else if (!std::strcmp(argv[a], "--closed-loop")) {
      traffic = true;
    } else if (!std::strcmp(argv[a], "--open-loop")) {
      traffic = true;
      open_loop = true;
    } else if (!std::strcmp(argv[a], "--duration")) {
      traffic = true;
      duration_set = true;
      duration = std::strtoull(next("--duration"), nullptr, 10);
    } else if (!std::strcmp(argv[a], "--think")) {
      traffic = true;
      think = std::strtoull(next("--think"), nullptr, 10);
    } else if (!std::strcmp(argv[a], "--rounds")) {
      traffic = true;
      rounds = std::atoi(next("--rounds"));
    } else if (!std::strcmp(argv[a], "--mpl")) {
      traffic = true;
      mpl = std::atoi(next("--mpl"));
    } else {
      return Fail("unknown simulate option");
    }
  }
  std::vector<ConflictPolicy> policies = PoliciesFromArg(policy_arg);
  if (policies.empty()) return Fail("unknown --policy");
  if (runs <= 0) return Fail("--runs must be positive");
  // --rounds alone means a rounds-bounded session, not duration-bounded.
  if (rounds > 0 && !duration_set) duration = 0;

  auto loaded = LoadSystem(argv[2]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 loaded.status().ToString().c_str());
    return 2;
  }
  const TransactionSystem& sys = *loaded->system;
  std::printf("%d transactions, %d entities, %d sites; %d runs per policy\n",
              sys.num_transactions(), sys.db().num_entities(),
              sys.db().num_sites(), runs);

  for (ConflictPolicy policy : policies) {
    if (traffic) {
      WorkloadOptions opts;
      opts.sim.policy = policy;
      opts.sim.seed = seed;
      opts.open_loop = open_loop;
      opts.think_time = think;
      opts.duration = duration;
      opts.rounds = rounds;
      opts.mpl = mpl;
      auto agg = RunWorkloadMany(sys, opts, runs, threads);
      if (!agg.ok()) {
        std::fprintf(stderr, "simulate failed: %s\n",
                     agg.status().ToString().c_str());
        return 1;
      }
      std::printf(
          "  %-10s throughput %.1f commits/Msim-us, commits %llu, "
          "abort rate %.3f, latency p50/p95/p99 %.0f/%.0f/%.0f, "
          "deadlocked %d, budget %d, gave-up %d\n",
          ConflictPolicyName(policy), agg->avg_throughput,
          static_cast<unsigned long long>(agg->total_commits),
          agg->avg_abort_rate, agg->avg_p50, agg->avg_p95, agg->avg_p99,
          agg->deadlocked_runs, agg->budget_exhausted_runs,
          agg->gave_up_runs);
    } else {
      SimOptions opts;
      opts.policy = policy;
      opts.seed = seed;
      auto agg = RunMany(sys, opts, runs, threads);
      if (!agg.ok()) {
        std::fprintf(stderr, "simulate failed: %s\n",
                     agg.status().ToString().c_str());
        return 1;
      }
      std::printf(
          "  %-10s committed %d/%d, deadlocked %d, budget %d, gave-up %d, "
          "aborts %llu, avg makespan %.0f\n",
          ConflictPolicyName(policy), agg->committed_runs, agg->runs,
          agg->deadlocked_runs, agg->budget_exhausted_runs,
          agg->gave_up_runs,
          static_cast<unsigned long long>(agg->total_aborts),
          agg->avg_makespan);
    }
  }
  return 0;
}

void PrintMultiVerdict(const TransactionSystem& sys,
                       const MultiReport& report) {
  std::printf("Theorem 4 (safe + deadlock-free): %s\n",
              report.safe_and_deadlock_free ? "CERTIFIED" : "REFUTED");
  std::printf("  interaction-graph cycles checked: %llu (variants: %llu)\n",
              static_cast<unsigned long long>(report.cycles_checked),
              static_cast<unsigned long long>(report.variants_checked));
  if (report.safe_and_deadlock_free || !report.violation) return;
  const MultiViolation& v = *report.violation;
  if (v.failed_pair) {
    std::printf("  failing pair: %s, %s\n",
                sys.txn(v.failed_pair->first).name().c_str(),
                sys.txn(v.failed_pair->second).name().c_str());
    std::printf("  %s\n", v.pair_verdict.explanation.c_str());
  } else {
    std::printf("  circular wait:");
    for (int i : v.cycle) std::printf(" %s", sys.txn(i).name().c_str());
    std::printf("\n  witness partial schedule:\n    %s\n",
                ScheduleToString(sys, v.witness).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Fail("usage: wydb_analyze <workload.wydb> [--pairs] [--exact] "
                "[--optimize] [--simulate N] [--dump]\n"
                "       wydb_analyze simulate <workload.wydb> [--policy P] "
                "[--runs N] [--closed-loop] [--open-loop] [--duration D] "
                "[--think T] [--rounds R] [--mpl M] [--threads K] "
                "[--seed S]");
  }
  if (!std::strcmp(argv[1], "simulate")) {
    return RunSimulateCommand(argc, argv);
  }
  bool pairs = false, exact = false, optimize = false, dump = false;
  int simulate_runs = 0;
  for (int a = 2; a < argc; ++a) {
    if (!std::strcmp(argv[a], "--pairs")) {
      pairs = true;
    } else if (!std::strcmp(argv[a], "--exact")) {
      exact = true;
    } else if (!std::strcmp(argv[a], "--optimize")) {
      optimize = true;
    } else if (!std::strcmp(argv[a], "--dump")) {
      dump = true;
    } else if (!std::strcmp(argv[a], "--simulate") && a + 1 < argc) {
      simulate_runs = std::atoi(argv[++a]);
    } else {
      return Fail("unknown option");
    }
  }

  auto parsed = LoadSystem(argv[1]);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 parsed.status().ToString().c_str());
    return 2;
  }
  const TransactionSystem& sys = *parsed->system;
  std::printf("parsed %d transactions, %d entities, %d sites (%d steps)\n",
              sys.num_transactions(), sys.db().num_entities(),
              sys.db().num_sites(), sys.TotalSteps());
  if (dump) std::printf("%s", SerializeSystem(sys).c_str());

  auto report = CheckSystemSafeAndDeadlockFree(sys);
  if (!report.ok()) {
    std::fprintf(stderr, "analysis failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  PrintMultiVerdict(sys, *report);

  if (pairs) {
    std::printf("\nper-pair Theorem 3 verdicts:\n");
    for (int i = 0; i < sys.num_transactions(); ++i) {
      for (int j = i + 1; j < sys.num_transactions(); ++j) {
        auto v = CheckPairTheorem3(sys.txn(i), sys.txn(j));
        if (!v.ok()) continue;
        std::printf("  %s vs %s: %s", sys.txn(i).name().c_str(),
                    sys.txn(j).name().c_str(),
                    v->safe_and_deadlock_free ? "ok" : "FAIL");
        if (v->dominating_entity != kInvalidEntity) {
          std::printf(" (first entity: %s)",
                      sys.db().EntityName(v->dominating_entity).c_str());
        }
        std::printf("\n");
      }
    }
  }

  if (exact) {
    std::printf("\nexact checks (exponential; budgets apply):\n");
    auto df = CheckDeadlockFreedom(sys);
    if (df.ok()) {
      std::printf("  deadlock-free: %s (%llu states)\n",
                  df->deadlock_free ? "yes" : "NO",
                  static_cast<unsigned long long>(df->states_visited));
      if (!df->deadlock_free) {
        std::printf("    witness: %s\n",
                    ScheduleToString(sys, df->witness->schedule).c_str());
      }
    } else {
      std::printf("  deadlock-free: %s\n", df.status().ToString().c_str());
    }
    auto safe = CheckSafety(sys);
    if (safe.ok()) {
      std::printf("  safe: %s\n", safe->holds ? "yes" : "NO");
    } else {
      std::printf("  safe: %s\n", safe.status().ToString().c_str());
    }
  }

  if (optimize) {
    std::printf("\nearly-unlock optimization:\n");
    auto opt = OptimizeEarlyUnlock(sys);
    if (!opt.ok()) {
      std::printf("  %s\n", opt.status().ToString().c_str());
    } else {
      std::printf("  holding cost %lld -> %lld (%llu hoists, %llu "
                  "rejected, %d partial-order txns skipped)\n",
                  static_cast<long long>(opt->holding_cost_before),
                  static_cast<long long>(opt->holding_cost_after),
                  static_cast<unsigned long long>(opt->moves_committed),
                  static_cast<unsigned long long>(opt->moves_rejected),
                  opt->skipped_partial);
      std::printf("%s", SerializeSystem(opt->system).c_str());
    }
  }

  if (simulate_runs > 0) {
    std::printf("\nsimulation (%d runs per policy):\n", simulate_runs);
    for (auto policy : {ConflictPolicy::kBlock, ConflictPolicy::kDetect,
                        ConflictPolicy::kWoundWait,
                        ConflictPolicy::kWaitDie}) {
      SimOptions opts;
      opts.policy = policy;
      auto agg = RunMany(sys, opts, simulate_runs);
      if (!agg.ok()) continue;
      std::printf(
          "  %-10s committed %d/%d, deadlocked %d, budget %d, gave-up %d, "
          "aborts %llu, avg makespan %.0f\n",
          ConflictPolicyName(policy), agg->committed_runs, agg->runs,
          agg->deadlocked_runs, agg->budget_exhausted_runs,
          agg->gave_up_runs,
          static_cast<unsigned long long>(agg->total_aborts),
          agg->avg_makespan);
    }
  }
  return report->safe_and_deadlock_free ? 0 : 1;
}
