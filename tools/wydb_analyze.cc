// wydb_analyze: command-line front end for the paper's algorithms.
//
// Usage:
//   wydb_analyze <workload.wydb> [options]
//
// Options:
//   --pairs            also print the per-pair Theorem 3 verdicts
//   --exact            also run the exact (exponential) checkers
//   --optimize         run the early-unlock optimizer and print the result
//   --simulate <runs>  simulate the workload <runs> times per policy
//   --dump             echo the parsed system back in text format
//
// The workload format is documented in src/io/text_format.h; see
// tools/sample_workload.wydb for an example.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "analysis/deadlock_checker.h"
#include "analysis/early_unlock.h"
#include "analysis/multi_analyzer.h"
#include "analysis/pair_analyzer.h"
#include "analysis/safety_checker.h"
#include "core/schedule.h"
#include "io/text_format.h"
#include "runtime/simulation.h"

using namespace wydb;

namespace {

int Fail(const char* msg) {
  std::fprintf(stderr, "wydb_analyze: %s\n", msg);
  return 2;
}

void PrintMultiVerdict(const TransactionSystem& sys,
                       const MultiReport& report) {
  std::printf("Theorem 4 (safe + deadlock-free): %s\n",
              report.safe_and_deadlock_free ? "CERTIFIED" : "REFUTED");
  std::printf("  interaction-graph cycles checked: %llu (variants: %llu)\n",
              static_cast<unsigned long long>(report.cycles_checked),
              static_cast<unsigned long long>(report.variants_checked));
  if (report.safe_and_deadlock_free || !report.violation) return;
  const MultiViolation& v = *report.violation;
  if (v.failed_pair) {
    std::printf("  failing pair: %s, %s\n",
                sys.txn(v.failed_pair->first).name().c_str(),
                sys.txn(v.failed_pair->second).name().c_str());
    std::printf("  %s\n", v.pair_verdict.explanation.c_str());
  } else {
    std::printf("  circular wait:");
    for (int i : v.cycle) std::printf(" %s", sys.txn(i).name().c_str());
    std::printf("\n  witness partial schedule:\n    %s\n",
                ScheduleToString(sys, v.witness).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Fail("usage: wydb_analyze <workload.wydb> [--pairs] [--exact] "
                "[--optimize] [--simulate N] [--dump]");
  }
  bool pairs = false, exact = false, optimize = false, dump = false;
  int simulate_runs = 0;
  for (int a = 2; a < argc; ++a) {
    if (!std::strcmp(argv[a], "--pairs")) {
      pairs = true;
    } else if (!std::strcmp(argv[a], "--exact")) {
      exact = true;
    } else if (!std::strcmp(argv[a], "--optimize")) {
      optimize = true;
    } else if (!std::strcmp(argv[a], "--dump")) {
      dump = true;
    } else if (!std::strcmp(argv[a], "--simulate") && a + 1 < argc) {
      simulate_runs = std::atoi(argv[++a]);
    } else {
      return Fail("unknown option");
    }
  }

  std::ifstream file(argv[1]);
  if (!file) return Fail("cannot open workload file");
  std::stringstream buffer;
  buffer << file.rdbuf();

  auto parsed = ParseSystem(buffer.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 parsed.status().ToString().c_str());
    return 2;
  }
  const TransactionSystem& sys = *parsed->system;
  std::printf("parsed %d transactions, %d entities, %d sites (%d steps)\n",
              sys.num_transactions(), sys.db().num_entities(),
              sys.db().num_sites(), sys.TotalSteps());
  if (dump) std::printf("%s", SerializeSystem(sys).c_str());

  auto report = CheckSystemSafeAndDeadlockFree(sys);
  if (!report.ok()) {
    std::fprintf(stderr, "analysis failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  PrintMultiVerdict(sys, *report);

  if (pairs) {
    std::printf("\nper-pair Theorem 3 verdicts:\n");
    for (int i = 0; i < sys.num_transactions(); ++i) {
      for (int j = i + 1; j < sys.num_transactions(); ++j) {
        auto v = CheckPairTheorem3(sys.txn(i), sys.txn(j));
        if (!v.ok()) continue;
        std::printf("  %s vs %s: %s", sys.txn(i).name().c_str(),
                    sys.txn(j).name().c_str(),
                    v->safe_and_deadlock_free ? "ok" : "FAIL");
        if (v->dominating_entity != kInvalidEntity) {
          std::printf(" (first entity: %s)",
                      sys.db().EntityName(v->dominating_entity).c_str());
        }
        std::printf("\n");
      }
    }
  }

  if (exact) {
    std::printf("\nexact checks (exponential; budgets apply):\n");
    auto df = CheckDeadlockFreedom(sys);
    if (df.ok()) {
      std::printf("  deadlock-free: %s (%llu states)\n",
                  df->deadlock_free ? "yes" : "NO",
                  static_cast<unsigned long long>(df->states_visited));
      if (!df->deadlock_free) {
        std::printf("    witness: %s\n",
                    ScheduleToString(sys, df->witness->schedule).c_str());
      }
    } else {
      std::printf("  deadlock-free: %s\n", df.status().ToString().c_str());
    }
    auto safe = CheckSafety(sys);
    if (safe.ok()) {
      std::printf("  safe: %s\n", safe->holds ? "yes" : "NO");
    } else {
      std::printf("  safe: %s\n", safe.status().ToString().c_str());
    }
  }

  if (optimize) {
    std::printf("\nearly-unlock optimization:\n");
    auto opt = OptimizeEarlyUnlock(sys);
    if (!opt.ok()) {
      std::printf("  %s\n", opt.status().ToString().c_str());
    } else {
      std::printf("  holding cost %lld -> %lld (%llu hoists, %llu "
                  "rejected, %d partial-order txns skipped)\n",
                  static_cast<long long>(opt->holding_cost_before),
                  static_cast<long long>(opt->holding_cost_after),
                  static_cast<unsigned long long>(opt->moves_committed),
                  static_cast<unsigned long long>(opt->moves_rejected),
                  opt->skipped_partial);
      std::printf("%s", SerializeSystem(opt->system).c_str());
    }
  }

  if (simulate_runs > 0) {
    std::printf("\nsimulation (%d runs per policy):\n", simulate_runs);
    for (auto policy : {ConflictPolicy::kBlock, ConflictPolicy::kDetect,
                        ConflictPolicy::kWoundWait,
                        ConflictPolicy::kWaitDie}) {
      SimOptions opts;
      opts.policy = policy;
      auto agg = RunMany(sys, opts, simulate_runs);
      if (!agg.ok()) continue;
      std::printf(
          "  %-10s committed %d/%d, deadlocked %d, aborts %llu, "
          "avg makespan %.0f\n",
          ConflictPolicyName(policy), agg->committed_runs, agg->runs,
          agg->deadlocked_runs,
          static_cast<unsigned long long>(agg->total_aborts),
          agg->avg_makespan);
    }
  }
  return report->safe_and_deadlock_free ? 0 : 1;
}
