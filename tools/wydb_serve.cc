// wydb_serve: long-running analysis server (docs/SERVE.md). Speaks the
// line protocol on stdin/stdout by default, or accepts TCP connections
// one at a time with --port. Run `wydb_serve --help` for the flags; the
// README serving section is kept in sync by the docs CI job
// (tools/check_docs.py).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <streambuf>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "serve/server.h"

using namespace wydb;

namespace {

constexpr char kHelp[] =
    R"(wydb_serve: analysis-as-a-service for locked distributed transaction
systems (Wolfson-Yannakakis, PODS '85). Serves `certify`, `simulate`,
`stats`, and `quit` requests over a line protocol (docs/SERVE.md), with
a canonical-form verdict cache and single-transaction incremental
recertification.

Usage:
  wydb_serve [options]             serve stdin/stdout until EOF or quit
  wydb_serve --port <p> [options]  accept TCP connections, one at a time
  wydb_serve --help

Options:
  --port <p>         listen on TCP port <p> instead of stdin/stdout;
                     connections are served sequentially and the cache
                     persists across them
  --max-states <n>   default per-request state budget for certifications
                     (default 5000000, 0 = unbounded; a request may
                     override with max_states=N)
  --timeout-ms <t>   default per-request wall-clock budget in ms
                     (default 0 = none; a request may override with
                     timeout_ms=N); overruns answer ResourceExhausted
                     without killing the stream
  --cache-entries <n>  verdict-cache capacity, in systems (default 128,
                     LRU eviction)
  --engine <e>       engine for full certifications: incremental
                     (default), reference, parallel, or reduced;
                     incremental recertification always runs on the
                     incremental engine, where the delta gate lives
  --search-threads <k>  worker threads for the parallel and reduced
                     engines (0 = hardware concurrency)
  --store-encoding <c>  state-store key encoding for full runs on the
                     parallel/reduced engines: plain (default) or delta;
                     compact is refused — a verdict cache must never
                     hold a probabilistic refutation as a certificate
  --mem-budget-mb <m>  spill search frontiers to disk past <m> MiB on
                     the parallel/reduced engines (0 = never)
  --preload <file>   certify <file> at startup and seed the cache with
                     the result (repeatable)
)";

void PrintUsage(std::FILE* out) {
  std::fputs(
      "usage:\n"
      "  wydb_serve [options]\n"
      "  wydb_serve --port <p> [options]\n"
      "  wydb_serve --help\n",
      out);
}

int Fail(const char* msg) {
  std::fprintf(stderr, "wydb_serve: %s\n", msg);
  PrintUsage(stderr);
  return 2;
}

[[noreturn]] void FailMissingValue(const char* opt) {
  std::fprintf(stderr, "wydb_serve: %s needs a value\n", opt);
  PrintUsage(stderr);
  std::exit(2);
}

/// Strict non-negative integer flag value; exits 2 on garbage.
int ParseCountFlag(const char* opt, const char* value) {
  int parsed = 0;
  bool digits = false;
  for (const char* p = value; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9' || parsed > 100'000'000) {
      digits = false;
      break;
    }
    parsed = parsed * 10 + (*p - '0');
    digits = true;
  }
  if (!digits) {
    std::fprintf(stderr,
                 "wydb_serve: %s wants a non-negative integer, got '%s'\n",
                 opt, value);
    PrintUsage(stderr);
    std::exit(2);
  }
  return parsed;
}

/// Unbuffered-write std::streambuf over a POSIX fd, enough to hand a
/// socket to Server::ServeStream as iostreams.
class FdStreamBuf : public std::streambuf {
 public:
  explicit FdStreamBuf(int fd) : fd_(fd) { setg(buf_, buf_, buf_); }

 protected:
  int underflow() override {
    ssize_t n = ::read(fd_, buf_, sizeof(buf_));
    if (n <= 0) return traits_type::eof();
    setg(buf_, buf_, buf_ + n);
    return traits_type::to_int_type(buf_[0]);
  }
  int overflow(int c) override {
    if (c == traits_type::eof()) return traits_type::eof();
    char ch = static_cast<char>(c);
    return ::write(fd_, &ch, 1) == 1 ? c : traits_type::eof();
  }
  std::streamsize xsputn(const char* s, std::streamsize n) override {
    std::streamsize done = 0;
    while (done < n) {
      ssize_t w = ::write(fd_, s + done, static_cast<size_t>(n - done));
      if (w <= 0) break;
      done += w;
    }
    return done;
  }

 private:
  int fd_;
  char buf_[4096];
};

int ServeSocket(Server& server, int port) {
  int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::perror("wydb_serve: socket");
    return 1;
  }
  int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd, 4) < 0) {
    std::perror("wydb_serve: bind/listen");
    ::close(listen_fd);
    return 1;
  }
  std::fprintf(stderr, "wydb_serve: listening on 127.0.0.1:%d\n", port);
  for (;;) {
    int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) {
      std::perror("wydb_serve: accept");
      break;
    }
    FdStreamBuf buf(conn);
    std::istream in(&buf);
    std::ostream out(&buf);
    server.ServeStream(in, out);
    ::close(conn);
  }
  ::close(listen_fd);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 &&
      (!std::strcmp(argv[1], "--help") || !std::strcmp(argv[1], "help"))) {
    std::fputs(kHelp, stdout);
    return 0;
  }
  int port = 0;
  ServerOptions options;
  std::vector<const char*> preloads;
  for (int a = 1; a < argc; ++a) {
    auto next = [&](const char* opt) -> const char* {
      if (a + 1 >= argc) FailMissingValue(opt);
      return argv[++a];
    };
    if (!std::strcmp(argv[a], "--port")) {
      port = ParseCountFlag("--port", next("--port"));
      if (port < 1 || port > 65535) return Fail("--port wants 1-65535");
    } else if (!std::strcmp(argv[a], "--max-states")) {
      options.max_states = static_cast<uint64_t>(
          ParseCountFlag("--max-states", next("--max-states")));
    } else if (!std::strcmp(argv[a], "--timeout-ms")) {
      options.timeout_ms = ParseCountFlag("--timeout-ms", next("--timeout-ms"));
    } else if (!std::strcmp(argv[a], "--cache-entries")) {
      options.cache_entries =
          ParseCountFlag("--cache-entries", next("--cache-entries"));
      if (options.cache_entries < 1) {
        return Fail("--cache-entries must be at least 1");
      }
    } else if (!std::strcmp(argv[a], "--engine")) {
      const char* name = next("--engine");
      if (!std::strcmp(name, "incremental")) {
        options.engine = SearchEngine::kIncremental;
      } else if (!std::strcmp(name, "reference")) {
        options.engine = SearchEngine::kNaiveReference;
      } else if (!std::strcmp(name, "parallel")) {
        options.engine = SearchEngine::kParallelSharded;
      } else if (!std::strcmp(name, "reduced")) {
        options.engine = SearchEngine::kReduced;
      } else {
        return Fail(
            "--engine wants incremental, reference, parallel, or reduced");
      }
    } else if (!std::strcmp(argv[a], "--search-threads")) {
      options.search_threads =
          ParseCountFlag("--search-threads", next("--search-threads"));
    } else if (!std::strcmp(argv[a], "--store-encoding")) {
      const char* name = next("--store-encoding");
      if (!std::strcmp(name, "plain")) {
        options.store.encoding = StoreOptions::KeyEncoding::kPlain;
      } else if (!std::strcmp(name, "delta")) {
        options.store.encoding = StoreOptions::KeyEncoding::kDelta;
      } else if (!std::strcmp(name, "compact")) {
        return Fail(
            "--store-encoding compact is refused: compacted verdicts are "
            "probabilistic and must not be cached as certificates");
      } else {
        return Fail("--store-encoding wants plain or delta");
      }
    } else if (!std::strcmp(argv[a], "--mem-budget-mb")) {
      options.store.mem_budget_mb =
          ParseCountFlag("--mem-budget-mb", next("--mem-budget-mb"));
    } else if (!std::strcmp(argv[a], "--preload")) {
      preloads.push_back(next("--preload"));
    } else {
      return Fail("unknown option");
    }
  }

  auto server = Server::Create(options);
  if (!server.ok()) {
    std::fprintf(stderr, "wydb_serve: %s\n",
                 server.status().ToString().c_str());
    PrintUsage(stderr);
    return 2;
  }

  for (const char* path : preloads) {
    std::ifstream file(path);
    if (!file) {
      std::fprintf(stderr, "wydb_serve: cannot open --preload file '%s'\n",
                   path);
      return 2;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    Status st = server->Preload(buffer.str());
    if (!st.ok()) {
      std::fprintf(stderr, "wydb_serve: --preload '%s' failed: %s\n", path,
                   st.ToString().c_str());
      return 2;
    }
    std::fprintf(stderr, "wydb_serve: preloaded %s\n", path);
  }

  if (port > 0) return ServeSocket(*server, port);
  server->ServeStream(std::cin, std::cout);
  return 0;
}
