// wydb_serve: long-running analysis server (docs/SERVE.md). Speaks the
// line protocol on stdin/stdout by default, or accepts concurrent TCP
// connections with --port. Run `wydb_serve --help` for the flags; the
// README serving section is kept in sync by the docs CI job
// (tools/check_docs.py).
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <set>
#include <sstream>
#include <streambuf>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/thread_pool.h"
#include "serve/server.h"

using namespace wydb;

namespace {

constexpr char kHelp[] =
    R"(wydb_serve: analysis-as-a-service for locked distributed transaction
systems (Wolfson-Yannakakis, PODS '85). Serves `certify`, `simulate`,
`stats`, and `quit` requests over a line protocol (docs/SERVE.md), with
a canonical-form verdict cache, single-transaction incremental
recertification, and an optional crash-safe verdict journal.

Usage:
  wydb_serve [options]             serve stdin/stdout until EOF or quit
  wydb_serve --port <p> [options]  accept TCP connections concurrently
  wydb_serve --help

Options:
  --port <p>         listen on TCP port <p> instead of stdin/stdout;
                     each connection gets its own session thread and the
                     verdict cache is shared across all of them
  --sessions <n>     concurrent TCP session cap (default 4); up to <n>
                     more connections wait in an accept queue, and
                     connections beyond that are shed immediately with
                     an `error: server at capacity` line
  --max-states <n>   default per-request state budget for certifications
                     (default 5000000, 0 = unbounded; a request may
                     override with max_states=N)
  --timeout-ms <t>   default per-request wall-clock budget in ms
                     (default 0 = none; a request may override with
                     timeout_ms=N); overruns answer ResourceExhausted
                     without killing the stream. A request whose
                     effective budget is timeout_ms=0 with an unbounded
                     or above-server max_states is rejected as a runaway
  --cache-entries <n>  verdict-cache capacity, in systems (default 128,
                     LRU eviction)
  --journal <file>   append every verdict to a crash-safe journal and
                     replay it into the cache at startup; a torn or
                     corrupt tail is truncated to the last valid record,
                     never a startup failure (docs/SERVE.md)
  --journal-fsync <n>  fsync the journal every <n> appends (default 8;
                     0 = only on compaction and shutdown; 1 = every
                     verdict). kill -9 loses at most the unsynced tail
  --journal-compact <n>  rewrite the journal from the live cache once it
                     holds <n> more records than the cache has entries
                     (default 256; 0 = compact eagerly)
  --engine <e>       engine for full certifications: incremental
                     (default), reference, parallel, or reduced;
                     incremental recertification always runs on the
                     incremental engine, where the delta gate lives
  --search-threads <k>  worker threads for the parallel and reduced
                     engines (0 = hardware concurrency)
  --store-encoding <c>  state-store key encoding for full runs on the
                     parallel/reduced engines: plain (default) or delta;
                     compact is refused — a verdict cache must never
                     hold a probabilistic refutation as a certificate
  --mem-budget-mb <m>  spill search frontiers to disk past <m> MiB on
                     the parallel/reduced engines (0 = never)
  --preload <file>   certify <file> at startup and seed the cache with
                     the result (repeatable)

SIGTERM/SIGINT drain gracefully: the listener stops, in-flight sessions
are unblocked, and the journal is flushed before exit. SIGPIPE is
ignored; a disconnected client only ends its own session.
)";

void PrintUsage(std::FILE* out) {
  std::fputs(
      "usage:\n"
      "  wydb_serve [options]\n"
      "  wydb_serve --port <p> [options]\n"
      "  wydb_serve --help\n",
      out);
}

int Fail(const char* msg) {
  std::fprintf(stderr, "wydb_serve: %s\n", msg);
  PrintUsage(stderr);
  return 2;
}

[[noreturn]] void FailMissingValue(const char* opt) {
  std::fprintf(stderr, "wydb_serve: %s needs a value\n", opt);
  PrintUsage(stderr);
  std::exit(2);
}

/// Strict non-negative integer flag value; exits 2 on garbage.
int ParseCountFlag(const char* opt, const char* value) {
  int parsed = 0;
  bool digits = false;
  for (const char* p = value; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9' || parsed > 100'000'000) {
      digits = false;
      break;
    }
    parsed = parsed * 10 + (*p - '0');
    digits = true;
  }
  if (!digits) {
    std::fprintf(stderr,
                 "wydb_serve: %s wants a non-negative integer, got '%s'\n",
                 opt, value);
    PrintUsage(stderr);
    std::exit(2);
  }
  return parsed;
}

/// Set by the SIGTERM/SIGINT handler (installed without SA_RESTART so
/// the accept/read the main thread is blocked in returns EINTR).
volatile std::sig_atomic_t g_stop = 0;

void StopHandler(int) { g_stop = 1; }

/// Connections currently owned by a session thread. The drain path
/// shuts them down to unblock reads; entries are removed (under the
/// mutex) before close so a recycled fd can never be shut down stale.
std::mutex g_conns_mu;
std::set<int> g_conns;

void RegisterConn(int fd) {
  std::lock_guard<std::mutex> lock(g_conns_mu);
  g_conns.insert(fd);
}

void UnregisterAndClose(int fd) {
  {
    std::lock_guard<std::mutex> lock(g_conns_mu);
    g_conns.erase(fd);
  }
  ::close(fd);
}

/// Wakes every in-flight session's blocked read with EOF. Signals are
/// delivered to one thread only, so worker reads never see EINTR; this
/// is how the drain reaches them.
void ShutdownActiveConns() {
  std::lock_guard<std::mutex> lock(g_conns_mu);
  for (int fd : g_conns) ::shutdown(fd, SHUT_RDWR);
}

/// Unbuffered-write std::streambuf over a POSIX fd, enough to hand a
/// socket to Server::ServeStream as iostreams. Retries EINTR (signal
/// delivery must not drop request bytes); EPIPE/ECONNRESET surface as
/// eof, which ends this session's ServeStream loop and nothing else.
class FdStreamBuf : public std::streambuf {
 public:
  explicit FdStreamBuf(int fd) : fd_(fd) { setg(buf_, buf_, buf_); }

 protected:
  int underflow() override {
    ssize_t n;
    do {
      n = ::read(fd_, buf_, sizeof(buf_));
    } while (n < 0 && errno == EINTR && !g_stop);
    if (n <= 0) return traits_type::eof();
    setg(buf_, buf_, buf_ + n);
    return traits_type::to_int_type(buf_[0]);
  }
  int overflow(int c) override {
    if (c == traits_type::eof()) return traits_type::eof();
    char ch = static_cast<char>(c);
    return WriteAll(&ch, 1) ? c : traits_type::eof();
  }
  std::streamsize xsputn(const char* s, std::streamsize n) override {
    return WriteAll(s, static_cast<size_t>(n))
               ? n
               : 0;  // Short write = dead peer; eof the stream.
  }

 private:
  bool WriteAll(const char* s, size_t n) {
    size_t done = 0;
    while (done < n) {
      ssize_t w = ::write(fd_, s + done, n - done);
      if (w < 0 && errno == EINTR) continue;
      if (w <= 0) return false;
      done += static_cast<size_t>(w);
    }
    return true;
  }

  int fd_;
  char buf_[4096];
};

int ServeSocket(Server& server, int port, int sessions) {
  int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::perror("wydb_serve: socket");
    return 1;
  }
  int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd, sessions + 4) < 0) {
    std::perror("wydb_serve: bind/listen");
    ::close(listen_fd);
    return 1;
  }
  std::fprintf(stderr,
               "wydb_serve: listening on 127.0.0.1:%d (%d sessions)\n", port,
               sessions);
  // One session per connection; up to `sessions` more wait in the pool
  // queue, and TrySubmit failing past that is the shed signal.
  TaskPool pool(sessions, static_cast<size_t>(sessions));
  for (;;) {
    int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) {
        if (g_stop) break;
        continue;
      }
      std::perror("wydb_serve: accept");
      break;
    }
    if (g_stop) {
      ::close(conn);
      break;
    }
    bool queued = pool.TrySubmit([&server, conn] {
      RegisterConn(conn);
      FdStreamBuf buf(conn);
      std::istream in(&buf);
      std::ostream out(&buf);
      server.ServeStream(in, out);
      UnregisterAndClose(conn);
    });
    if (!queued) {
      // At capacity: shed this connection instead of stalling the ones
      // already being served. Best-effort write; the peer may be gone.
      const char kShed[] = "error: server at capacity, try again later\n";
      ssize_t ignored = ::write(conn, kShed, sizeof(kShed) - 1);
      (void)ignored;
      ::close(conn);
    }
  }
  ::close(listen_fd);
  // Graceful drain: unblock in-flight reads, wait the sessions out,
  // then make the journal durable before exiting.
  ShutdownActiveConns();
  pool.Drain();
  Status flushed = server.FlushJournal();
  if (!flushed.ok()) {
    std::fprintf(stderr, "wydb_serve: journal flush failed: %s\n",
                 flushed.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 &&
      (!std::strcmp(argv[1], "--help") || !std::strcmp(argv[1], "help"))) {
    std::fputs(kHelp, stdout);
    return 0;
  }
  int port = 0;
  int sessions = 4;
  ServerOptions options;
  std::vector<const char*> preloads;
  for (int a = 1; a < argc; ++a) {
    auto next = [&](const char* opt) -> const char* {
      if (a + 1 >= argc) FailMissingValue(opt);
      return argv[++a];
    };
    if (!std::strcmp(argv[a], "--port")) {
      port = ParseCountFlag("--port", next("--port"));
      if (port < 1 || port > 65535) return Fail("--port wants 1-65535");
    } else if (!std::strcmp(argv[a], "--sessions")) {
      sessions = ParseCountFlag("--sessions", next("--sessions"));
      if (sessions < 1) return Fail("--sessions must be at least 1");
    } else if (!std::strcmp(argv[a], "--max-states")) {
      options.max_states = static_cast<uint64_t>(
          ParseCountFlag("--max-states", next("--max-states")));
    } else if (!std::strcmp(argv[a], "--timeout-ms")) {
      options.timeout_ms = ParseCountFlag("--timeout-ms", next("--timeout-ms"));
    } else if (!std::strcmp(argv[a], "--cache-entries")) {
      options.cache_entries =
          ParseCountFlag("--cache-entries", next("--cache-entries"));
      if (options.cache_entries < 1) {
        return Fail("--cache-entries must be at least 1");
      }
    } else if (!std::strcmp(argv[a], "--journal")) {
      options.journal_path = next("--journal");
    } else if (!std::strcmp(argv[a], "--journal-fsync")) {
      options.journal_fsync_every =
          ParseCountFlag("--journal-fsync", next("--journal-fsync"));
    } else if (!std::strcmp(argv[a], "--journal-compact")) {
      options.journal_compact_slack =
          ParseCountFlag("--journal-compact", next("--journal-compact"));
    } else if (!std::strcmp(argv[a], "--engine")) {
      const char* name = next("--engine");
      if (!std::strcmp(name, "incremental")) {
        options.engine = SearchEngine::kIncremental;
      } else if (!std::strcmp(name, "reference")) {
        options.engine = SearchEngine::kNaiveReference;
      } else if (!std::strcmp(name, "parallel")) {
        options.engine = SearchEngine::kParallelSharded;
      } else if (!std::strcmp(name, "reduced")) {
        options.engine = SearchEngine::kReduced;
      } else {
        return Fail(
            "--engine wants incremental, reference, parallel, or reduced");
      }
    } else if (!std::strcmp(argv[a], "--search-threads")) {
      options.search_threads =
          ParseCountFlag("--search-threads", next("--search-threads"));
    } else if (!std::strcmp(argv[a], "--store-encoding")) {
      const char* name = next("--store-encoding");
      if (!std::strcmp(name, "plain")) {
        options.store.encoding = StoreOptions::KeyEncoding::kPlain;
      } else if (!std::strcmp(name, "delta")) {
        options.store.encoding = StoreOptions::KeyEncoding::kDelta;
      } else if (!std::strcmp(name, "compact")) {
        return Fail(
            "--store-encoding compact is refused: compacted verdicts are "
            "probabilistic and must not be cached as certificates");
      } else {
        return Fail("--store-encoding wants plain or delta");
      }
    } else if (!std::strcmp(argv[a], "--mem-budget-mb")) {
      options.store.mem_budget_mb =
          ParseCountFlag("--mem-budget-mb", next("--mem-budget-mb"));
    } else if (!std::strcmp(argv[a], "--preload")) {
      preloads.push_back(next("--preload"));
    } else {
      return Fail("unknown option");
    }
  }
  if (options.journal_path.empty() &&
      (options.journal_fsync_every != 8 ||
       options.journal_compact_slack != 256)) {
    return Fail("--journal-fsync/--journal-compact need --journal");
  }

  // A dead client must only end its own session, not the process: EPIPE
  // from write() is handled per-stream, so the signal is unwanted.
  std::signal(SIGPIPE, SIG_IGN);
  struct sigaction sa{};
  sa.sa_handler = StopHandler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // No SA_RESTART: accept/read must return EINTR.
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);

  auto server = Server::Create(options);
  if (!server.ok()) {
    std::fprintf(stderr, "wydb_serve: %s\n",
                 server.status().ToString().c_str());
    PrintUsage(stderr);
    return 2;
  }

  for (const char* path : preloads) {
    std::ifstream file(path);
    if (!file) {
      std::fprintf(stderr, "wydb_serve: cannot open --preload file '%s'\n",
                   path);
      return 2;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    Status st = server->Preload(buffer.str());
    if (!st.ok()) {
      std::fprintf(stderr, "wydb_serve: --preload '%s' failed: %s\n", path,
                   st.ToString().c_str());
      return 2;
    }
    std::fprintf(stderr, "wydb_serve: preloaded %s\n", path);
  }

  if (port > 0) return ServeSocket(*server, port, sessions);
  server->ServeStream(std::cin, std::cout);
  Status flushed = server->FlushJournal();
  if (!flushed.ok()) {
    std::fprintf(stderr, "wydb_serve: journal flush failed: %s\n",
                 flushed.ToString().c_str());
    return 1;
  }
  return 0;
}
