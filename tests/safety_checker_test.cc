// Tests for the exact Lemma 1 checker: safety, and safety+deadlock-freedom.
#include <gtest/gtest.h>

#include <chrono>
#include <utility>
#include <vector>

#include "analysis/deadlock_checker.h"
#include "analysis/safety_checker.h"
#include "core/conflict_graph.h"
#include "gen/system_gen.h"
#include "tests/test_util.h"

namespace wydb {
namespace {

using testutil::MakeDb;
using testutil::MakeSeq;
using testutil::MakeSystem;

TEST(SafetyCheckerTest, TwoPhaseSameOrderIsSafeAndDf) {
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  std::vector<Transaction> txns;
  txns.push_back(MakeSeq(db.get(), "T1", {"Lx", "Ly", "Ux", "Uy"}));
  txns.push_back(MakeSeq(db.get(), "T2", {"Lx", "Ly", "Ux", "Uy"}));
  TransactionSystem sys = MakeSystem(db.get(), std::move(txns));
  auto report = CheckSafeAndDeadlockFree(sys);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->holds);
}

TEST(SafetyCheckerTest, OppositeOrderFailsSafeDf) {
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  std::vector<Transaction> txns;
  txns.push_back(MakeSeq(db.get(), "T1", {"Lx", "Ly", "Ux", "Uy"}));
  txns.push_back(MakeSeq(db.get(), "T2", {"Ly", "Lx", "Ux", "Uy"}));
  TransactionSystem sys = MakeSystem(db.get(), std::move(txns));
  auto report = CheckSafeAndDeadlockFree(sys);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->holds);
  ASSERT_TRUE(report->violation.has_value());
  // The violating partial schedule must be legal and have a cyclic D(S').
  EXPECT_TRUE(
      ValidateSchedule(sys, report->violation->schedule, false).ok());
  auto cg = ConflictGraph::FromSchedule(sys, report->violation->schedule);
  ASSERT_TRUE(cg.ok());
  EXPECT_FALSE(cg->IsAcyclic());
}

TEST(SafetyCheckerTest, EarlyUnlockIsUnsafeButDeadlockFree) {
  // Both transactions lock/unlock x then y in the same order but release
  // early: no deadlock is possible, yet schedules are not serializable.
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  std::vector<Transaction> txns;
  txns.push_back(MakeSeq(db.get(), "T1", {"Lx", "Ux", "Ly", "Uy"}));
  txns.push_back(MakeSeq(db.get(), "T2", {"Lx", "Ux", "Ly", "Uy"}));
  TransactionSystem sys = MakeSystem(db.get(), std::move(txns));

  auto safety = CheckSafety(sys);
  ASSERT_TRUE(safety.ok());
  EXPECT_FALSE(safety->holds);
  ASSERT_TRUE(safety->violation.has_value());
  // Safety violations must be COMPLETE schedules.
  EXPECT_TRUE(
      ValidateSchedule(sys, safety->violation->schedule, true).ok());

  auto df = CheckDeadlockFreedom(sys);
  ASSERT_TRUE(df.ok());
  EXPECT_TRUE(df->deadlock_free);

  auto both = CheckSafeAndDeadlockFree(sys);
  ASSERT_TRUE(both.ok());
  EXPECT_FALSE(both->holds);
}

TEST(SafetyCheckerTest, DeadlockableButSafeSystem) {
  // Two-phase locked transactions are always safe [EGLT], but opposite
  // lock orders deadlock: safety holds, safe+DF does not.
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  std::vector<Transaction> txns;
  txns.push_back(MakeSeq(db.get(), "T1", {"Lx", "Ly", "Ux", "Uy"}));
  txns.push_back(MakeSeq(db.get(), "T2", {"Ly", "Lx", "Ux", "Uy"}));
  TransactionSystem sys = MakeSystem(db.get(), std::move(txns));
  auto safety = CheckSafety(sys);
  ASSERT_TRUE(safety.ok());
  EXPECT_TRUE(safety->holds);
  auto df = CheckDeadlockFreedom(sys);
  ASSERT_TRUE(df.ok());
  EXPECT_FALSE(df->deadlock_free);
}

TEST(SafetyCheckerTest, DisjointSystemTriviallySafeDf) {
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  std::vector<Transaction> txns;
  txns.push_back(MakeSeq(db.get(), "T1", {"Lx", "Ux"}));
  txns.push_back(MakeSeq(db.get(), "T2", {"Ly", "Uy"}));
  TransactionSystem sys = MakeSystem(db.get(), std::move(txns));
  auto report = CheckSafeAndDeadlockFree(sys);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->holds);
}

TEST(SafetyCheckerTest, BudgetReported) {
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  std::vector<Transaction> txns;
  txns.push_back(MakeSeq(db.get(), "T1", {"Lx", "Ly", "Ux", "Uy"}));
  txns.push_back(MakeSeq(db.get(), "T2", {"Ly", "Lx", "Ux", "Uy"}));
  TransactionSystem sys = MakeSystem(db.get(), std::move(txns));
  SafetyCheckOptions opts;
  opts.max_states = 1;
  EXPECT_EQ(CheckSafeAndDeadlockFree(sys, opts).status().code(),
            StatusCode::kResourceExhausted);
}

// Lemma 1 decomposition: safe+DF == safe AND deadlock-free, across random
// systems (small enough for the exact checkers).
TEST(SafetyCheckerProperty, Lemma1EquivalenceOnRandomSystems) {
  int nontrivial = 0;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    RandomSystemOptions opts;
    opts.num_sites = 2;
    opts.entities_per_site = 2;
    opts.num_transactions = 2;
    opts.entities_per_txn = 2;
    opts.seed = seed;
    auto sys = GenerateRandomSystem(opts);
    ASSERT_TRUE(sys.ok());

    auto both = CheckSafeAndDeadlockFree(*sys->system);
    auto safe = CheckSafety(*sys->system);
    auto df = CheckDeadlockFreedom(*sys->system);
    ASSERT_TRUE(both.ok());
    ASSERT_TRUE(safe.ok());
    ASSERT_TRUE(df.ok());
    EXPECT_EQ(both->holds, safe->holds && df->deadlock_free)
        << "seed " << seed;
    if (!both->holds) ++nontrivial;
  }
  EXPECT_GT(nontrivial, 0);  // The workload actually exercises failures.
}

// ---------------------------------------------------------------------
// Per-request deadlines.

TEST(SafetyCheckerTest, ExpiredDeadlineIsResourceExhausted) {
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  std::vector<Transaction> txns;
  txns.push_back(MakeSeq(db.get(), "T1", {"Lx", "Ly", "Ux", "Uy"}));
  txns.push_back(MakeSeq(db.get(), "T2", {"Ly", "Lx", "Ux", "Uy"}));
  TransactionSystem sys = MakeSystem(db.get(), std::move(txns));
  for (SearchEngine engine :
       {SearchEngine::kNaiveReference, SearchEngine::kIncremental,
        SearchEngine::kParallelSharded, SearchEngine::kReduced}) {
    SafetyCheckOptions opts;
    opts.engine = engine;
    opts.deadline = std::chrono::steady_clock::now() -
                    std::chrono::milliseconds(1);
    auto report = CheckSafeAndDeadlockFree(sys, opts);
    ASSERT_FALSE(report.ok());
    EXPECT_EQ(report.status().code(), StatusCode::kResourceExhausted);
    EXPECT_NE(report.status().message().find("deadline"), std::string::npos)
        << report.status().ToString();
  }
}

TEST(SafetyCheckerTest, GenerousDeadlineDoesNotChangeTheVerdict) {
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  std::vector<Transaction> txns;
  txns.push_back(MakeSeq(db.get(), "T1", {"Lx", "Ly", "Ux", "Uy"}));
  txns.push_back(MakeSeq(db.get(), "T2", {"Ly", "Lx", "Ux", "Uy"}));
  TransactionSystem sys = MakeSystem(db.get(), std::move(txns));
  SafetyCheckOptions opts;
  opts.deadline = std::chrono::steady_clock::now() + std::chrono::hours(1);
  auto with = CheckSafeAndDeadlockFree(sys, opts);
  auto without = CheckSafeAndDeadlockFree(sys);
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(with->holds, without->holds);
  EXPECT_EQ(with->states_visited, without->states_visited);
  // The poll counter is the evidence the budget was live: present when
  // a deadline is set, zero when not.
  EXPECT_GT(with->deadline_polls, 0u);
  EXPECT_EQ(without->deadline_polls, 0u);
}

/// The acceptance bar for enforced deadlines: on a state space far too
/// large to exhaust, the parallel engine must answer ResourceExhausted
/// within 2x the wall-clock budget — in-level polling, not just
/// per-level, so one long level cannot blow through the deadline.
TEST(SafetyCheckerTest, ParallelEngineAnswersWithinTwiceTheBudget) {
  // Ten identical same-order transactions over two entities: certified,
  // so the search has no early witness out — it must be stopped by the
  // clock (the reachable (state, arc-set) space is ~5^10).
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  std::vector<Transaction> txns;
  for (int i = 0; i < 10; ++i) {
    txns.push_back(
        MakeSeq(db.get(), "T" + std::to_string(i), {"Lx", "Ly", "Ux", "Uy"}));
  }
  TransactionSystem sys = MakeSystem(db.get(), std::move(txns));
  SafetyCheckOptions opts;
  opts.engine = SearchEngine::kParallelSharded;
  opts.max_states = 0;  // The deadline is the only bound.
  const auto budget = std::chrono::milliseconds(500);
  const auto start = std::chrono::steady_clock::now();
  opts.deadline = start + budget;
  auto report = CheckSafeAndDeadlockFree(sys, opts);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(report.status().message().find("deadline"), std::string::npos);
  EXPECT_LT(elapsed, 2 * budget)
      << std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
             .count()
      << " ms";
}

// ---------------------------------------------------------------------
// The delta gate (incremental recertification, docs/SERVE.md).

TEST(SafetyCheckerTest, DeltaTxnOptionIsValidated) {
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  std::vector<Transaction> txns;
  txns.push_back(MakeSeq(db.get(), "T1", {"Lx", "Ly", "Ux", "Uy"}));
  txns.push_back(MakeSeq(db.get(), "T2", {"Lx", "Ly", "Ux", "Uy"}));
  TransactionSystem sys = MakeSystem(db.get(), std::move(txns));

  SafetyCheckOptions opts;
  opts.delta_txn = 5;  // Out of range.
  EXPECT_EQ(CheckSafeAndDeadlockFree(sys, opts).status().code(),
            StatusCode::kInvalidArgument);

  opts.delta_txn = 1;
  opts.engine = SearchEngine::kReduced;  // Gate lives on kIncremental.
  auto wrong_engine = CheckSafeAndDeadlockFree(sys, opts);
  ASSERT_FALSE(wrong_engine.ok());
  EXPECT_NE(wrong_engine.status().message().find("incremental engine"),
            std::string::npos)
      << wrong_engine.status().ToString();

  // The gate's soundness argument is specific to safe+DF; plain safety
  // (complete schedules) rejects it.
  opts.engine = SearchEngine::kIncremental;
  EXPECT_EQ(CheckSafety(sys, opts).status().code(),
            StatusCode::kInvalidArgument);
}

// Under the gate's precondition — the system minus the delta transaction
// is already certified — the delta run must agree with the full run bit
// for bit, while actually skipping cycle tests.
TEST(SafetyCheckerProperty, DeltaGateMatchesFullRunOnCertifiedBases) {
  int exercised = 0;
  uint64_t total_skipped = 0;
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    // A certified base: the safe generator's systems are safe+DF.
    SafeSystemOptions gopts;
    gopts.num_transactions = 3;
    gopts.entities_per_txn = 2;
    gopts.seed = seed;
    auto base = GenerateSafeSystem(gopts);
    ASSERT_TRUE(base.ok());
    ASSERT_TRUE(CheckSafeAndDeadlockFree(*base->system)->holds);

    // Add one random transaction over the same entities; the result may
    // or may not stay certified — the gate must agree either way.
    RandomSystemOptions ropts;
    ropts.num_sites = base->db->num_sites();
    ropts.entities_per_site = 1;
    ropts.num_transactions = 1;
    ropts.entities_per_txn = 2;
    ropts.seed = seed * 31 + 7;
    auto extra = GenerateRandomSystem(ropts);
    ASSERT_TRUE(extra.ok());
    std::vector<Step> steps;
    std::vector<std::pair<int, int>> arcs;
    const Transaction& src = extra->system->txn(0);
    for (NodeId v = 0; v < src.num_steps(); ++v) {
      Step s = src.step(v);
      // Remap into the base database by entity index (both databases
      // enumerate entities densely).
      s.entity = s.entity % base->db->num_entities();
      steps.push_back(s);
    }
    for (NodeId v = 0; v + 1 < src.num_steps(); ++v) arcs.emplace_back(v, v + 1);
    // Duplicate entity accesses after remapping make Create fail; skip
    // those seeds rather than special-casing the remap.
    auto delta =
        Transaction::Create(base->db.get(), "Delta", steps, arcs);
    if (!delta.ok()) continue;

    std::vector<Transaction> all;
    for (int t = 0; t < base->system->num_transactions(); ++t) {
      all.push_back(base->system->txn(t));
    }
    all.push_back(std::move(*delta));
    auto sys = TransactionSystem::Create(base->db.get(), std::move(all));
    if (!sys.ok()) continue;

    SafetyCheckOptions gated;
    gated.delta_txn = sys->num_transactions() - 1;
    auto fast = CheckSafeAndDeadlockFree(*sys, gated);
    auto full = CheckSafeAndDeadlockFree(*sys);
    ASSERT_TRUE(fast.ok()) << fast.status().ToString();
    ASSERT_TRUE(full.ok());
    EXPECT_EQ(fast->holds, full->holds) << "seed " << seed;
    EXPECT_EQ(fast->states_visited, full->states_visited) << "seed " << seed;
    if (!fast->holds) {
      ASSERT_TRUE(fast->violation.has_value());
      EXPECT_EQ(fast->violation->schedule, full->violation->schedule)
          << "seed " << seed;
    }
    EXPECT_EQ(full->delta_skipped_tests, 0u);
    total_skipped += fast->delta_skipped_tests;
    ++exercised;
  }
  EXPECT_GT(exercised, 20);     // The remap filter leaves real coverage.
  EXPECT_GT(total_skipped, 0u);  // The gate actually fires.
}

// Safe-by-construction generator really is safe+DF.
TEST(SafetyCheckerProperty, SafeGeneratorIsSafeDf) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    SafeSystemOptions opts;
    opts.num_transactions = 3;
    opts.entities_per_txn = 2;
    opts.seed = seed;
    auto sys = GenerateSafeSystem(opts);
    ASSERT_TRUE(sys.ok());
    auto report = CheckSafeAndDeadlockFree(*sys->system);
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->holds) << "seed " << seed;
  }
}

}  // namespace
}  // namespace wydb
