// Tests for the exact Lemma 1 checker: safety, and safety+deadlock-freedom.
#include <gtest/gtest.h>

#include "analysis/deadlock_checker.h"
#include "analysis/safety_checker.h"
#include "core/conflict_graph.h"
#include "gen/system_gen.h"
#include "tests/test_util.h"

namespace wydb {
namespace {

using testutil::MakeDb;
using testutil::MakeSeq;
using testutil::MakeSystem;

TEST(SafetyCheckerTest, TwoPhaseSameOrderIsSafeAndDf) {
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  std::vector<Transaction> txns;
  txns.push_back(MakeSeq(db.get(), "T1", {"Lx", "Ly", "Ux", "Uy"}));
  txns.push_back(MakeSeq(db.get(), "T2", {"Lx", "Ly", "Ux", "Uy"}));
  TransactionSystem sys = MakeSystem(db.get(), std::move(txns));
  auto report = CheckSafeAndDeadlockFree(sys);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->holds);
}

TEST(SafetyCheckerTest, OppositeOrderFailsSafeDf) {
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  std::vector<Transaction> txns;
  txns.push_back(MakeSeq(db.get(), "T1", {"Lx", "Ly", "Ux", "Uy"}));
  txns.push_back(MakeSeq(db.get(), "T2", {"Ly", "Lx", "Ux", "Uy"}));
  TransactionSystem sys = MakeSystem(db.get(), std::move(txns));
  auto report = CheckSafeAndDeadlockFree(sys);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->holds);
  ASSERT_TRUE(report->violation.has_value());
  // The violating partial schedule must be legal and have a cyclic D(S').
  EXPECT_TRUE(
      ValidateSchedule(sys, report->violation->schedule, false).ok());
  auto cg = ConflictGraph::FromSchedule(sys, report->violation->schedule);
  ASSERT_TRUE(cg.ok());
  EXPECT_FALSE(cg->IsAcyclic());
}

TEST(SafetyCheckerTest, EarlyUnlockIsUnsafeButDeadlockFree) {
  // Both transactions lock/unlock x then y in the same order but release
  // early: no deadlock is possible, yet schedules are not serializable.
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  std::vector<Transaction> txns;
  txns.push_back(MakeSeq(db.get(), "T1", {"Lx", "Ux", "Ly", "Uy"}));
  txns.push_back(MakeSeq(db.get(), "T2", {"Lx", "Ux", "Ly", "Uy"}));
  TransactionSystem sys = MakeSystem(db.get(), std::move(txns));

  auto safety = CheckSafety(sys);
  ASSERT_TRUE(safety.ok());
  EXPECT_FALSE(safety->holds);
  ASSERT_TRUE(safety->violation.has_value());
  // Safety violations must be COMPLETE schedules.
  EXPECT_TRUE(
      ValidateSchedule(sys, safety->violation->schedule, true).ok());

  auto df = CheckDeadlockFreedom(sys);
  ASSERT_TRUE(df.ok());
  EXPECT_TRUE(df->deadlock_free);

  auto both = CheckSafeAndDeadlockFree(sys);
  ASSERT_TRUE(both.ok());
  EXPECT_FALSE(both->holds);
}

TEST(SafetyCheckerTest, DeadlockableButSafeSystem) {
  // Two-phase locked transactions are always safe [EGLT], but opposite
  // lock orders deadlock: safety holds, safe+DF does not.
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  std::vector<Transaction> txns;
  txns.push_back(MakeSeq(db.get(), "T1", {"Lx", "Ly", "Ux", "Uy"}));
  txns.push_back(MakeSeq(db.get(), "T2", {"Ly", "Lx", "Ux", "Uy"}));
  TransactionSystem sys = MakeSystem(db.get(), std::move(txns));
  auto safety = CheckSafety(sys);
  ASSERT_TRUE(safety.ok());
  EXPECT_TRUE(safety->holds);
  auto df = CheckDeadlockFreedom(sys);
  ASSERT_TRUE(df.ok());
  EXPECT_FALSE(df->deadlock_free);
}

TEST(SafetyCheckerTest, DisjointSystemTriviallySafeDf) {
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  std::vector<Transaction> txns;
  txns.push_back(MakeSeq(db.get(), "T1", {"Lx", "Ux"}));
  txns.push_back(MakeSeq(db.get(), "T2", {"Ly", "Uy"}));
  TransactionSystem sys = MakeSystem(db.get(), std::move(txns));
  auto report = CheckSafeAndDeadlockFree(sys);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->holds);
}

TEST(SafetyCheckerTest, BudgetReported) {
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  std::vector<Transaction> txns;
  txns.push_back(MakeSeq(db.get(), "T1", {"Lx", "Ly", "Ux", "Uy"}));
  txns.push_back(MakeSeq(db.get(), "T2", {"Ly", "Lx", "Ux", "Uy"}));
  TransactionSystem sys = MakeSystem(db.get(), std::move(txns));
  SafetyCheckOptions opts;
  opts.max_states = 1;
  EXPECT_EQ(CheckSafeAndDeadlockFree(sys, opts).status().code(),
            StatusCode::kResourceExhausted);
}

// Lemma 1 decomposition: safe+DF == safe AND deadlock-free, across random
// systems (small enough for the exact checkers).
TEST(SafetyCheckerProperty, Lemma1EquivalenceOnRandomSystems) {
  int nontrivial = 0;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    RandomSystemOptions opts;
    opts.num_sites = 2;
    opts.entities_per_site = 2;
    opts.num_transactions = 2;
    opts.entities_per_txn = 2;
    opts.seed = seed;
    auto sys = GenerateRandomSystem(opts);
    ASSERT_TRUE(sys.ok());

    auto both = CheckSafeAndDeadlockFree(*sys->system);
    auto safe = CheckSafety(*sys->system);
    auto df = CheckDeadlockFreedom(*sys->system);
    ASSERT_TRUE(both.ok());
    ASSERT_TRUE(safe.ok());
    ASSERT_TRUE(df.ok());
    EXPECT_EQ(both->holds, safe->holds && df->deadlock_free)
        << "seed " << seed;
    if (!both->holds) ++nontrivial;
  }
  EXPECT_GT(nontrivial, 0);  // The workload actually exercises failures.
}

// Safe-by-construction generator really is safe+DF.
TEST(SafetyCheckerProperty, SafeGeneratorIsSafeDf) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    SafeSystemOptions opts;
    opts.num_transactions = 3;
    opts.entities_per_txn = 2;
    opts.seed = seed;
    auto sys = GenerateSafeSystem(opts);
    ASSERT_TRUE(sys.ok());
    auto report = CheckSafeAndDeadlockFree(*sys->system);
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->holds) << "seed " << seed;
  }
}

}  // namespace
}  // namespace wydb
