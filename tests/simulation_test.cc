// End-to-end simulation tests, including the cross-validation between the
// paper's static certificates and runtime behaviour (experiment E6, and
// the runtime half of E1).
#include <gtest/gtest.h>

#include "analysis/deadlock_checker.h"
#include "core/conflict_graph.h"
#include "gen/system_gen.h"
#include "runtime/simulation.h"
#include "tests/test_util.h"

namespace wydb {
namespace {

using testutil::MakeDb;
using testutil::MakeSeq;
using testutil::MakeSystem;

TransactionSystem ClassicDeadlockPair(const Database* db) {
  std::vector<Transaction> txns;
  txns.push_back(MakeSeq(db, "T1", {"Lx", "Ly", "Ux", "Uy"}));
  txns.push_back(MakeSeq(db, "T2", {"Ly", "Lx", "Ux", "Uy"}));
  return MakeSystem(db, std::move(txns));
}

TEST(SimulationTest, DisjointSystemCommits) {
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  std::vector<Transaction> txns;
  txns.push_back(MakeSeq(db.get(), "T1", {"Lx", "Ux"}));
  txns.push_back(MakeSeq(db.get(), "T2", {"Ly", "Uy"}));
  TransactionSystem sys = MakeSystem(db.get(), std::move(txns));
  auto res = RunSimulation(sys, SimOptions{});
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->all_committed);
  EXPECT_FALSE(res->deadlocked);
  EXPECT_EQ(res->aborts, 0u);
  EXPECT_TRUE(res->history_serializable);
  EXPECT_EQ(res->committed_history.size(), 4u);
  EXPECT_GT(res->messages, 0u);
  EXPECT_GT(res->makespan, 0u);
}

TEST(SimulationTest, DeadlockablePairDeadlocksUnderSomeSeedWithBlocking) {
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  TransactionSystem sys = ClassicDeadlockPair(db.get());
  int deadlocks = 0, commits = 0;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    SimOptions opts;
    opts.policy = ConflictPolicy::kBlock;
    opts.seed = seed;
    auto res = RunSimulation(sys, opts);
    ASSERT_TRUE(res.ok());
    if (res->deadlocked) {
      ++deadlocks;
      EXPECT_EQ(res->blocked_txns.size(), 2u);
    }
    if (res->all_committed) ++commits;
  }
  // Both outcomes must occur across seeds: the race is real.
  EXPECT_GT(deadlocks, 0);
  EXPECT_GT(commits, 0);
}

TEST(SimulationTest, DetectPolicyAlwaysCommits) {
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  TransactionSystem sys = ClassicDeadlockPair(db.get());
  uint64_t detector_runs = 0, aborts = 0;
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    SimOptions opts;
    opts.policy = ConflictPolicy::kDetect;
    opts.seed = seed;
    auto res = RunSimulation(sys, opts);
    ASSERT_TRUE(res.ok());
    EXPECT_TRUE(res->all_committed) << "seed " << seed;
    EXPECT_FALSE(res->deadlocked);
    EXPECT_TRUE(res->history_serializable) << "seed " << seed;
    detector_runs += res->detector_runs;
    aborts += res->aborts;
  }
  EXPECT_GT(detector_runs, 0u);
  EXPECT_GT(aborts, 0u);  // Some run had to break a cycle.
}

TEST(SimulationTest, WoundWaitAndWaitDieNeverDeadlock) {
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  TransactionSystem sys = ClassicDeadlockPair(db.get());
  for (auto policy : {ConflictPolicy::kWoundWait, ConflictPolicy::kWaitDie}) {
    for (uint64_t seed = 1; seed <= 30; ++seed) {
      SimOptions opts;
      opts.policy = policy;
      opts.seed = seed;
      auto res = RunSimulation(sys, opts);
      ASSERT_TRUE(res.ok());
      EXPECT_FALSE(res->deadlocked)
          << ConflictPolicyName(policy) << " seed " << seed;
      EXPECT_TRUE(res->all_committed)
          << ConflictPolicyName(policy) << " seed " << seed;
      EXPECT_TRUE(res->history_serializable);
    }
  }
}

TEST(SimulationTest, CommittedHistoryIsLegalSchedule) {
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  TransactionSystem sys = ClassicDeadlockPair(db.get());
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    SimOptions opts;
    opts.policy = ConflictPolicy::kWoundWait;
    opts.seed = seed;
    auto res = RunSimulation(sys, opts);
    ASSERT_TRUE(res.ok());
    if (!res->all_committed) continue;
    EXPECT_TRUE(
        ValidateSchedule(sys, res->committed_history, true).ok())
        << "seed " << seed;
  }
}

TEST(SimulationTest, DeterministicForSeed) {
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  TransactionSystem sys = ClassicDeadlockPair(db.get());
  for (auto policy : {ConflictPolicy::kBlock, ConflictPolicy::kWoundWait,
                      ConflictPolicy::kDetect}) {
    for (uint64_t seed : {3u, 11u, 29u}) {
      SimOptions opts;
      opts.policy = policy;
      opts.seed = seed;
      auto a = RunSimulation(sys, opts);
      auto b = RunSimulation(sys, opts);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_EQ(a->deadlocked, b->deadlocked);
      EXPECT_EQ(a->makespan, b->makespan);
      EXPECT_EQ(a->events, b->events);
      EXPECT_EQ(a->messages, b->messages);
      EXPECT_EQ(a->aborts, b->aborts);
      EXPECT_EQ(a->blocked_txns, b->blocked_txns);
      // The committed histories are bit-identical, step for step.
      EXPECT_EQ(a->committed_history, b->committed_history);
    }
  }
}

TEST(SimulationTest, RunManyAggregates) {
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  TransactionSystem sys = ClassicDeadlockPair(db.get());
  SimOptions base;
  base.policy = ConflictPolicy::kBlock;
  auto agg = RunMany(sys, base, 25);
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->runs, 25);
  EXPECT_EQ(agg->committed_runs + agg->deadlocked_runs, 25);
  EXPECT_TRUE(agg->all_histories_serializable);
  EXPECT_GT(agg->avg_makespan, 0.0);
}

// E6 / E1 cross-validation: statically certified safe+DF systems never
// deadlock at runtime under pure blocking; statically refuted systems
// deadlock for some seed.
TEST(SimulationCrossVal, CertifiedSystemsNeverDeadlock) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    SafeSystemOptions gopts;
    gopts.num_transactions = 4;
    gopts.entities_per_txn = 3;
    gopts.seed = seed;
    auto sys = GenerateSafeSystem(gopts);
    ASSERT_TRUE(sys.ok());
    SimOptions opts;
    opts.policy = ConflictPolicy::kBlock;
    auto agg = RunMany(*sys->system, opts, 20);
    ASSERT_TRUE(agg.ok());
    EXPECT_EQ(agg->deadlocked_runs, 0) << "seed " << seed;
    EXPECT_EQ(agg->committed_runs, 20) << "seed " << seed;
    EXPECT_TRUE(agg->all_histories_serializable) << "seed " << seed;
  }
}

TEST(SimulationCrossVal, RingSystemDeadlocksAtRuntime) {
  auto ring = GenerateRingSystem(3);
  ASSERT_TRUE(ring.ok());
  // Statically refuted...
  auto report = CheckDeadlockFreedom(*ring->system);
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->deadlock_free);
  // ...and dynamically reachable.
  SimOptions opts;
  opts.policy = ConflictPolicy::kBlock;
  auto agg = RunMany(*ring->system, opts, 40);
  ASSERT_TRUE(agg.ok());
  EXPECT_GT(agg->deadlocked_runs, 0);
}

// Statically deadlock-free random systems never deadlock at runtime under
// blocking, regardless of seed (the runtime half of Theorem 1).
TEST(SimulationCrossVal, StaticallyDeadlockFreeNeverDeadlocksAtRuntime) {
  int df_systems = 0;
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    RandomSystemOptions gopts;
    gopts.num_transactions = 3;
    gopts.entities_per_txn = 2;
    gopts.seed = seed;
    auto sys = GenerateRandomSystem(gopts);
    ASSERT_TRUE(sys.ok());
    auto report = CheckDeadlockFreedom(*sys->system);
    ASSERT_TRUE(report.ok());
    if (!report->deadlock_free) continue;
    ++df_systems;
    SimOptions opts;
    opts.policy = ConflictPolicy::kBlock;
    auto agg = RunMany(*sys->system, opts, 15);
    ASSERT_TRUE(agg.ok());
    EXPECT_EQ(agg->deadlocked_runs, 0) << "seed " << seed;
  }
  EXPECT_GT(df_systems, 0);
}

}  // namespace
}  // namespace wydb
