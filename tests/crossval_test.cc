// Parameterized cross-validation sweeps tying the layers together:
// static analysis vs exact oracles vs the simulated runtime.
#include <gtest/gtest.h>

#include "analysis/copies_analyzer.h"
#include "analysis/deadlock_checker.h"
#include "analysis/multi_analyzer.h"
#include "analysis/pair_analyzer.h"
#include "analysis/safety_checker.h"
#include "core/conflict_graph.h"
#include "core/state_space.h"
#include "core/transaction_builder.h"
#include "gen/system_gen.h"
#include "gen/txn_gen.h"
#include "runtime/live_engine.h"
#include "runtime/simulation.h"
#include "runtime/workload.h"
#include "tests/test_util.h"

namespace wydb {
namespace {

// ---------------------------------------------------------------------
// Sweep 1: per-seed random systems; Theorem 4 == Lemma 1 oracle ==
// (deadlock-free => no runtime deadlock under blocking).
class RandomSystemSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomSystemSweep, StaticAnalysesAgreeAndRuntimeRespectsThem) {
  const uint64_t seed = GetParam();
  RandomSystemOptions opts;
  opts.num_sites = 2;
  opts.entities_per_site = 2;
  opts.num_transactions = 3;
  opts.entities_per_txn = 2;
  opts.seed = seed;
  auto sys = GenerateRandomSystem(opts);
  ASSERT_TRUE(sys.ok());
  const TransactionSystem& s = *sys->system;

  auto thm4 = CheckSystemSafeAndDeadlockFree(s);
  auto oracle = CheckSafeAndDeadlockFree(s);
  auto df = CheckDeadlockFreedom(s);
  ASSERT_TRUE(thm4.ok());
  ASSERT_TRUE(oracle.ok());
  ASSERT_TRUE(df.ok());

  EXPECT_EQ(thm4->safe_and_deadlock_free, oracle->holds);

  if (df->deadlock_free) {
    SimOptions sim;
    sim.policy = ConflictPolicy::kBlock;
    sim.seed = seed * 977 + 1;
    auto agg = RunMany(s, sim, 10);
    ASSERT_TRUE(agg.ok());
    EXPECT_EQ(agg->deadlocked_runs, 0);
    EXPECT_EQ(agg->committed_runs, 10);
  }

  if (oracle->holds) {
    // Safe+DF systems produce serializable histories under every policy.
    for (auto policy :
         {ConflictPolicy::kBlock, ConflictPolicy::kWoundWait,
          ConflictPolicy::kWaitDie, ConflictPolicy::kDetect}) {
      SimOptions sim;
      sim.policy = policy;
      sim.seed = seed * 31 + 7;
      auto res = RunSimulation(s, sim);
      ASSERT_TRUE(res.ok());
      EXPECT_TRUE(res->all_committed) << ConflictPolicyName(policy);
      EXPECT_TRUE(res->history_serializable) << ConflictPolicyName(policy);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSystemSweep,
                         ::testing::Range<uint64_t>(1, 26));

// ---------------------------------------------------------------------
// Sweep 2: deadlock-free systems satisfy the paper's alternative
// characterization — EVERY partial schedule extends to a complete one —
// sampled by random walks; and in safe+DF systems every sampled partial
// schedule has an acyclic conflict digraph (Lemma 1).
class WalkSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WalkSweep, ReachableStatesBehaveAccordingToTheVerdicts) {
  const uint64_t seed = GetParam();
  RandomSystemOptions opts;
  opts.num_transactions = 2;
  opts.entities_per_txn = 3;
  opts.num_sites = 3;
  opts.entities_per_site = 2;
  opts.seed = seed;
  auto sys = GenerateRandomSystem(opts);
  ASSERT_TRUE(sys.ok());
  const TransactionSystem& s = *sys->system;

  auto df = CheckDeadlockFreedom(s);
  auto safedf = CheckSafeAndDeadlockFree(s);
  ASSERT_TRUE(df.ok());
  ASSERT_TRUE(safedf.ok());

  StateSpace space(&s);
  Rng rng(seed ^ 0xABCDEF);
  for (int walk = 0; walk < 15; ++walk) {
    ExecState st = space.EmptyState();
    Schedule sched;
    // Random walk of random length.
    int steps = static_cast<int>(rng.NextBelow(
        static_cast<uint64_t>(s.TotalSteps() + 1)));
    for (int i = 0; i < steps; ++i) {
      auto moves = space.LegalMoves(st);
      if (moves.empty()) break;
      GlobalNode g = moves[rng.NextBelow(moves.size())];
      st = space.Apply(st, g);
      sched.push_back(g);
    }
    if (df->deadlock_free) {
      auto completion = TryComplete(s, sched, 500'000);
      ASSERT_TRUE(completion.ok());
      EXPECT_TRUE(completion->has_value())
          << "walk " << walk << ": partial schedule not completable in a "
          << "deadlock-free system (contradicts Theorem 1)";
    }
    if (safedf->holds) {
      auto cg = ConflictGraph::FromSchedule(s, sched);
      ASSERT_TRUE(cg.ok());
      EXPECT_TRUE(cg->IsAcyclic())
          << "walk " << walk << ": cyclic D(S') in a safe+DF system "
          << "(contradicts Lemma 1)";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WalkSweep,
                         ::testing::Range<uint64_t>(1, 21));

// ---------------------------------------------------------------------
// Sweep 3: pair-analyzer agreement across generator shapes.
struct PairShapeParam {
  int sites;
  int entities_per_site;
  int entities_per_txn;
  bool two_phase;
  double arc_prob;
};

class PairShapeSweep : public ::testing::TestWithParam<PairShapeParam> {};

TEST_P(PairShapeSweep, Theorem3MatchesOracleAcrossSeeds) {
  const PairShapeParam& p = GetParam();
  for (uint64_t seed = 1; seed <= 15; ++seed) {
    Rng rng(seed * 131);
    auto db = MakeUniformDatabase(p.sites, p.entities_per_site);
    TxnGenOptions topts;
    topts.entities = SampleEntities(*db, p.entities_per_txn, &rng);
    topts.two_phase = p.two_phase;
    topts.extra_arc_prob = p.arc_prob;
    auto t1 = GenerateTransaction(db.get(), "T1", topts, &rng);
    TxnGenOptions topts2 = topts;
    topts2.entities = SampleEntities(*db, p.entities_per_txn, &rng);
    auto t2 = GenerateTransaction(db.get(), "T2", topts2, &rng);
    ASSERT_TRUE(t1.ok());
    ASSERT_TRUE(t2.ok());

    auto fast = CheckPairTheorem3(*t1, *t2);
    auto slow = CheckPairMinimalPrefix(*t1, *t2);
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(slow.ok());
    EXPECT_EQ(fast->safe_and_deadlock_free, slow->safe_and_deadlock_free)
        << "seed " << seed;

    std::vector<Transaction> txns;
    txns.push_back(std::move(*t1));
    txns.push_back(std::move(*t2));
    auto sys = TransactionSystem::Create(db.get(), std::move(txns));
    ASSERT_TRUE(sys.ok());
    auto oracle = CheckSafeAndDeadlockFree(*sys);
    ASSERT_TRUE(oracle.ok());
    EXPECT_EQ(fast->safe_and_deadlock_free, oracle->holds)
        << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PairShapeSweep,
    ::testing::Values(PairShapeParam{2, 2, 3, false, 0.2},
                      PairShapeParam{3, 1, 3, false, 0.1},
                      PairShapeParam{2, 2, 3, true, 0.2},
                      PairShapeParam{1, 4, 3, false, 0.3},
                      PairShapeParam{4, 1, 4, true, 0.05}));

// ---------------------------------------------------------------------
// Sweep 4: ring sizes — static refutation and runtime deadlock
// reachability, detector always recovers.
class RingSweep : public ::testing::TestWithParam<int> {};

TEST_P(RingSweep, StaticRefutationAndDetectorRecovery) {
  const int k = GetParam();
  auto ring = GenerateRingSystem(k);
  ASSERT_TRUE(ring.ok());
  const TransactionSystem& s = *ring->system;

  auto multi = CheckSystemSafeAndDeadlockFree(s);
  ASSERT_TRUE(multi.ok());
  if (k == 2) {
    // A 2-ring is a failing PAIR (opposite orders), caught at stage 1.
    EXPECT_FALSE(multi->safe_and_deadlock_free);
    EXPECT_TRUE(multi->violation->failed_pair.has_value());
  } else {
    EXPECT_FALSE(multi->safe_and_deadlock_free);
    EXPECT_FALSE(multi->violation->failed_pair.has_value());
    EXPECT_EQ(multi->violation->cycle.size(), static_cast<size_t>(k));
  }

  SimOptions sim;
  sim.policy = ConflictPolicy::kDetect;
  auto agg = RunMany(s, sim, 15);
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->committed_runs, 15);
  EXPECT_EQ(agg->deadlocked_runs, 0);
  EXPECT_TRUE(agg->all_histories_serializable);
}

INSTANTIATE_TEST_SUITE_P(K, RingSweep, ::testing::Range(2, 8));

// ---------------------------------------------------------------------
// Sweep 5: identical copies — the syntactic verdict predicts exact-checker
// behaviour for every d in range.
class CopySweep : public ::testing::TestWithParam<int> {};

TEST_P(CopySweep, SyntacticVerdictMatchesExactCheckerForAllD) {
  const int d = GetParam();
  auto db = std::make_unique<Database>();
  db->AddEntityAtSite("x", "s1").ValueOrDie();
  db->AddEntityAtSite("y", "s2").ValueOrDie();
  struct Shape {
    const char* name;
    std::vector<std::pair<StepKind, std::string>> seq;
  };
  using K = StepKind;
  std::vector<Shape> shapes = {
      {"latched", {{K::kLock, "x"}, {K::kLock, "y"}, {K::kUnlock, "y"},
                   {K::kUnlock, "x"}}},
      {"early", {{K::kLock, "x"}, {K::kUnlock, "x"}, {K::kLock, "y"},
                 {K::kUnlock, "y"}}},
  };
  for (const Shape& shape : shapes) {
    auto t = TransactionBuilder::FromSequence(db.get(), "T", shape.seq);
    ASSERT_TRUE(t.ok());
    CopiesVerdict fast = CheckCopies(*t, d);
    auto sys = MakeCopies(*t, d);
    ASSERT_TRUE(sys.ok());
    auto oracle = CheckSafeAndDeadlockFree(*sys);
    ASSERT_TRUE(oracle.ok());
    EXPECT_EQ(fast.safe_and_deadlock_free, oracle->holds)
        << shape.name << " d=" << d;
  }
}

INSTANTIATE_TEST_SUITE_P(D, CopySweep, ::testing::Range(2, 6));

// ---------------------------------------------------------------------
// Sweep 6: the live wall-clock engine against the static verdict and the
// simulator. Certified systems never deadlock on real threads under the
// detection-free fast path, and rounds-bounded sessions make the
// live-vs-sim commit statistics EXACT (every round eventually commits),
// so the agreement check needs no tolerance band.
class LiveEngineSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LiveEngineSweep, CertifiedSystemsMatchTheSimulatorOnRealThreads) {
  const uint64_t seed = GetParam();
  RandomSystemOptions opts;
  opts.num_sites = 2;
  opts.entities_per_site = 2;
  opts.num_transactions = 3;
  opts.entities_per_txn = 2;
  opts.seed = seed;
  auto sys = GenerateRandomSystem(opts);
  ASSERT_TRUE(sys.ok());
  const TransactionSystem& s = *sys->system;

  auto thm4 = CheckSystemSafeAndDeadlockFree(s);
  ASSERT_TRUE(thm4.ok());
  if (!thm4->safe_and_deadlock_free) return;

  constexpr int kRounds = 5;
  const uint64_t expected =
      static_cast<uint64_t>(s.num_transactions()) * kRounds;

  // Fast path: pure blocking, one thread per transaction. A certified
  // system must commit every round with zero aborts and zero scans.
  LiveOptions live;
  live.policy = ConflictPolicy::kBlock;
  live.seed = seed;
  live.threads = s.num_transactions();
  live.rounds = kRounds;
  auto lr = RunLive(s, live);
  ASSERT_TRUE(lr.ok());
  EXPECT_TRUE(lr->completed);
  EXPECT_FALSE(lr->deadlocked);
  EXPECT_EQ(lr->commits, expected);
  EXPECT_EQ(lr->aborts, 0u);
  EXPECT_EQ(lr->detector_runs, 0u);

  // The simulator on the same system and bound agrees exactly.
  WorkloadOptions sim;
  sim.sim.policy = ConflictPolicy::kBlock;
  sim.sim.seed = seed;
  sim.duration = 0;
  sim.rounds = kRounds;
  auto sr = RunWorkload(s, sim);
  ASSERT_TRUE(sr.ok());
  EXPECT_FALSE(sr->deadlocked);
  EXPECT_EQ(sr->commits, lr->commits);
  EXPECT_EQ(sr->aborts, lr->aborts);

  // The timestamp baselines also drive every round home on certified
  // systems — abort counts are timing-dependent, commit counts are not.
  for (auto policy : {ConflictPolicy::kWoundWait, ConflictPolicy::kWaitDie,
                      ConflictPolicy::kDetect}) {
    LiveOptions o = live;
    o.policy = policy;
    o.backoff_us = 50;
    auto r = RunLive(s, o);
    ASSERT_TRUE(r.ok()) << ConflictPolicyName(policy);
    EXPECT_TRUE(r->completed) << ConflictPolicyName(policy);
    EXPECT_EQ(r->commits, expected) << ConflictPolicyName(policy);

    WorkloadOptions w = sim;
    w.sim.policy = policy;
    auto sw = RunWorkload(s, w);
    ASSERT_TRUE(sw.ok()) << ConflictPolicyName(policy);
    EXPECT_EQ(sw->commits, r->commits) << ConflictPolicyName(policy);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LiveEngineSweep,
                         ::testing::Range<uint64_t>(1, 13));

// Uncertified cyclic systems DO deadlock on real threads when detection
// is disabled — the run is bounded by the watchdog, not by luck — while
// the detection policies resolve the same system. The static refutation,
// the live deadlock, and the live recovery all point the same way.
class LiveRingSweep : public ::testing::TestWithParam<int> {};

TEST_P(LiveRingSweep, UncertifiedRingDeadlocksLiveWithoutDetection) {
  const int k = GetParam();
  auto ring = GenerateRingSystem(k);
  ASSERT_TRUE(ring.ok());
  const TransactionSystem& s = *ring->system;

  auto multi = CheckSystemSafeAndDeadlockFree(s);
  ASSERT_TRUE(multi.ok());
  ASSERT_FALSE(multi->safe_and_deadlock_free);

  LiveOptions o;
  o.policy = ConflictPolicy::kBlock;
  o.threads = k;
  o.rounds = 100000;  // The watchdog ends the session, not the bound.
  o.hold_us = 3000;   // Dwell inside the circular-wait window.
  o.watchdog_interval_ms = 40;
  auto blocked = RunLive(s, o);
  ASSERT_TRUE(blocked.ok());
  EXPECT_TRUE(blocked->deadlocked);
  EXPECT_FALSE(blocked->blocked_txns.empty());

  LiveOptions detect = o;
  detect.policy = ConflictPolicy::kDetect;
  detect.rounds = 10;
  detect.hold_us = 500;
  detect.backoff_us = 100;
  detect.watchdog_interval_ms = 500;
  auto resolved = RunLive(s, detect);
  ASSERT_TRUE(resolved.ok());
  EXPECT_TRUE(resolved->completed);
  EXPECT_EQ(resolved->commits, static_cast<uint64_t>(k) * 10u);
}

INSTANTIATE_TEST_SUITE_P(K, LiveRingSweep, ::testing::Values(3, 4));

// ---------------------------------------------------------------------
// Sweep 7: X-only regression guard for the S/X machinery. On an X-only
// system DemoteToX is the identity transform, so every engine at every
// thread count must produce bit-identical verdicts, witness schedules and
// states_visited counts on the original and the demoted copy — and the
// simulator the same run — proving the mode plumbing cannot perturb
// exclusive-only workloads.
class XOnlyDemotionSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(XOnlyDemotionSweep, DemotionIsTheIdentityOnExclusiveOnlySystems) {
  const uint64_t seed = GetParam();
  RandomSystemOptions opts;
  opts.num_sites = 2;
  opts.entities_per_site = 2;
  opts.num_transactions = 3;
  opts.entities_per_txn = 2;
  opts.seed = seed;
  auto sys = GenerateRandomSystem(opts);
  ASSERT_TRUE(sys.ok());
  const TransactionSystem& s = *sys->system;
  TransactionSystem demoted = testutil::DemoteToX(s);

  // Every step already exclusive: the copy is structurally identical.
  for (int i = 0; i < s.num_transactions(); ++i) {
    ASSERT_EQ(s.txn(i).num_steps(), demoted.txn(i).num_steps());
    for (NodeId v = 0; v < s.txn(i).num_steps(); ++v) {
      ASSERT_TRUE(s.txn(i).step(v) == demoted.txn(i).step(v));
    }
  }

  auto thm4_a = CheckSystemSafeAndDeadlockFree(s);
  auto thm4_b = CheckSystemSafeAndDeadlockFree(demoted);
  ASSERT_TRUE(thm4_a.ok());
  ASSERT_TRUE(thm4_b.ok());
  EXPECT_EQ(thm4_a->safe_and_deadlock_free, thm4_b->safe_and_deadlock_free);

  struct EngineCfg {
    SearchEngine engine;
    int threads;
  };
  const EngineCfg kGrid[] = {
      {SearchEngine::kIncremental, 1},
      {SearchEngine::kNaiveReference, 1},
      {SearchEngine::kParallelSharded, 1},
      {SearchEngine::kParallelSharded, 4},
      {SearchEngine::kReduced, 1},
      {SearchEngine::kReduced, 4},
  };
  for (const EngineCfg& cfg : kGrid) {
    SafetyCheckOptions so;
    so.engine = cfg.engine;
    so.search_threads = cfg.threads;
    auto ra = CheckSafeAndDeadlockFree(s, so);
    auto rb = CheckSafeAndDeadlockFree(demoted, so);
    ASSERT_TRUE(ra.ok());
    ASSERT_TRUE(rb.ok());
    EXPECT_EQ(ra->holds, rb->holds);
    EXPECT_EQ(ra->states_visited, rb->states_visited);
    EXPECT_EQ(ra->sleep_set_pruned, rb->sleep_set_pruned);
    ASSERT_EQ(ra->violation.has_value(), rb->violation.has_value());
    if (ra->violation.has_value()) {
      EXPECT_EQ(ra->violation->schedule, rb->violation->schedule);
      EXPECT_EQ(ra->violation->txn_cycle, rb->violation->txn_cycle);
    }

    DeadlockCheckOptions dopts;
    dopts.engine = cfg.engine;
    dopts.search_threads = cfg.threads;
    auto da = CheckDeadlockFreedom(s, dopts);
    auto db = CheckDeadlockFreedom(demoted, dopts);
    ASSERT_TRUE(da.ok());
    ASSERT_TRUE(db.ok());
    EXPECT_EQ(da->deadlock_free, db->deadlock_free);
    EXPECT_EQ(da->states_visited, db->states_visited);
    ASSERT_EQ(da->witness.has_value(), db->witness.has_value());
    if (da->witness.has_value()) {
      EXPECT_EQ(da->witness->schedule, db->witness->schedule);
    }
  }

  // Same seed, same trajectory: the simulator cannot tell them apart,
  // and an X-only run never touches the shared-mode counters.
  SimOptions sim;
  sim.policy = ConflictPolicy::kDetect;
  sim.seed = seed * 13 + 5;
  auto agg_a = RunMany(s, sim, 8);
  auto agg_b = RunMany(demoted, sim, 8);
  ASSERT_TRUE(agg_a.ok());
  ASSERT_TRUE(agg_b.ok());
  EXPECT_EQ(agg_a->committed_runs, agg_b->committed_runs);
  EXPECT_EQ(agg_a->deadlocked_runs, agg_b->deadlocked_runs);
  EXPECT_EQ(agg_a->total_aborts, agg_b->total_aborts);
  EXPECT_EQ(agg_a->total_shared_grants, 0u);
  EXPECT_EQ(agg_a->total_upgrades, 0u);
  EXPECT_EQ(agg_a->total_upgrade_aborts, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, XOnlyDemotionSweep,
                         ::testing::Range<uint64_t>(1, 13));

// ---------------------------------------------------------------------
// Sweep 8: S->X demotion monotonicity fuzz. For systems whose shared
// accesses are adjacent (LS, US) point reads, demoting every S to X only
// ADDS conflicts — so a certified demotion implies the original is
// certified too (equivalently, an unsafe or deadlocking original can
// never have a certified demotion). The property is FALSE for general
// S placements — a long-held S lock can act as a latch when demoted —
// which is why the generator pins shared_point_reads (DESIGN.md §11).
// ~150 random mixed-mode systems, checked against both the Theorem 4
// analyzer and the exact Lemma 1 oracle.
class SharedDemotionMonotonicitySweep
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SharedDemotionMonotonicitySweep, CertifiedDemotionCertifiesOriginal) {
  const uint64_t seed = GetParam();
  RandomSystemOptions opts;
  opts.num_sites = 2;
  opts.entities_per_site = 2;
  opts.num_transactions = 3;
  opts.entities_per_txn = 2;
  opts.shared_fraction = 0.3 + 0.05 * static_cast<double>(seed % 9);
  opts.shared_point_reads = true;
  opts.extra_arc_prob = 0.1 * static_cast<double>(seed % 3);
  opts.seed = seed * 0x9E3779B97F4A7C15ULL + 1;
  auto sys = GenerateRandomSystem(opts);
  ASSERT_TRUE(sys.ok());
  const TransactionSystem& s = *sys->system;
  TransactionSystem demoted = testutil::DemoteToX(s);

  auto thm4_orig = CheckSystemSafeAndDeadlockFree(s);
  auto thm4_demo = CheckSystemSafeAndDeadlockFree(demoted);
  ASSERT_TRUE(thm4_orig.ok());
  ASSERT_TRUE(thm4_demo.ok());
  if (thm4_demo->safe_and_deadlock_free) {
    EXPECT_TRUE(thm4_orig->safe_and_deadlock_free)
        << "demotion certified but the (less conflicting) original is not";
  }

  auto oracle_orig = CheckSafeAndDeadlockFree(s);
  auto oracle_demo = CheckSafeAndDeadlockFree(demoted);
  ASSERT_TRUE(oracle_orig.ok());
  ASSERT_TRUE(oracle_demo.ok());
  if (oracle_demo->holds) {
    EXPECT_TRUE(oracle_orig->holds)
        << "exact oracle: demotion safe+DF but the original is not";
  }

  auto df_orig = CheckDeadlockFreedom(s);
  auto df_demo = CheckDeadlockFreedom(demoted);
  ASSERT_TRUE(df_orig.ok());
  ASSERT_TRUE(df_demo.ok());
  if (df_demo->deadlock_free) {
    EXPECT_TRUE(df_orig->deadlock_free)
        << "demotion deadlock-free but the original is not";
  }

  // And the analyzers stay internally consistent on mixed-mode systems.
  EXPECT_EQ(thm4_orig->safe_and_deadlock_free, oracle_orig->holds);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SharedDemotionMonotonicitySweep,
                         ::testing::Range<uint64_t>(1, 151));

}  // namespace
}  // namespace wydb
