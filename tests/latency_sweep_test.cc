// Parameterized latency/topology sweeps: the static certificates must
// hold under EVERY timing regime, and the deadlock-prone systems must be
// handled by every dynamic policy regardless of timing.
#include <gtest/gtest.h>

#include "gen/system_gen.h"
#include "runtime/simulation.h"

namespace wydb {
namespace {

struct LatencyParam {
  const char* name;
  SimTime base;
  SimTime jitter;
  SimTime local;
};

class LatencySweep : public ::testing::TestWithParam<LatencyParam> {};

TEST_P(LatencySweep, CertifiedSystemCommitsUnderAllTimings) {
  const LatencyParam& p = GetParam();
  SafeSystemOptions gopts;
  gopts.num_transactions = 3;
  gopts.entities_per_txn = 3;
  gopts.seed = 5;
  auto sys = GenerateSafeSystem(gopts);
  ASSERT_TRUE(sys.ok());
  SimOptions opts;
  opts.policy = ConflictPolicy::kBlock;
  opts.latency.base = p.base;
  opts.latency.jitter = p.jitter;
  opts.latency.local = p.local;
  auto agg = RunMany(*sys->system, opts, 15);
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->deadlocked_runs, 0) << p.name;
  EXPECT_EQ(agg->committed_runs, 15) << p.name;
  EXPECT_TRUE(agg->all_histories_serializable) << p.name;
}

TEST_P(LatencySweep, DetectorRecoversRingUnderAllTimings) {
  const LatencyParam& p = GetParam();
  auto ring = GenerateRingSystem(4);
  ASSERT_TRUE(ring.ok());
  SimOptions opts;
  opts.policy = ConflictPolicy::kDetect;
  opts.latency.base = p.base;
  opts.latency.jitter = p.jitter;
  opts.latency.local = p.local;
  auto agg = RunMany(*ring->system, opts, 15);
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->committed_runs, 15) << p.name;
  EXPECT_TRUE(agg->all_histories_serializable) << p.name;
}

TEST_P(LatencySweep, WoundWaitLivenessUnderAllTimings) {
  const LatencyParam& p = GetParam();
  auto ring = GenerateRingSystem(5);
  ASSERT_TRUE(ring.ok());
  SimOptions opts;
  opts.policy = ConflictPolicy::kWoundWait;
  opts.latency.base = p.base;
  opts.latency.jitter = p.jitter;
  opts.latency.local = p.local;
  auto agg = RunMany(*ring->system, opts, 15);
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->committed_runs, 15) << p.name;
  EXPECT_EQ(agg->deadlocked_runs, 0) << p.name;
}

INSTANTIATE_TEST_SUITE_P(
    Timings, LatencySweep,
    ::testing::Values(LatencyParam{"lan", 5, 2, 1},
                      LatencyParam{"wan", 200, 100, 1},
                      LatencyParam{"uniform", 50, 0, 50},
                      LatencyParam{"chaotic", 10, 500, 1},
                      LatencyParam{"instant", 1, 0, 1}),
    [](const ::testing::TestParamInfo<LatencyParam>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace wydb
