// Regression sweep for the timestamp policies on heavily contended random
// 2PL workloads. This exact configuration exposed a wound-wait liveness
// bug: the conflict policy must be re-applied when lock ownership changes
// (FIFO grant), or an older transaction queued behind a younger one
// inherits an old->young wait edge and cycles become possible.
#include <gtest/gtest.h>

#include "gen/system_gen.h"
#include "runtime/simulation.h"

namespace wydb {
namespace {

class ContendedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ContendedSweep, TimestampPoliciesNeverDeadlock) {
  RandomSystemOptions gopts;
  gopts.num_transactions = 6;
  gopts.entities_per_txn = 3;
  gopts.num_sites = 3;
  gopts.entities_per_site = 3;
  gopts.two_phase = true;
  gopts.seed = GetParam();
  auto sys = GenerateRandomSystem(gopts);
  ASSERT_TRUE(sys.ok());
  for (auto policy : {ConflictPolicy::kWoundWait, ConflictPolicy::kWaitDie,
                      ConflictPolicy::kDetect}) {
    SimOptions opts;
    opts.policy = policy;
    opts.seed = GetParam() * 101;
    auto agg = RunMany(*sys->system, opts, 30);
    ASSERT_TRUE(agg.ok());
    EXPECT_EQ(agg->deadlocked_runs, 0)
        << ConflictPolicyName(policy) << " seed " << GetParam();
    EXPECT_EQ(agg->committed_runs, 30)
        << ConflictPolicyName(policy) << " seed " << GetParam();
    EXPECT_TRUE(agg->all_histories_serializable);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContendedSweep,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace wydb
