// Tests for the closed-loop traffic driver and the parallel RunMany /
// RunWorkloadMany reductions: determinism per seed, serial/parallel
// aggregate equivalence, and the driver's stop conditions.
#include <gtest/gtest.h>

#include "gen/system_gen.h"
#include "runtime/simulation.h"
#include "runtime/workload.h"
#include "tests/test_util.h"

namespace wydb {
namespace {

using testutil::MakeDb;
using testutil::MakeSeq;
using testutil::MakeSystem;

TransactionSystem ClassicDeadlockPair(const Database* db) {
  std::vector<Transaction> txns;
  txns.push_back(MakeSeq(db, "T1", {"Lx", "Ly", "Ux", "Uy"}));
  txns.push_back(MakeSeq(db, "T2", {"Ly", "Lx", "Ux", "Uy"}));
  return MakeSystem(db, std::move(txns));
}

TransactionSystem SafeDisjointPair(const Database* db) {
  std::vector<Transaction> txns;
  txns.push_back(MakeSeq(db, "T1", {"Lx", "Ux"}));
  txns.push_back(MakeSeq(db, "T2", {"Ly", "Uy"}));
  return MakeSystem(db, std::move(txns));
}

TEST(WorkloadTest, ClosedLoopSustainsDuration) {
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  TransactionSystem sys = SafeDisjointPair(db.get());
  WorkloadOptions opts;
  opts.duration = 50'000;
  opts.think_time = 50;
  auto res = RunWorkload(sys, opts);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->all_committed);
  EXPECT_FALSE(res->deadlocked);
  // Disjoint transactions cycle many rounds within the duration.
  EXPECT_GT(res->commits, 100u);
  EXPECT_GE(res->makespan, opts.duration);
  EXPECT_GT(res->throughput, 0.0);
  EXPECT_EQ(res->latency.samples, res->commits);
  EXPECT_LE(res->latency.p50, res->latency.p95);
  EXPECT_LE(res->latency.p95, res->latency.p99);
  EXPECT_LE(res->latency.p99, res->latency.max);
  EXPECT_GT(res->latency.p50, 0u);
  EXPECT_EQ(res->abort_rate, 0.0);
  // Traffic mode does not extract a history.
  EXPECT_TRUE(res->committed_history.empty());
}

TEST(WorkloadTest, RoundTargetStopsEachTxn) {
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  TransactionSystem sys = SafeDisjointPair(db.get());
  WorkloadOptions opts;
  opts.duration = 0;
  opts.rounds = 7;
  auto res = RunWorkload(sys, opts);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->all_committed);
  EXPECT_EQ(res->commits, 14u);  // 2 transactions x 7 rounds.
}

TEST(WorkloadTest, DeterministicForSeed) {
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  TransactionSystem sys = ClassicDeadlockPair(db.get());
  for (bool open : {false, true}) {
    WorkloadOptions opts;
    opts.sim.policy = ConflictPolicy::kWoundWait;
    opts.sim.seed = 17;
    opts.open_loop = open;
    opts.duration = 30'000;
    auto a = RunWorkload(sys, opts);
    auto b = RunWorkload(sys, opts);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->events, b->events);
    EXPECT_EQ(a->messages, b->messages);
    EXPECT_EQ(a->makespan, b->makespan);
    EXPECT_EQ(a->commits, b->commits);
    EXPECT_EQ(a->aborts, b->aborts);
    EXPECT_EQ(a->latency.p50, b->latency.p50);
    EXPECT_EQ(a->latency.p95, b->latency.p95);
    EXPECT_EQ(a->latency.p99, b->latency.p99);
    EXPECT_EQ(a->latency.samples, b->latency.samples);
    EXPECT_GT(a->commits, 0u);
  }
}

TEST(WorkloadTest, BlockingTrafficCanDeadlockAndCanSurvive) {
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  TransactionSystem sys = ClassicDeadlockPair(db.get());
  int deadlocks = 0, survived = 0;
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    WorkloadOptions opts;
    opts.sim.policy = ConflictPolicy::kBlock;
    opts.sim.seed = seed;
    // Short session with long think times: enough rounds that the race
    // bites for some seed, short enough that some seed survives.
    opts.duration = 1'000;
    opts.think_time = 400;
    auto res = RunWorkload(sys, opts);
    ASSERT_TRUE(res.ok());
    if (res->deadlocked) {
      ++deadlocks;
      EXPECT_FALSE(res->all_committed);
    }
    if (res->all_committed) ++survived;
  }
  // Sustained traffic on a deadlock-prone pair: the race eventually bites
  // for some seed, and some seed survives the whole duration.
  EXPECT_GT(deadlocks, 0);
  EXPECT_GT(survived, 0);
}

TEST(WorkloadTest, MplOneSerializesDeadlockPronePair) {
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  TransactionSystem sys = ClassicDeadlockPair(db.get());
  for (uint64_t seed = 1; seed <= 15; ++seed) {
    WorkloadOptions opts;
    opts.sim.policy = ConflictPolicy::kBlock;
    opts.sim.seed = seed;
    opts.duration = 20'000;
    opts.mpl = 1;  // One transaction executing at a time: no interleaving.
    auto res = RunWorkload(sys, opts);
    ASSERT_TRUE(res.ok());
    EXPECT_FALSE(res->deadlocked) << "seed " << seed;
    EXPECT_TRUE(res->all_committed) << "seed " << seed;
    EXPECT_GT(res->commits, 2u);
  }
}

TEST(WorkloadTest, OpenLoopQueuesArrivals) {
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  TransactionSystem sys = SafeDisjointPair(db.get());
  WorkloadOptions closed, open;
  closed.duration = open.duration = 40'000;
  // Arrival interval far below the service time: the open driver queues
  // arrivals and latency grows, while the closed driver self-throttles.
  closed.think_time = open.think_time = 2;
  open.open_loop = true;
  auto rc = RunWorkload(sys, closed);
  auto ro = RunWorkload(sys, open);
  ASSERT_TRUE(rc.ok());
  ASSERT_TRUE(ro.ok());
  EXPECT_GT(ro->commits, 0u);
  // Under saturation, open-loop latency includes queueing delay.
  EXPECT_GT(ro->latency.p99, rc->latency.p99);
}

TEST(WorkloadTest, OpenLoopStalledSystemStillQuiesces) {
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  TransactionSystem sys = ClassicDeadlockPair(db.get());
  int deadlocks = 0;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    WorkloadOptions opts;
    opts.sim.policy = ConflictPolicy::kBlock;
    opts.sim.seed = seed;
    opts.open_loop = true;
    opts.duration = 0;
    opts.rounds = 3;
    opts.think_time = 20;
    auto res = RunWorkload(sys, opts);
    ASSERT_TRUE(res.ok());
    // A mid-round deadlock must be classified as such, not spin the
    // arrival clock until the event budget runs out.
    EXPECT_FALSE(res->budget_exhausted) << "seed " << seed;
    if (res->deadlocked) ++deadlocks;
  }
  EXPECT_GT(deadlocks, 0);
  // And the detector resolves those same deadlocks to completion.
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    WorkloadOptions opts;
    opts.sim.policy = ConflictPolicy::kDetect;
    opts.sim.seed = seed;
    opts.open_loop = true;
    opts.duration = 0;
    opts.rounds = 3;
    opts.think_time = 20;
    auto res = RunWorkload(sys, opts);
    ASSERT_TRUE(res.ok());
    EXPECT_TRUE(res->all_committed) << "seed " << seed;
    EXPECT_FALSE(res->budget_exhausted) << "seed " << seed;
    EXPECT_EQ(res->commits, 6u) << "seed " << seed;
  }
}

TEST(WorkloadTest, InvalidOptionsRejected) {
  auto db = MakeDb({{"s1", {"x"}}});
  std::vector<Transaction> txns;
  txns.push_back(MakeSeq(db.get(), "T1", {"Lx", "Ux"}));
  TransactionSystem sys = MakeSystem(db.get(), std::move(txns));
  WorkloadOptions opts;
  opts.duration = 0;
  opts.rounds = 0;
  EXPECT_FALSE(RunWorkload(sys, opts).ok());
}

TEST(WorkloadTest, OneShotResultCarriesLatencyMetrics) {
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  TransactionSystem sys = SafeDisjointPair(db.get());
  auto res = RunSimulation(sys, SimOptions{});
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->commits, 2u);
  EXPECT_EQ(res->latency.samples, 2u);
  EXPECT_GT(res->throughput, 0.0);
  EXPECT_EQ(res->abort_rate, 0.0);
}

void ExpectAggregatesEqual(const AggregateResult& a,
                           const AggregateResult& b) {
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.committed_runs, b.committed_runs);
  EXPECT_EQ(a.deadlocked_runs, b.deadlocked_runs);
  EXPECT_EQ(a.budget_exhausted_runs, b.budget_exhausted_runs);
  EXPECT_EQ(a.gave_up_runs, b.gave_up_runs);
  EXPECT_EQ(a.total_aborts, b.total_aborts);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.avg_makespan, b.avg_makespan);
  EXPECT_EQ(a.all_histories_serializable, b.all_histories_serializable);
}

TEST(WorkloadTest, ParallelRunManyMatchesSerial) {
  auto ring = GenerateRingSystem(4);
  ASSERT_TRUE(ring.ok());
  for (ConflictPolicy policy :
       {ConflictPolicy::kBlock, ConflictPolicy::kWoundWait,
        ConflictPolicy::kDetect}) {
    SimOptions base;
    base.policy = policy;
    auto serial = RunMany(*ring->system, base, 24, /*threads=*/1);
    auto parallel = RunMany(*ring->system, base, 24, /*threads=*/4);
    ASSERT_TRUE(serial.ok());
    ASSERT_TRUE(parallel.ok());
    ExpectAggregatesEqual(*serial, *parallel);
  }
}

TEST(WorkloadTest, ParallelWorkloadManyMatchesSerial) {
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  TransactionSystem sys = ClassicDeadlockPair(db.get());
  WorkloadOptions base;
  base.sim.policy = ConflictPolicy::kWaitDie;
  base.duration = 10'000;
  auto serial = RunWorkloadMany(sys, base, 12, /*threads=*/1);
  auto parallel = RunWorkloadMany(sys, base, 12, /*threads=*/3);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(serial->runs, parallel->runs);
  EXPECT_EQ(serial->total_commits, parallel->total_commits);
  EXPECT_EQ(serial->total_aborts, parallel->total_aborts);
  EXPECT_EQ(serial->deadlocked_runs, parallel->deadlocked_runs);
  EXPECT_EQ(serial->avg_throughput, parallel->avg_throughput);
  EXPECT_EQ(serial->avg_p99, parallel->avg_p99);
  EXPECT_GT(serial->total_commits, 0u);
}

TEST(WorkloadTest, AggregateCountsBudgetExhaustion) {
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  TransactionSystem sys = ClassicDeadlockPair(db.get());
  SimOptions base;
  base.max_events = 5;  // Far too small to finish.
  auto agg = RunMany(sys, base, 6);
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->budget_exhausted_runs, 6);
  EXPECT_EQ(agg->committed_runs, 0);
}

TEST(WorkloadTest, AggregateCountsGaveUpRuns) {
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  TransactionSystem sys = ClassicDeadlockPair(db.get());
  SimOptions base;
  base.policy = ConflictPolicy::kWaitDie;  // Restarts instead of blocking.
  base.max_restarts = 0;  // First abort gives up.
  auto agg = RunMany(sys, base, 20);
  ASSERT_TRUE(agg.ok());
  EXPECT_GT(agg->gave_up_runs, 0);
}

}  // namespace
}  // namespace wydb
