// Tests for the early-unlock optimizer ([W2]-style extension).
#include <gtest/gtest.h>

#include "analysis/early_unlock.h"
#include "analysis/multi_analyzer.h"
#include "analysis/safety_checker.h"
#include "gen/system_gen.h"
#include "tests/test_util.h"

namespace wydb {
namespace {

using testutil::MakeDb;
using testutil::MakeSeq;
using testutil::MakeSystem;

TEST(HoldingCostTest, ChainCost) {
  auto db = MakeDb({{"s1", {"x", "y"}}});
  // Lx Ly Uy Ux: x held 3 steps, y held 1.
  Transaction t = MakeSeq(db.get(), "T", {"Lx", "Ly", "Uy", "Ux"});
  EXPECT_EQ(HoldingCost(t), 4);
}

TEST(HoldingCostTest, PartialOrderReturnsMinusOne) {
  auto db = testutil::MakeSpreadDb({"x", "y"});
  TransactionBuilder b(db.get(), "T");
  b.set_auto_site_chain(false);
  b.Lock("x");
  b.Lock("y");
  b.Unlock("x");
  b.Unlock("y");
  EXPECT_EQ(HoldingCost(*b.Build()), -1);
}

TEST(EarlyUnlockTest, RefusesUncertifiedInput) {
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  std::vector<Transaction> txns;
  txns.push_back(MakeSeq(db.get(), "T1", {"Lx", "Ly", "Ux", "Uy"}));
  txns.push_back(MakeSeq(db.get(), "T2", {"Ly", "Lx", "Ux", "Uy"}));
  TransactionSystem sys = MakeSystem(db.get(), std::move(txns));
  EXPECT_EQ(OptimizeEarlyUnlock(sys).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(EarlyUnlockTest, HoistsSlackUnlocks) {
  // Single transaction holding x across an unrelated y access: with no
  // second transaction there is nothing to protect, so Ux can move left.
  auto db = MakeDb({{"s1", {"x", "y"}}});
  std::vector<Transaction> txns;
  txns.push_back(MakeSeq(db.get(), "T1", {"Lx", "Ly", "Uy", "Ux"}));
  TransactionSystem sys = MakeSystem(db.get(), std::move(txns));
  auto opt = OptimizeEarlyUnlock(sys);
  ASSERT_TRUE(opt.ok());
  EXPECT_GT(opt->moves_committed, 0u);
  EXPECT_LT(opt->holding_cost_after, opt->holding_cost_before);
  // Still certified.
  auto check = CheckSystemSafeAndDeadlockFree(opt->system);
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->safe_and_deadlock_free);
}

TEST(EarlyUnlockTest, PreservesCertificateUnderContention) {
  // Two transactions where the latch really is needed: hoisting must not
  // break the certificate even when some moves get rejected.
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y", "z"}}});
  std::vector<Transaction> txns;
  txns.push_back(
      MakeSeq(db.get(), "T1", {"Lx", "Ly", "Uy", "Lz", "Uz", "Ux"}));
  txns.push_back(
      MakeSeq(db.get(), "T2", {"Lx", "Lz", "Uz", "Ly", "Uy", "Ux"}));
  TransactionSystem sys = MakeSystem(db.get(), std::move(txns));
  ASSERT_TRUE(CheckSystemSafeAndDeadlockFree(sys)->safe_and_deadlock_free);
  auto opt = OptimizeEarlyUnlock(sys);
  ASSERT_TRUE(opt.ok());
  auto check = CheckSystemSafeAndDeadlockFree(opt->system);
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->safe_and_deadlock_free);
  EXPECT_LE(opt->holding_cost_after, opt->holding_cost_before);
  // The exact oracle agrees with the preserved certificate.
  auto oracle = CheckSafeAndDeadlockFree(opt->system);
  ASSERT_TRUE(oracle.ok());
  EXPECT_TRUE(oracle->holds);
}

TEST(EarlyUnlockTest, MoveBudgetRespected) {
  auto db = MakeDb({{"s1", {"x", "y", "z"}}});
  std::vector<Transaction> txns;
  txns.push_back(
      MakeSeq(db.get(), "T1", {"Lx", "Ly", "Lz", "Uy", "Uz", "Ux"}));
  TransactionSystem sys = MakeSystem(db.get(), std::move(txns));
  EarlyUnlockOptions opts;
  opts.max_moves = 1;
  auto opt = OptimizeEarlyUnlock(sys, opts);
  ASSERT_TRUE(opt.ok());
  EXPECT_EQ(opt->moves_committed, 1u);
}

TEST(EarlyUnlockTest, PartialOrdersSkippedUntouched) {
  auto db = testutil::MakeSpreadDb({"x", "y"});
  TransactionBuilder b(db.get(), "T1");
  b.set_auto_site_chain(false);
  int lx = b.Lock("x");
  int ly = b.Lock("y");
  int ux = b.Unlock("x");
  int uy = b.Unlock("y");
  b.Arc(lx, ly).Arc(ly, ux).Arc(lx, uy);  // ux, uy unordered.
  std::vector<Transaction> txns;
  txns.push_back(std::move(*b.Build()));
  TransactionSystem sys = MakeSystem(db.get(), std::move(txns));
  auto opt = OptimizeEarlyUnlock(sys);
  ASSERT_TRUE(opt.ok());
  EXPECT_EQ(opt->skipped_partial, 1);
  EXPECT_EQ(opt->moves_committed, 0u);
}

// Property: on random certified systems the optimizer never loses the
// certificate and never increases the holding cost.
TEST(EarlyUnlockProperty, MonotoneAndCertificatePreserving) {
  int optimized = 0;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    SafeSystemOptions gopts;
    gopts.num_sites = 1;  // Single site => totally ordered transactions.
    gopts.entities_per_site = 6;
    gopts.num_transactions = 3;
    gopts.entities_per_txn = 3;
    gopts.seed = seed;
    auto sys = GenerateSafeSystem(gopts);
    ASSERT_TRUE(sys.ok());
    auto opt = OptimizeEarlyUnlock(*sys->system);
    ASSERT_TRUE(opt.ok()) << opt.status().ToString();
    EXPECT_LE(opt->holding_cost_after, opt->holding_cost_before);
    if (opt->moves_committed > 0) ++optimized;
    auto oracle = CheckSafeAndDeadlockFree(opt->system);
    ASSERT_TRUE(oracle.ok());
    EXPECT_TRUE(oracle->holds) << "seed " << seed;
  }
  EXPECT_GT(optimized, 0);
}

}  // namespace
}  // namespace wydb
