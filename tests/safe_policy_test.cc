// The Section 6 remark: for safely-locked (e.g. two-phase) transactions,
// deadlock-freedom alone is decidable in polynomial time via the Theorem 4
// test, because safety makes DF and safe+DF coincide.
#include <gtest/gtest.h>

#include "analysis/deadlock_checker.h"
#include "analysis/multi_analyzer.h"
#include "analysis/safety_checker.h"
#include "gen/system_gen.h"

namespace wydb {
namespace {

class TwoPhaseSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TwoPhaseSweep, PolyTestDecidesDeadlockFreedomOfSafeSystems) {
  RandomSystemOptions opts;
  opts.num_transactions = 3;
  opts.entities_per_txn = 2;
  opts.num_sites = 2;
  opts.entities_per_site = 2;
  opts.two_phase = true;  // Safe by [EGLT].
  opts.seed = GetParam();
  auto sys = GenerateRandomSystem(opts);
  ASSERT_TRUE(sys.ok());

  // Precondition of the remark: two-phase locking really is safe.
  auto safety = CheckSafety(*sys->system);
  ASSERT_TRUE(safety.ok());
  ASSERT_TRUE(safety->holds);

  // The polynomial verdict equals exact deadlock-freedom.
  auto poly = CheckDeadlockFreedomAssumingSafe(*sys->system);
  auto exact = CheckDeadlockFreedom(*sys->system);
  ASSERT_TRUE(poly.ok());
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(poly->safe_and_deadlock_free, exact->deadlock_free);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwoPhaseSweep,
                         ::testing::Range<uint64_t>(300, 330));

}  // namespace
}  // namespace wydb
