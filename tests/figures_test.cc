// Executable reproductions of the paper's figures (DESIGN.md experiments
// F1, F2, F3; F4/F5 live in reduction_test.cc and F6 in copies_test.cc).
#include <gtest/gtest.h>

#include "analysis/deadlock_checker.h"
#include "analysis/pair_analyzer.h"
#include "core/reduction_graph.h"
#include "tests/test_util.h"

namespace wydb {
namespace {

using testutil::MakeDb;
using testutil::MakeSeq;
using testutil::MakeSpreadDb;
using testutil::MakeSystem;

// -----------------------------------------------------------------------
// Figure 1: three transactions over x, y, z; the prefix {Ly | Lx | Lz}
// (T1 holds y, T2 holds x, T3 holds z) is a deadlock prefix whose
// reduction graph contains the paper's cycle
//   L1z -> U1y -> L2y -> U2x -> L3x -> U3z -> L1z.
struct Figure1 {
  std::unique_ptr<Database> db = MakeDb({{"s1", {"x", "z"}}, {"s2", {"y"}}});
  TransactionSystem sys;

  Figure1() : sys(Build(db.get())) {}

  static TransactionSystem Build(const Database* db) {
    std::vector<Transaction> txns;
    txns.push_back(MakeSeq(db, "T1", {"Ly", "Lz", "Uy", "Uz"}));
    txns.push_back(MakeSeq(db, "T2", {"Lx", "Ly", "Ux", "Uy"}));
    txns.push_back(MakeSeq(db, "T3", {"Lz", "Lx", "Uz", "Ux"}));
    return testutil::MakeSystem(db, std::move(txns));
  }
};

TEST(Figure1Test, PrefixIsDeadlockPrefix) {
  Figure1 f;
  auto prefix = PrefixSet::FromNodeSets(&f.sys, {{0}, {0}, {0}});
  ASSERT_TRUE(prefix.ok());
  auto verdict = IsDeadlockPrefix(f.sys, *prefix);
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(*verdict);
}

TEST(Figure1Test, ReductionGraphContainsThePapersCycle) {
  Figure1 f;
  auto prefix = PrefixSet::FromNodeSets(&f.sys, {{0}, {0}, {0}});
  ASSERT_TRUE(prefix.ok());
  ReductionGraph rg(*prefix);
  ASSERT_TRUE(rg.HasCycle());

  // The paper's six-node cycle, step by step. Arcs within transactions
  // come from the remaining parts; arcs U_i -> L_j from held locks.
  auto node = [&](int txn, const std::string& label) {
    const Transaction& t = f.sys.txn(txn);
    for (NodeId v = 0; v < t.num_steps(); ++v) {
      if (t.StepLabel(v) == label) return rg.ToLocal(GlobalNode{txn, v});
    }
    return kInvalidNode;
  };
  NodeId l1z = node(0, "Lz"), u1y = node(0, "Uy");
  NodeId l2y = node(1, "Ly"), u2x = node(1, "Ux");
  NodeId l3x = node(2, "Lx"), u3z = node(2, "Uz");
  for (NodeId v : {l1z, u1y, l2y, u2x, l3x, u3z}) ASSERT_NE(v, kInvalidNode);
  EXPECT_TRUE(rg.digraph().HasArc(l1z, u1y));
  EXPECT_TRUE(rg.digraph().HasArc(u1y, l2y));
  EXPECT_TRUE(rg.digraph().HasArc(l2y, u2x));
  EXPECT_TRUE(rg.digraph().HasArc(u2x, l3x));
  EXPECT_TRUE(rg.digraph().HasArc(l3x, u3z));
  EXPECT_TRUE(rg.digraph().HasArc(u3z, l1z));
}

TEST(Figure1Test, SystemIsNotDeadlockFree) {
  Figure1 f;
  auto report = CheckDeadlockFreedom(f.sys);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->deadlock_free);
}

TEST(Figure1Test, AnyLinearExtensionOfPrefixIsAPartialSchedule) {
  Figure1 f;
  // Executing the three first-locks in any order respects the locks (they
  // touch three distinct entities).
  Schedule s{{0, 0}, {1, 0}, {2, 0}};
  EXPECT_TRUE(ValidateSchedule(f.sys, s, false).ok());
}

// -----------------------------------------------------------------------
// Figure 2: Tirri's counterexample. Both transactions have the same
// syntax D over entities v, t, z, w with arcs Lv->Ut, Lt->Uz, Lz->Uw,
// Lw->Uv. There are NO two entities a, b with La preceding Ub and Lb
// preceding Ua (the premise of [T]'s algorithm), yet the pair deadlocks
// through a 4-entity cycle.
Transaction Figure2Transaction(const Database* db, const std::string& name) {
  TransactionBuilder b(db, name);
  b.set_auto_site_chain(false);
  int lv = b.Lock("v"), lt = b.Lock("t"), lz = b.Lock("z"), lw = b.Lock("w");
  int uv = b.Unlock("v"), ut = b.Unlock("t"), uz = b.Unlock("z"),
      uw = b.Unlock("w");
  (void)uv;
  b.Arc(lv, ut).Arc(lt, uz).Arc(lz, uw).Arc(lw, uv);
  auto t = b.Build();
  if (!t.ok()) std::abort();
  return std::move(*t);
}

TEST(Figure2Test, TirriPremiseDoesNotHold) {
  auto db = MakeSpreadDb({"v", "t", "z", "w"});
  Transaction t1 = Figure2Transaction(db.get(), "T1");
  Transaction t2 = Figure2Transaction(db.get(), "T2");
  // No pair (a, b): La < Ub in T1 and Lb < Ua in T2 with {a,b} both ways.
  bool premise = false;
  for (EntityId a : t1.entities()) {
    for (EntityId b : t1.entities()) {
      if (a == b) continue;
      if (t1.Precedes(t1.LockNode(b), t1.UnlockNode(a)) &&
          t2.Precedes(t2.LockNode(a), t2.UnlockNode(b))) {
        premise = true;
      }
    }
  }
  EXPECT_FALSE(premise);
}

TEST(Figure2Test, IdenticalSyntaxPairDeadlocks) {
  auto db = MakeSpreadDb({"v", "t", "z", "w"});
  std::vector<Transaction> txns;
  txns.push_back(Figure2Transaction(db.get(), "T1"));
  txns.push_back(Figure2Transaction(db.get(), "T2"));
  TransactionSystem sys = MakeSystem(db.get(), std::move(txns));
  auto report = CheckDeadlockFreedom(sys);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->deadlock_free);
}

TEST(Figure2Test, PapersPrefixIsADeadlockPrefix) {
  auto db = MakeSpreadDb({"v", "t", "z", "w"});
  std::vector<Transaction> txns;
  txns.push_back(Figure2Transaction(db.get(), "T1"));
  txns.push_back(Figure2Transaction(db.get(), "T2"));
  TransactionSystem sys = MakeSystem(db.get(), std::move(txns));
  // Prefix {L2v, L1t, L2z, L1w}: T1 holds t and w; T2 holds v and z.
  auto lock_of = [&](int txn, const std::string& e) {
    return sys.txn(txn).LockNode(db->FindEntity(e));
  };
  auto prefix = PrefixSet::FromNodeSets(
      &sys, {{lock_of(0, "t"), lock_of(0, "w")},
             {lock_of(1, "v"), lock_of(1, "z")}});
  ASSERT_TRUE(prefix.ok());
  auto verdict = IsDeadlockPrefix(sys, *prefix);
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(*verdict);
  // The reduction-graph cycle spans all four entities (8 nodes).
  ReductionGraph rg(*prefix);
  EXPECT_GE(rg.FindGlobalCycle().size(), 8u);
}

// In a centralized database, identical syntax implies deadlock freedom;
// Figure 2 shows the distributed analogue fails. Sanity-check the
// centralized claim on the total orders of the same entity set.
TEST(Figure2Test, CentralizedIdenticalSyntaxIsDeadlockFree) {
  auto db = MakeDb({{"s1", {"v", "t", "z", "w"}}});
  std::vector<Transaction> txns;
  txns.push_back(MakeSeq(db.get(), "T1",
                         {"Lv", "Lt", "Lz", "Lw", "Ut", "Uz", "Uw", "Uv"}));
  txns.push_back(MakeSeq(db.get(), "T2",
                         {"Lv", "Lt", "Lz", "Lw", "Ut", "Uz", "Uw", "Uv"}));
  TransactionSystem sys = MakeSystem(db.get(), std::move(txns));
  auto report = CheckDeadlockFreedom(sys);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->deadlock_free);
}

// -----------------------------------------------------------------------
// Figure 3: a pair of identical partial orders that is deadlock-free even
// though a pair of its linear extensions deadlocks — deadlock freedom does
// not reduce to linear extensions (unlike safety, Corollary 1 aside).
Transaction Figure3Transaction(const Database* db, const std::string& name) {
  TransactionBuilder b(db, name);
  b.set_auto_site_chain(false);
  int lx = b.Lock("x"), ly = b.Lock("y");
  int ux = b.Unlock("x"), uy = b.Unlock("y");
  b.Arc(lx, ux).Arc(ux, uy).Arc(ly, uy);
  auto t = b.Build();
  if (!t.ok()) std::abort();
  return std::move(*t);
}

TEST(Figure3Test, PartialOrderPairIsDeadlockFree) {
  auto db = MakeSpreadDb({"x", "y"});
  std::vector<Transaction> txns;
  txns.push_back(Figure3Transaction(db.get(), "T1"));
  txns.push_back(Figure3Transaction(db.get(), "T2"));
  TransactionSystem sys = MakeSystem(db.get(), std::move(txns));
  auto report = CheckDeadlockFreedom(sys);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->deadlock_free);
}

TEST(Figure3Test, SomeExtensionPairDeadlocks) {
  auto db = MakeSpreadDb({"x", "y"});
  // t1 = Lx Ly Ux Uy and t2 = Ly Lx Ux Uy are both extensions of Fig. 3.
  Transaction fig3 = Figure3Transaction(db.get(), "T");
  auto is_extension = [&](const std::vector<std::string>& labels) {
    // Verify the sequence is a linear extension of fig3's partial order.
    std::vector<NodeId> order;
    for (const auto& label : labels) {
      for (NodeId v = 0; v < fig3.num_steps(); ++v) {
        if (fig3.StepLabel(v) == label) order.push_back(v);
      }
    }
    std::vector<int> pos(fig3.num_steps());
    for (size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
    for (NodeId u = 0; u < fig3.num_steps(); ++u) {
      for (NodeId v = 0; v < fig3.num_steps(); ++v) {
        if (fig3.Precedes(u, v) && pos[u] >= pos[v]) return false;
      }
    }
    return true;
  };
  EXPECT_TRUE(is_extension({"Lx", "Ly", "Ux", "Uy"}));
  EXPECT_TRUE(is_extension({"Ly", "Lx", "Ux", "Uy"}));

  std::vector<Transaction> txns;
  txns.push_back(MakeSeq(db.get(), "t1", {"Lx", "Ly", "Ux", "Uy"}));
  txns.push_back(MakeSeq(db.get(), "t2", {"Ly", "Lx", "Ux", "Uy"}));
  TransactionSystem sys = MakeSystem(db.get(), std::move(txns));
  auto report = CheckDeadlockFreedom(sys);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->deadlock_free);
}

// The one-directional reduction that DOES hold (end of Section 3): if the
// partial-order system deadlocks, some tuple of extensions deadlocks.
TEST(Figure3Test, DeadlockImpliesSomeExtensionTupleDeadlocks) {
  auto db = MakeSpreadDb({"v", "t", "z", "w"});
  std::vector<Transaction> txns;
  txns.push_back(Figure2Transaction(db.get(), "T1"));
  txns.push_back(Figure2Transaction(db.get(), "T2"));
  TransactionSystem sys = MakeSystem(db.get(), std::move(txns));
  auto report = CheckDeadlockFreedom(sys);
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->deadlock_free);
  const Schedule& witness = report->witness->schedule;

  // The paper's construction: for each transaction, take its subsequence
  // of the deadlock partial schedule and suffix it with a total order of
  // the remainder; the resulting extensions deadlock too.
  std::vector<Transaction> ext;
  for (int i = 0; i < 2; ++i) {
    const Transaction& t = sys.txn(i);
    std::vector<bool> in_prefix(t.num_steps(), false);
    std::vector<std::pair<StepKind, std::string>> seq;
    for (GlobalNode g : witness) {
      if (g.txn != i) continue;
      in_prefix[g.node] = true;
      const Step& s = t.step(g.node);
      seq.emplace_back(s.kind, db->EntityName(s.entity));
    }
    for (NodeId v : t.SomeLinearExtension()) {
      if (in_prefix[v]) continue;
      const Step& s = t.step(v);
      seq.emplace_back(s.kind, db->EntityName(s.entity));
    }
    auto built = TransactionBuilder::FromSequence(
        db.get(), i == 0 ? "t1" : "t2", seq);
    ASSERT_TRUE(built.ok());
    ext.push_back(std::move(*built));
  }
  TransactionSystem ext_sys = MakeSystem(db.get(), std::move(ext));
  auto ext_report = CheckDeadlockFreedom(ext_sys);
  ASSERT_TRUE(ext_report.ok());
  EXPECT_FALSE(ext_report->deadlock_free);
}

}  // namespace
}  // namespace wydb
